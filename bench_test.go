// Benchmarks regenerating the paper's reported results and probing the
// design decisions called out in DESIGN.md §5. The paper is an experience
// paper without numeric tables; each benchmark corresponds to an experiment
// id from DESIGN.md §4 (E1–E12) or an ablation. EXPERIMENTS.md records the
// paper-vs-measured comparison for each.
package neesgrid

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"neesgrid/internal/collab"
	"neesgrid/internal/control"
	"neesgrid/internal/coord"
	"neesgrid/internal/core"
	"neesgrid/internal/daq"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/gridftp"
	"neesgrid/internal/groundmotion"
	"neesgrid/internal/gsi"
	"neesgrid/internal/most"
	"neesgrid/internal/nfms"
	"neesgrid/internal/nsds"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/plugin"
	"neesgrid/internal/repo"
	"neesgrid/internal/structural"
)

// runExperiment executes one spec iteration with a unique run id.
func runExperiment(b *testing.B, exp *most.Experiment, i int) *most.Results {
	b.Helper()
	exp.Spec.Name = fmt.Sprintf("bench-%d", i)
	res, err := exp.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if res.Err != nil && res.Report.FailedStep == 0 {
		b.Fatal(res.Err)
	}
	return res
}

func buildExperiment(b *testing.B, spec most.Spec) *most.Experiment {
	b.Helper()
	exp, err := most.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = exp.Stop() })
	return exp
}

// BenchmarkE1MostDryRun measures the distributed MS-PSDS step cycle of the
// MOST dry run (all-simulation variant, 30 steps per iteration).
func BenchmarkE1MostDryRun(b *testing.B) {
	spec := most.DryRunSpec(most.VariantSimulation)
	spec.Steps = 30
	exp := buildExperiment(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, exp, i)
		if !res.Report.Completed {
			b.Fatalf("run %d did not complete", i)
		}
	}
	b.ReportMetric(float64(30*b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkE2FaultInjection measures the same cycle with transient network
// faults recovered by NTCP retries.
func BenchmarkE2FaultInjection(b *testing.B) {
	spec := most.DryRunSpec(most.VariantSimulation)
	spec.Steps = 30
	spec.Faults = []most.Fault{
		{Step: 10, Site: "uiuc", Count: 1},
		{Step: 20, Site: "cu", Count: 1},
	}
	exp := buildExperiment(b, spec)
	b.ResetTimer()
	recovered := 0
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, exp, i)
		recovered += res.Report.Recovered
	}
	b.ReportMetric(float64(recovered)/float64(b.N), "recoveries/run")
}

// BenchmarkE3Substitution measures the hybrid variant — simulated rigs
// behind Shore-Western and xPC controllers — quantifying the cost of the
// sim→physical substitution that NTCP makes transparent.
func BenchmarkE3Substitution(b *testing.B) {
	spec := most.DryRunSpec(most.VariantHybrid)
	spec.Steps = 30
	exp := buildExperiment(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, exp, i)
		if !res.Report.Completed {
			b.Fatalf("run %d did not complete", i)
		}
	}
	b.ReportMetric(float64(30*b.N)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkE5ResponseSeries regenerates the Fig. 8 series (1,500-step
// displacement/force/hysteresis histories) with the local single-process
// solver — the pure numerical cost with no Grid in the loop.
func BenchmarkE5ResponseSeries(b *testing.B) {
	cfg := structural.MOSTConfig()
	rec, err := groundmotion.Generate(groundmotion.ElCentroLike())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := cfg.Assembly()
		if err != nil {
			b.Fatal(err)
		}
		sys := cfg.System(a)
		h, err := structural.Run(sys, structural.NewExplicitNewmark(), structural.RunOptions{
			Dt: cfg.Dt, Steps: cfg.Steps, Ground: rec.At,
		})
		if err != nil {
			b.Fatal(err)
		}
		if h.Len() != cfg.Steps+1 {
			b.Fatal("short history")
		}
	}
}

// BenchmarkE6CollabLoad measures the CHEF-style workspace under the §3.4
// participation level: 130 logged-in users, chat post + poll per op.
func BenchmarkE6CollabLoad(b *testing.B) {
	ws := collab.NewWorkspace("most")
	sessions := make([]*collab.Session, 130)
	for i := range sessions {
		s, err := ws.Login(fmt.Sprintf("user-%03d", i))
		if err != nil {
			b.Fatal(err)
		}
		sessions[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sessions[i%len(sessions)]
		if _, err := ws.Chat(s.Token, "main", "status update"); err != nil {
			b.Fatal(err)
		}
		if _, err := ws.ChatSince(s.Token, "main", uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7MiniMost measures the tabletop Mini-MOST cycle with the
// first-order kinetic beam simulator.
func BenchmarkE7MiniMost(b *testing.B) {
	spec := most.MiniMOSTSpec(false)
	spec.Steps = 30
	exp := buildExperiment(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, exp, i)
		if !res.Report.Completed {
			b.Fatal("run did not complete")
		}
	}
	b.ReportMetric(float64(30*b.N)/b.Elapsed().Seconds(), "steps/s")
}

// ntcpFixture builds one NTCP site and a client over an optional WAN
// profile.
func ntcpFixture(b *testing.B, profile faultnet.Profile) *core.Client {
	b.Helper()
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	serverCred, _ := ca.Issue("/O=NEES/CN=site", time.Hour)
	clientCred, _ := ca.Issue("/O=NEES/CN=coord", time.Hour)
	gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=coord": "coord"})
	cont := ogsi.NewContainer(serverCred, trust, gm)
	plug := &core.SubstructurePlugin{Point: "drift", NDOF: 1,
		Apply: func(d []float64) ([]float64, error) { return []float64{1e6 * d[0]}, nil }}
	srv := core.NewServer(plug, nil, core.ServerOptions{})
	cont.AddService(srv.Service())
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	})
	og := ogsi.NewClient("http://"+addr, clientCred, trust)
	og.HTTP = faultnet.Client(faultnet.NewInjector(profile))
	return core.NewClient(og, core.DefaultRetry)
}

// BenchmarkE8NtcpLatencyLAN measures one propose+execute transaction round
// trip on a LAN — the §5 "near-real-time requirements" baseline.
func BenchmarkE8NtcpLatencyLAN(b *testing.B) {
	cl := ntcpFixture(b, faultnet.LAN)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := cl.Run(ctx, &core.Proposal{
			Name:    fmt.Sprintf("lat-%d", i),
			Actions: []core.Action{{ControlPoint: "drift", Displacements: []float64{0.001}}},
		})
		if err != nil || rec.State != core.StateExecuted {
			b.Fatalf("%v %v", rec, err)
		}
	}
}

// BenchmarkE8NtcpLatencyWAN measures the same cycle through an emulated
// wide-area path (5 ms one-way + jitter).
func BenchmarkE8NtcpLatencyWAN(b *testing.B) {
	cl := ntcpFixture(b, faultnet.Profile{Latency: 5 * time.Millisecond, Jitter: time.Millisecond, Seed: 7})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := cl.Run(ctx, &core.Proposal{
			Name:    fmt.Sprintf("wan-%d", i),
			Actions: []core.Action{{ControlPoint: "drift", Displacements: []float64{0.001}}},
		})
		if err != nil || rec.State != core.StateExecuted {
			b.Fatalf("%v %v", rec, err)
		}
	}
}

// BenchmarkE8NtcpFastPath measures the §5 "improving NTCP performance"
// work: the combined proposeAndExecute operation halves the per-step round
// trips while preserving policy screening and at-most-once semantics.
func BenchmarkE8NtcpFastPath(b *testing.B) {
	cl := ntcpFixture(b, faultnet.LAN)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := cl.RunFast(ctx, &core.Proposal{
			Name:    fmt.Sprintf("fast-%d", i),
			Actions: []core.Action{{ControlPoint: "drift", Displacements: []float64{0.001}}},
		})
		if err != nil || rec.State != core.StateExecuted {
			b.Fatalf("%v %v", rec, err)
		}
	}
}

// BenchmarkE9Ingestion measures incremental repository ingestion: DAQ spool
// block → upload → metadata record.
func BenchmarkE9Ingestion(b *testing.B) {
	r, err := repo.New("/O=NEES/CN=repo")
	if err != nil {
		b.Fatal(err)
	}
	spool, err := daq.NewSpool(b.TempDir(), 1)
	if err != nil {
		b.Fatal(err)
	}
	d := daq.New("uiuc", 1)
	_ = d.AddChannel(daq.Channel{Name: "uiuc.lvdt1", Read: func() float64 { return 0.01 }})
	d.AttachSpool(spool)
	store := b.TempDir()
	ing := &repo.Ingestor{
		Repo: r, Spool: spool, Owner: "/O=NEES/CN=uiuc",
		Experiment: "bench", Site: "uiuc",
		Replica: func(block string) nfms.Replica {
			return nfms.Replica{Transport: "local", Path: store + "/" + block}
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Scan(i, float64(i)*0.01); err != nil {
			b.Fatal(err)
		}
		if _, err := ing.PollOnce(); err != nil {
			b.Fatal(err)
		}
	}
	if ing.Uploaded() != b.N {
		b.Fatalf("uploaded %d of %d blocks", ing.Uploaded(), b.N)
	}
}

// BenchmarkE9GridFTPStreams measures striped-transfer throughput vs stream
// count — the GridFTP parallelism NFMS negotiates for.
func BenchmarkE9GridFTPStreams(b *testing.B) {
	srv, err := gridftp.NewServer(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })

	const size = 4 << 20
	src := filepath.Join(b.TempDir(), "src.bin")
	if err := os.WriteFile(src, make([]byte, size), 0o644); err != nil {
		b.Fatal(err)
	}
	for _, streams := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("streams-%d", streams), func(b *testing.B) {
			cl := &gridftp.Client{Addr: addr}
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				if err := cl.Put(src, fmt.Sprintf("bench/%d/%d.bin", streams, i), streams); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Streaming measures NSDS fan-out throughput with ten
// best-effort subscribers (one slow).
func BenchmarkE10Streaming(b *testing.B) {
	hub := nsds.NewHub()
	defer hub.Close()
	for i := 0; i < 9; i++ {
		sub, _ := hub.Subscribe(1024)
		go func() {
			for range sub.C() {
			}
		}()
	}
	_, _ = hub.Subscribe(1) // slow consumer: exercises the drop path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Publish(nsds.Sample{Channel: "uiuc.disp", T: float64(i), Value: 0.01})
	}
	published, dropped := hub.Stats()
	b.ReportMetric(float64(dropped)/float64(published), "drop-ratio")
}

// BenchmarkE12FourSite measures the §5 four-site soil-structure topology.
func BenchmarkE12FourSite(b *testing.B) {
	spec := most.SoilStructureSpec()
	spec.Steps = 30
	exp := buildExperiment(b, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runExperiment(b, exp, i)
		if !res.Report.Completed {
			b.Fatal("run did not complete")
		}
	}
	b.ReportMetric(float64(30*b.N)/b.Elapsed().Seconds(), "steps/s")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblationTransactionVsDirect quantifies the cost of NTCP's
// propose/execute separation versus a single direct command — the price
// paid for pre-execution policy negotiation and idempotent retry.
func BenchmarkAblationTransactionVsDirect(b *testing.B) {
	ca, _ := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	trust := gsi.NewTrustStore(ca.Cert)
	serverCred, _ := ca.Issue("/O=NEES/CN=site", time.Hour)
	clientCred, _ := ca.Issue("/O=NEES/CN=coord", time.Hour)
	gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=coord": "coord"})
	cont := ogsi.NewContainer(serverCred, trust, gm)

	apply := func(d []float64) ([]float64, error) { return []float64{1e6 * d[0]}, nil }
	srv := core.NewServer(&core.SubstructurePlugin{Point: "drift", NDOF: 1, Apply: apply},
		nil, core.ServerOptions{})
	cont.AddService(srv.Service())

	// Direct command service: one op, no transaction.
	direct := ogsi.NewService("direct")
	direct.RegisterOp("apply", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p struct {
			D []float64 `json:"d"`
		}
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, err
		}
		f, err := apply(p.D)
		if err != nil {
			return nil, err
		}
		return map[string][]float64{"f": f}, nil
	})
	cont.AddService(direct)

	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	})
	og := ogsi.NewClient("http://"+addr, clientCred, trust)
	ntcp := core.NewClient(og, core.NoRetry)
	ctx := context.Background()

	b.Run("transaction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := ntcp.Run(ctx, &core.Proposal{
				Name:    fmt.Sprintf("abl-%d", i),
				Actions: []core.Action{{ControlPoint: "drift", Displacements: []float64{0.001}}},
			})
			if err != nil || rec.State != core.StateExecuted {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out map[string][]float64
			if err := og.Call(ctx, "direct", "apply", map[string][]float64{"d": {0.001}}, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPushVsPollPlugin compares the direct (push) plugin with
// the buffering poll/notify Mplugin, measuring the decoupling overhead of
// the Fig. 9 NCSA integration pattern.
func BenchmarkAblationPushVsPollPlugin(b *testing.B) {
	ctx := context.Background()
	actions := []core.Action{{ControlPoint: "drift", Displacements: []float64{0.001}}}
	apply := func(d []float64) ([]float64, error) { return []float64{1e6 * d[0]}, nil }

	b.Run("push", func(b *testing.B) {
		p := &core.SubstructurePlugin{Point: "drift", NDOF: 1, Apply: apply}
		for i := 0; i < b.N; i++ {
			if _, err := p.Execute(ctx, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("poll", func(b *testing.B) {
		m := plugin.NewMplugin("drift", 1, 16)
		bctx, cancel := context.WithCancel(ctx)
		defer cancel()
		go func() { _ = m.RunBackend(bctx, apply) }()
		for i := 0; i < b.N; i++ {
			if _, err := m.Execute(ctx, actions); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRigVsSimulation compares the plain numerical element
// against the emulated servo rig (settle loop + sensors) — the per-step
// price of physical fidelity.
func BenchmarkAblationRigVsSimulation(b *testing.B) {
	b.Run("simulation", func(b *testing.B) {
		el := structural.NewBilinear(7.7e5, 25e3, 0.05)
		d := 0.0
		for i := 0; i < b.N; i++ {
			d = 0.01 * float64(i%3)
			_ = el.Restore(d)
		}
	})
	b.Run("rig", func(b *testing.B) {
		cfg := control.DefaultActuator()
		cfg.PositionNoiseStd, cfg.ForceNoiseStd = 0, 0
		rig := control.NewColumnRig("bench", cfg, 7.7e5, 25e3, 0.05)
		for i := 0; i < b.N; i++ {
			if _, err := rig.Apply([]float64{0.01 * float64(i%3)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIntegrators compares the explicit-Newmark and α-OS
// schemes on the MOST model — the per-step numerical cost of unconditional
// stability (α-OS pays an extra effective-mass solve against the initial
// stiffness).
func BenchmarkAblationIntegrators(b *testing.B) {
	cfg := structural.MOSTConfig()
	ground := func(step int) float64 { return 0.5 }
	run := func(b *testing.B, mk func() structural.Integrator) {
		for i := 0; i < b.N; i++ {
			a, err := cfg.Assembly()
			if err != nil {
				b.Fatal(err)
			}
			sys := cfg.System(a)
			if _, err := structural.Run(sys, mk(), structural.RunOptions{
				Dt: cfg.Dt, Steps: 200, Ground: ground,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("explicit-newmark", func(b *testing.B) {
		run(b, func() structural.Integrator { return structural.NewExplicitNewmark() })
	})
	b.Run("alpha-os", func(b *testing.B) {
		run(b, func() structural.Integrator {
			in, err := structural.NewAlphaOS(-0.05)
			if err != nil {
				b.Fatal(err)
			}
			return in
		})
	})
}

// BenchmarkAblationGSISigning isolates the message-security cost: sign +
// verify one envelope per op.
func BenchmarkAblationGSISigning(b *testing.B) {
	ca, _ := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	cred, _ := ca.Issue("/O=NEES/CN=coord", time.Hour)
	proxy, _ := cred.Delegate(time.Hour)
	trust := gsi.NewTrustStore(ca.Cert)
	payload := []byte(`{"service":"ntcp","op":"propose"}`)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := gsi.Sign(proxy, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := trust.Open(env, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationChainCache isolates the verified-chain cache: opening
// envelopes signed by the same proxy chain with the cache enabled (warm
// digest hit, payload verify only) versus disabled (full per-envelope chain
// verification, the pre-cache behaviour).
func BenchmarkAblationChainCache(b *testing.B) {
	ca, _ := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	cred, _ := ca.Issue("/O=NEES/CN=coord", time.Hour)
	proxy, _ := cred.Delegate(time.Hour)
	payload := []byte(`{"service":"ntcp","op":"propose"}`)
	env, err := gsi.Sign(proxy, payload)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	run := func(b *testing.B, capacity int) {
		trust := gsi.NewTrustStore(ca.Cert)
		trust.SetCacheCapacity(capacity)
		if _, _, err := trust.Open(env, now); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := trust.Open(env, now); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached", func(b *testing.B) { run(b, gsi.DefaultChainCacheCapacity) })
	b.Run("uncached", func(b *testing.B) { run(b, 0) })
}

// BenchmarkE8NtcpParallel measures aggregate NTCP transaction throughput
// with concurrent coordinator goroutines sharing one site — the fan-in the
// tuned shared transport and chain cache are sized for.
func BenchmarkE8NtcpParallel(b *testing.B) {
	cl := ntcpFixture(b, faultnet.LAN)
	ctx := context.Background()
	var seq atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec, err := cl.Run(ctx, &core.Proposal{
				Name:    fmt.Sprintf("par-%d", seq.Add(1)),
				Actions: []core.Action{{ControlPoint: "drift", Displacements: []float64{0.001}}},
			})
			if err != nil || rec.State != core.StateExecuted {
				b.Fatalf("%v %v", rec, err)
			}
		}
	})
}

// BenchmarkE10StreamingBatch measures the same ten-subscriber fan-out as
// BenchmarkE10Streaming but publishing through PublishBatch in blocks of 16
// — the DAQ scan-block shape — amortising hub locking across the batch.
func BenchmarkE10StreamingBatch(b *testing.B) {
	hub := nsds.NewHub()
	defer hub.Close()
	for i := 0; i < 9; i++ {
		sub, _ := hub.Subscribe(1024)
		go func() {
			for range sub.C() {
			}
		}()
	}
	_, _ = hub.Subscribe(1) // slow consumer: exercises the drop path
	const batch = 16
	samples := make([]nsds.Sample, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range samples {
			samples[j] = nsds.Sample{Channel: "uiuc.disp", T: float64(i*batch + j), Value: 0.01}
		}
		hub.PublishBatch(samples)
	}
	published, dropped := hub.Stats()
	b.ReportMetric(float64(dropped)/float64(published), "drop-ratio")
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "samples/s")
}

// benchFanOut measures NSDS delivery throughput at viewer scale across the
// three fan-out shapes of DESIGN.md §5g, publishing DAQ-shaped blocks of
// 32 samples to `subs` subscribers:
//
//   - flat: the original single-shard hub with per-sample subscriptions —
//     every sample is one channel op per subscriber, twice (send+receive).
//   - sharded: the sharded hub with batch subscriptions — one channel op
//     per subscriber per block, the shared *Batch allocated once.
//   - relay: two tiers (hub → LocalRelay → hub) with every viewer behind
//     the relay hub; the timed region spans the full traversal.
//
// Viewers are drained event-loop style from the benchmark goroutine
// (publish a block, sweep every subscriber empty) rather than by one
// goroutine per viewer: on the single-core CI runner a per-viewer
// goroutine costs a scheduler wake per batch (~1.7 µs), which swamps the
// per-sample-vs-per-batch protocol cost this benchmark exists to compare —
// and is exactly the cost the real server avoids by writing one shared
// frame per connection instead of waking per sample. Every sample is
// delivered (nothing drops), so deliveries/s — samples enqueued per second,
// the capacity number the 100k case must beat flat by ≥10× per
// BENCH_ntcp.json — is deterministic.
func benchFanOut(b *testing.B, subs int) {
	const batch = 32
	fill := func(samples []nsds.Sample, i int) {
		for j := range samples {
			samples[j] = nsds.Sample{Channel: "uiuc.disp", T: float64(i*batch + j), Value: 0.01}
		}
	}

	b.Run("flat", func(b *testing.B) {
		hub := nsds.NewHubShards(1)
		defer hub.Close()
		chans := make([]<-chan nsds.Sample, subs)
		for i := range chans {
			sub, err := hub.Subscribe(batch)
			if err != nil {
				b.Fatal(err)
			}
			chans[i] = sub.C()
		}
		samples := make([]nsds.Sample, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(samples, i)
			hub.PublishBatch(samples)
			for _, c := range chans {
				for range batch {
					<-c
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(hub.Delivered())/b.Elapsed().Seconds(), "deliveries/s")
	})

	b.Run("sharded", func(b *testing.B) {
		hub := nsds.NewHubShards(0)
		defer hub.Close()
		chans := make([]<-chan *nsds.Batch, subs)
		for i := range chans {
			sub, err := hub.SubscribeBatches(1, false)
			if err != nil {
				b.Fatal(err)
			}
			chans[i] = sub.Batches()
		}
		samples := make([]nsds.Sample, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(samples, i)
			hub.PublishBatch(samples)
			for _, c := range chans {
				<-c
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(hub.Delivered())/b.Elapsed().Seconds(), "deliveries/s")
	})

	b.Run("relay", func(b *testing.B) {
		up := nsds.NewHub()
		defer up.Close()
		down := nsds.NewHub()
		defer down.Close()
		lr, err := nsds.NewLocalRelay(up, down, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer lr.Stop()
		chans := make([]<-chan *nsds.Batch, subs)
		for i := range chans {
			sub, err := down.SubscribeBatches(1, false)
			if err != nil {
				b.Fatal(err)
			}
			chans[i] = sub.Batches()
		}
		samples := make([]nsds.Sample, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(samples, i)
			up.PublishBatch(samples)
			// The blocking receive parks this goroutine until the relay
			// forwarder has fanned the block out to the viewer tier.
			for _, c := range chans {
				<-c
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(down.Delivered())/b.Elapsed().Seconds(), "deliveries/s")
	})
}

// BenchmarkE10FanOut1k: a collaboration-scale audience (1 000 viewers).
func BenchmarkE10FanOut1k(b *testing.B) { benchFanOut(b, 1_000) }

// BenchmarkE10FanOut100k: the viewer-scale target — the paper's public
// webcast audience, two orders of magnitude past the experiment floor.
func BenchmarkE10FanOut100k(b *testing.B) { benchFanOut(b, 100_000) }

// wanCoordSite builds one NTCP site behind the emulated WAN (5 ms one-way
// + jitter) on a persistent pinned connection, bound as a coordinator site.
func wanCoordSite(b *testing.B) coord.Site {
	b.Helper()
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	serverCred, _ := ca.Issue("/O=NEES/CN=site", time.Hour)
	clientCred, _ := ca.Issue("/O=NEES/CN=coord", time.Hour)
	gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=coord": "coord"})
	cont := ogsi.NewContainer(serverCred, trust, gm)
	plug := &core.SubstructurePlugin{Point: "drift", NDOF: 1,
		Apply: func(d []float64) ([]float64, error) { return []float64{1000 * d[0]}, nil }}
	srv := core.NewServer(plug, nil, core.ServerOptions{})
	cont.AddService(srv.Service())
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	})
	og := ogsi.NewClient("http://"+addr, clientCred, trust)
	// Deterministic 5 ms one-way, no jitter: the pipelined benchmark gates
	// an ABSOLUTE ns/op ceiling (max_ns_op in BENCH_ntcp.json), and seeded
	// jitter would add ~0.5 ms of by-construction noise to a hard target.
	in := faultnet.NewInjector(faultnet.Profile{Latency: 5 * time.Millisecond})
	og.HTTP = &http.Client{Transport: faultnet.NewTransportOver(in, ogsi.NewPinnedTransport(2))}
	return coord.Site{
		Name:         "site",
		Client:       core.NewClient(og, core.DefaultRetry),
		ControlPoint: "drift",
		DOFs:         []int{0},
	}
}

// BenchmarkE8WANPipelined measures one coordinator step over the emulated
// WAN under the pipelined protocol: execute(N) and propose(N+1) ride one
// batched signed envelope on a persistent connection, so the steady-state
// step pays the injected WAN latency once — versus the ~2.5 round trips of
// the classic propose/execute barriers (BenchmarkE8NtcpLatencyWAN).
func BenchmarkE8WANPipelined(b *testing.B) {
	site := wanCoordSite(b)
	cfg := coord.Config{
		M:     structural.Diagonal([]float64{100}),
		K:     structural.Diagonal([]float64{1000}),
		Dt:    0.01,
		Steps: b.N,
		// Gentle motion: predictor error |a|·dt² stays inside the 1 mm
		// speculation tolerance, so steady state is all hit steps.
		Ground:   func(step int) float64 { return 0.5 * math.Sin(0.03*float64(step)) },
		RunID:    "pipe-bench",
		Pipeline: true,
	}
	c, err := coord.New(cfg, site)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	_, report, err := c.Run(context.Background())
	if err != nil || !report.Completed {
		b.Fatalf("report = %+v, %v", report, err)
	}
	b.StopTimer()
	hits := report.Telemetry.Counters["coord.pipeline.hits"]
	if b.N > 2 && hits == 0 {
		b.Fatal("pipeline never hit: the benchmark is not measuring the speculative path")
	}
	b.ReportMetric(float64(hits)/float64(b.N), "hits/step")
}
