// Command chefd runs the CHEF-style collaboration server (paper §3, Fig. 8):
// login, chat, message board, electronic notebook, presence, and the data
// viewer. With -nsds it subscribes to a streaming endpoint and records the
// stream for the viewer windows and VCR playback.
//
// Example:
//
//	chefd -addr 127.0.0.1:8088 -nsds 127.0.0.1:7777
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"neesgrid/internal/collab"
	"neesgrid/internal/nsds"
	"neesgrid/internal/telepresence"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8088", "HTTP listen address")
	nsdsAddr := flag.String("nsds", "", "NSDS endpoint to record (empty = no viewer feed)")
	workspace := flag.String("workspace", "most", "workspace name")
	retention := flag.Int("retention", 100_000, "viewer samples kept per channel")
	camera := flag.String("camera", "", "expose a telepresence camera tracking this viewer channel")
	flag.Parse()

	ws := collab.NewWorkspace(*workspace)
	viewer := collab.NewViewer(*retention)

	if *nsdsAddr != "" {
		cl, err := nsds.DialCatchUp(*nsdsAddr, 4096, nil, nil)
		if err != nil {
			fatal("nsds: %v", err)
		}
		defer cl.Close()
		go viewer.FeedFrom(cl.C())
		fmt.Printf("chefd: recording stream from %s\n", *nsdsAddr)
	}

	mux := http.NewServeMux()
	mux.Handle("/", collab.NewHandler(ws, viewer))
	if *camera != "" {
		reg := telepresence.NewRegistry()
		// The demo camera watches the most recent sample of the named
		// viewer channel — remote participants see the specimen move.
		_ = reg.Add(telepresence.NewCamera(*camera+"-cam1", func() float64 {
			win := viewer.Window(*camera, 0, 1e18)
			if len(win) == 0 {
				return 0
			}
			return win[len(win)-1].Value
		}))
		mux.Handle("/cameras", telepresence.NewHandler(reg))
		mux.Handle("/cameras/", telepresence.NewHandler(reg))
		fmt.Printf("chefd: telepresence camera %s-cam1 (GET /cameras)\n", *camera)
	}
	srv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal("serve: %v", err)
		}
	}()
	fmt.Printf("chefd: workspace %q on http://%s (POST /login, /chat, /board, /notebook, GET /presence, /viewer/window)\n",
		*workspace, *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("chefd: shutting down")
	_ = srv.Close()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chefd: "+format+"\n", args...)
	os.Exit(1)
}
