// Command chefd runs the CHEF-style collaboration server (paper §3, Fig. 8):
// login, chat, message board, electronic notebook, presence, and the data
// viewer. With -nsds it subscribes to a streaming endpoint and records the
// stream for the viewer windows and VCR playback.
//
// Example:
//
//	chefd -addr 127.0.0.1:8088 -nsds 127.0.0.1:7777
//
// SIGINT/SIGTERM drain the process: the NSDS feed disconnects first, then
// in-flight HTTP requests get the drain deadline to finish before the
// listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"neesgrid/internal/collab"
	"neesgrid/internal/nsds"
	"neesgrid/internal/runtime"
	"neesgrid/internal/telepresence"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8088", "HTTP listen address")
	nsdsAddr := flag.String("nsds", "", "NSDS endpoint to record (empty = no viewer feed)")
	workspace := flag.String("workspace", "most", "workspace name")
	retention := flag.Int("retention", 100_000, "viewer samples kept per channel")
	camera := flag.String("camera", "", "expose a telepresence camera tracking this viewer channel")
	var debugFlags runtime.DebugFlags
	debugFlags.Register(nil)
	flag.Parse()

	ws := collab.NewWorkspace(*workspace)
	viewer := collab.NewViewer(*retention)

	sup := runtime.NewSupervisor("chefd")
	ds := debugFlags.Install(sup, nil)

	mux := http.NewServeMux()
	mux.Handle("/", collab.NewHandler(ws, viewer))
	if *camera != "" {
		reg := telepresence.NewRegistry()
		// The demo camera watches the most recent sample of the named
		// viewer channel — remote participants see the specimen move.
		_ = reg.Add(telepresence.NewCamera(*camera+"-cam1", func() float64 {
			win := viewer.Window(*camera, 0, 1e18)
			if len(win) == 0 {
				return 0
			}
			return win[len(win)-1].Value
		}))
		mux.Handle("/cameras", telepresence.NewHandler(reg))
		mux.Handle("/cameras/", telepresence.NewHandler(reg))
		fmt.Printf("chefd: telepresence camera %s-cam1 (GET /cameras)\n", *camera)
	}

	// Stop order (reverse of registration): the feed disconnects before the
	// workspace server shuts down.
	srv := runtime.NewDebugServer(*addr, mux)
	sup.Add("workspace-server", runtime.Funcs{
		StartFunc: func(ctx context.Context) error {
			if err := srv.Start(ctx); err != nil {
				return err
			}
			fmt.Printf("chefd: workspace %q on http://%s (POST /login, /chat, /board, /notebook, GET /presence, /viewer/window)\n",
				*workspace, srv.Addr())
			if ds != nil {
				fmt.Printf("chefd: probes at http://%s/healthz /readyz\n", ds.Addr())
			}
			return nil
		},
		StopFunc:    srv.Stop,
		HealthyFunc: srv.Healthy,
	})
	if *nsdsAddr != "" {
		var cl *nsds.Client
		sup.Add("nsds-feed", runtime.Funcs{
			StartFunc: func(context.Context) error {
				var err error
				cl, err = nsds.DialCatchUp(*nsdsAddr, 4096, nil, nil)
				if err != nil {
					return fmt.Errorf("nsds: %w", err)
				}
				go viewer.FeedFrom(cl.C())
				fmt.Printf("chefd: recording stream from %s\n", *nsdsAddr)
				return nil
			},
			StopFunc: func(context.Context) error {
				return cl.Close()
			},
		})
	}

	return runtime.Main("chefd", sup, nil)
}
