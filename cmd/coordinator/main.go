// Command coordinator runs the MS-PSDS simulation coordinator against
// remote ntcpd sites (paper Fig. 5): it reads an experiment description,
// drives the pseudo-dynamic loop over NTCP, and writes the response history
// and run report.
//
// Example:
//
//	coordinator -config most.json \
//	            -ca-cert certs/ca.cert -cred certs/coordinator.cred \
//	            -out out/
//
// with most.json:
//
//	{
//	  "name": "most",
//	  "mass": 20000, "damping": 0.02, "dt": 0.01, "steps": 1500,
//	  "ground": {"pga_g": 0.4, "seed": 1940},
//	  "retry": {"attempts": 5, "backoff_ms": 50},
//	  "sites": [
//	    {"name": "uiuc", "addr": "127.0.0.1:4455", "point": "left-column", "k": 7.7e5},
//	    {"name": "ncsa", "addr": "127.0.0.1:4456", "point": "middle-frame", "k": 2.0e6},
//	    {"name": "cu",   "addr": "127.0.0.1:4457", "point": "right-column", "k": 7.7e5}
//	  ]
//	}
//
// SIGINT/SIGTERM interrupt the stepping loop but still flush the partial
// response history, ground record and run report before exiting 0; a run
// that dies on its own exits 2.
//
// With -checkpoint the coordinator journals an atomic per-step snapshot;
// a crashed coordinator restarted with -resume picks the run up from the
// snapshot, relying on NTCP's named-transaction dedupe to replay any step
// the sites already executed.
//
// With -obs the coordinator serves a cross-site observability aggregator:
// every site's /metrics endpoint is scraped alongside the coordinator's own
// registry, merged into exact fleet-wide quantiles, and exposed at /fleet
// (for `mostctl top`), /metrics (JSON or Prometheus) and /slo. Rules given
// via -slo are evaluated continuously; a breach latches into the verdict,
// is written to <out>/<name>-metrics.json, and makes the run exit 3 even
// when the stepping loop itself succeeded.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"neesgrid/internal/coord"
	"neesgrid/internal/core"
	"neesgrid/internal/groundmotion"
	"neesgrid/internal/gsi"
	"neesgrid/internal/obs"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/runtime"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

type groundConfig struct {
	PGAg float64 `json:"pga_g"`
	Seed int64   `json:"seed"`
	// File overrides synthesis with a t,ag CSV record.
	File string `json:"file,omitempty"`
}

type retryConfig struct {
	Attempts  int `json:"attempts"`
	BackoffMs int `json:"backoff_ms"`
}

type siteConfig struct {
	Name  string  `json:"name"`
	Addr  string  `json:"addr"`
	Point string  `json:"point"`
	K     float64 `json:"k"`
}

type experimentConfig struct {
	Name    string       `json:"name"`
	Mass    float64      `json:"mass"`
	Damping float64      `json:"damping"`
	Dt      float64      `json:"dt"`
	Steps   int          `json:"steps"`
	Ground  groundConfig `json:"ground"`
	Retry   retryConfig  `json:"retry"`
	Sites   []siteConfig `json:"sites"`
}

func main() { os.Exit(run()) }

func run() int {
	configPath := flag.String("config", "", "experiment JSON (required)")
	caCert := flag.String("ca-cert", "certs/ca.cert", "trusted CA certificate")
	credPath := flag.String("cred", "", "coordinator credential")
	out := flag.String("out", "out", "output directory")
	ckptPath := flag.String("checkpoint", "", "journal per-step snapshots to this file (atomic replace)")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint cadence in steps")
	resume := flag.Bool("resume", false, "resume from the -checkpoint snapshot instead of starting from rest")
	obsAddr := flag.String("obs", "", "serve the cross-site obs aggregator (/fleet /metrics /slo) on this address")
	sloPath := flag.String("slo", "", "SLO rules JSON; breaches latch into the run verdict and exit code 3")
	var debugFlags runtime.DebugFlags
	debugFlags.Register(nil)
	flag.Parse()
	if *configPath == "" || *credPath == "" {
		return fatal("need -config and -cred")
	}

	raw, err := os.ReadFile(*configPath)
	if err != nil {
		return fatal("read config: %v", err)
	}
	var cfg experimentConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fatal("parse config: %v", err)
	}
	if len(cfg.Sites) == 0 || cfg.Mass <= 0 || cfg.Dt <= 0 || cfg.Steps <= 0 {
		return fatal("config needs sites, mass, dt, steps")
	}

	cert, err := gsi.LoadCertificate(*caCert)
	if err != nil {
		return fatal("load CA cert: %v", err)
	}
	cred, err := gsi.LoadCredential(*credPath)
	if err != nil {
		return fatal("load credential: %v", err)
	}
	trust := gsi.NewTrustStore(cert)

	retry := core.DefaultRetry
	if cfg.Retry.Attempts > 0 {
		retry = core.RetryPolicy{
			Attempts:   cfg.Retry.Attempts,
			Backoff:    time.Duration(cfg.Retry.BackoffMs) * time.Millisecond,
			MaxBackoff: 2 * time.Second,
		}
	}

	// One registry across the coordinator and every site client: step
	// latency and NTCP round trips land in the same run report. Same for
	// the tracer: step root spans and per-site client spans share one
	// recorder, served at -pprof's /trace.
	reg := telemetry.NewRegistry()
	rec := trace.NewRecorder(0)
	tracer := trace.NewTracer("coordinator", rec)

	sup := runtime.NewSupervisor("coordinator")
	ds := debugFlags.Install(sup, rec)
	if ds != nil {
		sup.AddFuncs("banner", runtime.Funcs{StartFunc: func(context.Context) error {
			fmt.Printf("coordinator: pprof at http://%s/debug/pprof/, spans at /trace, probes at /healthz /readyz\n",
				ds.Addr())
			return nil
		}})
	}

	totalK := 0.0
	sites := make([]coord.Site, len(cfg.Sites))
	for i, s := range cfg.Sites {
		totalK += s.K
		og := ogsi.NewClient("http://"+s.Addr, cred, trust)
		og.Tracer = tracer
		sites[i] = coord.Site{
			Name:         s.Name,
			Client:       core.NewClientWithTelemetry(og, retry, reg),
			ControlPoint: s.Point,
			DOFs:         []int{0},
		}
	}

	// Observability plane: one scrape source per remote site's container
	// /metrics, plus the coordinator's own registry in-process (with process
	// self-metrics refreshed per fetch). SLO breaches latch into the verdict
	// written to <out>/<name>-metrics.json and gate the exit code.
	var slos []obs.SLO
	if *sloPath != "" {
		var err error
		slos, err = obs.LoadSLOFile(*sloPath)
		if err != nil {
			return fatal("slo: %v", err)
		}
	}
	sources := make([]obs.Source, 0, len(cfg.Sites)+1)
	for _, s := range cfg.Sites {
		sources = append(sources, obs.Source{Name: s.Name, URL: "http://" + s.Addr + "/metrics"})
	}
	coordSource := obs.Source{Name: "coordinator", Fetch: func() telemetry.Snapshot {
		telemetry.ProcessMetrics(reg)
		return reg.Snapshot()
	}}
	if ds != nil {
		// Breach-triggered profile capture hits the -pprof debug mux.
		coordSource.PprofURL = "http://" + ds.Addr()
	}
	sources = append(sources, coordSource)
	agg := obs.New(obs.Config{Sources: sources, SLOs: slos, ProfileDir: *out})
	sup.Add("obs-aggregator", agg)
	if *obsAddr != "" {
		ln, err := net.Listen("tcp", *obsAddr)
		if err != nil {
			return fatal("obs: listen %s: %v", *obsAddr, err)
		}
		obsSrv := &http.Server{Handler: agg.Mux()}
		go func() { _ = obsSrv.Serve(ln) }()
		sup.Adopt("obs-http", runtime.StopErrFunc(obsSrv.Close))
		fmt.Printf("coordinator: obs aggregator at http://%s (endpoints: /fleet /metrics /slo /series /push)\n",
			ln.Addr())
	}

	ground, err := loadGround(cfg)
	if err != nil {
		return fatal("%v", err)
	}

	m := structural.Diagonal([]float64{cfg.Mass})
	k := structural.Diagonal([]float64{totalK})
	var damp *structural.Matrix
	if cfg.Damping > 0 {
		wn := structuralNaturalFreq(totalK, cfg.Mass)
		damp = structural.RayleighDamping(m, k, cfg.Damping, wn, 5*wn)
	}

	ccfg := coord.Config{
		M: m, C: damp, K: k,
		Dt: cfg.Dt, Steps: cfg.Steps,
		Ground:    ground.At,
		RunID:     cfg.Name,
		Telemetry: reg,
		Tracer:    tracer,
	}
	if *ckptPath != "" {
		ccfg.Checkpoint = &coord.CheckpointConfig{Path: *ckptPath, Every: *ckptEvery}
	}
	if *resume {
		if *ckptPath == "" {
			return fatal("-resume requires -checkpoint")
		}
		cp, err := coord.LoadCheckpoint(*ckptPath)
		if err != nil {
			return fatal("resume: %v", err)
		}
		ccfg.Resume = cp
		fmt.Printf("coordinator: resuming %q from checkpoint at step %d\n", cp.RunID, cp.Step)
	}
	co, err := coord.New(ccfg, sites...)
	if err != nil {
		return fatal("coordinator: %v", err)
	}

	// The stepping loop is the foreground job: a SIGINT/SIGTERM cancels
	// ctx, the in-flight step errors out, and the flush below still runs —
	// an interrupted run keeps its partial history and report.
	return runtime.Main("coordinator", sup, func(ctx context.Context) error {
		fmt.Printf("coordinator: running %q: %d steps x %g s over %d sites\n",
			cfg.Name, cfg.Steps, cfg.Dt, len(sites))
		hist, report, runErr := co.Run(ctx)

		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("output dir: %w", err)
		}
		writeOutputs(*out, cfg.Name, hist, ground)

		fmt.Printf("coordinator: completed %d/%d steps in %s (recovered %d transient failures, %d retries)\n",
			report.StepsCompleted, cfg.Steps, report.Elapsed.Round(time.Millisecond),
			report.Recovered, report.Retries)
		if report.Checkpoints > 0 || report.ResumedFrom >= 0 {
			from := "from rest"
			if report.ResumedFrom >= 0 {
				from = fmt.Sprintf("resumed from step %d", report.ResumedFrom)
			}
			fmt.Printf("coordinator: wrote %d checkpoints (%s)\n", report.Checkpoints, from)
		}
		if sl := report.StepLatency; sl.Count > 0 {
			fmt.Printf("coordinator: step latency p50=%s p95=%s p99=%s\n",
				seconds(sl.P50), seconds(sl.P95), seconds(sl.P99))
		}
		// Successful calls only — failed attempts are kept apart in
		// ntcp.client.failed_rtt.seconds so they cannot skew the percentiles.
		if rtt, ok := report.Telemetry.Histograms["ntcp.client.rtt.seconds"]; ok && rtt.Count > 0 {
			fmt.Printf("coordinator: NTCP rtt p50=%s p95=%s p99=%s over %d calls\n",
				seconds(rtt.P50), seconds(rtt.P95), seconds(rtt.P99), rtt.Count)
		}
		if frtt, ok := report.Telemetry.Histograms["ntcp.client.failed_rtt.seconds"]; ok && frtt.Count > 0 {
			fmt.Printf("coordinator: NTCP failed rtt p50=%s p95=%s p99=%s over %d calls\n",
				seconds(frtt.P50), seconds(frtt.P95), seconds(frtt.P99), frtt.Count)
		}
		// Final scrape so the archived roll-up (and the SLO gate below)
		// reflect the finished run, then persist the machine-readable
		// fleet view + verdict beside the response history.
		scrapeCtx, cancelScrape := context.WithTimeout(context.Background(), 10*time.Second)
		agg.ScrapeOnce(scrapeCtx)
		cancelScrape()
		verdict := agg.Verdict()
		writeRollup(*out, cfg.Name, agg, verdict)
		if runErr != nil {
			if ctx.Err() != nil {
				// Signal-initiated: outputs are flushed, exit clean.
				fmt.Printf("coordinator: run interrupted at step %d, outputs flushed\n",
					report.FailedStep)
				return nil
			}
			return runtime.Exitf(2, "run terminated prematurely at step %d: %v",
				report.FailedStep, runErr)
		}
		// SLO gate: a run that finished but latched a breach exits 3 —
		// CI treats it as a performance regression, not a crash.
		if !verdict.OK {
			for _, r := range verdict.Rules {
				if r.Breaches > 0 {
					fmt.Fprintf(os.Stderr, "coordinator: SLO %s breached %d times (worst %.4g > max %.4g)\n",
						r.Name, r.Breaches, r.Worst, r.Max)
				}
			}
			return runtime.Exitf(3, "run completed but breached its SLOs")
		}
		return nil
	})
}

// writeRollup persists the run's observability roll-up — final fleet view
// plus latched SLO verdict — as <out>/<name>-metrics.json.
func writeRollup(dir, name string, agg *obs.Aggregator, verdict obs.Verdict) {
	rollup := struct {
		Run      string        `json:"run"`
		Finished time.Time     `json:"finished"`
		Fleet    obs.FleetView `json:"fleet"`
		Verdict  obs.Verdict   `json:"verdict"`
	}{Run: name, Finished: time.Now(), Fleet: agg.Fleet(), Verdict: verdict}
	b, err := json.MarshalIndent(rollup, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: metrics roll-up: %v\n", err)
		return
	}
	path := filepath.Join(dir, name+"-metrics.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: metrics roll-up: %v\n", err)
		return
	}
	fmt.Printf("coordinator: wrote %s\n", path)
}

// seconds renders a histogram value recorded in seconds as a duration.
func seconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

func structuralNaturalFreq(k, m float64) float64 {
	cfg := structural.FrameConfig{Mass: m, LeftK: k}
	return cfg.NaturalFrequency()
}

func loadGround(cfg experimentConfig) (*groundmotion.Record, error) {
	if cfg.Ground.File != "" {
		f, err := os.Open(cfg.Ground.File)
		if err != nil {
			return nil, fmt.Errorf("ground motion file: %w", err)
		}
		defer f.Close()
		rec, err := groundmotion.ReadCSV(f, cfg.Ground.File)
		if err != nil {
			return nil, err
		}
		return rec.Resample(cfg.Dt)
	}
	g := groundmotion.ElCentroLike()
	g.Dt = cfg.Dt
	g.Duration = float64(cfg.Steps) * cfg.Dt
	if cfg.Ground.PGAg > 0 {
		g.PGA = cfg.Ground.PGAg * 9.81
	}
	if cfg.Ground.Seed != 0 {
		g.Seed = cfg.Ground.Seed
	}
	return groundmotion.Generate(g)
}

func writeOutputs(dir, name string, hist *structural.History, ground *groundmotion.Record) {
	if hist != nil {
		f, err := os.Create(filepath.Join(dir, name+"-history.csv"))
		if err == nil {
			_ = hist.WriteCSV(f)
			_ = f.Close()
			fmt.Printf("coordinator: wrote %s\n", f.Name())
		}
	}
	if ground != nil {
		f, err := os.Create(filepath.Join(dir, name+"-ground.csv"))
		if err == nil {
			_ = ground.WriteCSV(f)
			_ = f.Close()
		}
	}
}

func fatal(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "coordinator: "+format+"\n", args...)
	return 1
}
