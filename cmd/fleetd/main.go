// Command fleetd runs the multi-tenant experiment fleet scheduler: a
// shared pool of NTCP sites, a weighted fair-share scheduler admitting
// jobs from declared tenants, and an observability aggregator that scrapes
// every pool slot and ingests each finished run's pushed roll-up. One
// listener serves everything:
//
//	POST /submit /cancel        job admission and withdrawal (mostctl fleet)
//	GET  /jobs /job /grants     job listings and the grant-order observable
//	GET  /fleet /metrics /slo   the fleet observability plane (mostctl top)
//	POST /push?site=            roll-up ingestion from experiment runners
//	GET  /healthz /readyz       supervisor probes
//
// Example:
//
//	fleetd -listen 127.0.0.1:9190 -slots 2 -tenants alpha:1,beta:1 -store /tmp/fleet
//	mostctl fleet -url http://127.0.0.1:9190 -submit -tenant alpha -steps 200
//
// SIGINT/SIGTERM drain the process: the scheduler stops admitting and
// cancels running jobs, the aggregator stops scraping, the pool's sites
// tear down, and the API listener closes last so probes answer through
// the drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neesgrid/internal/fleet"
	"neesgrid/internal/obs"
	"neesgrid/internal/runtime"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	listen := flag.String("listen", "127.0.0.1:9190", "fleet API listen address")
	slots := flag.Int("slots", 2, "pooled site slots")
	tenants := flag.String("tenants", "alpha:1,beta:1",
		"admitted tenants as name:weight[,name:weight...]")
	maxQueue := flag.Int("max-queue", fleet.DefaultMaxQueued, "per-tenant queued-job bound")
	store := flag.String("store", "", "tenant-scoped job store root (checkpoints; empty = off)")
	var debugFlags runtime.DebugFlags
	debugFlags.Register(nil)
	flag.Parse()

	ts, err := parseTenants(*tenants, *maxQueue)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		return 2
	}

	reg := telemetry.NewRegistry()
	rec := trace.NewRecorder(0)
	sup := runtime.NewSupervisor("fleetd")
	ds := debugFlags.Install(sup, rec)

	pool, err := fleet.NewPool(fleet.PoolConfig{Slots: *slots, Registry: reg})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: pool: %v\n", err)
		return 1
	}

	// The fleet plane: every pool slot is a pull source (the slots'
	// registries carry the server-side ntcp.server.* / hub series across
	// all tenants), the scheduler's own fleet.* registry rides along
	// in-process, and finished runs push their coordinator-side roll-ups
	// to /push as <tenant>/<jobID> sources.
	var sources []obs.Source
	for _, site := range pool.Sites() {
		sources = append(sources, obs.Source{
			Name: site.Spec.Name,
			URL:  "http://" + site.Addr + "/metrics",
		})
	}
	sources = append(sources, obs.Source{
		Name: "fleetd",
		Fetch: func() telemetry.Snapshot {
			telemetry.ProcessMetrics(reg)
			return reg.Snapshot()
		},
	})
	agg := obs.New(obs.Config{Sources: sources})

	sched, err := fleet.NewScheduler(fleet.Config{
		Pool:      pool,
		Tenants:   ts,
		StoreRoot: *store,
		Agg:       agg,
		Registry:  reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetd: %v\n", err)
		_ = pool.Stop(context.Background())
		return 1
	}

	mux := sched.Mux(agg.Mux())
	sup.RegisterProbes(mux)
	api := runtime.NewDebugServer(*listen, mux)

	// Start order: API listener first (registered first, stopped last, so
	// probes answer through the drain), then the already-running pool,
	// then the aggregator's scrape loop, then the scheduler — which stops
	// first on drain, cancelling jobs before their sites tear down.
	sup.Add("api", runtime.Funcs{
		StartFunc: func(ctx context.Context) error {
			if err := api.Start(ctx); err != nil {
				return err
			}
			fmt.Printf("fleetd: %d-slot pool, tenants %s\n", pool.Size(), *tenants)
			fmt.Printf("fleetd: API at http://%s (/submit /jobs /grants /fleet /metrics /push /healthz)\n", api.Addr())
			if ds != nil {
				fmt.Printf("fleetd: pprof at http://%s/debug/pprof/\n", ds.Addr())
			}
			return nil
		},
		StopFunc:    api.Stop,
		HealthyFunc: api.Healthy,
	})
	sup.Adopt("pool", runtime.Funcs{
		StopFunc:    pool.Stop,
		HealthyFunc: pool.Healthy,
	}, runtime.WithDrain(pool.StopBudget()))
	sup.Add("obs", agg)
	sup.Add("scheduler", sched)

	return runtime.Main("fleetd", sup, nil)
}

// parseTenants reads "name:weight,name:weight" (weight optional,
// default 1).
func parseTenants(s string, maxQueued int) ([]fleet.Tenant, error) {
	var out []fleet.Tenant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, ":")
		t := fleet.Tenant{Name: name, Weight: 1, MaxQueued: maxQueued}
		if hasWeight {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("tenant %q: bad weight %q", name, weightStr)
			}
			t.Weight = w
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants needs at least one tenant")
	}
	return out, nil
}
