// Command gridca bootstraps the trust domain of a NEESgrid deployment: it
// creates the virtual organization's certificate authority and issues site
// and user credentials from it, mirroring the CA workflow the NEESgrid
// sites used.
//
// Usage:
//
//	gridca init  -dir certs [-name "/O=NEES/CN=NEES CA"] [-validity 8760h]
//	gridca issue -dir certs -subject "/O=NEES/CN=uiuc" [-validity 720h]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/runtime"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "gridca: usage: gridca <init|issue> [flags]")
		os.Exit(1)
	}
	// Even the short-lived CA tool runs through the shared runtime entry:
	// one signal/exit-code path for every binary in the deployment. The
	// supervisor is empty — the subcommand is the foreground job.
	var job func(ctx context.Context) error
	switch os.Args[1] {
	case "init":
		job = runInit(os.Args[2:])
	case "issue":
		job = runIssue(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "gridca: unknown subcommand %q (want init or issue)\n", os.Args[1])
		os.Exit(1)
	}
	os.Exit(runtime.Main("gridca", runtime.NewSupervisor("gridca"), job))
}

func runInit(args []string) func(ctx context.Context) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "certs", "output directory")
	name := fs.String("name", "/O=NEES/CN=NEES CA", "CA subject name")
	validity := fs.Duration("validity", 365*24*time.Hour, "CA validity")
	_ = fs.Parse(args)

	return func(context.Context) error {
		ca, err := gsi.NewAuthority(*name, *validity)
		if err != nil {
			return fmt.Errorf("create CA: %w", err)
		}
		if err := ca.Save(filepath.Join(*dir, "ca.json")); err != nil {
			return fmt.Errorf("save CA: %w", err)
		}
		if err := gsi.SaveCertificate(ca.Cert, filepath.Join(*dir, "ca.cert")); err != nil {
			return fmt.Errorf("save CA certificate: %w", err)
		}
		fmt.Printf("created CA %q\n  key:  %s\n  cert: %s\n",
			*name, filepath.Join(*dir, "ca.json"), filepath.Join(*dir, "ca.cert"))
		return nil
	}
}

func runIssue(args []string) func(ctx context.Context) error {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	dir := fs.String("dir", "certs", "CA directory (from gridca init)")
	subject := fs.String("subject", "", "credential subject, e.g. /O=NEES/CN=uiuc")
	validity := fs.Duration("validity", 30*24*time.Hour, "credential validity")
	out := fs.String("out", "", "output path (default <dir>/<CN>.cred)")
	_ = fs.Parse(args)

	return func(context.Context) error {
		if *subject == "" {
			return fmt.Errorf("issue needs -subject")
		}
		ca, err := gsi.LoadAuthority(filepath.Join(*dir, "ca.json"))
		if err != nil {
			return fmt.Errorf("load CA: %w", err)
		}
		cred, err := ca.Issue(*subject, *validity)
		if err != nil {
			return fmt.Errorf("issue: %w", err)
		}
		path := *out
		if path == "" {
			cn := *subject
			if i := strings.LastIndex(cn, "CN="); i >= 0 {
				cn = cn[i+3:]
			}
			cn = strings.ReplaceAll(cn, " ", "-")
			path = filepath.Join(*dir, cn+".cred")
		}
		if err := gsi.SaveCredential(cred, path); err != nil {
			return fmt.Errorf("save credential: %w", err)
		}
		fmt.Printf("issued %q -> %s\n", *subject, path)
		return nil
	}
}
