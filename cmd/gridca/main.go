// Command gridca bootstraps the trust domain of a NEESgrid deployment: it
// creates the virtual organization's certificate authority and issues site
// and user credentials from it, mirroring the CA workflow the NEESgrid
// sites used.
//
// Usage:
//
//	gridca init  -dir certs [-name "/O=NEES/CN=NEES CA"] [-validity 8760h]
//	gridca issue -dir certs -subject "/O=NEES/CN=uiuc" [-validity 720h]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"neesgrid/internal/gsi"
)

func main() {
	if len(os.Args) < 2 {
		fatal("usage: gridca <init|issue> [flags]")
	}
	switch os.Args[1] {
	case "init":
		runInit(os.Args[2:])
	case "issue":
		runIssue(os.Args[2:])
	default:
		fatal("unknown subcommand %q (want init or issue)", os.Args[1])
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gridca: "+format+"\n", args...)
	os.Exit(1)
}

func runInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "certs", "output directory")
	name := fs.String("name", "/O=NEES/CN=NEES CA", "CA subject name")
	validity := fs.Duration("validity", 365*24*time.Hour, "CA validity")
	_ = fs.Parse(args)

	ca, err := gsi.NewAuthority(*name, *validity)
	if err != nil {
		fatal("create CA: %v", err)
	}
	if err := ca.Save(filepath.Join(*dir, "ca.json")); err != nil {
		fatal("save CA: %v", err)
	}
	if err := gsi.SaveCertificate(ca.Cert, filepath.Join(*dir, "ca.cert")); err != nil {
		fatal("save CA certificate: %v", err)
	}
	fmt.Printf("created CA %q\n  key:  %s\n  cert: %s\n",
		*name, filepath.Join(*dir, "ca.json"), filepath.Join(*dir, "ca.cert"))
}

func runIssue(args []string) {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	dir := fs.String("dir", "certs", "CA directory (from gridca init)")
	subject := fs.String("subject", "", "credential subject, e.g. /O=NEES/CN=uiuc")
	validity := fs.Duration("validity", 30*24*time.Hour, "credential validity")
	out := fs.String("out", "", "output path (default <dir>/<CN>.cred)")
	_ = fs.Parse(args)
	if *subject == "" {
		fatal("issue needs -subject")
	}
	ca, err := gsi.LoadAuthority(filepath.Join(*dir, "ca.json"))
	if err != nil {
		fatal("load CA: %v", err)
	}
	cred, err := ca.Issue(*subject, *validity)
	if err != nil {
		fatal("issue: %v", err)
	}
	path := *out
	if path == "" {
		cn := *subject
		if i := strings.LastIndex(cn, "CN="); i >= 0 {
			cn = cn[i+3:]
		}
		cn = strings.ReplaceAll(cn, " ", "-")
		path = filepath.Join(*dir, cn+".cred")
	}
	if err := gsi.SaveCredential(cred, path); err != nil {
		fatal("save credential: %v", err)
	}
	fmt.Printf("issued %q -> %s\n", *subject, path)
}
