package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"neesgrid/internal/chaos"
)

// chaosCmd runs a chaos scenario end to end: it loads the scenario file,
// supervises coordinator incarnations across the scheduled faults, and
// emits the deterministic verdict report. Wall-clock observations (per-
// fault recovery latency) are printed to stderr and recorded in the run's
// telemetry/trace, never in the verdict — the verdict must byte-replay.
//
// Exit status: 0 = scenario completed all steps, 2 = the faults outlasted
// the restart budget, 1 = the harness itself failed.
func chaosCmd(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario file (deploy/scenarios/*.json)")
	out := fs.String("out", "", "also write the verdict JSON to this file")
	ckpt := fs.String("checkpoint", "", "coordinator checkpoint path (default: temp dir, removed after the run)")
	quiet := fs.Bool("q", false, "suppress progress lines on stderr")
	_ = fs.Parse(args)
	if *scenario == "" {
		fatalExit("chaos: -scenario required")
	}

	sc, err := chaos.Load(*scenario)
	if err != nil {
		fatalExit("chaos: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := chaos.Options{CheckpointPath: *ckpt}
	if !*quiet {
		opts.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", a...)
		}
	}
	v, err := chaos.Run(ctx, sc, opts)
	if err != nil {
		fatalExit("chaos: %v", err)
	}

	report := v.Marshal()
	os.Stdout.Write(report)
	if *out != "" {
		if err := os.WriteFile(*out, report, 0o644); err != nil {
			fatalExit("chaos: write verdict: %v", err)
		}
		fmt.Fprintf(os.Stderr, "chaos: wrote %s\n", *out)
	}
	if !v.Completed {
		fatal("chaos: scenario %q did not complete: %d/%d steps after %d incarnations",
			v.Scenario, v.FinalStep, v.Steps, v.Incarnations)
		os.Exit(2)
	}
}
