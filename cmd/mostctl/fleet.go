package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"neesgrid/internal/fleet"
	"neesgrid/internal/obs"
	"neesgrid/internal/telemetry"
)

// fleetCmd drives a fleetd scheduler: submit, list, inspect and cancel
// jobs against a running daemon (-url), or run the self-checking fleet
// smoke (-run) — six experiments from two tenants over a two-slot pool,
// asserting oversubscription queues fairly, every job completes, and the
// fleet roll-up arrives over the real push path.
func fleetCmd(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	run := fs.Bool("run", false, "run the in-process fleet scheduling smoke")
	steps := fs.Int("steps", 40, "integration steps per smoke job")
	listen := fs.String("listen", "127.0.0.1:0", "fleet aggregator listen address for -run")
	store := fs.String("store", "", "store root for -run (default: a temp dir)")
	urlFlag := fs.String("url", "", "fleetd base URL for the client verbs")
	submit := fs.Bool("submit", false, "submit a job (-tenant, -name, -slots, -job-steps)")
	tenant := fs.String("tenant", "", "tenant for -submit")
	name := fs.String("name", "job", "run name for -submit")
	slots := fs.Int("slots", 1, "site slots for -submit")
	jobSteps := fs.Int("job-steps", 200, "integration steps for -submit")
	list := fs.Bool("list", false, "list jobs")
	status := fs.String("status", "", "show one job by ID")
	cancel := fs.String("cancel", "", "cancel a job by ID")
	_ = fs.Parse(args)

	if *run {
		runFleetSmoke(*steps, *listen, *store)
		return
	}
	if *urlFlag == "" {
		fatalExit("fleet: need -run or -url")
	}
	base := strings.TrimRight(*urlFlag, "/")
	switch {
	case *submit:
		if *tenant == "" {
			fatalExit("fleet: -submit needs -tenant")
		}
		var view fleet.JobView
		err := postJSON(base+"/submit", fleet.Request{
			Tenant: *tenant, Name: *name, Slots: *slots, Steps: *jobSteps,
		}, &view)
		if err != nil {
			fatalExit("fleet: submit: %v", err)
		}
		fmt.Printf("mostctl: submitted %s (tenant %s, %d slots, %d steps)\n",
			view.ID, view.Tenant, view.Slots, *jobSteps)
	case *list:
		var views []fleet.JobView
		if err := getJSON(base+"/jobs", &views); err != nil {
			fatalExit("fleet: list: %v", err)
		}
		printJobs(views)
	case *status != "":
		var view fleet.JobView
		if err := getJSON(base+"/job?id="+url.QueryEscape(*status), &view); err != nil {
			fatalExit("fleet: status: %v", err)
		}
		printJobs([]fleet.JobView{view})
	case *cancel != "":
		resp, err := http.Post(base+"/cancel?id="+url.QueryEscape(*cancel), "", nil)
		if err != nil {
			fatalExit("fleet: cancel: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			fatalExit("fleet: cancel: %s returned %s", base, resp.Status)
		}
		fmt.Printf("mostctl: cancelled %s\n", *cancel)
	default:
		fatalExit("fleet: need one of -submit, -list, -status, -cancel (or -run)")
	}
}

func printJobs(views []fleet.JobView) {
	fmt.Printf("%-22s %-8s %-10s %-5s %-4s %-6s %s\n",
		"ID", "TENANT", "STATE", "SLOTS", "SEQ", "STEPS", "ERR")
	for _, v := range views {
		errText := v.Err
		if len(errText) > 40 {
			errText = errText[:40] + "…"
		}
		fmt.Printf("%-22s %-8s %-10s %-5d %-4d %-6d %s\n",
			v.ID, v.Tenant, v.State, v.Slots, v.Seq, v.StepsDone, errText)
	}
}

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(u string, body any, into any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s returned %s: %s", u, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// runFleetSmoke is the fleet scheduling smoke (the CI fleet stage): a
// two-slot shared pool, tenants alpha (four jobs) and beta (two jobs) at
// equal weight, every job one slot. All six are submitted before the
// scheduler starts, so the grant order is a pure function of the
// fair-share policy. The smoke asserts:
//
//   - admission queues the oversubscription (6 queued over 2 slots);
//   - grants alternate tenants while both have work — weighted
//     round-robin, FIFO within a tenant — then drain alpha's backlog;
//   - every job completes all its steps on the shared slots;
//   - each run's roll-up arrives at the fleet aggregator over the real
//     HTTP push path, and the merged /fleet view sums the six runs'
//     coord.steps.completed exactly (mergeable-telemetry invariant);
//   - per-tenant store prefixes hold each job's checkpoint without
//     collisions.
func runFleetSmoke(steps int, listen, store string) {
	if store == "" {
		dir, err := os.MkdirTemp("", "fleet-smoke-*")
		if err != nil {
			fatalExit("fleet: store: %v", err)
		}
		defer os.RemoveAll(dir)
		store = dir
	}

	reg := telemetry.NewRegistry()
	pool, err := fleet.NewPool(fleet.PoolConfig{Slots: 2, Registry: reg})
	if err != nil {
		fatalExit("fleet: pool: %v", err)
	}
	defer func() { _ = pool.Stop(context.Background()) }()

	// The fleet aggregator: pool slots as pull sources, the scheduler's
	// registry in-process, and the runs' pushed roll-ups. A generous
	// StaleAfter keeps early-finishing jobs' rows "ok" at the final check.
	sources := make([]obs.Source, 0, pool.Size()+1)
	for _, site := range pool.Sites() {
		sources = append(sources, obs.Source{
			Name: site.Spec.Name,
			URL:  "http://" + site.Addr + "/metrics",
		})
	}
	sources = append(sources, obs.Source{
		Name:  "fleetd",
		Fetch: reg.Snapshot,
	})
	agg := obs.New(obs.Config{Sources: sources, StaleAfter: 10 * time.Minute})
	ctx := context.Background()
	if err := agg.Start(ctx); err != nil {
		fatalExit("fleet: aggregator: %v", err)
	}
	defer func() { _ = agg.Stop(context.Background()) }()
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatalExit("fleet: listen: %v", err)
	}
	srv := &http.Server{Handler: agg.Mux()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("mostctl: fleet aggregator at %s (push-fed roll-ups at /push, fleet view at /fleet)\n", base)

	sched, err := fleet.NewScheduler(fleet.Config{
		Pool: pool,
		Tenants: []fleet.Tenant{
			{Name: "alpha", Weight: 1},
			{Name: "beta", Weight: 1},
		},
		StoreRoot: store,
		PushURL:   base, // roll-ups travel the real HTTP push path
		Registry:  reg,
	})
	if err != nil {
		fatalExit("fleet: scheduler: %v", err)
	}

	// Submit everything before Start: grants then happen in one
	// deterministic fair-share order.
	var jobs []*fleet.Job
	submitJob := func(tenant, name string) {
		job, err := sched.Submit(fleet.Request{Tenant: tenant, Name: name, Steps: steps})
		if err != nil {
			fatalExit("fleet: submit %s/%s: %v", tenant, name, err)
		}
		jobs = append(jobs, job)
	}
	for i := 1; i <= 4; i++ {
		submitJob("alpha", fmt.Sprintf("run%d", i))
	}
	for i := 1; i <= 2; i++ {
		submitJob("beta", fmt.Sprintf("run%d", i))
	}
	queued := reg.Gauge("fleet.jobs.queued").Value()
	fmt.Printf("mostctl: %d jobs queued over a %d-slot pool (oversubscribed %.1fx)\n",
		len(jobs), pool.Size(), queued/float64(pool.Size()))

	if err := sched.Start(ctx); err != nil {
		fatalExit("fleet: start: %v", err)
	}
	waitCtx, cancelWait := context.WithTimeout(ctx, 3*time.Minute)
	defer cancelWait()
	if err := sched.Wait(waitCtx); err != nil {
		fatalExit("fleet: %v", err)
	}
	stopCtx, cancelStop := context.WithTimeout(ctx, 30*time.Second)
	defer cancelStop()
	if err := sched.Stop(stopCtx); err != nil {
		fatalExit("fleet: stop: %v", err)
	}
	// One deliberate post-run scrape so the fleetd self source (and the
	// slot sources) reflect the finished fleet regardless of loop phase.
	agg.ScrapeOnce(ctx)

	problems := verifyFleetSmoke(base, sched, jobs, steps, store)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "mostctl: fleet check: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("mostctl: fleet check passed: fair-share grant order, %d/%d jobs complete, fleet roll-up exact, tenant stores isolated\n",
		len(jobs), len(jobs))
}

// verifyFleetSmoke checks the smoke's acceptance shape.
func verifyFleetSmoke(base string, sched *fleet.Scheduler, jobs []*fleet.Job, steps int, store string) []string {
	var problems []string
	badf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Fair-share grant order: with equal weights and both queues nonempty,
	// grants alternate tenants; once beta drains, alpha's FIFO backlog
	// takes the remaining turns.
	want := []string{"alpha", "beta", "alpha", "beta", "alpha", "alpha"}
	got := sched.GrantOrder()
	fmt.Printf("mostctl: grant order: %s\n", strings.Join(got, " "))
	if strings.Join(got, " ") != strings.Join(want, " ") {
		badf("grant order %v, want %v", got, want)
	}

	// Every job completed every step.
	for _, job := range jobs {
		view, ok := sched.Job(job.ID)
		if !ok {
			badf("job %s vanished", job.ID)
			continue
		}
		if view.State != fleet.StateDone {
			badf("job %s state=%s err=%q, want done", view.ID, view.State, view.Err)
		}
		if view.StepsDone != steps {
			badf("job %s completed %d/%d steps", view.ID, view.StepsDone, steps)
		}
		// Tenant isolation on disk: the checkpoint lives under the
		// tenant-prefixed store path.
		wantPrefix := filepath.Join(store, view.Tenant)
		if !strings.HasPrefix(view.Store, wantPrefix) {
			badf("job %s store %q not under tenant prefix %q", view.ID, view.Store, wantPrefix)
		}
		if _, err := os.Stat(filepath.Join(view.Store, "checkpoint.json")); err != nil {
			badf("job %s checkpoint: %v", view.ID, err)
		}
	}

	// The fleet roll-up, served over HTTP: one pushed source per job, and
	// the merged counters sum the runs exactly — six runs of N steps read
	// back as exactly 6N committed steps.
	view, err := fetchFleet(base)
	if err != nil {
		badf("fetch fleet view: %v", err)
		return problems
	}
	pushed := 0
	for _, s := range view.Sites {
		if strings.Contains(s.Name, "/") {
			pushed++
			if s.State != obs.StateOK {
				badf("pushed source %s state=%s, want ok", s.Name, s.State)
			}
		}
	}
	if pushed != len(jobs) {
		badf("fleet view has %d pushed job roll-ups, want %d", pushed, len(jobs))
	}
	if view.MergeError != "" {
		badf("fleet merge error: %s", view.MergeError)
	}
	wantSteps := int64(len(jobs) * steps)
	if gotSteps := view.Merged.Counters["coord.steps.completed"]; gotSteps != wantSteps {
		badf("fleet roll-up coord.steps.completed=%d, want %d", gotSteps, wantSteps)
	}
	fmt.Printf("mostctl: fleet roll-up: %d pushed runs, merged coord.steps.completed=%d\n",
		pushed, view.Merged.Counters["coord.steps.completed"])

	// The scheduler's own accounting agrees.
	if got := view.Merged.Counters["fleet.jobs.completed"]; got != int64(len(jobs)) {
		badf("fleet.jobs.completed=%d, want %d", got, len(jobs))
	}
	if got := view.Merged.Counters["fleet.jobs.failed"]; got != 0 {
		badf("fleet.jobs.failed=%d, want 0", got)
	}
	if got := view.Merged.Counters["fleet.leases.granted"]; got != int64(len(jobs)) {
		badf("fleet.leases.granted=%d, want %d", got, len(jobs))
	}
	if got := view.Merged.Counters["fleet.leases.released"]; got != int64(len(jobs)) {
		badf("fleet.leases.released=%d, want %d", got, len(jobs))
	}
	return problems
}
