// Command mostctl runs the paper's experiments end-to-end in one process:
// it builds the requested topology (per-site containers, NTCP servers,
// plugins, rigs, DAQ, WAN fault injection), runs the MS-PSDS coordinator,
// and writes the response history, ground motion, per-site hysteresis
// series, and a run report — the artifacts behind DESIGN.md experiments
// E1, E2, E3, E5, E7, and E12.
//
// Examples:
//
//	mostctl -experiment dry-run                     # E1: completes 1500/1500
//	mostctl -experiment public-run                  # E2: aborts at 1493/1500
//	mostctl -experiment dry-run -variant hybrid     # E3: emulated rigs
//	mostctl -experiment minimost                    # E7
//	mostctl -experiment soil-structure              # E12
//	mostctl metrics -url http://127.0.0.1:8080      # inspect a live container
//	mostctl top -url http://127.0.0.1:9090          # live cross-site dashboard
//	mostctl top -run                                # self-checking obs smoke
//	mostctl fleet -run                              # self-checking fleet-scheduling smoke
//	mostctl fleet -url http://127.0.0.1:9190 -list  # jobs on a running fleetd
//	mostctl chaos -scenario deploy/scenarios/step-1493.json  # E13: survive 1493
//
// SIGINT/SIGTERM interrupt the stepping loop but still flush the response
// history, run report, archive ingestion and the <run>-spans.jsonl span
// snapshot before exiting 0; a run that dies on its own exits 2.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"neesgrid/internal/groundmotion"
	"neesgrid/internal/most"
	"neesgrid/internal/runtime"
	"neesgrid/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "metrics" {
		metricsCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		topCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		fleetCmd(os.Args[2:])
		return
	}
	os.Exit(runExperiment())
}

func runExperiment() int {
	experiment := flag.String("experiment", "dry-run",
		"dry-run|public-run|minimost|minimost-hw|soil-structure")
	variant := flag.String("variant", "simulation", "simulation|hybrid (MOST experiments)")
	steps := flag.Int("steps", 0, "override step count (0 = experiment default)")
	daqEvery := flag.Int("daq-every", 10, "DAQ scan interval in steps (0 = off)")
	out := flag.String("out", "out", "output directory")
	archiveDir := flag.String("archive", "", "archive DAQ blocks to a repository under this directory")
	spectrum := flag.Bool("spectrum", false, "also write the input motion's 5%-damped response spectrum")
	var debugFlags runtime.DebugFlags
	debugFlags.Register(nil)
	flag.Parse()

	var v most.Variant
	switch *variant {
	case "simulation":
		v = most.VariantSimulation
	case "hybrid":
		v = most.VariantHybrid
	default:
		return fatal("unknown -variant %q", *variant)
	}

	var spec most.Spec
	switch *experiment {
	case "dry-run":
		spec = most.DryRunSpec(v)
	case "public-run":
		spec = most.PublicRunSpec(v)
	case "minimost":
		spec = most.MiniMOSTSpec(false)
	case "minimost-hw":
		spec = most.MiniMOSTSpec(true)
	case "soil-structure":
		spec = most.SoilStructureSpec()
	default:
		return fatal("unknown -experiment %q", *experiment)
	}
	if *steps > 0 {
		spec.Steps = *steps
	}
	spec.DAQEvery = *daqEvery
	if *archiveDir != "" {
		if spec.DAQEvery <= 0 {
			return fatal("-archive requires -daq-every > 0")
		}
		spec.Archive = &most.ArchiveConfig{
			SpoolDir: filepath.Join(*archiveDir, "spool"),
			StoreDir: filepath.Join(*archiveDir, "store"),
		}
	}

	totalSteps := spec.Steps
	if totalSteps == 0 {
		totalSteps = spec.Frame.Steps
	}
	fmt.Printf("mostctl: %s (%s), %d steps x %g s, %d sites\n",
		*experiment, *variant, totalSteps, spec.Frame.Dt, len(spec.Sites))
	for _, s := range spec.Sites {
		fmt.Printf("  site %-8s backend=%-14s point=%-13s k=%.3g\n",
			s.Name, s.Kind, s.Point, s.K)
	}

	exp, err := most.Build(spec)
	if err != nil {
		return fatal("build: %v", err)
	}

	// The built topology joins a process supervisor so SIGINT/SIGTERM
	// drain it (and the -pprof debug server answers /healthz and /readyz
	// for it). The experiment is adopted already-running; its own
	// supervisor nests underneath.
	sup := runtime.NewSupervisor("mostctl")
	ds := debugFlags.Install(sup, exp.TraceRecorder)
	sup.Adopt("experiment", runtime.Funcs{
		StopFunc:    exp.Supervisor().Stop,
		HealthyFunc: exp.Healthy,
	}, runtime.WithDrain(exp.Supervisor().StopBudget()))
	if ds != nil {
		fmt.Printf("mostctl: pprof at http://%s/debug/pprof/, spans at /trace, probes at /healthz /readyz\n", ds.Addr())
	}

	return runtime.Main("mostctl", sup, func(ctx context.Context) error {
		start := time.Now()
		// A signal cancels ctx; the in-flight step errors out, Run still
		// drains the archive and writes <run>-spans.jsonl, and the output
		// flush below runs — an interrupted run keeps its artifacts.
		res, err := exp.Run(ctx)
		if err != nil {
			return fmt.Errorf("run: %w", err)
		}

		if err := os.MkdirAll(*out, 0o755); err != nil {
			return fmt.Errorf("output dir: %w", err)
		}
		prefix := filepath.Join(*out, *experiment)
		if res.History != nil {
			writeCSV(prefix+"-history.csv", func(f *os.File) error {
				return res.History.WriteCSV(f)
			})
		}
		writeHysteresis(exp, prefix)
		writeReport(prefix+"-report.txt", *experiment, *variant, res, totalSteps)
		if *spectrum {
			writeSpectrum(prefix, spec)
		}

		fmt.Printf("mostctl: %d/%d steps in %s; recovered %d transient failures (%d injected, %d retries)\n",
			res.Report.StepsCompleted, totalSteps, time.Since(start).Round(time.Millisecond),
			res.Report.Recovered, res.InjectedFaults, res.Report.Retries)
		printRunTelemetry(exp, res)
		if res.History != nil {
			fmt.Printf("mostctl: peak drift %.4g m, peak force %.4g N, hysteretic energy %.4g J\n",
				res.History.PeakDisplacement(0), res.History.PeakForce(0),
				res.History.HystereticEnergy(0))
		}
		if *archiveDir != "" {
			if res.ArchiveErr != nil {
				fmt.Printf("mostctl: archive error: %v\n", res.ArchiveErr)
			} else {
				fmt.Printf("mostctl: archived %d data blocks (+metadata) under %s\n",
					exp.IngestedBlocks(), *archiveDir)
			}
		}
		if res.Err != nil {
			if ctx.Err() != nil {
				// Signal-initiated: artifacts are flushed, exit clean.
				fmt.Printf("mostctl: run interrupted at step %d, outputs flushed\n",
					res.Report.FailedStep)
				return nil
			}
			return runtime.Exitf(2, "run terminated prematurely at step %d: %v",
				res.Report.FailedStep, res.Err)
		}
		fmt.Println("mostctl: run completed successfully")
		return nil
	})
}

func writeCSV(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mostctl: %v\n", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "mostctl: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("mostctl: wrote %s\n", path)
}

// writeHysteresis emits per-site force-displacement series from the viewer
// (the Fig. 8 hysteresis plots).
func writeHysteresis(exp *most.Experiment, prefix string) {
	for _, site := range exp.Sites {
		name := site.Spec.Name
		xs, ys := exp.Viewer.XY(name+".disp", name+".force")
		if len(xs) == 0 {
			continue
		}
		writeCSV(fmt.Sprintf("%s-%s-hysteresis.csv", prefix, name), func(f *os.File) error {
			w := csv.NewWriter(f)
			if err := w.Write([]string{"disp", "force"}); err != nil {
				return err
			}
			for i := range xs {
				if err := w.Write([]string{
					strconv.FormatFloat(xs[i], 'g', -1, 64),
					strconv.FormatFloat(ys[i], 'g', -1, 64),
				}); err != nil {
					return err
				}
			}
			w.Flush()
			return w.Error()
		})
	}
}

func writeReport(path, experiment, variant string, res *most.Results, totalSteps int) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mostctl: %v\n", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "experiment: %s (%s)\n", experiment, variant)
	fmt.Fprintf(f, "steps completed: %d / %d\n", res.Report.StepsCompleted, totalSteps)
	fmt.Fprintf(f, "completed: %v\n", res.Report.Completed)
	if res.Report.FailedStep > 0 {
		fmt.Fprintf(f, "failed at step: %d\nerror: %v\n", res.Report.FailedStep, res.Report.Err)
	}
	fmt.Fprintf(f, "elapsed: %s\n", res.Report.Elapsed)
	fmt.Fprintf(f, "transient failures recovered: %d\n", res.Report.Recovered)
	fmt.Fprintf(f, "retries: %d\n", res.Report.Retries)
	fmt.Fprintf(f, "faults injected: %d\n", res.InjectedFaults)
	fmt.Fprintf(f, "daq scans: %d\n", res.DAQScans)
	if res.History != nil {
		fmt.Fprintf(f, "peak drift (m): %g\n", res.History.PeakDisplacement(0))
		fmt.Fprintf(f, "peak force (N): %g\n", res.History.PeakForce(0))
		fmt.Fprintf(f, "hysteretic energy (J): %g\n", res.History.HystereticEnergy(0))
	}
	fmt.Printf("mostctl: wrote %s\n", path)
}

// writeSpectrum regenerates the input motion and writes its 5%-damped
// displacement/pseudo-acceleration response spectrum — the engineering
// summary of what the experiment's structures were subjected to.
func writeSpectrum(prefix string, spec most.Spec) {
	cfg := groundmotion.ElCentroLike()
	cfg.Dt = spec.Frame.Dt
	steps := spec.Steps
	if steps <= 0 {
		steps = spec.Frame.Steps
	}
	cfg.Duration = float64(steps) * spec.Frame.Dt
	rec, err := groundmotion.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mostctl: spectrum: %v\n", err)
		return
	}
	periods := groundmotion.LinSpace(0.1, 2.0, 39)
	s, err := groundmotion.ResponseSpectrum(rec, 0.05, periods)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mostctl: spectrum: %v\n", err)
		return
	}
	writeCSV(prefix+"-spectrum.csv", func(f *os.File) error {
		w := csv.NewWriter(f)
		if err := w.Write([]string{"period", "sd", "sv", "sa"}); err != nil {
			return err
		}
		for i, p := range s.Periods {
			if err := w.Write([]string{
				strconv.FormatFloat(p, 'g', -1, 64),
				strconv.FormatFloat(s.Sd[i], 'g', -1, 64),
				strconv.FormatFloat(s.Sv[i], 'g', -1, 64),
				strconv.FormatFloat(s.Sa[i], 'g', -1, 64),
			}); err != nil {
				return err
			}
		}
		w.Flush()
		return w.Error()
	})
	fmt.Printf("mostctl: predominant period %.2f s (frame period %.2f s)\n",
		s.PeakPeriod(), spec.Frame.Period())
}

// printRunTelemetry summarizes the run's latency picture: per-step
// wall-clock, NTCP round-trip (the coordinator-side registry), and per-op
// request counts from each site's server registry.
func printRunTelemetry(exp *most.Experiment, res *most.Results) {
	sl := res.Report.StepLatency
	if sl.Count > 0 {
		fmt.Printf("mostctl: step latency  p50=%s p95=%s p99=%s (n=%d)\n",
			seconds(sl.P50), seconds(sl.P95), seconds(sl.P99), sl.Count)
	}
	// ntcp.client.rtt.seconds observes successful calls only; failed
	// attempts (timeouts, injected faults) land in failed_rtt so WAN
	// outages cannot skew the latency percentiles.
	if rtt, ok := res.Report.Telemetry.Histograms["ntcp.client.rtt.seconds"]; ok && rtt.Count > 0 {
		fmt.Printf("mostctl: NTCP rtt      p50=%s p95=%s p99=%s (n=%d)\n",
			seconds(rtt.P50), seconds(rtt.P95), seconds(rtt.P99), rtt.Count)
	}
	if frtt, ok := res.Report.Telemetry.Histograms["ntcp.client.failed_rtt.seconds"]; ok && frtt.Count > 0 {
		fmt.Printf("mostctl: NTCP failed rtt p50=%s p95=%s p99=%s (n=%d)\n",
			seconds(frtt.P50), seconds(frtt.P95), seconds(frtt.P99), frtt.Count)
	}
	for _, site := range exp.Sites {
		snap := site.Telemetry.Snapshot()
		fmt.Printf("mostctl: site %-8s proposed=%d executed=%d failed=%d cancelled=%d deduped=%d\n",
			site.Spec.Name,
			snap.Counters["ntcp.server.proposed"],
			snap.Counters["ntcp.server.executed"],
			snap.Counters["ntcp.server.failed"],
			snap.Counters["ntcp.server.cancelled"],
			snap.Counters["ntcp.server.deduped_replays"])
	}
}

// metricsCmd fetches and pretty-prints a remote container's /metrics
// snapshot — the operational view of a live site, no run required.
func metricsCmd(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	url := fs.String("url", "", "container base URL (e.g. http://127.0.0.1:8080)")
	events := fs.Int("events", 10, "number of recent events to show (0 = none)")
	raw := fs.Bool("json", false, "dump the raw JSON snapshot instead")
	_ = fs.Parse(args)
	if *url == "" {
		fatalExit("metrics: -url required")
	}

	resp, err := http.Get(*url + "/metrics")
	if err != nil {
		fatalExit("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalExit("metrics: %s returned %s", *url, resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fatalExit("metrics: decode: %v", err)
	}
	if *raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
		return
	}

	if len(snap.Counters) > 0 {
		fmt.Println("counters:")
		for _, name := range snap.CounterNames() {
			fmt.Printf("  %-45s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Println("gauges:")
		names := make([]string, 0, len(snap.Gauges))
		for n := range snap.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-45s %g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Println("histograms:")
		for _, name := range snap.HistogramNames() {
			h := snap.Histograms[name]
			fmt.Printf("  %-45s n=%-6d mean=%-9s p50=%-9s p95=%-9s p99=%s\n",
				name, h.Count, seconds(h.Mean), seconds(h.P50), seconds(h.P95), seconds(h.P99))
		}
	}
	if *events > 0 && len(snap.Events) > 0 {
		fmt.Println("events:")
		evs := snap.Events
		if len(evs) > *events {
			evs = evs[len(evs)-*events:]
		}
		for _, e := range evs {
			line := fmt.Sprintf("  %s %s/%s", e.TS.Format(time.RFC3339), e.Component, e.Event)
			if len(e.Fields) > 0 {
				if b, err := json.Marshal(e.Fields); err == nil {
					line += " " + string(b)
				}
			}
			fmt.Println(line)
		}
	}
}

// seconds renders a histogram value recorded in seconds as a duration.
func seconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// fatal prints a mostctl-prefixed error. In the experiment path it is
// returned as the exit code; the subcommands exit through fatalExit.
func fatal(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "mostctl: "+format+"\n", args...)
	return 1
}

func fatalExit(format string, args ...any) {
	fatal(format, args...)
	os.Exit(1)
}
