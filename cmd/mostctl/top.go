package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"neesgrid/internal/core"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/most"
	"neesgrid/internal/obs"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
)

// topCmd is the live cross-site dashboard: it polls an obs aggregator's
// /fleet endpoint and renders per-site health, step rate, RTT quantiles,
// NSDS drop counters, checkpoint lag and SLO state — the operator's view
// of a distributed run while it is stepping. With -run it instead builds an
// in-process two-site experiment with the aggregator serving over HTTP,
// drives it to completion, renders the final dashboard, and verifies the
// observability plane end to end (the CI obs smoke).
func topCmd(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	url := fs.String("url", "", "obs aggregator base URL (e.g. http://127.0.0.1:9090)")
	interval := fs.Duration("interval", time.Second, "refresh interval for -url mode")
	once := fs.Bool("once", false, "render a single frame and exit")
	run := fs.Bool("run", false, "run an in-process 2-site smoke experiment and verify its observability plane")
	steps := fs.Int("steps", 25, "time steps for -run")
	listen := fs.String("listen", "127.0.0.1:0", "aggregator listen address for -run")
	_ = fs.Parse(args)

	if *run {
		runTopSmoke(*steps, *listen)
		return
	}
	if *url == "" {
		fatalExit("top: need -url or -run")
	}
	for {
		view, err := fetchFleet(*url)
		if err != nil {
			fatalExit("top: %v", err)
		}
		if !*once {
			// Clear and home between frames so the dashboard refreshes in
			// place on a terminal.
			fmt.Print("\033[2J\033[H")
		}
		renderFleet(os.Stdout, view)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetchFleet pulls one FleetView from a running aggregator.
func fetchFleet(base string) (obs.FleetView, error) {
	var view obs.FleetView
	resp, err := http.Get(base + "/fleet")
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return view, fmt.Errorf("%s/fleet returned %s", base, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, fmt.Errorf("decode fleet view: %w", err)
	}
	return view, nil
}

// renderFleet prints one dashboard frame from a fleet view.
func renderFleet(w io.Writer, v obs.FleetView) {
	ok := 0
	for _, s := range v.Sites {
		if s.State == obs.StateOK {
			ok++
		}
	}
	fmt.Fprintf(w, "fleet @ %s   sites %d/%d ok", v.TS.Format("15:04:05"), ok, len(v.Sites))
	if rate, found := v.Rates["coord.steps.completed"]; found {
		fmt.Fprintf(w, "   step rate %.1f/s", rate)
	}
	if steps, found := v.Merged.Counters["coord.steps.completed"]; found {
		fmt.Fprintf(w, "   steps %d", steps)
	}
	if lag, found := v.Merged.Gauges["coord.checkpoint.lag_steps"]; found {
		fmt.Fprintf(w, "   ckpt lag %.0f steps", lag)
	}
	fmt.Fprintln(w)
	if v.MergeError != "" {
		fmt.Fprintf(w, "MERGE ERROR: %s\n", v.MergeError)
	}

	fmt.Fprintf(w, "%-14s %-9s %-8s %-6s %-7s %-10s %s\n",
		"SITE", "STATE", "SCRAPES", "FAIL", "GOROUT", "HEAP", "RTT p50/p95/p99")
	for _, s := range v.Sites {
		rtt := "-"
		if h, found := v.Merged.Histograms["ntcp.client."+s.Name+".rtt.seconds"]; found && h.Count > 0 {
			rtt = fmt.Sprintf("%s/%s/%s (n=%d)",
				seconds(h.P50), seconds(h.P95), seconds(h.P99), h.Count)
		}
		heap := "-"
		if s.HeapBytes > 0 {
			heap = fmt.Sprintf("%.1fMB", s.HeapBytes/1e6)
		}
		gor := "-"
		if s.Goroutines > 0 {
			gor = fmt.Sprintf("%.0f", s.Goroutines)
		}
		line := fmt.Sprintf("%-14s %-9s %-8d %-6d %-7s %-10s %s",
			s.Name, s.State, s.Scrapes, s.Failures, gor, heap, rtt)
		if s.Error != "" {
			line += "  ERR=" + s.Error
		}
		fmt.Fprintln(w, line)
	}

	if h, found := v.Merged.Histograms["ntcp.client.rtt.seconds"]; found && h.Count > 0 {
		fmt.Fprintf(w, "fleet RTT      p50=%s p95=%s p99=%s (n=%d)",
			seconds(h.P50), seconds(h.P95), seconds(h.P99), h.Count)
		if h.Exemplar != nil {
			fmt.Fprintf(w, "  slowest trace=%s (%s)", h.Exemplar.TraceID, seconds(h.Exemplar.Value))
		}
		fmt.Fprintln(w)
	}
	if h, found := v.Merged.Histograms["coord.step.seconds"]; found && h.Count > 0 {
		fmt.Fprintf(w, "step latency   p50=%s p95=%s p99=%s (n=%d)\n",
			seconds(h.P50), seconds(h.P95), seconds(h.P99), h.Count)
	}

	// NSDS drop accounting per fan-out tier, plus slow-viewer drops.
	var dropNames []string
	for name := range v.Merged.Counters {
		if strings.HasPrefix(name, "nsds.tier.dropped.") || strings.HasPrefix(name, "nsds.tier.forced_drops.") {
			dropNames = append(dropNames, name)
		}
	}
	sort.Strings(dropNames)
	if len(dropNames) > 0 || v.Merged.Counters["nsds.sub.dropped"] > 0 {
		fmt.Fprint(w, "nsds drops    ")
		for _, name := range dropNames {
			short := strings.TrimPrefix(name, "nsds.tier.")
			fmt.Fprintf(w, " %s=%d", short, v.Merged.Counters[name])
		}
		fmt.Fprintf(w, " sub=%d\n", v.Merged.Counters["nsds.sub.dropped"])
	}

	if len(v.SLO) > 0 {
		fmt.Fprintln(w, "slo:")
		for _, r := range v.SLO {
			line := fmt.Sprintf("  %-16s %-8s value=%.4g max=%.4g breaches=%d",
				r.Name, r.State, r.Value, r.Max, r.Breaches)
			if r.ExemplarTrace != "" {
				line += "  trace=" + r.ExemplarTrace
			}
			fmt.Fprintln(w, line)
		}
	}
}

// runTopSmoke is the end-to-end observability smoke: a two-site experiment
// with a WAN delay at one site runs to completion while its obs aggregator
// serves /fleet, /metrics and /slo over HTTP. Afterwards it renders the
// final dashboard and verifies the acceptance shape:
//
//   - the merged /metrics carries fleet-wide ntcp.client.rtt.seconds
//     quantiles (p50<=p95<=p99, count covering both sites' calls);
//   - the Prometheus exposition carries the fleet series AND per-site
//     labeled series for every scraped site;
//   - per-site RTT histograms (ntcp.client.<site>.rtt.seconds) are present
//     in the merged view;
//   - the fleet p99's exemplar trace ID resolves against the run's span
//     snapshot — the dashboard-to-trace link — and its timeline is rendered;
//   - the SLO verdict gates the run: any latched breach exits non-zero.
func runTopSmoke(steps int, listen string) {
	frame := structural.MiniMOSTConfig()
	spec := most.Spec{
		Name:  "top-smoke",
		Frame: frame,
		Steps: steps,
		Retry: core.DefaultRetry,
		Sites: []most.SiteSpec{
			{Name: "alpha", Kind: most.KindSimulation, Point: "beam", K: frame.LeftK},
			{Name: "beta", Kind: most.KindSimulation, Point: "middle-frame", K: frame.MidK,
				WAN: faultnet.Profile{Latency: 2 * time.Millisecond, Seed: 7}},
		},
		DAQEvery:   1,
		Checkpoint: nil,
		SLOs: []obs.SLO{
			// Generous bounds: the smoke proves the gate wiring, not timing.
			{Name: "rtt-p99", Kind: obs.KindQuantile, Metric: "ntcp.client.rtt.seconds", Q: 0.99, Max: 30},
			{Name: "step-p99", Kind: obs.KindQuantile, Metric: "coord.step.seconds", Q: 0.99, Max: 60},
			{Name: "drop-rate", Kind: obs.KindRate, Metric: "nsds.sub.dropped", Max: 1e9},
		},
	}
	exp, err := most.Build(spec)
	if err != nil {
		fatalExit("top: build: %v", err)
	}
	defer exp.Stop()

	agg := exp.Obs()
	ctx := context.Background()
	if err := agg.Start(ctx); err != nil {
		fatalExit("top: aggregator: %v", err)
	}
	defer func() { _ = agg.Stop(context.Background()) }()
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatalExit("top: listen: %v", err)
	}
	srv := &http.Server{Handler: agg.Mux()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("mostctl: obs aggregator at %s (endpoints: /fleet /metrics /slo /series /push)\n", base)

	res, err := exp.Run(ctx)
	if err != nil {
		fatalExit("top: run: %v", err)
	}
	if res.Err != nil {
		fatalExit("top: run failed: %v", res.Err)
	}
	// One deliberate post-run scrape so the final frame reflects the
	// finished run regardless of loop phase.
	agg.ScrapeOnce(ctx)

	view, err := fetchFleet(base)
	if err != nil {
		fatalExit("top: %v", err)
	}
	renderFleet(os.Stdout, view)

	problems := verifyTopSmoke(base, view, exp, []string{"alpha", "beta"})
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "mostctl: top check: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("mostctl: top check passed: fleet quantiles, per-site series, exemplar trace link, SLO verdict OK\n")
}

// verifyTopSmoke checks the smoke's acceptance shape over the aggregator's
// HTTP surface and the experiment's span snapshot.
func verifyTopSmoke(base string, view obs.FleetView, exp *most.Experiment, sites []string) []string {
	var problems []string
	badf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Every site plus the coordinator must have been scraped healthy.
	for _, s := range view.Sites {
		if s.State != obs.StateOK {
			badf("site %s state=%s err=%q, want ok", s.Name, s.State, s.Error)
		}
	}
	if view.MergeError != "" {
		badf("merge error: %s", view.MergeError)
	}

	// Fleet-wide RTT quantiles out of the merged JSON /metrics.
	var merged telemetry.Snapshot
	if err := getJSON(base+"/metrics", &merged); err != nil {
		badf("fetch merged metrics: %v", err)
		return problems
	}
	rtt, found := merged.Histograms["ntcp.client.rtt.seconds"]
	switch {
	case !found || rtt.Count == 0:
		badf("fleet ntcp.client.rtt.seconds missing or empty")
	case rtt.P50 > rtt.P95 || rtt.P95 > rtt.P99:
		badf("fleet rtt quantiles disordered: p50=%g p95=%g p99=%g", rtt.P50, rtt.P95, rtt.P99)
	}
	for _, site := range sites {
		name := "ntcp.client." + site + ".rtt.seconds"
		if h, ok := merged.Histograms[name]; !ok || h.Count == 0 {
			badf("per-site histogram %s missing or empty", name)
		}
		if merged.Counters["ntcp.server.executed"] == 0 {
			badf("merged ntcp.server.executed is zero")
		}
	}
	// Process self-metrics must have survived the merge.
	if merged.Gauges["process.goroutines"] <= 0 {
		badf("merged process.goroutines missing")
	}

	// Prometheus exposition: fleet series unlabeled, per-site labeled.
	prom, err := getText(base+"/metrics", "text/plain")
	if err != nil {
		badf("fetch prometheus metrics: %v", err)
		return problems
	}
	if !strings.Contains(prom, "ntcp_client_rtt_seconds_count") {
		badf("prometheus output missing fleet ntcp_client_rtt_seconds series")
	}
	for _, site := range sites {
		want := fmt.Sprintf(`{site=%q}`, site)
		if !strings.Contains(prom, want) {
			badf("prometheus output has no per-site series labeled %s", want)
		}
		if !strings.Contains(prom, fmt.Sprintf(`obs_site_up{site=%q} 1`, site)) {
			badf("obs_site_up for %s missing or not 1", site)
		}
	}

	// The exemplar on the fleet RTT histogram must resolve to recorded
	// spans — the p99-to-trace link. Render the slowest round trip's
	// timeline the way `mostctl trace -id` would.
	if rtt.Exemplar == nil || rtt.Exemplar.TraceID == "" {
		badf("fleet rtt histogram carries no exemplar")
	} else {
		spans := exp.SpanSnapshot()
		matched := spans[:0:0]
		for _, sd := range spans {
			if sd.TraceID == rtt.Exemplar.TraceID {
				matched = append(matched, sd)
			}
		}
		if len(matched) == 0 {
			badf("exemplar trace %s not found among %d recorded spans",
				rtt.Exemplar.TraceID, len(spans))
		} else {
			fmt.Printf("mostctl: slowest round trip (%s) resolves to trace %s:\n",
				seconds(rtt.Exemplar.Value), rtt.Exemplar.TraceID)
			renderTraces(os.Stdout, matched, 0)
		}
	}

	// SLO verdict gates the smoke: a latched breach fails it.
	var verdict obs.Verdict
	if err := getJSON(base+"/slo", &verdict); err != nil {
		badf("fetch slo verdict: %v", err)
		return problems
	}
	if !verdict.OK {
		for _, r := range verdict.Rules {
			if r.Breaches > 0 {
				badf("SLO %s breached %d times (worst %.4g > max %.4g)",
					r.Name, r.Breaches, r.Worst, r.Max)
			}
		}
	}
	if len(verdict.Rules) != 3 {
		badf("verdict has %d rules, want 3", len(verdict.Rules))
	}
	return problems
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// getText fetches a URL with an Accept header and returns the body.
func getText(url, accept string) (string, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s returned %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
