package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"neesgrid/internal/core"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/most"
	"neesgrid/internal/structural"
	"neesgrid/internal/trace"
)

// traceCmd renders merged cross-site timelines from recorded spans. Two
// sources: fetch /trace from a set of live containers (-url, optionally
// narrowed to one trace with -id), or run an in-process two-site smoke
// experiment (-run) and render + verify its trace end to end.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	urls := fs.String("url", "", "comma-separated base URLs to fetch /trace spans from (coordinator and sites)")
	id := fs.String("id", "", "render only the trace with this ID")
	run := fs.Bool("run", false, "run an in-process 2-site smoke experiment and render its merged trace")
	steps := fs.Int("steps", 5, "time steps for -run")
	delay := fs.Duration("delay", 2*time.Millisecond, "WAN latency injected at the second site for -run")
	limit := fs.Int("limit", 0, "render at most the last N traces (0 = all)")
	_ = fs.Parse(args)

	var spans []trace.SpanData
	switch {
	case *run:
		runTraceSmoke(*steps, *delay)
		return
	case *urls != "":
		for _, u := range strings.Split(*urls, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			spans = append(spans, fetchSpans(u, *id)...)
		}
	default:
		fatalExit("trace: need -run or -url")
	}
	if *id != "" {
		kept := spans[:0]
		for _, sd := range spans {
			if sd.TraceID == *id {
				kept = append(kept, sd)
			}
		}
		spans = kept
	}
	if len(spans) == 0 {
		fatalExit("trace: no spans found")
	}
	renderTraces(os.Stdout, spans, *limit)
}

// fetchSpans pulls one container's recorded spans over HTTP.
func fetchSpans(base, id string) []trace.SpanData {
	u := base + "/trace"
	if id != "" {
		u += "?trace=" + id
	}
	resp, err := http.Get(u)
	if err != nil {
		fatalExit("trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalExit("trace: %s returned %s", u, resp.Status)
	}
	var spans []trace.SpanData
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		fatalExit("trace: decode %s: %v", u, err)
	}
	return spans
}

// runTraceSmoke runs a small two-site all-simulation experiment with a WAN
// delay at the second site, prints the merged per-step timeline, and
// verifies the acceptance shape: every step's root span must contain
// paired client+server spans for each site's propose and execute, and the
// injected delay must be attributed to the delayed site. Exits non-zero if
// the shape is violated — CI uses this as the trace round-trip smoke.
func runTraceSmoke(steps int, delay time.Duration) {
	frame := structural.MiniMOSTConfig()
	spec := most.Spec{
		Name:  "trace-smoke",
		Frame: frame,
		Steps: steps,
		Retry: core.DefaultRetry,
		Sites: []most.SiteSpec{
			{Name: "alpha", Kind: most.KindSimulation, Point: "beam", K: frame.LeftK},
			{Name: "beta", Kind: most.KindSimulation, Point: "middle-frame", K: frame.MidK,
				WAN: faultnet.Profile{Latency: delay, Seed: 7}},
		},
		DAQEvery: 1,
	}
	exp, err := most.Build(spec)
	if err != nil {
		fatalExit("trace: build: %v", err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		fatalExit("trace: run: %v", err)
	}
	if res.Err != nil {
		fatalExit("trace: run failed: %v", res.Err)
	}
	spans := exp.SpanSnapshot()
	renderTraces(os.Stdout, spans, 0)
	problems := verifySmokeTrace(spans, []string{"alpha", "beta"}, "beta", steps)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "mostctl: trace check: %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Printf("mostctl: trace check passed: %d spans, every step has client+server propose/execute at both sites\n",
		len(spans))
}

// verifySmokeTrace checks the acceptance shape of a smoke run's spans.
func verifySmokeTrace(spans []trace.SpanData, sites []string, delayed string, steps int) []string {
	var problems []string
	byTrace := make(map[string][]trace.SpanData)
	byID := make(map[string]trace.SpanData)
	for _, sd := range spans {
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
		byID[sd.SpanID] = sd
	}
	stepRoots := 0
	for _, group := range byTrace {
		var root *trace.SpanData
		for i := range group {
			if group[i].Name == "coord.step" && group[i].Parent == "" {
				root = &group[i]
			}
		}
		if root == nil {
			continue
		}
		stepRoots++
		for _, site := range sites {
			for _, op := range []string{"ntcp.propose", "ntcp.execute"} {
				var client, server bool
				for _, sd := range group {
					if sd.Name != op {
						continue
					}
					if sd.Kind == trace.KindClient && siteOf(sd, byID) == site {
						client = true
					}
					if sd.Kind == trace.KindServer && sd.Service == site {
						server = true
					}
				}
				if !client || !server {
					problems = append(problems, fmt.Sprintf(
						"step %s: site %s %s missing client=%t server=%t",
						root.Attrs["step"], site, op, !client, !server))
				}
			}
		}
	}
	if stepRoots < steps {
		problems = append(problems, fmt.Sprintf("only %d step root spans, want >= %d", stepRoots, steps))
	}
	// The injected WAN delay must be visible on a client span attributed to
	// the delayed site.
	delaySeen := false
	for _, sd := range spans {
		if sd.Kind != trace.KindClient || siteOf(sd, byID) != delayed {
			continue
		}
		for _, ev := range sd.Events {
			if ev.Name == "faultnet.delay" {
				delaySeen = true
			}
		}
	}
	if !delaySeen {
		problems = append(problems, fmt.Sprintf(
			"no faultnet.delay annotation on any client span for delayed site %s", delayed))
	}
	return problems
}

// siteOf attributes a client span to a site by walking up to the enclosing
// coordinator span carrying a "site" attribute.
func siteOf(sd trace.SpanData, byID map[string]trace.SpanData) string {
	for i := 0; i < 8; i++ {
		if s, ok := sd.Attrs["site"]; ok {
			return s
		}
		parent, ok := byID[sd.Parent]
		if !ok {
			return ""
		}
		sd = parent
	}
	return ""
}

// renderTraces prints merged per-trace timelines, oldest trace first.
func renderTraces(w *os.File, spans []trace.SpanData, limit int) {
	byTrace := make(map[string][]trace.SpanData)
	for _, sd := range spans {
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}
	ids := make([]string, 0, len(byTrace))
	for id := range byTrace {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return earliest(byTrace[ids[i]]).Before(earliest(byTrace[ids[j]]))
	})
	if limit > 0 && len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	for _, id := range ids {
		renderTrace(w, id, byTrace[id])
	}
}

func earliest(spans []trace.SpanData) time.Time {
	t := spans[0].Start
	for _, sd := range spans[1:] {
		if sd.Start.Before(t) {
			t = sd.Start
		}
	}
	return t
}

// renderTrace prints one trace as an indented tree: service, kind, offset
// from trace start, duration, attributes, and annotated events — the
// cross-site step timeline.
func renderTrace(w *os.File, id string, spans []trace.SpanData) {
	have := make(map[string]bool, len(spans))
	for _, sd := range spans {
		have[sd.SpanID] = true
	}
	children := make(map[string][]trace.SpanData)
	var roots []trace.SpanData
	for _, sd := range spans {
		if sd.Parent != "" && have[sd.Parent] {
			children[sd.Parent] = append(children[sd.Parent], sd)
		} else {
			// True roots and spans whose parent was evicted from a ring.
			roots = append(roots, sd)
		}
	}
	for _, list := range children {
		sort.Slice(list, func(i, j int) bool { return list[i].Start.Before(list[j].Start) })
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })

	base := earliest(spans)
	header := "trace " + id
	for _, r := range roots {
		if r.Name == "coord.step" {
			header += "  step=" + r.Attrs["step"]
			break
		}
	}
	fmt.Fprintf(w, "%s  (%d spans)\n", header, len(spans))
	var print func(sd trace.SpanData, depth int)
	print = func(sd trace.SpanData, depth int) {
		indent := strings.Repeat("  ", depth+1)
		line := fmt.Sprintf("%s%-24s %-12s %-8s +%-9s %s",
			indent, sd.Name, sd.Service, sd.Kind,
			sd.Start.Sub(base).Round(time.Microsecond),
			sd.End.Sub(sd.Start).Round(time.Microsecond))
		if attrs := formatAttrs(sd.Attrs); attrs != "" {
			line += "  " + attrs
		}
		if sd.Err != "" {
			line += "  ERROR=" + sd.Err
		}
		fmt.Fprintln(w, line)
		for _, ev := range sd.Events {
			fmt.Fprintf(w, "%s  ! +%-9s %s=%s\n", indent,
				ev.TS.Sub(base).Round(time.Microsecond), ev.Name, ev.Detail)
		}
		for _, child := range children[sd.SpanID] {
			print(child, depth+1)
		}
	}
	for _, r := range roots {
		print(r, 0)
	}
}

// formatAttrs renders span attributes as sorted k=v pairs.
func formatAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, " ")
}
