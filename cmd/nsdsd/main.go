// Command nsdsd runs a NEESgrid Streaming Data Service endpoint (paper
// §2.2): a best-effort real-time fan-out of DAQ samples to remote
// subscribers over TCP. With -demo it publishes a synthetic two-channel
// signal so viewers can be exercised without an experiment.
//
// Example:
//
//	nsdsd -addr 127.0.0.1:7777 -demo
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neesgrid/internal/nsds"
	"neesgrid/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	demo := flag.Bool("demo", false, "publish a synthetic demo signal")
	demoRate := flag.Duration("demo-rate", 10*time.Millisecond, "demo sample interval")
	retention := flag.Int("retention", 1000, "samples retained per channel for late joiners (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /trace on this address (off when empty)")
	flag.Parse()

	hub := nsds.NewHub()
	hub.SetRetention(*retention)
	rec := trace.NewRecorder(0)
	hub.UseTracer(trace.NewTracer("nsdsd", rec))
	srv := nsds.NewServer(hub)
	bound, err := srv.Start(*addr)
	if err != nil {
		fatal("start: %v", err)
	}
	fmt.Printf("nsdsd: streaming on %s\n", bound)
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, trace.DebugMux(rec)); err != nil {
				fmt.Fprintf(os.Stderr, "nsdsd: pprof: %v\n", err)
			}
		}()
		fmt.Printf("nsdsd: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	stop := make(chan struct{})
	if *demo {
		go func() {
			t := time.NewTicker(*demoRate)
			defer t.Stop()
			start := time.Now()
			for {
				select {
				case now := <-t.C:
					et := now.Sub(start).Seconds()
					hub.Publish(nsds.Sample{Channel: "demo.disp", T: et,
						Value: 0.01 * math.Sin(2*math.Pi*1.2*et)})
					hub.Publish(nsds.Sample{Channel: "demo.force", T: et,
						Value: 7.7e3 * math.Sin(2*math.Pi*1.2*et)})
				case <-stop:
					return
				}
			}
		}()
		fmt.Println("nsdsd: publishing demo.disp and demo.force")
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	published, dropped := hub.Stats()
	fmt.Printf("nsdsd: shutting down (published %d, dropped %d)\n", published, dropped)
	_ = srv.Close()
	hub.Close()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nsdsd: "+format+"\n", args...)
	os.Exit(1)
}
