// Command nsdsd runs a NEESgrid Streaming Data Service endpoint (paper
// §2.2): a best-effort real-time fan-out of DAQ samples to remote
// subscribers over TCP. With -demo it publishes a synthetic two-channel
// signal so viewers can be exercised without an experiment.
//
// Example:
//
//	nsdsd -addr 127.0.0.1:7777 -demo
//
// SIGINT/SIGTERM drain the process: the demo feed stops, the listener
// closes, subscriber connections are severed and waited on, then the hub
// closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"neesgrid/internal/nsds"
	"neesgrid/internal/runtime"
	"neesgrid/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	demo := flag.Bool("demo", false, "publish a synthetic demo signal")
	demoRate := flag.Duration("demo-rate", 10*time.Millisecond, "demo sample interval")
	retention := flag.Int("retention", 1000, "samples retained per channel for late joiners (0 = off)")
	var debugFlags runtime.DebugFlags
	debugFlags.Register(nil)
	flag.Parse()

	hub := nsds.NewHub()
	hub.SetRetention(*retention)
	rec := trace.NewRecorder(0)
	hub.UseTracer(trace.NewTracer("nsdsd", rec))
	srv := nsds.NewServer(hub)

	sup := runtime.NewSupervisor("nsdsd")
	ds := debugFlags.Install(sup, rec)
	// Stop order (reverse of registration): demo feed first, then the
	// server (listener + subscriber conns), then the hub.
	sup.Add("hub", runtime.StopFunc(hub.Close))
	sup.Add("server", runtime.Funcs{
		StartFunc: func(context.Context) error {
			bound, err := srv.Start(*addr)
			if err != nil {
				return err
			}
			fmt.Printf("nsdsd: streaming on %s\n", bound)
			if ds != nil {
				fmt.Printf("nsdsd: pprof at http://%s/debug/pprof/, probes at /healthz /readyz\n", ds.Addr())
			}
			return nil
		},
		StopFunc:    srv.Stop,
		HealthyFunc: srv.Healthy,
	})
	if *demo {
		stop := make(chan struct{})
		sup.Add("demo-feed", runtime.Funcs{
			StartFunc: func(context.Context) error {
				go func() {
					t := time.NewTicker(*demoRate)
					defer t.Stop()
					start := time.Now()
					for {
						select {
						case now := <-t.C:
							et := now.Sub(start).Seconds()
							hub.Publish(nsds.Sample{Channel: "demo.disp", T: et,
								Value: 0.01 * math.Sin(2*math.Pi*1.2*et)})
							hub.Publish(nsds.Sample{Channel: "demo.force", T: et,
								Value: 7.7e3 * math.Sin(2*math.Pi*1.2*et)})
						case <-stop:
							return
						}
					}
				}()
				fmt.Println("nsdsd: publishing demo.disp and demo.force")
				return nil
			},
			StopFunc: func(context.Context) error {
				close(stop)
				return nil
			},
		})
	}

	code := runtime.Main("nsdsd", sup, nil)
	published, dropped := hub.Stats()
	fmt.Printf("nsdsd: shut down (published %d, dropped %d)\n", published, dropped)
	return code
}
