// Command nsdsd runs a NEESgrid Streaming Data Service endpoint (paper
// §2.2): a best-effort real-time fan-out of DAQ samples to remote
// subscribers over TCP. With -demo it publishes a synthetic two-channel
// signal so viewers can be exercised without an experiment. With -relay
// it becomes a fan-out relay instead: it subscribes to an upstream nsdsd
// over one connection and re-fans the stream out to its own subscribers,
// so a tree of relays multiplies viewer capacity without multiplying
// load on the experiment site.
//
// Examples:
//
//	nsdsd -addr 127.0.0.1:7777 -demo -http 127.0.0.1:8777
//	nsdsd -addr 127.0.0.1:7778 -relay 127.0.0.1:7777
//
// -http serves an SSE gateway at /stream (browser viewers: curl -N
// 'http://addr/stream?channels=demo.disp&catchup=1') and the telemetry
// registry at /metrics, including the per-tier nsds.tier.* and
// nsds.sub.dropped counters.
//
// SIGINT/SIGTERM drain the process: the demo feed stops, the HTTP
// listener and then the stream listener close, subscriber connections
// are severed and waited on, then the hub (or relay) closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"time"

	"neesgrid/internal/nsds"
	"neesgrid/internal/runtime"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:7777", "listen address")
	httpAddr := flag.String("http", "", "serve the SSE gateway (/stream) and /metrics on this address (off when empty)")
	relayOf := flag.String("relay", "", "run as a relay of the upstream nsdsd at this address")
	demo := flag.Bool("demo", false, "publish a synthetic demo signal")
	demoRate := flag.Duration("demo-rate", 10*time.Millisecond, "demo sample interval")
	retention := flag.Int("retention", 1000, "samples retained per channel for late joiners (0 = off)")
	shards := flag.Int("shards", 0, "hub subscriber shards (0 = one per core)")
	writeTimeout := flag.Duration("write-timeout", nsds.DefaultWriteTimeout,
		"disconnect a subscriber that stalls a write this long (0 = never)")
	var debugFlags runtime.DebugFlags
	debugFlags.Register(nil)
	flag.Parse()

	if *relayOf != "" && *demo {
		fmt.Fprintln(os.Stderr, "nsdsd: -relay and -demo are mutually exclusive")
		return 2
	}

	reg := telemetry.NewRegistry()
	rec := trace.NewRecorder(0)
	sup := runtime.NewSupervisor("nsdsd")
	ds := debugFlags.Install(sup, rec)

	// Stop order (reverse of registration): demo feed first, then the
	// HTTP gateway, then the stream server (listener + subscriber conns),
	// then the hub / relay.
	var hub *nsds.Hub
	var relay *nsds.Relay
	if *relayOf != "" {
		relay = nsds.NewRelay(nsds.RelayConfig{
			Upstream:  *relayOf,
			Retention: *retention,
			Shards:    *shards,
			Telemetry: reg,
		})
		hub = relay.Hub()
		sup.Add("relay", relay) // Stop closes the relay hub too.
	} else {
		hub = nsds.NewHubShards(*shards)
		hub.SetRetention(*retention)
		hub.UseTelemetry(reg, "hub")
		sup.Add("hub", runtime.StopFunc(hub.Close))
	}
	hub.UseTracer(trace.NewTracer("nsdsd", rec))

	srv := nsds.NewServer(hub)
	if *writeTimeout <= 0 {
		srv.WriteTimeout = -1
	} else {
		srv.WriteTimeout = *writeTimeout
	}
	sup.Add("server", runtime.Funcs{
		StartFunc: func(context.Context) error {
			bound, err := srv.Start(*addr)
			if err != nil {
				return err
			}
			if relay != nil {
				fmt.Printf("nsdsd: relaying %s on %s (%d shards)\n", *relayOf, bound, hub.ShardCount())
			} else {
				fmt.Printf("nsdsd: streaming on %s (%d shards)\n", bound, hub.ShardCount())
			}
			if ds != nil {
				fmt.Printf("nsdsd: pprof at http://%s/debug/pprof/, probes at /healthz /readyz\n", ds.Addr())
			}
			return nil
		},
		StopFunc:    srv.Stop,
		HealthyFunc: srv.Healthy,
	})

	if *httpAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stream", nsds.NewGateway(hub))
		mux.Handle("/metrics", telemetry.Handler(reg))
		gw := runtime.NewDebugServer(*httpAddr, mux)
		sup.Add("http", runtime.Funcs{
			StartFunc: func(ctx context.Context) error {
				if err := gw.Start(ctx); err != nil {
					return err
				}
				fmt.Printf("nsdsd: SSE gateway at http://%s/stream, metrics at /metrics\n", gw.Addr())
				return nil
			},
			StopFunc:    gw.Stop,
			HealthyFunc: gw.Healthy,
		})
	}

	if *demo {
		stop := make(chan struct{})
		sup.Add("demo-feed", runtime.Funcs{
			StartFunc: func(context.Context) error {
				go func() {
					t := time.NewTicker(*demoRate)
					defer t.Stop()
					start := time.Now()
					for {
						select {
						case now := <-t.C:
							et := now.Sub(start).Seconds()
							hub.PublishBatch([]nsds.Sample{
								{Channel: "demo.disp", T: et,
									Value: 0.01 * math.Sin(2*math.Pi*1.2*et)},
								{Channel: "demo.force", T: et,
									Value: 7.7e3 * math.Sin(2*math.Pi*1.2*et)},
							})
						case <-stop:
							return
						}
					}
				}()
				fmt.Println("nsdsd: publishing demo.disp and demo.force")
				return nil
			},
			StopFunc: func(context.Context) error {
				close(stop)
				return nil
			},
		})
	}

	code := runtime.Main("nsdsd", sup, nil)
	published, dropped := hub.Stats()
	fmt.Printf("nsdsd: shut down (published %d, delivered %d, dropped %d)\n",
		published, hub.Delivered(), dropped)
	if relay != nil {
		fmt.Printf("nsdsd: relay forwarded %d, deduplicated %d, reconnected %d times\n",
			relay.Forwarded(), relay.Duplicates(), relay.Reconnects())
	}
	return code
}
