// Command ntcpd runs one NEESgrid site: an OGSI container hosting an NTCP
// server whose control plugin drives either a numerical substructure or an
// emulated rig (paper Fig. 2 / Fig. 9). Pointed at by cmd/coordinator.
//
// Example (a UIUC-style site with an emulated servo-hydraulic rig):
//
//	ntcpd -addr 127.0.0.1:4455 \
//	      -ca-cert certs/ca.cert -cred certs/uiuc.cred \
//	      -allow "/O=NEES/CN=coordinator=coord" \
//	      -point left-column -kind shore-western \
//	      -k 7.7e5 -fy 25e3 -hardening 0.05 -max-disp 0.15
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"neesgrid/internal/control"
	"neesgrid/internal/core"
	"neesgrid/internal/gsi"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/plugin"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4455", "listen address")
	caCert := flag.String("ca-cert", "certs/ca.cert", "trusted CA certificate")
	credPath := flag.String("cred", "", "site credential (from gridca issue)")
	allow := flag.String("allow", "", "comma-separated identity=account gridmap entries")
	point := flag.String("point", "drift", "control point name")
	kind := flag.String("kind", "simulation", "backend: simulation|shore-western|xpc|kinetic")
	k := flag.Float64("k", 7.7e5, "substructure elastic stiffness N/m")
	fy := flag.Float64("fy", 0, "yield force N (0 = linear)")
	hardening := flag.Float64("hardening", 0.05, "post-yield stiffness ratio")
	maxDisp := flag.Float64("max-disp", 0, "site policy displacement limit m (0 = none)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /trace on this address (off when empty)")
	flag.Parse()

	if *credPath == "" {
		fatal("need -cred (issue one with gridca)")
	}
	cert, err := gsi.LoadCertificate(*caCert)
	if err != nil {
		fatal("load CA cert: %v", err)
	}
	cred, err := gsi.LoadCredential(*credPath)
	if err != nil {
		fatal("load credential: %v", err)
	}
	gm := gsi.NewGridmap(nil)
	for _, entry := range strings.Split(*allow, ",") {
		if entry == "" {
			continue
		}
		// Identities contain "=" (e.g. /O=NEES/CN=coordinator); the
		// account is everything after the last "=".
		cut := strings.LastIndex(entry, "=")
		if cut < 0 {
			fatal("bad -allow entry %q (want identity=account)", entry)
		}
		id, acct := entry[:cut], entry[cut+1:]
		if id == "" || acct == "" {
			fatal("bad -allow entry %q (want identity=account)", entry)
		}
		gm.Map(id, acct)
	}

	plug, err := buildPlugin(*kind, *point, *k, *fy, *hardening)
	if err != nil {
		fatal("%v", err)
	}
	var policy *core.SitePolicy
	if *maxDisp > 0 {
		policy = &core.SitePolicy{PointLimits: map[string]core.Limits{
			*point: {MaxDisplacement: *maxDisp},
		}}
	}
	reg := telemetry.NewRegistry()
	// The trace service name is the credential's CN — the site name in the
	// merged timeline.
	svc := cred.Identity()
	if i := strings.LastIndex(svc, "CN="); i >= 0 {
		svc = svc[i+len("CN="):]
	}
	rec := trace.NewRecorder(0)
	tracer := trace.NewTracer(svc, rec)
	server := core.NewServer(plug, policy, core.ServerOptions{Telemetry: reg, Tracer: tracer})
	cont := ogsi.NewContainer(cred, gsi.NewTrustStore(cert), gm)
	cont.UseTelemetry(reg)
	cont.UseTracer(tracer)
	cont.AddService(server.Service())
	bound, err := cont.Start(*addr)
	if err != nil {
		fatal("start: %v", err)
	}
	fmt.Printf("ntcpd: site %s serving %q (%s, k=%g) on %s\n",
		cred.Identity(), *point, *kind, *k, bound)
	fmt.Printf("ntcpd: metrics at http://%s/metrics, spans at http://%s/trace\n",
		bound, bound)
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, trace.DebugMux(rec)); err != nil {
				fmt.Fprintf(os.Stderr, "ntcpd: pprof: %v\n", err)
			}
		}()
		fmt.Printf("ntcpd: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("ntcpd: shutting down")
	stopCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = cont.Stop(stopCtx)
}

func buildPlugin(kind, point string, k, fy, hardening float64) (core.Plugin, error) {
	switch kind {
	case "simulation":
		var elem structural.Element
		if fy > 0 {
			elem = structural.NewBilinear(k, fy, hardening)
		} else {
			elem = structural.NewLinearElastic(k)
		}
		var mu sync.Mutex
		return &core.SubstructurePlugin{Point: point, NDOF: 1,
			Apply: func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return []float64{elem.Restore(d[0])}, nil
			}}, nil
	case "shore-western":
		rig := control.NewColumnRig(point+"-rig", control.DefaultActuator(), k, fy, hardening)
		srv := control.NewShoreWesternServer(rig)
		swAddr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("start shore-western controller: %w", err)
		}
		return &plugin.ShoreWesternPlugin{Point: point, Client: control.NewShoreWesternClient(swAddr)}, nil
	case "xpc":
		rig := control.NewColumnRig(point+"-rig", control.DefaultActuator(), k, fy, hardening)
		target := control.NewXPCTarget(rig)
		target.Start(time.Millisecond)
		return &plugin.XPCPlugin{Point: point, Target: target, SettleTimeout: 10 * time.Second}, nil
	case "kinetic":
		sim := control.NewFirstOrderKinetic(point+"-kinetic", k, 0.02, 1.0)
		var mu sync.Mutex
		return &core.SubstructurePlugin{Point: point, NDOF: 1,
			Apply: func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return sim.Apply(d)
			}}, nil
	default:
		return nil, fmt.Errorf("unknown -kind %q", kind)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ntcpd: "+format+"\n", args...)
	os.Exit(1)
}
