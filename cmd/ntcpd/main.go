// Command ntcpd runs one NEESgrid site: an OGSI container hosting an NTCP
// server whose control plugin drives either a numerical substructure or an
// emulated rig (paper Fig. 2 / Fig. 9). Pointed at by cmd/coordinator.
//
// Example (a UIUC-style site with an emulated servo-hydraulic rig):
//
//	ntcpd -addr 127.0.0.1:4455 \
//	      -ca-cert certs/ca.cert -cred certs/uiuc.cred \
//	      -allow "/O=NEES/CN=coordinator=coord" \
//	      -point left-column -kind shore-western \
//	      -k 7.7e5 -fy 25e3 -hardening 0.05 -max-disp 0.15
//
// SIGINT/SIGTERM drain the process: /readyz flips not-ready, in-flight
// NTCP executions get their deadline to finish (new proposals are
// refused with a retryable code), then the container closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"neesgrid/internal/control"
	"neesgrid/internal/core"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/plugin"
	"neesgrid/internal/runtime"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:4455", "listen address")
	point := flag.String("point", "drift", "control point name")
	kind := flag.String("kind", "simulation", "backend: simulation|shore-western|xpc|kinetic")
	k := flag.Float64("k", 7.7e5, "substructure elastic stiffness N/m")
	fy := flag.Float64("fy", 0, "yield force N (0 = linear)")
	hardening := flag.Float64("hardening", 0.05, "post-yield stiffness ratio")
	maxDisp := flag.Float64("max-disp", 0, "site policy displacement limit m (0 = none)")
	var gsiFlags runtime.GSIFlags
	var debugFlags runtime.DebugFlags
	gsiFlags.Register(nil)
	debugFlags.Register(nil)
	flag.Parse()

	id, err := gsiFlags.Load()
	if err != nil {
		return fatal("%v", err)
	}

	reg := telemetry.NewRegistry()
	rec := trace.NewRecorder(0)
	// The trace service name is the credential's CN — the site name in the
	// merged timeline.
	tracer := trace.NewTracer(id.ServiceName(), rec)

	sup := runtime.NewSupervisor("ntcpd")
	ds := debugFlags.Install(sup, rec)

	// Backend rig pieces start inline (they must exist before the server)
	// and are adopted into the stop order; the container and NTCP server
	// are supervisor-started. Registration order matters: the server
	// registers after the container so it drains first — a mid-step
	// coordinator sees the retryable drain code over a still-open listener,
	// not a connection reset.
	plug, err := buildPlugin(sup, *kind, *point, *k, *fy, *hardening)
	if err != nil {
		return fatal("%v", err)
	}
	var policy *core.SitePolicy
	if *maxDisp > 0 {
		policy = &core.SitePolicy{PointLimits: map[string]core.Limits{
			*point: {MaxDisplacement: *maxDisp},
		}}
	}
	server := core.NewServer(plug, policy, core.ServerOptions{Telemetry: reg, Tracer: tracer})
	cont := ogsi.NewContainer(id.Cred, id.Trust, id.Gridmap)
	cont.UseTelemetry(reg)
	cont.UseTracer(tracer)
	cont.AddService(server.Service())
	sup.Add("container", runtime.Funcs{
		StartFunc: func(context.Context) error {
			bound, err := cont.Start(*addr)
			if err != nil {
				return err
			}
			fmt.Printf("ntcpd: site %s serving %q (%s, k=%g) on %s\n",
				id.Cred.Identity(), *point, *kind, *k, bound)
			fmt.Printf("ntcpd: metrics at http://%s/metrics, spans at http://%s/trace\n",
				bound, bound)
			if ds != nil {
				fmt.Printf("ntcpd: pprof at http://%s/debug/pprof/, probes at /healthz /readyz\n", ds.Addr())
			}
			return nil
		},
		StopFunc:    cont.Stop,
		HealthyFunc: cont.Healthy,
	}, runtime.WithDrain(time.Second))
	sup.Add("ntcp-server", server)

	return runtime.Main("ntcpd", sup, nil)
}

// buildPlugin constructs the control backend, adopting any inline-started
// rig pieces (controller servers, xPC targets) into sup's stop order.
func buildPlugin(sup *runtime.Supervisor, kind, point string, k, fy, hardening float64) (core.Plugin, error) {
	switch kind {
	case "simulation":
		var elem structural.Element
		if fy > 0 {
			elem = structural.NewBilinear(k, fy, hardening)
		} else {
			elem = structural.NewLinearElastic(k)
		}
		var mu sync.Mutex
		return &core.SubstructurePlugin{Point: point, NDOF: 1,
			Apply: func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return []float64{elem.Restore(d[0])}, nil
			}}, nil
	case "shore-western":
		rig := control.NewColumnRig(point+"-rig", control.DefaultActuator(), k, fy, hardening)
		srv := control.NewShoreWesternServer(rig)
		swAddr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("start shore-western controller: %w", err)
		}
		sup.Adopt("shore-western-server", runtime.StopErrFunc(srv.Close))
		cl := control.NewShoreWesternClient(swAddr)
		sup.Adopt("shore-western-client", runtime.StopErrFunc(cl.Close))
		return &plugin.ShoreWesternPlugin{Point: point, Client: cl}, nil
	case "xpc":
		rig := control.NewColumnRig(point+"-rig", control.DefaultActuator(), k, fy, hardening)
		target := control.NewXPCTarget(rig)
		target.Start(time.Millisecond)
		sup.Adopt("xpc-target", runtime.StopFunc(target.Stop))
		return &plugin.XPCPlugin{Point: point, Target: target, SettleTimeout: 10 * time.Second}, nil
	case "kinetic":
		sim := control.NewFirstOrderKinetic(point+"-kinetic", k, 0.02, 1.0)
		var mu sync.Mutex
		return &core.SubstructurePlugin{Point: point, NDOF: 1,
			Apply: func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return sim.Apply(d)
			}}, nil
	default:
		return nil, fmt.Errorf("unknown -kind %q", kind)
	}
}

func fatal(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "ntcpd: "+format+"\n", args...)
	return 1
}
