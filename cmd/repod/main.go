// Command repod runs the NEESgrid data and metadata repository (paper §2.3,
// Fig. 3): a GridFTP-style transfer server for bulk data, an OGSI container
// hosting the NMDS and NFMS catalog services, and the HTTPS bridge that
// serves logical files to browser-class clients.
//
// Example:
//
//	repod -addr 127.0.0.1:8445 -gridftp 127.0.0.1:2811 -bridge 127.0.0.1:8446 \
//	      -root /srv/nees-data \
//	      -ca-cert certs/ca.cert -cred certs/repo.cred \
//	      -allow "/O=NEES/CN=uiuc=uiuc,/O=NEES/CN=coordinator=coord"
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neesgrid/internal/gridftp"
	"neesgrid/internal/gsi"
	"neesgrid/internal/nfms"
	"neesgrid/internal/nmds"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/repo"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8445", "OGSI container address (NMDS + NFMS)")
	gridftpAddr := flag.String("gridftp", "127.0.0.1:2811", "GridFTP-style transfer address")
	bridgeAddr := flag.String("bridge", "", "HTTPS-bridge address (empty = disabled)")
	root := flag.String("root", "data", "file store root directory")
	caCert := flag.String("ca-cert", "certs/ca.cert", "trusted CA certificate")
	credPath := flag.String("cred", "", "repository credential")
	allow := flag.String("allow", "", "comma-separated identity=account gridmap entries")
	flag.Parse()
	if *credPath == "" {
		fatal("need -cred")
	}

	cert, err := gsi.LoadCertificate(*caCert)
	if err != nil {
		fatal("load CA cert: %v", err)
	}
	cred, err := gsi.LoadCredential(*credPath)
	if err != nil {
		fatal("load credential: %v", err)
	}
	gm := gsi.NewGridmap(nil)
	for _, entry := range strings.Split(*allow, ",") {
		if entry == "" {
			continue
		}
		// Identities contain "=" (e.g. /O=NEES/CN=coordinator); the
		// account is everything after the last "=".
		cut := strings.LastIndex(entry, "=")
		if cut < 0 {
			fatal("bad -allow entry %q (want identity=account)", entry)
		}
		id, acct := entry[:cut], entry[cut+1:]
		if id == "" || acct == "" {
			fatal("bad -allow entry %q", entry)
		}
		gm.Map(id, acct)
	}

	r, err := repo.New(cred.Identity())
	if err != nil {
		fatal("repository: %v", err)
	}

	ftp, err := gridftp.NewServer(*root)
	if err != nil {
		fatal("gridftp: %v", err)
	}
	ftpBound, err := ftp.Start(*gridftpAddr)
	if err != nil {
		fatal("gridftp start: %v", err)
	}
	fmt.Printf("repod: gridftp serving %s on %s\n", *root, ftpBound)

	cont := ogsi.NewContainer(cred, gsi.NewTrustStore(cert), gm)
	cont.AddService(nmds.NewService(r.Meta))
	cont.AddService(nfms.NewService(r.Files))
	bound, err := cont.Start(*addr)
	if err != nil {
		fatal("container start: %v", err)
	}
	fmt.Printf("repod: NMDS + NFMS on %s (identity %s)\n", bound, cred.Identity())

	var bridgeServer *http.Server
	if *bridgeAddr != "" {
		bridge := &repo.Bridge{Repo: r}
		mux := http.NewServeMux()
		mux.Handle("/files/", bridge)
		bridgeServer = &http.Server{Addr: *bridgeAddr, Handler: mux}
		go func() {
			if err := bridgeServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "repod: bridge: %v\n", err)
			}
		}()
		fmt.Printf("repod: https bridge on %s\n", *bridgeAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("repod: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = cont.Stop(ctx)
	_ = ftp.Close()
	if bridgeServer != nil {
		_ = bridgeServer.Shutdown(ctx)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "repod: "+format+"\n", args...)
	os.Exit(1)
}
