// Command repod runs the NEESgrid data and metadata repository (paper §2.3,
// Fig. 3): a GridFTP-style transfer server for bulk data, an OGSI container
// hosting the NMDS and NFMS catalog services, and the HTTPS bridge that
// serves logical files to browser-class clients.
//
// Example:
//
//	repod -addr 127.0.0.1:8445 -gridftp 127.0.0.1:2811 -bridge 127.0.0.1:8446 \
//	      -root /srv/nees-data \
//	      -ca-cert certs/ca.cert -cred certs/repo.cred \
//	      -allow "/O=NEES/CN=uiuc=uiuc,/O=NEES/CN=coordinator=coord"
//
// SIGINT/SIGTERM drain the process in reverse start order: bridge, then
// container, then the transfer server, each under its own deadline.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"

	"neesgrid/internal/gridftp"
	"neesgrid/internal/nfms"
	"neesgrid/internal/nmds"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/repo"
	"neesgrid/internal/runtime"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8445", "OGSI container address (NMDS + NFMS)")
	gridftpAddr := flag.String("gridftp", "127.0.0.1:2811", "GridFTP-style transfer address")
	bridgeAddr := flag.String("bridge", "", "HTTPS-bridge address (empty = disabled)")
	root := flag.String("root", "data", "file store root directory")
	var gsiFlags runtime.GSIFlags
	var debugFlags runtime.DebugFlags
	gsiFlags.Register(nil)
	debugFlags.Register(nil)
	flag.Parse()

	id, err := gsiFlags.Load()
	if err != nil {
		return fatal("%v", err)
	}
	r, err := repo.New(id.Cred.Identity())
	if err != nil {
		return fatal("repository: %v", err)
	}
	ftp, err := gridftp.NewServer(*root)
	if err != nil {
		return fatal("gridftp: %v", err)
	}

	sup := runtime.NewSupervisor("repod")
	ds := debugFlags.Install(sup, nil)

	sup.Add("gridftp", runtime.Funcs{
		StartFunc: func(context.Context) error {
			bound, err := ftp.Start(*gridftpAddr)
			if err != nil {
				return err
			}
			fmt.Printf("repod: gridftp serving %s on %s\n", *root, bound)
			return nil
		},
		StopFunc: func(context.Context) error { return ftp.Close() },
	})

	cont := ogsi.NewContainer(id.Cred, id.Trust, id.Gridmap)
	cont.AddService(nmds.NewService(r.Meta))
	cont.AddService(nfms.NewService(r.Files))
	sup.Add("container", runtime.Funcs{
		StartFunc: func(context.Context) error {
			bound, err := cont.Start(*addr)
			if err != nil {
				return err
			}
			fmt.Printf("repod: NMDS + NFMS on %s (identity %s)\n", bound, id.Cred.Identity())
			if ds != nil {
				fmt.Printf("repod: probes at http://%s/healthz /readyz\n", ds.Addr())
			}
			return nil
		},
		StopFunc:    cont.Stop,
		HealthyFunc: cont.Healthy,
	})

	if *bridgeAddr != "" {
		bridge := &repo.Bridge{Repo: r}
		mux := http.NewServeMux()
		mux.Handle("/files/", bridge)
		bs := runtime.NewDebugServer(*bridgeAddr, mux)
		sup.Add("https-bridge", runtime.Funcs{
			StartFunc: func(ctx context.Context) error {
				if err := bs.Start(ctx); err != nil {
					return err
				}
				fmt.Printf("repod: https bridge on %s\n", bs.Addr())
				return nil
			},
			StopFunc:    bs.Stop,
			HealthyFunc: bs.Healthy,
		})
	}

	return runtime.Main("repod", sup, nil)
}

func fatal(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "repod: "+format+"\n", args...)
	return 1
}
