// Command benchgate is the CI performance gate: it runs the E8/E10
// hot-path benchmark smoke, compares each benchmark's ns/op against the
// most recent baseline recorded in BENCH_ntcp.json, and fails the build
// when any benchmark regresses by more than the threshold.
//
//	go run ./deploy/benchgate                 # run benchmarks, gate vs baseline
//	go run ./deploy/benchgate -input out.txt  # gate a pre-recorded bench output
//	go run ./deploy/benchgate -threshold 0.30 # loosen for noisy runners
//
// "Latest baseline" means the last entry for a benchmark name across the
// baseline file's result sets in order — later sets supersede earlier
// ones, mirroring how the file accretes one measurement block per perf PR.
// Benchmarks with no recorded baseline (or a null one) are reported but
// never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type benchResult struct {
	Benchmark string   `json:"benchmark"`
	After     *float64 `json:"after_ns_op"`
	// Max is an optional absolute ns/op ceiling: unlike the relative
	// regression threshold, it fails the gate whenever the measurement
	// exceeds it — used for targets the design promises outright (e.g.
	// "a pipelined WAN step stays under 7 ms").
	Max *float64 `json:"max_ns_op,omitempty"`
}

type benchFile struct {
	Results []benchResult `json:"results"`
	Runtime struct {
		Results []benchResult `json:"results"`
	} `json:"runtime_refactor"`
	CI struct {
		Results []benchResult `json:"results"`
	} `json:"ci_baseline"`
}

// benchLine matches `BenchmarkE8NtcpFastPath-8   50   414039 ns/op ...`,
// tolerating the -GOMAXPROCS suffix and fractional ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func main() {
	baselinePath := flag.String("baseline", "BENCH_ntcp.json", "baseline file")
	benchRE := flag.String("bench", "E8|E10", "benchmark selector (go test -bench syntax)")
	benchtime := flag.String("benchtime", "50x", "go test -benchtime")
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	input := flag.String("input", "", "parse this pre-recorded `go test -bench` output instead of running")
	count := flag.Int("count", 1, "go test -count; the gate keeps each benchmark's fastest repeat")
	threshold := flag.Float64("threshold", 0.15, "max allowed slowdown vs baseline (0.15 = +15%)")
	flag.Parse()

	baseline, ceilings, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal("%v", err)
	}

	var out string
	if *input != "" {
		data, err := os.ReadFile(*input)
		if err != nil {
			fatal("%v", err)
		}
		out = string(data)
	} else {
		cmd := exec.Command("go", "test", "-run=NONE", "-bench", *benchRE,
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count), *pkg)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			fatal("bench run: %v", err)
		}
		out = string(raw)
	}

	measured := parseBench(out)
	if len(measured) == 0 {
		fatal("no benchmark results in output (selector %q)", *benchRE)
	}

	failed := 0
	fmt.Printf("%-32s %14s %14s %9s\n", "benchmark", "baseline ns/op", "measured ns/op", "delta")
	for _, m := range measured {
		base, ok := baseline[m.name]
		switch {
		case !ok:
			fmt.Printf("%-32s %14s %14.0f %9s\n", m.name, "(none)", m.nsOp, "-")
		default:
			delta := (m.nsOp - base) / base
			verdict := fmt.Sprintf("%+.1f%%", delta*100)
			if delta > *threshold {
				verdict += " REGRESSION"
				failed++
			}
			fmt.Printf("%-32s %14.0f %14.0f %9s\n", m.name, base, m.nsOp, verdict)
		}
		if max, ok := ceilings[m.name]; ok && m.nsOp > max {
			fmt.Printf("%-32s exceeds absolute ceiling: %.0f ns/op > max %.0f ns/op\n",
				m.name, m.nsOp, max)
			failed++
		}
	}
	if failed > 0 {
		fatal("%d benchmark(s) regressed more than %.0f%% vs %s",
			failed, *threshold*100, *baselinePath)
	}
	fmt.Printf("benchgate: ok (%d benchmarks within %.0f%% of baseline)\n",
		len(measured), *threshold*100)
}

// loadBaseline flattens the baseline file into name -> latest after_ns_op,
// plus name -> latest absolute ns/op ceiling for entries that declare one.
func loadBaseline(path string) (map[string]float64, map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: %w", err)
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	base := make(map[string]float64)
	ceilings := make(map[string]float64)
	for _, set := range [][]benchResult{bf.Results, bf.Runtime.Results, bf.CI.Results} {
		for _, r := range set {
			if r.After != nil && *r.After > 0 {
				base[r.Benchmark] = *r.After
			}
			if r.Max != nil && *r.Max > 0 {
				ceilings[r.Benchmark] = *r.Max
			}
		}
	}
	if len(base) == 0 {
		return nil, nil, fmt.Errorf("baseline %s holds no usable ns/op entries", path)
	}
	return base, ceilings, nil
}

type measurement struct {
	name string
	nsOp float64
}

// parseBench keeps each benchmark's fastest repeat: with -count > 1 the
// minimum is the noise-robust statistic for a regression gate — a genuine
// slowdown shifts the floor, a scheduling hiccup only shifts the tail.
func parseBench(out string) []measurement {
	var ms []measurement
	index := make(map[string]int)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if i, ok := index[m[1]]; ok {
			if v < ms[i].nsOp {
				ms[i].nsOp = v
			}
			continue
		}
		index[m[1]] = len(ms)
		ms = append(ms, measurement{name: m[1], nsOp: v})
	}
	return ms
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
