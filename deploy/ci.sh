#!/bin/sh
# CI gate (ROADMAP tier 1): vet, build, and run the full suite under the
# race detector. Any failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (E8/E10 hot paths) =="
go test -run=NONE -bench 'E8|E10' -benchtime=50x .

echo "== trace round-trip smoke =="
# Runs an in-process 2-site MOST topology for a few steps and fails unless
# every step's root span contains paired client+server propose/execute
# spans for each site (and the injected WAN delay is attributed).
go run ./cmd/mostctl trace -run -steps 5 > /dev/null

echo "ci: all gates passed"
