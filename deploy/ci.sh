#!/bin/sh
# CI gate (ROADMAP tier 1): vet, build, and run the full suite under the
# race detector. Any failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all gates passed"
