#!/bin/sh
# CI gate (ROADMAP tier 1): vet, build, and run the full suite under the
# race detector. Any failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (E8/E10 hot paths) =="
go test -run=NONE -bench 'E8|E10' -benchtime=50x .

echo "ci: all gates passed"
