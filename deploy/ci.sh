#!/bin/sh
# CI gate (ROADMAP tier 1): vet, build, and run the full suite under the
# race detector. Any failure fails the build.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (E8/E10 hot paths) =="
go test -run=NONE -bench 'E8|E10' -benchtime=50x .

echo "== trace round-trip smoke =="
# Runs an in-process 2-site MOST topology for a few steps and fails unless
# every step's root span contains paired client+server propose/execute
# spans for each site (and the injected WAN delay is attributed).
go run ./cmd/mostctl trace -run -steps 5 > /dev/null

echo "== shutdown smoke (graceful drain) =="
# Boots a two-site topology as real processes, polls /readyz until ready,
# SIGTERMs every process mid-step, and asserts /readyz flips to 503 before
# the listeners close, every process exits 0 with its outputs flushed, and
# an in-process experiment leaves no goroutines behind after Stop.
go test -race -count=1 -run 'TestGracefulShutdown|TestNoGoroutineLeakAfterExperimentStop' ./internal/e2e/

echo "ci: all gates passed"
