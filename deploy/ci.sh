#!/bin/sh
# Staged CI pipeline. Usage:
#
#   deploy/ci.sh                 # default lane (tier 1): vet build test bench smoke obs fleet
#   deploy/ci.sh chaos           # nightly lane: chaos scenarios, twice each, byte-compared
#   deploy/ci.sh vet test        # any subset, in the order given
#   deploy/ci.sh all             # every stage including lint and chaos
#
# Stages:
#   vet    - go vet
#   lint   - pinned staticcheck (network needed on first run to fetch the
#            tool; the GitHub runners cache it, so it is selectable rather
#            than part of the offline default lane)
#   build  - go build everything
#   test   - full suite under the race detector
#   bench  - E8/E10 hot-path smoke gated against BENCH_ntcp.json (deploy/benchgate)
#   smoke  - trace round-trip + graceful-shutdown end-to-end smokes
#   obs    - observability smoke: the aggregator over a two-site run must
#            serve per-site + fleet-wide merged series, link the fleet p99
#            to a resolvable exemplar trace, and report an OK SLO verdict
#   fleet  - multi-tenant scheduling smoke: six experiments from two tenants
#            over a two-slot shared site pool; oversubscription must queue,
#            grants must alternate tenants (weighted fair share), every job
#            must complete, and the fleet aggregator must serve the six
#            pushed roll-ups with exactly-merged counters
#   chaos  - step-1493 (classic, pipelined, and relay-topology lanes) and
#            partition scenarios, each run twice; the two verdict reports
#            must be byte-identical (determinism gate)
#
# Every stage is timed; a summary table prints at the end. The pipeline
# stops at the first failing stage.
#
# When CI_ARTIFACTS is set to a directory, failing stages copy their
# captured output (smoke logs, diverging chaos verdicts) there so the
# workflow can upload them as build artifacts.
set -u

cd "$(dirname "$0")/.."

SUMMARY=""
OVERALL=0

# STATICCHECK_VERSION pins the lint toolchain; bump deliberately, with the
# fix-up commit for any new findings.
STATICCHECK_VERSION=2025.1.1

# save_artifact FILE NAME copies a failing stage's evidence into
# CI_ARTIFACTS (no-op when unset).
save_artifact() {
    [ -n "${CI_ARTIFACTS:-}" ] || return 0
    mkdir -p "$CI_ARTIFACTS" && cp "$1" "$CI_ARTIFACTS/$2" 2>/dev/null || true
}

stage_vet() {
    go vet ./...
}

stage_lint() {
    # Pinned so a new staticcheck release cannot turn the lane red on its
    # own schedule; `go run` fetches (and caches) exactly this version.
    go run "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./...
}

stage_build() {
    go build ./...
}

stage_test() {
    go test -race ./...
}

stage_bench() {
    # Fastest-of-5 at 100x against the floor recorded in the ci_baseline
    # block; >15% above the floor fails the stage. The minimum over repeats
    # is what makes a 15% gate workable on a noisy shared runner.
    go run ./deploy/benchgate -count 5 -benchtime 100x -bench 'E8|E10Streaming' || return 1
    # The viewer-scale fan-out benchmarks run 100k-subscriber sweeps, so
    # they get a shorter repeat budget of their own.
    go run ./deploy/benchgate -count 3 -benchtime 20x -bench 'E10FanOut'
}

stage_smoke() {
    # Trace round-trip: an in-process 2-site MOST topology for a few steps;
    # fails unless every step's root span contains paired client+server
    # propose/execute spans per site. Output is captured to a temp file and
    # dumped on failure instead of vanishing into /dev/null.
    tmp=$(mktemp) || return 1
    if ! go run ./cmd/mostctl trace -run -steps 5 >"$tmp" 2>&1; then
        echo "trace smoke failed; captured output:"
        cat "$tmp"
        save_artifact "$tmp" trace-smoke.log
        rm -f "$tmp"
        return 1
    fi
    rm -f "$tmp"

    # Shutdown smoke: boots a two-site topology as real processes, SIGTERMs
    # them mid-step, and asserts readiness flips, exits are clean, and an
    # in-process experiment leaves no goroutines behind. The fan-out smoke
    # drives daq → hub → TCP relay → SSE gateway end to end and checks the
    # per-tier drop counters land in telemetry.
    go test -race -count=1 -run 'TestGracefulShutdown|TestNoGoroutineLeakAfterExperimentStop|TestFanOutPipelineSmoke' ./internal/e2e/
}

stage_obs() {
    # Observability smoke: `mostctl top -run` drives a two-site experiment
    # with its obs aggregator serving over HTTP, then self-checks: per-site
    # labeled series and fleet-wide merged p50/p95/p99 in /metrics, an
    # exemplar trace ID on the fleet RTT histogram that resolves to recorded
    # spans, and an OK SLO verdict (any latched breach exits non-zero).
    tmp=$(mktemp) || return 1
    if ! go run ./cmd/mostctl top -run -steps 15 >"$tmp" 2>&1; then
        echo "obs smoke failed; captured output:"
        cat "$tmp"
        save_artifact "$tmp" obs-smoke.log
        rm -f "$tmp"
        return 1
    fi
    # Belt and braces: the self-check already asserts these, but grep the
    # rendered output so a silently-weakened checker still fails the stage.
    rc=0
    for needle in 'fleet RTT' 'slowest trace=' 'top check passed'; do
        if ! grep -q "$needle" "$tmp"; then
            echo "obs smoke output missing '$needle':"
            cat "$tmp"
            save_artifact "$tmp" obs-smoke.log
            rc=1
            break
        fi
    done
    rm -f "$tmp"
    return $rc
}

stage_fleet() {
    # Fleet scheduling smoke: `mostctl fleet -run` submits six experiments
    # from two equal-weight tenants against a two-slot shared site pool,
    # then self-checks: admission queues the 3x oversubscription, grants
    # alternate tenants (weighted round-robin, FIFO within one) in a
    # deterministic order, all six jobs complete every step on the shared
    # slots, each run's roll-up reaches the fleet aggregator over the real
    # HTTP push path, and the merged fleet view sums the six runs exactly.
    tmp=$(mktemp) || return 1
    if ! go run ./cmd/mostctl fleet -run -steps 25 >"$tmp" 2>&1; then
        echo "fleet smoke failed; captured output:"
        cat "$tmp"
        save_artifact "$tmp" fleet-smoke.log
        rm -f "$tmp"
        return 1
    fi
    rc=0
    for needle in 'grant order' 'fleet roll-up' 'fleet check passed'; do
        if ! grep -q "$needle" "$tmp"; then
            echo "fleet smoke output missing '$needle':"
            cat "$tmp"
            save_artifact "$tmp" fleet-smoke.log
            rc=1
            break
        fi
    done
    rm -f "$tmp"
    return $rc
}

stage_chaos() {
    out=$(mktemp -d) || return 1
    rc=0
    for sc in step-1493 step-1493-pipelined step-1493-relay partition; do
        file="deploy/scenarios/$sc.json"
        echo "-- scenario $sc: run 1 --"
        if ! go run ./cmd/mostctl chaos -scenario "$file" -out "$out/$sc-1.json" >/dev/null; then
            rc=1
            break
        fi
        echo "-- scenario $sc: run 2 (replay) --"
        if ! go run ./cmd/mostctl chaos -q -scenario "$file" -out "$out/$sc-2.json" >/dev/null; then
            rc=1
            break
        fi
        if ! cmp "$out/$sc-1.json" "$out/$sc-2.json"; then
            echo "scenario $sc: verdicts differ between identical runs (determinism broken)"
            diff "$out/$sc-1.json" "$out/$sc-2.json" || true
            save_artifact "$out/$sc-1.json" "$sc-verdict-1.json"
            save_artifact "$out/$sc-2.json" "$sc-verdict-2.json"
            rc=1
            break
        fi
        echo "-- scenario $sc: completed and byte-replayed --"
    done
    rm -rf "$out"
    return $rc
}

run_stage() {
    name=$1
    echo "== $name =="
    start=$(date +%s)
    if "stage_$name"; then
        status=ok
    else
        status=FAIL
        OVERALL=1
    fi
    end=$(date +%s)
    SUMMARY="$SUMMARY$(printf '\n  %-7s %-5s %4ds' "$name" "$status" "$((end - start))")"
    [ "$status" = ok ] || finish
}

finish() {
    echo "== summary =="
    printf '  %-7s %-5s %5s' stage state time
    printf '%s\n' "$SUMMARY"
    if [ "$OVERALL" -eq 0 ]; then
        echo "ci: all selected stages passed"
    else
        echo "ci: FAILED"
    fi
    exit "$OVERALL"
}

if [ $# -eq 0 ]; then
    set -- vet build test bench smoke obs fleet
elif [ "$1" = all ]; then
    set -- vet lint build test bench smoke obs fleet chaos
fi

for stage in "$@"; do
    case "$stage" in
    vet | lint | build | test | bench | smoke | obs | fleet | chaos) ;;
    *)
        echo "ci: unknown stage '$stage' (stages: vet lint build test bench smoke obs fleet chaos)" >&2
        exit 2
        ;;
    esac
done

for stage in "$@"; do
    run_stage "$stage"
done
finish
