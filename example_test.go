package neesgrid_test

import (
	"context"
	"fmt"
	"log"

	"neesgrid"
)

// ExampleNewNTCPServer shows the NTCP transaction lifecycle against a
// simulated substructure: propose, execute, and the policy screen that
// rejects unsafe commands before anything moves.
func ExampleNewNTCPServer() {
	ctx := context.Background()
	plugin := &neesgrid.SubstructurePlugin{
		Point: "drift", NDOF: 1,
		Apply: func(d []float64) ([]float64, error) {
			return []float64{2e6 * d[0]}, nil // a 2 MN/m column
		},
	}
	policy := &neesgrid.SitePolicy{PointLimits: map[string]neesgrid.Limits{
		"drift": {MaxDisplacement: 0.05},
	}}
	server := neesgrid.NewNTCPServer(plugin, policy, neesgrid.NTCPServerOptions{})

	rec, err := server.Propose(ctx, "engineer", &neesgrid.Proposal{
		Name:    "step-1",
		Actions: []neesgrid.Action{{ControlPoint: "drift", Displacements: []float64{0.01}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proposal:", rec.State)

	rec, err = server.Execute(ctx, "engineer", "step-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: force %.0f N\n", rec.Results[0].Forces[0])

	rec, _ = server.Propose(ctx, "engineer", &neesgrid.Proposal{
		Name:    "step-unsafe",
		Actions: []neesgrid.Action{{ControlPoint: "drift", Displacements: []float64{0.5}}},
	})
	fmt.Println("unsafe proposal:", rec.State)
	// Output:
	// proposal: accepted
	// executed: force 20000 N
	// unsafe proposal: rejected
}

// ExampleBuildExperiment runs a short Mini-MOST experiment end to end: two
// sites behind NTCP, the MS-PSDS coordinator, and the response history.
func ExampleBuildExperiment() {
	spec := neesgrid.MiniMOSTSpec(false) // kinetic beam simulator
	spec.Steps = 50
	exp, err := neesgrid.BuildExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Stop()

	res, err := exp.Run(context.Background())
	if err != nil || res.Err != nil {
		log.Fatal(err, res.Err)
	}
	fmt.Printf("completed %d steps across %d sites\n",
		res.Report.StepsCompleted, len(exp.Sites))
	fmt.Println("history recorded:", res.History.Len() == 51)
	// Output:
	// completed 50 steps across 2 sites
	// history recorded: true
}

// ExampleGenerateGroundMotion synthesizes the deterministic El Centro-like
// record used by the MOST reproduction.
func ExampleGenerateGroundMotion() {
	cfg := neesgrid.ElCentroLike()
	rec, err := neesgrid.GenerateGroundMotion(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("samples:", len(rec.Ag))
	fmt.Printf("PGA: %.2f g\n", rec.PGA()/9.81)
	// Output:
	// samples: 1501
	// PGA: 0.40 g
}
