// Fault tolerance (paper §3.4): the same experiment run twice over a faulty
// wide-area network. A fault-tolerant coordinator recovers every transient
// failure through NTCP's at-most-once retries; a coordinator without
// retries — like the public MOST run's — dies at the first network error.
//
//	go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"

	"neesgrid"
)

const steps = 200

func run(retry neesgrid.RetryPolicy, label string) {
	spec := neesgrid.MOSTSpec(neesgrid.VariantSimulation, retry)
	spec.Name = "ft-" + label
	spec.Steps = steps
	spec.Faults = []neesgrid.Fault{
		{Step: 40, Site: "uiuc", Count: 2},
		{Step: 90, Site: "ncsa", Count: 1},
		{Step: 150, Site: "cu", Count: 2},
	}
	exp, err := neesgrid.BuildExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- %s coordinator ---\n", label)
	fmt.Printf("faults injected:    %d\n", res.InjectedFaults)
	fmt.Printf("steps completed:    %d/%d\n", res.Report.StepsCompleted, steps)
	if res.Err != nil {
		fmt.Printf("outcome:            ABORTED at step %d: %v\n", res.Report.FailedStep, res.Err)
	} else {
		fmt.Printf("outcome:            completed; recovered %d transient failures (%d retries)\n",
			res.Report.Recovered, res.Report.Retries)
	}
}

func main() {
	fmt.Println("Injecting transient network failures at steps 40, 90, and 150...")
	run(neesgrid.DefaultRetry, "fault-tolerant")
	run(neesgrid.NoRetry, "no-retry")
	fmt.Println("\nThe no-retry coordinator reproduces the public MOST run's failure mode;")
	fmt.Println("run `mostctl -experiment public-run` for the full 1493-of-1500 reproduction.")
}
