// The UCLA field test (paper §5): harmonic and earthquake-type force
// histories applied to a four-story office building, response gathered by a
// wireless sensor array (802.11 telemetry, lossy), archived at a mobile
// command center, and transmitted to the laboratory repository over
// satellite telemetry.
//
//	go run ./examples/fieldtest
package main

import (
	"fmt"
	"log"

	"neesgrid/internal/daq"
	"neesgrid/internal/groundmotion"
	"neesgrid/internal/repo"
	"neesgrid/internal/structural"
)

func main() {
	// Four-story shear building, modally reduced to its first mode for the
	// forced-vibration study.
	const (
		mass   = 4 * 80_000.0 // kg, four floor plates
		kStory = 6.0e7        // N/m
	)
	cfg := structural.FrameConfig{
		Mass: mass, LeftK: kStory, DampingRatio: 0.03, Dt: 0.02, Steps: 600,
	}
	fmt.Printf("UCLA field test: building period %.2f s, harmonic forcing\n", cfg.Period())

	// Harmonic force history (the shaker trucks), near the first mode.
	record := groundmotion.HarmonicRecord("harmonic", cfg.Dt,
		float64(cfg.Steps)*cfg.Dt, 0.05*9.81, 1/cfg.Period())

	assembly, err := cfg.Assembly()
	if err != nil {
		log.Fatal(err)
	}
	sys := cfg.System(assembly)

	// Wireless array: accelerometers, strain gauges, and displacement
	// sensors on the building, with realistic link quality.
	array := daq.NewWirelessArray("ucla", 2026)
	var drift, accel float64
	sensors := []struct {
		name    string
		kind    daq.SensorKind
		quality float64
		read    func() float64
	}{
		{"ucla.roof-acc", daq.Accelerometer, 0.92, func() float64 { return accel }},
		{"ucla.roof-disp", daq.LVDT, 0.88, func() float64 { return drift }},
		{"ucla.col-strain", daq.StrainGauge, 0.85, func() float64 { return drift * 1.2e-2 }},
	}
	for _, s := range sensors {
		if err := array.AddNode(daq.WirelessNode{
			Channel:     daq.Channel{Name: s.name, Kind: s.kind, Read: s.read, NoiseStd: 1e-4},
			LinkQuality: s.quality,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Mobile command center archives whatever the air delivers.
	cc := daq.NewCommandCenter()
	h, err := structural.Run(sys, structural.NewExplicitNewmark(), structural.RunOptions{
		Dt: cfg.Dt, Steps: cfg.Steps, Ground: record.At,
		OnStep: func(st structural.State) {
			drift = st.D[0]
			accel = st.A[0]
			cc.Receive(array.Scan(st.Step, st.T))
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	sent, lost := array.Stats()
	fmt.Printf("response: peak roof drift %.2f mm over %d steps\n",
		1000*h.PeakDisplacement(0), h.Len()-1)
	fmt.Printf("telemetry: %d packets sent, %d lost in the air (%.1f%%), %d archived\n",
		sent, lost, 100*float64(lost)/float64(sent), cc.Archived())

	// Satellite uplink to the laboratory repository.
	lab, err := repo.New("/O=NEES/CN=lab")
	if err != nil {
		log.Fatal(err)
	}
	batches := 0
	link := &daq.SatelliteLink{
		BatchLimit: 200,
		Deliver: func(batch []Reading) error {
			batches++
			id := fmt.Sprintf("data:ucla/batch-%03d", batches)
			_, err := lab.Meta.Create("/O=NEES/CN=ucla", id, "", map[string]any{
				"site": "ucla", "readings": len(batch),
				"first_step": batch[0].Step, "last_step": batch[len(batch)-1].Step,
			})
			return err
		},
	}
	delivered, err := cc.Uplink(link)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("satellite: delivered %d readings in %d batches; %d metadata records at the lab\n",
		delivered, batches, len(lab.Meta.List(""))-2) // minus the built-in schemas
}

// Reading aliases the DAQ reading type for the delivery closure signature.
type Reading = daq.Reading
