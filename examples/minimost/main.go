// Mini-MOST (paper §3.5): the tabletop, education-and-outreach version of
// MOST — a 1 m × 10 cm steel beam positioned by a stepper motor behind a
// LabVIEW daemon, coupled to a simulated frame portion. With -sim the beam
// is replaced by the first-order kinetic simulator used "for testing when
// the actual hardware is not available".
//
//	go run ./examples/minimost          # stepper-motor hardware emulation
//	go run ./examples/minimost -sim     # kinetic simulator instead
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"neesgrid"
)

func main() {
	sim := flag.Bool("sim", false, "replace the beam with the first-order kinetic simulator")
	steps := flag.Int("steps", 300, "number of pseudo-dynamic steps")
	flag.Parse()

	spec := neesgrid.MiniMOSTSpec(!*sim)
	spec.Steps = *steps
	spec.DAQEvery = 2

	frame := spec.Frame
	fmt.Printf("Mini-MOST: beam k=%.0f N/m, mass %.0f kg, period %.2f s\n",
		frame.LeftK, frame.Mass, frame.Period())
	for _, s := range spec.Sites {
		fmt.Printf("  %-7s %-12s\n", s.Name, s.Kind)
	}

	exp, err := neesgrid.BuildExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("run aborted: %v", res.Err)
	}

	fmt.Printf("\ncompleted %d steps in %s\n", res.Report.StepsCompleted,
		res.Report.Elapsed.Round(1e6))
	fmt.Printf("peak beam deflection: %6.3f mm\n", 1000*res.History.PeakDisplacement(0))
	fmt.Printf("peak beam force:      %6.3f N\n", res.History.PeakForce(0))
	if bench, ok := exp.Site("bench"); ok {
		fmt.Printf("final beam position:  %6.3f mm (stepper-quantized)\n", 1000*bench.LastDisp())
	}
}
