// The MOST experiment (paper §3): a two-bay single-story steel frame split
// into three substructures — the UIUC left column, the NCSA numerical
// middle frame, and the CU right column — coupled step by step through NTCP
// by the MS-PSDS simulation coordinator.
//
//	go run ./examples/most                 # all-simulation bring-up variant
//	go run ./examples/most -hybrid         # emulated rigs at UIUC and CU
//	go run ./examples/most -steps 1500     # the full dry run (E1)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"neesgrid"
)

func main() {
	hybrid := flag.Bool("hybrid", false, "use emulated rigs at UIUC and CU (Fig. 9 configuration)")
	steps := flag.Int("steps", 300, "number of pseudo-dynamic steps (paper: 1500)")
	flag.Parse()

	variant := neesgrid.VariantSimulation
	if *hybrid {
		variant = neesgrid.VariantHybrid
	}
	spec := neesgrid.DryRunSpec(variant)
	spec.Steps = *steps
	spec.DAQEvery = 5

	fmt.Printf("MOST: %d steps at dt=%.2gs, frame period %.2fs\n",
		*steps, spec.Frame.Dt, spec.Frame.Period())
	for _, s := range spec.Sites {
		fmt.Printf("  %-5s %-14s k=%.3g N/m\n", s.Name, s.Kind, s.K)
	}

	exp, err := neesgrid.BuildExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Stop()

	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("run aborted at step %d: %v", res.Report.FailedStep, res.Err)
	}

	fmt.Printf("\ncompleted %d/%d steps in %s\n",
		res.Report.StepsCompleted, *steps, res.Report.Elapsed.Round(1e6))
	fmt.Printf("peak story drift:   %8.2f mm\n", 1000*res.History.PeakDisplacement(0))
	fmt.Printf("peak story force:   %8.2f kN\n", res.History.PeakForce(0)/1000)
	fmt.Printf("hysteretic energy:  %8.2f J (yielding columns dissipate)\n",
		res.History.HystereticEnergy(0))

	// The Fig. 8 viewers: the streamed hysteresis loop of the UIUC column.
	xs, ys := exp.Viewer.XY("uiuc.disp", "uiuc.force")
	fmt.Printf("uiuc hysteresis series: %d points (first: %.4g m, %.4g N)\n",
		len(xs), xs[0], ys[0])

	// Per-site NTCP accounting.
	for _, site := range exp.Sites {
		st := site.Server.Stats()
		fmt.Printf("site %-5s: %d proposals, %d executed, %d deduped replays\n",
			site.Spec.Name, st.Proposed, st.Executed, st.DedupedReplay)
	}
}
