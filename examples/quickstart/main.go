// Quickstart: one NTCP transaction against a simulated substructure, first
// in-process, then across a secured OGSI container — the minimal version of
// what the MOST coordinator did 1,500 times per experiment.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"neesgrid"
)

func main() {
	ctx := context.Background()

	// A substructure is anything that can accept a displacement and report
	// the restoring force it develops. Here: a 2 MN/m linear spring
	// standing in for a steel column.
	plugin := &neesgrid.SubstructurePlugin{
		Point: "drift",
		NDOF:  1,
		Apply: func(d []float64) ([]float64, error) {
			return []float64{2e6 * d[0]}, nil
		},
	}

	// Site policy: the facility manager caps displacement at 5 cm.
	policy := &neesgrid.SitePolicy{PointLimits: map[string]neesgrid.Limits{
		"drift": {MaxDisplacement: 0.05},
	}}

	// ---- Part 1: in-process transaction lifecycle ----
	server := neesgrid.NewNTCPServer(plugin, policy, neesgrid.NTCPServerOptions{})

	rec, err := server.Propose(ctx, "quickstart-user", &neesgrid.Proposal{
		Name:    "step-1",
		Actions: []neesgrid.Action{{ControlPoint: "drift", Displacements: []float64{0.01}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposal %q -> %s\n", rec.Name, rec.State)

	rec, err = server.Execute(ctx, "quickstart-user", "step-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %q: displacement %.3f m -> force %.0f N\n",
		rec.Name, rec.Results[0].Displacements[0], rec.Results[0].Forces[0])

	// A proposal that violates site policy is rejected before anything
	// moves — the negotiation step of §2.1.
	rec, _ = server.Propose(ctx, "quickstart-user", &neesgrid.Proposal{
		Name:    "step-too-big",
		Actions: []neesgrid.Action{{ControlPoint: "drift", Displacements: []float64{0.20}}},
	})
	fmt.Printf("oversized proposal -> %s (%s)\n", rec.State, rec.Error)

	// ---- Part 2: the same thing across the Grid fabric ----
	ca, err := neesgrid.NewAuthority("/O=NEES/CN=Quickstart CA", time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	trust := neesgrid.NewTrustStore(ca.Cert)
	siteCred, _ := ca.Issue("/O=NEES/CN=site", time.Hour)
	userCred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	gridmap := neesgrid.NewGridmap(map[string]string{"/O=NEES/CN=alice": "alice"})

	container := neesgrid.NewContainer(siteCred, trust, gridmap)
	remote := neesgrid.NewNTCPServer(plugin, policy, neesgrid.NTCPServerOptions{})
	container.AddService(remote.Service())
	addr, err := container.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		stopCtx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		_ = container.Stop(stopCtx)
	}()

	client := neesgrid.NewNTCPClient(
		neesgrid.NewOGSIClient("http://"+addr, userCred, trust),
		neesgrid.DefaultRetry)
	rec, err = client.Run(ctx, &neesgrid.Proposal{
		Name:    "remote-step-1",
		Actions: []neesgrid.Action{{ControlPoint: "drift", Displacements: []float64{0.02}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote transaction %q over %s: %s, force %.0f N (signed, authorized, at-most-once)\n",
		rec.Name, addr, rec.State, rec.Results[0].Forces[0])
}
