// Soil-structure interaction (paper §5): the planned RPI/UIUC/Lehigh
// experiment shape — two structural sites, a geotechnical site with
// hysteretic soil behaviour, and a computational node at NCSA, all driven
// by the same MS-PSDS coordinator. An idealized model of the Santa Monica
// Freeway Collector-Distributor 36 damaged in the 1994 Northridge
// earthquake.
//
//	go run ./examples/soilstructure
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"neesgrid"
)

func main() {
	steps := flag.Int("steps", 400, "number of pseudo-dynamic steps")
	flag.Parse()

	spec := neesgrid.SoilStructureSpec()
	spec.Steps = *steps
	spec.DAQEvery = 4

	fmt.Printf("Soil-structure interaction: %d sites, %d steps\n", len(spec.Sites), *steps)
	for _, s := range spec.Sites {
		role := "structural"
		if s.Point == "soil" {
			role = "geotechnical"
		} else if s.Kind == neesgrid.KindMpluginSim {
			role = "computational"
		}
		fmt.Printf("  %-7s %-13s k=%.3g N/m (%s)\n", s.Name, s.Point, s.K, role)
	}

	exp, err := neesgrid.BuildExperiment(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if res.Err != nil {
		log.Fatalf("run aborted: %v", res.Err)
	}

	fmt.Printf("\ncompleted %d steps in %s\n", res.Report.StepsCompleted,
		res.Report.Elapsed.Round(1e6))
	fmt.Printf("peak deck drift:    %7.2f mm\n", 1000*res.History.PeakDisplacement(0))
	fmt.Printf("hysteretic energy:  %7.1f J (soil + pier yielding)\n",
		res.History.HystereticEnergy(0))

	// The geotechnical site's hysteresis loop — soft soil dissipates most
	// of the energy.
	xs, ys := exp.Viewer.XY("rpi.disp", "rpi.force")
	fmt.Printf("rpi soil hysteresis series: %d points\n", len(xs))
	_ = ys
}
