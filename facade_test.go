package neesgrid

import (
	"context"
	"testing"
	"time"
)

// The façade must support the full documented user journey without touching
// internal packages by name.

func TestFacadeQuickstartFlow(t *testing.T) {
	ctx := context.Background()
	plugin := &SubstructurePlugin{
		Point: "drift", NDOF: 1,
		Apply: func(d []float64) ([]float64, error) { return []float64{2e6 * d[0]}, nil },
	}
	policy := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.05}}}
	server := NewNTCPServer(plugin, policy, NTCPServerOptions{})

	rec, err := server.Propose(ctx, "user", &Proposal{
		Name:    "t1",
		Actions: []Action{{ControlPoint: "drift", Displacements: []float64{0.01}}},
	})
	if err != nil || rec.State != TxState("accepted") {
		t.Fatalf("propose = %+v, %v", rec, err)
	}
	rec, err = server.Execute(ctx, "user", "t1")
	if err != nil || rec.Results[0].Forces[0] != 2e4 {
		t.Fatalf("execute = %+v, %v", rec, err)
	}
}

func TestFacadeSecuredRemoteFlow(t *testing.T) {
	ctx := context.Background()
	ca, err := NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustStore(ca.Cert)
	siteCred, _ := ca.Issue("/O=NEES/CN=site", time.Hour)
	userCred, _ := ca.Issue("/O=NEES/CN=user", time.Hour)
	gm := NewGridmap(map[string]string{"/O=NEES/CN=user": "user"})

	container := NewContainer(siteCred, trust, gm)
	plugin := &SubstructurePlugin{
		Point: "drift", NDOF: 1,
		Apply: func(d []float64) ([]float64, error) { return []float64{1e6 * d[0]}, nil },
	}
	container.AddService(NewNTCPServer(plugin, nil, NTCPServerOptions{}).Service())
	addr, err := container.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		stopCtx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		_ = container.Stop(stopCtx)
	}()

	client := NewNTCPClient(NewOGSIClient("http://"+addr, userCred, trust), DefaultRetry)
	rec, err := client.Run(ctx, &Proposal{
		Name:    "remote-1",
		Actions: []Action{{ControlPoint: "drift", Displacements: []float64{0.005}}},
	})
	if err != nil || rec.Results[0].Forces[0] != 5e3 {
		t.Fatalf("remote run = %+v, %v", rec, err)
	}
}

func TestFacadeExperimentSpecs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spec  ExperimentSpec
		sites int
	}{
		{"most-sim", MOSTSpec(VariantSimulation, DefaultRetry), 3},
		{"dry-run", DryRunSpec(VariantSimulation), 3},
		{"public-run", PublicRunSpec(VariantSimulation), 3},
		{"minimost", MiniMOSTSpec(false), 2},
		{"soil", SoilStructureSpec(), 4},
	} {
		if len(tc.spec.Sites) != tc.sites {
			t.Errorf("%s: %d sites, want %d", tc.name, len(tc.spec.Sites), tc.sites)
		}
	}
	if len(PublicRunSpec(VariantSimulation).Faults) == 0 {
		t.Fatal("public run spec has no fault schedule")
	}
}

func TestFacadeShortExperimentRun(t *testing.T) {
	spec := MiniMOSTSpec(false)
	spec.Steps = 40
	exp, err := BuildExperiment(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil || res.Err != nil {
		t.Fatalf("run: %v / %v", err, res.Err)
	}
	if res.Report.StepsCompleted != 40 {
		t.Fatalf("report = %+v", res.Report)
	}
}

func TestFacadeGroundMotionAndModels(t *testing.T) {
	cfg := ElCentroLike()
	rec, err := GenerateGroundMotion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PGA() == 0 {
		t.Fatal("flat record")
	}
	if MOSTConfig().Steps != 1500 {
		t.Fatal("MOST grid wrong")
	}
	if MiniMOSTConfig().Mass >= MOSTConfig().Mass {
		t.Fatal("Mini-MOST should be far lighter than MOST")
	}
}

func TestFacadeStreamingAndCollab(t *testing.T) {
	hub := NewStreamHub()
	defer hub.Close()
	viewer := NewDataViewer(0)
	sub, err := hub.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { viewer.FeedFrom(sub.C()); close(done) }()
	hub.Publish(StreamSample{Channel: "c", T: 0.01, Value: 1})
	hub.Close()
	<-done
	if len(viewer.Window("c", 0, 1)) != 1 {
		t.Fatal("viewer missed the sample")
	}

	ws := NewWorkspace("facade")
	s, err := ws.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Chat(s.Token, "main", "hello"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRigAndFaultInjector(t *testing.T) {
	cfg := DefaultActuator()
	cfg.PositionNoiseStd, cfg.ForceNoiseStd = 0, 0
	rig := NewColumnRig("facade", cfg, 1000, 0, 0)
	f, err := rig.Apply([]float64{0.01})
	if err != nil || f[0] < 9 || f[0] > 11 {
		t.Fatalf("rig force = %v, %v", f, err)
	}
	in := NewFaultInjector(NetworkProfile{})
	in.FailNext(1)
	if in.Injected() != 0 {
		t.Fatal("injector counted before any call")
	}
	_ = WAN2003 // profile constant exported
}
