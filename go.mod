module neesgrid

go 1.23
