// Package cas implements a Community Authorization Service in the style of
// Pearlman et al. [17], which the paper lists as the planned next step for
// repository access control (§2.3: "We plan to add support for the
// Community Authorization Service", §3.3: "areas to be more fully developed
// in later releases, such [as] CAS-based access control").
//
// The model: a community runs a CAS server holding community policy (who
// may do what to which resources). A member authenticates to CAS and is
// issued a signed capability assertion restricted to the intersection of
// what they asked for and what policy grants. Resource servers trust the
// CAS signing identity and enforce presented assertions in addition to
// their own local policy — community policy can only narrow, never widen,
// site policy.
package cas

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"neesgrid/internal/gsi"
)

// Right is one capability: an action on a resource pattern. Patterns match
// exactly or by "*" suffix ("nmds:data:*" matches "nmds:data:most/uiuc").
type Right struct {
	Action   string `json:"action"`
	Resource string `json:"resource"`
}

// Matches reports whether the right covers the concrete action/resource.
func (r Right) Matches(action, resource string) bool {
	if r.Action != action && r.Action != "*" {
		return false
	}
	if r.Resource == resource || r.Resource == "*" {
		return true
	}
	if prefix, ok := strings.CutSuffix(r.Resource, "*"); ok {
		return strings.HasPrefix(resource, prefix)
	}
	return false
}

// Assertion is a signed capability statement: the community asserts that
// Subject holds Rights until NotAfter.
type Assertion struct {
	Community string    `json:"community"`
	Subject   string    `json:"subject"`
	Rights    []Right   `json:"rights"`
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
	Signature []byte    `json:"signature"`
}

func (a *Assertion) tbs() []byte {
	c := *a
	c.Signature = nil
	raw, err := json.Marshal(&c)
	if err != nil {
		panic(fmt.Sprintf("cas: assertion encoding: %v", err)) // cannot fail for this type
	}
	return raw
}

// Errors.
var (
	ErrNotGranted   = errors.New("cas: right not granted")
	ErrBadAssertion = errors.New("cas: invalid assertion")
	ErrExpired      = errors.New("cas: assertion expired")
)

// Server is the community policy point: it holds grants (direct and via
// groups) and issues signed assertions.
type Server struct {
	community string
	cred      *gsi.Credential

	mu      sync.Mutex
	grants  map[string][]Right  // identity → rights
	groups  map[string][]Right  // group → rights
	members map[string][]string // identity → groups
}

// NewServer creates a CAS for a community, signing with cred.
func NewServer(community string, cred *gsi.Credential) (*Server, error) {
	if cred == nil || cred.Leaf() == nil {
		return nil, fmt.Errorf("cas: server needs a signing credential")
	}
	return &Server{
		community: community,
		cred:      cred,
		grants:    make(map[string][]Right),
		groups:    make(map[string][]Right),
		members:   make(map[string][]string),
	}, nil
}

// Identity returns the CAS signing identity.
func (s *Server) Identity() string { return s.cred.Identity() }

// Grant gives an identity a right directly.
func (s *Server) Grant(identity string, rights ...Right) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grants[identity] = append(s.grants[identity], rights...)
}

// DefineGroup attaches rights to a named group.
func (s *Server) DefineGroup(group string, rights ...Right) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups[group] = append(s.groups[group], rights...)
}

// AddMember puts an identity into a group.
func (s *Server) AddMember(group, identity string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members[identity] = append(s.members[identity], group)
}

// rightsFor collects the identity's effective rights.
func (s *Server) rightsFor(identity string) []Right {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Right(nil), s.grants[identity]...)
	for _, g := range s.members[identity] {
		out = append(out, s.groups[g]...)
	}
	return out
}

// Issue returns a signed assertion for the identity, restricted to the
// intersection of requested rights and community policy. Requesting nil
// asks for everything granted. An identity with no applicable rights gets
// ErrNotGranted.
func (s *Server) Issue(identity string, requested []Right, ttl time.Duration) (*Assertion, error) {
	granted := s.rightsFor(identity)
	var rights []Right
	if requested == nil {
		rights = granted
	} else {
		for _, req := range requested {
			for _, g := range granted {
				// A requested right is covered if policy grants something
				// at least as broad.
				if g.Matches(req.Action, strings.TrimSuffix(req.Resource, "*")) ||
					(g.Action == req.Action || g.Action == "*") && g.Resource == req.Resource {
					rights = append(rights, req)
					break
				}
			}
		}
	}
	if len(rights) == 0 {
		return nil, fmt.Errorf("%w: %s has no applicable rights", ErrNotGranted, identity)
	}
	now := time.Now()
	a := &Assertion{
		Community: s.community,
		Subject:   identity,
		Rights:    rights,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(ttl),
	}
	a.Signature = ed25519.Sign(s.cred.Key, a.tbs())
	return a, nil
}

// Verifier checks assertions at a resource server.
type Verifier struct {
	community string
	// signingKey is the CAS leaf public key the resource server trusts.
	signingKey ed25519.PublicKey
}

// NewVerifier trusts assertions signed by the given CAS certificate for the
// named community.
func NewVerifier(community string, casCert *gsi.Certificate) *Verifier {
	return &Verifier{community: community, signingKey: casCert.PublicKey}
}

// Verify checks an assertion's signature, community, and validity window.
func (v *Verifier) Verify(a *Assertion, now time.Time) error {
	if a == nil {
		return ErrBadAssertion
	}
	if a.Community != v.community {
		return fmt.Errorf("%w: community %q, want %q", ErrBadAssertion, a.Community, v.community)
	}
	if now.Before(a.NotBefore) || now.After(a.NotAfter) {
		return fmt.Errorf("%w: valid %s..%s", ErrExpired, a.NotBefore, a.NotAfter)
	}
	if !ed25519.Verify(v.signingKey, a.tbs(), a.Signature) {
		return fmt.Errorf("%w: bad signature", ErrBadAssertion)
	}
	return nil
}

// Check verifies the assertion and that it entitles identity to perform
// action on resource.
func (v *Verifier) Check(a *Assertion, identity, action, resource string, now time.Time) error {
	if err := v.Verify(a, now); err != nil {
		return err
	}
	if a.Subject != identity {
		return fmt.Errorf("%w: assertion for %q presented by %q", ErrBadAssertion, a.Subject, identity)
	}
	for _, r := range a.Rights {
		if r.Matches(action, resource) {
			return nil
		}
	}
	return fmt.Errorf("%w: %s on %s", ErrNotGranted, action, resource)
}

// Registry holds the assertions clients have presented to a resource
// server, keyed by subject — the server-side wallet consulted by local
// authorization hooks (e.g. nmds.Store.SetAuthorizer).
type Registry struct {
	verifier *Verifier

	mu        sync.Mutex
	presented map[string]*Assertion
	clock     func() time.Time
}

// NewRegistry builds a registry over a verifier.
func NewRegistry(v *Verifier) *Registry {
	return &Registry{verifier: v, presented: make(map[string]*Assertion), clock: time.Now}
}

// SetClock overrides the time source (tests).
func (r *Registry) SetClock(clock func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
}

// Present validates and stores an assertion (replacing any previous one for
// the same subject).
func (r *Registry) Present(a *Assertion) error {
	r.mu.Lock()
	now := r.clock()
	r.mu.Unlock()
	if err := r.verifier.Verify(a, now); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.presented[a.Subject] = a
	return nil
}

// Allowed reports whether identity holds a presented, valid assertion
// covering action on resource — the signature expected by
// nmds.Store.SetAuthorizer.
func (r *Registry) Allowed(identity, action, resource string) bool {
	r.mu.Lock()
	a := r.presented[identity]
	now := r.clock()
	r.mu.Unlock()
	if a == nil {
		return false
	}
	return r.verifier.Check(a, identity, action, resource, now) == nil
}
