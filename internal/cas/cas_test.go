package cas

import (
	"errors"
	"testing"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/nmds"
)

const (
	alice = "/O=NEES/CN=alice"
	bob   = "/O=NEES/CN=bob"
)

func newCAS(t *testing.T) (*Server, *Verifier) {
	t.Helper()
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := ca.Issue("/O=NEES/CN=nees-cas", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("nees", cred)
	if err != nil {
		t.Fatal(err)
	}
	return srv, NewVerifier("nees", cred.Leaf())
}

func TestRightMatching(t *testing.T) {
	cases := []struct {
		right            Right
		action, resource string
		want             bool
	}{
		{Right{"write", "nmds:data:most/*"}, "write", "nmds:data:most/uiuc", true},
		{Right{"write", "nmds:data:most/*"}, "write", "nmds:data:mini/x", false},
		{Right{"write", "nmds:data:most/*"}, "read", "nmds:data:most/uiuc", false},
		{Right{"*", "nmds:data:most/*"}, "delete", "nmds:data:most/uiuc", true},
		{Right{"write", "*"}, "write", "anything", true},
		{Right{"write", "exact"}, "write", "exact", true},
		{Right{"write", "exact"}, "write", "exact2", false},
	}
	for i, c := range cases {
		if got := c.right.Matches(c.action, c.resource); got != c.want {
			t.Errorf("case %d: Matches(%q, %q) = %v", i, c.action, c.resource, got)
		}
	}
}

func TestIssueIntersectsWithPolicy(t *testing.T) {
	srv, ver := newCAS(t)
	srv.Grant(alice, Right{"write", "nmds:data:most/*"})

	// Everything granted.
	a, err := srv.Issue(alice, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Check(a, alice, "write", "nmds:data:most/uiuc", time.Now()); err != nil {
		t.Fatal(err)
	}
	// Requesting within the grant.
	a, err = srv.Issue(alice, []Right{{"write", "nmds:data:most/uiuc"}}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Check(a, alice, "write", "nmds:data:most/uiuc", time.Now()); err != nil {
		t.Fatal(err)
	}
	// The narrowed assertion does not cover siblings.
	if err := ver.Check(a, alice, "write", "nmds:data:most/cu", time.Now()); err == nil {
		t.Fatal("narrowed assertion covered an unrequested resource")
	}
	// Requesting outside the grant yields nothing.
	if _, err := srv.Issue(alice, []Right{{"delete", "nmds:data:most/uiuc"}}, time.Hour); !errors.Is(err, ErrNotGranted) {
		t.Fatalf("err = %v", err)
	}
	// Unknown identity.
	if _, err := srv.Issue(bob, nil, time.Hour); !errors.Is(err, ErrNotGranted) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupMembership(t *testing.T) {
	srv, ver := newCAS(t)
	srv.DefineGroup("most-team", Right{"write", "nmds:data:most/*"})
	srv.AddMember("most-team", bob)
	a, err := srv.Issue(bob, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := ver.Check(a, bob, "write", "nmds:data:most/cu", time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestVerifierRejections(t *testing.T) {
	srv, ver := newCAS(t)
	srv.Grant(alice, Right{"write", "*"})
	a, _ := srv.Issue(alice, nil, time.Hour)

	// Wrong presenter.
	if err := ver.Check(a, bob, "write", "x", time.Now()); !errors.Is(err, ErrBadAssertion) {
		t.Fatalf("err = %v", err)
	}
	// Expired.
	if err := ver.Check(a, alice, "write", "x", time.Now().Add(2*time.Hour)); !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v", err)
	}
	// Tampered rights.
	tampered := *a
	tampered.Rights = append([]Right{{"delete", "*"}}, a.Rights...)
	if err := ver.Check(&tampered, alice, "delete", "x", time.Now()); !errors.Is(err, ErrBadAssertion) {
		t.Fatalf("err = %v", err)
	}
	// Wrong community.
	other := NewVerifier("other-vo", srv.cred.Leaf())
	if err := other.Check(a, alice, "write", "x", time.Now()); !errors.Is(err, ErrBadAssertion) {
		t.Fatalf("err = %v", err)
	}
	// Forged signature (signed by a different key).
	rogueCA, _ := gsi.NewAuthority("/O=Rogue/CN=CA", time.Hour)
	rogueCred, _ := rogueCA.Issue("/O=Rogue/CN=cas", time.Hour)
	rogue, _ := NewServer("nees", rogueCred)
	rogue.Grant(alice, Right{"write", "*"})
	forged, _ := rogue.Issue(alice, nil, time.Hour)
	if err := ver.Check(forged, alice, "write", "x", time.Now()); !errors.Is(err, ErrBadAssertion) {
		t.Fatalf("err = %v", err)
	}
	// Nil assertion.
	if err := ver.Verify(nil, time.Now()); !errors.Is(err, ErrBadAssertion) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegistryPresentAndAllowed(t *testing.T) {
	srv, ver := newCAS(t)
	srv.Grant(alice, Right{"update", "exp:most*"})
	reg := NewRegistry(ver)

	a, _ := srv.Issue(alice, nil, time.Hour)
	if err := reg.Present(a); err != nil {
		t.Fatal(err)
	}
	if !reg.Allowed(alice, "update", "exp:most") {
		t.Fatal("presented assertion not honoured")
	}
	if reg.Allowed(alice, "delete", "exp:most") {
		t.Fatal("unasserted action allowed")
	}
	if reg.Allowed(bob, "update", "exp:most") {
		t.Fatal("identity without assertion allowed")
	}
	// Expiry is enforced at check time.
	now := time.Now()
	reg.SetClock(func() time.Time { return now.Add(2 * time.Hour) })
	if reg.Allowed(alice, "update", "exp:most") {
		t.Fatal("expired assertion still honoured")
	}
}

func TestRegistryRejectsBadPresentation(t *testing.T) {
	srv, ver := newCAS(t)
	srv.Grant(alice, Right{"update", "*"})
	a, _ := srv.Issue(alice, nil, time.Hour)
	a.Subject = bob // tamper
	reg := NewRegistry(ver)
	if err := reg.Present(a); err == nil {
		t.Fatal("tampered assertion accepted")
	}
}

// End-to-end: CAS-based access control on the metadata repository — the
// exact §3.3 "later releases" feature.
func TestCASAuthorizesNMDSUpdate(t *testing.T) {
	srv, ver := newCAS(t)
	store := nmds.NewStore()
	reg := NewRegistry(ver)
	store.SetAuthorizer(reg.Allowed)

	// Alice owns the experiment object; bob is not a writer.
	if _, err := store.Create(alice, "exp:most", "", map[string]any{"name": "MOST"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Update(bob, "exp:most", map[string]any{"name": "X"}); err == nil {
		t.Fatal("bob updated without authorization")
	}

	// The community grants the MOST team update rights; bob is a member
	// and presents his assertion to the repository.
	srv.DefineGroup("most-team", Right{"update", "exp:most*"})
	srv.AddMember("most-team", bob)
	assertion, err := srv.Issue(bob, nil, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Present(assertion); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Update(bob, "exp:most", map[string]any{"name": "MOST v2"}); err != nil {
		t.Fatalf("CAS-authorized update rejected: %v", err)
	}
	// Community policy does not extend to other objects.
	if _, err := store.Create(alice, "other", "", map[string]any{}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Update(bob, "other", map[string]any{}); err == nil {
		t.Fatal("assertion leaked to an uncovered object")
	}
}
