package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// testScenario is a fast MOST-shaped scenario exercising every fault kind:
// a transient drop (ridden out by retries), an NSDS drop storm, a delay
// ramp, a coordinator kill, a site-daemon kill, and a partition that
// outlasts one incarnation's retry budget.
func testScenario() *Scenario {
	return &Scenario{
		Name:            "test-all-faults",
		Topology:        "most-sim",
		Steps:           90,
		Seed:            7,
		RetryAttempts:   5,
		RetryBackoffMS:  1,
		CheckpointEvery: 1,
		Faults: []Fault{
			{Kind: KindDrop, Step: 10, Site: "uiuc", Count: 2},
			{Kind: KindNSDSDrop, Step: 20, Site: "ncsa", Count: 5},
			{Kind: KindDelay, Step: 30, EndStep: 40, DelayMS: 2},
			{Kind: KindKillCoordinator, Step: 50},
			{Kind: KindKillSite, Step: 60, Site: "ncsa"},
			{Kind: KindOutage, Step: 75, Site: "cu", Count: 7},
		},
	}
}

func TestScenarioSurvivesEveryFaultKind(t *testing.T) {
	sc := testScenario()
	v, err := Run(context.Background(), sc, Options{Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Completed || v.FinalStep != 90 {
		t.Fatalf("verdict = %+v", v)
	}
	// Three deaths: the scheduled coordinator kill at 50, the site kill at
	// 60, and one retry-budget exhaustion inside the 7-call partition at 75
	// (5 failed attempts kill incarnation 3; the next incarnation burns the
	// remaining 2 window calls and gets through on its third attempt).
	want := []int{50, 60, 75}
	if len(v.DeathSteps) != len(want) {
		t.Fatalf("death steps %v, want %v", v.DeathSteps, want)
	}
	for i, s := range want {
		if v.DeathSteps[i] != s {
			t.Fatalf("death steps %v, want %v", v.DeathSteps, want)
		}
	}
	if v.Incarnations != 4 {
		t.Fatalf("incarnations = %d, want 4", v.Incarnations)
	}
	if v.SiteRestarts["ncsa"] != 1 {
		t.Fatalf("site restarts = %v", v.SiteRestarts)
	}
	if v.ForcedStreamDrops != 5 {
		t.Fatalf("forced stream drops = %d, want 5", v.ForcedStreamDrops)
	}
	for _, f := range v.Faults {
		if !f.Fired {
			t.Fatalf("fault %+v never fired", f)
		}
	}
}

func TestScenarioVerdictByteReplays(t *testing.T) {
	// The acceptance property: same scenario ⇒ byte-identical verdict —
	// and fault recovery must not perturb the structural response, so the
	// trajectory digest must equal that of a fault-free run.
	sc := testScenario()
	v1, err := Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Run(context.Background(), testScenario(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Marshal(), v2.Marshal()) {
		t.Fatalf("verdicts differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", v1.Marshal(), v2.Marshal())
	}

	clean := &Scenario{
		Name: "clean", Topology: "most-sim", Steps: 90, Seed: 7,
		RetryAttempts: 5, RetryBackoffMS: 1,
	}
	v3, err := Run(context.Background(), clean, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Incarnations != 1 || len(v3.DeathSteps) != 0 {
		t.Fatalf("clean run verdict = %+v", v3)
	}
	if v1.TrajectoryDigest != v3.TrajectoryDigest {
		t.Fatalf("fault recovery perturbed the trajectory:\nfaulty %s\nclean  %s",
			v1.TrajectoryDigest, v3.TrajectoryDigest)
	}
}

// relayScenario targets drop storms at both stream tiers of a relayed
// topology. Counts must land exactly — the relay forwards asynchronously,
// so this pins the engine's drain-before-verdict step.
func relayScenario() *Scenario {
	return &Scenario{
		Name: "relay-tiers", Topology: "most-sim", Steps: 60, Seed: 11,
		RetryAttempts: 5, RetryBackoffMS: 1, Relay: true,
		Faults: []Fault{
			{Kind: KindNSDSDrop, Step: 15, Site: "ncsa", Count: 4, Tier: "relay"},
			{Kind: KindNSDSDrop, Step: 30, Site: "uiuc", Count: 3, Tier: "hub"},
			{Kind: KindNSDSDrop, Step: 40, Site: "cu", Count: 2},
		},
	}
}

func TestScenarioRelayTierDropsDeterministic(t *testing.T) {
	v1, err := Run(context.Background(), relayScenario(), Options{Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Completed || v1.FinalStep != 60 {
		t.Fatalf("verdict = %+v", v1)
	}
	if v1.ForcedStreamDrops != 9 {
		t.Fatalf("forced stream drops = %d, want 9 (4 relay + 3 hub + 2 default)", v1.ForcedStreamDrops)
	}
	for _, f := range v1.Faults {
		if !f.Fired {
			t.Fatalf("fault %+v never fired", f)
		}
	}
	v2, err := Run(context.Background(), relayScenario(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Marshal(), v2.Marshal()) {
		t.Fatalf("relay verdicts differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", v1.Marshal(), v2.Marshal())
	}
}

func TestScenarioRestartBudgetExhaustion(t *testing.T) {
	// A partition far wider than the restart budget: the engine gives up
	// with Completed=false and no error.
	sc := &Scenario{
		Name: "hopeless", Topology: "most-sim", Steps: 40, Seed: 1,
		RetryAttempts: 2, RetryBackoffMS: 1, MaxRestarts: 2,
		Faults: []Fault{{Kind: KindOutage, Step: 20, Site: "cu", Count: 1000}},
	}
	v, err := Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Completed {
		t.Fatal("hopeless scenario reported completion")
	}
	if len(v.DeathSteps) != 3 { // initial death + 2 restarts
		t.Fatalf("death steps %v, want 3 deaths at step 20", v.DeathSteps)
	}
	for _, s := range v.DeathSteps {
		if s != 20 {
			t.Fatalf("death steps %v, want all at 20", v.DeathSteps)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{Name: "v", Topology: "most-sim", Steps: 50, Faults: []Fault{}}
	}
	cases := []struct {
		name string
		mut  func(sc *Scenario)
	}{
		{"no name", func(sc *Scenario) { sc.Name = "" }},
		{"unknown topology", func(sc *Scenario) { sc.Topology = "nope" }},
		{"unknown kind", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: "melt", Step: 1}}
		}},
		{"step out of range", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindDrop, Step: 51, Site: "cu", Count: 1}}
		}},
		{"unknown site", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindDrop, Step: 1, Site: "mars", Count: 1}}
		}},
		{"drop without count", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindDrop, Step: 1, Site: "cu"}}
		}},
		{"kill-site without site", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindKillSite, Step: 1}}
		}},
		{"kill-site with coarse checkpoints", func(sc *Scenario) {
			sc.CheckpointEvery = 10
			sc.Faults = []Fault{{Kind: KindKillSite, Step: 5, Site: "cu"}}
		}},
		{"delay ramp ending before it starts", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindDelay, Step: 10, EndStep: 5, DelayMS: 2}}
		}},
		{"tier on a non-stream fault", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindDrop, Step: 1, Site: "cu", Count: 1, Tier: "hub"}}
		}},
		{"relay tier without the relay flag", func(sc *Scenario) {
			sc.Faults = []Fault{{Kind: KindNSDSDrop, Step: 1, Site: "cu", Count: 1, Tier: "relay"}}
		}},
		{"unknown tier", func(sc *Scenario) {
			sc.Relay = true
			sc.Faults = []Fault{{Kind: KindNSDSDrop, Step: 1, Site: "cu", Count: 1, Tier: "gateway"}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base()
			tc.mut(sc)
			if err := sc.Validate(); err == nil {
				t.Fatal("invalid scenario accepted")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestLoadScenarioFile(t *testing.T) {
	sc := testScenario()
	data, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || len(got.Faults) != len(sc.Faults) {
		t.Fatalf("loaded scenario = %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing scenario file accepted")
	}
}
