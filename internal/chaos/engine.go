package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"neesgrid/internal/coord"
	"neesgrid/internal/most"
	"neesgrid/internal/structural"
	"neesgrid/internal/trace"
)

// FaultOutcome records whether a scheduled fault actually fired.
type FaultOutcome struct {
	Kind  string `json:"kind"`
	Step  int    `json:"step"`
	Site  string `json:"site,omitempty"`
	Tier  string `json:"tier,omitempty"`
	Fired bool   `json:"fired"`
}

// Verdict is the deterministic report of a scenario run: every field is a
// pure function of the scenario file, so two runs of the same scenario
// must produce byte-identical verdicts (the CI chaos lane checks exactly
// that). Wall-clock observations — per-fault recovery latency, step
// latency — are deliberately absent; they live in telemetry and trace.
type Verdict struct {
	Scenario        string         `json:"scenario"`
	Topology        string         `json:"topology"`
	Seed            int64          `json:"seed"`
	Steps           int            `json:"steps"`
	CheckpointEvery int            `json:"checkpoint_every"`
	Completed       bool           `json:"completed"`
	FinalStep       int            `json:"final_step"`
	Incarnations    int            `json:"incarnations"`
	DeathSteps      []int          `json:"death_steps"`
	SiteRestarts    map[string]int `json:"site_restarts,omitempty"`
	// ForcedStreamDrops counts NSDS samples swallowed by drop storms —
	// scheduled drops only, never timing-dependent backpressure drops.
	ForcedStreamDrops uint64 `json:"forced_stream_drops"`
	// TrajectoryDigest hashes every committed state (bit-exact float64
	// images) across all incarnations in commit order. Two runs that differ
	// anywhere in the structural response differ here.
	TrajectoryDigest string         `json:"trajectory_digest"`
	Faults           []FaultOutcome `json:"faults"`
}

// Marshal renders the verdict in its canonical byte form.
func (v *Verdict) Marshal() []byte {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Verdict is a plain value type; this cannot fail.
		panic(err)
	}
	return append(data, '\n')
}

// Options tunes a scenario run.
type Options struct {
	// CheckpointPath overrides where the coordinator journals snapshots
	// (default: a temp directory removed after the run).
	CheckpointPath string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// engine carries the per-run fault state shared between the supervision
// loop and the coordinator callbacks. All callbacks run on the coordinator
// goroutine and the loop only touches state between incarnations, so no
// locking is needed.
type engine struct {
	sc        *Scenario
	exp       *most.Experiment
	fired     []bool
	restarted []bool
	hash      hash.Hash
	log       func(format string, args ...any)

	awaitRecovery bool
	deathAt       time.Time
	deathStep     int
}

// Run executes a scenario end to end: build the topology, run coordinator
// incarnations across the scheduled faults, resume each crash from the
// checkpoint, and return the deterministic verdict. An error means the
// harness itself failed; a scenario whose faults outlast the restart
// budget returns Completed=false with a nil error.
func Run(ctx context.Context, sc *Scenario, opts Options) (*Verdict, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	spec, err := sc.Spec()
	if err != nil {
		return nil, err
	}
	ckptPath := opts.CheckpointPath
	if ckptPath == "" {
		dir, err := os.MkdirTemp("", "chaos-"+sc.Name+"-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		ckptPath = filepath.Join(dir, "coord.ckpt")
	}
	eng := &engine{
		sc:        sc,
		fired:     make([]bool, len(sc.Faults)),
		restarted: make([]bool, len(sc.Faults)),
		hash:      sha256.New(),
		log:       opts.Log,
	}
	if eng.log == nil {
		eng.log = func(string, ...any) {}
	}
	spec.Checkpoint = &coord.CheckpointConfig{Path: ckptPath, Every: sc.checkpointEvery()}
	spec.Interrupt = eng.interrupt
	spec.OnStep = eng.onStep
	// Stream every step through the DAQ so NSDS drop storms have samples to
	// eat and the viewers see the run the way the paper's audience did.
	spec.DAQEvery = 1

	exp, err := most.Build(spec)
	if err != nil {
		return nil, err
	}
	defer func() { _ = exp.Stop() }()
	eng.exp = exp

	steps := spec.Steps
	if steps <= 0 {
		steps = spec.Frame.Steps
	}
	verdict := &Verdict{
		Scenario:        sc.Name,
		Topology:        spec.Name,
		Seed:            sc.Seed,
		Steps:           steps,
		CheckpointEvery: sc.checkpointEvery(),
		DeathSteps:      []int{},
		SiteRestarts:    map[string]int{},
	}

	for inc := 1; ; inc++ {
		resumeFrom := -1
		if exp.Spec.Resume != nil {
			resumeFrom = exp.Spec.Resume.Step
		}
		ictx, sp := exp.Tracer.Start(ctx, "chaos.incarnation", trace.KindInternal)
		sp.SetAttr("scenario", sc.Name)
		sp.SetAttr("incarnation", strconv.Itoa(inc))
		if resumeFrom >= 0 {
			sp.SetAttr("resume_from", strconv.Itoa(resumeFrom))
		}
		res, err := exp.Run(ictx)
		if err != nil {
			sp.SetError(err)
			sp.End()
			return nil, fmt.Errorf("chaos: incarnation %d: %w", inc, err)
		}
		sp.SetError(res.Err)
		sp.End()

		if res.Err == nil {
			verdict.Completed = true
			verdict.FinalStep = res.Report.StepsCompleted
			verdict.Incarnations = inc
			eng.log("incarnation %d completed the run at step %d", inc, verdict.FinalStep)
			break
		}
		failedStep := res.Report.FailedStep
		verdict.DeathSteps = append(verdict.DeathSteps, failedStep)
		eng.log("incarnation %d died at step %d: %v", inc, failedStep, res.Err)
		exp.Telemetry.Counter("chaos.coordinator.deaths").Inc()
		exp.Telemetry.Event("chaos", "coordinator.death", map[string]any{
			"incarnation": inc, "step": failedStep, "error": res.Err.Error(),
		})
		if len(verdict.DeathSteps) > sc.maxRestarts() {
			verdict.Completed = false
			verdict.FinalStep = res.Report.StepsCompleted
			verdict.Incarnations = inc
			eng.log("restart budget (%d) exhausted; giving up at step %d",
				sc.maxRestarts(), failedStep)
			break
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}

		// Restart any site whose scheduled daemon kill has fired: a fresh
		// NTCP server (empty transaction table) over the still-wound
		// specimen. Must happen before the next incarnation re-proposes.
		for i := range sc.Faults {
			f := &sc.Faults[i]
			if f.Kind != KindKillSite || !eng.fired[i] || eng.restarted[i] {
				continue
			}
			site, ok := exp.Site(f.Site)
			if !ok {
				return nil, fmt.Errorf("chaos: kill-site fault targets unknown site %q", f.Site)
			}
			if err := site.RestartServer(); err != nil {
				return nil, err
			}
			eng.restarted[i] = true
			verdict.SiteRestarts[f.Site]++
			exp.Telemetry.Event("chaos", "site.restarted", map[string]any{
				"site": f.Site, "step": f.Step,
			})
			eng.log("restarted site daemon %s after scheduled kill at step %d", f.Site, f.Step)
		}

		cp, err := coord.LoadCheckpoint(ckptPath)
		if err != nil {
			return nil, fmt.Errorf("chaos: incarnation %d left no usable checkpoint: %w", inc, err)
		}
		exp.Spec.Resume = cp
		eng.awaitRecovery = true
		eng.deathAt = time.Now()
		eng.deathStep = failedStep
		eng.log("resuming incarnation %d from checkpoint at step %d", inc+1, cp.Step)
	}

	// Quiesce each site's relay tier (if any) before reading drop
	// counters: the relay forwards asynchronously, so without a drain a
	// scheduled relay-tier drop storm could still be mid-flight and the
	// verdict would depend on timing.
	drainCtx, cancelDrain := context.WithTimeout(ctx, 30*time.Second)
	defer cancelDrain()
	for _, s := range exp.Sites {
		if err := s.DrainStream(drainCtx); err != nil {
			return nil, fmt.Errorf("chaos: draining %s stream: %w", s.Spec.Name, err)
		}
		verdict.ForcedStreamDrops += s.Hub.ForcedDrops()
		if s.RelayHub != nil {
			verdict.ForcedStreamDrops += s.RelayHub.ForcedDrops()
		}
	}
	verdict.TrajectoryDigest = hex.EncodeToString(eng.hash.Sum(nil))
	verdict.Faults = make([]FaultOutcome, len(sc.Faults))
	for i, f := range sc.Faults {
		verdict.Faults[i] = FaultOutcome{
			Kind: f.Kind, Step: f.Step, Site: f.Site, Tier: f.Tier, Fired: eng.fired[i],
		}
	}
	return verdict, nil
}

// interrupt is the coordinator's pre-step hook: a scheduled coordinator
// kill fires here, before any network traffic for the step, so injector
// call counts stay a pure function of committed steps.
func (e *engine) interrupt(step int) error {
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if f.Kind == KindKillCoordinator && f.Step == step && !e.fired[i] {
			e.fired[i] = true
			return fmt.Errorf("chaos: scheduled coordinator kill at step %d", step)
		}
	}
	return nil
}

// onStep observes every committed state: it extends the trajectory digest,
// reports recovery latency after a resume, and arms the faults scheduled
// for the next step — at commit time, so a fault for step N is in place
// before N's first network call.
func (e *engine) onStep(st structural.State) {
	e.digest(st)
	if e.awaitRecovery {
		e.awaitRecovery = false
		d := time.Since(e.deathAt)
		e.exp.Telemetry.Histogram("chaos.recovery.seconds").ObserveDuration(d)
		e.exp.Telemetry.Event("chaos", "fault.recovered", map[string]any{
			"death_step": e.deathStep, "resumed_step": st.Step,
			"seconds": d.Seconds(),
		})
		e.log("recovered: step %d committed %.3fs after the death at step %d",
			st.Step, d.Seconds(), e.deathStep)
	}
	e.arm(st.Step + 1)
}

// arm fires the faults scheduled for step `next`. Consumable faults (drop,
// outage, kills, drop storms) fire exactly once even when a resume
// re-commits their arming step; delay ramps are recomputed every step —
// setting an absolute delay is idempotent.
func (e *engine) arm(next int) {
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		switch f.Kind {
		case KindDelay:
			e.applyDelay(f, next)
			continue
		case KindKillCoordinator:
			continue // fired by interrupt
		}
		if f.Step != next || e.fired[i] {
			continue
		}
		e.fired[i] = true
		e.exp.Telemetry.Event("chaos", "fault.armed", map[string]any{
			"kind": f.Kind, "step": f.Step, "site": f.Site, "count": f.Count,
		})
		for _, s := range e.targets(f) {
			switch f.Kind {
			case KindDrop:
				s.Injector.FailNext(f.Count)
			case KindOutage:
				s.Injector.ScheduleOutage(0, f.Count)
			case KindKillSite:
				s.FailNextExecute(fmt.Errorf("chaos: scheduled site-daemon kill at step %d", f.Step))
			case KindNSDSDrop:
				// Tier-targeted drop storms: "relay" eats samples at the
				// viewer-facing relay hub, anything else at the DAQ hub.
				// StreamHub falls back to the DAQ hub when the topology
				// runs without a relay tier.
				if f.Tier == "relay" {
					s.StreamHub().DropNext(f.Count)
				} else {
					s.Hub.DropNext(f.Count)
				}
			}
		}
	}
}

// applyDelay sets the extra WAN delay a ramp prescribes for step `next`:
// linear from 0 at f.Step up to f.DelayMS at f.EndStep, cleared after the
// ramp; constant from f.Step on when no EndStep is given.
func (e *engine) applyDelay(f *Fault, next int) {
	if next < f.Step {
		return
	}
	var d time.Duration
	switch {
	case f.EndStep == 0:
		d = time.Duration(f.DelayMS) * time.Millisecond
	case next > f.EndStep:
		d = 0
	default:
		span := f.EndStep - f.Step + 1
		d = time.Duration(f.DelayMS) * time.Millisecond *
			time.Duration(next-f.Step+1) / time.Duration(span)
	}
	idx := e.faultIndex(f)
	if d > 0 && !e.fired[idx] {
		e.fired[idx] = true
	}
	for _, s := range e.targets(f) {
		s.Injector.SetExtraDelay(d)
	}
}

func (e *engine) faultIndex(f *Fault) int {
	for i := range e.sc.Faults {
		if &e.sc.Faults[i] == f {
			return i
		}
	}
	return 0
}

// targets resolves a fault's site selector ("" = every site).
func (e *engine) targets(f *Fault) []*most.Site {
	if f.Site == "" {
		return e.exp.Sites
	}
	if s, ok := e.exp.Site(f.Site); ok {
		return []*most.Site{s}
	}
	return nil
}

// digest folds one committed state into the trajectory hash, bit-exact.
func (e *engine) digest(st structural.State) {
	var buf [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		e.hash.Write(buf[:])
	}
	put(uint64(st.Step))
	put(math.Float64bits(st.T))
	for _, vec := range [][]float64{st.D, st.V, st.A, st.F} {
		for _, v := range vec {
			put(math.Float64bits(v))
		}
	}
}
