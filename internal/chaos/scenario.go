// Package chaos is the scenario-driven fault engine that lets a MOST run
// outlive the failures that killed the original: the paper's public run
// ended prematurely at step 1493 when a final network error outlasted the
// coordinator's retries (§3.4). A chaos scenario schedules WAN partitions,
// transient drops, site-daemon kills, NSDS drop storms, and delay ramps
// against a live in-process topology; the engine supervises coordinator
// incarnations across those faults, resuming each one from the previous
// incarnation's checkpoint until the run completes.
//
// Everything is deterministic by construction: faults are armed at step
// commits, outages are measured in call counts rather than wall time, the
// coordinator is killed by a pre-step hook that produces no network
// traffic, and the verdict carries no wall-clock values — so the same
// scenario file byte-replays to the same verdict on every machine. Wall
// -clock observations (per-fault recovery latency) go to telemetry and
// trace instead.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"neesgrid/internal/core"
	"neesgrid/internal/most"
)

// Fault kinds a scenario can schedule.
const (
	// KindDrop queues Count transport failures at the site's injector — a
	// transient network failure the NTCP retry policy should ride out.
	KindDrop = "drop"
	// KindOutage schedules a partition window of Count failed calls at the
	// site — counted, not timed, so the heal point replays exactly. A
	// window longer than the retry budget kills the coordinator; the engine
	// resumes it from checkpoint until the window is burned through.
	KindOutage = "outage"
	// KindKillCoordinator aborts the coordinator before the step runs, with
	// no network traffic — a coordinator process crash. The engine starts a
	// fresh incarnation from the last checkpoint.
	KindKillCoordinator = "kill-coordinator"
	// KindKillSite fails the site's next plugin execution and, after the
	// coordinator dies of it, restarts the site's NTCP daemon with an empty
	// transaction table over the same (still-wound) specimen.
	KindKillSite = "kill-site"
	// KindNSDSDrop makes the site's streaming hub swallow the next Count
	// published samples — an NSDS drop storm.
	KindNSDSDrop = "nsds-drop"
	// KindDelay ramps extra per-call WAN delay from 0 at Step to DelayMS at
	// EndStep (cleared afterwards); without EndStep the delay is constant
	// from Step on. Models clock-skew-style slowdowns.
	KindDelay = "delay"
)

// Fault is one scheduled fault. Faults fire when the step before Step
// commits (so they are armed before Step's first network call); two faults
// may share a step.
type Fault struct {
	Kind string `json:"kind"`
	Step int    `json:"step"`
	// Site names the target site; empty targets every site (not valid for
	// kill-site).
	Site string `json:"site,omitempty"`
	// Count parameterizes drop (failures), outage (failed calls), and
	// nsds-drop (samples).
	Count int `json:"count,omitempty"`
	// DelayMS and EndStep parameterize delay ramps.
	DelayMS int `json:"delay_ms,omitempty"`
	EndStep int `json:"end_step,omitempty"`
	// Tier targets an nsds-drop at one stream tier: "hub" (the DAQ hub,
	// the default) or "relay" (the viewer-facing relay hub; requires the
	// scenario's relay flag).
	Tier string `json:"tier,omitempty"`
}

// WANSpec optionally overrides every site's WAN profile. Seeded jitter and
// random drops stay deterministic because each site's injector consumes
// its own seeded stream in a deterministic call order.
type WANSpec struct {
	LatencyMS int     `json:"latency_ms,omitempty"`
	JitterMS  int     `json:"jitter_ms,omitempty"`
	DropRate  float64 `json:"drop_rate,omitempty"`
}

// Scenario is the JSON chaos-scenario DSL (deploy/scenarios/*.json).
type Scenario struct {
	Name string `json:"name"`
	// Topology selects the experiment: most-sim (default), most-hybrid,
	// minimost, soil-structure.
	Topology string `json:"topology,omitempty"`
	// Steps overrides the topology's step count when > 0.
	Steps int `json:"steps,omitempty"`
	// Seed offsets every site's WAN profile seed, so re-running the same
	// file replays the same jitter/drop streams.
	Seed int64 `json:"seed"`
	// RetryAttempts overrides the coordinator retry budget (0 keeps the
	// topology default); RetryBackoffMS tightens the first backoff so
	// partition scenarios run fast under test.
	RetryAttempts  int `json:"retry_attempts,omitempty"`
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// CheckpointEvery is the checkpoint cadence in steps (default 1).
	// Scenarios with kill-site faults require 1: a restarted site has an
	// empty dedupe table, so any step older than the last checkpoint would
	// re-execute on its specimen.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// MaxRestarts bounds coordinator incarnations (default 8). A scenario
	// whose faults outlast the budget gets Completed=false, not an error.
	MaxRestarts int `json:"max_restarts,omitempty"`
	// Pipeline runs the coordinator with the pipelined stepping protocol
	// (speculative execute+propose batches) — the lane that proves
	// speculation survives the scenario's faults.
	Pipeline bool `json:"pipeline,omitempty"`
	// Relay runs every site with a local NSDS relay tier between its DAQ
	// hub and its viewers, so nsds-drop faults can target either tier.
	Relay bool `json:"relay,omitempty"`
	// WAN optionally overrides every site's network profile.
	WAN *WANSpec `json:"wan,omitempty"`
	// Faults is the schedule.
	Faults []Fault `json:"faults"`
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: read scenario: %w", err)
	}
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("chaos: decode scenario %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: scenario %s: %w", path, err)
	}
	return &sc, nil
}

func (sc *Scenario) maxRestarts() int {
	if sc.MaxRestarts <= 0 {
		return 8
	}
	return sc.MaxRestarts
}

func (sc *Scenario) checkpointEvery() int {
	if sc.CheckpointEvery <= 0 {
		return 1
	}
	return sc.CheckpointEvery
}

// Spec builds the experiment spec the scenario runs against: the selected
// topology with the scenario's step count, retry policy, and WAN profile,
// and with the topology's own fault schedule cleared — the scenario is the
// single source of faults.
func (sc *Scenario) Spec() (most.Spec, error) {
	var spec most.Spec
	switch sc.Topology {
	case "", "most-sim":
		spec = most.MOSTSpec(most.VariantSimulation, core.DefaultRetry)
	case "most-hybrid":
		spec = most.MOSTSpec(most.VariantHybrid, core.DefaultRetry)
	case "minimost":
		spec = most.MiniMOSTSpec(false)
	case "soil-structure":
		spec = most.SoilStructureSpec()
	default:
		return spec, fmt.Errorf("chaos: unknown topology %q", sc.Topology)
	}
	spec.Faults = nil
	spec.Pipeline = sc.Pipeline
	if sc.Steps > 0 {
		spec.Steps = sc.Steps
	}
	if sc.RetryAttempts > 0 {
		spec.Retry.Attempts = sc.RetryAttempts
	}
	if sc.RetryBackoffMS > 0 {
		spec.Retry.Backoff = time.Duration(sc.RetryBackoffMS) * time.Millisecond
		spec.Retry.MaxBackoff = 10 * spec.Retry.Backoff
	}
	for i := range spec.Sites {
		if sc.WAN != nil {
			spec.Sites[i].WAN.Latency = time.Duration(sc.WAN.LatencyMS) * time.Millisecond
			spec.Sites[i].WAN.Jitter = time.Duration(sc.WAN.JitterMS) * time.Millisecond
			spec.Sites[i].WAN.DropRate = sc.WAN.DropRate
		}
		spec.Sites[i].WAN.Seed = sc.Seed + int64(i)
		spec.Sites[i].Relay = sc.Relay
	}
	return spec, nil
}

// Validate checks the schedule against the scenario's topology.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario needs a name")
	}
	spec, err := sc.Spec()
	if err != nil {
		return err
	}
	steps := spec.Steps
	if steps <= 0 {
		steps = spec.Frame.Steps
	}
	siteNames := make(map[string]bool, len(spec.Sites))
	for _, s := range spec.Sites {
		siteNames[s.Name] = true
	}
	for i, f := range sc.Faults {
		at := fmt.Sprintf("fault %d (%s at step %d)", i, f.Kind, f.Step)
		if f.Step < 1 || f.Step > steps {
			return fmt.Errorf("%s: step outside 1..%d", at, steps)
		}
		if f.Site != "" && !siteNames[f.Site] {
			return fmt.Errorf("%s: unknown site %q", at, f.Site)
		}
		if f.Tier != "" && f.Kind != KindNSDSDrop {
			return fmt.Errorf("%s: tier only applies to nsds-drop", at)
		}
		switch f.Kind {
		case KindDrop, KindOutage, KindNSDSDrop:
			if f.Count <= 0 {
				return fmt.Errorf("%s: needs a positive count", at)
			}
			if f.Kind == KindNSDSDrop {
				switch f.Tier {
				case "", "hub":
				case "relay":
					if !sc.Relay {
						return fmt.Errorf("%s: tier \"relay\" needs the scenario relay flag", at)
					}
				default:
					return fmt.Errorf("%s: unknown tier %q (want hub or relay)", at, f.Tier)
				}
			}
		case KindKillCoordinator:
		case KindKillSite:
			if f.Site == "" {
				return fmt.Errorf("%s: needs a site", at)
			}
			if sc.checkpointEvery() != 1 {
				return fmt.Errorf("%s: kill-site requires checkpoint_every 1 "+
					"(a restarted site cannot replay steps older than the last checkpoint)", at)
			}
		case KindDelay:
			if f.DelayMS <= 0 {
				return fmt.Errorf("%s: needs a positive delay_ms", at)
			}
			if f.EndStep != 0 && f.EndStep < f.Step {
				return fmt.Errorf("%s: end_step before step", at)
			}
		default:
			return fmt.Errorf("%s: unknown kind %q", at, f.Kind)
		}
	}
	return nil
}
