// Package collab emulates the CHEF-based collaboration environment MOST
// participants used (paper §3, Fig. 8): session login, an interactive chat
// (which "was crucial to user interaction"), a message board, an electronic
// notebook, presence, and the Data Viewer — near-real-time plots with VCR
// controls (play, pause, rewind, fast-forward) over the streamed structure
// response. Over 130 remote participants used this layer during the public
// MOST run; experiment E6 reproduces that load.
package collab

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"neesgrid/internal/nsds"
)

// Session is one logged-in participant.
type Session struct {
	Token    string
	User     string
	LoggedAt time.Time
}

// Message is one chat or board posting.
type Message struct {
	Seq  uint64    `json:"seq"`
	Room string    `json:"room"`
	User string    `json:"user"`
	Text string    `json:"text"`
	At   time.Time `json:"at"`
}

// Workspace is the collaboration state for one experiment (a CHEF "site").
type Workspace struct {
	Name string

	mu       sync.Mutex
	sessions map[string]*Session
	chatSeq  uint64
	chat     map[string][]Message // room → messages
	board    []Message
	notebook []Message
	clock    func() time.Time
}

// NewWorkspace creates an empty workspace.
func NewWorkspace(name string) *Workspace {
	return &Workspace{
		Name:     name,
		sessions: make(map[string]*Session),
		chat:     make(map[string][]Message),
		clock:    time.Now,
	}
}

// SetClock overrides the time source (tests).
func (w *Workspace) SetClock(clock func() time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.clock = clock
}

// Login creates a session for a user and returns its token.
func (w *Workspace) Login(user string) (*Session, error) {
	if user == "" {
		return nil, fmt.Errorf("collab: user required")
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return nil, fmt.Errorf("collab: token: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := &Session{Token: hex.EncodeToString(raw[:]), User: user, LoggedAt: w.clock()}
	w.sessions[s.Token] = s
	return s, nil
}

// Logout removes a session.
func (w *Workspace) Logout(token string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.sessions, token)
}

// auth resolves a token to a user.
func (w *Workspace) auth(token string) (*Session, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.sessions[token]
	if !ok {
		return nil, fmt.Errorf("collab: invalid session")
	}
	return s, nil
}

// Presence lists logged-in users, sorted.
func (w *Workspace) Presence() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, s := range w.sessions {
		if !seen[s.User] {
			seen[s.User] = true
			out = append(out, s.User)
		}
	}
	sort.Strings(out)
	return out
}

// Chat posts a message to a room.
func (w *Workspace) Chat(token, room, text string) (*Message, error) {
	s, err := w.auth(token)
	if err != nil {
		return nil, err
	}
	if room == "" || text == "" {
		return nil, fmt.Errorf("collab: room and text required")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.chatSeq++
	m := Message{Seq: w.chatSeq, Room: room, User: s.User, Text: text, At: w.clock()}
	w.chat[room] = append(w.chat[room], m)
	return &m, nil
}

// ChatSince returns room messages with Seq > since.
func (w *Workspace) ChatSince(token, room string, since uint64) ([]Message, error) {
	if _, err := w.auth(token); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	msgs := w.chat[room]
	i := sort.Search(len(msgs), func(i int) bool { return msgs[i].Seq > since })
	out := make([]Message, len(msgs)-i)
	copy(out, msgs[i:])
	return out, nil
}

// PostBoard adds a message-board posting.
func (w *Workspace) PostBoard(token, topic, text string) (*Message, error) {
	s, err := w.auth(token)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.chatSeq++
	m := Message{Seq: w.chatSeq, Room: topic, User: s.User, Text: text, At: w.clock()}
	w.board = append(w.board, m)
	return &m, nil
}

// Board returns all board postings.
func (w *Workspace) Board(token string) ([]Message, error) {
	if _, err := w.auth(token); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Message(nil), w.board...), nil
}

// NotebookWrite appends an electronic-notebook entry.
func (w *Workspace) NotebookWrite(token, text string) (*Message, error) {
	s, err := w.auth(token)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.chatSeq++
	m := Message{Seq: w.chatSeq, User: s.User, Text: text, At: w.clock()}
	w.notebook = append(w.notebook, m)
	return &m, nil
}

// Notebook returns the notebook entries.
func (w *Workspace) Notebook(token string) ([]Message, error) {
	if _, err := w.auth(token); err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Message(nil), w.notebook...), nil
}

// ---------------------------------------------------------------------------
// Data Viewer with VCR controls
// ---------------------------------------------------------------------------

// Viewer records streamed samples per channel and serves time windows; VCR
// cursors replay the record.
type Viewer struct {
	mu      sync.Mutex
	series  map[string][]nsds.Sample
	maxKeep int
}

// NewViewer returns a viewer keeping up to maxKeep samples per channel
// (0 = unlimited).
func NewViewer(maxKeep int) *Viewer {
	return &Viewer{series: make(map[string][]nsds.Sample), maxKeep: maxKeep}
}

// Feed records one sample.
func (v *Viewer) Feed(s nsds.Sample) {
	v.mu.Lock()
	defer v.mu.Unlock()
	ss := append(v.series[s.Channel], s)
	if v.maxKeep > 0 && len(ss) > v.maxKeep {
		ss = ss[len(ss)-v.maxKeep:]
	}
	v.series[s.Channel] = ss
}

// FeedFrom consumes a subscription until it closes (run in a goroutine).
func (v *Viewer) FeedFrom(sub <-chan nsds.Sample) {
	for s := range sub {
		v.Feed(s)
	}
}

// Channels lists recorded channel names.
func (v *Viewer) Channels() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.series))
	for c := range v.series {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Window returns the samples of a channel with from <= T < to.
func (v *Viewer) Window(channel string, from, to float64) []nsds.Sample {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []nsds.Sample
	for _, s := range v.series[channel] {
		if s.T >= from && s.T < to {
			out = append(out, s)
		}
	}
	return out
}

// XY returns paired samples of two channels at matching times — the
// hysteresis plot (force vs displacement) of Fig. 8.
func (v *Viewer) XY(xChannel, yChannel string) (xs, ys []float64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	yByT := make(map[float64]float64, len(v.series[yChannel]))
	for _, s := range v.series[yChannel] {
		yByT[s.T] = s.Value
	}
	for _, s := range v.series[xChannel] {
		if y, ok := yByT[s.T]; ok {
			xs = append(xs, s.Value)
			ys = append(ys, y)
		}
	}
	return xs, ys
}

// Cursor is one participant's VCR state over a channel.
type Cursor struct {
	viewer  *Viewer
	channel string

	mu      sync.Mutex
	pos     int
	playing bool
}

// NewCursor opens a VCR cursor on a channel.
func (v *Viewer) NewCursor(channel string) *Cursor {
	return &Cursor{viewer: v, channel: channel}
}

// Play starts playback.
func (c *Cursor) Play() { c.mu.Lock(); c.playing = true; c.mu.Unlock() }

// Pause stops playback.
func (c *Cursor) Pause() { c.mu.Lock(); c.playing = false; c.mu.Unlock() }

// Rewind returns to the beginning.
func (c *Cursor) Rewind() { c.mu.Lock(); c.pos = 0; c.mu.Unlock() }

// Seek jumps to the first sample with T >= t (the clickable timeline).
func (c *Cursor) Seek(t float64) {
	c.viewer.mu.Lock()
	ss := c.viewer.series[c.channel]
	idx := sort.Search(len(ss), func(i int) bool { return ss[i].T >= t })
	c.viewer.mu.Unlock()
	c.mu.Lock()
	c.pos = idx
	c.mu.Unlock()
}

// FastForward jumps to the live edge.
func (c *Cursor) FastForward() {
	c.viewer.mu.Lock()
	n := len(c.viewer.series[c.channel])
	c.viewer.mu.Unlock()
	c.mu.Lock()
	c.pos = n
	c.mu.Unlock()
}

// Next returns the next sample when playing; ok is false when paused or at
// the live edge.
func (c *Cursor) Next() (nsds.Sample, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.playing {
		return nsds.Sample{}, false
	}
	c.viewer.mu.Lock()
	ss := c.viewer.series[c.channel]
	c.viewer.mu.Unlock()
	if c.pos >= len(ss) {
		return nsds.Sample{}, false
	}
	s := ss[c.pos]
	c.pos++
	return s, true
}
