package collab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"neesgrid/internal/nsds"
)

func TestLoginAndPresence(t *testing.T) {
	ws := NewWorkspace("most")
	s1, err := ws.Login("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ws.Login(""); err == nil {
		t.Fatal("empty user accepted")
	}
	_, _ = ws.Login("bob")
	_, _ = ws.Login("alice") // second session, same user
	p := ws.Presence()
	if len(p) != 2 || p[0] != "alice" || p[1] != "bob" {
		t.Fatalf("presence = %v", p)
	}
	ws.Logout(s1.Token)
	if _, err := ws.Chat(s1.Token, "main", "hi"); err == nil {
		t.Fatal("logged-out session still valid")
	}
}

func TestChatOrderingAndSince(t *testing.T) {
	ws := NewWorkspace("most")
	s, _ := ws.Login("alice")
	for i := 0; i < 5; i++ {
		if _, err := ws.Chat(s.Token, "main", fmt.Sprintf("msg %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	all, err := ws.ChatSince(s.Token, "main", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 || all[0].Text != "msg 0" {
		t.Fatalf("chat = %v", all)
	}
	tail, _ := ws.ChatSince(s.Token, "main", all[2].Seq)
	if len(tail) != 2 || tail[0].Text != "msg 3" {
		t.Fatalf("since = %v", tail)
	}
	// Unknown room is empty, not an error.
	none, err := ws.ChatSince(s.Token, "empty", 0)
	if err != nil || len(none) != 0 {
		t.Fatalf("empty room = %v, %v", none, err)
	}
	if _, err := ws.Chat(s.Token, "", "x"); err == nil {
		t.Fatal("empty room accepted")
	}
}

func TestBoardAndNotebook(t *testing.T) {
	ws := NewWorkspace("most")
	s, _ := ws.Login("alice")
	if _, err := ws.PostBoard(s.Token, "status", "dry run complete"); err != nil {
		t.Fatal(err)
	}
	board, _ := ws.Board(s.Token)
	if len(board) != 1 || board[0].Room != "status" {
		t.Fatalf("board = %v", board)
	}
	if _, err := ws.NotebookWrite(s.Token, "step 800: drift 12mm"); err != nil {
		t.Fatal(err)
	}
	nb, _ := ws.Notebook(s.Token)
	if len(nb) != 1 || nb[0].User != "alice" {
		t.Fatalf("notebook = %v", nb)
	}
	if _, err := ws.Board("bogus"); err == nil {
		t.Fatal("bad token accepted")
	}
}

func TestCollab130Participants(t *testing.T) {
	// E6: 130 concurrent remote participants logging in, chatting, and
	// reading — the §3.4 participation result.
	ws := NewWorkspace("most")
	const participants = 130
	var wg sync.WaitGroup
	errs := make(chan error, participants)
	for i := 0; i < participants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := ws.Login(fmt.Sprintf("user-%03d", i))
			if err != nil {
				errs <- err
				return
			}
			if _, err := ws.Chat(s.Token, "main", "hello from "+s.User); err != nil {
				errs <- err
				return
			}
			if _, err := ws.ChatSince(s.Token, "main", 0); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := len(ws.Presence()); got != participants {
		t.Fatalf("presence = %d, want %d", got, participants)
	}
	msgs, _ := ws.ChatSince(mustLogin(t, ws, "observer").Token, "main", 0)
	if len(msgs) != participants {
		t.Fatalf("chat messages = %d", len(msgs))
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Seq <= msgs[i-1].Seq {
			t.Fatal("chat sequence not monotonic")
		}
	}
}

func mustLogin(t *testing.T, ws *Workspace, user string) *Session {
	t.Helper()
	s, err := ws.Login(user)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestViewerWindowAndXY(t *testing.T) {
	v := NewViewer(0)
	for i := 0; i < 10; i++ {
		tm := float64(i) * 0.01
		v.Feed(nsds.Sample{Channel: "disp", T: tm, Value: float64(i)})
		v.Feed(nsds.Sample{Channel: "force", T: tm, Value: float64(i) * 10})
	}
	win := v.Window("disp", 0.02, 0.05)
	if len(win) != 3 || win[0].Value != 2 {
		t.Fatalf("window = %v", win)
	}
	xs, ys := v.XY("disp", "force")
	if len(xs) != 10 || ys[3] != 30 || xs[3] != 3 {
		t.Fatalf("xy = %v, %v", xs, ys)
	}
	if got := v.Channels(); len(got) != 2 || got[0] != "disp" {
		t.Fatalf("channels = %v", got)
	}
}

func TestViewerRetentionCap(t *testing.T) {
	v := NewViewer(5)
	for i := 0; i < 20; i++ {
		v.Feed(nsds.Sample{Channel: "c", T: float64(i), Value: float64(i)})
	}
	win := v.Window("c", 0, 1e9)
	if len(win) != 5 || win[0].Value != 15 {
		t.Fatalf("capped window = %v", win)
	}
}

func TestCursorVCRSemantics(t *testing.T) {
	v := NewViewer(0)
	for i := 0; i < 6; i++ {
		v.Feed(nsds.Sample{Channel: "c", T: float64(i) * 0.01, Value: float64(i)})
	}
	cur := v.NewCursor("c")
	// Paused: no samples.
	if _, ok := cur.Next(); ok {
		t.Fatal("paused cursor yielded a sample")
	}
	cur.Play()
	s, ok := cur.Next()
	if !ok || s.Value != 0 {
		t.Fatalf("first = %+v", s)
	}
	_, _ = cur.Next()
	cur.Pause()
	if _, ok := cur.Next(); ok {
		t.Fatal("pause ignored")
	}
	cur.Play()
	s, _ = cur.Next()
	if s.Value != 2 {
		t.Fatalf("resume at %g, want 2", s.Value)
	}
	cur.Rewind()
	s, _ = cur.Next()
	if s.Value != 0 {
		t.Fatalf("rewind at %g", s.Value)
	}
	cur.Seek(0.04)
	s, _ = cur.Next()
	if s.Value != 4 {
		t.Fatalf("seek at %g, want 4", s.Value)
	}
	cur.FastForward()
	if _, ok := cur.Next(); ok {
		t.Fatal("fast-forward should reach the live edge")
	}
	// New live data arrives: playback resumes.
	v.Feed(nsds.Sample{Channel: "c", T: 0.06, Value: 6})
	s, ok = cur.Next()
	if !ok || s.Value != 6 {
		t.Fatalf("live edge sample = %+v, %v", s, ok)
	}
}

func TestViewerFeedFromSubscription(t *testing.T) {
	hub := nsds.NewHub()
	sub, _ := hub.Subscribe(16)
	v := NewViewer(0)
	done := make(chan struct{})
	go func() { v.FeedFrom(sub.C()); close(done) }()
	hub.Publish(nsds.Sample{Channel: "c", T: 0.01, Value: 1})
	hub.Close()
	<-done
	if len(v.Window("c", 0, 1)) != 1 {
		t.Fatal("subscription feed lost sample")
	}
}

func TestHTTPFacade(t *testing.T) {
	ws := NewWorkspace("most")
	v := NewViewer(0)
	v.Feed(nsds.Sample{Channel: "disp", T: 0.01, Value: 1.5})
	ts := httptest.NewServer(NewHandler(ws, v))
	defer ts.Close()

	// Login.
	resp, err := http.Post(ts.URL+"/login", "application/json", bytes.NewBufferString(`{"user":"alice"}`))
	if err != nil {
		t.Fatal(err)
	}
	var login map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&login)
	_ = resp.Body.Close()
	token := login["token"]
	if token == "" {
		t.Fatal("no token")
	}

	do := func(method, path, body string) (*http.Response, error) {
		req, _ := http.NewRequest(method, ts.URL+path, bytes.NewBufferString(body))
		req.Header.Set("X-Session", token)
		return http.DefaultClient.Do(req)
	}
	// Chat post + get.
	resp, err = do("POST", "/chat", `{"room":"main","text":"hello"}`)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("chat post: %v %v", resp.Status, err)
	}
	_ = resp.Body.Close()
	resp, _ = do("GET", "/chat?room=main&since=0", "")
	var msgs []Message
	_ = json.NewDecoder(resp.Body).Decode(&msgs)
	_ = resp.Body.Close()
	if len(msgs) != 1 || msgs[0].Text != "hello" {
		t.Fatalf("chat get = %v", msgs)
	}
	// Unauthorized chat.
	req, _ := http.NewRequest("POST", ts.URL+"/chat", bytes.NewBufferString(`{"room":"main","text":"x"}`))
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != 401 {
		t.Fatalf("unauthorized chat status = %d", resp.StatusCode)
	}
	_ = resp.Body.Close()
	// Viewer window.
	resp, _ = do("GET", "/viewer/window?channel=disp&from=0&to=1", "")
	var win []nsds.Sample
	_ = json.NewDecoder(resp.Body).Decode(&win)
	_ = resp.Body.Close()
	if len(win) != 1 || win[0].Value != 1.5 {
		t.Fatalf("viewer window = %v", win)
	}
	// Presence.
	resp, _ = do("GET", "/presence", "")
	var users []string
	_ = json.NewDecoder(resp.Body).Decode(&users)
	_ = resp.Body.Close()
	if len(users) != 1 || users[0] != "alice" {
		t.Fatalf("presence = %v", users)
	}
	// Board + notebook round trip.
	resp, _ = do("POST", "/board", `{"topic":"status","text":"running"}`)
	_ = resp.Body.Close()
	resp, _ = do("GET", "/board", "")
	var board []Message
	_ = json.NewDecoder(resp.Body).Decode(&board)
	_ = resp.Body.Close()
	if len(board) != 1 {
		t.Fatalf("board = %v", board)
	}
	resp, _ = do("POST", "/notebook", `{"text":"note"}`)
	_ = resp.Body.Close()
	resp, _ = do("GET", "/notebook", "")
	var nb []Message
	_ = json.NewDecoder(resp.Body).Decode(&nb)
	_ = resp.Body.Close()
	if len(nb) != 1 {
		t.Fatalf("notebook = %v", nb)
	}
	// Unknown path.
	resp, _ = do("GET", "/nope", "")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path = %d", resp.StatusCode)
	}
	_ = resp.Body.Close()
}
