package collab

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler exposes a workspace (and optionally a viewer) over HTTP — the
// CHEF web interface. Authentication: the session token travels in the
// X-Session header after /login.
type Handler struct {
	WS     *Workspace
	Viewer *Viewer
}

// NewHandler builds the HTTP facade.
func NewHandler(ws *Workspace, viewer *Viewer) *Handler {
	return &Handler{WS: ws, Viewer: viewer}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func errJSON(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ServeHTTP routes the CHEF-ish API.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/login" && r.Method == http.MethodPost:
		h.login(w, r)
	case r.URL.Path == "/logout" && r.Method == http.MethodPost:
		h.WS.Logout(r.Header.Get("X-Session"))
		writeJSON(w, 200, map[string]bool{"ok": true})
	case r.URL.Path == "/presence":
		writeJSON(w, 200, h.WS.Presence())
	case r.URL.Path == "/chat" && r.Method == http.MethodPost:
		h.chatPost(w, r)
	case r.URL.Path == "/chat" && r.Method == http.MethodGet:
		h.chatGet(w, r)
	case r.URL.Path == "/board" && r.Method == http.MethodPost:
		h.boardPost(w, r)
	case r.URL.Path == "/board" && r.Method == http.MethodGet:
		h.boardGet(w, r)
	case r.URL.Path == "/notebook" && r.Method == http.MethodPost:
		h.notebookPost(w, r)
	case r.URL.Path == "/notebook" && r.Method == http.MethodGet:
		h.notebookGet(w, r)
	case r.URL.Path == "/viewer/channels":
		h.viewerChannels(w, r)
	case r.URL.Path == "/viewer/window":
		h.viewerWindow(w, r)
	default:
		errJSON(w, 404, errNotFound)
	}
}

var errNotFound = &collabErr{"not found"}

type collabErr struct{ msg string }

func (e *collabErr) Error() string { return e.msg }

func (h *Handler) login(w http.ResponseWriter, r *http.Request) {
	var body struct {
		User string `json:"user"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		errJSON(w, 400, err)
		return
	}
	s, err := h.WS.Login(body.User)
	if err != nil {
		errJSON(w, 400, err)
		return
	}
	writeJSON(w, 200, map[string]string{"token": s.Token})
}

func (h *Handler) chatPost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Room string `json:"room"`
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		errJSON(w, 400, err)
		return
	}
	m, err := h.WS.Chat(r.Header.Get("X-Session"), body.Room, body.Text)
	if err != nil {
		errJSON(w, 401, err)
		return
	}
	writeJSON(w, 200, m)
}

func (h *Handler) chatGet(w http.ResponseWriter, r *http.Request) {
	since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	msgs, err := h.WS.ChatSince(r.Header.Get("X-Session"), r.URL.Query().Get("room"), since)
	if err != nil {
		errJSON(w, 401, err)
		return
	}
	writeJSON(w, 200, msgs)
}

func (h *Handler) boardPost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Topic string `json:"topic"`
		Text  string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		errJSON(w, 400, err)
		return
	}
	m, err := h.WS.PostBoard(r.Header.Get("X-Session"), body.Topic, body.Text)
	if err != nil {
		errJSON(w, 401, err)
		return
	}
	writeJSON(w, 200, m)
}

func (h *Handler) boardGet(w http.ResponseWriter, r *http.Request) {
	msgs, err := h.WS.Board(r.Header.Get("X-Session"))
	if err != nil {
		errJSON(w, 401, err)
		return
	}
	writeJSON(w, 200, msgs)
}

func (h *Handler) notebookPost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Text string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		errJSON(w, 400, err)
		return
	}
	m, err := h.WS.NotebookWrite(r.Header.Get("X-Session"), body.Text)
	if err != nil {
		errJSON(w, 401, err)
		return
	}
	writeJSON(w, 200, m)
}

func (h *Handler) notebookGet(w http.ResponseWriter, r *http.Request) {
	msgs, err := h.WS.Notebook(r.Header.Get("X-Session"))
	if err != nil {
		errJSON(w, 401, err)
		return
	}
	writeJSON(w, 200, msgs)
}

func (h *Handler) viewerChannels(w http.ResponseWriter, r *http.Request) {
	if _, err := h.WS.auth(r.Header.Get("X-Session")); err != nil {
		errJSON(w, 401, err)
		return
	}
	if h.Viewer == nil {
		errJSON(w, 404, errNotFound)
		return
	}
	writeJSON(w, 200, h.Viewer.Channels())
}

func (h *Handler) viewerWindow(w http.ResponseWriter, r *http.Request) {
	if _, err := h.WS.auth(r.Header.Get("X-Session")); err != nil {
		errJSON(w, 401, err)
		return
	}
	if h.Viewer == nil {
		errJSON(w, 404, errNotFound)
		return
	}
	q := r.URL.Query()
	from, _ := strconv.ParseFloat(q.Get("from"), 64)
	to, err := strconv.ParseFloat(q.Get("to"), 64)
	if err != nil || to <= from {
		to = from + 1e18 // open-ended window
	}
	writeJSON(w, 200, h.Viewer.Window(q.Get("channel"), from, to))
}
