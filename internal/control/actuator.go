// Package control emulates the laboratory control systems the MOST
// experiment drove through NTCP: servo-hydraulic actuators behind a
// Shore-Western-style TCP controller (UIUC), an xPC-target-style real-time
// loop (CU), and the stepper-motor tabletop rig of Mini-MOST. The paper's
// rigs are physical; these models keep the behaviours the protocol and the
// pseudo-dynamic algorithm interact with — commanded moves with finite
// slew rate and settle time, sensor noise, stroke/force interlocks, and an
// emergency stop.
package control

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"neesgrid/internal/structural"
)

// ActuatorConfig parameterizes one servo-hydraulic actuator channel.
type ActuatorConfig struct {
	// TimeConstant is the first-order servo lag (s): the actuator closes
	// the gap to its target as exp(-t/TimeConstant).
	TimeConstant float64
	// RateLimit caps actuator velocity (m/s). 0 = unlimited.
	RateLimit float64
	// Stroke is the maximum |position| (m). Commands beyond it error.
	Stroke float64
	// Tolerance is the settle band (m): Move returns once the position is
	// within Tolerance of the target.
	Tolerance float64
	// SettleTimeout is the maximum simulated settle time (s).
	SettleTimeout float64
	// InternalDt is the servo-loop integration step (s).
	InternalDt float64
	// PositionNoiseStd is the LVDT readback noise standard deviation (m).
	PositionNoiseStd float64
	// ForceNoiseStd is the load-cell noise standard deviation (N).
	ForceNoiseStd float64
	// Seed makes the sensor noise deterministic.
	Seed int64
}

// DefaultActuator returns a configuration typical of a structural-lab
// servo-hydraulic actuator at half scale.
func DefaultActuator() ActuatorConfig {
	return ActuatorConfig{
		TimeConstant:     0.02,
		RateLimit:        0.25,
		Stroke:           0.15,
		Tolerance:        1e-5,
		SettleTimeout:    10,
		InternalDt:       1e-3,
		PositionNoiseStd: 2e-6,
		ForceNoiseStd:    5.0,
		Seed:             1,
	}
}

func (c *ActuatorConfig) fill() {
	if c.TimeConstant <= 0 {
		c.TimeConstant = 0.02
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-5
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 10
	}
	if c.InternalDt <= 0 {
		c.InternalDt = 1e-3
	}
}

// ErrStroke is returned for commands beyond the actuator stroke.
var ErrStroke = fmt.Errorf("control: command exceeds actuator stroke")

// ErrSettleTimeout is returned when the servo cannot settle in time.
var ErrSettleTimeout = fmt.Errorf("control: actuator failed to settle")

// Actuator is a one-channel servo model attached to a specimen element: it
// integrates first-order servo dynamics toward a commanded position in
// simulated time and reads back noisy position and force.
type Actuator struct {
	cfg      ActuatorConfig
	specimen structural.Element

	mu       sync.Mutex
	pos      float64
	simTime  float64 // accumulated simulated seconds
	rng      *rand.Rand
	lastTrip string
}

// NewActuator attaches an actuator model to a specimen element (the
// emulated steel column).
func NewActuator(cfg ActuatorConfig, specimen structural.Element) *Actuator {
	cfg.fill()
	return &Actuator{cfg: cfg, specimen: specimen, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Move commands the actuator to target and integrates until settled,
// returning the achieved position. Simulated time advances; wall time does
// not (the harness adds wall-clock settle delay separately when emulating
// the multi-hour experiment).
func (a *Actuator) Move(target float64) (float64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.Stroke > 0 && math.Abs(target) > a.cfg.Stroke {
		return a.pos, fmt.Errorf("%w: |%g| > %g", ErrStroke, target, a.cfg.Stroke)
	}
	dt := a.cfg.InternalDt
	deadline := a.simTime + a.cfg.SettleTimeout
	for math.Abs(a.pos-target) > a.cfg.Tolerance {
		if a.simTime >= deadline {
			return a.pos, fmt.Errorf("%w: at %g, target %g", ErrSettleTimeout, a.pos, target)
		}
		v := (target - a.pos) / a.cfg.TimeConstant
		if a.cfg.RateLimit > 0 {
			if v > a.cfg.RateLimit {
				v = a.cfg.RateLimit
			} else if v < -a.cfg.RateLimit {
				v = -a.cfg.RateLimit
			}
		}
		a.pos += v * dt
		a.simTime += dt
	}
	return a.pos, nil
}

// Position returns the noisy LVDT reading.
func (a *Actuator) Position() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pos + a.rng.NormFloat64()*a.cfg.PositionNoiseStd
}

// Force drives the specimen model to the current position and returns the
// noisy load-cell reading.
func (a *Actuator) Force() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	f := a.specimen.Restore(a.pos)
	return f + a.rng.NormFloat64()*a.cfg.ForceNoiseStd
}

// SimTime returns accumulated simulated servo time (s) — the quantity that
// made the real MOST run take five hours.
func (a *Actuator) SimTime() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.simTime
}

// Reset re-zeros the actuator and its specimen.
func (a *Actuator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pos = 0
	a.simTime = 0
	a.specimen.Reset()
}

// Interlock is a site-safety trip: limits monitored on every measurement,
// tripping an emergency stop when exceeded — the "engineers nearby prepared
// to turn it off" of §4, in software.
type Interlock struct {
	// MaxDisplacement trips when |position| exceeds it (m). 0 = disabled.
	MaxDisplacement float64
	// MaxForce trips when |force| exceeds it (N). 0 = disabled.
	MaxForce float64

	mu      sync.Mutex
	tripped string
}

// Check examines a measurement, tripping if limits are exceeded. Once
// tripped it stays tripped until Clear.
func (il *Interlock) Check(pos, force float64) error {
	il.mu.Lock()
	defer il.mu.Unlock()
	if il.tripped != "" {
		return fmt.Errorf("control: interlock tripped: %s", il.tripped)
	}
	if il.MaxDisplacement > 0 && math.Abs(pos) > il.MaxDisplacement {
		il.tripped = fmt.Sprintf("displacement %g exceeds %g", pos, il.MaxDisplacement)
		return fmt.Errorf("control: interlock tripped: %s", il.tripped)
	}
	if il.MaxForce > 0 && math.Abs(force) > il.MaxForce {
		il.tripped = fmt.Sprintf("force %g exceeds %g", force, il.MaxForce)
		return fmt.Errorf("control: interlock tripped: %s", il.tripped)
	}
	return nil
}

// Trip forces an emergency stop with a reason.
func (il *Interlock) Trip(reason string) {
	il.mu.Lock()
	defer il.mu.Unlock()
	if il.tripped == "" {
		il.tripped = reason
	}
}

// Tripped returns the trip reason, empty if armed.
func (il *Interlock) Tripped() string {
	il.mu.Lock()
	defer il.mu.Unlock()
	return il.tripped
}

// Clear re-arms the interlock (a human action at the site).
func (il *Interlock) Clear() {
	il.mu.Lock()
	defer il.mu.Unlock()
	il.tripped = ""
}
