package control

import (
	"math"
	"testing"
	"time"

	"neesgrid/internal/structural"
)

func quietActuator() ActuatorConfig {
	cfg := DefaultActuator()
	cfg.PositionNoiseStd = 0
	cfg.ForceNoiseStd = 0
	return cfg
}

func TestActuatorMoveSettles(t *testing.T) {
	a := NewActuator(quietActuator(), structural.NewLinearElastic(1000))
	pos, err := a.Move(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos-0.01) > 1e-4 {
		t.Fatalf("settled at %g, want ~0.01", pos)
	}
	if a.SimTime() <= 0 {
		t.Fatal("simulated time did not advance")
	}
	f := a.Force()
	if math.Abs(f-1000*pos) > 1 {
		t.Fatalf("force = %g, want ~%g", f, 1000*pos)
	}
}

func TestActuatorStrokeLimit(t *testing.T) {
	a := NewActuator(quietActuator(), structural.NewLinearElastic(1000))
	if _, err := a.Move(1.0); err == nil {
		t.Fatal("command beyond stroke should fail")
	}
}

func TestActuatorRateLimitSlowsMove(t *testing.T) {
	cfg := quietActuator()
	cfg.RateLimit = 0.01 // m/s
	a := NewActuator(cfg, structural.NewLinearElastic(1000))
	_, err := a.Move(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// 0.05 m at 0.01 m/s needs at least 5 simulated seconds.
	if a.SimTime() < 4.5 {
		t.Fatalf("rate-limited move took %g simulated s, want >= 4.5", a.SimTime())
	}
}

func TestActuatorSettleTimeout(t *testing.T) {
	cfg := quietActuator()
	cfg.RateLimit = 1e-6 // effectively frozen
	cfg.SettleTimeout = 0.1
	a := NewActuator(cfg, structural.NewLinearElastic(1000))
	if _, err := a.Move(0.05); err == nil {
		t.Fatal("frozen actuator should time out")
	}
}

func TestActuatorNoiseDeterministic(t *testing.T) {
	cfg := DefaultActuator()
	make1 := func() []float64 {
		a := NewActuator(cfg, structural.NewLinearElastic(1000))
		_, _ = a.Move(0.01)
		return []float64{a.Position(), a.Force()}
	}
	r1, r2 := make1(), make1()
	if r1[0] != r2[0] || r1[1] != r2[1] {
		t.Fatal("sensor noise not deterministic across equal seeds")
	}
	if r1[0] == 0.01 {
		t.Fatal("position reading suspiciously noise-free")
	}
}

func TestInterlockTripsOnForce(t *testing.T) {
	il := &Interlock{MaxForce: 100}
	if err := il.Check(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := il.Check(0, 150); err == nil {
		t.Fatal("over-force should trip")
	}
	// Latched: even a safe measurement now fails.
	if err := il.Check(0, 0); err == nil {
		t.Fatal("tripped interlock should stay tripped")
	}
	il.Clear()
	if err := il.Check(0, 0); err != nil {
		t.Fatal("cleared interlock should pass")
	}
}

func TestInterlockTripKeepsFirstReason(t *testing.T) {
	il := &Interlock{}
	il.Trip("first")
	il.Trip("second")
	if il.Tripped() != "first" {
		t.Fatalf("reason = %q", il.Tripped())
	}
}

func TestRigApplyMeasuresSpecimenForce(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	f, err := rig.Apply([]float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f[0]-20) > 0.5 {
		t.Fatalf("force = %g, want ~20", f[0])
	}
	if rig.Applied() != 1 {
		t.Fatal("apply counter")
	}
	if rig.NDOF() != 1 || rig.Name() != "uiuc" {
		t.Fatal("metadata")
	}
}

func TestRigBilinearSpecimenYields(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 10, 0.1) // yields at 0.01
	f, err := rig.Apply([]float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	elastic := 1000 * 0.05
	if f[0] >= elastic {
		t.Fatalf("force %g shows no yielding (elastic would be %g)", f[0], elastic)
	}
}

func TestRigInterlockBlocksAfterTrip(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	rig.Interlock().Trip("operator stop")
	if _, err := rig.Apply([]float64{0.01}); err == nil {
		t.Fatal("tripped rig should refuse commands")
	}
	rig.Interlock().Clear()
	if _, err := rig.Apply([]float64{0.01}); err != nil {
		t.Fatal(err)
	}
}

func TestRigDimension(t *testing.T) {
	rig := NewColumnRig("u", quietActuator(), 1000, 0, 0)
	if _, err := rig.Apply([]float64{1, 2}); err == nil {
		t.Fatal("multi-DOF apply should fail")
	}
}

func TestRigSettleDelay(t *testing.T) {
	rig := NewColumnRig("u", quietActuator(), 1000, 0, 0)
	rig.SettleDelay = 30 * time.Millisecond
	start := time.Now()
	if _, err := rig.Apply([]float64{0.01}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("settle delay not applied")
	}
}

func TestShoreWesternRoundTrip(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	srv := NewShoreWesternServer(rig)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := NewShoreWesternClient(addr)
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	pos, err := cl.Move(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos-0.02) > 1e-3 {
		t.Fatalf("moved to %g", pos)
	}
	rp, rf, err := cl.Read()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rp-0.02) > 1e-3 || math.Abs(rf-20) > 1 {
		t.Fatalf("read = %g, %g", rp, rf)
	}
}

func TestShoreWesternStopAndClear(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	srv := NewShoreWesternServer(rig)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	cl := NewShoreWesternClient(addr)
	defer cl.Close()

	if err := cl.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Move(0.01); err == nil {
		t.Fatal("move after STOP should fail")
	}
	if err := cl.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Move(0.01); err != nil {
		t.Fatal(err)
	}
	if err := cl.Reset(); err != nil {
		t.Fatal(err)
	}
}

func TestShoreWesternBadCommands(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	srv := NewShoreWesternServer(rig)
	if got := srv.handle("MOVE"); got[:3] != "ERR" {
		t.Fatalf("MOVE without arg: %q", got)
	}
	if got := srv.handle("MOVE abc"); got[:3] != "ERR" {
		t.Fatalf("MOVE with bad arg: %q", got)
	}
	if got := srv.handle("FROB 1"); got[:3] != "ERR" {
		t.Fatalf("unknown command: %q", got)
	}
	if got := srv.handle("MOVE 99"); got[:3] != "ERR" {
		t.Fatalf("move beyond stroke: %q", got)
	}
}

func TestShoreWesternClientReconnects(t *testing.T) {
	rig := NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	srv := NewShoreWesternServer(rig)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	cl := NewShoreWesternClient(addr)
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	_ = cl.Close() // sever
	if err := cl.Ping(); err != nil {
		t.Fatalf("client did not redial: %v", err)
	}
}

func TestXPCTargetCommandPollCycle(t *testing.T) {
	rig := NewColumnRig("cu", quietActuator(), 1000, 0, 0)
	x := NewXPCTarget(rig)
	x.SetTarget(0.03)
	if settled, _, _, _ := x.Status(); settled {
		t.Fatal("target should be pending before a cycle")
	}
	x.Cycle()
	pos, force, err := x.WaitSettled(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos-0.03) > 1e-3 || math.Abs(force-30) > 1 {
		t.Fatalf("settled = %g, %g", pos, force)
	}
	if x.Applied() != 1 {
		t.Fatal("applied counter")
	}
}

func TestXPCTargetBackgroundLoop(t *testing.T) {
	rig := NewColumnRig("cu", quietActuator(), 1000, 0, 0)
	x := NewXPCTarget(rig)
	x.Start(time.Millisecond)
	defer x.Stop()
	x.SetTarget(0.01)
	pos, _, err := x.WaitSettled(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pos-0.01) > 1e-3 {
		t.Fatalf("pos = %g", pos)
	}
}

func TestXPCTargetSurfacesError(t *testing.T) {
	rig := NewColumnRig("cu", quietActuator(), 1000, 0, 0)
	x := NewXPCTarget(rig)
	x.SetTarget(9.9) // beyond stroke
	x.Cycle()
	_, _, err := x.WaitSettled(time.Second)
	if err == nil {
		t.Fatal("stroke error should surface via status")
	}
}

func TestStepperQuantizesPosition(t *testing.T) {
	s := NewStepperBeam("mini", 1080, 1e-4, 1000)
	f, err := s.Apply([]float64{0.00512}) // 51.2 steps -> 51 steps
	if err != nil {
		t.Fatal(err)
	}
	want := 51 * 1e-4
	if math.Abs(s.Position()-want) > 1e-12 {
		t.Fatalf("position = %g, want %g", s.Position(), want)
	}
	if math.Abs(f[0]-1080*want) > 1e-9 {
		t.Fatalf("force = %g", f[0])
	}
	if s.Moves() != 1 {
		t.Fatal("move counter")
	}
}

func TestStepperTravelLimit(t *testing.T) {
	s := NewStepperBeam("mini", 1080, 1e-4, 100)
	if _, err := s.Apply([]float64{0.02}); err == nil { // 200 steps > 100
		t.Fatal("travel limit should trip")
	}
}

func TestStepperStrainAndReset(t *testing.T) {
	s := NewStepperBeam("mini", 1080, 1e-4, 1000)
	_, _ = s.Apply([]float64{0.01})
	if s.Strain() == 0 {
		t.Fatal("strain gauge reads zero at deflection")
	}
	_ = s.Reset()
	if s.Position() != 0 || s.Strain() != 0 {
		t.Fatal("reset did not zero rig")
	}
}

func TestFirstOrderKineticApproach(t *testing.T) {
	// Long dwell: position effectively reaches the target.
	f := NewFirstOrderKinetic("sim", 1080, 0.05, 1.0)
	out, err := f.Apply([]float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-10.8) > 0.01 {
		t.Fatalf("force = %g, want ~10.8", out[0])
	}
	// Short dwell: visible first-order undershoot.
	u := NewFirstOrderKinetic("sim", 1080, 0.05, 0.05) // one time constant
	out, _ = u.Apply([]float64{0.01})
	want := 1080 * 0.01 * (1 - math.Exp(-1))
	if math.Abs(out[0]-want) > 0.01 {
		t.Fatalf("undershoot force = %g, want %g", out[0], want)
	}
}

func TestFirstOrderKineticReset(t *testing.T) {
	f := NewFirstOrderKinetic("sim", 1080, 0.05, 1.0)
	_, _ = f.Apply([]float64{0.01})
	_ = f.Reset()
	if f.Position() != 0 {
		t.Fatal("reset failed")
	}
}

func TestInvalidConstructorsPanic(t *testing.T) {
	cases := []func(){
		func() { NewStepperBeam("x", 1, 0, 10) },
		func() { NewStepperBeam("x", 1, 1e-4, 0) },
		func() { NewFirstOrderKinetic("x", 0, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}
