package control

import (
	"fmt"

	"neesgrid/internal/structural"
)

// MultiAxisRig emulates the University of Minnesota configuration of §5: "a
// six-degree-of-freedom controller, to apply realistic deformations and
// loading quasi-statically to large-scale structures". Each axis is an
// independent actuator channel with its own specimen element; Apply moves
// all axes and reports the per-axis reactions, with cross-axis coupling
// optionally supplied by a coupling matrix.
type MultiAxisRig struct {
	name      string
	actuators []*Actuator
	interlock *Interlock
	// coupling, when non-nil, adds K_c·d to the measured forces, modelling
	// the cross-axis stiffness of a shared specimen.
	coupling *structural.Matrix
}

// NewMultiAxisRig builds an n-axis rig. Per-axis specimens are provided by
// the caller (len(specimens) axes); all axes share one actuator
// configuration and one interlock.
func NewMultiAxisRig(name string, cfg ActuatorConfig, specimens []structural.Element) *MultiAxisRig {
	if len(specimens) == 0 {
		panic("control: multi-axis rig needs at least one axis")
	}
	rig := &MultiAxisRig{name: name, interlock: &Interlock{MaxDisplacement: cfg.Stroke}}
	for i, sp := range specimens {
		axisCfg := cfg
		axisCfg.Seed = cfg.Seed + int64(i) // decorrelate per-axis sensor noise
		rig.actuators = append(rig.actuators, NewActuator(axisCfg, sp))
	}
	return rig
}

// NewSixDOFRig builds the UMinn-style 6-DOF rig: three translational axes
// (stiffness kt) and three rotational axes (stiffness kr, treated in
// generalized coordinates).
func NewSixDOFRig(name string, cfg ActuatorConfig, kt, kr float64) *MultiAxisRig {
	specimens := []structural.Element{
		structural.NewLinearElastic(kt), structural.NewLinearElastic(kt), structural.NewLinearElastic(kt),
		structural.NewLinearElastic(kr), structural.NewLinearElastic(kr), structural.NewLinearElastic(kr),
	}
	return NewMultiAxisRig(name, cfg, specimens)
}

// SetCoupling installs a cross-axis stiffness matrix (n×n).
func (m *MultiAxisRig) SetCoupling(k *structural.Matrix) error {
	n := len(m.actuators)
	if k.Rows != n || k.Cols != n {
		return fmt.Errorf("control: coupling matrix %dx%d for %d axes", k.Rows, k.Cols, n)
	}
	m.coupling = k
	return nil
}

// Name identifies the rig.
func (m *MultiAxisRig) Name() string { return m.name }

// NDOF returns the axis count.
func (m *MultiAxisRig) NDOF() int { return len(m.actuators) }

// Interlock exposes the shared safety interlock.
func (m *MultiAxisRig) Interlock() *Interlock { return m.interlock }

// Apply moves every axis to its target and returns the measured reactions.
// Axes are moved sequentially (quasi-static loading); any axis fault trips
// the shared interlock.
func (m *MultiAxisRig) Apply(d []float64) ([]float64, error) {
	if len(d) != len(m.actuators) {
		return nil, fmt.Errorf("control: rig %s has %d axes, got %d targets", m.name, len(m.actuators), len(d))
	}
	if reason := m.interlock.Tripped(); reason != "" {
		return nil, fmt.Errorf("control: rig %s: interlock tripped: %s", m.name, reason)
	}
	forces := make([]float64, len(d))
	for i, a := range m.actuators {
		pos, err := a.Move(d[i])
		if err != nil {
			m.interlock.Trip(err.Error())
			return nil, fmt.Errorf("control: rig %s axis %d: %w", m.name, i, err)
		}
		f := a.Force()
		if err := m.interlock.Check(pos, f); err != nil {
			return nil, fmt.Errorf("control: rig %s axis %d: %w", m.name, i, err)
		}
		forces[i] = f
	}
	if m.coupling != nil {
		coupled := m.coupling.MulVec(d)
		for i := range forces {
			forces[i] += coupled[i]
		}
	}
	return forces, nil
}

// Positions returns the noisy per-axis position readings.
func (m *MultiAxisRig) Positions() []float64 {
	out := make([]float64, len(m.actuators))
	for i, a := range m.actuators {
		out[i] = a.Position()
	}
	return out
}

// Reset re-zeros every axis; the interlock stays as it is.
func (m *MultiAxisRig) Reset() error {
	for _, a := range m.actuators {
		a.Reset()
	}
	return nil
}

var _ structural.Substructure = (*MultiAxisRig)(nil)
