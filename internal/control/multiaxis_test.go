package control

import (
	"context"
	"math"
	"testing"

	"neesgrid/internal/core"
	"neesgrid/internal/structural"
)

func TestSixDOFRigApply(t *testing.T) {
	rig := NewSixDOFRig("uminn", quietActuator(), 1000, 500)
	if rig.NDOF() != 6 {
		t.Fatalf("NDOF = %d", rig.NDOF())
	}
	d := []float64{0.01, -0.02, 0.005, 0.001, -0.001, 0.002}
	f, err := rig.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, -20, 5, 0.5, -0.5, 1}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 0.2 {
			t.Fatalf("axis %d force = %g, want ~%g", i, f[i], want[i])
		}
	}
}

func TestMultiAxisDimensionCheck(t *testing.T) {
	rig := NewSixDOFRig("uminn", quietActuator(), 1000, 500)
	if _, err := rig.Apply([]float64{1, 2}); err == nil {
		t.Fatal("wrong axis count accepted")
	}
}

func TestMultiAxisCoupling(t *testing.T) {
	rig := NewMultiAxisRig("coupled", quietActuator(), []structural.Element{
		structural.NewLinearElastic(1000), structural.NewLinearElastic(1000),
	})
	kc := structural.NewMatrix(2, 2)
	kc.Set(0, 1, 200)
	kc.Set(1, 0, 200)
	if err := rig.SetCoupling(kc); err != nil {
		t.Fatal(err)
	}
	f, err := rig.Apply([]float64{0.01, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Axis 0: 1000*0.01 + 200*0.02 = 14; axis 1: 1000*0.02 + 200*0.01 = 22.
	if math.Abs(f[0]-14) > 0.2 || math.Abs(f[1]-22) > 0.2 {
		t.Fatalf("coupled forces = %v", f)
	}
	bad := structural.NewMatrix(3, 3)
	if err := rig.SetCoupling(bad); err == nil {
		t.Fatal("wrong coupling shape accepted")
	}
}

func TestMultiAxisInterlockSharedAcrossAxes(t *testing.T) {
	cfg := quietActuator()
	rig := NewSixDOFRig("uminn", cfg, 1000, 500)
	// Axis 2 beyond stroke trips the shared interlock.
	d := []float64{0, 0, 1.0, 0, 0, 0}
	if _, err := rig.Apply(d); err == nil {
		t.Fatal("over-stroke axis accepted")
	}
	if _, err := rig.Apply(make([]float64, 6)); err == nil {
		t.Fatal("tripped rig accepted new commands")
	}
	rig.Interlock().Clear()
	if _, err := rig.Apply(make([]float64, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestMultiAxisResetAndPositions(t *testing.T) {
	rig := NewSixDOFRig("uminn", quietActuator(), 1000, 500)
	_, _ = rig.Apply([]float64{0.01, 0.01, 0.01, 0, 0, 0})
	if err := rig.Reset(); err != nil {
		t.Fatal(err)
	}
	for i, p := range rig.Positions() {
		if math.Abs(p) > 1e-6 {
			t.Fatalf("axis %d position %g after reset", i, p)
		}
	}
}

// The 6-DOF rig behind NTCP: a multi-DOF control point served by the same
// generic server — what the UMinn experiment needed from the framework.
func TestSixDOFRigBehindNTCP(t *testing.T) {
	rig := NewSixDOFRig("uminn", quietActuator(), 1000, 500)
	plug := &core.SubstructurePlugin{Point: "specimen", NDOF: 6, Apply: rig.Apply}
	srv := core.NewServer(plug, &core.SitePolicy{PointLimits: map[string]core.Limits{
		"specimen": {MaxDisplacement: 0.1},
	}}, core.ServerOptions{})
	ctx := context.Background()
	rec, err := srv.Propose(ctx, "uminn-coord", &core.Proposal{
		Name: "sixdof-1",
		Actions: []core.Action{{
			ControlPoint:  "specimen",
			Displacements: []float64{0.01, 0, 0.005, 0.001, 0, 0},
		}},
	})
	if err != nil || rec.State != core.StateAccepted {
		t.Fatalf("propose: %+v, %v", rec, err)
	}
	rec, err = srv.Execute(ctx, "uminn-coord", "sixdof-1")
	if err != nil || rec.State != core.StateExecuted {
		t.Fatalf("execute: %+v, %v", rec, err)
	}
	if len(rec.Results[0].Forces) != 6 {
		t.Fatalf("forces = %v", rec.Results[0].Forces)
	}
	// Policy screens every DOF of a multi-DOF action.
	rec, _ = srv.Propose(ctx, "uminn-coord", &core.Proposal{
		Name: "sixdof-big",
		Actions: []core.Action{{
			ControlPoint:  "specimen",
			Displacements: []float64{0, 0, 0, 0, 0.5, 0},
		}},
	})
	if rec.State != core.StateRejected {
		t.Fatal("oversized rotational DOF accepted")
	}
}

// Two-DOF distributed model: a two-story shear frame with one substructure
// per story, exercising the coordinator's multi-DOF gather/scatter.
func TestTwoStoryAssemblyWithMultiAxisRig(t *testing.T) {
	// Story stiffnesses via a 2-axis rig bound to both global DOFs.
	rig := NewMultiAxisRig("stories", quietActuator(), []structural.Element{
		structural.NewLinearElastic(2000), structural.NewLinearElastic(1500),
	})
	a, err := structural.NewAssembly(2, structural.Binding{Sub: rig, DOFs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Restore([]float64{0.01, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f[0]-20) > 0.5 || math.Abs(f[1]-30) > 0.5 {
		t.Fatalf("forces = %v", f)
	}
}
