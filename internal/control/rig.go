package control

import (
	"fmt"
	"sync"
	"time"

	"neesgrid/internal/structural"
)

// Rig is a one-DOF physical-substructure emulation: an actuator pushing a
// specimen, guarded by an interlock. It satisfies structural.Substructure,
// which is exactly how the MS-PSDS method sees a physical test — and what
// lets the coordinator swap a numerical substructure for a rig without
// noticing (E3).
type Rig struct {
	name      string
	actuator  *Actuator
	interlock *Interlock
	// SettleDelay adds real wall-clock delay per Apply, emulating the
	// hydraulic settle time that stretched MOST to five hours. Zero for
	// tests and benches.
	SettleDelay time.Duration

	mu      sync.Mutex
	applied int
}

// NewRig assembles a rig.
func NewRig(name string, actuator *Actuator, interlock *Interlock) *Rig {
	if interlock == nil {
		interlock = &Interlock{}
	}
	return &Rig{name: name, actuator: actuator, interlock: interlock}
}

// Name identifies the rig.
func (r *Rig) Name() string { return r.name }

// NDOF is 1 for a single-actuator rig.
func (r *Rig) NDOF() int { return 1 }

// Interlock exposes the safety interlock.
func (r *Rig) Interlock() *Interlock { return r.interlock }

// Applied returns how many displacement commands the rig executed.
func (r *Rig) Applied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Apply moves the actuator to d[0], waits out the settle delay, and returns
// the measured force. A tripped interlock fails every Apply until cleared.
func (r *Rig) Apply(d []float64) ([]float64, error) {
	if len(d) != 1 {
		return nil, fmt.Errorf("control: rig %s is single-DOF, got %d", r.name, len(d))
	}
	if reason := r.interlock.Tripped(); reason != "" {
		return nil, fmt.Errorf("control: rig %s: interlock tripped: %s", r.name, reason)
	}
	pos, err := r.actuator.Move(d[0])
	if err != nil {
		r.interlock.Trip(err.Error())
		return nil, fmt.Errorf("control: rig %s: %w", r.name, err)
	}
	if r.SettleDelay > 0 {
		time.Sleep(r.SettleDelay)
	}
	force := r.actuator.Force()
	if err := r.interlock.Check(pos, force); err != nil {
		return nil, fmt.Errorf("control: rig %s: %w", r.name, err)
	}
	r.mu.Lock()
	r.applied++
	r.mu.Unlock()
	return []float64{force}, nil
}

// Reset re-zeros the rig; it does not clear a tripped interlock (that is a
// deliberate human action).
func (r *Rig) Reset() error {
	r.actuator.Reset()
	return nil
}

var _ structural.Substructure = (*Rig)(nil)

// NewColumnRig builds the standard MOST-style column rig: a bilinear steel
// column specimen behind a servo actuator. k, fy, hardening describe the
// column; cfg the actuator.
func NewColumnRig(name string, cfg ActuatorConfig, k, fy, hardening float64) *Rig {
	var specimen structural.Element
	if fy > 0 {
		specimen = structural.NewBilinear(k, fy, hardening)
	} else {
		specimen = structural.NewLinearElastic(k)
	}
	il := &Interlock{
		MaxDisplacement: cfg.Stroke,
		MaxForce:        0, // force trip configured by the site when needed
	}
	return NewRig(name, NewActuator(cfg, specimen), il)
}
