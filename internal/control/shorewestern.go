package control

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Shore-Western emulation: at UIUC, the NTCP plugin spoke "a simple TCP/IP
// protocol" to a Shore-Western control system driving the servo-hydraulics
// (paper §3.1). This file implements both ends of such a protocol:
//
//	MOVE <pos>   → OK <achieved> | ERR <reason>
//	READ         → OK <pos> <force>
//	STOP         → OK stopped            (trips the interlock)
//	RESET        → OK reset              (re-zeros the rig)
//	CLEAR        → OK cleared            (re-arms the interlock)
//	PING         → OK pong
//
// One command per line; responses are single lines.

// ShoreWesternServer serves the control protocol for one rig.
type ShoreWesternServer struct {
	rig *Rig

	mu sync.Mutex
	ln net.Listener
}

// NewShoreWesternServer wraps a rig.
func NewShoreWesternServer(rig *Rig) *ShoreWesternServer {
	return &ShoreWesternServer{rig: rig}
}

// Start listens on addr and serves until Close. Returns the bound address.
func (s *ShoreWesternServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("control: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *ShoreWesternServer) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *ShoreWesternServer) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		resp := s.handle(line)
		if _, err := w.WriteString(resp + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *ShoreWesternServer) handle(line string) string {
	fields := strings.Fields(line)
	switch strings.ToUpper(fields[0]) {
	case "PING":
		return "OK pong"
	case "MOVE":
		if len(fields) != 2 {
			return "ERR MOVE needs one position argument"
		}
		target, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return "ERR bad position: " + err.Error()
		}
		forces, err := s.rig.Apply([]float64{target})
		if err != nil {
			return "ERR " + err.Error()
		}
		_ = forces
		return fmt.Sprintf("OK %g", s.rig.actuator.Position())
	case "READ":
		return fmt.Sprintf("OK %g %g", s.rig.actuator.Position(), s.rig.actuator.Force())
	case "STOP":
		s.rig.Interlock().Trip("operator stop")
		return "OK stopped"
	case "RESET":
		_ = s.rig.Reset()
		return "OK reset"
	case "CLEAR":
		s.rig.Interlock().Clear()
		return "OK cleared"
	default:
		return "ERR unknown command " + fields[0]
	}
}

// ShoreWesternClient is the plugin-side client of the control protocol.
// Safe for sequential use; the NTCP plugin serializes commands.
type ShoreWesternClient struct {
	mu   sync.Mutex
	conn net.Conn
	rw   *bufio.ReadWriter
	addr string
	// Dial overrides the dialer (fault injection); nil means net.Dial.
	Dial func(network, addr string) (net.Conn, error)
}

// NewShoreWesternClient creates a client for the controller at addr; the
// connection is established lazily and re-established after failures.
func NewShoreWesternClient(addr string) *ShoreWesternClient {
	return &ShoreWesternClient{addr: addr}
}

func (c *ShoreWesternClient) ensure() error {
	if c.conn != nil {
		return nil
	}
	dial := c.Dial
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("control: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.rw = bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
	return nil
}

// Close drops the connection.
func (c *ShoreWesternClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// roundTrip sends one command line and reads one response line, dropping
// the connection on error so the next call redials.
func (c *ShoreWesternClient) roundTrip(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensure(); err != nil {
		return "", err
	}
	if _, err := c.rw.WriteString(cmd + "\n"); err != nil {
		c.drop()
		return "", fmt.Errorf("control: send: %w", err)
	}
	if err := c.rw.Flush(); err != nil {
		c.drop()
		return "", fmt.Errorf("control: flush: %w", err)
	}
	line, err := c.rw.ReadString('\n')
	if err != nil {
		c.drop()
		return "", fmt.Errorf("control: recv: %w", err)
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("control: controller: %s", strings.TrimPrefix(line, "ERR "))
	}
	if !strings.HasPrefix(line, "OK") {
		return "", fmt.Errorf("control: malformed response %q", line)
	}
	return strings.TrimSpace(strings.TrimPrefix(line, "OK")), nil
}

func (c *ShoreWesternClient) drop() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Move commands a position and returns the achieved position.
func (c *ShoreWesternClient) Move(pos float64) (float64, error) {
	resp, err := c.roundTrip(fmt.Sprintf("MOVE %g", pos))
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(resp, 64)
}

// Read returns position and force.
func (c *ShoreWesternClient) Read() (pos, force float64, err error) {
	resp, err := c.roundTrip("READ")
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(resp)
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("control: malformed READ response %q", resp)
	}
	pos, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, 0, err
	}
	force, err = strconv.ParseFloat(fields[1], 64)
	return pos, force, err
}

// Stop trips the controller's interlock.
func (c *ShoreWesternClient) Stop() error {
	_, err := c.roundTrip("STOP")
	return err
}

// Reset re-zeros the rig.
func (c *ShoreWesternClient) Reset() error {
	_, err := c.roundTrip("RESET")
	return err
}

// Clear re-arms the interlock.
func (c *ShoreWesternClient) Clear() error {
	_, err := c.roundTrip("CLEAR")
	return err
}

// Ping checks liveness.
func (c *ShoreWesternClient) Ping() error {
	_, err := c.roundTrip("PING")
	return err
}
