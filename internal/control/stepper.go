package control

import (
	"fmt"
	"math"
	"sync"

	"neesgrid/internal/structural"
)

// StepperBeam emulates the Mini-MOST tabletop rig (§3.5): a 1 m × 10 cm
// steel beam positioned by a stepper motor, instrumented with a strain
// gauge, an LVDT for position, and a load cell for force. Stepper motion is
// quantized to whole motor steps, which is the rig's dominant error source.
type StepperBeam struct {
	name string
	// StepSize is the displacement of one motor step (m).
	StepSize float64
	// MaxSteps bounds travel in motor steps from zero.
	MaxSteps int
	// GaugeFactor converts displacement to strain-gauge reading
	// (dimensionless strain per meter of tip deflection).
	GaugeFactor float64

	beam structural.Element

	mu    sync.Mutex
	steps int // current motor position in steps
	moves int
}

// NewStepperBeam builds the Mini-MOST rig from the beam stiffness k (N/m).
func NewStepperBeam(name string, k, stepSize float64, maxSteps int) *StepperBeam {
	if stepSize <= 0 || maxSteps <= 0 {
		panic(fmt.Sprintf("control: invalid stepper params step=%g max=%d", stepSize, maxSteps))
	}
	return &StepperBeam{
		name:        name,
		StepSize:    stepSize,
		MaxSteps:    maxSteps,
		GaugeFactor: 1.5e-2,
		beam:        structural.NewLinearElastic(k),
	}
}

// Name identifies the rig.
func (s *StepperBeam) Name() string { return s.name }

// NDOF is 1.
func (s *StepperBeam) NDOF() int { return 1 }

// Apply moves the stepper to the nearest whole step of d[0] and returns the
// measured force.
func (s *StepperBeam) Apply(d []float64) ([]float64, error) {
	if len(d) != 1 {
		return nil, fmt.Errorf("control: stepper %s is single-DOF", s.name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	target := int(math.Round(d[0] / s.StepSize))
	if target > s.MaxSteps || target < -s.MaxSteps {
		return nil, fmt.Errorf("control: stepper %s travel limit: %d steps > %d", s.name, target, s.MaxSteps)
	}
	s.steps = target
	s.moves++
	pos := float64(s.steps) * s.StepSize
	return []float64{s.beam.Restore(pos)}, nil
}

// Position returns the quantized position (m).
func (s *StepperBeam) Position() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.steps) * s.StepSize
}

// Strain returns the strain-gauge reading at the current position.
func (s *StepperBeam) Strain() float64 {
	return s.Position() * s.GaugeFactor
}

// Moves returns how many move commands were executed.
func (s *StepperBeam) Moves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.moves
}

// Reset re-zeros the rig.
func (s *StepperBeam) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.steps = 0
	s.beam.Reset()
	return nil
}

var _ structural.Substructure = (*StepperBeam)(nil)

// FirstOrderKinetic is the hardware-free beam stand-in of §3.5: "a program
// where the beam is replaced by a first-order kinetic simulator … applicable
// for testing when the actual hardware is not available". Each Apply
// advances the first-order response pos' = (target − pos)/τ over a fixed
// simulated dwell, so a too-short dwell visibly undershoots — the behaviour
// test code exercises before touching the rig.
type FirstOrderKinetic struct {
	name string
	// K is the beam stiffness (N/m).
	K float64
	// Tau is the kinetic time constant (s).
	Tau float64
	// Dwell is the simulated time allowed per Apply (s).
	Dwell float64

	mu  sync.Mutex
	pos float64
}

// NewFirstOrderKinetic builds the simulator.
func NewFirstOrderKinetic(name string, k, tau, dwell float64) *FirstOrderKinetic {
	if k <= 0 || tau <= 0 || dwell <= 0 {
		panic(fmt.Sprintf("control: invalid kinetic params k=%g tau=%g dwell=%g", k, tau, dwell))
	}
	return &FirstOrderKinetic{name: name, K: k, Tau: tau, Dwell: dwell}
}

// Name identifies the simulator.
func (f *FirstOrderKinetic) Name() string { return f.name }

// NDOF is 1.
func (f *FirstOrderKinetic) NDOF() int { return 1 }

// Apply relaxes toward the target for one dwell and returns the spring
// force at the reached position.
func (f *FirstOrderKinetic) Apply(d []float64) ([]float64, error) {
	if len(d) != 1 {
		return nil, fmt.Errorf("control: kinetic %s is single-DOF", f.name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pos += (d[0] - f.pos) * (1 - math.Exp(-f.Dwell/f.Tau))
	return []float64{f.K * f.pos}, nil
}

// Position returns the current simulated position.
func (f *FirstOrderKinetic) Position() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pos
}

// Reset re-zeros the simulator.
func (f *FirstOrderKinetic) Reset() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pos = 0
	return nil
}

var _ structural.Substructure = (*FirstOrderKinetic)(nil)
