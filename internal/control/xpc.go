package control

import (
	"fmt"
	"sync"
	"time"
)

// XPCTarget emulates the CU configuration of Fig. 9: a target machine
// running a real-time OS that owns the servo loop, driven asynchronously by
// a host application. Commands are posted to a mailbox; the target applies
// them on its own cycle; the host polls status until the move settles —
// the same decoupled command/poll pattern the Matlab xPC feature provided.
type XPCTarget struct {
	rig *Rig

	mu       sync.Mutex
	target   float64
	pending  bool
	settled  bool
	lastPos  float64
	lastFrc  float64
	lastErr  error
	applied  int
	stopCh   chan struct{}
	stopOnce sync.Once
	running  bool
}

// NewXPCTarget wraps a rig.
func NewXPCTarget(rig *Rig) *XPCTarget {
	return &XPCTarget{rig: rig, settled: true}
}

// Start launches the real-time loop with the given cycle period.
func (x *XPCTarget) Start(period time.Duration) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.running {
		return
	}
	x.running = true
	x.stopCh = make(chan struct{})
	x.stopOnce = sync.Once{}
	go x.loop(period)
}

// Stop halts the loop.
func (x *XPCTarget) Stop() {
	x.mu.Lock()
	ch := x.stopCh
	x.running = false
	x.mu.Unlock()
	if ch != nil {
		x.stopOnce.Do(func() { close(ch) })
	}
}

func (x *XPCTarget) loop(period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			x.Cycle()
		case <-x.stopCh:
			return
		}
	}
}

// Cycle runs one real-time cycle: if a command is pending, apply it through
// the rig. Exposed so tests can drive the target deterministically without
// the ticker.
func (x *XPCTarget) Cycle() {
	x.mu.Lock()
	if !x.pending {
		x.mu.Unlock()
		return
	}
	target := x.target
	x.pending = false
	x.mu.Unlock()

	forces, err := x.rig.Apply([]float64{target})

	x.mu.Lock()
	defer x.mu.Unlock()
	x.applied++
	x.settled = true
	x.lastErr = err
	if err == nil {
		x.lastPos = target
		x.lastFrc = forces[0]
	}
}

// SetTarget posts a new position command; the loop applies it on its next
// cycle.
func (x *XPCTarget) SetTarget(pos float64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.target = pos
	x.pending = true
	x.settled = false
	x.lastErr = nil
}

// Status returns the latest settled measurement.
func (x *XPCTarget) Status() (settled bool, pos, force float64, err error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.settled, x.lastPos, x.lastFrc, x.lastErr
}

// WaitSettled polls until the pending command completes or timeout elapses.
func (x *XPCTarget) WaitSettled(timeout time.Duration) (pos, force float64, err error) {
	deadline := time.Now().Add(timeout)
	for {
		settled, p, f, e := x.Status()
		if settled {
			return p, f, e
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("control: xpc target did not settle within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Applied reports how many commands the target executed.
func (x *XPCTarget) Applied() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.applied
}
