package coord

import (
	"context"
	"testing"

	"neesgrid/internal/core"
	"neesgrid/internal/structural"
)

// Regression: a transport failure during phase 1 used to abort the step
// WITHOUT cancelling the proposals the other sites had already accepted —
// the cancel sweep only ran on an explicit policy rejection. The orphaned
// transactions then pinned server state (and, after a resume, replayed as
// stale accepts). Any phase-1 abort must cancel the accepted siblings.
func TestTransportAbortCancelsAcceptedSiblings(t *testing.T) {
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(1000),
		structural.NewLinearElastic(1000),
	}, nil)
	cfg := sdofConfig(100, 2000, 30)
	cfg.OnStep = func(st structural.State) {
		if st.Step == 9 {
			// Site 0's next call — its step-10 propose — fails.
			h.sites[0].injector.FailNext(1)
		}
	}
	c, err := New(cfg, h.coordSites(core.NoRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("run should abort on the unretried transport failure")
	}
	if IsRejection(err) {
		t.Fatalf("err = %v: a transport abort is not a rejection", err)
	}
	if report.FailedStep != 10 {
		t.Fatalf("failed at step %d, want 10", report.FailedStep)
	}
	// Site 1 accepted its step-10 proposal; the abort must have cancelled it.
	if got := h.sites[1].server.Stats().Cancelled; got == 0 {
		t.Fatalf("sibling cancellations = %d, want > 0 (orphaned proposal)", got)
	}
}

// Sibling cancels must be delivered even when the step context that carried
// the abort is already cancelled — cancellation is cleanup, and cleanup on
// a dead context was exactly how transactions leaked.
func TestCancelAcceptedSurvivesCancelledContext(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, nil)
	sites := h.coordSites(core.NoRetry)
	c, err := New(sdofConfig(100, 1000, 10), sites...)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sites[0].Client.Propose(context.Background(), &core.Proposal{
		Name: "test/orphan/uiuc",
		Actions: []core.Action{{
			ControlPoint:  "drift",
			Displacements: []float64{0.001},
		}},
	})
	if err != nil || rec.State != core.StateAccepted {
		t.Fatalf("propose = %+v, %v", rec, err)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	c.cancelAccepted(dead,
		[]siteOutcome{{site: 0, rec: rec}},
		[]string{rec.Name})

	if got := h.sites[0].server.Stats().Cancelled; got != 1 {
		t.Fatalf("cancelled = %d, want 1 despite the dead step context", got)
	}
}

// After an abort cancelled a step's proposals, a resumed coordinator
// re-proposing the same deterministic name gets the CANCELLED record
// replayed from the dedupe table. The propose path must walk to a revision
// suffix rather than spin on (or die of) the terminal replay.
func TestProposeWalksPastCancelledReplays(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, nil)
	sites := h.coordSites(core.DefaultRetry)
	ctx := context.Background()

	// Leave a cancelled husk of step 1's transaction behind, as a dead
	// incarnation's abort sweep would.
	cl := sites[0].Client
	if _, err := cl.Propose(ctx, &core.Proposal{
		Name: "test/step-1/uiuc",
		Actions: []core.Action{{
			ControlPoint:  "drift",
			Displacements: []float64{0.0001},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, "test/step-1/uiuc"); err != nil {
		t.Fatal(err)
	}

	c, err := New(sdofConfig(100, 1000, 20), sites...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(ctx)
	if err != nil || !report.Completed {
		t.Fatalf("run = %+v, %v", report, err)
	}
	if got := report.Telemetry.Counters["coord.proposals.revised"]; got == 0 {
		t.Fatal("no revision recorded: step 1 should have walked past the cancelled replay")
	}
}
