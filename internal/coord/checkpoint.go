// Checkpoint/resume: the durability half of surviving step 1493. The
// coordinator journals its committed per-step state to an atomic snapshot
// file; a restarted coordinator resumes from the snapshot and re-proposes
// the failed step under the same deterministic transaction names, so the
// sites' dedupe tables replay already-decided transactions and no action
// is ever applied twice (paper §2.1's at-most-once contract is what makes
// resume safe against live rigs).
package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"neesgrid/internal/structural"
)

// checkpointVersion guards the on-disk layout.
const checkpointVersion = 1

// Checkpoint is the coordinator's durable state after a committed step:
// everything a fresh process needs to continue the run as if it had never
// died. See DESIGN.md §5e for the file layout.
type Checkpoint struct {
	// Version is the checkpoint layout version.
	Version int `json:"version"`
	// RunID is the transaction-name prefix; resume refuses a mismatched
	// run so a stale file cannot splice two experiments together.
	RunID string `json:"run_id"`
	// Step is the last committed step index.
	Step int `json:"step"`
	// T is the simulation time at Step.
	T float64 `json:"t"`
	// Steps is the run's total step count (sanity-checked on resume).
	Steps int `json:"steps"`
	// Dt is the integration step (sanity-checked on resume).
	Dt float64 `json:"dt"`
	// Integrator names the scheme that produced State; resume refuses a
	// different scheme.
	Integrator string `json:"integrator"`
	// IntegratorState is the scheme's opaque snapshot (structural.Resumable).
	IntegratorState json.RawMessage `json:"integrator_state"`
	// Tail is the last few committed states — enough history for the
	// resumed run's report and for stitching response plots across the
	// crash. Tail[len-1] is the state at Step.
	Tail []structural.State `json:"tail"`
	// TraceID is the trace ID of the last committed step's root span, so
	// the resumed run's spans can point back at the timeline that died.
	TraceID string `json:"trace_id,omitempty"`
}

// CheckpointConfig enables per-step checkpointing on a Coordinator.
type CheckpointConfig struct {
	// Path is the snapshot file. Writes are atomic (temp file + rename in
	// the same directory), so a crash mid-write leaves the previous
	// checkpoint intact.
	Path string
	// Every writes a checkpoint after every Every committed steps
	// (default 1; step 0 and the final step are always written).
	Every int
	// Tail is how many trailing states to embed (default 8).
	Tail int
}

func (c *CheckpointConfig) every() int {
	if c.Every <= 0 {
		return 1
	}
	return c.Every
}

func (c *CheckpointConfig) tail() int {
	if c.Tail <= 0 {
		return 8
	}
	return c.Tail
}

// SaveCheckpoint writes cp to path atomically: the bytes land in a
// temporary file in the same directory, are synced, and replace path with
// a rename. Readers never observe a torn checkpoint.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	if path == "" {
		return fmt.Errorf("coord: checkpoint path empty")
	}
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("coord: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("coord: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("coord: write checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("coord: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("coord: decode checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("coord: checkpoint %s: unsupported version %d", path, cp.Version)
	}
	if cp.Step < 0 || len(cp.IntegratorState) == 0 || len(cp.Tail) == 0 {
		return nil, fmt.Errorf("coord: checkpoint %s: incomplete", path)
	}
	if last := cp.Tail[len(cp.Tail)-1]; last.Step != cp.Step {
		return nil, fmt.Errorf("coord: checkpoint %s: tail ends at step %d, want %d",
			path, last.Step, cp.Step)
	}
	return &cp, nil
}

// validateResume cross-checks a checkpoint against the run configuration.
func (c *Coordinator) validateResume(cp *Checkpoint) error {
	if cp.RunID != c.cfg.RunID {
		return fmt.Errorf("coord: checkpoint is for run %q, this run is %q", cp.RunID, c.cfg.RunID)
	}
	if cp.Dt != c.cfg.Dt {
		return fmt.Errorf("coord: checkpoint dt %g != configured %g", cp.Dt, c.cfg.Dt)
	}
	if cp.Integrator != c.cfg.Integrator.Name() {
		return fmt.Errorf("coord: checkpoint integrator %q != configured %q",
			cp.Integrator, c.cfg.Integrator.Name())
	}
	if cp.Step >= c.cfg.Steps {
		return fmt.Errorf("coord: checkpoint step %d is at or past the final step %d",
			cp.Step, c.cfg.Steps)
	}
	return nil
}
