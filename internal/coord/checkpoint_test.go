package coord

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neesgrid/internal/core"
	"neesgrid/internal/structural"
)

// bilinearPair returns matched hysteretic elements for a reference run and a
// checkpointed run. Hysteresis is the point: if resume re-executed a step at
// a site instead of replaying it from the dedupe table, the element's state
// would double-advance and the trajectory would diverge.
func bilinearElement() structural.Element { return structural.NewBilinear(2000, 150, 0.05) }

func checkpointConfig(steps int) Config {
	cfg := sdofConfig(100, 2000, steps)
	cfg.K = structural.Diagonal([]float64{2000})
	return cfg
}

func mustRun(t *testing.T, cfg Config, sites []Site) (*structural.History, *Report) {
	t.Helper()
	c, err := New(cfg, sites...)
	if err != nil {
		t.Fatal(err)
	}
	hist, rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return hist, rep
}

func TestCoordinatorCheckpointResume(t *testing.T) {
	const steps, killAt = 60, 36

	// Reference: an uninterrupted distributed run on its own harness.
	refH := newHarness(t, []structural.Element{bilinearElement()}, nil)
	refHist, _ := mustRun(t, checkpointConfig(steps), refH.coordSites(core.DefaultRetry))
	if refHist.Len() != steps+1 {
		t.Fatalf("reference recorded %d states, want %d", refHist.Len(), steps+1)
	}

	// Crash run: checkpoint every 10 steps, chaos-kill before step 36. The
	// last checkpoint is at step 30, so steps 31–35 were executed at the
	// site but are "forgotten" by the coordinator — resume must replay them
	// through the dedupe table, not re-execute them.
	h := newHarness(t, []structural.Element{bilinearElement()}, nil)
	path := filepath.Join(t.TempDir(), "coord.ckpt")
	cfg := checkpointConfig(steps)
	cfg.Checkpoint = &CheckpointConfig{Path: path, Every: 10}
	killErr := errors.New("chaos: scheduled coordinator kill")
	cfg.Interrupt = func(s int) error {
		if s == killAt {
			return killErr
		}
		return nil
	}
	sites := h.coordSites(core.DefaultRetry)
	c1, err := New(cfg, sites...)
	if err != nil {
		t.Fatal(err)
	}
	hist1, rep1, err := c1.Run(context.Background())
	if !errors.Is(err, killErr) {
		t.Fatalf("run error = %v, want the interrupt error", err)
	}
	if rep1.FailedStep != killAt || rep1.StepsCompleted != killAt-1 {
		t.Fatalf("failed step %d / completed %d, want %d / %d",
			rep1.FailedStep, rep1.StepsCompleted, killAt, killAt-1)
	}
	if rep1.Checkpoints != 4 { // steps 0, 10, 20, 30
		t.Fatalf("wrote %d checkpoints, want 4", rep1.Checkpoints)
	}
	for _, st := range hist1.States {
		if !sameState(refHist.States[st.Step], st) {
			t.Fatalf("pre-crash step %d diverged from reference", st.Step)
		}
	}

	// Resume: a fresh coordinator process against the same (still running)
	// sites, loading the snapshot the dead one left behind.
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != 30 {
		t.Fatalf("checkpoint at step %d, want 30", cp.Step)
	}
	cfg2 := checkpointConfig(steps)
	cfg2.Checkpoint = &CheckpointConfig{Path: path, Every: 10}
	cfg2.Resume = cp
	hist2, rep2 := mustRun(t, cfg2, sites)
	if rep2.ResumedFrom != 30 || !rep2.Completed || rep2.StepsCompleted != steps {
		t.Fatalf("resumed report = %+v", rep2)
	}
	if rep2.Checkpoints != 3 { // steps 40, 50, 60
		t.Fatalf("resumed run wrote %d checkpoints, want 3", rep2.Checkpoints)
	}

	// Every state the resumed run produced — the replayed tail and the live
	// steps, including the re-proposed 31–35 — must be bit-identical to the
	// uninterrupted reference.
	if hist2.Len() == 0 {
		t.Fatal("resumed history empty")
	}
	if last := hist2.States[hist2.Len()-1]; last.Step != steps {
		t.Fatalf("resumed run ended at step %d, want %d", last.Step, steps)
	}
	for _, st := range hist2.States {
		if !sameState(refHist.States[st.Step], st) {
			t.Fatalf("post-resume step %d diverged from reference:\nref %+v\ngot %+v",
				st.Step, refHist.States[st.Step], st)
		}
	}

	// The final checkpoint (written at the last step regardless of cadence)
	// records the completed run.
	final, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Step != steps {
		t.Fatalf("final checkpoint at step %d, want %d", final.Step, steps)
	}
}

// sameState compares two states bit-for-bit.
func sameState(a, b structural.State) bool {
	if a.Step != b.Step || a.T != b.T {
		return false
	}
	for i := range a.D {
		if a.D[i] != b.D[i] || a.V[i] != b.V[i] || a.A[i] != b.A[i] || a.F[i] != b.F[i] {
			return false
		}
	}
	return true
}

// stiffIntegrator is an Integrator that is deliberately not Resumable.
type stiffIntegrator struct{ structural.Integrator }

func (stiffIntegrator) Name() string { return "not-resumable" }

func TestCheckpointConfigValidation(t *testing.T) {
	h := newHarness(t, []structural.Element{bilinearElement()}, nil)
	sites := h.coordSites(core.DefaultRetry)

	cfg := checkpointConfig(10)
	cfg.Checkpoint = &CheckpointConfig{Path: "x"}
	cfg.Integrator = stiffIntegrator{structural.NewExplicitNewmark()}
	if _, err := New(cfg, sites...); err == nil || !strings.Contains(err.Error(), "checkpoint/resume") {
		t.Fatalf("non-resumable integrator accepted: %v", err)
	}

	good := &Checkpoint{
		Version: checkpointVersion, RunID: "test", Step: 5, Steps: 10, Dt: 0.01,
		Integrator:      "explicit-newmark",
		IntegratorState: []byte(`{}`),
		Tail:            []structural.State{{Step: 5}},
	}
	mk := func(mut func(cp *Checkpoint)) Config {
		cp := *good
		tail := make([]structural.State, len(good.Tail))
		copy(tail, good.Tail)
		cp.Tail = tail
		mut(&cp)
		cfg := checkpointConfig(10)
		cfg.Resume = &cp
		return cfg
	}
	cases := []struct {
		name string
		mut  func(cp *Checkpoint)
	}{
		{"wrong run id", func(cp *Checkpoint) { cp.RunID = "other" }},
		{"wrong dt", func(cp *Checkpoint) { cp.Dt = 0.02 }},
		{"wrong integrator", func(cp *Checkpoint) { cp.Integrator = "alpha-os(-0.05)" }},
		{"past final step", func(cp *Checkpoint) { cp.Step = 10 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(mk(tc.mut), sites...); err == nil {
				t.Fatal("invalid resume checkpoint accepted")
			}
		})
	}
}

func TestLoadCheckpointRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := LoadCheckpoint(write("garbage", "{")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	if _, err := LoadCheckpoint(write("version", `{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := LoadCheckpoint(write("empty", `{"version":1,"step":3}`)); err == nil {
		t.Fatal("checkpoint without state accepted")
	}
	if _, err := LoadCheckpoint(write("tail", `{"version":1,"step":3,`+
		`"integrator_state":{"x":1},"tail":[{"Step":2}]}`)); err == nil {
		t.Fatal("tail/step mismatch accepted")
	}
}

func TestSaveCheckpointAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	base := &Checkpoint{
		Version: checkpointVersion, RunID: "r", Dt: 0.01, Steps: 9,
		Integrator:      "explicit-newmark",
		IntegratorState: []byte(`{"a":1}`),
	}
	for step := 1; step <= 3; step++ {
		cp := *base
		cp.Step = step
		cp.Tail = []structural.State{{Step: step}}
		if err := SaveCheckpoint(path, &cp); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Step != step {
			t.Fatalf("loaded step %d, want %d", got.Step, step)
		}
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the checkpoint", len(entries))
	}
}
