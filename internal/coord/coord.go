// Package coord implements the MOST Simulation Coordinator (paper Fig. 5):
// the component that "repeatedly issues a set of NTCP proposals based on
// current simulation state, collects information about the resulting state
// of all the substructures, and, based on that resulting state, computes the
// next set of NTCP commands to send", handling exceptions such as lost
// network connections along the way.
//
// The coordinator embeds the MS-PSDS method: a structural integrator
// (internal/structural) computes target displacements each step; the
// restoring forces come back from distributed substructures through
// propose → execute NTCP transactions. Transaction names are deterministic
// ("step-<n>/<site>"), so retries after network failures dedupe server-side
// and no action is ever applied twice.
package coord

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"neesgrid/internal/core"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// Site is one experiment site: an NTCP endpoint hosting one substructure.
type Site struct {
	// Name identifies the site ("uiuc", "ncsa", "cu").
	Name string
	// Client is the NTCP client for the site (carries its retry policy).
	Client *core.Client
	// ControlPoint is the control point name at the site.
	ControlPoint string
	// DOFs maps the substructure's local DOFs to global model DOFs.
	DOFs []int
}

// Config parameterizes a distributed pseudo-dynamic run.
type Config struct {
	// M, C, K are the numerical matrices of the equation of motion (K is
	// the initial stiffness, required by the α-OS integrator).
	M, C, K *structural.Matrix
	// Integrator advances the equation of motion. Nil selects explicit
	// Newmark.
	Integrator structural.Integrator
	// Dt and Steps define the grid (MOST: 0.01 s × 1500).
	Dt    float64
	Steps int
	// Ground returns üg at a step index.
	Ground func(step int) float64
	// Iota is the influence vector (defaults to ones).
	Iota []float64
	// StepTimeout bounds one whole distributed step (all sites). Zero
	// means 60 s.
	StepTimeout time.Duration
	// OnStep observes each committed state (streaming, ingestion, UI).
	OnStep func(structural.State)
	// OnStepCtx is OnStep with the step's trace context attached: work done
	// inside it (DAQ scans, streaming publishes) parents under the step's
	// root span. When both are set only OnStepCtx is called.
	OnStepCtx func(context.Context, structural.State)
	// RunID prefixes transaction names so re-runs against long-lived
	// servers do not collide. Empty means "run".
	RunID string
	// FastPath uses the combined proposeAndExecute operation (§5 NTCP
	// performance work): one round trip per site per step instead of two.
	// The trade-off is the loss of the cross-site accept barrier — a site
	// rejecting a step can no longer prevent the other sites from having
	// executed theirs — so it is appropriate for rehearsed near-real-time
	// experiments whose proposals are known to satisfy site policy.
	FastPath bool
	// Pipeline overlaps consecutive steps (the §5 "ongoing work" protocol):
	// once step N's displacement is known, the coordinator fuses execute(N)
	// with a speculative propose(N+1) at the integrator's predicted
	// displacement into one batched signed envelope per site, so the
	// steady-state WAN cost of a step is one one-way-latency-bound round
	// trip instead of ~2.5 RTTs. When step N's forces move the trajectory
	// beyond PipelineTolerance, the speculative proposals are cancelled and
	// step N+1 is re-proposed at its actual displacement. Unlike FastPath,
	// the cross-site accept barrier is preserved: a proposal is never
	// executed before every site has accepted it. Defaults off so the
	// baseline E8 numbers stay comparable. Mutually exclusive with
	// FastPath.
	Pipeline bool
	// PipelineTolerance is the per-DOF displacement error (model units —
	// metres for MOST) within which a speculatively accepted step equals
	// the actual one. Zero selects 1e-3 m: on the order of actuator
	// positioning accuracy, and comfortably above the ~|a|·dt² error of
	// the linear predictor at MOST's dt = 0.01 s. Negative forces a
	// rollback every step (a determinism-debugging aid).
	PipelineTolerance float64
	// Telemetry receives per-step wall-clock histograms and step events.
	// Share it with the sites' NTCP clients (NewClientWithTelemetry) and the
	// run report's summary covers round-trip latency too. Nil allocates a
	// private registry.
	Telemetry *telemetry.Registry
	// Tracer, when set, opens one root span per time step ("coord.step",
	// with run and step attributes) and a child span per site per NTCP
	// phase, so a merged cross-site timeline can answer "which site made
	// step N slow". Share its recorder with the ogsi clients' tracer so
	// client transport spans land in the same ring. Nil disables tracing.
	Tracer *trace.Tracer
	// Checkpoint, when non-nil, journals the coordinator's committed state
	// to an atomic snapshot file after every Checkpoint.Every steps. The
	// integrator must implement structural.Resumable. A checkpoint write
	// failure aborts the run: silently losing durability would turn the
	// next crash into exactly the unrecoverable step-1493 ending this
	// feature exists to prevent.
	Checkpoint *CheckpointConfig
	// Resume, when non-nil, starts the run from a checkpoint instead of
	// from rest: the integrator is reconstructed at Resume.Step and the
	// loop continues at Resume.Step+1, re-proposing through the normal
	// restore path — already-decided transactions at the sites replay from
	// their dedupe tables, fresh ones execute normally.
	Resume *Checkpoint
	// Interrupt, when set, is consulted before each step is integrated; a
	// non-nil error aborts the run at that step with no network traffic.
	// The chaos engine uses it to kill the coordinator deterministically
	// at a scheduled step (a context cancel would leak a timing-dependent
	// number of in-flight calls into the sites' fault injectors and break
	// byte-replay).
	Interrupt func(step int) error
}

// Report summarizes a run — the material of §3.4.
type Report struct {
	// StepsCompleted is the number of integration steps committed.
	StepsCompleted int
	// Completed is true when every requested step committed.
	Completed bool
	// FailedStep is the step at which the run aborted (0 if completed).
	FailedStep int
	// Err is the terminal error (nil if completed).
	Err error
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Recovered is the total number of calls that succeeded only after
	// retries — the "several transient network failures" counter.
	Recovered int
	// Retries is the total number of retry attempts across all sites.
	Retries int
	// ResumedFrom is the checkpoint step this run resumed from (-1 when
	// the run started from rest).
	ResumedFrom int
	// Checkpoints is the number of snapshot files written during the run.
	Checkpoints int
	// StepLatency summarizes per-step wall-clock time (p50/p95/p99) — the
	// number that tells you whether the WAN or the rigs dominate a step.
	StepLatency telemetry.HistogramSnapshot
	// Telemetry is the coordinator registry snapshot at run end; when the
	// site clients share the registry it includes their round-trip
	// histograms and recovery counters.
	Telemetry telemetry.Snapshot
}

// Coordinator drives one distributed hybrid experiment.
type Coordinator struct {
	cfg    Config
	sites  []Site
	tel    *telemetry.Registry
	tracer *trace.Tracer
	// pipe carries the speculative-proposal state between consecutive
	// restore calls when Pipeline is on. Run resets it at start; the Run
	// loop is single-goroutine so no locking is needed.
	pipe pipeState
}

// New validates the topology and returns a coordinator.
func New(cfg Config, sites ...Site) (*Coordinator, error) {
	if cfg.M == nil {
		return nil, fmt.Errorf("coord: mass matrix required")
	}
	if cfg.Dt <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("coord: positive dt and steps required")
	}
	if cfg.Ground == nil {
		return nil, fmt.Errorf("coord: ground motion required")
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("coord: at least one site required")
	}
	n := cfg.M.Rows
	seen := make(map[string]bool)
	for _, s := range sites {
		if s.Client == nil {
			return nil, fmt.Errorf("coord: site %q has no client", s.Name)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("coord: duplicate site %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.DOFs) == 0 {
			return nil, fmt.Errorf("coord: site %q maps no DOFs", s.Name)
		}
		for _, g := range s.DOFs {
			if g < 0 || g >= n {
				return nil, fmt.Errorf("coord: site %q maps out-of-range DOF %d", s.Name, g)
			}
		}
	}
	if cfg.StepTimeout <= 0 {
		cfg.StepTimeout = 60 * time.Second
	}
	if cfg.Pipeline && cfg.FastPath {
		return nil, fmt.Errorf("coord: Pipeline and FastPath are mutually exclusive")
	}
	if cfg.PipelineTolerance == 0 {
		cfg.PipelineTolerance = defaultPipelineTolerance
	}
	if cfg.RunID == "" {
		cfg.RunID = "run"
	}
	if cfg.Integrator == nil {
		cfg.Integrator = structural.NewExplicitNewmark()
	}
	if cfg.Checkpoint != nil || cfg.Resume != nil {
		if _, ok := cfg.Integrator.(structural.Resumable); !ok {
			return nil, fmt.Errorf("coord: integrator %s does not support checkpoint/resume",
				cfg.Integrator.Name())
		}
	}
	c := &Coordinator{cfg: cfg, sites: sites, tel: telemetry.OrNew(cfg.Telemetry), tracer: cfg.Tracer}
	if cfg.Resume != nil {
		if err := c.validateResume(cfg.Resume); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// siteOutcome is one site's response to a step.
type siteOutcome struct {
	site int
	rec  *core.Record
	err  error
}

// stepError wraps a step failure with its step number.
type stepError struct {
	step int
	err  error
}

func (e *stepError) Error() string { return fmt.Sprintf("step %d: %v", e.step, e.err) }
func (e *stepError) Unwrap() error { return e.err }

// maxProposalRevisions bounds how many cancelled incarnations of one
// transaction the coordinator will walk past before giving up. Each
// revision corresponds to one aborted step attempt in an earlier
// incarnation, so the bound only matters when something is wedged.
const maxProposalRevisions = 16

// cancelDeliveryTimeout bounds abort-path cancels. They run on a context
// detached from the step (which is usually being torn down, possibly
// because its deadline already expired), so they need their own leash.
const cancelDeliveryTimeout = 10 * time.Second

// revisionName returns the deterministic name of revision rev of a
// transaction (revision 0 is the base name itself).
func revisionName(base string, rev int) string {
	if rev == 0 {
		return base
	}
	return base + "/r" + strconv.Itoa(rev)
}

// proposeRevised proposes p, walking past cancelled incarnations of the
// same transaction. A propose replayed against the dedupe table returns
// whatever record the name resolved to — including one a previous
// incarnation cancelled on its abort path. Executing a cancelled
// transaction is a conflict, so the coordinator deterministically bumps a
// revision suffix (base, base/r1, base/r2, …) until it reaches a live or
// fresh transaction. Every incarnation replays the same walk, so names
// stay a pure function of the fault history. On success p.Name holds the
// name actually proposed (the one execute and cancel must use).
func (c *Coordinator) proposeRevised(ctx context.Context, cl *core.Client, p *core.Proposal) (*core.Record, error) {
	base := p.Name
	for rev := 0; rev <= maxProposalRevisions; rev++ {
		p.Name = revisionName(base, rev)
		rec, err := cl.Propose(ctx, p)
		if err != nil || rec.State != core.StateCancelled {
			return rec, err
		}
		c.tel.Counter("coord.proposals.revised").Inc()
	}
	return nil, fmt.Errorf("transaction %s: %d revisions all cancelled", base, maxProposalRevisions)
}

// cancelAccepted cancels every accepted transaction in outcomes,
// concurrently (the abort path should cost one round trip, not
// O(sites × RTT)) and on a context that survives the step context:
// the step is being torn down — possibly because its deadline already
// expired — and a cancel that is never delivered leaves an orphaned
// accepted transaction pinning server state.
func (c *Coordinator) cancelAccepted(ctx context.Context, outcomes []siteOutcome, names []string) {
	cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), cancelDeliveryTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil || o.rec == nil || o.rec.State != core.StateAccepted {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sp := c.tracer.Start(cctx, "coord.cancel", trace.KindInternal)
			sp.SetAttr("site", c.sites[i].Name)
			_, err := c.sites[i].Client.Cancel(sctx, names[i])
			sp.SetError(err)
			sp.End()
		}(i)
	}
	wg.Wait()
}

// restore performs one distributed restoring-force evaluation: propose to
// every site, and if all accept, execute everywhere and gather forces.
// On any rejection the sibling transactions are cancelled (the negotiation
// behaviour §2.1 calls out).
func (c *Coordinator) restore(ctx context.Context, step *int, d []float64) ([]float64, error) {
	n := len(d)
	stepCtx, cancel := context.WithTimeout(ctx, c.cfg.StepTimeout)
	defer cancel()

	if c.cfg.FastPath {
		return c.restoreFast(stepCtx, *step, d, n)
	}
	if c.cfg.Pipeline {
		return c.restorePipelined(stepCtx, *step, d, n)
	}

	// Phase 1: propose everywhere in parallel.
	proposals := make([]*core.Proposal, len(c.sites))
	outcomes := make([]siteOutcome, len(c.sites))
	var wg sync.WaitGroup
	for i, s := range c.sites {
		local := make([]float64, len(s.DOFs))
		for j, g := range s.DOFs {
			local[j] = d[g]
		}
		proposals[i] = &core.Proposal{
			Name: fmt.Sprintf("%s/step-%d/%s", c.cfg.RunID, *step, s.Name),
			Actions: []core.Action{{
				ControlPoint:  s.ControlPoint,
				Displacements: local,
			}},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pctx, sp := c.tracer.Start(stepCtx, "coord.propose", trace.KindInternal)
			sp.SetAttr("site", c.sites[i].Name)
			rec, err := c.proposeRevised(pctx, c.sites[i].Client, proposals[i])
			sp.SetError(err)
			sp.End()
			outcomes[i] = siteOutcome{site: i, rec: rec, err: err}
		}(i)
	}
	wg.Wait()

	// names[i] is the transaction name site i actually holds — the base
	// name or a revision — and the one phase 2 and the abort path must use.
	names := make([]string, len(c.sites))
	for i := range proposals {
		names[i] = proposals[i].Name
	}

	var rejected *siteOutcome
	var abortErr error
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil && abortErr == nil {
			abortErr = fmt.Errorf("site %s propose: %w", c.sites[o.site].Name, o.err)
		}
		if o.err == nil && o.rec.State == core.StateRejected && rejected == nil {
			rejected = o
		}
	}
	if rejected != nil || abortErr != nil {
		// Any phase-1 abort — rejection or transport failure — must cancel
		// the siblings that already accepted, or their transactions pin
		// server-side state and collide with this step's replay after a
		// resume.
		c.cancelAccepted(stepCtx, outcomes, names)
		if rejected != nil {
			return nil, fmt.Errorf("site %s rejected proposal: %s: %w",
				c.sites[rejected.site].Name, rejected.rec.Error, core.ErrRejected)
		}
		return nil, abortErr
	}

	// Phase 2: execute everywhere in parallel.
	for i := range c.sites {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ectx, sp := c.tracer.Start(stepCtx, "coord.execute", trace.KindInternal)
			sp.SetAttr("site", c.sites[i].Name)
			rec, err := c.sites[i].Client.Execute(ectx, proposals[i].Name)
			sp.SetError(err)
			sp.End()
			outcomes[i] = siteOutcome{site: i, rec: rec, err: err}
		}(i)
	}
	wg.Wait()

	forces := make([]float64, n)
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			return nil, fmt.Errorf("site %s execute: %w", c.sites[o.site].Name, o.err)
		}
		if o.rec.State != core.StateExecuted {
			return nil, fmt.Errorf("site %s transaction %s: %s: %w",
				c.sites[o.site].Name, o.rec.Name, o.rec.Error, core.ErrFailed)
		}
		s := c.sites[o.site]
		if len(o.rec.Results) != 1 || len(o.rec.Results[0].Forces) != len(s.DOFs) {
			return nil, fmt.Errorf("site %s returned malformed results", s.Name)
		}
		for j, g := range s.DOFs {
			forces[g] += o.rec.Results[0].Forces[j]
		}
	}
	return forces, nil
}

// restoreFast is the single-round-trip variant of restore: every site gets
// one proposeAndExecute call. Rejections and failures still abort the step.
func (c *Coordinator) restoreFast(ctx context.Context, step int, d []float64, n int) ([]float64, error) {
	outcomes := make([]siteOutcome, len(c.sites))
	var wg sync.WaitGroup
	for i, s := range c.sites {
		local := make([]float64, len(s.DOFs))
		for j, g := range s.DOFs {
			local[j] = d[g]
		}
		p := &core.Proposal{
			Name: fmt.Sprintf("%s/step-%d/%s", c.cfg.RunID, step, s.Name),
			Actions: []core.Action{{
				ControlPoint:  s.ControlPoint,
				Displacements: local,
			}},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fctx, sp := c.tracer.Start(ctx, "coord.faststep", trace.KindInternal)
			sp.SetAttr("site", c.sites[i].Name)
			rec, err := c.sites[i].Client.RunFast(fctx, p)
			sp.SetError(err)
			sp.End()
			outcomes[i] = siteOutcome{site: i, rec: rec, err: err}
		}(i)
	}
	wg.Wait()

	forces := make([]float64, n)
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil {
			return nil, fmt.Errorf("site %s fast step: %w", c.sites[o.site].Name, o.err)
		}
		s := c.sites[o.site]
		if len(o.rec.Results) != 1 || len(o.rec.Results[0].Forces) != len(s.DOFs) {
			return nil, fmt.Errorf("site %s returned malformed results", s.Name)
		}
		for j, g := range s.DOFs {
			forces[g] += o.rec.Results[0].Forces[j]
		}
	}
	return forces, nil
}

// Run executes the distributed experiment and returns the response history
// and a run report. The history contains every committed step even when the
// run aborts early (the E2 experiment inspects exactly that).
func (c *Coordinator) Run(ctx context.Context) (*structural.History, *Report, error) {
	start := time.Now()
	n := c.cfg.M.Rows
	iota := c.cfg.Iota
	if iota == nil {
		iota = structural.Ones(n)
	}
	step := 0
	// A fresh run (or a resume) starts with no speculation in flight: any
	// speculative transaction a previous incarnation left behind is walked
	// past by the revision/mismatch guards in the propose path.
	c.pipe = pipeState{}
	// stepCtx carries the current step's root span into the restoring-force
	// evaluation the integrator triggers; the Run loop (single goroutine)
	// reassigns it each step.
	stepCtx := ctx
	sys := &structural.System{
		M: c.cfg.M,
		C: c.cfg.C,
		K: c.cfg.K,
		R: func(d []float64) ([]float64, error) {
			return c.restore(stepCtx, &step, d)
		},
	}
	report := &Report{ResumedFrom: -1}
	stepHist := c.tel.Histogram("coord.step.seconds", telemetry.DefaultLatencyBuckets...)
	// Pre-register the run's counters at zero so the Prometheus exposition
	// (and the obs aggregator's merged view) carries every coord.* series
	// from the first scrape, not only after the first increment.
	c.tel.Counter("coord.steps.completed")
	c.tel.Counter("coord.steps.failed")
	c.tel.Counter("coord.proposals.revised")
	c.tel.Counter("coord.resumes")
	c.tel.Counter("coord.checkpoints.written")
	if c.cfg.Pipeline {
		c.tel.Counter("coord.proposals.stale_cancelled")
		c.tel.Counter("coord.pipeline.hits")
		c.tel.Counter("coord.pipeline.mispredicts")
	}
	// coord.checkpoint.lag_steps is how many committed steps the newest
	// checkpoint trails by — the "how much would a crash now replay" number
	// the fleet dashboard watches. Meaningful only when checkpointing is on.
	ckLag := c.tel.Gauge("coord.checkpoint.lag_steps")
	lastCheckpointStep := -1
	finish := func(err error, failedStep int) (*structural.History, *Report, error) {
		report.Elapsed = time.Since(start)
		report.Err = err
		report.Completed = err == nil
		report.FailedStep = failedStep
		// When clients share one telemetry registry their counters already
		// aggregate across sites; summing per-site Stats would multiply the
		// totals, so count each registry once.
		seen := make(map[*telemetry.Registry]bool)
		for _, s := range c.sites {
			if reg := s.Client.Telemetry(); seen[reg] {
				continue
			} else {
				seen[reg] = true
			}
			st := s.Client.Stats()
			report.Recovered += st.Recovered
			report.Retries += st.Retries
		}
		if err != nil {
			c.tel.Counter("coord.steps.failed").Inc()
			c.tel.Event("coord", "run.failed", map[string]any{
				"step": failedStep, "error": err.Error(),
			})
		}
		report.StepLatency = stepHist.Snapshot()
		report.Telemetry = c.tel.Snapshot()
		return nil, report, err
	}

	// notify routes each committed state to OnStepCtx (trace-aware) or
	// OnStep, whichever the caller wired.
	notify := func(sctx context.Context, st structural.State) {
		if c.cfg.OnStepCtx != nil {
			c.cfg.OnStepCtx(sctx, st)
			return
		}
		if c.cfg.OnStep != nil {
			c.cfg.OnStep(st)
		}
	}

	hist := structural.NewHistory(n, c.cfg.Steps)

	// lastTraceID remembers the root-span trace of the last committed step;
	// it lands in each checkpoint so a resumed run's spans can link back to
	// the timeline that died.
	lastTraceID := ""
	// saveCheckpoint journals the committed state after cadence-selected
	// steps. A write failure is a run failure: continuing without durability
	// would turn the next crash into the unrecoverable ending checkpointing
	// exists to prevent.
	saveCheckpoint := func(st structural.State) error {
		ck := c.cfg.Checkpoint
		if ck == nil {
			return nil
		}
		if lastCheckpointStep >= 0 {
			ckLag.Set(float64(st.Step - lastCheckpointStep))
		}
		if st.Step%ck.every() != 0 && st.Step != c.cfg.Steps && st.Step != 0 {
			return nil
		}
		snap, err := c.cfg.Integrator.(structural.Resumable).Snapshot()
		if err != nil {
			return err
		}
		tail := hist.States
		if k := ck.tail(); len(tail) > k {
			tail = tail[len(tail)-k:]
		}
		if err := SaveCheckpoint(ck.Path, &Checkpoint{
			Version:         checkpointVersion,
			RunID:           c.cfg.RunID,
			Step:            st.Step,
			T:               st.T,
			Steps:           c.cfg.Steps,
			Dt:              c.cfg.Dt,
			Integrator:      c.cfg.Integrator.Name(),
			IntegratorState: snap,
			Tail:            tail,
			TraceID:         lastTraceID,
		}); err != nil {
			return err
		}
		report.Checkpoints++
		c.tel.Counter("coord.checkpoints.written").Inc()
		lastCheckpointStep = st.Step
		ckLag.Set(0)
		return nil
	}

	startStep := 1
	if cp := c.cfg.Resume; cp != nil {
		// Reconstruct the integrator at the checkpointed step instead of
		// initializing from rest; the loop then continues at cp.Step+1,
		// re-proposing under the same deterministic transaction names so the
		// sites' dedupe tables replay anything already decided.
		if err := c.cfg.Integrator.(structural.Resumable).Resume(sys, c.cfg.Dt, cp.IntegratorState); err != nil {
			_, rep, ferr := finish(&stepError{step: cp.Step, err: err}, cp.Step)
			return nil, rep, ferr
		}
		for _, st := range cp.Tail {
			hist.Record(st)
		}
		lastTraceID = cp.TraceID
		lastCheckpointStep = cp.Step
		report.ResumedFrom = cp.Step
		report.StepsCompleted = cp.Step
		startStep = cp.Step + 1
		c.tel.Counter("coord.resumes").Inc()
		c.tel.Event("coord", "run.resumed", map[string]any{
			"step": cp.Step, "trace": cp.TraceID,
		})
	} else {
		d0 := make([]float64, n)
		v0 := make([]float64, n)
		sctx, span := c.tracer.Start(ctx, "coord.step", trace.KindInternal)
		span.SetAttr("run", c.cfg.RunID)
		span.SetAttr("step", "0")
		stepCtx = sctx
		st, err := c.cfg.Integrator.Init(sys, c.cfg.Dt, d0, v0,
			structural.GroundLoad(c.cfg.M, iota, c.cfg.Ground(0)))
		if err != nil {
			span.SetError(err)
			span.End()
			_, rep, err := finish(&stepError{step: 0, err: err}, 0)
			return nil, rep, err
		}
		hist.Record(st)
		if id := span.Context().TraceID.String(); id != "" {
			lastTraceID = id
		}
		if cerr := saveCheckpoint(st); cerr != nil {
			span.SetError(cerr)
			span.End()
			_, rep, ferr := finish(&stepError{step: 0, err: cerr}, 0)
			return hist, rep, ferr
		}
		notify(sctx, st)
		span.End()
	}

	for s := startStep; s <= c.cfg.Steps; s++ {
		step = s
		if c.cfg.Interrupt != nil {
			// The chaos kill hook: abort here, before any network traffic for
			// step s, so the number of calls each fault injector has seen is a
			// pure function of the committed step count — the property that
			// makes a chaos scenario byte-replayable.
			if err := c.cfg.Interrupt(s); err != nil {
				_, rep, ferr := finish(&stepError{step: s, err: err}, s)
				return hist, rep, ferr
			}
		}
		// One root span per time step: the unit of the paper's latency
		// breakdown. Every per-site NTCP span and (via OnStepCtx) every
		// DAQ/streaming span of this step nests under it.
		sctx, span := c.tracer.Start(ctx, "coord.step", trace.KindInternal)
		span.SetAttr("run", c.cfg.RunID)
		span.SetAttr("step", strconv.Itoa(s))
		if cp := c.cfg.Resume; cp != nil && s == startStep {
			span.SetAttr("resume.from_step", strconv.Itoa(cp.Step))
			if cp.TraceID != "" {
				span.SetAttr("resume.trace", cp.TraceID)
			}
		}
		stepCtx = sctx
		stepStart := time.Now()
		st, err := c.cfg.Integrator.Step(structural.GroundLoad(c.cfg.M, iota, c.cfg.Ground(s)))
		// The step histogram carries the step's root trace as its exemplar:
		// a fleet-wide p99 on coord.step.seconds resolves straight to the
		// `mostctl trace` timeline of the slowest step.
		stepHist.ObserveDurationExemplar(time.Since(stepStart), span.Context().TraceID.String())
		if err != nil {
			span.SetError(err)
			span.End()
			// One stepError, reported through finish exactly once, so the
			// failure event and telemetry snapshot are recorded once and the
			// returned error is the same value the report carries.
			_, rep, ferr := finish(&stepError{step: s, err: err}, s)
			return hist, rep, ferr
		}
		c.tel.Counter("coord.steps.completed").Inc()
		hist.Record(st)
		report.StepsCompleted = s
		if id := span.Context().TraceID.String(); id != "" {
			lastTraceID = id
		}
		if cerr := saveCheckpoint(st); cerr != nil {
			span.SetError(cerr)
			span.End()
			_, rep, ferr := finish(&stepError{step: s, err: cerr}, s)
			return hist, rep, ferr
		}
		notify(sctx, st)
		span.End()
	}
	_, rep, _ := finish(nil, 0)
	rep.StepsCompleted = c.cfg.Steps
	return hist, rep, nil
}

// IsRejection reports whether a run error came from a site policy
// rejection.
func IsRejection(err error) bool { return errors.Is(err, core.ErrRejected) }

// StepOf extracts the failing step from a run error (0 if unknown).
func StepOf(err error) int {
	var se *stepError
	if errors.As(err, &se) {
		return se.step
	}
	return 0
}
