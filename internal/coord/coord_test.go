package coord

import (
	"context"
	"errors"
	"math"
	"net/http"
	"testing"
	"time"

	"neesgrid/internal/control"
	"neesgrid/internal/core"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/gsi"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/structural"
)

// testSite is one in-process experiment site.
type testSite struct {
	name     string
	addr     string
	server   *core.Server
	injector *faultnet.Injector
}

// harness spins up a CA and n sites, each hosting one spring substructure
// behind NTCP.
type harness struct {
	ca    *gsi.Authority
	trust *gsi.TrustStore
	cred  *gsi.Credential
	sites []*testSite
}

func newHarness(t *testing.T, springs []structural.Element, policies []*core.SitePolicy) *harness {
	t.Helper()
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	coordCred, _ := ca.Issue("/O=NEES/CN=coordinator", time.Hour)
	h := &harness{ca: ca, trust: trust, cred: coordCred}
	names := []string{"uiuc", "ncsa", "cu", "rpi", "lehigh"}
	for i, el := range springs {
		name := names[i%len(names)]
		siteCred, _ := ca.Issue("/O=NEES/CN="+name, time.Hour)
		gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=coordinator": "coord"})
		cont := ogsi.NewContainer(siteCred, trust, gm)
		elem := el
		plug := &core.SubstructurePlugin{
			Point: "drift",
			NDOF:  1,
			Apply: func(d []float64) ([]float64, error) {
				return []float64{elem.Restore(d[0])}, nil
			},
		}
		var pol *core.SitePolicy
		if policies != nil {
			pol = policies[i]
		}
		srv := core.NewServer(plug, pol, core.ServerOptions{})
		cont.AddService(srv.Service())
		addr, err := cont.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = cont.Stop(ctx)
		})
		h.sites = append(h.sites, &testSite{
			name:     name,
			addr:     addr,
			server:   srv,
			injector: faultnet.NewInjector(faultnet.LAN),
		})
	}
	return h
}

// coordSites builds coordinator Site bindings, all mapped to global DOF 0,
// with the given retry policy routed through each site's injector.
func (h *harness) coordSites(retry core.RetryPolicy) []Site {
	sites := make([]Site, len(h.sites))
	for i, ts := range h.sites {
		og := ogsi.NewClient("http://"+ts.addr, h.cred, h.trust)
		og.HTTP = &http.Client{Transport: faultnet.NewTransport(ts.injector)}
		sites[i] = Site{
			Name:         ts.name,
			Client:       core.NewClient(og, retry),
			ControlPoint: "drift",
			DOFs:         []int{0},
		}
	}
	return sites
}

// sdofConfig builds a 1-DOF config over total stiffness k with a sine
// ground motion.
func sdofConfig(mass, k float64, steps int) Config {
	w := 2 * math.Pi * 1.2
	return Config{
		M:      structural.Diagonal([]float64{mass}),
		K:      structural.Diagonal([]float64{k}),
		Dt:     0.01,
		Steps:  steps,
		Ground: func(step int) float64 { return 2.0 * math.Sin(w*float64(step)*0.01) },
		RunID:  "test",
	}
}

func TestDistributedMatchesLocalExactly(t *testing.T) {
	// E1/E3 core property: a distributed run over NTCP with noise-free
	// simulation plugins reproduces the local single-process trajectory
	// bit-for-bit.
	kL, kM, kR := 800.0, 2000.0, 800.0
	mass := 100.0
	steps := 120

	// Local reference.
	local, err := structural.NewAssembly(1,
		structural.Binding{Sub: structural.NewElementSubstructure("l", structural.NewLinearElastic(kL)), DOFs: []int{0}},
		structural.Binding{Sub: structural.NewElementSubstructure("m", structural.NewLinearElastic(kM)), DOFs: []int{0}},
		structural.Binding{Sub: structural.NewElementSubstructure("r", structural.NewLinearElastic(kR)), DOFs: []int{0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sdofConfig(mass, kL+kM+kR, steps)
	sysLocal := &structural.System{M: cfg.M, K: cfg.K, R: local.Restore}
	refHist, err := structural.Run(sysLocal, structural.NewExplicitNewmark(), structural.RunOptions{
		Dt: cfg.Dt, Steps: steps, Ground: cfg.Ground,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Distributed run.
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(kL),
		structural.NewLinearElastic(kM),
		structural.NewLinearElastic(kR),
	}, nil)
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	hist, report, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed || report.StepsCompleted != steps {
		t.Fatalf("report = %+v", report)
	}
	if hist.Len() != refHist.Len() {
		t.Fatalf("history length %d vs %d", hist.Len(), refHist.Len())
	}
	for i := range refHist.States {
		if hist.States[i].D[0] != refHist.States[i].D[0] {
			t.Fatalf("step %d: distributed %g != local %g",
				i, hist.States[i].D[0], refHist.States[i].D[0])
		}
		if hist.States[i].F[0] != refHist.States[i].F[0] {
			t.Fatalf("step %d force mismatch", i)
		}
	}
}

func TestTransientFaultsRecovered(t *testing.T) {
	// E2 (recovery half): inject transient failures mid-run; a retrying
	// coordinator finishes all steps and reports recoveries.
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(1000),
		structural.NewLinearElastic(1000),
	}, nil)
	cfg := sdofConfig(100, 2000, 60)
	var c *Coordinator
	faultsScheduled := 0
	cfg.OnStep = func(st structural.State) {
		// Drop the next couple of calls at a few points through the run.
		if st.Step == 10 || st.Step == 25 || st.Step == 40 {
			h.sites[st.Step%2].injector.FailNext(2)
			faultsScheduled += 2
		}
	}
	var err error
	c, err = New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("run did not complete: %+v", report)
	}
	if report.Recovered == 0 || report.Retries == 0 {
		t.Fatalf("no recoveries recorded despite %d injected faults: %+v", faultsScheduled, report)
	}
}

func TestNoRetryCoordinatorAbortsAtFaultStep(t *testing.T) {
	// E2 (failure half): the public MOST run's coordinator had no retry;
	// a network error at step N kills the run at step N.
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(1000),
		structural.NewLinearElastic(1000),
	}, nil)
	const fatalStep = 37
	cfg := sdofConfig(100, 2000, 60)
	cfg.OnStep = func(st structural.State) {
		if st.Step == fatalStep-1 {
			h.sites[0].injector.SetOutage(true)
		}
	}
	c, err := New(cfg, h.coordSites(core.NoRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	hist, report, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("run should abort on outage")
	}
	if report.Completed {
		t.Fatal("report claims completion")
	}
	if report.FailedStep != fatalStep || StepOf(err) != fatalStep {
		t.Fatalf("failed at step %d (err %v), want %d", report.FailedStep, err, fatalStep)
	}
	if report.StepsCompleted != fatalStep-1 {
		t.Fatalf("steps completed = %d, want %d", report.StepsCompleted, fatalStep-1)
	}
	if hist.Len() != fatalStep { // states 0..fatalStep-1
		t.Fatalf("history has %d states, want %d", hist.Len(), fatalStep)
	}
}

func TestPolicyRejectionCancelsSiblings(t *testing.T) {
	// A site whose policy rejects the step displacement aborts the run;
	// the coordinator cancels the already-accepted transactions at the
	// other sites — the §2.1 negotiation behaviour.
	pol := []*core.SitePolicy{
		nil,
		{PointLimits: map[string]core.Limits{"drift": {MaxDisplacement: 1e-9}}}, // rejects almost everything
	}
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(1000),
		structural.NewLinearElastic(1000),
	}, pol)
	cfg := sdofConfig(100, 2000, 30)
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("run should abort on rejection")
	}
	if !IsRejection(err) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if report.Completed {
		t.Fatal("report claims completion")
	}
	// Site 0 accepted its proposal and must have seen it cancelled.
	if got := h.sites[0].server.Stats().Cancelled; got == 0 {
		t.Fatalf("sibling cancellation count = %d, want > 0", got)
	}
}

func TestAlphaOSDistributed(t *testing.T) {
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(1500),
		structural.NewLinearElastic(500),
	}, nil)
	cfg := sdofConfig(100, 2000, 80)
	aos, err := structural.NewAlphaOS(-0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Integrator = aos
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	hist, report, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("report = %+v", report)
	}
	if hist.PeakDisplacement(0) <= 0 {
		t.Fatal("flat response")
	}
}

func TestOnStepObserverSeesEveryStep(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, nil)
	cfg := sdofConfig(100, 1000, 25)
	var seen []int
	cfg.OnStep = func(st structural.State) { seen = append(seen, st.Step) }
	c, err := New(cfg, h.coordSites(core.NoRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 26 || seen[0] != 0 || seen[25] != 25 {
		t.Fatalf("observed steps = %v", seen)
	}
}

func TestConfigValidation(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1)}, nil)
	good := sdofConfig(1, 1, 1)
	sites := h.coordSites(core.NoRetry)

	bad := good
	bad.M = nil
	if _, err := New(bad, sites...); err == nil {
		t.Fatal("missing mass should fail")
	}
	bad = good
	bad.Dt = 0
	if _, err := New(bad, sites...); err == nil {
		t.Fatal("zero dt should fail")
	}
	bad = good
	bad.Ground = nil
	if _, err := New(bad, sites...); err == nil {
		t.Fatal("missing ground motion should fail")
	}
	if _, err := New(good); err == nil {
		t.Fatal("no sites should fail")
	}
	dup := []Site{sites[0], sites[0]}
	if _, err := New(good, dup...); err == nil {
		t.Fatal("duplicate sites should fail")
	}
	badSite := sites[0]
	badSite.DOFs = []int{7}
	if _, err := New(good, badSite); err == nil {
		t.Fatal("out-of-range DOF should fail")
	}
	noClient := sites[0]
	noClient.Client = nil
	if _, err := New(good, noClient); err == nil {
		t.Fatal("nil client should fail")
	}
	noDofs := sites[0]
	noDofs.DOFs = nil
	if _, err := New(good, noDofs); err == nil {
		t.Fatal("empty DOFs should fail")
	}
}

func TestFastPathMatchesBaseline(t *testing.T) {
	// The §5 fast path must produce the identical trajectory — only the
	// number of round trips changes.
	springs := func() []structural.Element {
		return []structural.Element{
			structural.NewLinearElastic(900),
			structural.NewLinearElastic(1100),
		}
	}
	run := func(fast bool) *structural.History {
		h := newHarness(t, springs(), nil)
		cfg := sdofConfig(100, 2000, 100)
		cfg.FastPath = fast
		c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
		if err != nil {
			t.Fatal(err)
		}
		hist, report, err := c.Run(context.Background())
		if err != nil || !report.Completed {
			t.Fatalf("run(fast=%v): %+v, %v", fast, report, err)
		}
		return hist
	}
	base := run(false)
	fast := run(true)
	for i := range base.States {
		if base.States[i].D[0] != fast.States[i].D[0] {
			t.Fatalf("step %d: fast path diverged", i)
		}
	}
}

func TestFastPathRecoversTransientFaults(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, nil)
	cfg := sdofConfig(100, 1000, 60)
	cfg.FastPath = true
	cfg.OnStep = func(st structural.State) {
		if st.Step == 20 {
			h.sites[0].injector.FailNext(2)
		}
	}
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err != nil || !report.Completed {
		t.Fatalf("report = %+v, %v", report, err)
	}
	if report.Recovered == 0 {
		t.Fatal("fast path did not recover injected faults")
	}
}

func TestFastPathRejectionAborts(t *testing.T) {
	pol := []*core.SitePolicy{{PointLimits: map[string]core.Limits{
		"drift": {MaxDisplacement: 1e-9},
	}}}
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, pol)
	cfg := sdofConfig(100, 1000, 30)
	cfg.FastPath = true
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err == nil || report.Completed {
		t.Fatalf("fast-path run should abort on rejection: %+v", report)
	}
	if !IsRejection(err) {
		t.Fatalf("err = %v, want rejection", err)
	}
}

// Multi-DOF distributed topology: a two-story shear model with one site per
// story DOF plus one site spanning both (the coordinator's gather/scatter
// across heterogeneous DOF maps).
func TestTwoStoryDistributedGatherScatter(t *testing.T) {
	kl, ku, kc := 3000.0, 2000.0, 500.0
	h := newHarness(t, []structural.Element{
		structural.NewLinearElastic(kl), // lower story at global DOF 0
		structural.NewLinearElastic(ku), // upper story at global DOF 1
		structural.NewLinearElastic(kc), // extra spring also on DOF 1
	}, nil)

	m := structural.Diagonal([]float64{200, 150})
	// Reference stiffness matrix for the "uncoupled springs per DOF" model.
	k := structural.Diagonal([]float64{kl, ku + kc})
	cfg := Config{
		M: m, K: k, Dt: 0.005, Steps: 150,
		Ground: func(step int) float64 { return 1.5 * math.Sin(0.06*float64(step)) },
		RunID:  "twostory",
	}
	sites := h.coordSites(core.DefaultRetry)
	sites[0].DOFs = []int{0}
	sites[1].DOFs = []int{1}
	sites[2].DOFs = []int{1}
	c, err := New(cfg, sites...)
	if err != nil {
		t.Fatal(err)
	}
	hist, report, err := c.Run(context.Background())
	if err != nil || !report.Completed {
		t.Fatalf("report = %+v, %v", report, err)
	}

	// Local reference with the same spring layout.
	ref, err := structural.NewAssembly(2,
		structural.Binding{Sub: structural.NewElementSubstructure("l", structural.NewLinearElastic(kl)), DOFs: []int{0}},
		structural.Binding{Sub: structural.NewElementSubstructure("u", structural.NewLinearElastic(ku)), DOFs: []int{1}},
		structural.Binding{Sub: structural.NewElementSubstructure("c", structural.NewLinearElastic(kc)), DOFs: []int{1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := &structural.System{M: m, K: k, R: ref.Restore}
	refHist, err := structural.Run(sys, structural.NewExplicitNewmark(), structural.RunOptions{
		Dt: cfg.Dt, Steps: cfg.Steps, Ground: cfg.Ground,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range refHist.States {
		for dof := 0; dof < 2; dof++ {
			if hist.States[i].D[dof] != refHist.States[i].D[dof] {
				t.Fatalf("step %d dof %d: distributed %g != local %g",
					i, dof, hist.States[i].D[dof], refHist.States[i].D[dof])
			}
		}
	}
}

// A multi-DOF control point (UMinn-style multi-axis rig) behind NTCP,
// driven by the coordinator as a 2-DOF substructure spanning both global
// DOFs of a two-story model.
func TestMultiAxisRigDistributed(t *testing.T) {
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	coordCred, _ := ca.Issue("/O=NEES/CN=coordinator", time.Hour)
	siteCred, _ := ca.Issue("/O=NEES/CN=uminn", time.Hour)
	gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=coordinator": "coord"})

	cfgAct := control.DefaultActuator()
	cfgAct.PositionNoiseStd, cfgAct.ForceNoiseStd = 0, 0
	k1, k2 := 3000.0, 2000.0
	rig := control.NewMultiAxisRig("uminn-rig", cfgAct, []structural.Element{
		structural.NewLinearElastic(k1),
		structural.NewLinearElastic(k2),
	})
	plug := &core.SubstructurePlugin{Point: "specimen", NDOF: 2, Apply: rig.Apply}
	srv := core.NewServer(plug, nil, core.ServerOptions{})
	cont := ogsi.NewContainer(siteCred, trust, gm)
	cont.AddService(srv.Service())
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	})

	og := ogsi.NewClient("http://"+addr, coordCred, trust)
	cfg := Config{
		M:      structural.Diagonal([]float64{150, 100}),
		K:      structural.Diagonal([]float64{k1, k2}),
		Dt:     0.005,
		Steps:  120,
		Ground: func(step int) float64 { return 1.2 * math.Sin(0.08*float64(step)) },
		RunID:  "uminn",
	}
	c, err := New(cfg, Site{
		Name:         "uminn",
		Client:       core.NewClient(og, core.DefaultRetry),
		ControlPoint: "specimen",
		DOFs:         []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	hist, report, err := c.Run(context.Background())
	if err != nil || !report.Completed {
		t.Fatalf("report = %+v, %v", report, err)
	}
	// Both DOFs responded; the rig's actuators track within servo tolerance
	// of an equivalent numerical model.
	if hist.PeakDisplacement(0) == 0 || hist.PeakDisplacement(1) == 0 {
		t.Fatal("a DOF never moved")
	}
	ref, err := structural.NewAssembly(2,
		structural.Binding{Sub: structural.NewElementSubstructure("a", structural.NewLinearElastic(k1)), DOFs: []int{0}},
		structural.Binding{Sub: structural.NewElementSubstructure("b", structural.NewLinearElastic(k2)), DOFs: []int{1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys := &structural.System{M: cfg.M, K: cfg.K, R: ref.Restore}
	refHist, err := structural.Run(sys, structural.NewExplicitNewmark(), structural.RunOptions{
		Dt: cfg.Dt, Steps: cfg.Steps, Ground: cfg.Ground,
	})
	if err != nil {
		t.Fatal(err)
	}
	for dof := 0; dof < 2; dof++ {
		peak := refHist.PeakDisplacement(dof)
		for i := range refHist.States {
			diff := math.Abs(hist.States[i].D[dof] - refHist.States[i].D[dof])
			if diff > 0.02*peak+1e-6 {
				t.Fatalf("dof %d step %d: rig %g vs model %g", dof, i,
					hist.States[i].D[dof], refHist.States[i].D[dof])
			}
		}
	}
}

// failingIntegrator delegates to a real integrator until step failAt, then
// errors — the shape of a numerical divergence mid-run.
type failingIntegrator struct {
	inner  structural.Integrator
	failAt int
	n      int
}

func (f *failingIntegrator) Init(sys *structural.System, dt float64, d0, v0, p0 []float64) (structural.State, error) {
	return f.inner.Init(sys, dt, d0, v0, p0)
}

func (f *failingIntegrator) Step(p []float64) (structural.State, error) {
	f.n++
	if f.n >= f.failAt {
		return structural.State{}, errors.New("integrator diverged")
	}
	return f.inner.Step(p)
}

func (f *failingIntegrator) Name() string { return "failing-" + f.inner.Name() }

func TestIntegratorFailureReportedOnce(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1e6)}, nil)
	cfg := sdofConfig(1000, 1e6, 10)
	cfg.Integrator = &failingIntegrator{inner: structural.NewExplicitNewmark(), failAt: 3}
	c, err := New(cfg, h.coordSites(core.NoRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	hist, rep, err := c.Run(context.Background())
	if err == nil {
		t.Fatal("run must fail")
	}
	if StepOf(err) != 3 {
		t.Fatalf("failing step = %d, want 3", StepOf(err))
	}
	// The error returned is the one the report carries — produced by finish
	// exactly once.
	if rep.Err != err {
		t.Fatalf("report.Err (%v) is not the returned error (%v)", rep.Err, err)
	}
	if rep.Completed || rep.FailedStep != 3 || rep.StepsCompleted != 2 {
		t.Fatalf("report %+v", rep)
	}
	if hist == nil || hist.Len() != 3 { // init + 2 committed steps
		t.Fatalf("history len %d, want 3", hist.Len())
	}
	failures := 0
	for _, ev := range rep.Telemetry.Events {
		if ev.Component == "coord" && ev.Event == "run.failed" {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("run.failed recorded %d times, want exactly once", failures)
	}
	if got := rep.Telemetry.Counters["coord.steps.failed"]; got != 1 {
		t.Fatalf("coord.steps.failed = %d, want 1", got)
	}
}
