// Pipelined stepping: the §5 "ongoing work" protocol. The classic restore
// path pays ~2.5 WAN round trips per step (a propose barrier, then an
// execute barrier). The pipelined path overlaps adjacent steps instead:
// while step N executes, the coordinator already proposes step N+1 at the
// displacement the integrator is predicted to ask for — both carried to
// each site in ONE batched signed envelope (core.ExecuteAndPropose). In
// steady state a step therefore costs a single round trip, and since the
// propose for the step was issued one step earlier, the wall-clock cost
// trends toward one one-way latency.
//
// Speculation is safe because of the same two properties that make
// retries and checkpoint/resume safe: transaction names are deterministic
// and the server dedupes by name, so a speculative proposal that turns out
// wrong is just cancelled (never executed), and a crash mid-speculation
// leaves records that the revision/mismatch guards in the propose path
// walk past deterministically on resume.
//
// Rollback rule: when the actual displacement of step N+1 differs from the
// prediction by more than Config.PipelineTolerance on any DOF, the
// speculative transactions are cancelled (concurrently, on a
// cancel-delivery context) and the step is re-proposed at the actual
// displacement — correctness never depends on the predictor.
package coord

import (
	"context"
	"fmt"
	"math"
	"sync"

	"neesgrid/internal/core"
	"neesgrid/internal/trace"
)

// defaultPipelineTolerance is the per-DOF speculation tolerance when the
// config leaves it zero: 1 mm, on the order of hydraulic actuator
// positioning accuracy, and comfortably above the ~|a|·dt² truncation
// error of the linear predictor at MOST's dt = 0.01 s (≈ 3e-4 m at 3 m/s²).
const defaultPipelineTolerance = 1e-3

// pipeState is the speculation carried from one restore call to the next.
type pipeState struct {
	// step is the step number the in-flight speculation targets (0 = none).
	step int
	// ok reports that every site accepted the speculative proposal.
	ok bool
	// predicted is the global displacement vector that was proposed.
	predicted []float64
	// names[i] is the transaction name site i holds for the speculation.
	names []string
	// outcomes holds the per-site speculative propose outcomes (the
	// rollback path cancels the accepted ones).
	outcomes []siteOutcome
	// lastD is the previous step's requested displacement — the d_{N-1}
	// of the linear predictor. Nil until the first pipelined step commits.
	lastD []float64
}

// predict extrapolates the displacement the integrator will request next:
// d̂_{N+1} = 2·d_N − d_{N-1}, degrading to constant extrapolation before
// two steps of history exist.
func (c *Coordinator) predict(d []float64) []float64 {
	p := make([]float64, len(d))
	if c.pipe.lastD == nil {
		copy(p, d)
		return p
	}
	for g := range d {
		p[g] = 2*d[g] - c.pipe.lastD[g]
	}
	return p
}

// predictionHolds reports whether the actual displacement d is within the
// speculation tolerance of what was proposed. A negative tolerance never
// holds — the knob that forces a rollback every step for determinism
// debugging.
func (c *Coordinator) predictionHolds(d []float64) bool {
	tol := c.cfg.PipelineTolerance
	if tol < 0 {
		return false
	}
	for g, v := range d {
		if math.Abs(c.pipe.predicted[g]-v) > tol {
			return false
		}
	}
	return true
}

// displacementsWithin reports whether a record's proposed action matches
// the intended displacements within tol on every DOF.
func displacementsWithin(rec *core.Record, want []float64, tol float64) bool {
	if len(rec.Actions) != 1 || len(rec.Actions[0].Displacements) != len(want) {
		return false
	}
	for j, v := range want {
		if math.Abs(rec.Actions[0].Displacements[j]-v) > tol {
			return false
		}
	}
	return true
}

// proposeRevisedChecked is proposeRevised plus the pipelined-mode staleness
// guard: a propose replayed against an ACCEPTED record from a dead
// incarnation may carry that incarnation's *predicted* displacements, not
// the ones being proposed now (the server ignores params on a dedupe
// replay). Executing it would apply the wrong displacement, so a mismatch
// beyond the speculation tolerance cancels the stale transaction and bumps
// the revision. Fresh accepts echo the proposal exactly, so the guard
// never fires on them.
func (c *Coordinator) proposeRevisedChecked(ctx context.Context, cl *core.Client, p *core.Proposal) (*core.Record, error) {
	base := p.Name
	want := p.Actions[0].Displacements
	guardTol := math.Max(0, c.cfg.PipelineTolerance)
	for rev := 0; rev <= maxProposalRevisions; rev++ {
		p.Name = revisionName(base, rev)
		rec, err := cl.Propose(ctx, p)
		if err != nil {
			return nil, err
		}
		switch {
		case rec.State == core.StateCancelled:
			c.tel.Counter("coord.proposals.revised").Inc()
			continue
		case rec.State == core.StateAccepted && !displacementsWithin(rec, want, guardTol):
			if _, cerr := cl.Cancel(ctx, p.Name); cerr != nil {
				return nil, fmt.Errorf("cancel stale speculation %s: %w", p.Name, cerr)
			}
			c.tel.Counter("coord.proposals.stale_cancelled").Inc()
			continue
		}
		return rec, nil
	}
	return nil, fmt.Errorf("transaction %s: %d revisions all cancelled", base, maxProposalRevisions)
}

// localOf projects a global displacement vector onto a site's DOFs.
func localOf(d []float64, dofs []int) []float64 {
	local := make([]float64, len(dofs))
	for j, g := range dofs {
		local[j] = d[g]
	}
	return local
}

// proposeActual runs the pipelined path's explicit propose barrier for one
// step at its actual displacement (the non-speculative Case A), returning
// the per-site transaction names to execute. Any abort — rejection or
// transport failure — cancels the accepted siblings before returning.
func (c *Coordinator) proposeActual(ctx context.Context, step int, d []float64) ([]string, error) {
	proposals := make([]*core.Proposal, len(c.sites))
	outcomes := make([]siteOutcome, len(c.sites))
	var wg sync.WaitGroup
	for i, s := range c.sites {
		proposals[i] = &core.Proposal{
			Name: fmt.Sprintf("%s/step-%d/%s", c.cfg.RunID, step, s.Name),
			Actions: []core.Action{{
				ControlPoint:  s.ControlPoint,
				Displacements: localOf(d, s.DOFs),
			}},
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pctx, sp := c.tracer.Start(ctx, "coord.propose", trace.KindInternal)
			sp.SetAttr("site", c.sites[i].Name)
			rec, err := c.proposeRevisedChecked(pctx, c.sites[i].Client, proposals[i])
			sp.SetError(err)
			sp.End()
			outcomes[i] = siteOutcome{site: i, rec: rec, err: err}
		}(i)
	}
	wg.Wait()

	names := make([]string, len(c.sites))
	for i := range proposals {
		names[i] = proposals[i].Name
	}
	var rejected *siteOutcome
	var abortErr error
	for i := range outcomes {
		o := &outcomes[i]
		if o.err != nil && abortErr == nil {
			abortErr = fmt.Errorf("site %s propose: %w", c.sites[o.site].Name, o.err)
		}
		if o.err == nil && o.rec.State == core.StateRejected && rejected == nil {
			rejected = o
		}
	}
	if rejected != nil || abortErr != nil {
		c.cancelAccepted(ctx, outcomes, names)
		if rejected != nil {
			return nil, fmt.Errorf("site %s rejected proposal: %s: %w",
				c.sites[rejected.site].Name, rejected.rec.Error, core.ErrRejected)
		}
		return nil, abortErr
	}
	return names, nil
}

// restorePipelined is one restoring-force evaluation under the pipelined
// protocol. Steady state ("hit"): the sites already hold accepted
// proposals for this step at the predicted displacement, so the whole step
// is one batched execute+propose(next) envelope. Mispredict or cold start:
// cancel whatever speculation is outstanding, run an explicit propose
// barrier at the actual displacement, then the same batched envelope.
// Unlike FastPath, no proposal is ever executed before every site has
// accepted it — the cross-site accept barrier moved a step earlier, it
// did not disappear.
func (c *Coordinator) restorePipelined(stepCtx context.Context, step int, d []float64, n int) ([]float64, error) {
	hit := c.pipe.step == step && c.pipe.ok && c.predictionHolds(d)
	var execNames []string
	if hit {
		c.tel.Counter("coord.pipeline.hits").Inc()
		execNames = c.pipe.names
	} else {
		if c.pipe.step != 0 {
			// Rollback: the speculation is unusable (mispredicted, partially
			// accepted, or stale) — cancel the accepted transactions so they
			// cannot pin server state, then re-propose for real.
			c.tel.Counter("coord.pipeline.mispredicts").Inc()
			c.cancelAccepted(stepCtx, c.pipe.outcomes, c.pipe.names)
		}
		names, err := c.proposeActual(stepCtx, step, d)
		if err != nil {
			c.pipe.step = 0
			return nil, err
		}
		execNames = names
	}
	c.pipe.step = 0 // the speculation (if any) is consumed

	// Batch phase: execute this step and, unless it is the last, propose
	// the next one speculatively — one envelope per site.
	last := step >= c.cfg.Steps
	var predicted []float64
	if !last {
		predicted = c.predict(d)
	}
	outcomes := make([]siteOutcome, len(c.sites))
	specOutcomes := make([]siteOutcome, len(c.sites))
	specNames := make([]string, len(c.sites))
	var wg sync.WaitGroup
	for i := range c.sites {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ectx, sp := c.tracer.Start(stepCtx, "coord.pipebatch", trace.KindInternal)
			sp.SetAttr("site", c.sites[i].Name)
			defer sp.End()
			if last {
				rec, err := c.sites[i].Client.Execute(ectx, execNames[i])
				sp.SetError(err)
				outcomes[i] = siteOutcome{site: i, rec: rec, err: err}
				return
			}
			s := c.sites[i]
			p := &core.Proposal{
				Name: fmt.Sprintf("%s/step-%d/%s", c.cfg.RunID, step+1, s.Name),
				Actions: []core.Action{{
					ControlPoint:  s.ControlPoint,
					Displacements: localOf(predicted, s.DOFs),
				}},
			}
			specNames[i] = p.Name
			execRec, propRec, err := s.Client.ExecuteAndPropose(ectx, execNames[i], p)
			sp.SetError(err)
			execErr := err
			if execRec != nil {
				// The execute half landed; any error belongs to the
				// speculative propose, which merely voids the speculation.
				execErr = nil
			}
			outcomes[i] = siteOutcome{site: i, rec: execRec, err: execErr}
			specOutcomes[i] = siteOutcome{site: i, rec: propRec, err: err}
		}(i)
	}
	wg.Wait()

	forces := make([]float64, n)
	for i := range outcomes {
		o := &outcomes[i]
		var gerr error
		s := c.sites[o.site]
		switch {
		case o.err != nil:
			gerr = fmt.Errorf("site %s execute: %w", s.Name, o.err)
		case o.rec.State != core.StateExecuted:
			gerr = fmt.Errorf("site %s transaction %s: %s: %w",
				s.Name, o.rec.Name, o.rec.Error, core.ErrFailed)
		case len(o.rec.Results) != 1 || len(o.rec.Results[0].Forces) != len(s.DOFs):
			gerr = fmt.Errorf("site %s returned malformed results", s.Name)
		}
		if gerr != nil {
			// The step is dead; take the speculative proposals accepted in
			// this same batch down with it, or they orphan.
			c.cancelAccepted(stepCtx, specOutcomes, specNames)
			return nil, gerr
		}
		for j, g := range s.DOFs {
			forces[g] += o.rec.Results[0].Forces[j]
		}
	}

	if !last {
		ok := true
		for i := range specOutcomes {
			o := &specOutcomes[i]
			if o.err != nil || o.rec == nil || o.rec.State != core.StateAccepted {
				ok = false
				break
			}
		}
		c.pipe.step = step + 1
		c.pipe.ok = ok
		c.pipe.predicted = predicted
		c.pipe.names = specNames
		c.pipe.outcomes = specOutcomes
	}
	c.pipe.lastD = append(c.pipe.lastD[:0], d...)
	return forces, nil
}
