package coord

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"neesgrid/internal/core"
	"neesgrid/internal/structural"
)

func pipelineSprings() []structural.Element {
	return []structural.Element{
		structural.NewLinearElastic(900),
		structural.NewLinearElastic(1100),
	}
}

func runPipelineConfig(t *testing.T, cfg Config) (*structural.History, *Report) {
	t.Helper()
	h := newHarness(t, pipelineSprings(), nil)
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	hist, report, err := c.Run(context.Background())
	if err != nil || !report.Completed {
		t.Fatalf("run = %+v, %v", report, err)
	}
	return hist, report
}

func TestPipelinedMatchesBaselineWithinTolerance(t *testing.T) {
	// The pipelined protocol executes the PREDICTED displacement whenever
	// the prediction holds, so the trajectory may drift from the baseline —
	// but never beyond what the speculation tolerance allows per step.
	const steps = 100
	base, _ := runPipelineConfig(t, sdofConfig(100, 2000, steps))
	cfg := sdofConfig(100, 2000, steps)
	cfg.Pipeline = true
	hist, report := runPipelineConfig(t, cfg)

	peak := base.PeakDisplacement(0)
	if peak <= 0 {
		t.Fatal("flat baseline")
	}
	for i := range base.States {
		diff := math.Abs(hist.States[i].D[0] - base.States[i].D[0])
		if diff > 0.02*peak {
			t.Fatalf("step %d: pipelined %g vs baseline %g (diff %g, peak %g)",
				i, hist.States[i].D[0], base.States[i].D[0], diff, peak)
		}
	}
	// A smooth sine at dt=0.01 predicts well: the run must be dominated by
	// single-envelope hit steps, not rollbacks.
	hits := report.Telemetry.Counters["coord.pipeline.hits"]
	miss := report.Telemetry.Counters["coord.pipeline.mispredicts"]
	if hits < steps/2 {
		t.Fatalf("pipeline hits = %d of %d steps (mispredicts %d)", hits, steps, miss)
	}
}

func TestPipelinedForcedRollbackIsBitExact(t *testing.T) {
	// A negative tolerance voids every prediction, so each step rolls back
	// and re-proposes at the ACTUAL displacement — the trajectory must then
	// be bit-identical to the classic protocol. This is the exactness knob
	// (and it exercises the rollback + revision path on every step).
	const steps = 60
	base, _ := runPipelineConfig(t, sdofConfig(100, 2000, steps))
	cfg := sdofConfig(100, 2000, steps)
	cfg.Pipeline = true
	cfg.PipelineTolerance = -1
	hist, report := runPipelineConfig(t, cfg)

	for i := range base.States {
		if hist.States[i].D[0] != base.States[i].D[0] || hist.States[i].F[0] != base.States[i].F[0] {
			t.Fatalf("step %d: forced-rollback pipelined run diverged from baseline", i)
		}
	}
	if report.Telemetry.Counters["coord.pipeline.hits"] != 0 {
		t.Fatal("negative tolerance must never record a hit")
	}
	if report.Telemetry.Counters["coord.pipeline.mispredicts"] == 0 {
		t.Fatal("no rollbacks recorded")
	}
}

func TestPipelinedRejectionAborts(t *testing.T) {
	pol := []*core.SitePolicy{{PointLimits: map[string]core.Limits{
		"drift": {MaxDisplacement: 1e-9},
	}}}
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, pol)
	cfg := sdofConfig(100, 1000, 30)
	cfg.Pipeline = true
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err == nil || report.Completed {
		t.Fatalf("pipelined run should abort on rejection: %+v", report)
	}
	if !IsRejection(err) {
		t.Fatalf("err = %v, want rejection", err)
	}
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("err = %v, want core.ErrRejected identity", err)
	}
}

func TestPipelinedRecoversTransientFaults(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, nil)
	cfg := sdofConfig(100, 1000, 60)
	cfg.Pipeline = true
	cfg.OnStep = func(st structural.State) {
		if st.Step == 20 || st.Step == 40 {
			h.sites[0].injector.FailNext(2)
		}
	}
	c, err := New(cfg, h.coordSites(core.DefaultRetry)...)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := c.Run(context.Background())
	if err != nil || !report.Completed {
		t.Fatalf("report = %+v, %v", report, err)
	}
	if report.Recovered == 0 {
		t.Fatal("pipelined run did not recover injected faults")
	}
}

func TestPipelineFastPathMutuallyExclusive(t *testing.T) {
	h := newHarness(t, []structural.Element{structural.NewLinearElastic(1000)}, nil)
	cfg := sdofConfig(100, 1000, 10)
	cfg.Pipeline = true
	cfg.FastPath = true
	if _, err := New(cfg, h.coordSites(core.NoRetry)...); err == nil {
		t.Fatal("Pipeline+FastPath must be rejected")
	}
}

// Checkpoint/resume under the pipelined protocol with forced rollback: the
// crash leaves an orphaned speculative proposal at the site, holding the
// dead incarnation's PREDICTED displacement. The resumed run must cancel
// that stale accept (the displacement-mismatch guard), walk to a revision,
// and still reproduce the classic trajectory bit-for-bit on a hysteretic
// (path-dependent) specimen.
func TestPipelinedCheckpointResumeExact(t *testing.T) {
	// Kill at the step right after a checkpoint: the dead incarnation's
	// last batch accepted a speculation for step 31, so the resumed run's
	// very first propose replays that stale accept.
	const steps, killAt = 60, 31

	refH := newHarness(t, []structural.Element{bilinearElement()}, nil)
	refHist, _ := mustRun(t, checkpointConfig(steps), refH.coordSites(core.DefaultRetry))

	h := newHarness(t, []structural.Element{bilinearElement()}, nil)
	path := filepath.Join(t.TempDir(), "coord.ckpt")
	mkCfg := func() Config {
		cfg := checkpointConfig(steps)
		cfg.Pipeline = true
		cfg.PipelineTolerance = -1 // exactness mode: every step executes the actual displacement
		cfg.Checkpoint = &CheckpointConfig{Path: path, Every: 10}
		return cfg
	}
	killErr := errors.New("chaos: scheduled coordinator kill")
	cfg := mkCfg()
	cfg.Interrupt = func(s int) error {
		if s == killAt {
			return killErr
		}
		return nil
	}
	sites := h.coordSites(core.DefaultRetry)
	c1, err := New(cfg, sites...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c1.Run(context.Background()); !errors.Is(err, killErr) {
		t.Fatalf("run error = %v, want the interrupt error", err)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := mkCfg()
	cfg2.Resume = cp
	hist2, rep2 := mustRun(t, cfg2, sites)
	if !rep2.Completed || rep2.StepsCompleted != steps {
		t.Fatalf("resumed report = %+v", rep2)
	}
	for _, st := range hist2.States {
		if !sameState(refHist.States[st.Step], st) {
			t.Fatalf("post-resume step %d diverged from reference:\nref %+v\ngot %+v",
				st.Step, refHist.States[st.Step], st)
		}
	}
	// The dead incarnation's orphaned speculation replayed as a stale
	// accept; the guard must have cancelled it rather than execute the
	// wrong displacement.
	if got := rep2.Telemetry.Counters["coord.proposals.stale_cancelled"]; got == 0 {
		t.Fatal("stale speculative accept was never cancelled on resume")
	}
}
