package core

import (
	"context"
	"fmt"
	"time"

	"neesgrid/internal/ogsi"
)

// ExecuteAndPropose fuses execute(execName) with a speculative
// propose(next) into one batched signed envelope — both NTCP phases of
// adjacent steps cross the WAN in a single round trip. This is the client
// half of the pipelined stepping protocol: the coordinator commits step N
// and opens step N+1 at the predicted displacement without paying a second
// latency.
//
// The whole envelope is retried under the client's retry policy on
// transport failures and on "unavailable" backpressure from either item:
// name-based dedupe makes the replay safe — a half that already finished
// replays its terminal record, a half that never arrived runs fresh.
//
// Both records are returned even when err is non-nil (nil where that item
// faulted): a failed execute alongside an accepted speculative propose
// means the caller must still cancel the speculative transaction, so it
// needs that record.
func (c *Client) ExecuteAndPropose(ctx context.Context, execName string, next *Proposal) (*Record, *Record, error) {
	ops := []ogsi.BatchOp{
		{Op: "execute", Params: nameParams{Name: execName}},
		{Op: "propose", Params: next},
	}
	var lastErr error
	attempts := c.Retry.attempts()
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.retries.Inc()
			select {
			case <-time.After(c.Retry.delay(try - 1)):
			case <-ctx.Done():
				return nil, nil, fmt.Errorf("ntcp: batch: %w (last error: %v)", ctx.Err(), lastErr)
			}
		}
		c.calls.Inc()
		start := time.Now()
		results, err := c.og.CallBatch(ctx, c.ServiceName, ops)
		if err != nil {
			c.failedRTT.ObserveDuration(time.Since(start))
			lastErr = err
			if !transient(err) || ctx.Err() != nil {
				return nil, nil, err
			}
			continue
		}
		c.observeRTT(ctx, time.Since(start))
		var execRec, propRec *Record
		execErr := results[0].Err()
		propErr := results[1].Err()
		if execErr == nil {
			execRec = new(Record)
			if derr := results[0].Decode(execRec); derr != nil {
				return nil, nil, derr
			}
		}
		if propErr == nil {
			propRec = new(Record)
			if derr := results[1].Decode(propRec); derr != nil {
				return execRec, nil, derr
			}
		}
		// "Still executing" / draining backpressure on either item retries
		// the whole envelope; the finished half just replays from the
		// dedupe table.
		if transient(execErr) || transient(propErr) {
			if execErr != nil {
				lastErr = execErr
			} else {
				lastErr = propErr
			}
			continue
		}
		if try > 0 {
			c.recovered.Inc()
			c.tel.Event("ntcp-client", "recovered", map[string]any{"op": "batch", "attempt": try + 1})
		}
		switch {
		case execErr != nil:
			return nil, propRec, fmt.Errorf("ntcp: execute %s: %w", execName, execErr)
		case propErr != nil:
			return execRec, nil, fmt.Errorf("ntcp: propose %s: %w", next.Name, propErr)
		}
		return execRec, propRec, nil
	}
	return nil, nil, fmt.Errorf("ntcp: batch failed after %d attempts: %w", attempts, lastErr)
}
