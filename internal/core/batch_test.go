package core

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"

	"neesgrid/internal/faultnet"
	"neesgrid/internal/ogsi"
)

func TestExecuteAndProposeOneEnvelope(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	ct := &countingTransport{}
	cl := f.client(NoRetry, &http.Client{Transport: ct})
	ctx := context.Background()

	if _, err := cl.Propose(ctx, proposal("s1", 0.03)); err != nil {
		t.Fatal(err)
	}
	before := ct.n
	execRec, propRec, err := cl.ExecuteAndPropose(ctx, "s1", proposal("s2", 0.04))
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.n - before; got != 1 {
		t.Fatalf("batched step crossed the wire %d times, want 1", got)
	}
	if execRec.State != StateExecuted || execRec.Results[0].Forces[0] != 3 {
		t.Fatalf("exec record = %+v", execRec)
	}
	if propRec.State != StateAccepted || propRec.Name != "s2" {
		t.Fatalf("speculative record = %+v", propRec)
	}
	// The speculative transaction is live: executing it completes the step.
	rec, err := cl.Execute(ctx, "s2")
	if err != nil || rec.State != StateExecuted || rec.Results[0].Forces[0] != 4 {
		t.Fatalf("execute speculation = %+v, %v", rec, err)
	}
}

func TestExecuteAndProposeRetriesAsOneUnit(t *testing.T) {
	var mu sync.Mutex
	executions := 0
	plugin := PluginFunc(func(_ context.Context, actions []Action) ([]Result, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{1}}}, nil
	})
	f := newFixture(t, plugin, nil)
	ctx := context.Background()
	// Seed the transaction to execute with a reliable client…
	if _, err := f.client(NoRetry, nil).Propose(ctx, proposal("s1", 0.01)); err != nil {
		t.Fatal(err)
	}
	// …then batch through a transport that drops the first envelope.
	ft := &flakyTransport{failures: 1}
	cl := f.client(DefaultRetry, &http.Client{Transport: ft})
	execRec, propRec, err := cl.ExecuteAndPropose(ctx, "s1", proposal("s2", 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if execRec.State != StateExecuted || propRec.State != StateAccepted {
		t.Fatalf("records = %+v, %+v", execRec, propRec)
	}
	st := cl.Stats()
	if st.Retries == 0 || st.Recovered == 0 {
		t.Fatalf("stats = %+v, want a recovered retry", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("retried batch executed the action %d times, want 1", executions)
	}
}

func TestExecuteAndProposeSpeculativeRejection(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.1}}}
	f := newFixture(t, springPlugin(100), pol)
	cl := f.client(NoRetry, nil)
	ctx := context.Background()
	if _, err := cl.Propose(ctx, proposal("s1", 0.01)); err != nil {
		t.Fatal(err)
	}
	execRec, propRec, err := cl.ExecuteAndPropose(ctx, "s1", proposal("s2", 0.5))
	if err != nil {
		t.Fatalf("a rejected speculation is an outcome, not an envelope error: %v", err)
	}
	if execRec.State != StateExecuted {
		t.Fatalf("exec record = %+v", execRec)
	}
	if propRec.State != StateRejected {
		t.Fatalf("speculative record = %+v", propRec)
	}
}

func TestExecuteAndProposeExecuteFaultStillReturnsSpeculation(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	cl := f.client(NoRetry, nil)
	ctx := context.Background()
	if _, err := cl.Propose(ctx, proposal("s1", 0.01)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, "s1"); err != nil {
		t.Fatal(err)
	}
	execRec, propRec, err := cl.ExecuteAndPropose(ctx, "s1", proposal("s2", 0.02))
	if !ogsi.IsRemoteCode(err, ogsi.CodeConflict) {
		t.Fatalf("executing a cancelled transaction should conflict, got %v", err)
	}
	if execRec != nil {
		t.Fatalf("exec record = %+v", execRec)
	}
	// The speculative half was accepted; the caller needs its record to
	// cancel it.
	if propRec == nil || propRec.State != StateAccepted {
		t.Fatalf("speculative record = %+v", propRec)
	}
	if _, err := cl.Cancel(ctx, "s2"); err != nil {
		t.Fatal(err)
	}
}

func TestBatchedEnvelopePaysInjectorOnce(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	in := faultnet.NewInjector(faultnet.LAN)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransportOver(in, ogsi.NewPinnedTransport(1))}
	cl := NewClient(og, NoRetry)
	ctx := context.Background()

	if _, err := cl.Propose(ctx, proposal("s1", 0.01)); err != nil {
		t.Fatal(err)
	}
	before := in.Calls()
	if _, _, err := cl.ExecuteAndPropose(ctx, "s1", proposal("s2", 0.02)); err != nil {
		t.Fatal(err)
	}
	// Two NTCP operations, one envelope: latency (and failure) injection is
	// charged per envelope, so the batch pays the WAN exactly once.
	if got := in.Calls() - before; got != 1 {
		t.Fatalf("batch charged the injector %d times, want 1", got)
	}
}

func TestExecuteAndProposeTransportExhaustion(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	ft := &flakyTransport{failures: 100}
	cl := f.client(RetryPolicy{Attempts: 3, Backoff: 1}, &http.Client{Transport: ft})
	_, _, err := cl.ExecuteAndPropose(context.Background(), "s1", proposal("s2", 0.01))
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if ft.attempts != 3 {
		t.Fatalf("made %d attempts, want 3", ft.attempts)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
