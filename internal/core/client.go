package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"neesgrid/internal/ogsi"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// RetryPolicy controls the client side of NTCP fault tolerance: how many
// times a request is re-sent across transient failures. Because the server
// deduplicates by transaction name, retries are safe — the same action is
// never executed twice.
type RetryPolicy struct {
	// Attempts is the total number of tries per request (1 = no retry).
	Attempts int
	// Backoff is the delay before the first retry; it doubles per retry.
	Backoff time.Duration
	// MaxBackoff caps the growing delay.
	MaxBackoff time.Duration
}

// DefaultRetry is the fault-tolerant profile used by MOST-class
// coordinators.
var DefaultRetry = RetryPolicy{Attempts: 5, Backoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}

// NoRetry disables retries — the configuration the public MOST run's
// coordinator effectively had ("the simulation coordinator had not been
// coded to take advantage of all the fault-tolerance features"), which is
// why a final network error ended the experiment at step 1493.
var NoRetry = RetryPolicy{Attempts: 1}

func (r RetryPolicy) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

// defaultMaxBackoff caps exponential growth when a policy sets no
// MaxBackoff. Without a cap, repeated doubling overflows time.Duration to a
// negative value around retry 38, and time.After(negative) fires
// immediately — turning backoff into a hot retry loop.
const defaultMaxBackoff = 30 * time.Second

func (r RetryPolicy) delay(retry int) time.Duration {
	d := r.Backoff
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = defaultMaxBackoff
	}
	// Stop doubling at the cap: the loop exits before d can overflow.
	for i := 0; i < retry && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// ClientStats counts client activity, including how many transient failures
// the retry loop recovered from — the number §3.4 reports qualitatively
// ("several transient network failures").
type ClientStats struct {
	Calls     int
	Retries   int
	Recovered int // calls that ultimately succeeded after ≥1 retry
}

// Client drives a remote NTCP server. Safe for concurrent use. Counters and
// the round-trip histogram live in a telemetry registry (shared with the
// coordinator when wired, private otherwise); Stats reads them back, so the
// pre-telemetry API is unchanged.
type Client struct {
	og *ogsi.Client
	// ServiceName defaults to "ntcp".
	ServiceName string
	Retry       RetryPolicy

	tel       *telemetry.Registry
	calls     *telemetry.Counter
	retries   *telemetry.Counter
	recovered *telemetry.Counter
	rtt       *telemetry.Histogram
	failedRTT *telemetry.Histogram
	siteRTT   *telemetry.Histogram // per-site split, set by LabelSite
}

// NewClient wraps an OGSI client as an NTCP client with a private telemetry
// registry.
func NewClient(og *ogsi.Client, retry RetryPolicy) *Client {
	return NewClientWithTelemetry(og, retry, nil)
}

// NewClientWithTelemetry wraps an OGSI client as an NTCP client recording
// into reg (nil allocates a private registry). Metric names: ntcp.client.*.
func NewClientWithTelemetry(og *ogsi.Client, retry RetryPolicy, reg *telemetry.Registry) *Client {
	reg = telemetry.OrNew(reg)
	return &Client{
		og:          og,
		ServiceName: "ntcp",
		Retry:       retry,
		tel:         reg,
		calls:       reg.Counter("ntcp.client.calls"),
		retries:     reg.Counter("ntcp.client.retries"),
		recovered:   reg.Counter("ntcp.client.recovered"),
		rtt:         reg.Histogram("ntcp.client.rtt.seconds"),
		failedRTT:   reg.Histogram("ntcp.client.failed_rtt.seconds"),
	}
}

// Telemetry exposes the client's metrics registry.
func (c *Client) Telemetry() *telemetry.Registry { return c.tel }

// LabelSite additionally records successful round trips into a per-site
// histogram ntcp.client.<site>.rtt.seconds. The MOST coordinator shares
// one registry across all its site clients; the label is what lets the
// obs aggregator and `mostctl top` show each site's RTT quantiles
// separately while the unlabeled histogram keeps the experiment-wide
// distribution. Returns c for chaining.
func (c *Client) LabelSite(site string) *Client {
	if site != "" {
		c.siteRTT = c.tel.Histogram("ntcp.client." + site + ".rtt.seconds")
	}
	return c
}

// observeRTT records one successful round trip into the shared (and, when
// labeled, per-site) histogram, attaching the calling step's trace ID as
// the exemplar so a slow p99 resolves to a `mostctl trace` timeline.
func (c *Client) observeRTT(ctx context.Context, d time.Duration) {
	traceID := trace.SpanContextFromContext(ctx).TraceID.String()
	c.rtt.ObserveDurationExemplar(d, traceID)
	if c.siteRTT != nil {
		c.siteRTT.ObserveDurationExemplar(d, traceID)
	}
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:     int(c.calls.Value()),
		Retries:   int(c.retries.Value()),
		Recovered: int(c.recovered.Value()),
	}
}

// transient reports whether an error is worth retrying: transport failures
// and "still executing" backpressure are; service faults (policy
// rejections, conflicts, unknown names) are not.
func transient(err error) bool {
	if err == nil {
		return false
	}
	var re *ogsi.RemoteError
	if errors.As(err, &re) {
		return re.Code == ogsi.CodeUnavailable
	}
	return true // transport-level failure
}

// call performs one operation under the retry policy.
func (c *Client) call(ctx context.Context, op string, params any) (*Record, error) {
	var lastErr error
	attempts := c.Retry.attempts()
	for try := 0; try < attempts; try++ {
		if try > 0 {
			c.retries.Inc()
			select {
			case <-time.After(c.Retry.delay(try - 1)):
			case <-ctx.Done():
				return nil, fmt.Errorf("ntcp: %s: %w (last error: %v)", op, ctx.Err(), lastErr)
			}
		}
		c.calls.Inc()
		var rec Record
		start := time.Now()
		err := c.og.Call(ctx, c.ServiceName, op, params, &rec)
		if err == nil {
			// The round-trip histogram is success-only: a retry storm's
			// instantly-failing attempts would otherwise drag p99 for the
			// round trips that actually completed.
			c.observeRTT(ctx, time.Since(start))
			if try > 0 {
				c.recovered.Inc()
				c.tel.Event("ntcp-client", "recovered", map[string]any{"op": op, "attempt": try + 1})
			}
			return &rec, nil
		}
		c.failedRTT.ObserveDuration(time.Since(start))
		lastErr = err
		if !transient(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("ntcp: %s failed after %d attempts: %w", op, attempts, lastErr)
}

// Propose submits a proposal and returns the resulting record (accepted or
// rejected).
func (c *Client) Propose(ctx context.Context, p *Proposal) (*Record, error) {
	return c.call(ctx, "propose", p)
}

// Execute runs an accepted transaction and returns the record with results
// (state executed) or the failure record (state failed).
func (c *Client) Execute(ctx context.Context, name string) (*Record, error) {
	return c.call(ctx, "execute", nameParams{Name: name})
}

// Cancel aborts an accepted transaction.
func (c *Client) Cancel(ctx context.Context, name string) (*Record, error) {
	return c.call(ctx, "cancel", nameParams{Name: name})
}

// Get fetches a transaction record without side effects.
func (c *Client) Get(ctx context.Context, name string) (*Record, error) {
	return c.call(ctx, "get", nameParams{Name: name})
}

// ErrRejected is returned by Run when the proposal is rejected.
var ErrRejected = errors.New("ntcp: proposal rejected")

// ErrFailed is returned by Run when execution fails.
var ErrFailed = errors.New("ntcp: execution failed")

// Run is the full propose→execute cycle one MS-PSDS step performs against
// one site. On rejection it returns the record joined with ErrRejected so
// the coordinator can cancel sibling transactions at other sites.
func (c *Client) Run(ctx context.Context, p *Proposal) (*Record, error) {
	rec, err := c.Propose(ctx, p)
	if err != nil {
		return nil, err
	}
	switch rec.State {
	case StateRejected:
		return rec, fmt.Errorf("%w: %s", ErrRejected, rec.Error)
	case StateAccepted:
	case StateExecuted:
		return rec, nil // deduplicated replay of a finished transaction
	case StateFailed:
		return rec, fmt.Errorf("%w: %s", ErrFailed, rec.Error)
	default:
		// Executing or another transient state: fall through to Execute,
		// which waits for the outcome.
	}
	rec, err = c.Execute(ctx, p.Name)
	if err != nil {
		return rec, err
	}
	if rec.State == StateFailed {
		return rec, fmt.Errorf("%w: %s", ErrFailed, rec.Error)
	}
	return rec, nil
}
