package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/ogsi"
)

// fixture wires an NTCP server into a real container and returns a client
// factory.
type fixture struct {
	ca     *gsi.Authority
	trust  *gsi.TrustStore
	addr   string
	server *Server
	cred   *gsi.Credential
}

func newFixture(t *testing.T, plugin Plugin, policy *SitePolicy) *fixture {
	t.Helper()
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	serverCred, _ := ca.Issue("/O=NEES/CN=site", time.Hour)
	clientCred, _ := ca.Issue("/O=NEES/CN=coordinator", time.Hour)
	gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=coordinator": "coord"})
	cont := ogsi.NewContainer(serverCred, trust, gm)
	srv := NewServer(plugin, policy, ServerOptions{})
	cont.AddService(srv.Service())
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	})
	return &fixture{ca: ca, trust: trust, addr: addr, server: srv, cred: clientCred}
}

func (f *fixture) ogsiClient() *ogsi.Client {
	return ogsi.NewClient("http://"+f.addr, f.cred, f.trust)
}

func (f *fixture) client(retry RetryPolicy, hc *http.Client) *Client {
	og := f.ogsiClient()
	og.HTTP = hc
	return NewClient(og, retry)
}

// flakyTransport fails the first n round trips with a transport error.
type flakyTransport struct {
	mu       sync.Mutex
	failures int
	attempts int
	inner    http.RoundTripper
}

func (ft *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	ft.attempts++
	fail := ft.failures > 0
	if fail {
		ft.failures--
	}
	ft.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("injected network failure")
	}
	inner := ft.inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(r)
}

func TestClientRunOverNetwork(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	cl := f.client(NoRetry, nil)
	rec, err := cl.Run(context.Background(), proposal("step-1", 0.03))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted || rec.Results[0].Forces[0] != 3 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	ft := &flakyTransport{failures: 2}
	cl := f.client(DefaultRetry, &http.Client{Transport: ft})
	rec, err := cl.Run(context.Background(), proposal("step-1", 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %s", rec.State)
	}
	st := cl.Stats()
	if st.Retries == 0 || st.Recovered == 0 {
		t.Fatalf("stats = %+v, want recovered retries", st)
	}
}

func TestClientNoRetryFailsLikePublicMOSTRun(t *testing.T) {
	// E2 shape: a coordinator without retry dies on the first transport
	// failure, exactly as the public MOST run ended at step 1493.
	f := newFixture(t, springPlugin(100), nil)
	ft := &flakyTransport{failures: 1}
	cl := f.client(NoRetry, &http.Client{Transport: ft})
	_, err := cl.Run(context.Background(), proposal("step-1493", 0.01))
	if err == nil {
		t.Fatal("no-retry client should fail on a transport fault")
	}
}

func TestClientRetryIsAtMostOnce(t *testing.T) {
	// The proposal lands; the response is lost; the retry must not apply
	// the action twice. We assert via the server-side execution counter.
	var mu sync.Mutex
	executions := 0
	plugin := PluginFunc(func(_ context.Context, actions []Action) ([]Result, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{1}}}, nil
	})
	f := newFixture(t, plugin, nil)
	cl := f.client(DefaultRetry, nil)
	ctx := context.Background()
	// Simulate a lost response by calling Execute twice directly.
	if _, err := cl.Propose(ctx, proposal("s", 0.01)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Execute(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Execute(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("action executed %d times, want 1", executions)
	}
}

func TestClientRunRejectedPropagates(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.01}}}
	f := newFixture(t, springPlugin(100), pol)
	cl := f.client(DefaultRetry, nil)
	rec, err := cl.Run(context.Background(), proposal("too-big", 0.5))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if rec == nil || rec.State != StateRejected {
		t.Fatalf("record = %+v", rec)
	}
	// Policy rejections must not be retried.
	if cl.Stats().Retries != 0 {
		t.Fatalf("client retried a policy rejection: %+v", cl.Stats())
	}
}

func TestClientRunFailedExecution(t *testing.T) {
	plugin := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		return nil, fmt.Errorf("actuator fault")
	})
	f := newFixture(t, plugin, nil)
	cl := f.client(NoRetry, nil)
	_, err := cl.Run(context.Background(), proposal("s", 0.01))
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestClientCancelOverNetwork(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	cl := f.client(NoRetry, nil)
	ctx := context.Background()
	if _, err := cl.Propose(ctx, proposal("c", 0.01)); err != nil {
		t.Fatal(err)
	}
	rec, err := cl.Cancel(ctx, "c")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCancelled {
		t.Fatalf("state = %s", rec.State)
	}
}

func TestClientGetOverNetwork(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	cl := f.client(NoRetry, nil)
	ctx := context.Background()
	_, _ = cl.Propose(ctx, proposal("g", 0.01))
	rec, err := cl.Get(ctx, "g")
	if err != nil || rec.Name != "g" {
		t.Fatalf("Get = %+v, %v", rec, err)
	}
}

func TestClientRetryExhaustion(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	ft := &flakyTransport{failures: 100}
	cl := f.client(RetryPolicy{Attempts: 3, Backoff: time.Millisecond}, &http.Client{Transport: ft})
	_, err := cl.Propose(context.Background(), proposal("x", 0.01))
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if ft.attempts != 3 {
		t.Fatalf("made %d attempts, want 3", ft.attempts)
	}
}

func TestClientContextCancelStopsRetry(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	ft := &flakyTransport{failures: 100}
	cl := f.client(RetryPolicy{Attempts: 50, Backoff: 20 * time.Millisecond}, &http.Client{Transport: ft})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Propose(ctx, proposal("x", 0.01))
	if err == nil {
		t.Fatal("expected failure")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("retry loop ignored context cancellation")
	}
}

func TestRetryPolicyDelays(t *testing.T) {
	r := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	if d := r.delay(0); d != 10*time.Millisecond {
		t.Fatalf("delay(0) = %v", d)
	}
	if d := r.delay(1); d != 20*time.Millisecond {
		t.Fatalf("delay(1) = %v", d)
	}
	if d := r.delay(3); d != 35*time.Millisecond {
		t.Fatalf("delay(3) = %v, want capped", d)
	}
	zero := RetryPolicy{}
	if zero.attempts() != 1 {
		t.Fatal("zero policy should mean one attempt")
	}
	if zero.delay(0) <= 0 {
		t.Fatal("zero policy delay must be positive")
	}
}

func TestTransientClassification(t *testing.T) {
	if transient(nil) {
		t.Fatal("nil is not transient")
	}
	if !transient(fmt.Errorf("dial tcp: connection refused")) {
		t.Fatal("transport errors are transient")
	}
	if transient(&ogsi.RemoteError{Code: ogsi.CodePolicyReject}) {
		t.Fatal("policy rejections are not transient")
	}
	if !transient(&ogsi.RemoteError{Code: ogsi.CodeUnavailable}) {
		t.Fatal("unavailable is transient")
	}
}
