package core

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/faultnet"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/telemetry"
)

// slowPlugin blocks each execution until release fires (or ctx expires),
// modelling an actuator mid-move at drain time.
type slowPlugin struct {
	release chan struct{}
	started chan struct{} // one tick per execution entering the plugin
}

func newSlowPlugin() *slowPlugin {
	return &slowPlugin{release: make(chan struct{}), started: make(chan struct{}, 16)}
}

func (p *slowPlugin) Validate(context.Context, []Action) error { return nil }

func (p *slowPlugin) Execute(ctx context.Context, actions []Action) ([]Result, error) {
	p.started <- struct{}{}
	select {
	case <-p.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	results := make([]Result, len(actions))
	for i, a := range actions {
		results[i] = Result{ControlPoint: a.ControlPoint,
			Displacements: a.Displacements,
			Forces:        []float64{0}}
	}
	return results, nil
}

func events(reg *telemetry.Registry, name string) []telemetry.Event {
	var out []telemetry.Event
	for _, e := range reg.Events().Events() {
		if e.Event == name {
			out = append(out, e)
		}
	}
	return out
}

// An in-flight execution that finishes inside the drain deadline commits
// normally: the drain waits, the transaction ends Executed, and the journal
// records a clean drain.
func TestStopWaitsForInFlightExecution(t *testing.T) {
	plug := newSlowPlugin()
	s := NewServer(plug, nil, ServerOptions{})
	ctx := context.Background()
	if _, err := s.Propose(ctx, "coord", proposal("drain-wait", 0.01)); err != nil {
		t.Fatal(err)
	}
	startDetachedExecution(t, s, "drain-wait")
	<-plug.started

	stopCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Stop(stopCtx) }()

	// While draining: not healthy, and new proposals are refused with the
	// retryable code.
	waitFor(t, func() bool { return s.Healthy() != nil })
	if _, err := s.Propose(ctx, "coord", proposal("too-late", 0.01)); !isUnavailable(err) {
		t.Fatalf("Propose during drain = %v, want CodeUnavailable", err)
	}

	close(plug.release) // the actuator move completes within the deadline
	if err := <-done; err != nil {
		t.Fatalf("Stop: %v", err)
	}
	rec, err := s.Get("drain-wait")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state after drain = %v, want Executed", rec.State)
	}
	evs := events(s.Telemetry(), "drain-complete")
	if len(evs) != 1 {
		t.Fatalf("drain-complete events = %d, want 1", len(evs))
	}
	if evs[0].Fields["cancelled"] != int(0) && evs[0].Fields["cancelled"] != 0 {
		t.Fatalf("drain-complete cancelled = %v, want 0", evs[0].Fields["cancelled"])
	}
	if len(events(s.Telemetry(), "drain-cancelled")) != 0 {
		t.Fatal("clean drain should not journal a cancellation")
	}
}

// An execution that outlives the drain deadline is cancelled through the
// server's base context and journalled as a drain survivor; the
// transaction fails rather than hanging.
func TestStopCancelsOverdueExecutionAndJournals(t *testing.T) {
	plug := newSlowPlugin() // release never fires: only ctx ends it
	s := NewServer(plug, nil, ServerOptions{})
	ctx := context.Background()
	if _, err := s.Propose(ctx, "coord", proposal("drain-overdue", 0.01)); err != nil {
		t.Fatal(err)
	}
	startDetachedExecution(t, s, "drain-overdue")
	<-plug.started

	stopCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := s.Stop(stopCtx); err != nil {
		// The plugin honours cancellation, so Stop must succeed after
		// cancelling the survivor.
		t.Fatalf("Stop: %v", err)
	}
	rec, err := s.Get("drain-overdue")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFailed {
		t.Fatalf("state after cancelled drain = %v, want Failed", rec.State)
	}
	if !strings.Contains(rec.Error, context.Canceled.Error()) {
		t.Fatalf("record error = %q, want context cancellation", rec.Error)
	}
	evs := events(s.Telemetry(), "drain-cancelled")
	if len(evs) != 1 {
		t.Fatalf("drain-cancelled events = %d, want 1", len(evs))
	}
	names, _ := evs[0].Fields["transactions"].([]string)
	if len(names) != 1 || names[0] != "drain-overdue" {
		t.Fatalf("journalled survivors = %v, want [drain-overdue]", evs[0].Fields["transactions"])
	}
}

// Stop is idempotent and the server stays terminal: proposals after stop
// still get the retryable code, replays of decided transactions still
// answer from the table (the at-most-once contract outlives the drain).
func TestStopIdempotentAndRepliesAfterStop(t *testing.T) {
	s := NewServer(springPlugin(100), nil, ServerOptions{})
	ctx := context.Background()
	if _, err := s.Propose(ctx, "coord", proposal("pre-stop", 0.01)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(ctx, "coord", "pre-stop"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		r, err := s.Get("pre-stop")
		return err == nil && r.State == StateExecuted
	})
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(ctx); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	if _, err := s.Propose(ctx, "coord", proposal("post-stop", 0.01)); !isUnavailable(err) {
		t.Fatalf("Propose after stop = %v, want CodeUnavailable", err)
	}
	// Replay of the decided transaction still answers from the table.
	rec, err := s.Propose(ctx, "coord", proposal("pre-stop", 0.01))
	if err != nil {
		t.Fatalf("replay after stop: %v", err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("replay state = %v", rec.State)
	}
}

// The fast path routes through the same gate: ProposeAndExecute during
// drain is refused with the retryable code.
func TestFastPathRefusedDuringDrain(t *testing.T) {
	plug := newSlowPlugin()
	s := NewServer(plug, nil, ServerOptions{})
	ctx := context.Background()
	if _, err := s.Propose(ctx, "coord", proposal("fp-drain", 0.01)); err != nil {
		t.Fatal(err)
	}
	startDetachedExecution(t, s, "fp-drain")
	<-plug.started
	done := make(chan error, 1)
	stopCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	go func() { done <- s.Stop(stopCtx) }()
	waitFor(t, func() bool { return s.Healthy() != nil })
	if _, err := s.ProposeAndExecute(ctx, "coord", proposal("fp-new", 0.01)); !isUnavailable(err) {
		t.Fatalf("ProposeAndExecute during drain = %v, want CodeUnavailable", err)
	}
	close(plug.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// The satellite scenario end-to-end over a real container and a faultnet
// WAN transport: a retrying client whose call lands mid-drain sees the
// retryable NTCP code — not a connection reset — because the NTCP server
// drains before the container listener closes (the site/daemon stop
// order).
func TestRetryingClientSeesRetryableCodeDuringDrain(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)

	in := faultnet.NewInjector(faultnet.WAN2003)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransport(in)}
	cl := NewClient(og, RetryPolicy{Attempts: 4, Backoff: 20 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})

	// Begin the server drain; the container from newFixture stays up (its
	// cleanup shuts it down after the test), mirroring the supervisor's
	// reverse stop order.
	stopCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = f.server.Stop(stopCtx)
	}()
	waitFor(t, func() bool { return f.server.Healthy() != nil })

	_, err := cl.Run(context.Background(), proposal("mid-drain", 0.02))
	if err == nil {
		t.Fatal("drain outlasts the retry budget; Run should fail")
	}
	var re *ogsi.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("client error = %v (%T), want RemoteError over the wire, not a transport reset", err, err)
	}
	if re.Code != ogsi.CodeUnavailable {
		t.Fatalf("remote code = %q, want %q", re.Code, ogsi.CodeUnavailable)
	}
	// Every retry attempt reached the server and was answered — proof the
	// failures were protocol-level refusals, not connection resets.
	if st := cl.Stats(); st.Retries < 3 {
		t.Fatalf("client retries = %d, want the full retry budget (retryable code classified as transient)", st.Retries)
	}
	wg.Wait()
}

// startDetachedExecution kicks off an execution and lets the request
// context lapse so it runs detached — the at-most-once contract keeps it
// going server-side, which is exactly the in-flight work a drain must
// handle.
func startDetachedExecution(t *testing.T, s *Server, name string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Execute(ctx, "coord", name); !isUnavailable(err) {
		t.Fatalf("detaching Execute(%q) = %v, want still-executing CodeUnavailable", name, err)
	}
}

func isUnavailable(err error) bool {
	var oe *ogsi.OpError
	if errors.As(err, &oe) {
		return oe.Code == ogsi.CodeUnavailable
	}
	var re *ogsi.RemoteError
	if errors.As(err, &re) {
		return re.Code == ogsi.CodeUnavailable
	}
	return false
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
