package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// The fast-path error contracts: RejectionError and ExecutionError must
// keep satisfying errors.Is(…, ErrRejected/ErrFailed) no matter how the
// record reached the client — first decision, a retry that recovered, or a
// dedupe replay of a terminal record.

func TestRejectionErrorSurvivesRetryLoop(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.01}}}
	f := newFixture(t, springPlugin(100), pol)
	ft := &flakyTransport{failures: 1}
	cl := f.client(DefaultRetry, &http.Client{Transport: ft})

	rec, err := cl.RunFast(context.Background(), proposal("too-big", 0.5))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected through the retry loop", err)
	}
	var re *RejectionError
	if !errors.As(err, &re) || re.Record.State != StateRejected {
		t.Fatalf("err = %v, want *RejectionError carrying the record", err)
	}
	if rec == nil || rec.State != StateRejected {
		t.Fatalf("record = %+v", rec)
	}
	if st := cl.Stats(); st.Recovered == 0 {
		t.Fatalf("stats = %+v: the transport fault should have been recovered before the rejection", st)
	}
}

func TestExecutionErrorSurvivesRetryLoop(t *testing.T) {
	plugin := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		return nil, fmt.Errorf("hydraulics down")
	})
	f := newFixture(t, plugin, nil)
	ft := &flakyTransport{failures: 1}
	cl := f.client(DefaultRetry, &http.Client{Transport: ft})

	_, err := cl.RunFast(context.Background(), proposal("doomed", 0.01))
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed through the retry loop", err)
	}
	var ee *ExecutionError
	if !errors.As(err, &ee) || ee.Record.State != StateFailed {
		t.Fatalf("err = %v, want *ExecutionError carrying the record", err)
	}
}

func TestErrorContractsThroughDedupeReplay(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.01}}}
	f := newFixture(t, springPlugin(100), pol)
	cl := f.client(NoRetry, nil)
	ctx := context.Background()

	if _, err := cl.RunFast(ctx, proposal("too-big", 0.5)); !errors.Is(err, ErrRejected) {
		t.Fatalf("first decision: %v", err)
	}
	// The same name again: the server answers from the transaction table,
	// and the replayed terminal record must map to the same error identity.
	if _, err := cl.RunFast(ctx, proposal("too-big", 0.5)); !errors.Is(err, ErrRejected) {
		t.Fatalf("dedupe replay: %v", err)
	}
	if f.server.Stats().DedupedReplay == 0 {
		t.Fatal("second decision did not come from the dedupe table")
	}

	// Same for a failed execution.
	var mu sync.Mutex
	executions := 0
	failing := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return nil, fmt.Errorf("actuator fault")
	})
	ff := newFixture(t, failing, nil)
	fcl := ff.client(NoRetry, nil)
	if _, err := fcl.RunFast(ctx, proposal("doomed", 0.005)); !errors.Is(err, ErrFailed) {
		t.Fatalf("first failure: %v", err)
	}
	if _, err := fcl.RunFast(ctx, proposal("doomed", 0.005)); !errors.Is(err, ErrFailed) {
		t.Fatalf("replayed failure: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("failed action executed %d times, want 1", executions)
	}
}

// gatePlugin blocks executions until released, so a test can observe a
// transaction in StateExecuting from a second client.
type gatePlugin struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
	mu      sync.Mutex
	execs   int
}

func newGatePlugin() *gatePlugin {
	return &gatePlugin{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatePlugin) Validate(context.Context, []Action) error { return nil }

func (g *gatePlugin) Execute(_ context.Context, actions []Action) ([]Result, error) {
	g.mu.Lock()
	g.execs++
	g.mu.Unlock()
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{9}}}, nil
}

func TestClientRunFallsThroughOnStateExecuting(t *testing.T) {
	g := newGatePlugin()
	f := newFixture(t, g, nil)
	ctx := context.Background()

	first := f.client(NoRetry, nil)
	firstDone := make(chan error, 1)
	go func() {
		_, err := first.Run(ctx, proposal("x", 0.01))
		firstDone <- err
	}()
	<-g.entered // the transaction is now StateExecuting

	// A second Run on the same name: the propose dedupes into the executing
	// record, the switch falls through, and Execute waits for the outcome.
	second := f.client(NoRetry, nil)
	secondDone := make(chan error, 1)
	var rec *Record
	go func() {
		var err error
		rec, err = second.Run(ctx, proposal("x", 0.01))
		secondDone <- err
	}()

	close(g.release)
	if err := <-firstDone; err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := <-secondDone; err != nil {
		t.Fatalf("second run: %v", err)
	}
	if rec.State != StateExecuted || rec.Results[0].Forces[0] != 9 {
		t.Fatalf("second run record = %+v", rec)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.execs != 1 {
		t.Fatalf("action executed %d times, want 1", g.execs)
	}
}
