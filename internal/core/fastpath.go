package core

import (
	"context"
	"encoding/json"

	"neesgrid/internal/ogsi"
)

// The §5 performance work: "MOST and most follow-on experiments have lax
// performance requirements; … we are working with engineers … to support
// distributed experiments with near-real-time requirements. … we are
// working on improving NTCP performance."
//
// The dominant per-step cost of the baseline protocol is its two WAN round
// trips (propose, then execute). ProposeAndExecute collapses them into one
// while preserving every NTCP guarantee: the server still runs the full
// proposal pipeline (policy screen, plugin validation) and only then
// executes, the transaction is still recorded and deduplicated by name
// (at-most-once under retry), and a policy rejection still happens before
// any action. What is lost is only the cross-site barrier: a coordinator
// using the fast path cannot ensure every site accepted before any site
// moves, so it is appropriate exactly when — as in a well-rehearsed
// near-real-time test — proposals are known to satisfy site policy.
// BenchmarkE8NtcpFastPath quantifies the saving.

// ProposeAndExecute validates, accepts, and executes a proposal in one
// call. Replays (by transaction name) return the recorded outcome without
// re-executing. A rejected proposal is returned with StateRejected and is
// not executed.
func (s *Server) ProposeAndExecute(ctx context.Context, client string, p *Proposal) (*Record, error) {
	rec, err := s.Propose(ctx, client, p)
	if err != nil {
		return nil, err
	}
	switch rec.State {
	case StateRejected, StateExecuted, StateFailed, StateCancelled:
		// Rejected: surface without executing. Terminal states: this was a
		// replay; return the recorded outcome.
		return rec, nil
	default:
		return s.Execute(ctx, client, p.Name)
	}
}

// registerFastPathOp wires the combined operation into the service. Called
// from registerOps.
func (s *Server) registerFastPathOp() {
	s.svc.RegisterOp("proposeAndExecute", func(ctx context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p Proposal
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad proposal: %v", err)
		}
		return s.ProposeAndExecute(ctx, caller.Identity, &p)
	})
}

// RunFast is the client side of the fast path: one round trip per step.
// Semantically it matches Run except that rejection surfaces after the
// server-side decision rather than before sibling execution elsewhere.
func (c *Client) RunFast(ctx context.Context, p *Proposal) (*Record, error) {
	rec, err := c.call(ctx, "proposeAndExecute", p)
	if err != nil {
		return nil, err
	}
	switch rec.State {
	case StateRejected:
		return rec, &RejectionError{Record: rec}
	case StateFailed:
		return rec, &ExecutionError{Record: rec}
	}
	return rec, nil
}

// RejectionError wraps a rejected fast-path record; errors.Is(err,
// ErrRejected) holds.
type RejectionError struct{ Record *Record }

func (e *RejectionError) Error() string { return "ntcp: proposal rejected: " + e.Record.Error }

// Is matches ErrRejected.
func (e *RejectionError) Is(target error) bool { return target == ErrRejected }

// ExecutionError wraps a failed fast-path record; errors.Is(err, ErrFailed)
// holds.
type ExecutionError struct{ Record *Record }

func (e *ExecutionError) Error() string { return "ntcp: execution failed: " + e.Record.Error }

// Is matches ErrFailed.
func (e *ExecutionError) Is(target error) bool { return target == ErrFailed }
