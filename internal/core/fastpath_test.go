package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

func TestProposeAndExecuteHappyPath(t *testing.T) {
	s := NewServer(springPlugin(100), nil, ServerOptions{})
	rec, err := s.ProposeAndExecute(context.Background(), "alice", proposal("f1", 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted || rec.Results[0].Forces[0] != 2 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestProposeAndExecuteRejectionDoesNotExecute(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.01}}}
	var executions int
	p := PluginFunc(func(_ context.Context, actions []Action) ([]Result, error) {
		executions++
		return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{0}}}, nil
	})
	s := NewServer(p, pol, ServerOptions{})
	rec, err := s.ProposeAndExecute(context.Background(), "alice", proposal("big", 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRejected {
		t.Fatalf("state = %s", rec.State)
	}
	if executions != 0 {
		t.Fatal("rejected fast-path proposal executed")
	}
}

func TestProposeAndExecuteAtMostOnceUnderRetry(t *testing.T) {
	var mu sync.Mutex
	executions := 0
	p := PluginFunc(func(_ context.Context, actions []Action) ([]Result, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{7}}}, nil
	})
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()
	first, err := s.ProposeAndExecute(ctx, "alice", proposal("r1", 0.01))
	if err != nil {
		t.Fatal(err)
	}
	// Retry storm: same name, any number of times — one execution.
	for i := 0; i < 5; i++ {
		rec, err := s.ProposeAndExecute(ctx, "alice", proposal("r1", 0.01))
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != StateExecuted || rec.Results[0].Forces[0] != first.Results[0].Forces[0] {
			t.Fatalf("replay %d = %+v", i, rec)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("executed %d times, want 1", executions)
	}
}

func TestProposeAndExecuteFailureReplay(t *testing.T) {
	p := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		return nil, fmt.Errorf("hydraulics down")
	})
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()
	rec, err := s.ProposeAndExecute(ctx, "alice", proposal("f", 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFailed {
		t.Fatalf("state = %s", rec.State)
	}
	// Replay returns the recorded failure, no re-execution.
	rec, err = s.ProposeAndExecute(ctx, "alice", proposal("f", 0.01))
	if err != nil || rec.State != StateFailed {
		t.Fatalf("replay = %+v, %v", rec, err)
	}
	if s.Stats().Failed != 1 {
		t.Fatalf("failed = %d", s.Stats().Failed)
	}
}

func TestRunFastOverNetwork(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	cl := f.client(DefaultRetry, nil)
	rec, err := cl.RunFast(context.Background(), proposal("fast-1", 0.03))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted || rec.Results[0].Forces[0] != 3 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRunFastRejection(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{"drift": {MaxDisplacement: 0.01}}}
	f := newFixture(t, springPlugin(100), pol)
	cl := f.client(DefaultRetry, nil)
	rec, err := cl.RunFast(context.Background(), proposal("fast-big", 0.5))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if rec == nil || rec.State != StateRejected {
		t.Fatalf("record = %+v", rec)
	}
}

func TestRunFastFailure(t *testing.T) {
	p := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		return nil, fmt.Errorf("fault")
	})
	f := newFixture(t, p, nil)
	cl := f.client(NoRetry, nil)
	_, err := cl.RunFast(context.Background(), proposal("fast-f", 0.01))
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestRunFastRetriesTransportFailures(t *testing.T) {
	var mu sync.Mutex
	executions := 0
	p := PluginFunc(func(_ context.Context, actions []Action) ([]Result, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{1}}}, nil
	})
	f := newFixture(t, p, nil)
	ft := &flakyTransport{failures: 2}
	cl := f.client(DefaultRetry, &http.Client{Transport: ft})
	rec, err := cl.RunFast(context.Background(), proposal("fast-r", 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %s", rec.State)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("executed %d times under retry, want 1", executions)
	}
}

// One fast-path call equals one wire round trip; the baseline takes two.
func TestFastPathHalvesRoundTrips(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	count := &countingTransport{}
	cl := f.client(NoRetry, &http.Client{Transport: count})
	ctx := context.Background()
	if _, err := cl.Run(ctx, proposal("base", 0.01)); err != nil {
		t.Fatal(err)
	}
	base := count.n
	if _, err := cl.RunFast(ctx, proposal("fast", 0.01)); err != nil {
		t.Fatal(err)
	}
	fast := count.n - base
	if base != 2 || fast != 1 {
		t.Fatalf("round trips: baseline %d (want 2), fast %d (want 1)", base, fast)
	}
}

type countingTransport struct {
	mu sync.Mutex
	n  int
}

func (c *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return http.DefaultTransport.RoundTrip(r)
}
