package core

import (
	"context"
	"net/http"
	"testing"

	"neesgrid/internal/faultnet"
	"neesgrid/internal/telemetry"
)

// The fault-tolerance contract, exercised through the real injector: a
// retrying client rides out a 2-failure transient outage (§3.4's "several
// transient network failures"), while a NoRetry client — the configuration
// the public MOST run's coordinator effectively had — dies on the first.

func TestDefaultRetryRecoversThroughInjectedOutage(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	in := faultnet.NewInjector(faultnet.LAN)
	reg := telemetry.NewRegistry()
	in.UseTelemetry(reg)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransport(in)}
	cl := NewClientWithTelemetry(og, DefaultRetry, reg)

	in.FailNext(2)
	rec, err := cl.Run(context.Background(), proposal("faultnet-step-1", 0.02))
	if err != nil {
		t.Fatalf("DefaultRetry should recover through 2 injected failures: %v", err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %v", rec.State)
	}
	st := cl.Stats()
	if st.Recovered == 0 || st.Retries < 2 {
		t.Fatalf("stats = %+v, want recovery after ≥2 retries", st)
	}
	// Injector and client share the registry: injected faults and the
	// recoveries they forced are correlated in one snapshot.
	snap := reg.Snapshot()
	if snap.Counters["faultnet.injected"] != 2 {
		t.Fatalf("faultnet.injected = %d", snap.Counters["faultnet.injected"])
	}
	if snap.Counters["ntcp.client.recovered"] == 0 {
		t.Fatal("recovery not visible in shared registry")
	}
}

func TestNoRetryDiesOnInjectedFailure(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	in := faultnet.NewInjector(faultnet.LAN)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransport(in)}
	cl := NewClient(og, NoRetry)

	in.FailNext(1)
	if _, err := cl.Run(context.Background(), proposal("faultnet-step-2", 0.02)); err == nil {
		t.Fatal("NoRetry should fail on an injected transport error")
	}
	if st := cl.Stats(); st.Retries != 0 || st.Recovered != 0 {
		t.Fatalf("NoRetry stats = %+v, want no retries", st)
	}

	// The same outage cleared: the next attempt goes straight through,
	// proving the failure was transient, not the server.
	if _, err := cl.Run(context.Background(), proposal("faultnet-step-3", 0.02)); err != nil {
		t.Fatalf("post-outage call should succeed: %v", err)
	}
}
