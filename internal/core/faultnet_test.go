package core

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"neesgrid/internal/faultnet"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/telemetry"
)

// The fault-tolerance contract, exercised through the real injector: a
// retrying client rides out a 2-failure transient outage (§3.4's "several
// transient network failures"), while a NoRetry client — the configuration
// the public MOST run's coordinator effectively had — dies on the first.

func TestDefaultRetryRecoversThroughInjectedOutage(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	in := faultnet.NewInjector(faultnet.LAN)
	reg := telemetry.NewRegistry()
	in.UseTelemetry(reg)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransport(in)}
	cl := NewClientWithTelemetry(og, DefaultRetry, reg)

	in.FailNext(2)
	rec, err := cl.Run(context.Background(), proposal("faultnet-step-1", 0.02))
	if err != nil {
		t.Fatalf("DefaultRetry should recover through 2 injected failures: %v", err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %v", rec.State)
	}
	st := cl.Stats()
	if st.Recovered == 0 || st.Retries < 2 {
		t.Fatalf("stats = %+v, want recovery after ≥2 retries", st)
	}
	// Injector and client share the registry: injected faults and the
	// recoveries they forced are correlated in one snapshot.
	snap := reg.Snapshot()
	if snap.Counters["faultnet.injected"] != 2 {
		t.Fatalf("faultnet.injected = %d", snap.Counters["faultnet.injected"])
	}
	if snap.Counters["ntcp.client.recovered"] == 0 {
		t.Fatal("recovery not visible in shared registry")
	}
}

// A scheduled outage window that opens while the server is draining: the
// first retry attempts die at the transport (the partition), and once the
// window is burned through the surviving attempt reaches the draining
// server and gets the protocol-level retryable refusal — two independent
// failure layers composing without eating each other's call budget.
func TestScheduledOutageBeginningDuringDrain(t *testing.T) {
	plug := newSlowPlugin()
	f := newFixture(t, plug, nil)
	in := faultnet.NewInjector(faultnet.LAN)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransport(in)}
	cl := NewClient(og, RetryPolicy{Attempts: 4, Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond})

	// Put the server mid-drain: an in-flight actuator move pins Stop.
	ctx := context.Background()
	if _, err := f.server.Propose(ctx, "coord", proposal("drain-pin", 0.01)); err != nil {
		t.Fatal(err)
	}
	startDetachedExecution(t, f.server, "drain-pin")
	<-plug.started
	stopCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.server.Stop(stopCtx) }()
	waitFor(t, func() bool { return f.server.Healthy() != nil })

	// The partition opens now, mid-drain, for exactly two calls.
	in.ScheduleOutage(0, 2)
	_, err := cl.Run(ctx, proposal("mid-drain-outage", 0.02))
	if err == nil {
		t.Fatal("drain outlasts the retry budget; Run should fail")
	}
	// The terminal error must be the server's refusal, not the partition's
	// transport error: the window burned calls 1-2, attempts 3-4 got through
	// to the draining server.
	var re *ogsi.RemoteError
	if !errors.As(err, &re) || re.Code != ogsi.CodeUnavailable {
		t.Fatalf("error after window = %v, want RemoteError %q", err, ogsi.CodeUnavailable)
	}
	if got := in.Injected(); got != 2 {
		t.Fatalf("injected = %d, want the whole scheduled window consumed", got)
	}
	if st := cl.Stats(); st.Retries != 3 {
		t.Fatalf("retries = %d, want 3 (both failure layers classified transient)", st.Retries)
	}

	close(plug.release)
	if err := <-done; err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestNoRetryDiesOnInjectedFailure(t *testing.T) {
	f := newFixture(t, springPlugin(100), nil)
	in := faultnet.NewInjector(faultnet.LAN)
	og := f.ogsiClient()
	og.HTTP = &http.Client{Transport: faultnet.NewTransport(in)}
	cl := NewClient(og, NoRetry)

	in.FailNext(1)
	if _, err := cl.Run(context.Background(), proposal("faultnet-step-2", 0.02)); err == nil {
		t.Fatal("NoRetry should fail on an injected transport error")
	}
	if st := cl.Stats(); st.Retries != 0 || st.Recovered != 0 {
		t.Fatalf("NoRetry stats = %+v, want no retries", st)
	}

	// The same outage cleared: the next attempt goes straight through,
	// proving the failure was transient, not the server.
	if _, err := cl.Run(context.Background(), proposal("faultnet-step-3", 0.02)); err != nil {
		t.Fatalf("post-outage call should succeed: %v", err)
	}
}
