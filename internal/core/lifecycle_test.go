package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/ogsi"
)

// slowValidatePlugin holds proposals in StateProposed until released — the
// window in which a retried Execute used to fall into the default branch and
// come back as a non-retryable CodeInternal fault.
type slowValidatePlugin struct {
	validating chan struct{} // closed when Validate is entered
	release    chan struct{} // Validate blocks until this closes
	reject     bool
	once       sync.Once
}

func (p *slowValidatePlugin) Validate(context.Context, []Action) error {
	p.once.Do(func() { close(p.validating) })
	<-p.release
	if p.reject {
		return fmt.Errorf("vetoed")
	}
	return nil
}

func (p *slowValidatePlugin) Execute(_ context.Context, actions []Action) ([]Result, error) {
	return []Result{{
		ControlPoint:  actions[0].ControlPoint,
		Displacements: actions[0].Displacements,
		Forces:        []float64{1},
	}}, nil
}

// TestExecuteDuringProposeWaitsForDecision is the regression test for the
// lifecycle bug: an Execute racing the original Propose mid-validation must
// wait for the propose decision and then run, not fault with CodeInternal.
func TestExecuteDuringProposeWaitsForDecision(t *testing.T) {
	p := &slowValidatePlugin{validating: make(chan struct{}), release: make(chan struct{})}
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()

	proposeDone := make(chan struct{})
	go func() {
		defer close(proposeDone)
		if _, err := s.Propose(ctx, "alice", proposal("t1", 0.01)); err != nil {
			t.Errorf("propose: %v", err)
		}
	}()
	<-p.validating // transaction is now visible in StateProposed

	execDone := make(chan struct{})
	var rec *Record
	var execErr error
	go func() {
		defer close(execDone)
		rec, execErr = s.Execute(ctx, "alice", "t1")
	}()
	// Give Execute time to land mid-validation, then let Propose decide.
	time.Sleep(10 * time.Millisecond)
	close(p.release)
	<-proposeDone
	<-execDone

	if execErr != nil {
		t.Fatalf("execute during propose: %v", execErr)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %s, want executed", rec.State)
	}
}

// TestExecuteDuringProposeSeesRejection: the same race against a proposal
// that validation rejects must surface the rejection as a conflict, still
// not CodeInternal.
func TestExecuteDuringProposeSeesRejection(t *testing.T) {
	p := &slowValidatePlugin{validating: make(chan struct{}), release: make(chan struct{}), reject: true}
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()

	go func() { _, _ = s.Propose(ctx, "alice", proposal("t1", 0.01)) }()
	<-p.validating

	errCh := make(chan error, 1)
	go func() {
		_, err := s.Execute(ctx, "alice", "t1")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(p.release)
	err := <-errCh
	if err == nil {
		t.Fatal("execute on rejected transaction should fail")
	}
	var oe *ogsi.OpError
	if !errors.As(err, &oe) || oe.Code != ogsi.CodeConflict {
		t.Fatalf("error = %v, want %s", err, ogsi.CodeConflict)
	}
}

// TestExecuteDuringProposeTimesOutTransient: an Execute whose context ends
// while the propose decision is still pending must fail with
// CodeUnavailable, which the client retry loop treats as transient.
func TestExecuteDuringProposeTimesOutTransient(t *testing.T) {
	p := &slowValidatePlugin{validating: make(chan struct{}), release: make(chan struct{})}
	s := NewServer(p, nil, ServerOptions{})

	go func() { _, _ = s.Propose(context.Background(), "alice", proposal("t1", 0.01)) }()
	<-p.validating

	short, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Execute(short, "alice", "t1")
	var oe *ogsi.OpError
	if !errors.As(err, &oe) || oe.Code != ogsi.CodeUnavailable {
		t.Fatalf("error = %v, want %s", err, ogsi.CodeUnavailable)
	}
	close(p.release) // let the propose goroutine finish
}

// TestCancelDuringProposeWaitsForDecision: Cancel racing a mid-validation
// Propose waits for the decision and then cancels the accepted transaction.
func TestCancelDuringProposeWaitsForDecision(t *testing.T) {
	p := &slowValidatePlugin{validating: make(chan struct{}), release: make(chan struct{})}
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()

	go func() { _, _ = s.Propose(ctx, "alice", proposal("t1", 0.01)) }()
	<-p.validating

	recCh := make(chan *Record, 1)
	errCh := make(chan error, 1)
	go func() {
		rec, err := s.Cancel(ctx, "alice", "t1")
		recCh <- rec
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(p.release)
	if err := <-errCh; err != nil {
		t.Fatalf("cancel during propose: %v", err)
	}
	if rec := <-recCh; rec.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", rec.State)
	}
}

// TestProposeExecutePublishRace hammers the propose→execute cycle while a
// watcher reads the published tx SDEs; under -race this used to flag the
// server publishing live *Records after dropping its mutex.
func TestProposeExecutePublishRace(t *testing.T) {
	s := NewServer(springPlugin(100), nil, ServerOptions{})
	ctx := context.Background()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Service().SDEs.Query()
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("race-%d", i)
			if _, err := s.Propose(ctx, "alice", proposal(name, 0.01)); err != nil {
				t.Errorf("propose %s: %v", name, err)
				return
			}
			// Two racing executes: one starts the execution, the other
			// joins it; both publish snapshots.
			var inner sync.WaitGroup
			for j := 0; j < 2; j++ {
				inner.Add(1)
				go func() {
					defer inner.Done()
					if _, err := s.Execute(ctx, "alice", name); err != nil {
						t.Errorf("execute %s: %v", name, err)
					}
				}()
			}
			inner.Wait()
		}(i)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := s.Stats().Executed; got != 16 {
		t.Fatalf("executed = %d, want 16", got)
	}
}

// TestRetryDelayOverflow: with MaxBackoff 0 and many attempts, the doubling
// used to overflow time.Duration to a negative value, making time.After fire
// immediately (a hot retry loop). The cap keeps every delay positive and
// bounded.
func TestRetryDelayOverflow(t *testing.T) {
	r := RetryPolicy{Attempts: 64, Backoff: 50 * time.Millisecond, MaxBackoff: 0}
	for try := 0; try < 64; try++ {
		d := r.delay(try)
		if d <= 0 {
			t.Fatalf("delay(%d) = %v, want positive", try, d)
		}
		if d > defaultMaxBackoff {
			t.Fatalf("delay(%d) = %v exceeds default cap %v", try, d, defaultMaxBackoff)
		}
	}
	if d := r.delay(63); d != defaultMaxBackoff {
		t.Fatalf("delay(63) = %v, want capped at %v", d, defaultMaxBackoff)
	}
	// An explicit MaxBackoff still wins.
	r = RetryPolicy{Attempts: 64, Backoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	if d := r.delay(63); d != 100*time.Millisecond {
		t.Fatalf("delay(63) = %v, want 100ms", d)
	}
}

// TestServerTelemetryCounters: outcome counters mirror Stats into the
// telemetry registry, and plugin-execution latency is recorded.
func TestServerTelemetryCounters(t *testing.T) {
	s := NewServer(springPlugin(100), nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t1", 0.01))
	_, _ = s.Execute(ctx, "alice", "t1")
	_, _ = s.Execute(ctx, "alice", "t1") // replay → dedup
	snap := s.Telemetry().Snapshot()
	for name, want := range map[string]int64{
		"ntcp.server.proposed":        1,
		"ntcp.server.accepted":        1,
		"ntcp.server.executed":        1,
		"ntcp.server.deduped_replays": 1,
	} {
		if snap.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	if snap.Histograms["ntcp.server.plugin.execute.seconds"].Count != 1 {
		t.Errorf("plugin execute histogram = %+v", snap.Histograms["ntcp.server.plugin.execute.seconds"])
	}
	if snap.Histograms["ntcp.server.validate.seconds"].Count != 1 {
		t.Errorf("validate histogram = %+v", snap.Histograms["ntcp.server.validate.seconds"])
	}
}
