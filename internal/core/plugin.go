package core

import (
	"context"
	"fmt"
)

// Plugin is the NTCP control plugin interface (Fig. 2): the site-supplied
// component that maps generic NTCP actions onto the local control system or
// simulation engine. The core NTCP server handles everything generic —
// transaction state, at-most-once semantics, policy, SDE publication — and
// delegates exactly two domain decisions to the plugin: "is this action
// acceptable here?" and "do it".
type Plugin interface {
	// Validate is consulted at proposal time. Returning an error rejects
	// the proposal before any action takes place — the negotiation step
	// that lets a client discover whether a request would violate local
	// policy or damage equipment.
	Validate(ctx context.Context, actions []Action) error
	// Execute applies the actions to the local control system or
	// simulation and returns one result per action. It is called at most
	// once per transaction.
	Execute(ctx context.Context, actions []Action) ([]Result, error)
}

// PluginFunc adapts a bare execute function into a Plugin that accepts all
// proposals.
type PluginFunc func(ctx context.Context, actions []Action) ([]Result, error)

// Validate accepts every proposal.
func (f PluginFunc) Validate(context.Context, []Action) error { return nil }

// Execute invokes f.
func (f PluginFunc) Execute(ctx context.Context, actions []Action) ([]Result, error) {
	return f(ctx, actions)
}

// SubstructurePlugin drives any structural.Substructure-shaped back end —
// the simplest useful plugin, and the one that makes a numerical simulation
// look exactly like a rig to NTCP clients. MOST's incremental bring-up
// ("first a distributed simulation-only experiment, then replace
// simulations with physical substructures") is this plugin being swapped
// for a rig-backed one with no coordinator change.
type SubstructurePlugin struct {
	// Point is the control point name this plugin serves.
	Point string
	// Apply imposes displacements and returns measured forces.
	Apply func(d []float64) ([]float64, error)
	// NDOF is the number of DOFs of the control point.
	NDOF int
}

// Validate rejects actions for unknown control points or mismatched DOF
// counts.
func (p *SubstructurePlugin) Validate(_ context.Context, actions []Action) error {
	for _, a := range actions {
		if a.ControlPoint != p.Point {
			return fmt.Errorf("unknown control point %q (have %q)", a.ControlPoint, p.Point)
		}
		if len(a.Displacements) != p.NDOF {
			return fmt.Errorf("control point %q has %d dofs, action has %d", p.Point, p.NDOF, len(a.Displacements))
		}
	}
	return nil
}

// Execute applies each action through Apply.
func (p *SubstructurePlugin) Execute(ctx context.Context, actions []Action) ([]Result, error) {
	results := make([]Result, len(actions))
	for i, a := range actions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		forces, err := p.Apply(a.Displacements)
		if err != nil {
			return nil, fmt.Errorf("control point %q: %w", a.ControlPoint, err)
		}
		results[i] = Result{
			ControlPoint:  a.ControlPoint,
			Displacements: append([]float64(nil), a.Displacements...),
			Forces:        forces,
		}
	}
	return results, nil
}
