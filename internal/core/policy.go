package core

import (
	"fmt"
	"math"
)

// Limits bounds what a site will allow at one control point. Facility
// managers "want to retain some control over what commands are acceptable
// (e.g., to set limits on the amount of force that can be applied on the
// local specimen)" — Limits is that control, enforced at proposal time so a
// violating request is rejected before anything moves.
type Limits struct {
	// MaxDisplacement is the largest |d| (meters) accepted per DOF;
	// 0 means unlimited.
	MaxDisplacement float64 `json:"max_displacement,omitempty"`
	// MaxStep is the largest displacement increment (meters) from the
	// last executed position per DOF; 0 means unlimited. Guards against a
	// coordinator bug slewing an actuator across its whole stroke in one
	// step.
	MaxStep float64 `json:"max_step,omitempty"`
	// MaxForceEstimate rejects proposals whose estimated reaction
	// |K·d| (newtons) exceeds the specimen rating; requires StiffnessEst.
	// 0 means unlimited.
	MaxForceEstimate float64 `json:"max_force_estimate,omitempty"`
	// StiffnessEst is the site's estimate of specimen stiffness (N/m)
	// used for force screening.
	StiffnessEst float64 `json:"stiffness_estimate,omitempty"`
}

// SitePolicy is the per-site proposal screen: per-control-point limits plus
// an optional allow list of client identities (over and above gridmap
// authorization).
type SitePolicy struct {
	// PointLimits maps control point name → limits. Proposals naming
	// points absent from a non-empty map are rejected.
	PointLimits map[string]Limits
	// AllowedClients, when non-empty, restricts which Grid identities may
	// propose transactions.
	AllowedClients map[string]bool
}

// PolicyViolation describes a rejected proposal.
type PolicyViolation struct {
	Point  string
	Reason string
}

func (v *PolicyViolation) Error() string {
	return fmt.Sprintf("ntcp policy: %s: %s", v.Point, v.Reason)
}

// Check screens a proposal for client identity and action limits. last maps
// control point → last executed displacements (nil when unknown), enabling
// the MaxStep screen.
func (p *SitePolicy) Check(client string, actions []Action, last map[string][]float64) error {
	if p == nil {
		return nil
	}
	if len(p.AllowedClients) > 0 && !p.AllowedClients[client] {
		return &PolicyViolation{Point: "*", Reason: fmt.Sprintf("client %q not allowed", client)}
	}
	for _, a := range actions {
		lim, ok := p.PointLimits[a.ControlPoint]
		if !ok {
			if len(p.PointLimits) > 0 {
				return &PolicyViolation{Point: a.ControlPoint, Reason: "unknown control point"}
			}
			continue
		}
		for dof, d := range a.Displacements {
			if lim.MaxDisplacement > 0 && math.Abs(d) > lim.MaxDisplacement {
				return &PolicyViolation{Point: a.ControlPoint,
					Reason: fmt.Sprintf("dof %d displacement %g exceeds limit %g", dof, d, lim.MaxDisplacement)}
			}
			if lim.MaxForceEstimate > 0 && lim.StiffnessEst > 0 &&
				math.Abs(d)*lim.StiffnessEst > lim.MaxForceEstimate {
				return &PolicyViolation{Point: a.ControlPoint,
					Reason: fmt.Sprintf("dof %d estimated force %g exceeds limit %g",
						dof, math.Abs(d)*lim.StiffnessEst, lim.MaxForceEstimate)}
			}
			if lim.MaxStep > 0 && last != nil {
				if prev, ok := last[a.ControlPoint]; ok && dof < len(prev) {
					if step := math.Abs(d - prev[dof]); step > lim.MaxStep {
						return &PolicyViolation{Point: a.ControlPoint,
							Reason: fmt.Sprintf("dof %d step %g exceeds limit %g", dof, step, lim.MaxStep)}
					}
				}
			}
		}
	}
	return nil
}
