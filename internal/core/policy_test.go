package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNilPolicyAllowsEverything(t *testing.T) {
	var p *SitePolicy
	if err := p.Check("anyone", []Action{{ControlPoint: "x", Displacements: []float64{1e9}}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownControlPointRules(t *testing.T) {
	// Non-empty limit map: unknown points are rejected.
	p := &SitePolicy{PointLimits: map[string]Limits{"drift": {}}}
	if err := p.Check("a", []Action{{ControlPoint: "other", Displacements: []float64{0}}}, nil); err == nil {
		t.Fatal("unknown point accepted under a restrictive policy")
	}
	// Empty limit map: any point passes.
	open := &SitePolicy{}
	if err := open.Check("a", []Action{{ControlPoint: "other", Displacements: []float64{0}}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyViolationError(t *testing.T) {
	v := &PolicyViolation{Point: "drift", Reason: "too big"}
	if v.Error() != "ntcp policy: drift: too big" {
		t.Fatalf("message = %q", v.Error())
	}
}

// Property: the displacement screen accepts exactly |d| <= limit.
func TestMaxDisplacementExactBoundaryProperty(t *testing.T) {
	p := &SitePolicy{PointLimits: map[string]Limits{"cp": {MaxDisplacement: 1.0}}}
	f := func(raw float64) bool {
		d := math.Mod(raw, 4) // keep finite and near the boundary
		if math.IsNaN(d) {
			return true
		}
		err := p.Check("a", []Action{{ControlPoint: "cp", Displacements: []float64{d}}}, nil)
		violates := math.Abs(d) > 1.0
		return (err != nil) == violates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a step accepted by the MaxStep screen never moves a control
// point more than the limit from its last executed position.
func TestMaxStepScreenProperty(t *testing.T) {
	const limit = 0.05
	p := &SitePolicy{PointLimits: map[string]Limits{"cp": {MaxStep: limit}}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pos := 0.0
		last := map[string][]float64{"cp": {pos}}
		for i := 0; i < 50; i++ {
			target := pos + rng.NormFloat64()*limit
			err := p.Check("a", []Action{{ControlPoint: "cp", Displacements: []float64{target}}}, last)
			if err == nil {
				if math.Abs(target-pos) > limit+1e-12 {
					return false // accepted an oversized step
				}
				pos = target
				last["cp"][0] = pos
			} else if math.Abs(target-pos) <= limit {
				return false // rejected a legal step
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: force screening is equivalent to displacement screening at
// d = Fmax/K.
func TestForceEstimateEquivalenceProperty(t *testing.T) {
	const k, fmax = 2000.0, 100.0 // equivalent displacement limit: 0.05
	p := &SitePolicy{PointLimits: map[string]Limits{"cp": {
		MaxForceEstimate: fmax, StiffnessEst: k,
	}}}
	f := func(raw float64) bool {
		d := math.Mod(raw, 0.2)
		if math.IsNaN(d) {
			return true
		}
		err := p.Check("a", []Action{{ControlPoint: "cp", Displacements: []float64{d}}}, nil)
		violates := math.Abs(d)*k > fmax
		return (err != nil) == violates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiDOFActionsScreenedPerDOF(t *testing.T) {
	p := &SitePolicy{PointLimits: map[string]Limits{"cp": {MaxDisplacement: 0.1}}}
	// Only DOF 3 violates.
	err := p.Check("a", []Action{{
		ControlPoint:  "cp",
		Displacements: []float64{0.05, -0.05, 0.0, 0.2},
	}}, nil)
	if err == nil {
		t.Fatal("violating DOF slipped through")
	}
}
