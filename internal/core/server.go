package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"neesgrid/internal/ogsi"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// ServerOptions tunes an NTCP server.
type ServerOptions struct {
	// ServiceName is the OGSI service name; defaults to "ntcp".
	ServiceName string
	// DefaultExecuteTimeout bounds plugin execution when the proposal does
	// not specify one. Defaults to 30 s.
	DefaultExecuteTimeout time.Duration
	// DefaultTTL is the soft-state lifetime of a transaction record.
	// Defaults to 1 h.
	DefaultTTL time.Duration
	// Clock overrides the time source (tests).
	Clock func() time.Time
	// Telemetry is the registry the server records outcome counters,
	// plugin-latency histograms, and lifecycle events into. Nil allocates a
	// private registry (share one with the hosting container so /metrics
	// shows server and transport metrics together).
	Telemetry *telemetry.Registry
	// Tracer, when set, records spans for propose/validate/execute/cancel
	// (with the transaction name and plugin type attached), parented under
	// whatever span the request context carries — normally the container's
	// server span. Nil disables tracing.
	Tracer *trace.Tracer
}

func (o *ServerOptions) fill() {
	if o.ServiceName == "" {
		o.ServiceName = "ntcp"
	}
	if o.DefaultExecuteTimeout <= 0 {
		o.DefaultExecuteTimeout = 30 * time.Second
	}
	if o.DefaultTTL <= 0 {
		o.DefaultTTL = time.Hour
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// Stats counts server activity; published as the "stats" SDE.
type Stats struct {
	Proposed      int `json:"proposed"`
	Accepted      int `json:"accepted"`
	Rejected      int `json:"rejected"`
	Executed      int `json:"executed"`
	Failed        int `json:"failed"`
	Cancelled     int `json:"cancelled"`
	DedupedReplay int `json:"deduped_replays"` // retries answered from the transaction table
}

// Server is the core NTCP server of Fig. 2: generic transaction management
// in front of a site-supplied control plugin.
type Server struct {
	opts       ServerOptions
	plugin     Plugin
	policy     *SitePolicy
	svc        *ogsi.Service
	tel        *telemetry.Registry
	tracer     *trace.Tracer
	pluginName string

	// execCtx is the base context of every detached execution; Stop's
	// deadline path cancels it to reclaim executions that outlive the
	// drain budget.
	execCtx    context.Context
	execCancel context.CancelFunc

	mu       sync.Mutex
	txs      map[string]*transaction
	lastPos  map[string][]float64
	stats    Stats
	draining bool
	stopped  bool
	inflight int           // executions currently running
	idle     chan struct{} // non-nil while Stop waits for inflight to hit 0
}

type transaction struct {
	rec     *Record
	decided chan struct{} // closed when the propose decision (accept/reject) lands
	done    chan struct{} // closed when execution reaches a terminal state
}

// NewServer builds an NTCP server over the given plugin and site policy
// (policy may be nil for an unrestricted site).
func NewServer(plugin Plugin, policy *SitePolicy, opts ServerOptions) *Server {
	opts.fill()
	s := &Server{
		opts:       opts,
		plugin:     plugin,
		policy:     policy,
		tel:        telemetry.OrNew(opts.Telemetry),
		tracer:     opts.Tracer,
		pluginName: strings.TrimPrefix(fmt.Sprintf("%T", plugin), "*"),
		txs:        make(map[string]*transaction),
		lastPos:    make(map[string][]float64),
	}
	s.execCtx, s.execCancel = context.WithCancel(context.Background())
	// Pre-register every outcome series at zero: a freshly started daemon's
	// /metrics must show ntcp.server.proposed = 0, not omit the series —
	// scrapers and the obs aggregator cannot tell a missing counter from a
	// site that never wired telemetry.
	for _, name := range []string{cProposed, cAccepted, cRejected,
		cExecuted, cFailed, cCancelled, cDeduped} {
		s.tel.Counter(name)
	}
	s.tel.Histogram("ntcp.server.validate.seconds")
	s.tel.Histogram("ntcp.server.plugin.execute.seconds")
	s.svc = ogsi.NewService(opts.ServiceName)
	s.svc.SDEs.SetClock(opts.Clock)
	s.svc.Lifetimes.SetClock(opts.Clock)
	s.registerOps()
	return s
}

// Service exposes the underlying OGSI service for container registration.
func (s *Server) Service() *ogsi.Service { return s.svc }

// Telemetry exposes the server's metrics registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Stats returns a snapshot of server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func txSDE(name string) string { return "tx:" + name }

// publish exposes a transaction snapshot as SDEs. rec MUST be a private
// clone taken while s.mu was held: publish runs outside the lock, and a live
// *Record can be mutated concurrently by runExecution (the data race the
// -race suite caught).
func (s *Server) publish(rec *Record) {
	_ = s.svc.SDEs.Set(txSDE(rec.Name), rec)
	_ = s.svc.SDEs.Set("last-transaction", rec.Name)
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	_ = s.svc.SDEs.Set("stats", st)
}

// ntcp.server.* counter names, mirrored from the Stats struct into the
// telemetry registry so remote /metrics shows the same outcomes.
const (
	cProposed  = "ntcp.server.proposed"
	cAccepted  = "ntcp.server.accepted"
	cRejected  = "ntcp.server.rejected"
	cExecuted  = "ntcp.server.executed"
	cFailed    = "ntcp.server.failed"
	cCancelled = "ntcp.server.cancelled"
	cDeduped   = "ntcp.server.deduped_replays"
)

// Propose handles a proposal with at-most-once semantics: a name already in
// the transaction table is answered from the table, whatever its state.
func (s *Server) Propose(ctx context.Context, client string, p *Proposal) (*Record, error) {
	if err := p.Validate(); err != nil {
		return nil, ogsi.Errf(ogsi.CodeBadRequest, "%v", err)
	}
	ctx, span := s.tracer.Start(ctx, "ntcp.propose", trace.KindInternal)
	if span != nil {
		span.SetAttr("tx", p.Name)
		span.SetAttr("plugin", s.pluginName)
		defer span.End()
	}
	s.mu.Lock()
	if tx, ok := s.txs[p.Name]; ok {
		s.stats.DedupedReplay++
		rec := tx.rec.clone()
		s.mu.Unlock()
		s.tel.Counter(cDeduped).Inc()
		return rec, nil
	}
	if s.draining {
		// Graceful drain: new work is refused with the retryable code, so
		// a coordinator mid-step backs off and retries against the
		// restarted (or failed-over) site instead of treating the shutdown
		// as a terminal fault — the opposite of the connection reset that
		// ended the public MOST run.
		s.mu.Unlock()
		return nil, ogsi.Errf(ogsi.CodeUnavailable, "server draining, not accepting new transactions")
	}
	now := s.opts.Clock()
	rec := &Record{
		Name:       p.Name,
		State:      StateProposed,
		Actions:    append([]Action(nil), p.Actions...),
		Timeout:    p.ExecuteTimeoutSeconds,
		Client:     client,
		Timestamps: map[TxState]time.Time{StateProposed: now},
	}
	tx := &transaction{rec: rec, decided: make(chan struct{})}
	s.txs[p.Name] = tx
	s.stats.Proposed++
	lastSnapshot := make(map[string][]float64, len(s.lastPos))
	for k, v := range s.lastPos {
		lastSnapshot[k] = v
	}
	s.mu.Unlock()
	s.tel.Counter(cProposed).Inc()

	// Validation happens outside the lock: policy first, then plugin.
	valStart := time.Now()
	verdict := s.policy.Check(client, p.Actions, lastSnapshot)
	if verdict == nil {
		verdict = s.plugin.Validate(ctx, p.Actions)
	}
	s.tel.Histogram("ntcp.server.validate.seconds").ObserveDuration(time.Since(valStart))
	if span != nil {
		attrs := map[string]string{"tx": p.Name}
		if verdict != nil {
			attrs["rejected"] = verdict.Error()
		}
		s.tracer.RecordSpan(span.Context(), "ntcp.validate", trace.KindInternal,
			valStart, time.Now(), attrs)
		if verdict != nil {
			span.SetAttr("rejected", "true")
		}
	}

	s.mu.Lock()
	if verdict != nil {
		rec.State = StateRejected
		rec.Error = verdict.Error()
		rec.Timestamps[StateRejected] = s.opts.Clock()
		s.stats.Rejected++
	} else {
		rec.State = StateAccepted
		rec.Timestamps[StateAccepted] = s.opts.Clock()
		s.stats.Accepted++
	}
	// Wake any Execute that raced in mid-validation and is waiting for the
	// propose decision.
	close(tx.decided)
	out := rec.clone()
	s.mu.Unlock()
	if verdict != nil {
		s.tel.Counter(cRejected).Inc()
		s.tel.Event("ntcp", "tx-rejected", map[string]any{"name": p.Name, "error": out.Error})
	} else {
		s.tel.Counter(cAccepted).Inc()
	}

	ttl := s.opts.DefaultTTL
	if p.TTLSeconds > 0 {
		ttl = time.Duration(p.TTLSeconds * float64(time.Second))
	}
	s.svc.Lifetimes.Register(p.Name, ttl, func() { s.expire(p.Name) })
	// out is a private clone and SDEs.Set marshals synchronously, so
	// publishing it cannot race with the caller.
	s.publish(out)
	return out, nil
}

// expire removes a transaction whose soft-state lifetime lapsed.
func (s *Server) expire(name string) {
	s.mu.Lock()
	tx, ok := s.txs[name]
	if ok && tx.rec.State == StateExecuting {
		// Never reap a transaction mid-execution; it re-registers on
		// completion via publish and will be swept on a later pass.
		s.mu.Unlock()
		s.svc.Lifetimes.Register(name, s.opts.DefaultTTL, func() { s.expire(name) })
		return
	}
	delete(s.txs, name)
	s.mu.Unlock()
	s.svc.SDEs.Delete(txSDE(name))
}

// Execute runs an accepted transaction at most once. Concurrent or retried
// Execute calls for the same name wait for (or pick up) the single
// execution's outcome. An Execute that lands mid-validation — a retried
// request racing the original Propose, or a fast-path replay — waits for the
// propose decision instead of faulting: before this fix it fell through to a
// non-retryable CodeInternal, turning a benign race into a terminal error
// (the class of transient-failure mishandling that ended the public MOST
// run).
func (s *Server) Execute(ctx context.Context, client, name string) (*Record, error) {
	ctx, span := s.tracer.Start(ctx, "ntcp.execute", trace.KindInternal)
	if span != nil {
		span.SetAttr("tx", name)
		span.SetAttr("plugin", s.pluginName)
		defer span.End()
	}
	for {
		s.mu.Lock()
		tx, ok := s.txs[name]
		if !ok {
			s.mu.Unlock()
			return nil, ogsi.Errf(ogsi.CodeNotFound, "no transaction %q", name)
		}
		rec := tx.rec
		if rec.Client != client {
			s.mu.Unlock()
			return nil, ogsi.Errf(ogsi.CodeDenied, "transaction %q belongs to %q", name, rec.Client)
		}
		switch rec.State {
		case StateExecuted, StateFailed:
			s.stats.DedupedReplay++
			out := rec.clone()
			s.mu.Unlock()
			s.tel.Counter(cDeduped).Inc()
			return out, nil
		case StateRejected, StateCancelled:
			st := rec.State
			s.mu.Unlock()
			return nil, ogsi.Errf(ogsi.CodeConflict, "transaction %q is %s", name, st)
		case StateProposed:
			// Mid-validation: wait for Propose to decide, then re-evaluate.
			decided := tx.decided
			s.mu.Unlock()
			if decided == nil {
				// No deciding goroutine to wait on (should not happen):
				// transient, so the client retry loop takes another look.
				return nil, ogsi.Errf(ogsi.CodeUnavailable, "transaction %q awaiting propose decision", name)
			}
			select {
			case <-decided:
				continue
			case <-ctx.Done():
				return nil, ogsi.Errf(ogsi.CodeUnavailable, "transaction %q awaiting propose decision", name)
			}
		case StateExecuting:
			done := tx.done
			s.stats.DedupedReplay++
			s.mu.Unlock()
			s.tel.Counter(cDeduped).Inc()
			select {
			case <-done:
				s.mu.Lock()
				out := rec.clone()
				s.mu.Unlock()
				return out, nil
			case <-ctx.Done():
				return nil, ogsi.Errf(ogsi.CodeUnavailable, "transaction %q still executing", name)
			}
		case StateAccepted:
			rec.State = StateExecuting
			rec.Timestamps[StateExecuting] = s.opts.Clock()
			tx.done = make(chan struct{})
			done := tx.done
			actions := append([]Action(nil), rec.Actions...)
			timeout := s.opts.DefaultExecuteTimeout
			if rec.Timeout > 0 {
				timeout = time.Duration(rec.Timeout * float64(time.Second))
			}
			s.inflight++
			pub := rec.clone()
			s.mu.Unlock()
			// Publish the executing snapshot before the execution goroutine
			// can finish: SDE updates stay ordered and never touch the live
			// record outside the lock.
			s.publish(pub)

			// Execution deliberately detaches from the request context: once
			// an action starts against a physical rig it completes (or fails)
			// regardless of whether the requesting connection survives, and a
			// retry collects the cached outcome — the at-most-once contract.
			// The initiating span's context rides along so the plugin run is
			// recorded as its child even after the request returns.
			go s.runExecution(name, actions, timeout, done, span.Context())

			select {
			case <-done:
				s.mu.Lock()
				out := rec.clone()
				s.mu.Unlock()
				return out, nil
			case <-ctx.Done():
				return nil, ogsi.Errf(ogsi.CodeUnavailable, "transaction %q still executing", name)
			}
		default:
			s.mu.Unlock()
			return nil, ogsi.Errf(ogsi.CodeInternal, "transaction %q in unexpected state %s", name, rec.State)
		}
	}
}

func (s *Server) runExecution(name string, actions []Action, timeout time.Duration, done chan struct{}, parent trace.SpanContext) {
	defer close(done)
	defer s.execDone()
	// Derived from the server's base context (not the request's): the
	// at-most-once contract means an action outlives its connection, but
	// not the server's drain deadline — Stop cancels execCtx when the
	// drain budget runs out.
	execCtx, cancel := context.WithTimeout(s.execCtx, timeout)
	defer cancel()
	start := time.Now()
	results, err := s.plugin.Execute(execCtx, actions)
	s.tel.Histogram("ntcp.server.plugin.execute.seconds").ObserveDuration(time.Since(start))
	if s.tracer != nil {
		attrs := map[string]string{"tx": name, "plugin": s.pluginName}
		if err != nil {
			attrs["error"] = err.Error()
		}
		s.tracer.RecordSpan(parent, "ntcp.plugin.execute", trace.KindInternal, start, time.Now(), attrs)
	}

	s.mu.Lock()
	tx, ok := s.txs[name]
	if !ok {
		s.mu.Unlock()
		return
	}
	rec := tx.rec
	now := s.opts.Clock()
	if err != nil {
		rec.State = StateFailed
		rec.Error = err.Error()
		rec.Timestamps[StateFailed] = now
		s.stats.Failed++
	} else {
		rec.State = StateExecuted
		rec.Results = results
		rec.Timestamps[StateExecuted] = now
		s.stats.Executed++
		for _, r := range results {
			s.lastPos[r.ControlPoint] = append([]float64(nil), r.Displacements...)
		}
	}
	pub := rec.clone()
	s.mu.Unlock()
	if err != nil {
		s.tel.Counter(cFailed).Inc()
		s.tel.Event("ntcp", "tx-failed", map[string]any{"name": name, "error": err.Error()})
	} else {
		s.tel.Counter(cExecuted).Inc()
	}
	s.publish(pub)
}

// Cancel aborts an accepted transaction before execution. Cancelling an
// already-cancelled or rejected transaction is an idempotent no-op;
// cancelling one that is executing or executed is a conflict (physical
// actions cannot be undone — paper §2.1). A cancel racing the original
// Propose mid-validation waits for the propose decision, like Execute.
func (s *Server) Cancel(ctx context.Context, client, name string) (*Record, error) {
	ctx, span := s.tracer.Start(ctx, "ntcp.cancel", trace.KindInternal)
	if span != nil {
		span.SetAttr("tx", name)
		defer span.End()
	}
	for {
		s.mu.Lock()
		tx, ok := s.txs[name]
		if !ok {
			s.mu.Unlock()
			return nil, ogsi.Errf(ogsi.CodeNotFound, "no transaction %q", name)
		}
		rec := tx.rec
		if rec.Client != client {
			s.mu.Unlock()
			return nil, ogsi.Errf(ogsi.CodeDenied, "transaction %q belongs to %q", name, rec.Client)
		}
		if rec.State == StateProposed {
			decided := tx.decided
			s.mu.Unlock()
			if decided == nil {
				return nil, ogsi.Errf(ogsi.CodeUnavailable, "transaction %q awaiting propose decision", name)
			}
			select {
			case <-decided:
				continue
			case <-ctx.Done():
				return nil, ogsi.Errf(ogsi.CodeUnavailable, "transaction %q awaiting propose decision", name)
			}
		}
		return s.cancelDecided(tx, name)
	}
}

// cancelDecided finishes Cancel once the transaction is past StateProposed.
// Called with s.mu held; releases it.
func (s *Server) cancelDecided(tx *transaction, name string) (*Record, error) {
	rec := tx.rec
	switch rec.State {
	case StateAccepted:
		rec.State = StateCancelled
		rec.Timestamps[StateCancelled] = s.opts.Clock()
		s.stats.Cancelled++
		out := rec.clone()
		s.mu.Unlock()
		s.tel.Counter(cCancelled).Inc()
		s.tel.Event("ntcp", "tx-cancelled", map[string]any{"name": name})
		s.publish(out)
		return out, nil
	case StateCancelled, StateRejected:
		out := rec.clone()
		s.mu.Unlock()
		return out, nil
	default:
		st := rec.State
		s.mu.Unlock()
		return nil, ogsi.Errf(ogsi.CodeConflict, "cannot cancel transaction %q in state %s", name, st)
	}
}

// Get returns a transaction record.
func (s *Server) Get(name string) (*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.txs[name]
	if !ok {
		return nil, ogsi.Errf(ogsi.CodeNotFound, "no transaction %q", name)
	}
	return tx.rec.clone(), nil
}

// wire types for the service operations.
type nameParams struct {
	Name string `json:"name"`
}

func (s *Server) registerOps() {
	s.svc.RegisterOp("propose", func(ctx context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p Proposal
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad proposal: %v", err)
		}
		return s.Propose(ctx, caller.Identity, &p)
	})
	s.svc.RegisterOp("execute", func(ctx context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p nameParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad execute params: %v", err)
		}
		return s.Execute(ctx, caller.Identity, p.Name)
	})
	s.svc.RegisterOp("cancel", func(ctx context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p nameParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad cancel params: %v", err)
		}
		return s.Cancel(ctx, caller.Identity, p.Name)
	})
	s.registerFastPathOp()
	s.svc.RegisterOp("get", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p nameParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad get params: %v", err)
		}
		return s.Get(p.Name)
	})
}

// execDone retires one in-flight execution and wakes a waiting Stop when
// the last one finishes.
func (s *Server) execDone() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
	s.mu.Unlock()
}

// Start satisfies the runtime component contract. The server itself has
// nothing to bring up — it serves through its hosting container — but the
// explicit lifecycle lets a supervisor order it between the container and
// the control backend.
func (s *Server) Start(context.Context) error { return nil }

// Healthy reports nil while the server accepts new transactions.
func (s *Server) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return fmt.Errorf("ntcp server %q stopped", s.opts.ServiceName)
	}
	if s.draining {
		return fmt.Errorf("ntcp server %q draining (%d executions in flight)",
			s.opts.ServiceName, s.inflight)
	}
	return nil
}

// drainCancelGrace bounds how long Stop waits, after cancelling the base
// execution context, for overdue executions to observe the cancellation
// and journal their failure records.
const drainCancelGrace = 2 * time.Second

// Stop drains the server: from this moment new Propose calls are refused
// with the retryable CodeUnavailable (replays of known transactions are
// still answered from the table), in-flight executions get until ctx's
// deadline to finish, and any that overrun are cancelled through the
// plugin context and journalled — their names land in a "drain-cancelled"
// telemetry event and their records finish StateFailed, so a post-mortem
// can tell exactly which actuator moves were cut short. Stop must run
// while the hosting container is still serving, so clients see the NTCP
// fault code rather than a connection reset; a supervisor gets this
// ordering for free by registering the server after the container.
func (s *Server) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	n := s.inflight
	var idle chan struct{}
	if n > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		idle = s.idle
	}
	s.mu.Unlock()

	s.tel.Event("ntcp", "drain-begin", map[string]any{"inflight": n})
	if n == 0 {
		s.finishStop(nil)
		return nil
	}
	select {
	case <-idle:
		s.finishStop(nil)
		return nil
	case <-ctx.Done():
	}

	// Drain deadline exceeded: cancel the survivors and journal them.
	s.mu.Lock()
	var survivors []string
	for name, tx := range s.txs {
		if tx.rec.State == StateExecuting {
			survivors = append(survivors, name)
		}
	}
	s.mu.Unlock()
	sort.Strings(survivors)
	s.tel.Event("ntcp", "drain-cancelled", map[string]any{
		"transactions": survivors,
	})
	s.execCancel()
	select {
	case <-idle:
		s.finishStop(survivors)
		return nil
	case <-time.After(drainCancelGrace):
		s.finishStop(survivors)
		return fmt.Errorf("ntcp server %q: %d executions ignored drain cancellation",
			s.opts.ServiceName, len(survivors))
	}
}

// finishStop marks the server stopped and journals the drain outcome.
func (s *Server) finishStop(cancelled []string) {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.tel.Event("ntcp", "drain-complete", map[string]any{
		"cancelled": len(cancelled),
	})
}

// String describes the server briefly.
func (s *Server) String() string {
	return fmt.Sprintf("ntcp server %q", s.opts.ServiceName)
}
