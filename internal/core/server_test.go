package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/ogsi"
)

// springPlugin is a SubstructurePlugin over a linear spring.
func springPlugin(k float64) *SubstructurePlugin {
	return &SubstructurePlugin{
		Point: "drift",
		NDOF:  1,
		Apply: func(d []float64) ([]float64, error) {
			return []float64{k * d[0]}, nil
		},
	}
}

func proposal(name string, d float64) *Proposal {
	return &Proposal{Name: name, Actions: []Action{{ControlPoint: "drift", Displacements: []float64{d}}}}
}

func TestProposeExecuteHappyPath(t *testing.T) {
	s := NewServer(springPlugin(100), nil, ServerOptions{})
	ctx := context.Background()
	rec, err := s.Propose(ctx, "alice", proposal("t1", 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateAccepted {
		t.Fatalf("state = %s, want accepted", rec.State)
	}
	rec, err = s.Execute(ctx, "alice", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %s, want executed", rec.State)
	}
	if len(rec.Results) != 1 || rec.Results[0].Forces[0] != 2 {
		t.Fatalf("results = %+v, want force 2", rec.Results)
	}
	// Every state change must be timestamped.
	for _, st := range []TxState{StateProposed, StateAccepted, StateExecuting, StateExecuted} {
		if _, ok := rec.Timestamps[st]; !ok {
			t.Errorf("missing timestamp for %s", st)
		}
	}
}

func TestProposeIdempotentByName(t *testing.T) {
	s := NewServer(springPlugin(100), nil, ServerOptions{})
	ctx := context.Background()
	first, _ := s.Propose(ctx, "alice", proposal("t1", 0.02))
	again, err := s.Propose(ctx, "alice", proposal("t1", 0.9)) // different body: still the original answer
	if err != nil {
		t.Fatal(err)
	}
	if again.State != first.State || again.Actions[0].Displacements[0] != 0.02 {
		t.Fatalf("replayed proposal mutated the transaction: %+v", again)
	}
	if s.Stats().DedupedReplay == 0 {
		t.Fatal("dedupe counter not incremented")
	}
	if s.Stats().Proposed != 1 {
		t.Fatalf("proposed = %d, want 1", s.Stats().Proposed)
	}
}

func TestExecuteAtMostOnce(t *testing.T) {
	var mu sync.Mutex
	executions := 0
	p := PluginFunc(func(_ context.Context, actions []Action) ([]Result, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		return []Result{{ControlPoint: "drift", Displacements: actions[0].Displacements, Forces: []float64{1}}}, nil
	})
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()
	if _, err := s.Propose(ctx, "alice", proposal("t1", 0.01)); err != nil {
		t.Fatal(err)
	}
	// Fire 8 concurrent Execute calls — the retry storm a flaky network
	// produces. Exactly one plugin execution may happen.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec, err := s.Execute(ctx, "alice", "t1")
			if err != nil {
				t.Error(err)
				return
			}
			if rec.State != StateExecuted {
				t.Errorf("state = %s", rec.State)
			}
		}()
	}
	wg.Wait()
	if executions != 1 {
		t.Fatalf("plugin executed %d times, want exactly 1", executions)
	}
}

func TestExecuteAfterCompletionReplaysResult(t *testing.T) {
	s := NewServer(springPlugin(50), nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t1", 0.1))
	first, err := s.Execute(ctx, "alice", "t1")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s.Execute(ctx, "alice", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if replay.Results[0].Forces[0] != first.Results[0].Forces[0] {
		t.Fatal("replayed execute returned different results")
	}
	if s.Stats().Executed != 1 {
		t.Fatalf("executed counter = %d, want 1", s.Stats().Executed)
	}
}

func TestPolicyRejection(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{
		"drift": {MaxDisplacement: 0.05},
	}}
	s := NewServer(springPlugin(100), pol, ServerOptions{})
	ctx := context.Background()
	rec, err := s.Propose(ctx, "alice", proposal("big", 0.10))
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRejected {
		t.Fatalf("state = %s, want rejected", rec.State)
	}
	// Execute on a rejected transaction is a conflict...
	if _, err := s.Execute(ctx, "alice", "big"); !ogsi.IsRemoteCode(wrapOp(err), ogsi.CodeConflict) {
		t.Fatalf("execute on rejected: %v", err)
	}
	// ...and nothing ever reached the plugin.
	if s.Stats().Executed != 0 {
		t.Fatal("rejected proposal executed")
	}
}

// wrapOp converts an *ogsi.OpError into a RemoteError-shaped check.
func wrapOp(err error) error {
	var oe *ogsi.OpError
	if errors.As(err, &oe) {
		return &ogsi.RemoteError{Code: oe.Code, Message: oe.Message}
	}
	return err
}

func TestPolicyForceEstimate(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{
		"drift": {MaxForceEstimate: 100, StiffnessEst: 1000}, // d > 0.1 rejected
	}}
	s := NewServer(springPlugin(1000), pol, ServerOptions{})
	rec, _ := s.Propose(context.Background(), "alice", proposal("f", 0.2))
	if rec.State != StateRejected {
		t.Fatalf("state = %s, want rejected by force estimate", rec.State)
	}
	rec, _ = s.Propose(context.Background(), "alice", proposal("ok", 0.05))
	if rec.State != StateAccepted {
		t.Fatalf("state = %s, want accepted", rec.State)
	}
}

func TestPolicyMaxStepUsesLastExecutedPosition(t *testing.T) {
	pol := &SitePolicy{PointLimits: map[string]Limits{
		"drift": {MaxStep: 0.05},
	}}
	s := NewServer(springPlugin(10), pol, ServerOptions{})
	ctx := context.Background()
	// First move: no prior position, any target within other limits is fine.
	if rec, _ := s.Propose(ctx, "alice", proposal("s1", 0.04)); rec.State != StateAccepted {
		t.Fatal("first step rejected")
	}
	if _, err := s.Execute(ctx, "alice", "s1"); err != nil {
		t.Fatal(err)
	}
	// 0.04 -> 0.2 is a 0.16 step: reject.
	if rec, _ := s.Propose(ctx, "alice", proposal("s2", 0.2)); rec.State != StateRejected {
		t.Fatal("oversized step accepted")
	}
	// 0.04 -> 0.08 is fine.
	if rec, _ := s.Propose(ctx, "alice", proposal("s3", 0.08)); rec.State != StateAccepted {
		t.Fatal("legal step rejected")
	}
}

func TestPolicyAllowedClients(t *testing.T) {
	pol := &SitePolicy{AllowedClients: map[string]bool{"alice": true}}
	s := NewServer(springPlugin(10), pol, ServerOptions{})
	if rec, _ := s.Propose(context.Background(), "mallory", proposal("m", 0.01)); rec.State != StateRejected {
		t.Fatal("disallowed client accepted")
	}
	if rec, _ := s.Propose(context.Background(), "alice", proposal("a", 0.01)); rec.State != StateAccepted {
		t.Fatal("allowed client rejected")
	}
}

func TestPluginValidationVeto(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	rec, err := s.Propose(context.Background(), "alice", &Proposal{
		Name:    "bad-point",
		Actions: []Action{{ControlPoint: "unknown", Displacements: []float64{0.01}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRejected {
		t.Fatalf("state = %s, want rejected by plugin", rec.State)
	}
}

func TestCancelAcceptedTransaction(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t", 0.01))
	rec, err := s.Cancel(ctx, "alice", "t")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCancelled {
		t.Fatalf("state = %s", rec.State)
	}
	// Cancel again: idempotent.
	if _, err := s.Cancel(ctx, "alice", "t"); err != nil {
		t.Fatalf("second cancel: %v", err)
	}
	// Execute after cancel: conflict.
	if _, err := s.Execute(ctx, "alice", "t"); err == nil {
		t.Fatal("execute after cancel should fail")
	}
}

func TestCancelExecutedConflicts(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t", 0.01))
	_, _ = s.Execute(ctx, "alice", "t")
	if _, err := s.Cancel(ctx, "alice", "t"); err == nil {
		t.Fatal("cancelling an executed transaction must conflict (physical actions cannot be undone)")
	}
}

func TestOwnershipEnforced(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t", 0.01))
	if _, err := s.Execute(ctx, "mallory", "t"); err == nil {
		t.Fatal("foreign execute should be denied")
	}
	if _, err := s.Cancel(ctx, "mallory", "t"); err == nil {
		t.Fatal("foreign cancel should be denied")
	}
}

func TestExecuteUnknownTransaction(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	if _, err := s.Execute(context.Background(), "alice", "nope"); err == nil {
		t.Fatal("unknown transaction should fail")
	}
}

func TestExecutionFailureRecorded(t *testing.T) {
	p := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		return nil, fmt.Errorf("hydraulic pressure lost")
	})
	s := NewServer(p, nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t", 0.01))
	rec, err := s.Execute(ctx, "alice", "t")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFailed || rec.Error == "" {
		t.Fatalf("record = %+v, want failed with error", rec)
	}
	// Retry replays the failure rather than re-running the action.
	rec2, _ := s.Execute(ctx, "alice", "t")
	if rec2.State != StateFailed {
		t.Fatal("failure replay wrong")
	}
	if s.Stats().Failed != 1 {
		t.Fatalf("failed counter = %d", s.Stats().Failed)
	}
}

func TestExecutionTimeout(t *testing.T) {
	p := PluginFunc(func(ctx context.Context, _ []Action) ([]Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return []Result{}, nil
		}
	})
	s := NewServer(p, nil, ServerOptions{DefaultExecuteTimeout: 20 * time.Millisecond})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("slow", 0.01))
	rec, err := s.Execute(ctx, "alice", "slow")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFailed {
		t.Fatalf("state = %s, want failed on timeout", rec.State)
	}
}

func TestExecuteDetachesFromRequestContext(t *testing.T) {
	// A client whose connection dies mid-execution must still get the
	// completed result on retry: execution is bound to the server, not the
	// request.
	release := make(chan struct{})
	p := PluginFunc(func(context.Context, []Action) ([]Result, error) {
		<-release
		return []Result{{ControlPoint: "drift", Displacements: []float64{0.01}, Forces: []float64{1}}}, nil
	})
	s := NewServer(p, nil, ServerOptions{})
	bg := context.Background()
	_, _ = s.Propose(bg, "alice", proposal("t", 0.01))

	short, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	defer cancel()
	_, err := s.Execute(short, "alice", "t")
	if err == nil {
		t.Fatal("expected unavailable while executing")
	}
	close(release)
	// Retry with a healthy context: the single execution's result arrives.
	rec, err := s.Execute(bg, "alice", "t")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateExecuted {
		t.Fatalf("state = %s", rec.State)
	}
	if s.Stats().Executed != 1 {
		t.Fatalf("executed = %d, want 1", s.Stats().Executed)
	}
}

func TestTransactionSDEsPublished(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	ctx := context.Background()
	_, _ = s.Propose(ctx, "alice", proposal("t9", 0.01))
	var rec Record
	if err := s.Service().SDEs.GetInto("tx:t9", &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateAccepted {
		t.Fatalf("SDE state = %s", rec.State)
	}
	var last string
	if err := s.Service().SDEs.GetInto("last-transaction", &last); err != nil {
		t.Fatal(err)
	}
	if last != "t9" {
		t.Fatalf("last-transaction = %q", last)
	}
	_, _ = s.Execute(ctx, "alice", "t9")
	_ = s.Service().SDEs.GetInto("tx:t9", &rec)
	if rec.State != StateExecuted {
		t.Fatalf("SDE not updated after execute: %s", rec.State)
	}
	var st Stats
	if err := s.Service().SDEs.GetInto("stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Executed != 1 {
		t.Fatalf("stats SDE = %+v", st)
	}
}

func TestSoftStateExpiryReapsTransactions(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	ctx := context.Background()
	_, err := s.Propose(ctx, "alice", &Proposal{
		Name:       "ephemeral",
		Actions:    []Action{{ControlPoint: "drift", Displacements: []float64{0.01}}},
		TTLSeconds: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	s.Service().Lifetimes.Sweep()
	if _, err := s.Get("ephemeral"); err == nil {
		t.Fatal("expired transaction still present")
	}
	if _, ok := s.Service().SDEs.Get("tx:ephemeral"); ok {
		t.Fatal("expired transaction SDE still present")
	}
}

func TestGet(t *testing.T) {
	s := NewServer(springPlugin(10), nil, ServerOptions{})
	_, _ = s.Propose(context.Background(), "alice", proposal("t", 0.01))
	rec, err := s.Get("t")
	if err != nil || rec.Name != "t" {
		t.Fatalf("Get = %v, %v", rec, err)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("Get missing should fail")
	}
}

func TestSubstructurePluginValidate(t *testing.T) {
	p := springPlugin(10)
	ctx := context.Background()
	if err := p.Validate(ctx, []Action{{ControlPoint: "drift", Displacements: []float64{1, 2}}}); err == nil {
		t.Fatal("DOF mismatch should fail validation")
	}
	if err := p.Validate(ctx, []Action{{ControlPoint: "wrong", Displacements: []float64{1}}}); err == nil {
		t.Fatal("unknown control point should fail validation")
	}
}
