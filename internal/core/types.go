// Package core implements NTCP, the NEESgrid Teleoperation Control Protocol
// (paper §2.1, Figs. 1, 2, 9): a transaction-based Grid-service protocol for
// driving physical control systems and numerical simulations through one
// uniform interface.
//
// An NTCP interaction is a transaction: the client sends a proposal (a set
// of requested actions); the server validates it against site policy and the
// local control plugin; if accepted, the client issues execute to make the
// proposed actions happen; results flow back for the client to compute the
// next step. Transactions are idempotent by name, giving the protocol
// at-most-once semantics: a client that times out can re-send a request
// with no danger of the same action being applied twice — the property the
// MOST experiment's fault tolerance rests on.
package core

import (
	"fmt"
	"time"
)

// TxState enumerates the transaction lifecycle states of Fig. 1.
type TxState string

const (
	// StateProposed: the proposal has been received and recorded but not
	// yet accepted or rejected (transient, visible only mid-validation).
	StateProposed TxState = "proposed"
	// StateAccepted: the proposal passed policy and plugin validation; the
	// client may execute or cancel.
	StateAccepted TxState = "accepted"
	// StateRejected: the proposal violates site policy or was vetoed by
	// the control plugin. Terminal.
	StateRejected TxState = "rejected"
	// StateExecuting: the plugin is applying the proposed actions.
	StateExecuting TxState = "executing"
	// StateExecuted: the actions completed; results are available. Terminal.
	StateExecuted TxState = "executed"
	// StateCancelled: the client cancelled before execution. Terminal.
	StateCancelled TxState = "cancelled"
	// StateFailed: execution started but failed (plugin error or timeout).
	// Terminal.
	StateFailed TxState = "failed"
)

// Terminal reports whether a state admits no further transitions.
func (s TxState) Terminal() bool {
	switch s {
	case StateRejected, StateExecuted, StateCancelled, StateFailed:
		return true
	}
	return false
}

// legalTransitions is the Fig. 1 state machine.
var legalTransitions = map[TxState][]TxState{
	StateProposed:  {StateAccepted, StateRejected},
	StateAccepted:  {StateExecuting, StateCancelled},
	StateExecuting: {StateExecuted, StateFailed},
}

// CanTransition reports whether from → to is a legal Fig. 1 transition.
func CanTransition(from, to TxState) bool {
	for _, t := range legalTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// Action requests that a control point be driven to target displacements
// and (after any hold time) its reaction measured. This is the generic
// "requested action" of the paper; the plugin maps it onto the local
// control system or simulation.
type Action struct {
	// ControlPoint names the actuator/DOF group the action addresses
	// (e.g. "story-drift").
	ControlPoint string `json:"control_point"`
	// Displacements are the target displacements in meters, one per DOF
	// of the control point.
	Displacements []float64 `json:"displacements"`
	// HoldSeconds is how long to hold the target before measuring (rig
	// settle time). Zero means measure as soon as the target is reached.
	HoldSeconds float64 `json:"hold_seconds,omitempty"`
}

// Result reports the measured state of a control point after execution.
type Result struct {
	ControlPoint string `json:"control_point"`
	// Displacements are the achieved displacements (meters) — for a rig,
	// where the actuator actually settled; for a simulation, the imposed
	// values exactly.
	Displacements []float64 `json:"displacements"`
	// Forces are the measured restoring forces (newtons).
	Forces []float64 `json:"forces"`
}

// Proposal is the client's request to create a transaction.
type Proposal struct {
	// Name is the client-chosen transaction name; retries reuse the name,
	// which is what gives NTCP its at-most-once semantics.
	Name    string   `json:"name"`
	Actions []Action `json:"actions"`
	// ExecuteTimeoutSeconds bounds execution wall time; 0 means the
	// server default.
	ExecuteTimeoutSeconds float64 `json:"execute_timeout_seconds,omitempty"`
	// TTLSeconds is the requested soft-state lifetime of the transaction
	// record; 0 means the server default.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
}

// Record is the full transaction state published as an OGSI service data
// element: name, state, the proposal that created it, results when
// available, and a timestamp for every state change in its lifetime
// (paper §2.1).
type Record struct {
	Name       string                `json:"name"`
	State      TxState               `json:"state"`
	Actions    []Action              `json:"actions"`
	Timeout    float64               `json:"execute_timeout_seconds"`
	Results    []Result              `json:"results,omitempty"`
	Error      string                `json:"error,omitempty"`
	Client     string                `json:"client"`
	Timestamps map[TxState]time.Time `json:"timestamps"`
}

// clone returns a deep copy safe to hand to callers.
func (r *Record) clone() *Record {
	c := *r
	c.Actions = append([]Action(nil), r.Actions...)
	c.Results = append([]Result(nil), r.Results...)
	c.Timestamps = make(map[TxState]time.Time, len(r.Timestamps))
	for k, v := range r.Timestamps {
		c.Timestamps[k] = v
	}
	return &c
}

// Validate checks structural validity of a proposal (not policy).
func (p *Proposal) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("ntcp: proposal needs a transaction name")
	}
	if len(p.Actions) == 0 {
		return fmt.Errorf("ntcp: proposal %q has no actions", p.Name)
	}
	for i, a := range p.Actions {
		if a.ControlPoint == "" {
			return fmt.Errorf("ntcp: proposal %q action %d has no control point", p.Name, i)
		}
		if len(a.Displacements) == 0 {
			return fmt.Errorf("ntcp: proposal %q action %d has no displacements", p.Name, i)
		}
		if a.HoldSeconds < 0 {
			return fmt.Errorf("ntcp: proposal %q action %d has negative hold", p.Name, i)
		}
	}
	return nil
}
