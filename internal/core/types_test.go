package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTransactionStateMachine(t *testing.T) {
	// E4: the legal transitions of Fig. 1, exhaustively.
	legal := []struct{ from, to TxState }{
		{StateProposed, StateAccepted},
		{StateProposed, StateRejected},
		{StateAccepted, StateExecuting},
		{StateAccepted, StateCancelled},
		{StateExecuting, StateExecuted},
		{StateExecuting, StateFailed},
	}
	for _, tr := range legal {
		if !CanTransition(tr.from, tr.to) {
			t.Errorf("transition %s -> %s should be legal", tr.from, tr.to)
		}
	}
	illegal := []struct{ from, to TxState }{
		{StateProposed, StateExecuting}, // must be accepted first
		{StateProposed, StateExecuted},
		{StateRejected, StateAccepted}, // terminal states admit nothing
		{StateRejected, StateExecuting},
		{StateExecuted, StateExecuting},
		{StateCancelled, StateExecuting},
		{StateFailed, StateExecuting},
		{StateExecuting, StateCancelled}, // physical actions cannot be undone
		{StateAccepted, StateExecuted},   // cannot skip executing
		{StateExecuted, StateProposed},
	}
	for _, tr := range illegal {
		if CanTransition(tr.from, tr.to) {
			t.Errorf("transition %s -> %s should be illegal", tr.from, tr.to)
		}
	}
}

func TestTerminalStates(t *testing.T) {
	for _, s := range []TxState{StateRejected, StateExecuted, StateCancelled, StateFailed} {
		if !s.Terminal() {
			t.Errorf("%s should be terminal", s)
		}
	}
	for _, s := range []TxState{StateProposed, StateAccepted, StateExecuting} {
		if s.Terminal() {
			t.Errorf("%s should not be terminal", s)
		}
	}
}

// Property: no transition ever leaves a terminal state.
func TestNoTransitionFromTerminalProperty(t *testing.T) {
	states := []TxState{StateProposed, StateAccepted, StateRejected,
		StateExecuting, StateExecuted, StateCancelled, StateFailed}
	f := func(i, j uint8) bool {
		from := states[int(i)%len(states)]
		to := states[int(j)%len(states)]
		if from.Terminal() && CanTransition(from, to) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProposalValidate(t *testing.T) {
	ok := &Proposal{Name: "t1", Actions: []Action{{ControlPoint: "cp", Displacements: []float64{0.01}}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Proposal{
		{Actions: []Action{{ControlPoint: "cp", Displacements: []float64{1}}}}, // no name
		{Name: "t"}, // no actions
		{Name: "t", Actions: []Action{{Displacements: []float64{1}}}},                                      // no control point
		{Name: "t", Actions: []Action{{ControlPoint: "cp"}}},                                               // no displacements
		{Name: "t", Actions: []Action{{ControlPoint: "cp", Displacements: []float64{1}, HoldSeconds: -1}}}, // negative hold
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRecordClone(t *testing.T) {
	r := &Record{
		Name:       "t",
		State:      StateExecuted,
		Actions:    []Action{{ControlPoint: "cp", Displacements: []float64{1}}},
		Results:    []Result{{ControlPoint: "cp", Forces: []float64{2}}},
		Timestamps: map[TxState]time.Time{StateExecuted: time.Unix(5, 0)},
	}
	c := r.clone()
	c.Actions[0].ControlPoint = "other"
	c.Results[0].Forces[0] = 99 // note: inner slices are shared; header copy only
	c.Timestamps[StateFailed] = time.Unix(9, 0)
	if r.Actions[0].ControlPoint != "cp" {
		t.Fatal("clone shares the actions slice")
	}
	if _, leaked := r.Timestamps[StateFailed]; leaked {
		t.Fatal("clone shares the timestamps map")
	}
}
