// Package daq emulates the LabVIEW-based data acquisition of the MOST sites
// (paper §3.2, Fig. 10): sensor channels sampled against the live rig or
// simulation state, deposited as spool files on a (network) file system,
// and simultaneously fed to the NSDS streaming hub. A poller picks spool
// files up for upload to the repository — "a simple LabVIEW interface …
// periodically gathered data deposited by the DAQ in a network-mounted file
// system; NFMS and GridFTP were then used to upload it".
package daq

import (
	"context"
	"encoding/csv"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"neesgrid/internal/nsds"
)

// SensorKind labels the instrument type (metadata for NMDS).
type SensorKind string

// The instruments used at the MOST and Mini-MOST sites.
const (
	LVDT          SensorKind = "lvdt"          // position
	LoadCell      SensorKind = "load-cell"     // force
	StrainGauge   SensorKind = "strain-gauge"  // strain
	Accelerometer SensorKind = "accelerometer" // acceleration
)

// Channel is one sensor channel: a name, a source, and a noise model.
type Channel struct {
	// Name is the fully qualified channel name (e.g. "uiuc.lvdt1").
	Name string
	// Kind is the instrument type.
	Kind SensorKind
	// Units documents the reading units ("m", "N", ...).
	Units string
	// Read returns the current physical value.
	Read func() float64
	// Gain scales the physical value (sensor calibration); 0 means 1.
	Gain float64
	// NoiseStd adds Gaussian sensor noise.
	NoiseStd float64
}

// Reading is one sampled value.
type Reading struct {
	Channel string  `json:"channel"`
	Kind    string  `json:"kind"`
	Units   string  `json:"units"`
	Step    int     `json:"step"`
	T       float64 `json:"t"`
	Value   float64 `json:"value"`
}

// DAQ samples a set of channels.
type DAQ struct {
	Site string

	mu       sync.Mutex
	channels []Channel
	rng      *rand.Rand
	hub      *nsds.Hub
	spool    *Spool
	scans    int
}

// New builds a DAQ for a site; seed fixes the sensor noise.
func New(site string, seed int64) *DAQ {
	return &DAQ{Site: site, rng: rand.New(rand.NewSource(seed))}
}

// AddChannel registers a sensor channel.
func (d *DAQ) AddChannel(c Channel) error {
	if c.Name == "" || c.Read == nil {
		return fmt.Errorf("daq: channel needs a name and a source")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, existing := range d.channels {
		if existing.Name == c.Name {
			return fmt.Errorf("daq: duplicate channel %q", c.Name)
		}
	}
	d.channels = append(d.channels, c)
	return nil
}

// Channels lists registered channel names.
func (d *DAQ) Channels() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, len(d.channels))
	for i, c := range d.channels {
		names[i] = c.Name
	}
	return names
}

// AttachHub streams every scan to an NSDS hub.
func (d *DAQ) AttachHub(h *nsds.Hub) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hub = h
}

// AttachSpool deposits every scan into a spool directory.
func (d *DAQ) AttachSpool(s *Spool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.spool = s
}

// Scan samples every channel at experiment time t / step and routes the
// readings to the attached hub and spool.
func (d *DAQ) Scan(step int, t float64) ([]Reading, error) {
	return d.ScanContext(context.Background(), step, t)
}

// ScanContext is Scan with trace propagation: the hub publish of one scan
// is a single batch carrying ctx, so when the hub is traced and ctx holds
// the coordinator's step span, the DAQ readback shows up as that step's
// "nsds.publish" child in the merged timeline.
func (d *DAQ) ScanContext(ctx context.Context, step int, t float64) ([]Reading, error) {
	d.mu.Lock()
	readings := make([]Reading, len(d.channels))
	for i, c := range d.channels {
		gain := c.Gain
		if gain == 0 {
			gain = 1
		}
		v := c.Read()*gain + d.rng.NormFloat64()*c.NoiseStd
		readings[i] = Reading{
			Channel: c.Name, Kind: string(c.Kind), Units: c.Units,
			Step: step, T: t, Value: v,
		}
	}
	hub, spool := d.hub, d.spool
	d.scans++
	d.mu.Unlock()

	if hub != nil {
		// One batch per scan: consecutive sequence numbers for the whole
		// instant, one lock acquisition, and one trace span.
		batch := make([]nsds.Sample, len(readings))
		for i, r := range readings {
			batch[i] = nsds.Sample{Channel: r.Channel, T: r.T, Value: r.Value}
		}
		hub.PublishBatchContext(ctx, batch)
	}
	if spool != nil {
		if err := spool.Append(readings); err != nil {
			return readings, fmt.Errorf("daq: spool: %w", err)
		}
	}
	return readings, nil
}

// Scans returns how many scans have run.
func (d *DAQ) Scans() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.scans
}

// ---------------------------------------------------------------------------
// Spool: LabVIEW-style file deposit + poller
// ---------------------------------------------------------------------------

// Spool accumulates readings and deposits them as CSV blocks in a
// directory, rotating every BlockSize scans.
type Spool struct {
	Dir string
	// BlockSize is the number of scan batches per deposited file.
	BlockSize int

	mu      sync.Mutex
	pending []Reading
	batches int
	seq     int
}

// NewSpool creates (if needed) the spool directory.
func NewSpool(dir string, blockSize int) (*Spool, error) {
	if blockSize < 1 {
		blockSize = 100
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("daq: spool dir: %w", err)
	}
	return &Spool{Dir: dir, BlockSize: blockSize}, nil
}

// Append adds one scan batch, flushing a file when the block fills.
func (s *Spool) Append(batch []Reading) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, batch...)
	s.batches++
	if s.batches >= s.BlockSize {
		return s.flushLocked()
	}
	return nil
}

// Flush deposits any pending readings immediately.
func (s *Spool) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	return s.flushLocked()
}

func (s *Spool) flushLocked() error {
	name := filepath.Join(s.Dir, fmt.Sprintf("block-%06d.csv", s.seq))
	tmp := name + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"channel", "kind", "units", "step", "t", "value"}); err != nil {
		_ = f.Close()
		return err
	}
	for _, r := range s.pending {
		if err := w.Write([]string{
			r.Channel, r.Kind, r.Units,
			strconv.Itoa(r.Step),
			strconv.FormatFloat(r.T, 'g', -1, 64),
			strconv.FormatFloat(r.Value, 'g', -1, 64),
		}); err != nil {
			_ = f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Atomic rename so the poller never sees a half-written block.
	if err := os.Rename(tmp, name); err != nil {
		return err
	}
	s.pending = s.pending[:0]
	s.batches = 0
	s.seq++
	return nil
}

// PollOnce finds deposited blocks, hands each to upload (oldest first), and
// removes blocks that uploaded successfully. It returns the uploaded file
// names.
func (s *Spool) PollOnce(upload func(path string) error) ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, fmt.Errorf("daq: poll: %w", err)
	}
	var blocks []string
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".csv" {
			continue
		}
		blocks = append(blocks, e.Name())
	}
	sort.Strings(blocks)
	var uploaded []string
	for _, b := range blocks {
		path := filepath.Join(s.Dir, b)
		if err := upload(path); err != nil {
			return uploaded, fmt.Errorf("daq: upload %s: %w", b, err)
		}
		if err := os.Remove(path); err != nil {
			return uploaded, fmt.Errorf("daq: remove %s: %w", b, err)
		}
		uploaded = append(uploaded, b)
	}
	return uploaded, nil
}

// ReadBlock parses a deposited CSV block.
func ReadBlock(path string) ([]Reading, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("daq: empty block %s", path)
	}
	out := make([]Reading, 0, len(rows)-1)
	for _, row := range rows[1:] {
		if len(row) != 6 {
			return nil, fmt.Errorf("daq: malformed row in %s", path)
		}
		step, err := strconv.Atoi(row[3])
		if err != nil {
			return nil, err
		}
		t, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, err
		}
		out = append(out, Reading{
			Channel: row[0], Kind: row[1], Units: row[2],
			Step: step, T: t, Value: v,
		})
	}
	return out, nil
}
