package daq

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"neesgrid/internal/nsds"
)

func TestScanReadsChannels(t *testing.T) {
	d := New("uiuc", 1)
	pos := 0.02
	if err := d.AddChannel(Channel{Name: "uiuc.lvdt1", Kind: LVDT, Units: "m", Read: func() float64 { return pos }}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddChannel(Channel{Name: "uiuc.load1", Kind: LoadCell, Units: "N", Read: func() float64 { return 20 }, Gain: 2}); err != nil {
		t.Fatal(err)
	}
	rs, err := d.Scan(1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d readings", len(rs))
	}
	if rs[0].Value != 0.02 {
		t.Fatalf("lvdt = %g", rs[0].Value)
	}
	if rs[1].Value != 40 { // gain applied
		t.Fatalf("load = %g", rs[1].Value)
	}
	if d.Scans() != 1 {
		t.Fatal("scan counter")
	}
	if got := d.Channels(); len(got) != 2 || got[0] != "uiuc.lvdt1" {
		t.Fatalf("channels = %v", got)
	}
}

func TestChannelValidation(t *testing.T) {
	d := New("x", 1)
	if err := d.AddChannel(Channel{Name: "", Read: func() float64 { return 0 }}); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := d.AddChannel(Channel{Name: "a"}); err == nil {
		t.Fatal("nil source should fail")
	}
	_ = d.AddChannel(Channel{Name: "a", Read: func() float64 { return 0 }})
	if err := d.AddChannel(Channel{Name: "a", Read: func() float64 { return 0 }}); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestNoiseDeterministic(t *testing.T) {
	build := func() float64 {
		d := New("x", 42)
		_ = d.AddChannel(Channel{Name: "c", Read: func() float64 { return 1 }, NoiseStd: 0.1})
		rs, _ := d.Scan(0, 0)
		return rs[0].Value
	}
	if build() != build() {
		t.Fatal("noise not deterministic across equal seeds")
	}
	if build() == 1.0 {
		t.Fatal("noise absent")
	}
}

func TestScanPublishesToHub(t *testing.T) {
	d := New("uiuc", 1)
	_ = d.AddChannel(Channel{Name: "uiuc.lvdt1", Read: func() float64 { return 5 }})
	h := nsds.NewHub()
	defer h.Close()
	sub, _ := h.Subscribe(8)
	d.AttachHub(h)
	if _, err := d.Scan(3, 0.03); err != nil {
		t.Fatal(err)
	}
	s := <-sub.C()
	if s.Channel != "uiuc.lvdt1" || s.Value != 5 || s.T != 0.03 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestSpoolRotationAndPoll(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpool(dir, 2) // rotate every 2 scans
	if err != nil {
		t.Fatal(err)
	}
	d := New("uiuc", 1)
	_ = d.AddChannel(Channel{Name: "c1", Read: func() float64 { return 1 }})
	d.AttachSpool(sp)
	for i := 0; i < 5; i++ {
		if _, err := d.Scan(i, float64(i)*0.01); err != nil {
			t.Fatal(err)
		}
	}
	// 5 scans at block size 2 -> 2 full blocks deposited, 1 pending.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("%d blocks deposited, want 2", len(entries))
	}
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 3 {
		t.Fatalf("%d blocks after flush, want 3", len(entries))
	}

	var uploaded [][]Reading
	names, err := sp.PollOnce(func(path string) error {
		rs, err := ReadBlock(path)
		if err != nil {
			return err
		}
		uploaded = append(uploaded, rs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("uploaded %d blocks", len(names))
	}
	total := 0
	for _, rs := range uploaded {
		total += len(rs)
	}
	if total != 5 {
		t.Fatalf("uploaded %d readings, want 5", total)
	}
	// Spool drained.
	entries, _ = os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatal("uploaded blocks not removed")
	}
}

func TestPollStopsOnUploadFailure(t *testing.T) {
	dir := t.TempDir()
	sp, _ := NewSpool(dir, 1)
	d := New("x", 1)
	_ = d.AddChannel(Channel{Name: "c", Read: func() float64 { return 0 }})
	d.AttachSpool(sp)
	_, _ = d.Scan(0, 0)
	_, _ = d.Scan(1, 0.01)

	calls := 0
	_, err := sp.PollOnce(func(string) error {
		calls++
		return os.ErrPermission
	})
	if err == nil {
		t.Fatal("upload failure should surface")
	}
	if calls != 1 {
		t.Fatalf("poller kept going after failure: %d calls", calls)
	}
	// Files remain for the next poll.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("%d blocks remain, want 2", len(entries))
	}
}

func TestReadBlockRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sp, _ := NewSpool(dir, 1)
	in := []Reading{
		{Channel: "c1", Kind: "lvdt", Units: "m", Step: 7, T: 0.07, Value: 1.25},
		{Channel: "c2", Kind: "load-cell", Units: "N", Step: 7, T: 0.07, Value: -33},
	}
	if err := sp.Append(in); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatal("block not deposited")
	}
	out, err := ReadBlock(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestReadBlockErrors(t *testing.T) {
	if _, err := ReadBlock(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing block should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("channel,kind,units,step,t,value\na,b,c,notanint,0,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBlock(bad); err == nil {
		t.Fatal("malformed step should fail")
	}
}

func TestSpoolFlushEmpty(t *testing.T) {
	sp, _ := NewSpool(t.TempDir(), 10)
	if err := sp.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestGainDefaultsAndMath(t *testing.T) {
	d := New("x", 1)
	_ = d.AddChannel(Channel{Name: "c", Read: func() float64 { return math.Pi }})
	rs, _ := d.Scan(0, 0)
	if rs[0].Value != math.Pi {
		t.Fatalf("unit gain broken: %g", rs[0].Value)
	}
}
