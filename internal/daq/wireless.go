package daq

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// The §5 UCLA field test: "field testing of a four-story office building …
// gathering acceleration, strain, and displacement data using wireless
// sensor arrays (802.11 wireless telemetry) … Data and video streams will
// be recorded and archived at a mobile command center before transmission
// to the laboratory using satellite telemetry." This file models the three
// pieces that differ from a wired lab DAQ: lossy wireless telemetry, the
// buffering command center, and a high-latency, batch-limited satellite
// uplink.

// WirelessNode is one battery-powered sensor node.
type WirelessNode struct {
	Channel Channel
	// LinkQuality ∈ (0,1]: the per-scan delivery probability of the
	// node's 802.11 link.
	LinkQuality float64
}

// WirelessArray samples nodes over lossy links. Deterministic under a seed.
type WirelessArray struct {
	Site string

	mu    sync.Mutex
	nodes []WirelessNode
	rng   *rand.Rand
	sent  int
	lost  int
}

// NewWirelessArray builds an array; seed fixes loss and noise.
func NewWirelessArray(site string, seed int64) *WirelessArray {
	return &WirelessArray{Site: site, rng: rand.New(rand.NewSource(seed))}
}

// AddNode registers a sensor node.
func (w *WirelessArray) AddNode(n WirelessNode) error {
	if n.Channel.Name == "" || n.Channel.Read == nil {
		return fmt.Errorf("daq: wireless node needs a named channel with a source")
	}
	if n.LinkQuality <= 0 || n.LinkQuality > 1 {
		return fmt.Errorf("daq: node %q link quality %g outside (0,1]", n.Channel.Name, n.LinkQuality)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nodes = append(w.nodes, n)
	return nil
}

// Scan samples every node; readings whose packets are lost in the air are
// simply absent from the result (the telemetry is unacknowledged).
func (w *WirelessArray) Scan(step int, t float64) []Reading {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Reading, 0, len(w.nodes))
	for _, n := range w.nodes {
		w.sent++
		if w.rng.Float64() > n.LinkQuality {
			w.lost++
			continue
		}
		gain := n.Channel.Gain
		if gain == 0 {
			gain = 1
		}
		v := n.Channel.Read()*gain + w.rng.NormFloat64()*n.Channel.NoiseStd
		out = append(out, Reading{
			Channel: n.Channel.Name, Kind: string(n.Channel.Kind), Units: n.Channel.Units,
			Step: step, T: t, Value: v,
		})
	}
	return out
}

// Stats returns (packets sent, packets lost).
func (w *WirelessArray) Stats() (sent, lost int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sent, w.lost
}

// CommandCenter is the mobile archive: every received reading is retained
// locally (the authoritative record) and queued for uplink.
type CommandCenter struct {
	mu      sync.Mutex
	archive []Reading
	queue   []Reading
}

// NewCommandCenter returns an empty command center.
func NewCommandCenter() *CommandCenter { return &CommandCenter{} }

// Receive archives readings and queues them for transmission.
func (c *CommandCenter) Receive(rs []Reading) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.archive = append(c.archive, rs...)
	c.queue = append(c.queue, rs...)
}

// Archived returns the local record length.
func (c *CommandCenter) Archived() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.archive)
}

// Pending returns the readings awaiting uplink.
func (c *CommandCenter) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// takeBatch pops up to n queued readings.
func (c *CommandCenter) takeBatch(n int) []Reading {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > len(c.queue) {
		n = len(c.queue)
	}
	batch := append([]Reading(nil), c.queue[:n]...)
	c.queue = c.queue[n:]
	return batch
}

// requeue returns an unsent batch to the front of the queue.
func (c *CommandCenter) requeue(batch []Reading) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue = append(batch, c.queue...)
}

// SatelliteLink models the telemetry back to the laboratory: per-batch
// latency and a bounded batch size. Deliver is the lab-side sink (e.g. a
// repository ingest).
type SatelliteLink struct {
	// Latency is the per-batch transmission delay.
	Latency time.Duration
	// BatchLimit bounds the readings per transmission; ≤0 means 256.
	BatchLimit int
	// Deliver receives each batch at the laboratory.
	Deliver func(batch []Reading) error
}

func (l *SatelliteLink) batchLimit() int {
	if l.BatchLimit > 0 {
		return l.BatchLimit
	}
	return 256
}

// Uplink transmits the command center's queue over the link, one batch per
// latency window, stopping at the first delivery failure (the batch is
// requeued). It returns the number of readings delivered.
func (c *CommandCenter) Uplink(link *SatelliteLink) (int, error) {
	if link.Deliver == nil {
		return 0, fmt.Errorf("daq: satellite link has no delivery sink")
	}
	delivered := 0
	for {
		batch := c.takeBatch(link.batchLimit())
		if len(batch) == 0 {
			return delivered, nil
		}
		if link.Latency > 0 {
			time.Sleep(link.Latency)
		}
		if err := link.Deliver(batch); err != nil {
			c.requeue(batch)
			return delivered, fmt.Errorf("daq: satellite uplink: %w", err)
		}
		delivered += len(batch)
	}
}
