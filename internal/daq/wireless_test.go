package daq

import (
	"fmt"
	"testing"
	"time"
)

func testArray(t *testing.T, quality float64, nodes int) *WirelessArray {
	t.Helper()
	w := NewWirelessArray("ucla", 42)
	for i := 0; i < nodes; i++ {
		err := w.AddNode(WirelessNode{
			Channel:     Channel{Name: fmt.Sprintf("ucla.acc%d", i), Kind: Accelerometer, Units: "m/s2", Read: func() float64 { return 1 }},
			LinkQuality: quality,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return w
}

func TestWirelessArrayLosesPackets(t *testing.T) {
	w := testArray(t, 0.8, 10)
	total := 0
	for step := 0; step < 100; step++ {
		total += len(w.Scan(step, float64(step)*0.01))
	}
	sent, lost := w.Stats()
	if sent != 1000 {
		t.Fatalf("sent = %d", sent)
	}
	if lost == 0 {
		t.Fatal("no packets lost at 80% link quality")
	}
	if total+lost != sent {
		t.Fatalf("accounting: %d delivered + %d lost != %d sent", total, lost, sent)
	}
	// Loss rate in a plausible band around 20%.
	if lost < 100 || lost > 320 {
		t.Fatalf("lost %d of 1000 at quality 0.8", lost)
	}
}

func TestWirelessArrayPerfectLink(t *testing.T) {
	w := testArray(t, 1.0, 5)
	got := w.Scan(0, 0)
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5 at perfect quality", len(got))
	}
}

func TestWirelessArrayDeterministic(t *testing.T) {
	run := func() int {
		w := NewWirelessArray("ucla", 7)
		_ = w.AddNode(WirelessNode{
			Channel:     Channel{Name: "c", Read: func() float64 { return 0 }},
			LinkQuality: 0.5,
		})
		n := 0
		for i := 0; i < 200; i++ {
			n += len(w.Scan(i, 0))
		}
		return n
	}
	if run() != run() {
		t.Fatal("loss pattern not deterministic under a fixed seed")
	}
}

func TestWirelessNodeValidation(t *testing.T) {
	w := NewWirelessArray("ucla", 1)
	if err := w.AddNode(WirelessNode{LinkQuality: 0.9}); err == nil {
		t.Fatal("nameless node accepted")
	}
	if err := w.AddNode(WirelessNode{
		Channel:     Channel{Name: "c", Read: func() float64 { return 0 }},
		LinkQuality: 1.5,
	}); err == nil {
		t.Fatal("quality > 1 accepted")
	}
	if err := w.AddNode(WirelessNode{
		Channel:     Channel{Name: "c", Read: func() float64 { return 0 }},
		LinkQuality: 0,
	}); err == nil {
		t.Fatal("quality 0 accepted")
	}
}

func TestCommandCenterArchivesEverythingReceived(t *testing.T) {
	w := testArray(t, 0.7, 8)
	cc := NewCommandCenter()
	for step := 0; step < 50; step++ {
		cc.Receive(w.Scan(step, float64(step)*0.01))
	}
	if cc.Archived() == 0 || cc.Archived() != cc.Pending() {
		t.Fatalf("archived %d, pending %d", cc.Archived(), cc.Pending())
	}
}

func TestSatelliteUplinkBatches(t *testing.T) {
	cc := NewCommandCenter()
	rs := make([]Reading, 25)
	for i := range rs {
		rs[i] = Reading{Channel: "c", Step: i}
	}
	cc.Receive(rs)

	var batches [][]Reading
	link := &SatelliteLink{BatchLimit: 10, Deliver: func(b []Reading) error {
		batches = append(batches, b)
		return nil
	}}
	n, err := cc.Uplink(link)
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || cc.Pending() != 0 {
		t.Fatalf("delivered %d, pending %d", n, cc.Pending())
	}
	if len(batches) != 3 || len(batches[0]) != 10 || len(batches[2]) != 5 {
		t.Fatalf("batch shape: %d batches", len(batches))
	}
	// The local archive is untouched by transmission.
	if cc.Archived() != 25 {
		t.Fatal("archive lost readings")
	}
}

func TestSatelliteUplinkFailureRequeues(t *testing.T) {
	cc := NewCommandCenter()
	rs := make([]Reading, 30)
	for i := range rs {
		rs[i] = Reading{Channel: "c", Step: i}
	}
	cc.Receive(rs)
	calls := 0
	link := &SatelliteLink{BatchLimit: 10, Deliver: func(b []Reading) error {
		calls++
		if calls == 2 {
			return fmt.Errorf("satellite window closed")
		}
		return nil
	}}
	n, err := cc.Uplink(link)
	if err == nil {
		t.Fatal("expected uplink failure")
	}
	if n != 10 {
		t.Fatalf("delivered %d before failure, want 10", n)
	}
	if cc.Pending() != 20 {
		t.Fatalf("pending %d after requeue, want 20", cc.Pending())
	}
	// A later pass delivers the remainder in order.
	var first Reading
	link2 := &SatelliteLink{BatchLimit: 100, Deliver: func(b []Reading) error {
		first = b[0]
		return nil
	}}
	if _, err := cc.Uplink(link2); err != nil {
		t.Fatal(err)
	}
	if first.Step != 10 {
		t.Fatalf("resumed at step %d, want 10", first.Step)
	}
}

func TestSatelliteUplinkLatencyAndValidation(t *testing.T) {
	cc := NewCommandCenter()
	cc.Receive([]Reading{{Channel: "c"}})
	if _, err := cc.Uplink(&SatelliteLink{}); err == nil {
		t.Fatal("link without sink accepted")
	}
	start := time.Now()
	link := &SatelliteLink{Latency: 20 * time.Millisecond, Deliver: func([]Reading) error { return nil }}
	if _, err := cc.Uplink(link); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("latency not applied")
	}
}
