// Package e2e builds the real binaries and runs a three-site distributed
// experiment as separate OS processes — the deployment story of README.md
// verified end to end: gridca bootstraps the trust domain, three ntcpd
// daemons serve the substructures, and the coordinator drives the
// pseudo-dynamic loop over the loopback network.
package e2e

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildBinaries(t *testing.T, bin string) {
	t.Helper()
	cmd := exec.Command("go", "build", "-o", bin+string(os.PathSeparator),
		"neesgrid/cmd/gridca", "neesgrid/cmd/ntcpd", "neesgrid/cmd/coordinator")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never started listening", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns binaries")
	}
	bin := t.TempDir()
	buildBinaries(t, bin)
	work := t.TempDir()
	certs := filepath.Join(work, "certs")

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// 1. Trust domain.
	run("gridca", "init", "-dir", certs)
	for _, subject := range []string{"uiuc", "ncsa", "cu", "coordinator"} {
		run("gridca", "issue", "-dir", certs, "-subject", "/O=NEES/CN="+subject)
	}

	// 2. Three sites as daemons.
	type site struct {
		name, point, kind string
		k                 float64
	}
	sites := []site{
		{"uiuc", "left-column", "shore-western", 7.68e5},
		{"ncsa", "middle-frame", "simulation", 2.0e6},
		{"cu", "right-column", "simulation", 7.68e5},
	}
	addrs := make([]string, len(sites))
	for i, s := range sites {
		addrs[i] = freePort(t)
		cmd := exec.Command(filepath.Join(bin, "ntcpd"),
			"-addr", addrs[i],
			"-ca-cert", filepath.Join(certs, "ca.cert"),
			"-cred", filepath.Join(certs, s.name+".cred"),
			"-allow", "/O=NEES/CN=coordinator=coord",
			"-point", s.point,
			"-kind", s.kind,
			"-k", fmt.Sprint(s.k),
			"-max-disp", "0.15",
		)
		cmd.Dir = work
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		proc := cmd.Process
		t.Cleanup(func() {
			_ = proc.Kill()
			_, _ = cmd.Process.Wait()
		})
	}
	for _, a := range addrs {
		waitListening(t, a)
	}

	// 3. Coordinator config and run.
	cfg := map[string]any{
		"name": "e2e", "mass": 20000.0, "damping": 0.02,
		"dt": 0.01, "steps": 60,
		"ground": map[string]any{"pga_g": 0.4, "seed": 1940},
		"retry":  map[string]any{"attempts": 5, "backoff_ms": 50},
		"sites": []map[string]any{
			{"name": "uiuc", "addr": addrs[0], "point": "left-column", "k": 7.68e5},
			{"name": "ncsa", "addr": addrs[1], "point": "middle-frame", "k": 2.0e6},
			{"name": "cu", "addr": addrs[2], "point": "right-column", "k": 7.68e5},
		},
	}
	raw, _ := json.MarshalIndent(cfg, "", "  ")
	cfgPath := filepath.Join(work, "e2e.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(work, "out")
	output := run("coordinator",
		"-config", cfgPath,
		"-ca-cert", filepath.Join(certs, "ca.cert"),
		"-cred", filepath.Join(certs, "coordinator.cred"),
		"-out", outDir,
	)
	if !strings.Contains(output, "completed 60/60 steps") {
		t.Fatalf("coordinator output:\n%s", output)
	}

	// 4. The history CSV is well-formed and shows motion.
	f, err := os.Open(filepath.Join(outDir, "e2e-history.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 62 { // header + 61 states
		t.Fatalf("history has %d rows", len(rows))
	}
	moved := false
	for _, row := range rows[1:] {
		if row[2] != "0" {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("history shows no displacement")
	}
}
