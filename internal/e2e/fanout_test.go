package e2e

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neesgrid/internal/daq"
	"neesgrid/internal/nsds"
	"neesgrid/internal/telemetry"
)

// TestFanOutPipelineSmoke drives the full viewer-scale streaming path end
// to end: a DAQ scans into the site hub, a TCP relay subscribes upstream
// and re-fans the stream out locally, and an SSE gateway serves the relay
// hub to a browser-shaped client. The smoke asserts samples actually
// traverse all four stages and that both tiers' drop counters are visible
// in the shared telemetry registry (what nsdsd serves on /metrics and
// mostctl metrics prints).
func TestFanOutPipelineSmoke(t *testing.T) {
	reg := telemetry.NewRegistry()

	// Stage 1+2: DAQ → site hub → TCP server.
	hub := nsds.NewHub()
	defer hub.Close()
	hub.SetRetention(64)
	hub.UseTelemetry(reg, "hub")
	value := 0.0
	d := daq.New("uiuc", 1)
	if err := d.AddChannel(daq.Channel{
		Name: "uiuc.disp", Kind: daq.LVDT, Units: "m",
		Read: func() float64 { return value },
	}); err != nil {
		t.Fatal(err)
	}
	d.AttachHub(hub)
	srv := nsds.NewServer(hub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Stage 3: relay tier over the wire.
	relay := nsds.NewRelay(nsds.RelayConfig{Upstream: addr, Retention: 64, Telemetry: reg})
	if err := relay.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = relay.Stop(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for relay.Healthy() != nil {
		if time.Now().After(deadline) {
			t.Fatal("relay never connected upstream")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Stage 4: SSE gateway over the relay hub.
	gw := httptest.NewServer(nsds.NewGateway(relay.Hub()))
	defer gw.Close()
	resp, err := http.Get(gw.URL + "/stream?catchup=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for relay.Hub().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE viewer never subscribed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drive the experiment: DAQ scans publish into the site hub.
	const steps = 20
	for i := 0; i < steps; i++ {
		value = float64(i) * 1e-3
		if _, err := d.Scan(i+1, float64(i)*0.01); err != nil {
			t.Fatal(err)
		}
	}

	// The viewer must see samples that crossed hub → wire → relay → SSE.
	var event struct {
		Samples []nsds.Sample `json:"samples"`
		Dropped uint64        `json:"dropped"`
	}
	delivered := 0
	sc := bufio.NewScanner(resp.Body)
	readDeadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for delivered == 0 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("SSE stream closed before any samples arrived")
			}
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &event); err != nil {
				t.Fatalf("bad SSE payload %q: %v", line, err)
			}
			delivered += len(event.Samples)
		case <-readDeadline:
			t.Fatal("no samples traversed daq → hub → relay → SSE within 10s")
		}
	}

	// Both tiers' accounting must be visible in the one registry.
	snap := reg.Snapshot()
	for _, name := range []string{
		"nsds.tier.published.hub", "nsds.tier.delivered.hub", "nsds.tier.dropped.hub",
		"nsds.tier.published.relay", "nsds.tier.delivered.relay", "nsds.tier.dropped.relay",
		"nsds.sub.dropped", "nsds.relay.reconnects",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s missing from the telemetry snapshot", name)
		}
	}
	if snap.Counters["nsds.tier.published.hub"] != steps {
		t.Errorf("hub published = %d, want %d", snap.Counters["nsds.tier.published.hub"], steps)
	}
	if snap.Counters["nsds.tier.published.relay"] == 0 {
		t.Error("relay tier republished nothing")
	}
}
