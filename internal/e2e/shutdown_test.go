// Shutdown smoke: the ISSUE-4 acceptance scenario. A two-site topology
// boots, /readyz is polled until every process reports ready, SIGTERM
// lands on every process mid-step, and the test asserts (a) /readyz flips
// to 503 before the processes exit (the lame-duck window), (b) every
// process exits 0 — the coordinator flushing its partial outputs, the
// sites draining their in-flight NTCP work — and (c) an in-process
// experiment leaves no goroutines behind after Stop.
package e2e

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	gort "runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"neesgrid/internal/most"
	"neesgrid/internal/ogsi"
)

func httpStatus(url string) int {
	cl := &http.Client{Timeout: 500 * time.Millisecond}
	resp, err := cl.Get(url)
	if err != nil {
		return -1
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitStatus(t *testing.T, url string, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if httpStatus(url) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never returned %d (last %d)", url, want, httpStatus(url))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns binaries")
	}
	bin := t.TempDir()
	buildBinaries(t, bin)
	work := t.TempDir()
	certs := filepath.Join(work, "certs")

	run := func(name string, args ...string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
	}
	run("gridca", "init", "-dir", certs)
	for _, subject := range []string{"uiuc", "cu", "coordinator"} {
		run("gridca", "issue", "-dir", certs, "-subject", "/O=NEES/CN="+subject)
	}

	// Two sites with probe listeners and a lame-duck window long enough to
	// observe the 503 before the listeners close.
	const lameDuck = 500 * time.Millisecond
	siteNames := []string{"uiuc", "cu"}
	siteAddrs := make([]string, len(siteNames))
	probeAddrs := make([]string, len(siteNames))
	siteCmds := make([]*exec.Cmd, len(siteNames))
	for i, name := range siteNames {
		siteAddrs[i] = freePort(t)
		probeAddrs[i] = freePort(t)
		cmd := exec.Command(filepath.Join(bin, "ntcpd"),
			"-addr", siteAddrs[i],
			"-ca-cert", filepath.Join(certs, "ca.cert"),
			"-cred", filepath.Join(certs, name+".cred"),
			"-allow", "/O=NEES/CN=coordinator=coord",
			"-point", name+"-col",
			"-kind", "simulation",
			"-k", "7.68e5",
			"-pprof", probeAddrs[i],
			"-lameduck", lameDuck.String(),
		)
		cmd.Dir = work
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		siteCmds[i] = cmd
		proc := cmd.Process
		t.Cleanup(func() {
			_ = proc.Kill()
			_, _ = proc.Wait()
		})
	}
	// Readiness gates the boot: poll /readyz until every site serves 200.
	for _, pa := range probeAddrs {
		waitStatus(t, "http://"+pa+"/readyz", http.StatusOK, 10*time.Second)
		if got := httpStatus("http://" + pa + "/healthz"); got != http.StatusOK {
			t.Fatalf("healthz on ready site = %d", got)
		}
	}

	// A long coordinator run so SIGTERM lands mid-step-loop.
	cfg := map[string]any{
		"name": "shutdown-smoke", "mass": 20000.0, "damping": 0.02,
		"dt": 0.01, "steps": 100000,
		"ground": map[string]any{"pga_g": 0.4, "seed": 1940},
		"retry":  map[string]any{"attempts": 5, "backoff_ms": 50},
		"sites": []map[string]any{
			{"name": "uiuc", "addr": siteAddrs[0], "point": "uiuc-col", "k": 7.68e5},
			{"name": "cu", "addr": siteAddrs[1], "point": "cu-col", "k": 7.68e5},
		},
	}
	raw, _ := json.MarshalIndent(cfg, "", "  ")
	cfgPath := filepath.Join(work, "shutdown.json")
	if err := os.WriteFile(cfgPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(work, "out")
	coordProbe := freePort(t)
	coordCmd := exec.Command(filepath.Join(bin, "coordinator"),
		"-config", cfgPath,
		"-ca-cert", filepath.Join(certs, "ca.cert"),
		"-cred", filepath.Join(certs, "coordinator.cred"),
		"-out", outDir,
		"-pprof", coordProbe,
	)
	coordCmd.Dir = work
	var coordOut strings.Builder
	coordCmd.Stdout = &coordOut
	coordCmd.Stderr = &coordOut
	if err := coordCmd.Start(); err != nil {
		t.Fatal(err)
	}
	coordProc := coordCmd.Process
	t.Cleanup(func() { _ = coordProc.Kill() })
	waitStatus(t, "http://"+coordProbe+"/readyz", http.StatusOK, 10*time.Second)

	// Wait until the run is demonstrably mid-step: the first site's
	// container /metrics shows executed transactions.
	waitForProgress(t, siteAddrs[0], 20)

	// SIGTERM everything mid-step.
	for _, cmd := range siteCmds {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	if err := coordProc.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the sites' lame-duck window /readyz must flip to 503 while
	// the probe listener is still answering — before any listener closes.
	for _, pa := range probeAddrs {
		waitStatus(t, "http://"+pa+"/readyz", http.StatusServiceUnavailable, 2*time.Second)
	}

	// Every process exits cleanly: the coordinator flushes its partial
	// outputs and exits 0; the sites drain and exit 0.
	if err := coordCmd.Wait(); err != nil {
		t.Fatalf("coordinator exit: %v\n%s", err, coordOut.String())
	}
	for i, cmd := range siteCmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("site %s exit: %v", siteNames[i], err)
		}
	}
	if out := coordOut.String(); !strings.Contains(out, "outputs flushed") {
		t.Fatalf("coordinator did not report a flushed interrupt:\n%s", out)
	}
	// The interrupted run's partial history landed on disk.
	if _, err := os.Stat(filepath.Join(outDir, "shutdown-smoke-history.csv")); err != nil {
		t.Fatalf("partial history not flushed: %v", err)
	}
}

// waitForProgress polls a site container's /metrics until it has executed
// at least n transactions.
func waitForProgress(t *testing.T, siteAddr string, n float64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var snap struct {
			Counters map[string]float64 `json:"counters"`
		}
		cl := &http.Client{Timeout: time.Second}
		resp, err := cl.Get("http://" + siteAddr + "/metrics")
		if err == nil {
			_ = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if snap.Counters["ntcp.server.executed"] >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("site %s never reached %g executed transactions", siteAddr, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterExperimentStop is the goleak-style check: an
// in-process experiment builds, runs a few steps, stops — and the
// goroutine count settles back to where it started.
func TestNoGoroutineLeakAfterExperimentStop(t *testing.T) {
	before := gort.NumGoroutine()

	spec := most.DryRunSpec(most.VariantSimulation)
	spec.Steps = 20
	spec.DAQEvery = 5
	exp, err := most.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := exp.Stop(); err != nil {
		t.Fatalf("experiment stop: %v", err)
	}

	// The shared OGSI transport keeps idle conns with background readers;
	// release them before counting.
	ogsi.DefaultTransport.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		gort.GC() // finalizers can pin goroutines briefly
		after := gort.NumGoroutine()
		if after <= before+2 { // allow runtime/test harness jitter
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := gort.Stack(buf, true)
			t.Fatalf("goroutines before=%d after=%d; leaked stacks:\n%s",
				before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
