// Package faultnet emulates the wide-area network between experiment sites:
// added latency, jitter, and — crucially for reproducing the MOST public run
// — transient and fatal network failures injected on a deterministic
// schedule. The paper's §3.4 result ("the fault tolerance features of NTCP
// enabled the simulation to detect and recover from several transient
// network failures throughout the day; … a final network error caused the
// simulation to terminate prematurely" at step 1493) is reproduced by
// driving NTCP client traffic through this package.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// Profile describes steady-state WAN behaviour.
type Profile struct {
	// Latency is the one-way delay added to every request.
	Latency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the probability a call fails with a transport error.
	DropRate float64
	// Seed makes jitter and random drops deterministic.
	Seed int64
}

// LAN is a near-zero profile.
var LAN = Profile{}

// WAN2003 approximates the 2003 Illinois–Colorado Internet2 path: ~40 ms
// round trip with mild jitter.
var WAN2003 = Profile{Latency: 20 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 2003}

// Injector produces transport errors on demand. It is shared between the
// experiment harness (which schedules faults) and the transports it wraps.
type Injector struct {
	mu         sync.Mutex
	profile    Profile
	rng        *rand.Rand
	failNext   int
	outage     bool
	windows    []outageWindow
	extraDelay time.Duration
	calls      int
	injected   int
	tel        *telemetry.Registry
}

// outageWindow is a scheduled outage measured in call counts: calls with
// 1-based index in (start, start+length] fail. Counting calls instead of
// wall time is what keeps chaos scenarios byte-replayable — the heal point
// is a pure function of how much traffic the client pushed, not of how fast
// the host happened to run.
type outageWindow struct {
	start, length int
}

// NewInjector builds an injector over a profile.
func NewInjector(p Profile) *Injector {
	return &Injector{profile: p, rng: rand.New(rand.NewSource(p.Seed))}
}

// UseTelemetry mirrors the injector's activity into a shared registry:
// faultnet.calls / faultnet.injected / faultnet.cuts counters and a
// faultnet.delay.seconds histogram of applied WAN delay. Sharing the
// registry with the NTCP clients lets a run correlate injected faults with
// the retries and recoveries they caused.
func (in *Injector) UseTelemetry(reg *telemetry.Registry) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tel = reg
	if reg != nil {
		// Pre-register at zero: a fault-free run still exports the series,
		// so "no faults injected" reads as faultnet.injected = 0 rather than
		// looking like the injector was never wired.
		reg.Counter("faultnet.calls")
		reg.Counter("faultnet.injected")
		reg.Counter("faultnet.cuts")
	}
}

// FailNext makes the next n calls fail with a transport error — a transient
// outage if the client retries past it, fatal if it does not.
func (in *Injector) FailNext(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failNext += n
}

// SetOutage switches a hard outage on or off: every call fails until
// cleared (a network partition).
func (in *Injector) SetOutage(on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.outage = on
}

// ScheduleOutage schedules a partition window measured in calls: after the
// next `after` calls pass through, the following `length` calls fail. The
// window is counted, not timed, so the same scenario heals at the same
// retry attempt on every replay regardless of host speed. Windows may
// overlap; a call inside any window fails.
func (in *Injector) ScheduleOutage(after, length int) {
	if after < 0 || length <= 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.windows = append(in.windows, outageWindow{start: in.calls + after, length: length})
}

// SetExtraDelay adds a constant extra delay to every subsequent call on top
// of the profile's latency and jitter. The chaos engine ramps this per step
// to emulate clock-skewed slow-downs without touching the seeded jitter
// stream.
func (in *Injector) SetExtraDelay(d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if d < 0 {
		d = 0
	}
	in.extraDelay = d
}

// ClearFaults disarms everything scheduled on the injector — pending
// FailNext budget, a standing outage, scheduled windows, and extra delay —
// without touching the seeded jitter stream or the lifetime counters. The
// shared site pool calls it on lease release so a tenant whose run died
// under an armed fault hands the next tenant a clean network.
func (in *Injector) ClearFaults() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failNext = 0
	in.outage = false
	in.windows = nil
	in.extraDelay = 0
}

// ExtraDelay returns the current extra per-call delay.
func (in *Injector) ExtraDelay() time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.extraDelay
}

// Calls returns how many calls passed through the injector.
func (in *Injector) Calls() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Injected returns how many transport errors the injector produced.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// next decides the fate of one call: the delay to apply and whether to fail.
func (in *Injector) next() (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls++
	delay := in.profile.Latency + in.extraDelay
	if in.profile.Jitter > 0 {
		delay += time.Duration(in.rng.Int63n(int64(in.profile.Jitter)))
	}
	fail := in.outage
	if !fail {
		// Scheduled windows are consulted on every call; expired windows are
		// pruned so long runs do not accumulate them.
		live := in.windows[:0]
		for _, w := range in.windows {
			if in.calls <= w.start+w.length {
				live = append(live, w)
				if in.calls > w.start {
					fail = true
				}
			}
		}
		in.windows = live
	}
	if !fail && in.failNext > 0 {
		in.failNext--
		fail = true
	}
	if !fail && in.profile.DropRate > 0 && in.rng.Float64() < in.profile.DropRate {
		fail = true
	}
	if in.tel != nil {
		in.tel.Counter("faultnet.calls").Inc()
		if delay > 0 {
			in.tel.Histogram("faultnet.delay.seconds", telemetry.DefaultLatencyBuckets...).
				ObserveDuration(delay)
		}
	}
	if fail {
		in.injected++
		if in.tel != nil {
			in.tel.Counter("faultnet.injected").Inc()
		}
		return delay, &NetError{Op: "faultnet", Msg: "injected network failure"}
	}
	return delay, nil
}

// recordCut counts a mid-stream connection cut in the shared registry.
func (in *Injector) recordCut() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.tel != nil {
		in.tel.Counter("faultnet.cuts").Inc()
	}
}

// NetError is the transport error faultnet injects. It satisfies net.Error
// so HTTP clients treat it as a genuine network failure.
type NetError struct {
	Op  string
	Msg string
}

func (e *NetError) Error() string   { return fmt.Sprintf("%s: %s", e.Op, e.Msg) }
func (e *NetError) Timeout() bool   { return true }
func (e *NetError) Temporary() bool { return true }

var _ net.Error = (*NetError)(nil)

// Transport wraps an http.RoundTripper with the injector: every round trip
// pays the WAN latency and may be failed by schedule, partition, or random
// drop. Wrap the ogsi client's HTTP transport with this to put a site
// "behind the WAN".
type Transport struct {
	Injector *Injector
	Inner    http.RoundTripper
}

// NewTransport builds a faulty transport over http.DefaultTransport.
func NewTransport(in *Injector) *Transport {
	return &Transport{Injector: in, Inner: http.DefaultTransport}
}

// NewTransportOver builds a faulty transport over a caller-supplied inner
// round tripper — the composition the pipelined coordinator uses to put a
// pinned keep-alive site connection behind the injected WAN. Latency and
// failures are charged once per round trip (per signed envelope), so a
// batched envelope carrying several operations pays the WAN exactly once —
// the property the E8 pipelined benchmark measures.
func NewTransportOver(in *Injector, inner http.RoundTripper) *Transport {
	return &Transport{Injector: in, Inner: inner}
}

// RoundTrip applies delay and scheduled failures before delegating. When
// the request context carries a live trace span (the ogsi client span),
// the injected delay and any injected failure are annotated onto it —
// this is what makes a faultnet-delayed site visibly slow in the merged
// timeline rather than just mysteriously late.
func (t *Transport) RoundTrip(r *http.Request) (*http.Response, error) {
	delay, err := t.Injector.next()
	span := trace.SpanFromContext(r.Context())
	if delay > 0 {
		span.Annotate("faultnet.delay", delay.String())
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if err != nil {
		span.Annotate("faultnet.inject", err.Error())
		return nil, err
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(r)
}

// Client returns an *http.Client whose calls traverse the injector.
func Client(in *Injector) *http.Client {
	return &http.Client{Transport: NewTransport(in)}
}

// ---------------------------------------------------------------------------
// Stream-level injection for raw TCP substrates (NSDS, GridFTP, control
// links).
// ---------------------------------------------------------------------------

// Conn wraps a net.Conn, applying per-operation latency and allowing a
// scheduled mid-stream cut.
type Conn struct {
	net.Conn
	injector *Injector

	mu  sync.Mutex
	cut bool
}

// WrapConn attaches an injector to a connection.
func WrapConn(c net.Conn, in *Injector) *Conn {
	return &Conn{Conn: c, injector: in}
}

// Cut severs the connection: subsequent reads and writes fail and the
// underlying conn is closed.
func (c *Conn) Cut() {
	c.mu.Lock()
	c.cut = true
	c.mu.Unlock()
	c.injector.recordCut()
	_ = c.Conn.Close()
}

func (c *Conn) gate() error {
	c.mu.Lock()
	cut := c.cut
	c.mu.Unlock()
	if cut {
		return &NetError{Op: "faultnet", Msg: "connection cut"}
	}
	delay, err := c.injector.next()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Read applies the injector then reads.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write applies the injector then writes.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.gate(); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Dialer dials TCP connections that traverse an injector.
type Dialer struct {
	Injector *Injector
}

// Dial connects and wraps the connection.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	delay, err := d.Injector.next()
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return nil, err
	}
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(c, d.Injector), nil
}
