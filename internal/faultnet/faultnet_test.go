package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
)

func TestInjectorFailNext(t *testing.T) {
	in := NewInjector(LAN)
	in.FailNext(2)
	for i := 0; i < 2; i++ {
		if _, err := in.next(); err == nil {
			t.Fatalf("call %d should fail", i)
		}
	}
	if _, err := in.next(); err != nil {
		t.Fatalf("call 3 should pass: %v", err)
	}
	if in.Injected() != 2 || in.Calls() != 3 {
		t.Fatalf("counters = %d/%d", in.Injected(), in.Calls())
	}
}

func TestInjectorOutage(t *testing.T) {
	in := NewInjector(LAN)
	in.SetOutage(true)
	for i := 0; i < 3; i++ {
		if _, err := in.next(); err == nil {
			t.Fatal("outage should fail every call")
		}
	}
	in.SetOutage(false)
	if _, err := in.next(); err != nil {
		t.Fatal("cleared outage should pass")
	}
}

func TestInjectorDropRateDeterministic(t *testing.T) {
	p := Profile{DropRate: 0.5, Seed: 42}
	run := func() []bool {
		in := NewInjector(p)
		out := make([]bool, 100)
		for i := range out {
			_, err := in.next()
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("drop sequence not deterministic")
		}
		if a[i] {
			drops++
		}
	}
	if drops < 30 || drops > 70 {
		t.Fatalf("drop count %d implausible for rate 0.5", drops)
	}
}

func TestScheduleOutageWindow(t *testing.T) {
	in := NewInjector(LAN)
	in.ScheduleOutage(2, 3) // calls 3..5 fail
	for i := 1; i <= 7; i++ {
		_, err := in.next()
		wantFail := i >= 3 && i <= 5
		if gotFail := err != nil; gotFail != wantFail {
			t.Fatalf("call %d: fail=%v, want %v", i, gotFail, wantFail)
		}
	}
	if in.Injected() != 3 {
		t.Fatalf("injected = %d, want 3", in.Injected())
	}
}

func TestScheduleOutageOverlapAndBadArgs(t *testing.T) {
	in := NewInjector(LAN)
	in.ScheduleOutage(-1, 5) // no-ops: never scheduled
	in.ScheduleOutage(0, 0)
	in.ScheduleOutage(0, 2) // calls 1..2
	in.ScheduleOutage(1, 3) // calls 2..4; overlap with the first on call 2
	for i := 1; i <= 5; i++ {
		_, err := in.next()
		wantFail := i <= 4
		if gotFail := err != nil; gotFail != wantFail {
			t.Fatalf("call %d: fail=%v, want %v", i, gotFail, wantFail)
		}
	}
	if in.Injected() != 4 {
		t.Fatalf("injected = %d, want 4 (overlap must not double-count)", in.Injected())
	}
}

// The zero-value seed is still a fixed seed: two injectors built from the
// same profile — including Seed == 0 — must replay the same drop decisions
// and jittered delays call for call. Chaos scenarios lean on this; a
// time-seeded fallback for Seed == 0 would silently break byte-replay.
func TestInjectorZeroSeedDeterministic(t *testing.T) {
	p := Profile{DropRate: 0.3, Jitter: 3 * time.Millisecond, Seed: 0}
	a, b := NewInjector(p), NewInjector(p)
	drops := 0
	for i := 0; i < 200; i++ {
		da, ea := a.next()
		db, eb := b.next()
		if (ea != nil) != (eb != nil) || da != db {
			t.Fatalf("call %d diverged: (%v,%v) vs (%v,%v)", i, da, ea, db, eb)
		}
		if ea != nil {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Fatalf("drop count %d implausible for rate 0.3", drops)
	}
}

func TestInjectorExtraDelay(t *testing.T) {
	in := NewInjector(Profile{Latency: 2 * time.Millisecond})
	in.SetExtraDelay(5 * time.Millisecond)
	if d, err := in.next(); err != nil || d != 7*time.Millisecond {
		t.Fatalf("delay = %v, %v; want 7ms", d, err)
	}
	in.SetExtraDelay(-time.Millisecond) // clamped to zero
	if in.ExtraDelay() != 0 {
		t.Fatalf("negative extra delay not clamped: %v", in.ExtraDelay())
	}
	if d, err := in.next(); err != nil || d != 2*time.Millisecond {
		t.Fatalf("delay = %v, %v; want bare profile latency", d, err)
	}
}

func TestInjectorLatency(t *testing.T) {
	in := NewInjector(Profile{Latency: 10 * time.Millisecond})
	d, err := in.next()
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*time.Millisecond {
		t.Fatalf("delay = %v", d)
	}
}

func TestNetErrorInterface(t *testing.T) {
	var err net.Error = &NetError{Op: "x", Msg: "y"}
	if !err.Timeout() || err.Error() != "x: y" {
		t.Fatalf("NetError = %v", err)
	}
}

func TestTransportInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := NewInjector(LAN)
	cl := Client(in)
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	in.FailNext(1)
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	var ne *NetError
	resp, err = cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-failure call should pass: %v", err)
	}
	_ = resp.Body.Close()
	_ = ne
}

func TestTransportHonorsContextDuringDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	defer srv.Close()
	in := NewInjector(Profile{Latency: 5 * time.Second})
	cl := Client(in)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := cl.Do(req)
	if err == nil {
		t.Fatal("expected context timeout")
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored context cancellation")
	}
}

func TestConnCutAndDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	in := NewInjector(LAN)
	d := &Dialer{Injector: in}
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}

	fc := conn.(*Conn)
	fc.Cut()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write after cut should fail")
	}
	var ne *NetError
	_, err = conn.Read(buf)
	if !errors.As(err, &ne) {
		t.Fatalf("read after cut = %v, want NetError", err)
	}
}

func TestInjectorTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewInjector(Profile{Latency: time.Millisecond})
	in.UseTelemetry(reg)
	in.FailNext(1)
	if _, err := in.next(); err == nil {
		t.Fatal("first call should fail")
	}
	if _, err := in.next(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["faultnet.calls"] != 2 || snap.Counters["faultnet.injected"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Histograms["faultnet.delay.seconds"].Count != 2 {
		t.Fatalf("delay histogram = %+v", snap.Histograms["faultnet.delay.seconds"])
	}

	// Mid-stream cuts are counted too.
	server, client := net.Pipe()
	defer server.Close()
	wrapped := WrapConn(client, in)
	wrapped.Cut()
	if reg.Counter("faultnet.cuts").Value() != 1 {
		t.Fatal("cut not counted")
	}
}

func TestDialerInjectedFailure(t *testing.T) {
	in := NewInjector(LAN)
	in.FailNext(1)
	d := &Dialer{Injector: in}
	if _, err := d.Dial("tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("injected dial failure missing")
	}
}
