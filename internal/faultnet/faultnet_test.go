package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
)

func TestInjectorFailNext(t *testing.T) {
	in := NewInjector(LAN)
	in.FailNext(2)
	for i := 0; i < 2; i++ {
		if _, err := in.next(); err == nil {
			t.Fatalf("call %d should fail", i)
		}
	}
	if _, err := in.next(); err != nil {
		t.Fatalf("call 3 should pass: %v", err)
	}
	if in.Injected() != 2 || in.Calls() != 3 {
		t.Fatalf("counters = %d/%d", in.Injected(), in.Calls())
	}
}

func TestInjectorOutage(t *testing.T) {
	in := NewInjector(LAN)
	in.SetOutage(true)
	for i := 0; i < 3; i++ {
		if _, err := in.next(); err == nil {
			t.Fatal("outage should fail every call")
		}
	}
	in.SetOutage(false)
	if _, err := in.next(); err != nil {
		t.Fatal("cleared outage should pass")
	}
}

func TestInjectorDropRateDeterministic(t *testing.T) {
	p := Profile{DropRate: 0.5, Seed: 42}
	run := func() []bool {
		in := NewInjector(p)
		out := make([]bool, 100)
		for i := range out {
			_, err := in.next()
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("drop sequence not deterministic")
		}
		if a[i] {
			drops++
		}
	}
	if drops < 30 || drops > 70 {
		t.Fatalf("drop count %d implausible for rate 0.5", drops)
	}
}

func TestInjectorLatency(t *testing.T) {
	in := NewInjector(Profile{Latency: 10 * time.Millisecond})
	d, err := in.next()
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*time.Millisecond {
		t.Fatalf("delay = %v", d)
	}
}

func TestNetErrorInterface(t *testing.T) {
	var err net.Error = &NetError{Op: "x", Msg: "y"}
	if !err.Timeout() || err.Error() != "x: y" {
		t.Fatalf("NetError = %v", err)
	}
}

func TestTransportInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := NewInjector(LAN)
	cl := Client(in)
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()

	in.FailNext(1)
	if _, err := cl.Get(srv.URL); err == nil {
		t.Fatal("injected failure not surfaced")
	}
	var ne *NetError
	resp, err = cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-failure call should pass: %v", err)
	}
	_ = resp.Body.Close()
	_ = ne
}

func TestTransportHonorsContextDuringDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	defer srv.Close()
	in := NewInjector(Profile{Latency: 5 * time.Second})
	cl := Client(in)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := cl.Do(req)
	if err == nil {
		t.Fatal("expected context timeout")
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored context cancellation")
	}
}

func TestConnCutAndDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	in := NewInjector(LAN)
	d := &Dialer{Injector: in}
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}

	fc := conn.(*Conn)
	fc.Cut()
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write after cut should fail")
	}
	var ne *NetError
	_, err = conn.Read(buf)
	if !errors.As(err, &ne) {
		t.Fatalf("read after cut = %v, want NetError", err)
	}
}

func TestInjectorTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := NewInjector(Profile{Latency: time.Millisecond})
	in.UseTelemetry(reg)
	in.FailNext(1)
	if _, err := in.next(); err == nil {
		t.Fatal("first call should fail")
	}
	if _, err := in.next(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["faultnet.calls"] != 2 || snap.Counters["faultnet.injected"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Histograms["faultnet.delay.seconds"].Count != 2 {
		t.Fatalf("delay histogram = %+v", snap.Histograms["faultnet.delay.seconds"])
	}

	// Mid-stream cuts are counted too.
	server, client := net.Pipe()
	defer server.Close()
	wrapped := WrapConn(client, in)
	wrapped.Cut()
	if reg.Counter("faultnet.cuts").Value() != 1 {
		t.Fatal("cut not counted")
	}
}

func TestDialerInjectedFailure(t *testing.T) {
	in := NewInjector(LAN)
	in.FailNext(1)
	d := &Dialer{Injector: in}
	if _, err := d.Dial("tcp", "127.0.0.1:1"); err == nil {
		t.Fatal("injected dial failure missing")
	}
}
