package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"neesgrid/internal/coord"
	"neesgrid/internal/core"
	"neesgrid/internal/most"
	"neesgrid/internal/obs"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
)

// Admission errors. They are terminal for the request, not for the
// scheduler: the caller resubmits later or to another tenant.
var (
	ErrUnknownTenant = errors.New("fleet: unknown tenant")
	ErrQueueFull     = errors.New("fleet: tenant queue full")
	ErrStopped       = errors.New("fleet: scheduler stopped")
)

// DefaultMaxQueued bounds a tenant's backlog when the tenant declares none.
const DefaultMaxQueued = 8

// Tenant is one admitted principal: a research group submitting runs.
type Tenant struct {
	Name string
	// Weight is the tenant's fair-share weight: how many consecutive
	// grants it may take when its turn in the rotation comes (min 1).
	Weight int
	// MaxQueued bounds the tenant's waiting jobs (admission control);
	// 0 means DefaultMaxQueued.
	MaxQueued int
}

// Request describes one experiment submission.
type Request struct {
	Tenant string `json:"tenant"`
	// Name labels the run; the job ID (and coordinator RunID) is derived
	// from it plus the tenant and a submission sequence, so two tenants
	// reusing the same name never collide on shared servers or on disk.
	Name string `json:"name"`
	// Slots is how many pooled sites to lease (1–3: the MOST frame has a
	// left column, a middle frame, and a right column). Default 1.
	Slots int `json:"slots"`
	// Steps is the integration step count. Default 120.
	Steps int `json:"steps"`
	// DAQEvery scans site DAQs every N steps (0 disables).
	DAQEvery int `json:"daq_every,omitempty"`
	// FailAt, when > 0, schedules a fatal network outage before that step
	// and disables retries — the harness hook for exercising the
	// release-on-failure path.
	FailAt int `json:"fail_at,omitempty"`
}

// JobState is the lifecycle of a submitted job.
type JobState string

// Job lifecycle: Queued → Running → one of Done / Failed / Cancelled.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether a state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one admitted experiment. Fields are guarded by the scheduler's
// lock; read them through View or the scheduler's accessors.
type Job struct {
	ID     string
	Tenant string
	Name   string
	Slots  int
	Steps  int

	// Seq is the grant sequence number (0-based, fleet-wide): the order in
	// which the scheduler leased slots to jobs. -1 while queued.
	Seq int
	// StorePrefix is the job's tenant-scoped directory under the store
	// root ("" when the scheduler runs storeless).
	StorePrefix string

	state     JobState
	stepsDone int
	err       error
	cancelled bool
	cancel    context.CancelFunc
	submitted time.Time
	finished  time.Time
	daqEvery  int
	failAt    int
}

// JobView is the JSON-safe snapshot of a Job.
type JobView struct {
	ID        string   `json:"id"`
	Tenant    string   `json:"tenant"`
	Name      string   `json:"name"`
	Slots     int      `json:"slots"`
	Seq       int      `json:"seq"`
	State     JobState `json:"state"`
	StepsDone int      `json:"steps_done"`
	Err       string   `json:"err,omitempty"`
	Store     string   `json:"store,omitempty"`
}

// Config wires a Scheduler.
type Config struct {
	// Pool is the shared site pool jobs lease from (required).
	Pool *Pool
	// Tenants declares the admitted principals in fair-share rotation
	// order (required, at least one).
	Tenants []Tenant
	// StoreRoot is the base directory for tenant-scoped job state
	// (checkpoints); "" disables checkpointing.
	StoreRoot string
	// PushURL, when set, is the base URL of a remote aggregator (fleetd);
	// every finished job's merged roll-up is POSTed to PushURL/push?site=
	// under the name <tenant>/<jobID>.
	PushURL string
	// Agg, when set (and PushURL is not), receives roll-ups in-process.
	Agg *obs.Aggregator
	// Registry receives the scheduler's fleet.* telemetry; nil means a
	// private one. Share it with the Pool's so fleetd exports one plane.
	Registry *telemetry.Registry
}

// Scheduler admits jobs against per-tenant quotas, orders them by weighted
// round-robin across tenants (FIFO within a tenant), leases pool slots to
// the jobs it grants, and runs each as a most.BuildShared experiment.
// Grants only happen after Start, so a batch submitted beforehand is
// ordered purely by the fair-share policy — the property the CI smoke
// asserts.
type Scheduler struct {
	cfg Config
	reg *telemetry.Registry

	mu      sync.Mutex
	queues  map[string][]*Job
	jobs    map[string]*Job
	order   []*Job // submission order, for listings
	grants  []*Job // grant order (by Seq)
	cursor  int    // next tenant index in the WRR rotation
	nextSub int
	nextSeq int
	running bool
	stopped bool
	notify  chan struct{}

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewScheduler validates the config and pre-registers every fleet.* series
// at zero, so a fleet that never rejected a job still exports
// fleet.jobs.rejected = 0 rather than omitting the series.
func NewScheduler(cfg Config) (*Scheduler, error) {
	if cfg.Pool == nil {
		return nil, errors.New("fleet: scheduler needs a pool")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("fleet: scheduler needs at least one tenant")
	}
	s := &Scheduler{
		cfg:    cfg,
		reg:    telemetry.OrNew(cfg.Registry),
		queues: make(map[string][]*Job),
		jobs:   make(map[string]*Job),
		notify: make(chan struct{}),
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, errors.New("fleet: tenant needs a name")
		}
		if _, dup := s.queues[t.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate tenant %q", t.Name)
		}
		s.queues[t.Name] = nil
	}
	for _, c := range []string{
		"fleet.jobs.submitted", "fleet.jobs.rejected", "fleet.jobs.completed",
		"fleet.jobs.failed", "fleet.jobs.cancelled",
		"fleet.rollups.pushed", "fleet.rollups.errors",
	} {
		s.reg.Counter(c)
	}
	s.reg.Gauge("fleet.jobs.queued")
	s.reg.Gauge("fleet.jobs.running")
	return s, nil
}

// Registry returns the scheduler's telemetry registry.
func (s *Scheduler) Registry() *telemetry.Registry { return s.reg }

// Submit admits one request: unknown tenants and full queues are rejected
// (bounded-backlog admission control), everything else is enqueued FIFO
// behind the tenant's earlier jobs. Before Start, submissions only queue —
// the first grants happen when the scheduler starts.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if req.Slots <= 0 {
		req.Slots = 1
	}
	if req.Steps <= 0 {
		req.Steps = 120
	}
	if req.Name == "" {
		req.Name = "job"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		s.reg.Counter("fleet.jobs.rejected").Inc()
		return nil, ErrStopped
	}
	tenant, ok := s.tenantLocked(req.Tenant)
	if !ok {
		s.reg.Counter("fleet.jobs.rejected").Inc()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, req.Tenant)
	}
	if req.Slots > 3 || req.Slots > s.cfg.Pool.Size() {
		s.reg.Counter("fleet.jobs.rejected").Inc()
		return nil, fmt.Errorf("fleet: %d slots unsatisfiable (pool has %d, frame takes ≤3)",
			req.Slots, s.cfg.Pool.Size())
	}
	maxQ := tenant.MaxQueued
	if maxQ <= 0 {
		maxQ = DefaultMaxQueued
	}
	if len(s.queues[tenant.Name]) >= maxQ {
		s.reg.Counter("fleet.jobs.rejected").Inc()
		return nil, fmt.Errorf("%w: %q has %d queued (max %d)",
			ErrQueueFull, tenant.Name, len(s.queues[tenant.Name]), maxQ)
	}
	s.nextSub++
	job := &Job{
		ID:        fmt.Sprintf("%s-%s-%d", tenant.Name, req.Name, s.nextSub),
		Tenant:    tenant.Name,
		Name:      req.Name,
		Slots:     req.Slots,
		Steps:     req.Steps,
		Seq:       -1,
		state:     StateQueued,
		submitted: time.Now(),
	}
	if s.cfg.StoreRoot != "" {
		job.StorePrefix = filepath.Join(s.cfg.StoreRoot, tenant.Name, job.ID)
	}
	job.daqEvery = req.DAQEvery
	job.failAt = req.FailAt
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
	s.queues[tenant.Name] = append(s.queues[tenant.Name], job)
	s.reg.Counter("fleet.jobs.submitted").Inc()
	s.reg.Gauge("fleet.jobs.queued").Add(1)
	s.scheduleLocked()
	s.bumpLocked()
	return job, nil
}

// tenantLocked finds a declared tenant by name.
func (s *Scheduler) tenantLocked(name string) (Tenant, bool) {
	for _, t := range s.cfg.Tenants {
		if t.Name == name {
			return t, true
		}
	}
	return Tenant{}, false
}

// Start begins granting. The scheduler is a runtime.Component so fleetd
// supervises it beside the pool and the aggregator.
func (s *Scheduler) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running || s.stopped {
		return errors.New("fleet: scheduler already started")
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	s.running = true
	s.scheduleLocked()
	return nil
}

// Stop ends admission, cancels running jobs, discards the queues, and
// waits (bounded by ctx) for the runners to drain.
func (s *Scheduler) Stop(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	s.stopped = true
	s.running = false
	for name, q := range s.queues {
		for _, job := range q {
			job.state = StateCancelled
			job.finished = time.Now()
			s.reg.Counter("fleet.jobs.cancelled").Inc()
			s.reg.Gauge("fleet.jobs.queued").Add(-1)
		}
		s.queues[name] = nil
	}
	if s.cancel != nil {
		s.cancel()
	}
	s.bumpLocked()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: scheduler drain: %w", ctx.Err())
	}
}

// Healthy reports nil while the scheduler is admitting and granting.
func (s *Scheduler) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return errors.New("fleet: scheduler stopped")
	}
	if !s.running {
		return errors.New("fleet: scheduler not started")
	}
	return nil
}

// Cancel withdraws a job: a queued job is removed, a running one has its
// run context cancelled (the runner then records it as cancelled).
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("fleet: no such job %q", id)
	}
	switch job.state {
	case StateQueued:
		q := s.queues[job.Tenant]
		for i, j := range q {
			if j == job {
				s.queues[job.Tenant] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		job.state = StateCancelled
		job.finished = time.Now()
		s.reg.Counter("fleet.jobs.cancelled").Inc()
		s.reg.Gauge("fleet.jobs.queued").Add(-1)
		s.bumpLocked()
		return nil
	case StateRunning:
		job.cancelled = true
		if job.cancel != nil {
			job.cancel()
		}
		return nil
	default:
		return fmt.Errorf("fleet: job %q already %s", id, job.state)
	}
}

// Job returns one job's snapshot.
func (s *Scheduler) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return job.viewLocked(), true
}

// Jobs returns every job in submission order.
func (s *Scheduler) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, job := range s.order {
		out = append(out, job.viewLocked())
	}
	return out
}

// GrantOrder returns the tenants of granted jobs in grant (Seq) order —
// the observable the fair-share tests and the CI smoke assert on.
func (s *Scheduler) GrantOrder() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.grants))
	for _, job := range s.grants {
		out = append(out, job.Tenant)
	}
	return out
}

// Wait blocks until every submitted job has reached a terminal state (or
// ctx expires). New submissions during the wait extend it.
func (s *Scheduler) Wait(ctx context.Context) error {
	for {
		s.mu.Lock()
		live := 0
		for _, job := range s.jobs {
			if !job.state.terminal() {
				live++
			}
		}
		ch := s.notify
		s.mu.Unlock()
		if live == 0 {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("fleet: wait (%d jobs live): %w", live, ctx.Err())
		}
	}
}

// bumpLocked wakes every Wait.
func (s *Scheduler) bumpLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// viewLocked snapshots a job under the scheduler lock.
func (j *Job) viewLocked() JobView {
	v := JobView{
		ID: j.ID, Tenant: j.Tenant, Name: j.Name, Slots: j.Slots,
		Seq: j.Seq, State: j.state, StepsDone: j.stepsDone, Store: j.StorePrefix,
	}
	if j.err != nil {
		v.Err = j.err.Error()
	}
	return v
}

// scheduleLocked runs grant passes until one grants nothing. Each pass
// walks the tenant rotation from the cursor; a tenant with queued work
// whose head job fits the free slots gets up to Weight consecutive
// grants, then the cursor advances past it — weighted round-robin across
// tenants, FIFO within one. A tenant whose head does not fit is skipped
// (its turn comes again next pass), so a wide job cannot starve the
// rotation, only its own queue.
func (s *Scheduler) scheduleLocked() {
	if !s.running || s.stopped {
		return
	}
	for {
		granted := false
		// The pass walks from where the previous pass's cursor left off;
		// idx must come from the pass's own start, not the live cursor,
		// which advances on every grant.
		start := s.cursor
		for i := 0; i < len(s.cfg.Tenants); i++ {
			idx := (start + i) % len(s.cfg.Tenants)
			t := s.cfg.Tenants[idx]
			burst := t.Weight
			if burst < 1 {
				burst = 1
			}
			took := 0
			for took < burst && len(s.queues[t.Name]) > 0 {
				job := s.queues[t.Name][0]
				sites, err := s.cfg.Pool.Lease(job.Slots)
				if err != nil {
					break // head does not fit; tenant waits, rotation moves on
				}
				s.queues[t.Name] = s.queues[t.Name][1:]
				job.Seq = s.nextSeq
				s.nextSeq++
				s.grants = append(s.grants, job)
				job.state = StateRunning
				ctx, cancel := context.WithCancel(s.baseCtx)
				job.cancel = cancel
				s.reg.Gauge("fleet.jobs.queued").Add(-1)
				s.reg.Gauge("fleet.jobs.running").Add(1)
				s.wg.Add(1)
				go s.run(ctx, job, sites)
				granted = true
				took++
			}
			if took > 0 {
				s.cursor = (idx + 1) % len(s.cfg.Tenants)
			}
		}
		if !granted {
			return
		}
	}
}

// run executes one granted job over its leased sites, pushes the run's
// merged roll-up to the fleet aggregator, and returns the slots.
func (s *Scheduler) run(ctx context.Context, job *Job, sites []*most.Site) {
	defer s.wg.Done()
	results, runErr := s.runExperiment(ctx, job, sites)

	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.cfg.Pool.Release(sites) // release even (especially) on failure
	s.reg.Gauge("fleet.jobs.running").Add(-1)
	job.finished = time.Now()
	switch {
	case job.cancelled || (runErr != nil && errors.Is(runErr, context.Canceled)):
		job.state = StateCancelled
		job.err = runErr
		s.reg.Counter("fleet.jobs.cancelled").Inc()
	case runErr != nil:
		job.state = StateFailed
		job.err = runErr
		s.reg.Counter("fleet.jobs.failed").Inc()
	default:
		job.state = StateDone
		s.reg.Counter("fleet.jobs.completed").Inc()
	}
	if results != nil && results.Report != nil {
		job.stepsDone = results.Report.StepsCompleted
	}
	s.scheduleLocked() // freed slots go to the next head in rotation
	s.bumpLocked()
}

// runExperiment is the unlocked body of a job run: build the shared-site
// experiment under the tenant's identity, run it, scrape its roll-up, and
// push that to the fleet plane. The experiment's Stop (which revokes the
// tenant's identity at every leased slot) always runs.
func (s *Scheduler) runExperiment(ctx context.Context, job *Job, sites []*most.Site) (*most.Results, error) {
	spec := most.Spec{
		Name:     job.ID,
		Frame:    frameFor(sites, job.Steps),
		Steps:    job.Steps,
		Retry:    core.DefaultRetry,
		DAQEvery: job.daqEvery,
	}
	if job.failAt > 0 {
		// The release-on-failure hook: a hard outage the default retry
		// policy cannot ride out would stall for its full backoff budget,
		// so the failing job runs retry-less, like the paper's public-run
		// coordinator.
		spec.Retry = core.NoRetry
		spec.Faults = []most.Fault{{Step: job.failAt, Fatal: true}}
	}
	if job.StorePrefix != "" {
		if err := os.MkdirAll(job.StorePrefix, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: job store: %w", err)
		}
		spec.Checkpoint = &coord.CheckpointConfig{
			Path:  filepath.Join(job.StorePrefix, "checkpoint.json"),
			Every: 25,
		}
	}
	exp, err := most.BuildShared(spec, s.cfg.Pool.CA(), s.cfg.Pool.Trust(), job.Tenant, sites)
	if err != nil {
		return nil, err
	}
	results, err := exp.Run(ctx)
	if err == nil && results.Err != nil {
		err = results.Err
	}
	s.pushRollup(ctx, job, exp)
	if stopErr := exp.Stop(); err == nil && stopErr != nil {
		err = stopErr
	}
	return results, err
}

// pushRollup takes a final scrape of the experiment's aggregator (the
// coordinator-side registry — shared site registries belong to the pool's
// scrape plane, not to any one run) and ships the merged snapshot to the
// fleet: over HTTP to PushURL when configured (the fleetd topology), else
// in-process to Agg. The source name is tenant-scoped, so the fleet view
// lists tenant/jobID rows.
func (s *Scheduler) pushRollup(ctx context.Context, job *Job, exp *most.Experiment) {
	if s.cfg.PushURL == "" && s.cfg.Agg == nil {
		return
	}
	scrapeCtx, cancel := context.WithTimeout(contextOrBackground(ctx), 2*time.Second)
	defer cancel()
	exp.Obs().ScrapeOnce(scrapeCtx)
	snap := exp.Obs().Merged()
	name := job.Tenant + "/" + job.ID
	var err error
	if s.cfg.PushURL != "" {
		err = obs.PushSnapshot(nil, s.cfg.PushURL, name, snap)
	} else {
		s.cfg.Agg.Push(name, snap)
	}
	if err != nil {
		s.reg.Counter("fleet.rollups.errors").Inc()
	} else {
		s.reg.Counter("fleet.rollups.pushed").Inc()
	}
}

// contextOrBackground shields the final scrape/push from an already-
// cancelled run context: a cancelled job still reports its partial
// roll-up.
func contextOrBackground(ctx context.Context) context.Context {
	if ctx == nil || ctx.Err() != nil {
		return context.Background()
	}
	return ctx
}

// frameFor maps leased slots onto the MOST frame's three column
// positions: slot stiffnesses become LeftK, MidK, RightK in lease order.
// The story mass is fixed at 1000 kg, which with the default slot
// stiffness keeps the explicit integration grid stable at Δt = 0.01 s for
// any 1–3 slot lease.
func frameFor(sites []*most.Site, steps int) structural.FrameConfig {
	f := structural.FrameConfig{
		Mass:         1000,
		Dt:           0.01,
		Steps:        steps,
		DampingRatio: 0.02,
	}
	for i, s := range sites {
		switch i {
		case 0:
			f.LeftK = s.Spec.K
		case 1:
			f.MidK = s.Spec.K
		case 2:
			f.RightK = s.Spec.K
		}
	}
	return f
}
