package fleet

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
)

func newTestPool(t *testing.T, slots int, reg *telemetry.Registry) *Pool {
	t.Helper()
	pool, err := NewPool(PoolConfig{Slots: slots, Registry: reg})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	t.Cleanup(func() { _ = pool.Stop(context.Background()) })
	return pool
}

func startScheduler(t *testing.T, s *Scheduler) {
	t.Helper()
	if err := s.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Stop(ctx)
	})
}

func waitAll(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v (jobs: %+v)", err, s.Jobs())
	}
}

// Admission control: a tenant's backlog is bounded; the scheduler rejects
// past the bound and counts the rejection, without disturbing the queued
// work. Unknown tenants and unsatisfiable slot counts are rejected too.
func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	pool := newTestPool(t, 1, reg)
	s, err := NewScheduler(Config{
		Pool:     pool,
		Tenants:  []Tenant{{Name: "alpha", MaxQueued: 2}},
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	// Not started: everything queues, nothing drains — the bound is hit
	// deterministically.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{Tenant: "alpha", Steps: 3}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := s.Submit(Request{Tenant: "alpha", Steps: 3}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-quota submit: err=%v, want ErrQueueFull", err)
	}
	if _, err := s.Submit(Request{Tenant: "nobody", Steps: 3}); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err=%v, want ErrUnknownTenant", err)
	}
	if _, err := s.Submit(Request{Tenant: "alpha", Slots: 2, Steps: 3}); err == nil {
		t.Fatal("2-slot request against a 1-slot pool was admitted")
	}
	if got := reg.Counter("fleet.jobs.rejected").Value(); got != 3 {
		t.Fatalf("fleet.jobs.rejected = %d, want 3", got)
	}
	if got := reg.Gauge("fleet.jobs.queued").Value(); got != 2 {
		t.Fatalf("fleet.jobs.queued = %g, want 2", got)
	}
}

// Fair share: six jobs from two equal-weight tenants over a two-slot pool
// grant in strict alternation while both queues are nonempty, FIFO within
// each tenant, regardless of completion timing.
func TestFairShareOrderingAcrossTenants(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	pool := newTestPool(t, 2, reg)
	s, err := NewScheduler(Config{
		Pool:     pool,
		Tenants:  []Tenant{{Name: "alpha", Weight: 1}, {Name: "beta", Weight: 1}},
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	var jobs []*Job
	for i := 0; i < 4; i++ {
		job, err := s.Submit(Request{Tenant: "alpha", Name: "a", Steps: 4})
		if err != nil {
			t.Fatalf("submit alpha: %v", err)
		}
		jobs = append(jobs, job)
	}
	for i := 0; i < 2; i++ {
		job, err := s.Submit(Request{Tenant: "beta", Name: "b", Steps: 4})
		if err != nil {
			t.Fatalf("submit beta: %v", err)
		}
		jobs = append(jobs, job)
	}
	startScheduler(t, s)
	waitAll(t, s)

	want := "alpha beta alpha beta alpha alpha"
	if got := strings.Join(s.GrantOrder(), " "); got != want {
		t.Fatalf("grant order %q, want %q", got, want)
	}
	// FIFO within a tenant: alpha's jobs carry strictly increasing Seq in
	// submission order, and every job completed.
	lastAlpha := -1
	for _, job := range jobs {
		view, ok := s.Job(job.ID)
		if !ok {
			t.Fatalf("job %s vanished", job.ID)
		}
		if view.State != StateDone {
			t.Fatalf("job %s state=%s err=%q, want done", view.ID, view.State, view.Err)
		}
		if view.Tenant == "alpha" {
			if view.Seq <= lastAlpha {
				t.Fatalf("alpha job %s granted out of FIFO order (seq %d after %d)",
					view.ID, view.Seq, lastAlpha)
			}
			lastAlpha = view.Seq
		}
	}
}

// Weighted share: with two free slots and weight 2, a tenant takes two
// consecutive grants per turn before the rotation moves on.
func TestWeightedGrantBurst(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	pool := newTestPool(t, 2, reg)
	s, err := NewScheduler(Config{
		Pool:     pool,
		Tenants:  []Tenant{{Name: "alpha", Weight: 2}, {Name: "beta", Weight: 1}},
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(Request{Tenant: "alpha", Steps: 4}); err != nil {
			t.Fatalf("submit alpha: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(Request{Tenant: "beta", Steps: 4}); err != nil {
			t.Fatalf("submit beta: %v", err)
		}
	}
	startScheduler(t, s)
	waitAll(t, s)

	// Initial pass: alpha bursts both slots. Each completion then frees
	// one slot at a time, so later turns grant singly — but the rotation
	// still alternates tenants from wherever the cursor stopped.
	want := "alpha alpha beta alpha beta alpha"
	if got := strings.Join(s.GrantOrder(), " "); got != want {
		t.Fatalf("grant order %q, want %q", got, want)
	}
}

// Release on failure: a job that dies mid-run (fatal outage, no retries)
// must return its slot — with armed faults cleared and the specimen reset
// — so the next queued job runs to completion on the same slot.
func TestSlotReleasedAfterMidRunFailure(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	pool := newTestPool(t, 1, reg)
	s, err := NewScheduler(Config{
		Pool:     pool,
		Tenants:  []Tenant{{Name: "alpha"}},
		Registry: reg,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	doomed, err := s.Submit(Request{Tenant: "alpha", Name: "doomed", Steps: 8, FailAt: 3})
	if err != nil {
		t.Fatalf("submit doomed: %v", err)
	}
	survivor, err := s.Submit(Request{Tenant: "alpha", Name: "survivor", Steps: 8})
	if err != nil {
		t.Fatalf("submit survivor: %v", err)
	}
	startScheduler(t, s)
	waitAll(t, s)

	if view, _ := s.Job(doomed.ID); view.State != StateFailed {
		t.Fatalf("doomed job state=%s err=%q, want failed", view.State, view.Err)
	}
	if view, _ := s.Job(survivor.ID); view.State != StateDone || view.StepsDone != 8 {
		t.Fatalf("survivor state=%s steps=%d err=%q, want done 8/8 on the released slot",
			view.State, view.StepsDone, view.Err)
	}
	if free := pool.Free(); free != 1 {
		t.Fatalf("pool has %d free slots after drain, want 1", free)
	}
	if got := reg.Counter("fleet.leases.released").Value(); got != 2 {
		t.Fatalf("fleet.leases.released = %d, want 2", got)
	}
	// The fatal outage armed by the doomed run must not leak into the
	// slot's next lease.
	for _, site := range pool.Sites() {
		site.Injector.ClearFaults() // idempotent; the release already did this
	}
}

// Tenant isolation on disk: two tenants reusing the same run name — and
// one tenant reusing its own — never collide on store paths; every job
// writes its checkpoint under its own tenant-prefixed directory.
func TestTenantStorePathsNeverCollide(t *testing.T) {
	t.Parallel()
	store := t.TempDir()
	reg := telemetry.NewRegistry()
	pool := newTestPool(t, 2, reg)
	s, err := NewScheduler(Config{
		Pool:      pool,
		Tenants:   []Tenant{{Name: "alpha"}, {Name: "beta"}},
		StoreRoot: store,
		Registry:  reg,
	})
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	var jobs []*Job
	for _, tenant := range []string{"alpha", "alpha", "beta"} {
		job, err := s.Submit(Request{Tenant: tenant, Name: "run", Steps: 4})
		if err != nil {
			t.Fatalf("submit %s: %v", tenant, err)
		}
		jobs = append(jobs, job)
	}
	startScheduler(t, s)
	waitAll(t, s)

	seen := map[string]string{}
	for _, job := range jobs {
		view, _ := s.Job(job.ID)
		if view.State != StateDone {
			t.Fatalf("job %s state=%s err=%q, want done", view.ID, view.State, view.Err)
		}
		if view.Store == "" {
			t.Fatalf("job %s has no store prefix", view.ID)
		}
		wantPrefix := filepath.Join(store, view.Tenant) + string(filepath.Separator)
		if !strings.HasPrefix(view.Store, wantPrefix) {
			t.Fatalf("job %s store %q not under tenant prefix %q", view.ID, view.Store, wantPrefix)
		}
		if prev, dup := seen[view.Store]; dup {
			t.Fatalf("jobs %s and %s share store path %q", prev, view.ID, view.Store)
		}
		seen[view.Store] = view.ID
		if _, err := os.Stat(filepath.Join(view.Store, "checkpoint.json")); err != nil {
			t.Fatalf("job %s checkpoint: %v", view.ID, err)
		}
	}
}
