package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Mux builds the scheduler's HTTP surface — the API `mostctl fleet` talks
// to:
//
//	POST /submit        JSON Request body → JobView (202)
//	GET  /jobs          every job in submission order
//	GET  /job?id=<id>   one job
//	POST /cancel?id=    withdraw a job
//	GET  /grants        tenants in grant order (the fairness observable)
//
// Everything else falls through to the aggregator handler when one is
// given — fleetd passes its obs mux, so /fleet, /metrics, /slo, /series
// and /push (the roll-up ingestion path the runners POST to) share the
// API listener.
func (s *Scheduler) Mux(agg http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "fleet: POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("fleet: decode: %v", err), http.StatusBadRequest)
			return
		}
		job, err := s.Submit(req)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrQueueFull) {
				// Admission pushback, not a malformed request: the tenant's
				// backlog is full, try again after a job drains.
				status = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), status)
			return
		}
		view, _ := s.Job(job.ID)
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, view)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "fleet: GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Jobs())
	})
	mux.HandleFunc("/job", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "fleet: GET only", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		view, ok := s.Job(id)
		if !ok {
			http.Error(w, fmt.Sprintf("fleet: no such job %q", id), http.StatusNotFound)
			return
		}
		writeJSON(w, view)
	})
	mux.HandleFunc("/cancel", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "fleet: POST only", http.StatusMethodNotAllowed)
			return
		}
		id := r.URL.Query().Get("id")
		if err := s.Cancel(id); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/grants", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "fleet: GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.GrantOrder())
	})
	if agg != nil {
		mux.Handle("/", agg)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
