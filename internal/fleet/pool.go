// Package fleet is the multi-tenant experiment scheduler (ROADMAP item 1):
// it admits, queues and runs many concurrent most.Experiment instances
// over a shared pool of NTCP sites. The paper ran one MOST experiment over
// a handful of sites; at "millions of users" scale the experiment itself
// becomes the unit of traffic, and the scarce resource is the site — a
// rig, a shaking table, a compute allocation — not the coordinator. The
// scheduler's job is therefore the grid scheduler's classic one
// (PAPERS.md: transaction-oriented simulation in ad-hoc grids, MONARC-style
// job/transfer scheduling): per-tenant admission control with bounded
// queues, weighted fair-share across tenants with FIFO order within one,
// site-slot leasing with release-on-failure, and tenant isolation — each
// run gets a tenant-scoped GSI identity mapped into (and revoked from) the
// leased sites' gridmaps, and tenant-prefixed checkpoint/archive store
// paths so concurrent runs never collide on disk.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/most"
	"neesgrid/internal/runtime"
	"neesgrid/internal/telemetry"
)

// ErrNoSlots reports a lease request larger than the pool's current free
// capacity. The scheduler treats it as "wait", not "fail".
var ErrNoSlots = errors.New("fleet: not enough free site slots")

// DefaultSlotK is the elastic stiffness of a default pool slot (N/m).
// With the default slot mass-share of 1000 kg per slot this keeps the
// explicit-Newmark grid (dt = 0.01 s) comfortably stable for topologies
// of one to three slots.
const DefaultSlotK = 2.0e5

// PoolConfig describes a shared site pool.
type PoolConfig struct {
	// Slots is the number of pooled sites when Specs is empty (default 2).
	Slots int
	// K is the per-slot elastic stiffness for generated specs (default
	// DefaultSlotK).
	K float64
	// Specs overrides the generated slot specs entirely (advanced
	// topologies: rig-backed slots, relay tiers, WAN profiles).
	Specs []most.SiteSpec
	// Registry receives the pool's telemetry; nil means a private one.
	Registry *telemetry.Registry
}

// Pool is a shared set of running NTCP sites that experiments lease. The
// pool owns the long-lived CA every slot trusts; tenants get per-run
// credentials issued from it. Slots are leased whole (one experiment per
// slot at a time) and returned reset: specimen back to virgin state,
// armed network faults cleared, tenant identity revoked by the
// experiment's own teardown.
type Pool struct {
	ca    *gsi.Authority
	trust *gsi.TrustStore
	sites []*most.Site
	reg   *telemetry.Registry

	sup *runtime.Supervisor

	// leased[i] marks sites[i] as held by a running experiment. Guarded by
	// the scheduler's lock in practice, but the pool keeps its own
	// invariants so it is usable standalone; all methods are called with
	// external synchronization from the Scheduler, and the pool itself is
	// not otherwise concurrency-safe.
	leased []bool
}

// NewPool starts every slot. The slots run until Stop.
func NewPool(cfg PoolConfig) (*Pool, error) {
	specs := cfg.Specs
	if len(specs) == 0 {
		n := cfg.Slots
		if n <= 0 {
			n = 2
		}
		k := cfg.K
		if k <= 0 {
			k = DefaultSlotK
		}
		for i := 0; i < n; i++ {
			specs = append(specs, most.SiteSpec{
				Name: fmt.Sprintf("slot-%d", i),
				Kind: most.KindSimulation,
				K:    k,
			})
		}
	}
	ca, err := gsi.NewAuthority("/O=NEES/CN=fleet pool CA", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		ca:    ca,
		trust: gsi.NewTrustStore(ca.Cert),
		reg:   telemetry.OrNew(cfg.Registry),
		sup:   runtime.NewSupervisor("fleet-pool"),
	}
	for _, spec := range specs {
		site, err := most.StartSharedSite(ca, p.trust, spec)
		if err != nil {
			_ = p.Stop(context.Background())
			return nil, fmt.Errorf("fleet: pool slot %s: %w", spec.Name, err)
		}
		p.sites = append(p.sites, site)
		p.leased = append(p.leased, false)
		p.sup.Adopt("slot:"+spec.Name, runtime.Funcs{
			StopFunc:    func(ctx context.Context) error { return site.Supervisor().Stop(ctx) },
			HealthyFunc: site.Healthy,
		}, runtime.WithDrain(site.Supervisor().StopBudget()))
	}
	if err := p.sup.Start(context.Background()); err != nil {
		_ = p.Stop(context.Background())
		return nil, err
	}
	p.reg.Gauge("fleet.slots.total").Set(float64(len(p.sites)))
	p.reg.Gauge("fleet.slots.free").Set(float64(len(p.sites)))
	// Pre-register at zero: a pool that never granted a lease still
	// exports the series.
	p.reg.Counter("fleet.leases.granted")
	p.reg.Counter("fleet.leases.released")
	return p, nil
}

// CA returns the pool's long-lived authority (tenant credentials are
// issued from it).
func (p *Pool) CA() *gsi.Authority { return p.ca }

// Trust returns the trust store every slot verifies against.
func (p *Pool) Trust() *gsi.TrustStore { return p.trust }

// Size returns the total slot count.
func (p *Pool) Size() int { return len(p.sites) }

// Free returns the currently unleased slot count.
func (p *Pool) Free() int {
	free := 0
	for _, l := range p.leased {
		if !l {
			free++
		}
	}
	return free
}

// Sites returns every pooled site in slot order (for health scraping —
// fleetd registers each slot's /metrics as a pull source).
func (p *Pool) Sites() []*most.Site {
	return append([]*most.Site(nil), p.sites...)
}

// Lease takes n free slots (lowest slot index first, so grant order is
// deterministic) or returns ErrNoSlots without taking any.
func (p *Pool) Lease(n int) ([]*most.Site, error) {
	if n <= 0 || n > len(p.sites) {
		return nil, fmt.Errorf("fleet: lease of %d slots from a %d-slot pool", n, len(p.sites))
	}
	if p.Free() < n {
		return nil, ErrNoSlots
	}
	out := make([]*most.Site, 0, n)
	for i := range p.sites {
		if p.leased[i] {
			continue
		}
		p.leased[i] = true
		out = append(out, p.sites[i])
		if len(out) == n {
			break
		}
	}
	p.reg.Counter("fleet.leases.granted").Inc()
	p.reg.Gauge("fleet.slots.free").Set(float64(p.Free()))
	return out, nil
}

// Release returns leased slots to the pool: armed network faults are
// cleared and the specimen is reset to its virgin state so the next
// tenant's run starts from rest regardless of how the previous one ended.
// Reset errors are reported but do not keep the slot leased — a slot that
// cannot reset is a slot that will fail its next run loudly rather than
// silently starve the queue.
func (p *Pool) Release(sites []*most.Site) error {
	var errs []error
	for _, s := range sites {
		s.Injector.ClearFaults()
		if err := s.Reset(); err != nil {
			errs = append(errs, fmt.Errorf("reset %s: %w", s.Spec.Name, err))
		}
		for i := range p.sites {
			if p.sites[i] == s {
				p.leased[i] = false
			}
		}
	}
	p.reg.Counter("fleet.leases.released").Inc()
	p.reg.Gauge("fleet.slots.free").Set(float64(p.Free()))
	return errors.Join(errs...)
}

// Healthy aggregates slot health.
func (p *Pool) Healthy() error { return p.sup.Healthy() }

// StopBudget is the wall-clock a full pool teardown may need.
func (p *Pool) StopBudget() time.Duration { return p.sup.StopBudget() }

// Stop tears every slot down.
func (p *Pool) Stop(ctx context.Context) error {
	return p.sup.Stop(ctx)
}
