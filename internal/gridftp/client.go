package gridftp

import (
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
)

// Client transfers files against one server.
type Client struct {
	Addr string
	// BlockSize overrides the transfer block size.
	BlockSize int
	// Dial overrides the dialer (fault injection); nil means net.Dial.
	Dial func(network, addr string) (net.Conn, error)

	nextID atomic.Int64
}

func (c *Client) dial() (net.Conn, error) {
	dial := c.Dial
	if dial == nil {
		dial = net.Dial
	}
	return dial("tcp", c.Addr)
}

func (c *Client) block() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return DefaultBlockSize
}

// roundTrip opens a connection, sends a header, reads the response, and
// returns the open connection for any following binary phase.
func (c *Client) roundTrip(req *request) (net.Conn, *response, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, nil, fmt.Errorf("gridftp: dial %s: %w", c.Addr, err)
	}
	if err := sendJSON(conn, req); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("gridftp: send: %w", err)
	}
	var resp response
	if err := recvJSON(conn, &resp); err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("gridftp: recv: %w", err)
	}
	if !resp.OK {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("gridftp: server: %s", resp.Error)
	}
	return conn, &resp, nil
}

// Stat returns size and CRC of a remote file.
func (c *Client) Stat(remotePath string) (size int64, crc uint32, err error) {
	conn, resp, err := c.roundTrip(&request{Op: "stat", Path: remotePath})
	if err != nil {
		return 0, 0, err
	}
	_ = conn.Close()
	return resp.Size, resp.CRC, nil
}

// Get downloads a remote file into localPath using `streams` parallel
// range-striped connections, then verifies the CRC.
func (c *Client) Get(remotePath, localPath string, streams int) error {
	if streams < 1 {
		streams = 1
	}
	size, wantCRC, err := c.Stat(remotePath)
	if err != nil {
		return err
	}
	f, err := os.Create(localPath)
	if err != nil {
		return fmt.Errorf("gridftp: create %s: %w", localPath, err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("gridftp: truncate: %w", err)
	}
	// Split into `streams` contiguous ranges.
	var wg sync.WaitGroup
	errs := make([]error, streams)
	chunk := (size + int64(streams) - 1) / int64(streams)
	for i := 0; i < streams; i++ {
		off := int64(i) * chunk
		if off >= size {
			break
		}
		length := chunk
		if off+length > size {
			length = size - off
		}
		wg.Add(1)
		go func(i int, off, length int64) {
			defer wg.Done()
			errs[i] = c.getRange(remotePath, f, off, length)
		}(i, off, length)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	if h.Sum32() != wantCRC {
		return fmt.Errorf("gridftp: download crc mismatch: got %08x want %08x", h.Sum32(), wantCRC)
	}
	return nil
}

func (c *Client) getRange(remotePath string, f *os.File, off, length int64) error {
	conn, resp, err := c.roundTrip(&request{Op: "get-data", Path: remotePath, Offset: off, Length: length})
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := make([]byte, 64<<10)
	remaining := resp.Size
	pos := off
	for remaining > 0 {
		n := int64(len(buf))
		if n > remaining {
			n = remaining
		}
		read, err := io.ReadFull(conn, buf[:n])
		if err != nil {
			return fmt.Errorf("gridftp: range read: %w", err)
		}
		if _, err := f.WriteAt(buf[:read], pos); err != nil {
			return err
		}
		pos += int64(read)
		remaining -= int64(read)
	}
	return nil
}

// Put uploads localPath to remotePath using `streams` striped connections
// and commits with a CRC check. Interrupted uploads can be resumed with
// Resume using the same transfer id; Put generates a fresh id.
func (c *Client) Put(localPath, remotePath string, streams int) error {
	id := fmt.Sprintf("put-%d-%d", os.Getpid(), c.nextID.Add(1))
	return c.put(localPath, remotePath, id, streams, nil)
}

// Resume continues an interrupted upload under a caller-chosen transfer id,
// skipping blocks the server already holds.
func (c *Client) Resume(localPath, remotePath, transferID string, streams int) error {
	return c.put(localPath, remotePath, transferID, streams, nil)
}

// PutWithID uploads under a caller-chosen transfer id, with an optional
// per-block hook the fault-injection tests use to kill streams mid-flight.
func (c *Client) PutWithID(localPath, remotePath, transferID string, streams int, onBlock func(block int) error) error {
	return c.put(localPath, remotePath, transferID, streams, onBlock)
}

func (c *Client) put(localPath, remotePath, id string, streams int, onBlock func(int) error) error {
	if streams < 1 {
		streams = 1
	}
	f, err := os.Open(localPath)
	if err != nil {
		return fmt.Errorf("gridftp: open %s: %w", localPath, err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	bs := c.block()

	// Init (idempotent): learn which blocks the server already has.
	conn, resp, err := c.roundTrip(&request{
		Op: "put-init", ID: id, Path: remotePath, Size: size, Block: bs, Streams: streams,
	})
	if err != nil {
		return err
	}
	_ = conn.Close()
	have := make(map[int]bool, len(resp.Received))
	for _, b := range resp.Received {
		have[b] = true
	}

	blocks := int((size + int64(bs) - 1) / int64(bs))
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			errs[stripe] = c.putStripe(f, id, stripe, streams, blocks, bs, size, have, onBlock)
		}(s)
	}
	wg.Wait()
	var streamErr error
	for _, err := range errs {
		if err != nil {
			streamErr = err
			break
		}
	}
	if streamErr != nil {
		return fmt.Errorf("gridftp: upload stream: %w", streamErr)
	}

	// Commit with CRC.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	conn, _, err = c.roundTrip(&request{Op: "put-commit", ID: id, CRC: h.Sum32()})
	if err != nil {
		return err
	}
	_ = conn.Close()
	return nil
}

func (c *Client) putStripe(f *os.File, id string, stripe, streams, blocks, bs int, size int64, have map[int]bool, onBlock func(int) error) error {
	conn, _, err := c.roundTrip(&request{Op: "put-data", ID: id, Stripe: stripe})
	if err != nil {
		return err
	}
	defer conn.Close()
	buf := make([]byte, bs)
	for b := stripe; b < blocks; b += streams {
		if have[b] {
			continue
		}
		if onBlock != nil {
			if err := onBlock(b); err != nil {
				return err
			}
		}
		off := int64(b) * int64(bs)
		n := int64(bs)
		if off+n > size {
			n = size - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return err
		}
		if err := writeBlockHeader(conn, blockHeader{Offset: off, Length: int32(n)}); err != nil {
			return err
		}
		if _, err := conn.Write(buf[:n]); err != nil {
			return err
		}
	}
	// End-of-stripe marker; wait for the server to acknowledge that every
	// block of this stream is applied before the caller commits.
	if err := writeBlockHeader(conn, blockHeader{}); err != nil {
		return err
	}
	var ack response
	if err := recvJSON(conn, &ack); err != nil {
		return fmt.Errorf("gridftp: stripe ack: %w", err)
	}
	if !ack.OK {
		return fmt.Errorf("gridftp: stripe rejected: %s", ack.Error)
	}
	return nil
}

// Status queries the restart marker of an in-progress upload.
func (c *Client) Status(transferID string) ([]int, error) {
	conn, resp, err := c.roundTrip(&request{Op: "put-status", ID: transferID})
	if err != nil {
		return nil, err
	}
	_ = conn.Close()
	return resp.Received, nil
}

// FXP asks the server to push remotePath to dstPath on the server at
// dstAddr — GridFTP third-party transfer.
func (c *Client) FXP(remotePath, dstAddr, dstPath string) error {
	conn, _, err := c.roundTrip(&request{Op: "fxp", Path: remotePath, DstAddr: dstAddr, DstPath: dstPath})
	if err != nil {
		return err
	}
	_ = conn.Close()
	return nil
}
