package gridftp

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fixture starts a server over a temp root and returns (server, client,
// root).
func fixture(t *testing.T) (*Server, *Client, string) {
	t.Helper()
	root := t.TempDir()
	srv, err := NewServer(root)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, &Client{Addr: addr}, root
}

func writeTemp(t *testing.T, size int, seed int64) (string, []byte) {
	t.Helper()
	data := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	path := filepath.Join(t.TempDir(), "src.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestPutGetRoundTrip(t *testing.T) {
	_, cl, root := fixture(t)
	src, data := writeTemp(t, 300_000, 1) // ~5 blocks at 64 KiB
	if err := cl.Put(src, "exp/most/run1.bin", 3); err != nil {
		t.Fatal(err)
	}
	// Stored bytes match.
	stored, err := os.ReadFile(filepath.Join(root, "exp/most/run1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, data) {
		t.Fatal("stored bytes differ")
	}
	// Download with parallel streams.
	dst := filepath.Join(t.TempDir(), "dst.bin")
	if err := cl.Get("exp/most/run1.bin", dst, 4); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, data) {
		t.Fatal("downloaded bytes differ")
	}
}

func TestPutSmallAndEmptyFiles(t *testing.T) {
	_, cl, root := fixture(t)
	src, data := writeTemp(t, 10, 2)
	if err := cl.Put(src, "tiny.bin", 4); err != nil { // more streams than blocks
		t.Fatal(err)
	}
	stored, _ := os.ReadFile(filepath.Join(root, "tiny.bin"))
	if !bytes.Equal(stored, data) {
		t.Fatal("tiny file corrupt")
	}

	empty := filepath.Join(t.TempDir(), "empty.bin")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cl.Put(empty, "empty.bin", 2); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(filepath.Join(root, "empty.bin"))
	if err != nil || info.Size() != 0 {
		t.Fatalf("empty file: %v, %v", info, err)
	}
}

func TestStat(t *testing.T) {
	_, cl, _ := fixture(t)
	src, data := writeTemp(t, 1000, 3)
	if err := cl.Put(src, "f.bin", 1); err != nil {
		t.Fatal(err)
	}
	size, crc, err := cl.Stat("f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if size != 1000 || crc != crc32.ChecksumIEEE(data) {
		t.Fatalf("stat = %d, %08x", size, crc)
	}
	if _, _, err := cl.Stat("missing.bin"); err == nil {
		t.Fatal("stat of missing file should fail")
	}
}

func TestResumeAfterInterruptedUpload(t *testing.T) {
	_, cl, root := fixture(t)
	cl.BlockSize = 4 << 10
	src, data := writeTemp(t, 64<<10, 4) // 16 blocks of 4 KiB
	const id = "resume-test"

	// First attempt dies after 5 blocks.
	sent := 0
	err := cl.PutWithID(src, "big.bin", id, 1, func(block int) error {
		if sent >= 5 {
			return fmt.Errorf("injected stream failure")
		}
		sent++
		return nil
	})
	if err == nil {
		t.Fatal("interrupted upload should fail")
	}
	// The aborted stream drains asynchronously on the server; poll the
	// restart marker until the received blocks appear.
	var received []int
	deadline := time.Now().Add(2 * time.Second)
	for {
		received, err = cl.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(received) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(received) == 0 || len(received) >= 16 {
		t.Fatalf("restart marker has %d blocks", len(received))
	}

	// Resume: only missing blocks travel.
	resent := 0
	err = cl.PutWithID(src, "big.bin", id, 2, func(block int) error {
		resent++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if resent+len(received) != 16 {
		t.Fatalf("resume sent %d blocks with %d already present (want total 16)", resent, len(received))
	}
	stored, _ := os.ReadFile(filepath.Join(root, "big.bin"))
	if !bytes.Equal(stored, data) {
		t.Fatal("resumed file corrupt")
	}
}

func TestCommitRejectsIncompleteUpload(t *testing.T) {
	_, cl, root := fixture(t)
	cl.BlockSize = 4 << 10
	src, _ := writeTemp(t, 32<<10, 5)
	const id = "incomplete"
	sent := 0
	err := cl.PutWithID(src, "x.bin", id, 1, func(int) error {
		if sent >= 2 {
			return fmt.Errorf("die")
		}
		sent++
		return nil
	})
	if err == nil {
		t.Fatal("expected stream failure")
	}
	// Commit via a fresh client call must be refused (missing blocks).
	conn, _, err := cl.roundTrip(&request{Op: "put-init", ID: id, Path: "x.bin", Size: 32 << 10, Block: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	conn2, err2 := cl.dial()
	if err2 != nil {
		t.Fatal(err2)
	}
	defer conn2.Close()
	_ = sendJSON(conn2, &request{Op: "put-commit", ID: id, CRC: 0})
	var resp response
	if err := recvJSON(conn2, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("incomplete commit accepted")
	}
	// No final file appeared.
	if _, err := os.Stat(filepath.Join(root, "x.bin")); err == nil {
		t.Fatal("partial upload became visible")
	}
}

func TestCommitRejectsBadCRC(t *testing.T) {
	_, cl, _ := fixture(t)
	src, _ := writeTemp(t, 1000, 6)
	const id = "badcrc"
	// Upload all blocks manually, then commit with a wrong CRC.
	f, _ := os.Open(src)
	defer f.Close()
	conn, _, err := cl.roundTrip(&request{Op: "put-init", ID: id, Path: "y.bin", Size: 1000, Block: 512})
	if err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()
	data, _ := os.ReadFile(src)
	dataConn, _, err := cl.roundTrip(&request{Op: "put-data", ID: id})
	if err != nil {
		t.Fatal(err)
	}
	_ = writeBlockHeader(dataConn, blockHeader{Offset: 0, Length: 512})
	_, _ = dataConn.Write(data[:512])
	_ = writeBlockHeader(dataConn, blockHeader{Offset: 512, Length: 488})
	_, _ = dataConn.Write(data[512:])
	_ = writeBlockHeader(dataConn, blockHeader{}) // end-of-stripe
	var ack response
	if err := recvJSON(dataConn, &ack); err != nil || !ack.OK {
		t.Fatalf("stripe ack: %+v, %v", ack, err)
	}
	_ = dataConn.Close()

	conn2, _ := cl.dial()
	defer conn2.Close()
	_ = sendJSON(conn2, &request{Op: "put-commit", ID: id, CRC: 0xDEADBEEF})
	var resp response
	if err := recvJSON(conn2, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("bad CRC accepted")
	}
}

func TestGetRangeValidation(t *testing.T) {
	_, cl, _ := fixture(t)
	src, _ := writeTemp(t, 100, 7)
	if err := cl.Put(src, "r.bin", 1); err != nil {
		t.Fatal(err)
	}
	conn, _, err := cl.roundTrip(&request{Op: "get-data", Path: "r.bin", Offset: 500, Length: 10})
	if err == nil {
		_ = conn.Close()
		t.Fatal("out-of-range offset accepted")
	}
}

func TestPathEscapeRejected(t *testing.T) {
	_, cl, _ := fixture(t)
	if _, _, err := cl.Stat("../../etc/passwd"); err == nil {
		t.Fatal("path escape accepted")
	}
	// Absolute-ish and cleaned paths stay inside the root.
	src, _ := writeTemp(t, 10, 8)
	if err := cl.Put(src, "/abs/ok.bin", 1); err != nil {
		t.Fatal(err)
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	_, cl1, _ := fixture(t)
	_, _, root2 := fixture(t)
	_ = root2
	srv2, cl2, root2 := fixture(t)
	_ = srv2

	src, data := writeTemp(t, 50_000, 9)
	if err := cl1.Put(src, "stage/data.bin", 2); err != nil {
		t.Fatal(err)
	}
	// Ask server 1 to push to server 2.
	if err := cl1.FXP("stage/data.bin", cl2.Addr, "mirrored/data.bin"); err != nil {
		t.Fatal(err)
	}
	stored, err := os.ReadFile(filepath.Join(root2, "mirrored/data.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored, data) {
		t.Fatal("third-party copy corrupt")
	}
}

func TestUnknownOp(t *testing.T) {
	_, cl, _ := fixture(t)
	_, _, err := cl.roundTrip(&request{Op: "frob"})
	if err == nil {
		t.Fatal("unknown op accepted")
	}
}
