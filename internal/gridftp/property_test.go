package gridftp

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// Property: any file of any size survives a striped put+get round trip
// bit-for-bit, across varying block sizes and stream counts.
func TestRoundTripProperty(t *testing.T) {
	root := t.TempDir()
	srv, err := NewServer(root)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	scratch := t.TempDir()
	iteration := 0
	f := func(seed int64, sizeRaw uint16, streamsRaw, blockRaw uint8) bool {
		iteration++
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw) // 0..65535 bytes
		streams := 1 + int(streamsRaw)%6
		block := 512 * (1 + int(blockRaw)%8)

		data := make([]byte, size)
		rng.Read(data)
		src := filepath.Join(scratch, "src")
		if err := os.WriteFile(src, data, 0o644); err != nil {
			return false
		}
		cl := &Client{Addr: addr, BlockSize: block}
		remote := filepath.Join("prop", "f")
		// Unique remote path per iteration (server keeps finished files).
		remote = filepath.Join(remote, string(rune('a'+iteration%26)), "x")
		if err := cl.Put(src, remote, streams); err != nil {
			t.Logf("put(size=%d streams=%d block=%d): %v", size, streams, block, err)
			return false
		}
		dst := filepath.Join(scratch, "dst")
		if err := cl.Get(remote, dst, streams); err != nil {
			t.Logf("get: %v", err)
			return false
		}
		got, err := os.ReadFile(dst)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
