// Package gridftp implements a GridFTP-style file transfer service: striped
// parallel TCP streams, block-addressed writes with restart markers (a
// partial upload can be resumed without resending received blocks), CRC
// integrity checks, and third-party transfer between two servers. These are
// the GridFTP capabilities the NEESgrid repository depends on (paper §2.3,
// [3]); the wire protocol is our own (JSON headers + binary block frames)
// rather than RFC 959 extensions, per the substitution policy in DESIGN.md.
package gridftp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
)

// DefaultBlockSize is the transfer block granularity.
const DefaultBlockSize = 64 << 10

// request is the header every connection opens with.
type request struct {
	Op      string `json:"op"`
	Path    string `json:"path,omitempty"`
	ID      string `json:"id,omitempty"`
	Size    int64  `json:"size,omitempty"`
	Block   int    `json:"block,omitempty"`
	Streams int    `json:"streams,omitempty"`
	Stripe  int    `json:"stripe,omitempty"`
	Offset  int64  `json:"offset,omitempty"`
	Length  int64  `json:"length,omitempty"`
	CRC     uint32 `json:"crc,omitempty"`
	// Third-party transfer target.
	DstAddr string `json:"dst_addr,omitempty"`
	DstPath string `json:"dst_path,omitempty"`
}

// response answers a header.
type response struct {
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	Size     int64  `json:"size,omitempty"`
	CRC      uint32 `json:"crc,omitempty"`
	Received []int  `json:"received,omitempty"` // block indexes present (restart marker)
}

// blockHeader precedes each binary block on a data stream.
type blockHeader struct {
	Offset int64
	Length int32
}

func writeBlockHeader(w io.Writer, h blockHeader) error {
	var buf [12]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(h.Offset))
	binary.BigEndian.PutUint32(buf[8:12], uint32(h.Length))
	_, err := w.Write(buf[:])
	return err
}

func readBlockHeader(r io.Reader) (blockHeader, error) {
	var buf [12]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return blockHeader{}, err
	}
	return blockHeader{
		Offset: int64(binary.BigEndian.Uint64(buf[0:8])),
		Length: int32(binary.BigEndian.Uint32(buf[8:12])),
	}, nil
}

// sendJSON writes one JSON line.
func sendJSON(conn net.Conn, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = conn.Write(b)
	return err
}

// recvJSON reads one JSON line (bounded).
func recvJSON(r io.Reader, v any) error {
	line, err := readLine(r, 1<<20)
	if err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}

// readLine reads bytes up to a newline without buffering past it (the
// connection switches to binary framing right after the header).
func readLine(r io.Reader, max int) ([]byte, error) {
	var line []byte
	buf := make([]byte, 1)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if buf[0] == '\n' {
			return line, nil
		}
		line = append(line, buf[0])
		if len(line) > max {
			return nil, fmt.Errorf("gridftp: header line too long")
		}
	}
}
