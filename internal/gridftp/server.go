package gridftp

import (
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Server serves files under a root directory.
type Server struct {
	root string

	mu      sync.Mutex
	ln      net.Listener
	uploads map[string]*upload
}

// upload tracks one in-progress striped PUT and its restart marker.
type upload struct {
	mu       sync.Mutex
	path     string // final path (relative)
	tmp      string // absolute .part path
	size     int64
	block    int
	received map[int]bool // block index → present
	file     *os.File
}

// NewServer serves the given root directory (created if missing).
func NewServer(root string) (*Server, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("gridftp: root: %w", err)
	}
	return &Server{root: root, uploads: make(map[string]*upload)}, nil
}

// Start listens on addr; returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gridftp: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// resolve maps a protocol path into the root, rejecting escapes.
func (s *Server) resolve(p string) (string, error) {
	clean := filepath.Clean("/" + p)
	if strings.Contains(clean, "..") {
		return "", fmt.Errorf("gridftp: bad path %q", p)
	}
	return filepath.Join(s.root, clean), nil
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	var req request
	if err := recvJSON(conn, &req); err != nil {
		return
	}
	switch req.Op {
	case "stat":
		s.handleStat(conn, &req)
	case "get-data":
		s.handleGetData(conn, &req)
	case "put-init":
		s.handlePutInit(conn, &req)
	case "put-data":
		s.handlePutData(conn, &req)
	case "put-status":
		s.handlePutStatus(conn, &req)
	case "put-commit":
		s.handlePutCommit(conn, &req)
	case "fxp":
		s.handleFXP(conn, &req)
	default:
		_ = sendJSON(conn, response{OK: false, Error: "unknown op " + req.Op})
	}
}

func fail(conn net.Conn, format string, args ...any) {
	_ = sendJSON(conn, response{OK: false, Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleStat(conn net.Conn, req *request) {
	path, err := s.resolve(req.Path)
	if err != nil {
		fail(conn, "%v", err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fail(conn, "open: %v", err)
		return
	}
	defer f.Close()
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		fail(conn, "read: %v", err)
		return
	}
	_ = sendJSON(conn, response{OK: true, Size: n, CRC: h.Sum32()})
}

func (s *Server) handleGetData(conn net.Conn, req *request) {
	path, err := s.resolve(req.Path)
	if err != nil {
		fail(conn, "%v", err)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fail(conn, "open: %v", err)
		return
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		fail(conn, "stat: %v", err)
		return
	}
	length := req.Length
	if length <= 0 || req.Offset+length > info.Size() {
		length = info.Size() - req.Offset
	}
	if req.Offset < 0 || req.Offset > info.Size() {
		fail(conn, "offset %d out of range", req.Offset)
		return
	}
	if err := sendJSON(conn, response{OK: true, Size: length}); err != nil {
		return
	}
	if _, err := f.Seek(req.Offset, io.SeekStart); err != nil {
		return
	}
	_, _ = io.CopyN(conn, f, length)
}

func (s *Server) handlePutInit(conn net.Conn, req *request) {
	if req.ID == "" || req.Size < 0 || req.Path == "" {
		fail(conn, "put-init needs id, path, size")
		return
	}
	block := req.Block
	if block <= 0 {
		block = DefaultBlockSize
	}
	path, err := s.resolve(req.Path)
	if err != nil {
		fail(conn, "%v", err)
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fail(conn, "mkdir: %v", err)
		return
	}
	s.mu.Lock()
	up, exists := s.uploads[req.ID]
	if !exists {
		tmp := path + ".part"
		f, err := os.OpenFile(tmp, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			s.mu.Unlock()
			fail(conn, "create: %v", err)
			return
		}
		if err := f.Truncate(req.Size); err != nil {
			s.mu.Unlock()
			_ = f.Close()
			fail(conn, "truncate: %v", err)
			return
		}
		up = &upload{path: req.Path, tmp: tmp, size: req.Size, block: block,
			received: make(map[int]bool), file: f}
		s.uploads[req.ID] = up
	}
	s.mu.Unlock()
	_ = sendJSON(conn, response{OK: true, Received: up.receivedList()})
}

func (u *upload) receivedList() []int {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]int, 0, len(u.received))
	for i := range u.received {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (s *Server) lookupUpload(id string) *upload {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploads[id]
}

func (s *Server) handlePutData(conn net.Conn, req *request) {
	up := s.lookupUpload(req.ID)
	if up == nil {
		fail(conn, "no upload %q", req.ID)
		return
	}
	if err := sendJSON(conn, response{OK: true}); err != nil {
		return
	}
	buf := make([]byte, up.block)
	for {
		h, err := readBlockHeader(conn)
		if err != nil {
			return // stream broken mid-flight; restart marker persists
		}
		if h.Length == 0 {
			// End-of-stripe marker: acknowledge so the client knows every
			// block of this stream has been applied before it commits.
			_ = sendJSON(conn, response{OK: true})
			return
		}
		if h.Length < 0 || int(h.Length) > up.block || h.Offset < 0 || h.Offset+int64(h.Length) > up.size {
			return
		}
		if _, err := io.ReadFull(conn, buf[:h.Length]); err != nil {
			return
		}
		up.mu.Lock()
		if _, err := up.file.WriteAt(buf[:h.Length], h.Offset); err != nil {
			up.mu.Unlock()
			return
		}
		up.received[int(h.Offset/int64(up.block))] = true
		up.mu.Unlock()
	}
}

func (s *Server) handlePutStatus(conn net.Conn, req *request) {
	up := s.lookupUpload(req.ID)
	if up == nil {
		fail(conn, "no upload %q", req.ID)
		return
	}
	_ = sendJSON(conn, response{OK: true, Received: up.receivedList()})
}

func (s *Server) handlePutCommit(conn net.Conn, req *request) {
	up := s.lookupUpload(req.ID)
	if up == nil {
		fail(conn, "no upload %q", req.ID)
		return
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	// Completeness: every block present.
	blocks := int((up.size + int64(up.block) - 1) / int64(up.block))
	for i := 0; i < blocks; i++ {
		if !up.received[i] {
			fail(conn, "incomplete: missing block %d of %d", i, blocks)
			return
		}
	}
	// Integrity: CRC over the assembled file.
	if _, err := up.file.Seek(0, io.SeekStart); err != nil {
		fail(conn, "seek: %v", err)
		return
	}
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, up.file); err != nil {
		fail(conn, "read: %v", err)
		return
	}
	if h.Sum32() != req.CRC {
		fail(conn, "crc mismatch: got %08x want %08x", h.Sum32(), req.CRC)
		return
	}
	if err := up.file.Close(); err != nil {
		fail(conn, "close: %v", err)
		return
	}
	final, err := s.resolve(up.path)
	if err != nil {
		fail(conn, "%v", err)
		return
	}
	if err := os.Rename(up.tmp, final); err != nil {
		fail(conn, "rename: %v", err)
		return
	}
	s.mu.Lock()
	id := req.ID
	delete(s.uploads, id)
	s.mu.Unlock()
	_ = sendJSON(conn, response{OK: true, CRC: req.CRC, Size: up.size})
}

// handleFXP implements third-party transfer: this server pushes one of its
// files to another GridFTP server.
func (s *Server) handleFXP(conn net.Conn, req *request) {
	src, err := s.resolve(req.Path)
	if err != nil {
		fail(conn, "%v", err)
		return
	}
	cl := &Client{Addr: req.DstAddr}
	if err := cl.Put(src, req.DstPath, 2); err != nil {
		fail(conn, "fxp: %v", err)
		return
	}
	_ = sendJSON(conn, response{OK: true})
}
