// Package groundmotion generates and manipulates earthquake ground-motion
// acceleration records. The MOST experiment drove the test frame with a
// recorded earthquake history; since the original record is not published
// with the paper, this package synthesizes a statistically similar record
// (Kanai–Tajimi filtered white noise shaped by an amplitude envelope —
// the standard engineering model for El Centro-class motions) from a
// deterministic seed so every reproduction run sees the same earthquake.
package groundmotion

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
)

// Record is a uniformly sampled ground-acceleration history.
type Record struct {
	Name string
	Dt   float64   // sample spacing, s
	Ag   []float64 // ground acceleration, m/s²
}

// At returns the acceleration at sample index i, zero outside the record.
func (r *Record) At(i int) float64 {
	if i < 0 || i >= len(r.Ag) {
		return 0
	}
	return r.Ag[i]
}

// Duration returns the record length in seconds.
func (r *Record) Duration() float64 { return float64(len(r.Ag)-1) * r.Dt }

// PGA returns the peak ground acceleration |ag|max.
func (r *Record) PGA() float64 {
	peak := 0.0
	for _, a := range r.Ag {
		if a > peak {
			peak = a
		} else if -a > peak {
			peak = -a
		}
	}
	return peak
}

// Scale multiplies the record so its PGA equals target (m/s²) and returns
// the record for chaining. A zero record is returned unchanged.
func (r *Record) Scale(target float64) *Record {
	pga := r.PGA()
	if pga == 0 {
		return r
	}
	f := target / pga
	for i := range r.Ag {
		r.Ag[i] *= f
	}
	return r
}

// Resample returns a copy of the record linearly interpolated onto a new
// sample spacing dt.
func (r *Record) Resample(dt float64) (*Record, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("groundmotion: non-positive dt %g", dt)
	}
	n := int(r.Duration()/dt) + 1
	out := &Record{Name: r.Name, Dt: dt, Ag: make([]float64, n)}
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		j := t / r.Dt
		j0 := int(j)
		if j0 >= len(r.Ag)-1 {
			out.Ag[i] = r.Ag[len(r.Ag)-1]
			continue
		}
		frac := j - float64(j0)
		out.Ag[i] = r.Ag[j0]*(1-frac) + r.Ag[j0+1]*frac
	}
	return out, nil
}

// Config parameterizes the synthetic generator.
type Config struct {
	Name     string
	Seed     int64
	Dt       float64 // sample spacing, s
	Duration float64 // total duration, s
	PGA      float64 // target peak ground acceleration, m/s²
	// Kanai–Tajimi soil filter: Wg is the soil circular frequency (rad/s),
	// Zg its damping ratio. El Centro-like firm soil: Wg≈15.6, Zg≈0.6.
	Wg, Zg float64
	// Envelope shape: rise and decay times of the Shinozuka-style
	// amplitude envelope (s).
	Rise, Decay float64
}

// ElCentroLike returns the reference configuration used throughout the
// reproduction: 15 s at 100 Hz, 0.4 g peak — matching the 1,500 steps at
// Δt = 0.01 s of the MOST run.
func ElCentroLike() Config {
	return Config{
		Name:     "el-centro-like",
		Seed:     1940, // Imperial Valley, 1940
		Dt:       0.01,
		Duration: 15.0,
		PGA:      0.4 * 9.81,
		Wg:       15.6,
		Zg:       0.6,
		Rise:     2.0,
		Decay:    10.0,
	}
}

// envelope is the deterministic amplitude shape: quadratic rise, unit
// plateau, exponential decay.
func envelope(t, rise, decay float64) float64 {
	switch {
	case t < 0:
		return 0
	case t < rise:
		x := t / rise
		return x * x
	case t < decay:
		return 1
	default:
		return math.Exp(-0.8 * (t - decay))
	}
}

// Generate synthesizes a record: white noise passed through the
// Kanai–Tajimi second-order soil filter (integrated with a semi-implicit
// scheme), shaped by the envelope, then scaled to the target PGA.
func Generate(cfg Config) (*Record, error) {
	if cfg.Dt <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("groundmotion: need positive dt and duration")
	}
	if cfg.Wg <= 0 || cfg.Zg <= 0 {
		return nil, fmt.Errorf("groundmotion: need positive soil filter parameters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Duration/cfg.Dt) + 1
	rec := &Record{Name: cfg.Name, Dt: cfg.Dt, Ag: make([]float64, n)}

	// Soil filter state: ẍ + 2ζgωg ẋ + ωg² x = -w(t);
	// filtered acceleration a = ẍ + w = -(2ζgωg ẋ + ωg² x).
	var x, v float64
	sigma := 1.0 / math.Sqrt(cfg.Dt)
	for i := 0; i < n; i++ {
		t := float64(i) * cfg.Dt
		w := rng.NormFloat64() * sigma * envelope(t, cfg.Rise, cfg.Decay)
		acc := -(2*cfg.Zg*cfg.Wg*v + cfg.Wg*cfg.Wg*x) - w
		v += acc * cfg.Dt
		x += v * cfg.Dt
		rec.Ag[i] = 2*cfg.Zg*cfg.Wg*v + cfg.Wg*cfg.Wg*x
	}
	// Remove the (tiny) mean so the record has no static offset.
	mean := 0.0
	for _, a := range rec.Ag {
		mean += a
	}
	mean /= float64(n)
	for i := range rec.Ag {
		rec.Ag[i] -= mean
	}
	if cfg.PGA > 0 {
		rec.Scale(cfg.PGA)
	}
	return rec, nil
}

// WriteCSV emits "t,ag" rows.
func (r *Record) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "ag"}); err != nil {
		return err
	}
	for i, a := range r.Ag {
		if err := cw.Write([]string{
			strconv.FormatFloat(float64(i)*r.Dt, 'g', -1, 64),
			strconv.FormatFloat(a, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a record written by WriteCSV (or any two-column t,ag CSV
// with a header row). The sample spacing is inferred from the first two
// rows.
func ReadCSV(rd io.Reader, name string) (*Record, error) {
	cr := csv.NewReader(rd)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("groundmotion: read csv: %w", err)
	}
	if len(rows) < 3 {
		return nil, fmt.Errorf("groundmotion: record too short (%d rows)", len(rows))
	}
	rows = rows[1:] // header
	rec := &Record{Name: name, Ag: make([]float64, 0, len(rows))}
	var t0, t1 float64
	for i, row := range rows {
		if len(row) < 2 {
			return nil, fmt.Errorf("groundmotion: row %d has %d columns", i, len(row))
		}
		t, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("groundmotion: row %d time: %w", i, err)
		}
		a, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("groundmotion: row %d accel: %w", i, err)
		}
		switch i {
		case 0:
			t0 = t
		case 1:
			t1 = t
		}
		rec.Ag = append(rec.Ag, a)
	}
	rec.Dt = t1 - t0
	if rec.Dt <= 0 {
		return nil, fmt.Errorf("groundmotion: non-increasing time axis")
	}
	return rec, nil
}

// HarmonicRecord returns a pure sine sweep record — used by the §5 UCLA
// field-test scenario ("earthquake-type and harmonic force histories") and
// by unit tests that need an analytically predictable input.
func HarmonicRecord(name string, dt, duration, amp, freqHz float64) *Record {
	n := int(duration/dt) + 1
	rec := &Record{Name: name, Dt: dt, Ag: make([]float64, n)}
	w := 2 * math.Pi * freqHz
	for i := range rec.Ag {
		rec.Ag[i] = amp * math.Sin(w*float64(i)*dt)
	}
	return rec
}
