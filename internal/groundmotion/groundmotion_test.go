package groundmotion

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	r1, err := Generate(ElCentroLike())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(ElCentroLike())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Ag) != len(r2.Ag) {
		t.Fatal("lengths differ across identical seeds")
	}
	for i := range r1.Ag {
		if r1.Ag[i] != r2.Ag[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, r1.Ag[i], r2.Ag[i])
		}
	}
}

func TestGenerateSeedChangesRecord(t *testing.T) {
	cfg := ElCentroLike()
	r1, _ := Generate(cfg)
	cfg.Seed = 7
	r2, _ := Generate(cfg)
	same := true
	for i := range r1.Ag {
		if r1.Ag[i] != r2.Ag[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical records")
	}
}

func TestGeneratePGAAndLength(t *testing.T) {
	cfg := ElCentroLike()
	r, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(r.Ag), 1501; got != want {
		t.Fatalf("record length %d, want %d (1500 steps + initial)", got, want)
	}
	if !close(r.PGA(), cfg.PGA, 1e-9) {
		t.Fatalf("PGA = %g, want %g", r.PGA(), cfg.PGA)
	}
	// Zero mean (detrended).
	sum := 0.0
	for _, a := range r.Ag {
		sum += a
	}
	if math.Abs(sum/float64(len(r.Ag))) > 1e-9*cfg.PGA {
		t.Fatalf("mean %g not removed", sum/float64(len(r.Ag)))
	}
}

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGenerateValidation(t *testing.T) {
	cfg := ElCentroLike()
	cfg.Dt = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero dt should fail")
	}
	cfg = ElCentroLike()
	cfg.Wg = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero soil frequency should fail")
	}
}

func TestScale(t *testing.T) {
	r := &Record{Dt: 0.01, Ag: []float64{1, -4, 2}}
	r.Scale(8)
	if r.PGA() != 8 {
		t.Fatalf("PGA after scale = %g", r.PGA())
	}
	if r.Ag[0] != 2 {
		t.Fatalf("scaling not proportional: %v", r.Ag)
	}
	zero := &Record{Dt: 0.01, Ag: []float64{0, 0}}
	zero.Scale(5) // must not divide by zero
	if zero.Ag[0] != 0 {
		t.Fatal("zero record changed by Scale")
	}
}

func TestAtOutOfRange(t *testing.T) {
	r := &Record{Dt: 0.01, Ag: []float64{1, 2}}
	if r.At(-1) != 0 || r.At(2) != 0 {
		t.Fatal("out-of-range samples should read zero")
	}
	if r.At(1) != 2 {
		t.Fatal("in-range sample wrong")
	}
}

func TestResample(t *testing.T) {
	r := HarmonicRecord("h", 0.01, 1.0, 1.0, 1.0)
	r2, err := r.Resample(0.005)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Dt != 0.005 {
		t.Fatalf("resampled dt = %g", r2.Dt)
	}
	// Interpolated sine should track the analytic value closely.
	for i := 0; i < len(r2.Ag); i++ {
		want := math.Sin(2 * math.Pi * float64(i) * 0.005)
		if math.Abs(r2.Ag[i]-want) > 5e-3 {
			t.Fatalf("sample %d: %g vs %g", i, r2.Ag[i], want)
		}
	}
	if _, err := r.Resample(0); err == nil {
		t.Fatal("zero dt resample should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r, err := Generate(ElCentroLike())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSV(&buf, "round-trip")
	if err != nil {
		t.Fatal(err)
	}
	if !close(r2.Dt, r.Dt, 1e-12) {
		t.Fatalf("dt %g vs %g", r2.Dt, r.Dt)
	}
	if len(r2.Ag) != len(r.Ag) {
		t.Fatalf("length %d vs %d", len(r2.Ag), len(r.Ag))
	}
	for i := range r.Ag {
		if !close(r2.Ag[i], r.Ag[i], 1e-12) {
			t.Fatalf("sample %d: %g vs %g", i, r2.Ag[i], r.Ag[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("t,ag\n0,1\n"), "short"); err == nil {
		t.Fatal("too-short record should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("t,ag\nx,1\n0.01,2\n0.02,3\n"), "badnum"); err == nil {
		t.Fatal("non-numeric time should fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("t,ag\n0,1\n0,2\n0,3\n"), "flat"); err == nil {
		t.Fatal("non-increasing time axis should fail")
	}
}

func TestHarmonicRecord(t *testing.T) {
	r := HarmonicRecord("h", 0.01, 2.0, 3.0, 0.5)
	if !close(r.Duration(), 2.0, 1e-9) {
		t.Fatalf("duration = %g", r.Duration())
	}
	// Peak of a 0.5 Hz sine sampled at 100 Hz reaches amp at t = 0.5 s.
	if !close(r.At(50), 3.0, 1e-9) {
		t.Fatalf("peak sample = %g, want 3", r.At(50))
	}
}

// Property: scaling any generated record to a positive target yields exactly
// that PGA.
func TestScalePGAProperty(t *testing.T) {
	f := func(seed int64, raw float64) bool {
		target := math.Mod(math.Abs(raw), 10) + 0.1
		cfg := ElCentroLike()
		cfg.Seed = seed
		cfg.Duration = 2
		cfg.PGA = 0 // skip built-in scaling
		r, err := Generate(cfg)
		if err != nil {
			return false
		}
		if r.PGA() == 0 {
			return true // degenerate, nothing to scale
		}
		r.Scale(target)
		return close(r.PGA(), target, 1e-9*target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeShape(t *testing.T) {
	if envelope(-1, 2, 10) != 0 {
		t.Fatal("pre-event envelope should be 0")
	}
	if envelope(1, 2, 10) >= 1 {
		t.Fatal("rise phase should be < 1")
	}
	if envelope(5, 2, 10) != 1 {
		t.Fatal("plateau should be 1")
	}
	if e := envelope(12, 2, 10); e >= 1 || e <= 0 {
		t.Fatalf("decay phase = %g", e)
	}
}
