package groundmotion

import (
	"fmt"
	"math"
)

// Spectrum is a response spectrum: the peak SDOF response of oscillators of
// varying period to one ground-motion record — the standard engineering
// summary of a record's damage potential, and the tool used to verify that
// the synthetic El Centro-like record excites MOST-class structures
// (T ≈ 0.5 s) realistically.
type Spectrum struct {
	// Periods are the oscillator periods (s).
	Periods []float64
	// Zeta is the damping ratio used.
	Zeta float64
	// Sd, Sv, Sa are peak relative displacement (m), pseudo-velocity
	// (m/s), and pseudo-acceleration (m/s²) per period.
	Sd, Sv, Sa []float64
}

// ResponseSpectrum integrates a unit-mass damped SDOF oscillator over the
// record for each period (central difference, sub-stepped for stability)
// and records peak responses.
func ResponseSpectrum(r *Record, zeta float64, periods []float64) (*Spectrum, error) {
	if r == nil || len(r.Ag) < 2 {
		return nil, fmt.Errorf("groundmotion: spectrum needs a record")
	}
	if zeta < 0 || zeta >= 1 {
		return nil, fmt.Errorf("groundmotion: damping ratio %g outside [0,1)", zeta)
	}
	if len(periods) == 0 {
		return nil, fmt.Errorf("groundmotion: spectrum needs periods")
	}
	s := &Spectrum{
		Periods: append([]float64(nil), periods...),
		Zeta:    zeta,
		Sd:      make([]float64, len(periods)),
		Sv:      make([]float64, len(periods)),
		Sa:      make([]float64, len(periods)),
	}
	for i, period := range periods {
		if period <= 0 {
			return nil, fmt.Errorf("groundmotion: non-positive period %g", period)
		}
		w := 2 * math.Pi / period
		// Sub-step to stay well inside the stability limit dt < 2/w.
		sub := 1
		for r.Dt/float64(sub) > 0.1/w {
			sub *= 2
		}
		h := r.Dt / float64(sub)
		var d, v float64
		peak := 0.0
		for n := 0; n < len(r.Ag)-1; n++ {
			a0, a1 := r.Ag[n], r.Ag[n+1]
			for k := 0; k < sub; k++ {
				frac := float64(k) / float64(sub)
				ag := a0 + (a1-a0)*frac
				acc := -ag - 2*zeta*w*v - w*w*d
				v += acc * h
				d += v * h
				if abs := math.Abs(d); abs > peak {
					peak = abs
				}
			}
		}
		s.Sd[i] = peak
		s.Sv[i] = w * peak
		s.Sa[i] = w * w * peak
	}
	return s, nil
}

// PeakPeriod returns the period at which Sa peaks — the record's
// predominant period.
func (s *Spectrum) PeakPeriod() float64 {
	best, bestSa := 0.0, -1.0
	for i, p := range s.Periods {
		if s.Sa[i] > bestSa {
			bestSa = s.Sa[i]
			best = p
		}
	}
	return best
}

// LinSpace returns n evenly spaced values in [lo, hi] (a period axis
// helper).
func LinSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}
