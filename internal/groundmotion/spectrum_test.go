package groundmotion

import (
	"math"
	"testing"
)

func TestSpectrumOfHarmonicRecordPeaksAtForcingPeriod(t *testing.T) {
	// A 1 Hz harmonic record must produce a resonance peak at T = 1 s.
	rec := HarmonicRecord("h", 0.01, 20, 1.0, 1.0)
	periods := LinSpace(0.2, 2.0, 37)
	s, err := ResponseSpectrum(rec, 0.05, periods)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PeakPeriod(); math.Abs(got-1.0) > 0.11 {
		t.Fatalf("predominant period = %g, want ~1.0", got)
	}
}

func TestSpectrumPseudoRelations(t *testing.T) {
	rec := HarmonicRecord("h", 0.01, 5, 1.0, 1.0)
	s, err := ResponseSpectrum(rec, 0.05, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Periods {
		w := 2 * math.Pi / p
		if math.Abs(s.Sv[i]-w*s.Sd[i]) > 1e-12 || math.Abs(s.Sa[i]-w*w*s.Sd[i]) > 1e-9 {
			t.Fatalf("pseudo relations violated at T=%g", p)
		}
	}
}

func TestSpectrumDampingReducesResponse(t *testing.T) {
	rec, err := Generate(ElCentroLike())
	if err != nil {
		t.Fatal(err)
	}
	periods := []float64{0.3, 0.5, 1.0}
	light, _ := ResponseSpectrum(rec, 0.02, periods)
	heavy, _ := ResponseSpectrum(rec, 0.20, periods)
	for i := range periods {
		if heavy.Sd[i] >= light.Sd[i] {
			t.Fatalf("T=%g: 20%% damping response %g >= 2%% response %g",
				periods[i], heavy.Sd[i], light.Sd[i])
		}
	}
}

func TestElCentroLikeSpectrumExcitesMOSTBand(t *testing.T) {
	// The synthetic record must be a plausible design motion for the MOST
	// frame (T ≈ 0.5 s): spectral acceleration there should amplify the
	// PGA, as real El Centro-class motions do for short-period structures.
	rec, err := Generate(ElCentroLike())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ResponseSpectrum(rec, 0.05, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	amplification := s.Sa[0] / rec.PGA()
	if amplification < 1.0 || amplification > 5.0 {
		t.Fatalf("Sa(0.5s)/PGA = %g, want 1..5", amplification)
	}
}

func TestSpectrumValidation(t *testing.T) {
	rec := HarmonicRecord("h", 0.01, 1, 1, 1)
	if _, err := ResponseSpectrum(nil, 0.05, []float64{1}); err == nil {
		t.Fatal("nil record accepted")
	}
	if _, err := ResponseSpectrum(rec, -0.1, []float64{1}); err == nil {
		t.Fatal("negative damping accepted")
	}
	if _, err := ResponseSpectrum(rec, 0.05, nil); err == nil {
		t.Fatal("empty periods accepted")
	}
	if _, err := ResponseSpectrum(rec, 0.05, []float64{0}); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestLinSpace(t *testing.T) {
	got := LinSpace(1, 3, 5)
	want := []float64{1, 1.5, 2, 2.5, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("LinSpace = %v", got)
		}
	}
	if one := LinSpace(2, 9, 1); len(one) != 1 || one[0] != 2 {
		t.Fatalf("degenerate LinSpace = %v", one)
	}
}
