package gsi

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultChainCacheCapacity bounds the verified-chain cache of a TrustStore.
// Grid deployments present a handful of long-lived credential chains (one
// per site plus delegated proxies), so a few hundred entries cover even a
// large virtual organization.
const DefaultChainCacheCapacity = 256

// validityWindow is the intersection of certificate validity windows along
// a chain: the interval during which a cached verification verdict may be
// served without re-checking expiry per certificate.
type validityWindow struct {
	notBefore time.Time
	notAfter  time.Time
	set       bool
}

func (w *validityWindow) intersect(nb, na time.Time) {
	if !w.set {
		w.notBefore, w.notAfter, w.set = nb, na, true
		return
	}
	if nb.After(w.notBefore) {
		w.notBefore = nb
	}
	if na.Before(w.notAfter) {
		w.notAfter = na
	}
}

func (w *validityWindow) contains(now time.Time) bool {
	return w.set && !now.Before(w.notBefore) && !now.After(w.notAfter)
}

// chainCacheEntry is one fully verified chain: its base identity and the
// window during which every certificate in the chain (and its CA) remains
// valid.
type chainCacheEntry struct {
	identity string
	window   validityWindow
}

// chainCache remembers verified chains by content digest. Safety argument:
// a hit requires the presented chain to hash (SHA-256 over every field of
// every certificate, signatures included) to the digest of a chain that
// previously passed the full cryptographic path, and requires `now` to fall
// inside the chain's validity intersection. Tampering with any field
// changes the digest; expiry falls out of the window check; unknown chains
// miss. Negative results are never cached, so a failed verification never
// shadows a later legitimate one.
type chainCache struct {
	mu       sync.RWMutex
	entries  map[[sha256.Size]byte]chainCacheEntry
	capacity int

	hits   atomic.Uint64
	misses atomic.Uint64

	observer atomic.Pointer[func(hit bool)]
}

// digest hashes the chain content. The encoding is injective: every
// variable-length field is length-prefixed and each certificate is framed,
// so no two distinct chains share an encoding. Returns false when caching
// is disabled.
func (cc *chainCache) digest(chain []*Certificate) ([sha256.Size]byte, bool) {
	cc.mu.RLock()
	enabled := cc.capacity > 0
	cc.mu.RUnlock()
	if !enabled {
		return [sha256.Size]byte{}, false
	}
	h := sha256.New()
	var scratch [8]byte
	writeBytes := func(b []byte) {
		binary.BigEndian.PutUint64(scratch[:], uint64(len(b)))
		h.Write(scratch[:])
		h.Write(b)
	}
	writeTime := func(t time.Time) {
		binary.BigEndian.PutUint64(scratch[:], uint64(t.UnixNano()))
		h.Write(scratch[:])
	}
	binary.BigEndian.PutUint64(scratch[:], uint64(len(chain)))
	h.Write(scratch[:])
	for _, c := range chain {
		writeBytes([]byte(c.Subject))
		writeBytes([]byte(c.Issuer))
		writeBytes(c.PublicKey)
		writeTime(c.NotBefore)
		writeTime(c.NotAfter)
		var flags byte
		if c.IsCA {
			flags |= 1
		}
		if c.IsProxy {
			flags |= 2
		}
		h.Write([]byte{flags})
		writeBytes(c.Signature)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key, true
}

// lookup serves a cached verdict when the digest is known and now falls in
// the chain's validity window. An expired entry is treated as a miss (and
// evicted) so the slow path produces the precise error.
func (cc *chainCache) lookup(key [sha256.Size]byte, now time.Time) (string, bool) {
	cc.mu.RLock()
	e, ok := cc.entries[key]
	cc.mu.RUnlock()
	if ok && e.window.contains(now) {
		cc.hits.Add(1)
		cc.note(true)
		return e.identity, true
	}
	if ok {
		// Outside the window: the entry can never be served again once the
		// chain has expired; drop it to free the slot.
		cc.mu.Lock()
		if e2, still := cc.entries[key]; still && !e2.window.contains(now) {
			delete(cc.entries, key)
		}
		cc.mu.Unlock()
	}
	cc.misses.Add(1)
	cc.note(false)
	return "", false
}

// store records a verified chain, evicting an arbitrary entry at capacity.
func (cc *chainCache) store(key [sha256.Size]byte, identity string, window validityWindow) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.capacity <= 0 {
		return
	}
	if cc.entries == nil {
		cc.entries = make(map[[sha256.Size]byte]chainCacheEntry, cc.capacity)
	}
	if _, exists := cc.entries[key]; !exists && len(cc.entries) >= cc.capacity {
		for k := range cc.entries {
			delete(cc.entries, k)
			break
		}
	}
	cc.entries[key] = chainCacheEntry{identity: identity, window: window}
}

// flush drops every cached verdict. Called when the trust set changes
// (TrustStore.Add): cached identities were verified against the previous CA
// set and must not outlive it — in particular a chain signed by a rotated
// CA key must re-verify (and fail) rather than be served from cache.
func (cc *chainCache) flush() {
	cc.mu.Lock()
	cc.entries = nil
	cc.mu.Unlock()
}

func (cc *chainCache) note(hit bool) {
	if fn := cc.observer.Load(); fn != nil {
		(*fn)(hit)
	}
}

// SetCacheCapacity resizes the verified-chain cache; n <= 0 disables it and
// clears any cached verdicts. Existing entries are kept when they still fit.
func (ts *TrustStore) SetCacheCapacity(n int) {
	ts.cache.mu.Lock()
	defer ts.cache.mu.Unlock()
	ts.cache.capacity = n
	if n <= 0 {
		ts.cache.entries = nil
		return
	}
	for key := range ts.cache.entries {
		if len(ts.cache.entries) <= n {
			break
		}
		delete(ts.cache.entries, key)
	}
}

// CacheStats returns how many chain verifications were served from the
// cache versus took the full cryptographic path.
func (ts *TrustStore) CacheStats() (hits, misses uint64) {
	return ts.cache.hits.Load(), ts.cache.misses.Load()
}

// SetCacheObserver registers a callback invoked on every cache decision
// (true = hit). One observer per store; pass nil to remove. Used to mirror
// hit/miss counts into a telemetry registry without coupling gsi to it.
func (ts *TrustStore) SetCacheObserver(fn func(hit bool)) {
	if fn == nil {
		ts.cache.observer.Store(nil)
		return
	}
	ts.cache.observer.Store(&fn)
}
