package gsi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestChainCacheHitServesSameIdentity(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=coordinator", time.Hour)
	proxy, _ := cred.Delegate(30 * time.Minute)
	ts := NewTrustStore(ca.Cert)
	now := time.Now()

	id1, err := ts.VerifyChain(proxy.Chain, now)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ts.VerifyChain(proxy.Chain, now.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 || id1 != "/O=NEES/CN=coordinator" {
		t.Fatalf("identities %q, %q", id1, id2)
	}
	hits, misses := ts.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestChainCacheRespectsExpiryAfterCaching(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", 10*time.Minute)
	ts := NewTrustStore(ca.Cert)
	now := time.Now()

	if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
		t.Fatal(err)
	}
	// Same digest, same chain — but past the leaf's expiry. The cached entry
	// must not be served.
	_, err := ts.VerifyChain(cred.Chain, now.Add(time.Hour))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
	// And the expired presentation must not have poisoned anything: back
	// inside the window the chain verifies again.
	if _, err := ts.VerifyChain(cred.Chain, now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
}

func TestChainCacheWindowClampedToProxyExpiry(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	proxy, _ := cred.Delegate(5 * time.Minute) // shortest cert in the chain
	ts := NewTrustStore(ca.Cert)
	now := time.Now()

	if _, err := ts.VerifyChain(proxy.Chain, now); err != nil {
		t.Fatal(err)
	}
	// 10 minutes out the proxy is expired even though identity cert and CA
	// are fine; a cached verdict must not outlive the shortest window.
	if _, err := ts.VerifyChain(proxy.Chain, now.Add(10*time.Minute)); !errors.Is(err, ErrExpired) {
		t.Fatalf("err past proxy expiry = %v, want ErrExpired", err)
	}
}

func TestChainCacheTamperAfterCachingFails(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(ca.Cert)
	now := time.Now()

	if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
		t.Fatal(err)
	}
	// In-place tamper of the very certificate that was just verified and
	// cached: the digest changes, the cache misses, and the slow path must
	// recompute the canonical encoding (not reuse the memoized one) and
	// reject the signature.
	cred.Leaf().Subject = "/O=NEES/CN=admin"
	if _, err := ts.VerifyChain(cred.Chain, now); err == nil {
		t.Fatal("tampered chain verified after a valid entry was cached")
	}
	hits, _ := ts.CacheStats()
	if hits != 0 {
		t.Fatalf("tampered chain produced a cache hit (hits=%d)", hits)
	}
}

func TestChainCacheTamperedSignatureMisses(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(ca.Cert)
	now := time.Now()
	if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
		t.Fatal(err)
	}
	cred.Leaf().Signature[0] ^= 0xff
	if _, err := ts.VerifyChain(cred.Chain, now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestChainCacheNeverCachesFailures(t *testing.T) {
	ca := newTestCA(t)
	rogue, _ := NewAuthority("/O=Rogue/CN=CA", time.Hour)
	cred, _ := rogue.Issue("/O=Rogue/CN=mallory", time.Hour)
	ts := NewTrustStore(ca.Cert)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := ts.VerifyChain(cred.Chain, now); !errors.Is(err, ErrUntrusted) {
			t.Fatalf("attempt %d: err = %v, want ErrUntrusted", i, err)
		}
	}
	hits, misses := ts.CacheStats()
	if hits != 0 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 0/3", hits, misses)
	}
}

func TestChainCacheFlushedOnCARotation(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(ca.Cert)
	now := time.Now()

	// Warm the cache and prove a hit is being served.
	if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
		t.Fatal(err)
	}
	if hits, _ := ts.CacheStats(); hits != 1 {
		t.Fatalf("hits=%d, want 1", hits)
	}

	// Rotate the CA: same subject, new key. The chain signed by the old key
	// must now fail verification — a cached verdict from before the rotation
	// must not be served.
	rotated, err := NewAuthority(ca.Name, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts.Add(rotated.Cert)
	if _, err := ts.VerifyChain(cred.Chain, now); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("chain signed by rotated-away CA key: err = %v, want ErrBadSignature", err)
	}

	// A credential from the rotated CA verifies (and re-populates the cache).
	fresh, _ := rotated.Issue("/O=NEES/CN=alice", time.Hour)
	if _, err := ts.VerifyChain(fresh.Chain, now); err != nil {
		t.Fatal(err)
	}
}

func TestChainCacheDisabled(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(ca.Cert)
	ts.SetCacheCapacity(0)
	now := time.Now()
	for i := 0; i < 2; i++ {
		if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := ts.CacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d", hits, misses)
	}
}

func TestChainCacheEvictionAtCapacity(t *testing.T) {
	ca := newTestCA(t)
	ts := NewTrustStore(ca.Cert)
	ts.SetCacheCapacity(2)
	now := time.Now()
	for i := 0; i < 5; i++ {
		cred, _ := ca.Issue(fmt.Sprintf("/O=NEES/CN=site-%d", i), time.Hour)
		if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
			t.Fatal(err)
		}
	}
	ts.cache.mu.RLock()
	n := len(ts.cache.entries)
	ts.cache.mu.RUnlock()
	if n > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", n)
	}
}

func TestChainCacheObserver(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(ca.Cert)
	var mu sync.Mutex
	var hits, misses int
	ts.SetCacheObserver(func(hit bool) {
		mu.Lock()
		defer mu.Unlock()
		if hit {
			hits++
		} else {
			misses++
		}
	})
	now := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := ts.VerifyChain(cred.Chain, now); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 2 || misses != 1 {
		t.Fatalf("observer saw hits=%d misses=%d, want 2/1", hits, misses)
	}
}

// TestChainCacheConcurrentOpen drives many goroutines through Open on the
// same trust store — a mix of valid, expired, and tampered envelopes — and
// is meaningful under -race.
func TestChainCacheConcurrentOpen(t *testing.T) {
	ca := newTestCA(t)
	ts := NewTrustStore(ca.Cert)
	good, _ := ca.Issue("/O=NEES/CN=good", time.Hour)
	short, _ := ca.Issue("/O=NEES/CN=short", 10*time.Minute)
	rogueCA, _ := NewAuthority("/O=Rogue/CN=CA", time.Hour)
	rogue, _ := rogueCA.Issue("/O=Rogue/CN=mallory", time.Hour)

	payload := []byte(`{"op":"propose"}`)
	goodEnv, _ := Sign(good, payload)
	shortEnv, _ := Sign(short, payload)
	rogueEnv, _ := Sign(rogue, payload)
	now := time.Now()
	late := now.Add(30 * time.Minute) // short is expired, good is not

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, id, err := ts.Open(goodEnv, now); err != nil || id != "/O=NEES/CN=good" {
					t.Errorf("good envelope: id=%q err=%v", id, err)
					return
				}
				if _, _, err := ts.Open(shortEnv, late); !errors.Is(err, ErrExpired) {
					t.Errorf("expired envelope: err=%v", err)
					return
				}
				if _, _, err := ts.Open(rogueEnv, now); !errors.Is(err, ErrUntrusted) {
					t.Errorf("rogue envelope: err=%v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := ts.CacheStats()
	if hits == 0 {
		t.Fatalf("no cache hits across concurrent Opens (misses=%d)", misses)
	}
}

func TestTBSMemoizedAndMutationAware(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	leaf := cred.Leaf()
	a := leaf.tbs()
	b := leaf.tbs()
	if !bytes.Equal(a, b) {
		t.Fatal("memoized tbs not stable")
	}
	// The memoized form must match what the pre-memoization encoding
	// produced: json.Marshal of the certificate with Signature nilled.
	var m1, m2 map[string]any
	if err := json.Unmarshal(a, &m1); err != nil {
		t.Fatal(err)
	}
	if m1["signature"] != nil {
		t.Fatalf("tbs encodes a signature: %v", m1["signature"])
	}
	leaf.Subject = "/O=NEES/CN=other"
	c := leaf.tbs()
	if bytes.Equal(a, c) {
		t.Fatal("tbs did not change after subject mutation")
	}
	if err := json.Unmarshal(c, &m2); err != nil {
		t.Fatal(err)
	}
	if m2["subject"] != "/O=NEES/CN=other" {
		t.Fatalf("recomputed tbs has stale subject %v", m2["subject"])
	}
}

func TestAppendSignedEnvelopeRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	proxy, _ := cred.Delegate(30 * time.Minute)
	payload := []byte(`{"service":"ntcp","op":"propose","n":1}`)

	enc, err := AppendSignedEnvelope(nil, proxy, payload)
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(enc, &env); err != nil {
		t.Fatalf("append-encoded envelope does not parse: %v\n%s", err, enc)
	}
	ts := NewTrustStore(ca.Cert)
	got, id, err := ts.Open(&env, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) || id != "/O=NEES/CN=alice" {
		t.Fatalf("payload=%q id=%q", got, id)
	}

	// Byte-compatibility with the reflective path.
	ref, err := Sign(proxy, payload)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, refJSON) {
		t.Fatalf("append encoding differs from json.Marshal:\n%s\n%s", enc, refJSON)
	}
}

func TestAppendSignedEnvelopePayloadEdgeCases(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	// json.Marshal encodes a nil []byte payload as null and an empty non-nil
	// one as ""; the append path must match both byte-for-byte.
	for _, payload := range [][]byte{nil, {}} {
		enc, err := AppendSignedEnvelope(nil, cred, payload)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Sign(cred, payload)
		if err != nil {
			t.Fatal(err)
		}
		refJSON, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, refJSON) {
			t.Fatalf("payload %#v: append encoding differs from json.Marshal:\n%s\n%s", payload, enc, refJSON)
		}
		var env Envelope
		if err := json.Unmarshal(enc, &env); err != nil {
			t.Fatal(err)
		}
		ts := NewTrustStore(ca.Cert)
		if _, _, err := ts.Open(&env, time.Now()); err != nil {
			t.Fatalf("payload %#v: %v", payload, err)
		}
	}
}

func TestEncodedChainMemoized(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	a, err := cred.EncodedChain()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cred.EncodedChain()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("EncodedChain re-marshalled on second call")
	}
	want, _ := json.Marshal(cred.Chain)
	if !bytes.Equal(a, want) {
		t.Fatal("EncodedChain differs from json.Marshal of the chain")
	}
}
