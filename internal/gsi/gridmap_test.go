package gsi

import (
	"strings"
	"testing"
)

// ParseGridmap backs every daemon's -allow flag. Identities themselves
// contain "=" ("/O=NEES/CN=uiuc"), so the account is everything after the
// LAST "=" — these cases pin that down.
func TestParseGridmap(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    map[string]string // identity -> account
		wantErr string
	}{
		{name: "empty string is an empty gridmap", in: "", want: map[string]string{}},
		{name: "single entry", in: "/O=NEES/CN=uiuc=uiuc",
			want: map[string]string{"/O=NEES/CN=uiuc": "uiuc"}},
		{name: "multiple entries", in: "/O=NEES/CN=uiuc=uiuc,/O=NEES/CN=coordinator=coord",
			want: map[string]string{
				"/O=NEES/CN=uiuc":        "uiuc",
				"/O=NEES/CN=coordinator": "coord",
			}},
		{name: "CN value containing equals splits at the last one",
			in:   "/O=NEES/CN=x=acct",
			want: map[string]string{"/O=NEES/CN=x": "acct"}},
		{name: "surrounding whitespace is trimmed",
			in:   " /O=NEES/CN=uiuc=uiuc , /O=NEES/CN=cu=cu ",
			want: map[string]string{"/O=NEES/CN=uiuc": "uiuc", "/O=NEES/CN=cu": "cu"}},
		{name: "trailing comma is tolerated", in: "/O=NEES/CN=uiuc=uiuc,",
			want: map[string]string{"/O=NEES/CN=uiuc": "uiuc"}},
		{name: "entry without equals", in: "garbage", wantErr: "bad gridmap entry"},
		{name: "empty account", in: "/O=NEES/CN=uiuc=", wantErr: "bad gridmap entry"},
		{name: "empty identity", in: "=acct", wantErr: "bad gridmap entry"},
		{name: "good entry then bad entry fails",
			in: "/O=NEES/CN=uiuc=uiuc,=x", wantErr: "bad gridmap entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gm, err := ParseGridmap(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseGridmap(%q) err = %v, want %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseGridmap(%q): %v", tc.in, err)
			}
			for id, acct := range tc.want {
				got, err := gm.Authorize(id)
				if err != nil {
					t.Fatalf("Authorize(%q): %v", id, err)
				}
				if got != acct {
					t.Fatalf("Authorize(%q) = %q, want %q", id, got, acct)
				}
			}
			if _, err := gm.Authorize("/O=NEES/CN=not-there"); err == nil {
				t.Fatal("unknown identity should not authorize")
			}
		})
	}
}
