// Package gsi implements a Grid Security Infrastructure in the style used by
// NEESgrid: certificate-based mutual authentication, short-lived delegated
// proxy credentials, message-level signatures, and gridmap authorization
// mapping Grid identities to site-local accounts.
//
// The paper's deployment used X.509/GSI from the Globus Toolkit. This
// package keeps the trust *model* — a chain CA → identity → proxy → proxy…,
// validated against a set of trusted CAs, with proxies carrying limited
// lifetimes — while using Ed25519 signatures over a canonical JSON encoding
// instead of ASN.1/X.509, which keeps the implementation self-contained and
// auditable (see DESIGN.md §2 for the substitution rationale).
package gsi

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by chain verification and signing.
var (
	ErrExpired       = errors.New("gsi: credential expired or not yet valid")
	ErrUntrusted     = errors.New("gsi: chain does not terminate at a trusted CA")
	ErrBadSignature  = errors.New("gsi: signature verification failed")
	ErrBadChain      = errors.New("gsi: malformed credential chain")
	ErrNotAuthorized = errors.New("gsi: identity not authorized")
)

// Certificate binds a subject name to a public key, signed by its issuer.
// Proxy certificates (IsProxy) extend their issuer's subject with a
// "/proxy" component, exactly mirroring GSI proxy naming.
type Certificate struct {
	Subject   string            `json:"subject"`
	Issuer    string            `json:"issuer"`
	PublicKey ed25519.PublicKey `json:"public_key"`
	NotBefore time.Time         `json:"not_before"`
	NotAfter  time.Time         `json:"not_after"`
	IsCA      bool              `json:"is_ca"`
	IsProxy   bool              `json:"is_proxy"`
	Signature []byte            `json:"signature"`

	// tbsMemo caches the canonical encoding together with a snapshot of the
	// fields it encodes, so repeated verification of a long-lived in-memory
	// certificate skips the JSON marshal. A field mutation after caching is
	// detected by snapshot comparison and recomputes — a tampered certificate
	// can never verify against a stale encoding.
	tbsMemo atomic.Pointer[tbsMemo]
}

// certTBS mirrors Certificate's exported fields (same order, same tags) so
// the canonical encoding is byte-identical to the historical
// json.Marshal-with-nil-Signature form.
type certTBS struct {
	Subject   string            `json:"subject"`
	Issuer    string            `json:"issuer"`
	PublicKey ed25519.PublicKey `json:"public_key"`
	NotBefore time.Time         `json:"not_before"`
	NotAfter  time.Time         `json:"not_after"`
	IsCA      bool              `json:"is_ca"`
	IsProxy   bool              `json:"is_proxy"`
	Signature []byte            `json:"signature"`
}

// tbsMemo is the memoized canonical encoding plus the field snapshot it was
// computed from. PublicKey is copied so an in-place key mutation is caught.
type tbsMemo struct {
	subject, issuer string
	publicKey       []byte
	notBefore       time.Time
	notAfter        time.Time
	isCA, isProxy   bool
	enc             []byte
}

func (m *tbsMemo) matches(c *Certificate) bool {
	return m.subject == c.Subject &&
		m.issuer == c.Issuer &&
		bytes.Equal(m.publicKey, c.PublicKey) &&
		m.notBefore.Equal(c.NotBefore) &&
		m.notAfter.Equal(c.NotAfter) &&
		m.isCA == c.IsCA &&
		m.isProxy == c.IsProxy
}

// tbs returns the canonical "to be signed" encoding of the certificate,
// memoized across calls on the same in-memory certificate.
func (c *Certificate) tbs() []byte {
	if m := c.tbsMemo.Load(); m != nil && m.matches(c) {
		return m.enc
	}
	b, err := json.Marshal(&certTBS{
		Subject:   c.Subject,
		Issuer:    c.Issuer,
		PublicKey: c.PublicKey,
		NotBefore: c.NotBefore,
		NotAfter:  c.NotAfter,
		IsCA:      c.IsCA,
		IsProxy:   c.IsProxy,
	})
	if err != nil {
		panic(fmt.Sprintf("gsi: certificate encoding: %v", err)) // cannot fail for this type
	}
	c.tbsMemo.Store(&tbsMemo{
		subject:   c.Subject,
		issuer:    c.Issuer,
		publicKey: append([]byte(nil), c.PublicKey...),
		notBefore: c.NotBefore,
		notAfter:  c.NotAfter,
		isCA:      c.IsCA,
		isProxy:   c.IsProxy,
		enc:       b,
	})
	return b
}

// ValidAt reports whether now falls within the certificate validity window.
func (c *Certificate) ValidAt(now time.Time) bool {
	return !now.Before(c.NotBefore) && !now.After(c.NotAfter)
}

// Credential is a private key together with its certificate chain, leaf
// first, ending at (but not including) the CA certificate. The chain is
// treated as immutable once the credential is built (Issue/Delegate never
// mutate it); EncodedChain relies on that.
type Credential struct {
	Chain []*Certificate
	Key   ed25519.PrivateKey

	chainEnc atomic.Pointer[[]byte]
}

// Leaf returns the end-entity certificate of the credential.
func (c *Credential) Leaf() *Certificate {
	if len(c.Chain) == 0 {
		return nil
	}
	return c.Chain[0]
}

// Identity returns the base Grid identity — the leaf subject with proxy
// components stripped — e.g. "/O=NEES/CN=coordinator".
func (c *Credential) Identity() string {
	leaf := c.Leaf()
	if leaf == nil {
		return ""
	}
	return BaseIdentity(leaf.Subject)
}

// BaseIdentity strips trailing "/proxy" components from a subject name.
func BaseIdentity(subject string) string {
	for strings.HasSuffix(subject, "/proxy") {
		subject = strings.TrimSuffix(subject, "/proxy")
	}
	return subject
}

// Authority is a certificate authority: the root of a trust domain
// ("virtual organization" in Grid terms).
type Authority struct {
	Name string
	Cert *Certificate
	key  ed25519.PrivateKey
}

// NewAuthority creates a self-signed CA, valid for the given duration from
// now.
func NewAuthority(name string, validity time.Duration) (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate CA key: %w", err)
	}
	now := time.Now()
	cert := &Certificate{
		Subject:   name,
		Issuer:    name,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(validity),
		IsCA:      true,
	}
	cert.Signature = ed25519.Sign(priv, cert.tbs())
	return &Authority{Name: name, Cert: cert, key: priv}, nil
}

// Issue creates an identity credential for subject, valid for the given
// duration.
func (a *Authority) Issue(subject string, validity time.Duration) (*Credential, error) {
	if strings.Contains(subject, "/proxy") {
		return nil, fmt.Errorf("gsi: subject %q may not contain proxy components", subject)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate key: %w", err)
	}
	now := time.Now()
	cert := &Certificate{
		Subject:   subject,
		Issuer:    a.Name,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(validity),
	}
	cert.Signature = ed25519.Sign(a.key, cert.tbs())
	return &Credential{Chain: []*Certificate{cert}, Key: priv}, nil
}

// Delegate derives a proxy credential from c: a fresh key pair whose
// certificate is signed by c's key and whose subject extends c's subject
// with "/proxy". Proxy lifetimes are clamped to the parent's expiry, as in
// GSI.
func (c *Credential) Delegate(validity time.Duration) (*Credential, error) {
	leaf := c.Leaf()
	if leaf == nil {
		return nil, ErrBadChain
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("gsi: generate proxy key: %w", err)
	}
	now := time.Now()
	notAfter := now.Add(validity)
	if notAfter.After(leaf.NotAfter) {
		notAfter = leaf.NotAfter
	}
	cert := &Certificate{
		Subject:   leaf.Subject + "/proxy",
		Issuer:    leaf.Subject,
		PublicKey: pub,
		NotBefore: now.Add(-time.Minute),
		NotAfter:  notAfter,
		IsProxy:   true,
	}
	cert.Signature = ed25519.Sign(c.Key, cert.tbs())
	chain := append([]*Certificate{cert}, c.Chain...)
	return &Credential{Chain: chain, Key: priv}, nil
}

// TrustStore holds the CA certificates a site trusts, plus a bounded cache
// of verified chains (see cache.go) that lets repeated calls with a
// byte-identical chain skip the per-certificate signature checks.
type TrustStore struct {
	cas   map[string]*Certificate
	cache chainCache
}

// NewTrustStore builds a store from CA certificates. The verified-chain
// cache is enabled with DefaultChainCacheCapacity entries; SetCacheCapacity
// tunes or disables it.
func NewTrustStore(cas ...*Certificate) *TrustStore {
	ts := &TrustStore{cas: make(map[string]*Certificate, len(cas))}
	ts.cache.capacity = DefaultChainCacheCapacity
	for _, c := range cas {
		ts.Add(c)
	}
	return ts
}

// Add registers a trusted CA certificate. Any change to the trust set —
// including a key rotation that replaces an existing subject — flushes the
// verified-chain cache, so no verdict computed against the old CA set
// outlives it.
func (ts *TrustStore) Add(c *Certificate) {
	if c == nil || !c.IsCA {
		return
	}
	ts.cas[c.Subject] = c
	ts.cache.flush()
}

// VerifyChain validates a leaf-first chain at time now: every certificate
// in its validity window, every signature valid under its issuer's key,
// proxy subjects extending their issuer's subject, and the topmost
// certificate issued by a trusted CA. It returns the base identity of the
// chain.
//
// A chain that already verified is remembered by content digest; a repeat
// presentation of the byte-identical chain is served from the cache while
// every certificate in it (and its CA) is still within its validity window.
// Any difference in content — a tampered field, a different signature, an
// unknown chain — changes the digest and takes the full slow path.
func (ts *TrustStore) VerifyChain(chain []*Certificate, now time.Time) (string, error) {
	identity, _, err := ts.verifyChainInfo(chain, now)
	return identity, err
}

// VerifyInfo reports how a verification was satisfied — observability
// metadata for trace spans, never a security signal.
type VerifyInfo struct {
	// CacheHit is true when the verdict came from the verified-chain cache
	// rather than the full per-certificate cryptographic path.
	CacheHit bool
}

func (ts *TrustStore) verifyChainInfo(chain []*Certificate, now time.Time) (string, VerifyInfo, error) {
	var info VerifyInfo
	if len(chain) == 0 {
		return "", info, ErrBadChain
	}
	key, cacheable := ts.cache.digest(chain)
	if cacheable {
		if identity, ok := ts.cache.lookup(key, now); ok {
			info.CacheHit = true
			return identity, info, nil
		}
	}
	identity, window, err := ts.verifyChainSlow(chain, now)
	if err != nil {
		return "", info, err
	}
	if cacheable {
		ts.cache.store(key, identity, window)
	}
	return identity, info, nil
}

// verifyChainSlow is the full cryptographic path. On success it also
// returns the validity window of the whole chain — the intersection of
// every certificate's window including the trusted CA's — which bounds how
// long a cached verdict may be served.
func (ts *TrustStore) verifyChainSlow(chain []*Certificate, now time.Time) (string, validityWindow, error) {
	var window validityWindow
	for i, cert := range chain {
		if !cert.ValidAt(now) {
			return "", window, fmt.Errorf("%w: %s", ErrExpired, cert.Subject)
		}
		window.intersect(cert.NotBefore, cert.NotAfter)
		var issuerKey ed25519.PublicKey
		if i+1 < len(chain) {
			parent := chain[i+1]
			if cert.Issuer != parent.Subject {
				return "", window, fmt.Errorf("%w: issuer %q != parent subject %q", ErrBadChain, cert.Issuer, parent.Subject)
			}
			if cert.IsProxy && cert.Subject != parent.Subject+"/proxy" {
				return "", window, fmt.Errorf("%w: proxy subject %q does not extend %q", ErrBadChain, cert.Subject, parent.Subject)
			}
			if !cert.IsProxy {
				return "", window, fmt.Errorf("%w: non-proxy certificate %q below chain head", ErrBadChain, cert.Subject)
			}
			issuerKey = parent.PublicKey
		} else {
			ca, ok := ts.cas[cert.Issuer]
			if !ok {
				return "", window, fmt.Errorf("%w: issuer %q", ErrUntrusted, cert.Issuer)
			}
			if !ca.ValidAt(now) {
				return "", window, fmt.Errorf("%w: CA %s", ErrExpired, ca.Subject)
			}
			window.intersect(ca.NotBefore, ca.NotAfter)
			issuerKey = ca.PublicKey
		}
		if !ed25519.Verify(issuerKey, cert.tbs(), cert.Signature) {
			return "", window, fmt.Errorf("%w: %s", ErrBadSignature, cert.Subject)
		}
	}
	return BaseIdentity(chain[0].Subject), window, nil
}

// Envelope is a signed message: payload, signer chain, signature by the
// chain's leaf key. This is the message-level security layer every NEESgrid
// service call travels under.
type Envelope struct {
	Payload   []byte         `json:"payload"`
	Chain     []*Certificate `json:"chain"`
	Signature []byte         `json:"signature"`
}

// Sign wraps payload in an envelope signed by the credential.
func Sign(cred *Credential, payload []byte) (*Envelope, error) {
	if cred == nil || cred.Leaf() == nil {
		return nil, ErrBadChain
	}
	sig := ed25519.Sign(cred.Key, payload)
	return &Envelope{Payload: payload, Chain: cred.Chain, Signature: sig}, nil
}

// EncodedChain returns the JSON encoding of the credential's certificate
// chain, computed once and reused — the chain of a live credential never
// changes, and re-marshalling it (public keys, signatures, timestamps) is
// the bulk of envelope-encoding cost.
func (c *Credential) EncodedChain() ([]byte, error) {
	if p := c.chainEnc.Load(); p != nil {
		return *p, nil
	}
	b, err := json.Marshal(c.Chain)
	if err != nil {
		return nil, fmt.Errorf("gsi: encode chain: %w", err)
	}
	c.chainEnc.Store(&b)
	return b, nil
}

// AppendSignedEnvelope signs payload with the credential and appends the
// JSON encoding of the resulting envelope to dst, which it returns. The
// output is byte-compatible with json.Marshal of the Envelope produced by
// Sign, but runs in a single pass with the chain encoding memoized — the
// hot-path form used by the OGSI transport.
func AppendSignedEnvelope(dst []byte, cred *Credential, payload []byte) ([]byte, error) {
	if cred == nil || cred.Leaf() == nil {
		return nil, ErrBadChain
	}
	chainJSON, err := cred.EncodedChain()
	if err != nil {
		return nil, err
	}
	sig := ed25519.Sign(cred.Key, payload)
	if payload == nil {
		// json.Marshal encodes a nil []byte as null (and an empty non-nil
		// slice as ""); match both exactly.
		dst = append(dst, `{"payload":null,"chain":`...)
	} else {
		dst = append(dst, `{"payload":"`...)
		dst = base64.StdEncoding.AppendEncode(dst, payload)
		dst = append(dst, `","chain":`...)
	}
	dst = append(dst, chainJSON...)
	dst = append(dst, `,"signature":"`...)
	dst = base64.StdEncoding.AppendEncode(dst, sig)
	dst = append(dst, `"}`...)
	return dst, nil
}

// Open verifies the envelope against the trust store and returns the
// payload and the signer's base identity.
func (ts *TrustStore) Open(env *Envelope, now time.Time) (payload []byte, identity string, err error) {
	payload, identity, _, err = ts.OpenInfo(env, now)
	return payload, identity, err
}

// OpenInfo is Open plus VerifyInfo describing how the chain verification
// was satisfied, so the transport layer can attribute verification time
// (and cache hits) on its trace spans.
func (ts *TrustStore) OpenInfo(env *Envelope, now time.Time) (payload []byte, identity string, info VerifyInfo, err error) {
	if env == nil {
		return nil, "", info, ErrBadChain
	}
	identity, info, err = ts.verifyChainInfo(env.Chain, now)
	if err != nil {
		return nil, "", info, err
	}
	if !ed25519.Verify(env.Chain[0].PublicKey, env.Payload, env.Signature) {
		return nil, "", info, ErrBadSignature
	}
	return env.Payload, identity, info, nil
}

// Gridmap maps Grid identities to site-local account names — the classic
// GSI gridmap file. A site only accepts identities present in its map.
// Entries may be added and revoked while the site is serving (a pooled
// site authorizes each tenant's coordinator for the duration of its
// lease), so the map is safe for concurrent use.
type Gridmap struct {
	mu      sync.RWMutex
	entries map[string]string
}

// NewGridmap builds a gridmap from identity → local-account pairs.
func NewGridmap(entries map[string]string) *Gridmap {
	g := &Gridmap{entries: make(map[string]string, len(entries))}
	for k, v := range entries {
		g.entries[k] = v
	}
	return g
}

// Map adds or replaces a mapping.
func (g *Gridmap) Map(identity, account string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[identity] = account
}

// Unmap revokes a mapping — the lease-release path of a shared site pool:
// a tenant's coordinator identity stops being accepted the moment its
// experiment's slots are returned. Unknown identities are a no-op.
func (g *Gridmap) Unmap(identity string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.entries, identity)
}

// Authorize returns the local account mapped to identity, or
// ErrNotAuthorized.
func (g *Gridmap) Authorize(identity string) (string, error) {
	g.mu.RLock()
	acct, ok := g.entries[identity]
	g.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotAuthorized, identity)
	}
	return acct, nil
}

// ParseGridmap parses the comma-separated identity=account entries the
// daemons accept on -allow, e.g.
//
//	/O=NEES/CN=coordinator=coord,/O=NEES/CN=uiuc=uiuc
//
// Grid identities themselves contain "=" (every RDN does), so the local
// account is everything after the LAST "=" — "/O=NEES/CN=x=acct" maps
// identity "/O=NEES/CN=x" to account "acct". Empty entries are skipped
// (a trailing comma is harmless); an entry with no "=", or with an empty
// identity or account, is an error. An empty input yields an empty (deny
// everything) gridmap.
func ParseGridmap(entries string) (*Gridmap, error) {
	g := NewGridmap(nil)
	for _, entry := range strings.Split(entries, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		cut := strings.LastIndex(entry, "=")
		if cut < 0 {
			return nil, fmt.Errorf("gsi: bad gridmap entry %q (want identity=account)", entry)
		}
		id, acct := entry[:cut], entry[cut+1:]
		if id == "" || acct == "" {
			return nil, fmt.Errorf("gsi: bad gridmap entry %q (want identity=account)", entry)
		}
		g.Map(id, acct)
	}
	return g, nil
}
