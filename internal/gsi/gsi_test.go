package gsi

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

func newTestCA(t *testing.T) *Authority {
	t.Helper()
	ca, err := NewAuthority("/O=NEES/CN=NEES CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueAndVerifyIdentity(t *testing.T) {
	ca := newTestCA(t)
	cred, err := ca.Issue("/O=NEES/CN=coordinator", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	id, err := ts.VerifyChain(cred.Chain, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id != "/O=NEES/CN=coordinator" {
		t.Fatalf("identity = %q", id)
	}
}

func TestIssueRejectsProxySubjects(t *testing.T) {
	ca := newTestCA(t)
	if _, err := ca.Issue("/O=NEES/CN=evil/proxy", time.Hour); err == nil {
		t.Fatal("subject containing /proxy must be rejected")
	}
}

func TestDelegateProxy(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	proxy, err := cred.Delegate(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(proxy.Chain) != 2 {
		t.Fatalf("proxy chain length %d, want 2", len(proxy.Chain))
	}
	ts := NewTrustStore(ca.Cert)
	id, err := ts.VerifyChain(proxy.Chain, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id != "/O=NEES/CN=alice" {
		t.Fatalf("proxy base identity = %q", id)
	}
	// Second-level delegation, as when the coordinator re-delegates to a
	// long-running experiment.
	proxy2, err := proxy.Delegate(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := ts.VerifyChain(proxy2.Chain, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "/O=NEES/CN=alice" {
		t.Fatalf("double-proxy identity = %q", id2)
	}
}

func TestProxyLifetimeClampedToParent(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Minute)
	proxy, err := cred.Delegate(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Leaf().NotAfter.After(cred.Leaf().NotAfter) {
		t.Fatal("proxy outlives its parent credential")
	}
}

func TestExpiredCredentialRejected(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(ca.Cert)
	_, err := ts.VerifyChain(cred.Chain, time.Now().Add(2*time.Hour))
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestUntrustedCARejected(t *testing.T) {
	ca := newTestCA(t)
	rogue, _ := NewAuthority("/O=Rogue/CN=CA", time.Hour)
	cred, _ := rogue.Issue("/O=Rogue/CN=mallory", time.Hour)
	ts := NewTrustStore(ca.Cert)
	_, err := ts.VerifyChain(cred.Chain, time.Now())
	if !errors.Is(err, ErrUntrusted) {
		t.Fatalf("err = %v, want ErrUntrusted", err)
	}
}

func TestTamperedCertificateRejected(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	cred.Leaf().Subject = "/O=NEES/CN=admin" // tamper after signing
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(cred.Chain, time.Now()); err == nil {
		t.Fatal("tampered certificate must not verify")
	}
}

func TestForgedProxyRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	mallory, _ := ca.Issue("/O=NEES/CN=mallory", time.Hour)
	// Mallory signs a "proxy" claiming to descend from alice.
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	forged := &Certificate{
		Subject:   alice.Leaf().Subject + "/proxy",
		Issuer:    alice.Leaf().Subject,
		PublicKey: pub,
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  time.Now().Add(time.Hour),
		IsProxy:   true,
	}
	forged.Signature = ed25519.Sign(mallory.Key, forged.tbs())
	ts := NewTrustStore(ca.Cert)
	chain := []*Certificate{forged, alice.Leaf()}
	if _, err := ts.VerifyChain(chain, time.Now()); err == nil {
		t.Fatal("forged proxy must not verify")
	}
}

func TestProxyMustExtendIssuerName(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	proxy, _ := alice.Delegate(time.Minute)
	// Rewriting the proxy subject breaks both naming and the signature;
	// build a correctly signed proxy with a wrong name instead.
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	bad := &Certificate{
		Subject:   "/O=NEES/CN=admin/proxy",
		Issuer:    alice.Leaf().Subject,
		PublicKey: pub,
		NotBefore: time.Now().Add(-time.Minute),
		NotAfter:  time.Now().Add(time.Minute),
		IsProxy:   true,
	}
	bad.Signature = ed25519.Sign(alice.Key, bad.tbs())
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain([]*Certificate{bad, alice.Leaf()}, time.Now()); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v, want ErrBadChain", err)
	}
	_ = proxy
}

func TestNonProxyBelowHeadRejected(t *testing.T) {
	ca := newTestCA(t)
	alice, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	bob, _ := ca.Issue("/O=NEES/CN=bob", time.Hour)
	ts := NewTrustStore(ca.Cert)
	chain := []*Certificate{alice.Leaf(), bob.Leaf()}
	if _, err := ts.VerifyChain(chain, time.Now()); !errors.Is(err, ErrBadChain) {
		t.Fatalf("err = %v, want ErrBadChain", err)
	}
}

func TestSignOpenRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	proxy, _ := cred.Delegate(time.Minute)
	env, err := Sign(proxy, []byte("propose step 42"))
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	payload, id, err := ts.Open(env, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "propose step 42" {
		t.Fatalf("payload = %q", payload)
	}
	if id != "/O=NEES/CN=alice" {
		t.Fatalf("signer = %q", id)
	}
}

func TestOpenRejectsTamperedPayload(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	env, _ := Sign(cred, []byte("apply 1 mm"))
	env.Payload = []byte("apply 100 mm")
	ts := NewTrustStore(ca.Cert)
	if _, _, err := ts.Open(env, time.Now()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestOpenNilEnvelope(t *testing.T) {
	ts := NewTrustStore()
	if _, _, err := ts.Open(nil, time.Now()); err == nil {
		t.Fatal("nil envelope must fail")
	}
}

func TestGridmap(t *testing.T) {
	g := NewGridmap(map[string]string{"/O=NEES/CN=alice": "alice"})
	acct, err := g.Authorize("/O=NEES/CN=alice")
	if err != nil || acct != "alice" {
		t.Fatalf("Authorize = %q, %v", acct, err)
	}
	if _, err := g.Authorize("/O=NEES/CN=mallory"); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("err = %v, want ErrNotAuthorized", err)
	}
	g.Map("/O=NEES/CN=bob", "bob")
	if acct, _ := g.Authorize("/O=NEES/CN=bob"); acct != "bob" {
		t.Fatal("Map did not add entry")
	}
}

func TestBaseIdentity(t *testing.T) {
	if got := BaseIdentity("/CN=x/proxy/proxy"); got != "/CN=x" {
		t.Fatalf("BaseIdentity = %q", got)
	}
	if got := BaseIdentity("/CN=x"); got != "/CN=x" {
		t.Fatalf("BaseIdentity = %q", got)
	}
}

func TestCredentialIdentityEmpty(t *testing.T) {
	var c Credential
	if c.Identity() != "" || c.Leaf() != nil {
		t.Fatal("empty credential should have empty identity")
	}
}

func TestTrustStoreIgnoresNonCA(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	ts := NewTrustStore(cred.Leaf()) // not a CA: must be ignored
	if _, err := ts.VerifyChain(cred.Chain, time.Now()); err == nil {
		t.Fatal("leaf certificate must not be accepted as a trust anchor")
	}
}
