package gsi

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Disk formats for credentials, so multi-process deployments (cmd/ntcpd,
// cmd/coordinator, cmd/repod) can share a trust domain the way NEESgrid
// sites shared a CA. Private keys are written 0600.

// credentialFile is the on-disk form of a Credential.
type credentialFile struct {
	Chain []*Certificate     `json:"chain"`
	Key   ed25519.PrivateKey `json:"key"`
}

// authorityFile is the on-disk form of an Authority.
type authorityFile struct {
	Name string             `json:"name"`
	Cert *Certificate       `json:"cert"`
	Key  ed25519.PrivateKey `json:"key"`
}

// SaveCredential writes a credential (including its private key) to path.
func SaveCredential(cred *Credential, path string) error {
	if cred == nil || cred.Leaf() == nil {
		return ErrBadChain
	}
	raw, err := json.MarshalIndent(&credentialFile{Chain: cred.Chain, Key: cred.Key}, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: marshal credential: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("gsi: credential dir: %w", err)
	}
	return os.WriteFile(path, raw, 0o600)
}

// LoadCredential reads a credential written by SaveCredential.
func LoadCredential(path string) (*Credential, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read credential: %w", err)
	}
	var cf credentialFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return nil, fmt.Errorf("gsi: parse credential: %w", err)
	}
	if len(cf.Chain) == 0 || len(cf.Key) != ed25519.PrivateKeySize {
		return nil, ErrBadChain
	}
	return &Credential{Chain: cf.Chain, Key: cf.Key}, nil
}

// SaveAuthority writes a CA (including its private key) to path.
func (a *Authority) Save(path string) error {
	raw, err := json.MarshalIndent(&authorityFile{Name: a.Name, Cert: a.Cert, Key: a.key}, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: marshal authority: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("gsi: authority dir: %w", err)
	}
	return os.WriteFile(path, raw, 0o600)
}

// LoadAuthority reads a CA written by Save.
func LoadAuthority(path string) (*Authority, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read authority: %w", err)
	}
	var af authorityFile
	if err := json.Unmarshal(raw, &af); err != nil {
		return nil, fmt.Errorf("gsi: parse authority: %w", err)
	}
	if af.Cert == nil || len(af.Key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("gsi: malformed authority file")
	}
	return &Authority{Name: af.Name, Cert: af.Cert, key: af.Key}, nil
}

// SaveCertificate writes a public certificate (no key) to path.
func SaveCertificate(cert *Certificate, path string) error {
	raw, err := json.MarshalIndent(cert, "", "  ")
	if err != nil {
		return fmt.Errorf("gsi: marshal certificate: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("gsi: certificate dir: %w", err)
	}
	return os.WriteFile(path, raw, 0o644)
}

// LoadCertificate reads a certificate written by SaveCertificate.
func LoadCertificate(path string) (*Certificate, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("gsi: read certificate: %w", err)
	}
	var cert Certificate
	if err := json.Unmarshal(raw, &cert); err != nil {
		return nil, fmt.Errorf("gsi: parse certificate: %w", err)
	}
	return &cert, nil
}
