package gsi

import (
	"path/filepath"
	"testing"
	"time"
)

func TestCredentialSaveLoadRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	proxy, _ := cred.Delegate(time.Minute)
	path := filepath.Join(t.TempDir(), "keys", "alice.cred")
	if err := SaveCredential(proxy, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCredential(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Identity() != "/O=NEES/CN=alice" || len(loaded.Chain) != 2 {
		t.Fatalf("loaded = %+v", loaded)
	}
	// The loaded credential still signs verifiable envelopes.
	env, err := Sign(loaded, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	if _, _, err := ts.Open(env, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestAuthoritySaveLoadRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	path := filepath.Join(t.TempDir(), "ca.json")
	if err := ca.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAuthority(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded CA can still issue credentials trusted under the
	// original CA certificate.
	cred, err := loaded.Issue("/O=NEES/CN=bob", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore(ca.Cert)
	if _, err := ts.VerifyChain(cred.Chain, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateSaveLoadRoundTrip(t *testing.T) {
	ca := newTestCA(t)
	path := filepath.Join(t.TempDir(), "ca.cert")
	if err := SaveCertificate(ca.Cert, path); err != nil {
		t.Fatal(err)
	}
	cert, err := LoadCertificate(path)
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := ca.Issue("/O=NEES/CN=carol", time.Hour)
	ts := NewTrustStore(cert)
	if _, err := ts.VerifyChain(cred.Chain, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCredential(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing credential accepted")
	}
	if _, err := LoadAuthority(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing authority accepted")
	}
	if _, err := LoadCertificate(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing certificate accepted")
	}
	if err := SaveCredential(&Credential{}, filepath.Join(dir, "x")); err == nil {
		t.Fatal("empty credential accepted")
	}
}
