package most

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"neesgrid/internal/daq"
	"neesgrid/internal/gridftp"
	"neesgrid/internal/nfms"
	"neesgrid/internal/obs"
	"neesgrid/internal/repo"
)

// ArchiveConfig wires the §3.2 archival path into an experiment: each
// site's DAQ deposits spool blocks which an ingestion tool uploads to the
// repository over GridFTP while the run is in progress, with metadata
// alongside.
type ArchiveConfig struct {
	// SpoolDir is the root spool directory (one subdirectory per site).
	SpoolDir string
	// StoreDir is the repository file-store root.
	StoreDir string
	// BlockSize is the spool rotation size in scans (default 50).
	BlockSize int
	// IngestEvery polls the spools every N committed steps (default 100).
	IngestEvery int
}

// archive is the running archival state of an experiment.
type archive struct {
	repo      *repo.Repository
	ftp       *gridftp.Server
	ftpAddr   string
	ingestors []*repo.Ingestor
	spools    []*daq.Spool
}

// Repo returns the repository an archiving run filled.
func (e *Experiment) Repo() *repo.Repository {
	if e.arch == nil {
		return nil
	}
	return e.arch.repo
}

// IngestedBlocks returns how many spool blocks reached the repository.
func (e *Experiment) IngestedBlocks() int {
	if e.arch == nil {
		return 0
	}
	n := 0
	for _, ing := range e.arch.ingestors {
		n += ing.Uploaded()
	}
	return n
}

// setupArchive builds the repository, GridFTP store, and per-site ingestors.
func (e *Experiment) setupArchive(cfg *ArchiveConfig) error {
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = 50
	}
	r, err := repo.New("/O=NEES/CN=repository")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
		return fmt.Errorf("most: archive store: %w", err)
	}
	ftp, err := gridftp.NewServer(cfg.StoreDir)
	if err != nil {
		return err
	}
	ftpAddr, err := ftp.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	a := &archive{repo: r, ftp: ftp, ftpAddr: ftpAddr}
	// Pre-experiment metadata (§3.3: uploaded prior to the experiment).
	siteNames := make([]any, 0, len(e.Sites))
	for _, s := range e.Sites {
		siteNames = append(siteNames, s.Spec.Name)
	}
	if _, err := r.DescribeExperiment("/O=NEES/CN=simulation-coordinator",
		"exp:"+e.Spec.Name, map[string]any{
			"name":        e.Spec.Name,
			"description": "distributed hybrid experiment",
			"sites":       siteNames,
		}); err != nil {
		return err
	}
	for _, site := range e.Sites {
		dir := filepath.Join(cfg.SpoolDir, site.Spec.Name)
		spool, err := daq.NewSpool(dir, blockSize)
		if err != nil {
			return err
		}
		site.DAQ.AttachSpool(spool)
		siteName := site.Spec.Name
		ing := &repo.Ingestor{
			Repo:       r,
			Spool:      spool,
			Owner:      "/O=NEES/CN=" + siteName,
			Experiment: e.Spec.Name,
			Site:       siteName,
			Replica: func(block string) nfms.Replica {
				return nfms.Replica{
					Transport: "gridftp",
					Addr:      ftpAddr,
					Path:      filepath.Join(e.Spec.Name, siteName, block),
				}
			},
		}
		a.ingestors = append(a.ingestors, ing)
		a.spools = append(a.spools, spool)
	}
	e.arch = a
	return nil
}

// ingestTick polls every site's spool once (called from the run loop).
func (e *Experiment) ingestTick() error {
	if e.arch == nil {
		return nil
	}
	for _, ing := range e.arch.ingestors {
		if _, err := ing.PollOnce(); err != nil {
			return err
		}
	}
	return nil
}

// drainArchive flushes the spool tails, ingests the final blocks, and
// persists the run's spans next to the data.
func (e *Experiment) drainArchive() error {
	if e.arch == nil {
		return nil
	}
	for _, sp := range e.arch.spools {
		if err := sp.Flush(); err != nil {
			return err
		}
	}
	if err := e.writeSpans(); err != nil {
		return err
	}
	if err := e.writeMetrics(); err != nil {
		return err
	}
	return e.ingestTick()
}

// MetricsRollup is the per-run observability roll-up archived beside the
// span snapshot: the fleet view from a final end-of-run scrape (per-site
// health, merged cross-site metrics with exact quantiles and exemplars,
// rates) plus the latched SLO verdict. Machine-readable, so CI can gate a
// run on `.verdict.ok` without re-running anything.
type MetricsRollup struct {
	Run      string        `json:"run"`
	Finished time.Time     `json:"finished"`
	Fleet    obs.FleetView `json:"fleet"`
	Verdict  obs.Verdict   `json:"verdict"`
}

// writeMetrics takes a final scrape across every site and the coordinator
// and persists the merged roll-up as <store>/<run>-metrics.json.
func (e *Experiment) writeMetrics() error {
	if e.arch == nil || e.Spec.Archive == nil || e.obsAgg == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	e.obsAgg.ScrapeOnce(ctx)
	rollup := MetricsRollup{
		Run:      e.Spec.Name,
		Finished: time.Now(),
		Fleet:    e.obsAgg.Fleet(),
		Verdict:  e.obsAgg.Verdict(),
	}
	path := filepath.Join(e.Spec.Archive.StoreDir, e.Spec.Name+"-metrics.json")
	b, err := json.MarshalIndent(rollup, "", "  ")
	if err != nil {
		return fmt.Errorf("most: metrics archive: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("most: metrics archive: %w", err)
	}
	return nil
}

// writeSpans persists the completed run's merged span snapshot as JSONL
// (one SpanData per line) into the repository file store, so a trace of
// the run survives alongside the archived sensor data.
func (e *Experiment) writeSpans() error {
	if e.arch == nil || e.Spec.Archive == nil {
		return nil
	}
	path := filepath.Join(e.Spec.Archive.StoreDir, e.Spec.Name+"-spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("most: span archive: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, sd := range e.SpanSnapshot() {
		if err := enc.Encode(sd); err != nil {
			_ = f.Close()
			return fmt.Errorf("most: span archive: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("most: span archive: %w", err)
	}
	return nil
}
