package most

import (
	"context"
	"fmt"
	"time"

	"neesgrid/internal/collab"
	"neesgrid/internal/coord"
	"neesgrid/internal/core"
	"neesgrid/internal/groundmotion"
	"neesgrid/internal/gsi"
	"neesgrid/internal/obs"
	"neesgrid/internal/runtime"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// Fault is one scheduled network fault: before step Step executes, Count
// transport failures are queued at site Site ("" = every site). A fault
// with Fatal set switches the site into a hard outage instead — the error
// the public MOST run could not survive.
type Fault struct {
	Step  int
	Site  string
	Count int
	Fatal bool
}

// Spec describes a full distributed hybrid experiment.
type Spec struct {
	Name  string
	Sites []SiteSpec
	// Frame supplies mass/damping/initial stiffness; per-site elastic K
	// from SiteSpec must sum to Frame.TotalK() for consistency.
	Frame structural.FrameConfig
	// Ground is the input motion; nil generates the El Centro-like record
	// on the Frame grid.
	Ground *groundmotion.Record
	// Steps overrides Frame.Steps when > 0.
	Steps int
	// Retry is the coordinator's NTCP retry policy. The dry run and E1 use
	// core.DefaultRetry; the public-run reproduction uses core.NoRetry to
	// match the coordinator that "had not been coded to take advantage of
	// all the fault-tolerance features".
	Retry core.RetryPolicy
	// Faults is the deterministic fault schedule.
	Faults []Fault
	// Integrator is the time-stepping scheme; nil = explicit Newmark.
	Integrator structural.Integrator
	// FastPath uses the single-round-trip NTCP operation per site per
	// step (the §5 performance work).
	FastPath bool
	// Pipeline overlaps adjacent steps: execute(N) and a speculative
	// propose(N+1) travel in one batched signed envelope per site, with a
	// cancel-and-repropose rollback when the prediction misses (the other
	// §5 direction; see coord.Config.Pipeline). Mutually exclusive with
	// FastPath.
	Pipeline bool
	// Archive, when non-nil, wires each site's DAQ through a spool
	// directory into the repository while the run is in progress — the
	// §3.2 incremental-archival path (requires DAQEvery > 0).
	Archive *ArchiveConfig
	// DAQEvery scans site DAQs every N steps (0 disables DAQ sampling).
	DAQEvery int
	// OnStep observes committed states.
	OnStep func(structural.State)
	// SLOs are the run's service-level objectives, evaluated continuously
	// by the experiment's observability aggregator (see Experiment.Obs).
	// A breach is latched into the aggregator's verdict — and into the
	// archived <name>-metrics.json roll-up — even if the run recovers.
	SLOs []obs.SLO
	// Checkpoint, Resume, and Interrupt pass through to the coordinator
	// (coord.Config): per-step atomic snapshots, starting mid-run from a
	// snapshot, and the deterministic pre-step abort hook. The chaos engine
	// mutates these between coordinator incarnations while the sites stay
	// up — the shape of a real coordinator crash in a live topology.
	Checkpoint *coord.CheckpointConfig
	Resume     *coord.Checkpoint
	Interrupt  func(step int) error
}

// Results collects everything a run produced.
type Results struct {
	History *structural.History
	Report  *coord.Report
	// InjectedFaults is the number of transport errors faultnet produced.
	InjectedFaults int
	// DAQScans is the total DAQ scans across sites.
	DAQScans int
	// ArchiveErr records a mid-run ingestion failure (the run itself is
	// not aborted for archival problems — the stream and local spool
	// remain the fallback, as in the paper's best-effort design).
	ArchiveErr error
	Err        error
}

// Experiment is a built, running topology.
type Experiment struct {
	Spec  Spec
	Sites []*Site
	CA    *gsi.Authority
	Trust *gsi.TrustStore
	Cred  *gsi.Credential // coordinator credential
	// Viewer aggregates every site's stream for the CHEF data viewers.
	Viewer *collab.Viewer
	// Telemetry is the coordinator-side registry: step latency from coord,
	// NTCP round-trip histograms and recovery counters from every site
	// client, and fault-injection counters from every site's injector — the
	// whole WAN picture in one snapshot. (Server-side metrics live in each
	// Site.Telemetry.)
	Telemetry *telemetry.Registry
	// Tracer records coordinator-side spans — the per-step root span, the
	// per-site propose/execute client spans, and the DAQ readback publish —
	// into TraceRecorder. Site-side spans live in each Site.SpanRecorder;
	// both halves share trace IDs, so a merged per-step timeline is a join
	// over the recorders.
	Tracer        *trace.Tracer
	TraceRecorder *trace.Recorder

	// obsAgg is the experiment-wide observability aggregator: one source
	// per site (scraping the container's /metrics endpoint over HTTP, the
	// same path a remote operator uses) plus the coordinator-side registry
	// in-process. Build wires it but does NOT start its scrape loop —
	// benchmarked runs must not pay a background scraper; callers that want
	// live aggregation start it (mostctl top, the obs CI smoke) or call
	// ScrapeOnce for a point-in-time fleet view. Run always takes a final
	// scrape so the archived roll-up reflects the finished run.
	obsAgg *obs.Aggregator

	arch *archive
	// sup supervises the topology: each site's component tree nests under
	// it, along with the viewer feeds and the archive connection, so one
	// Stop drains everything in reverse build order with deadlines and
	// error reporting.
	sup *runtime.Supervisor
	// stopFeeds holds the viewer-feed components so Run can drain the
	// monitoring pipeline at end-of-run; each is once-wrapped, so the
	// supervisor's later Stop is a no-op for already-drained feeds.
	stopFeeds []runtime.Component
}

// newExperiment allocates the coordinator-side state shared by Build and
// BuildShared.
func newExperiment(spec Spec, ca *gsi.Authority, trust *gsi.TrustStore, cred *gsi.Credential) *Experiment {
	exp := &Experiment{Spec: spec, CA: ca, Trust: trust, Cred: cred,
		Viewer: collab.NewViewer(0), Telemetry: telemetry.NewRegistry(),
		TraceRecorder: trace.NewRecorder(0),
		sup:           runtime.NewSupervisor("experiment:" + spec.Name)}
	exp.Tracer = trace.NewTracer("coordinator", exp.TraceRecorder)
	return exp
}

// wireSiteFeed subscribes the experiment viewer to a site's outermost
// stream tier and registers the drain component for end-of-run flushing.
func (e *Experiment) wireSiteFeed(site *Site) error {
	// Viewers subscribe at the outermost stream tier: the relay hub
	// when the site runs one, the DAQ hub otherwise.
	sub, err := site.StreamHub().Subscribe(4096)
	if err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		e.Viewer.FeedFrom(sub.C())
		close(done)
	}()
	feed := runtime.StopFunc(func() {
		sub.Cancel()
		<-done
	})
	e.stopFeeds = append(e.stopFeeds, feed)
	e.sup.Adopt("feed:"+site.Spec.Name, feed)
	return nil
}

// coordinatorSource is the in-process obs source over the experiment's
// coordinator-side registry (with process self-metrics refreshed per
// fetch).
func (e *Experiment) coordinatorSource() obs.Source {
	return obs.Source{
		Name: "coordinator",
		Fetch: func() telemetry.Snapshot {
			telemetry.ProcessMetrics(e.Telemetry)
			return e.Telemetry.Snapshot()
		},
	}
}

// Build starts every site and wires monitoring.
func Build(spec Spec) (*Experiment, error) {
	if len(spec.Sites) == 0 {
		return nil, fmt.Errorf("most: experiment needs sites")
	}
	ca, err := gsi.NewAuthority("/O=NEES/CN=NEESgrid CA", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	trust := gsi.NewTrustStore(ca.Cert)
	coordCred, err := ca.Issue("/O=NEES/CN=simulation-coordinator", 24*time.Hour)
	if err != nil {
		return nil, err
	}
	exp := newExperiment(spec, ca, trust, coordCred)
	for _, ss := range spec.Sites {
		site, err := startSite(ca, trust, coordCred.Identity(), ss)
		if err != nil {
			exp.Stop()
			return nil, err
		}
		site.Injector.UseTelemetry(exp.Telemetry)
		exp.Sites = append(exp.Sites, site)
		exp.sup.Adopt("site:"+ss.Name, runtime.Funcs{
			StopFunc:    func(ctx context.Context) error { return site.sup.Stop(ctx) },
			HealthyFunc: site.Healthy,
		}, runtime.WithDrain(site.sup.StopBudget()))
		if err := exp.wireSiteFeed(site); err != nil {
			exp.Stop()
			return nil, err
		}
	}
	if spec.Archive != nil {
		if err := exp.setupArchive(spec.Archive); err != nil {
			exp.Stop()
			return nil, fmt.Errorf("most: archive: %w", err)
		}
		exp.sup.Adopt("archive-ftp", runtime.StopErrFunc(exp.arch.ftp.Close))
	}
	// Observability plane: one scrape source per site over the container's
	// /metrics HTTP endpoint, plus the coordinator registry in-process (with
	// process self-metrics refreshed per fetch). Wired, not started — see
	// the obsAgg field comment.
	sources := make([]obs.Source, 0, len(exp.Sites)+1)
	for _, s := range exp.Sites {
		sources = append(sources, obs.Source{
			Name: s.Spec.Name,
			URL:  "http://" + s.Addr + "/metrics",
		})
	}
	sources = append(sources, exp.coordinatorSource())
	exp.obsAgg = obs.New(obs.Config{Sources: sources, SLOs: spec.SLOs})
	// Everything above adopted already-running pieces; Start just flips the
	// supervisor ready so /readyz-style probes and Healthy report sanely.
	if err := exp.sup.Start(context.Background()); err != nil {
		exp.Stop()
		return nil, err
	}
	return exp, nil
}

// BuildShared wires an experiment over already-running shared sites — the
// internal/fleet lease path. Unlike Build it does not create sites, does
// not own their lifecycle (Stop drains the viewer feeds and archive but
// leaves the sites serving for the next lease), and issues the
// coordinator credential from the pool's long-lived CA under a
// tenant-scoped subject (/O=NEES/OU=<tenant>/CN=<run>), mapping that
// identity into each leased site's gridmap under the tenant's account.
// Stop revokes the identity again, so a finished (or failed) experiment's
// coordinator cannot keep driving slots it no longer holds.
//
// spec.Sites must be empty: the topology is dictated by the leased sites,
// and their SiteSpecs are copied in so reports, viewers and coordSite
// wiring see the same shape Build would have produced. The experiment's
// observability aggregator covers the coordinator registry only — shared
// sites' registries accumulate traffic across tenants and belong to the
// pool's own scrape plane (fleetd), not to any single run's roll-up.
func BuildShared(spec Spec, ca *gsi.Authority, trust *gsi.TrustStore, tenant string, sites []*Site) (*Experiment, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("most: shared experiment needs leased sites")
	}
	if len(spec.Sites) != 0 {
		return nil, fmt.Errorf("most: BuildShared derives Spec.Sites from the leased sites; leave it empty")
	}
	if tenant == "" {
		return nil, fmt.Errorf("most: shared experiment needs a tenant")
	}
	cred, err := ca.Issue("/O=NEES/OU="+tenant+"/CN="+spec.Name, 24*time.Hour)
	if err != nil {
		return nil, err
	}
	for _, s := range sites {
		spec.Sites = append(spec.Sites, s.Spec)
	}
	exp := newExperiment(spec, ca, trust, cred)
	identity := cred.Identity()
	for _, site := range sites {
		site.Authorize(identity, tenant)
		site.Injector.UseTelemetry(exp.Telemetry)
		exp.Sites = append(exp.Sites, site)
		// Health-only adoption: a leased site's liveness still gates the
		// experiment's Healthy, but Stop must not tear a shared site down.
		exp.sup.Adopt("leased-site:"+site.Spec.Name, runtime.Funcs{
			HealthyFunc: site.Healthy,
		})
		if err := exp.wireSiteFeed(site); err != nil {
			exp.Stop()
			revokeAll(sites, identity)
			return nil, err
		}
	}
	if spec.Archive != nil {
		if err := exp.setupArchive(spec.Archive); err != nil {
			exp.Stop()
			revokeAll(sites, identity)
			return nil, fmt.Errorf("most: archive: %w", err)
		}
		exp.sup.Adopt("archive-ftp", runtime.StopErrFunc(exp.arch.ftp.Close))
	}
	// Revocation is adopted last so it runs first on Stop: the tenant's
	// identity disappears from every slot before anything else drains.
	exp.sup.Adopt("tenant-authz", runtime.StopFunc(func() {
		revokeAll(sites, identity)
	}))
	exp.obsAgg = obs.New(obs.Config{
		Sources: []obs.Source{exp.coordinatorSource()},
		SLOs:    spec.SLOs,
	})
	if err := exp.sup.Start(context.Background()); err != nil {
		exp.Stop()
		return nil, err
	}
	return exp, nil
}

// revokeAll removes a coordinator identity from every listed site.
func revokeAll(sites []*Site, identity string) {
	for _, s := range sites {
		s.Revoke(identity)
	}
}

// Supervisor exposes the experiment's component tree (for probe handlers
// and shutdown smokes).
func (e *Experiment) Supervisor() *runtime.Supervisor { return e.sup }

// Obs returns the experiment's observability aggregator: cross-site merged
// metrics, per-site health, rate rings, and the SLO verdict. It is wired
// over every site plus the coordinator but its scrape loop is not running;
// call Start on it (or adopt it into a supervisor) for live aggregation,
// or ScrapeOnce for a point-in-time view.
func (e *Experiment) Obs() *obs.Aggregator { return e.obsAgg }

// Healthy aggregates component health across every site.
func (e *Experiment) Healthy() error { return e.sup.Healthy() }

// SpanSnapshot gathers every span recorded across the topology so far:
// coordinator-side first, then each site in declaration order. Spans from
// different recorders share trace IDs, so callers can group the snapshot
// by TraceID to reassemble per-step cross-site timelines.
func (e *Experiment) SpanSnapshot() []trace.SpanData {
	spans := e.TraceRecorder.Spans()
	for _, s := range e.Sites {
		spans = append(spans, s.SpanRecorder.Spans()...)
	}
	return spans
}

// Site returns a running site by name.
func (e *Experiment) Site(name string) (*Site, bool) {
	for _, s := range e.Sites {
		if s.Spec.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Stop tears the topology down: feeds, sites (each draining its own
// component tree), and the archive connection, in reverse build order
// under the supervisor's stop budget. Per-component failures are joined
// into the returned error instead of being swallowed.
func (e *Experiment) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), e.sup.StopBudget())
	defer cancel()
	return e.sup.Stop(ctx)
}

// Run executes the experiment.
func (e *Experiment) Run(ctx context.Context) (*Results, error) {
	spec := e.Spec
	steps := spec.Steps
	if steps <= 0 {
		steps = spec.Frame.Steps
	}
	ground := spec.Ground
	if ground == nil {
		cfg := groundmotion.ElCentroLike()
		cfg.Dt = spec.Frame.Dt
		cfg.Duration = float64(steps) * spec.Frame.Dt
		var err error
		ground, err = groundmotion.Generate(cfg)
		if err != nil {
			return nil, err
		}
	}

	// Index the fault schedule by step.
	faultsAt := make(map[int][]Fault)
	for _, f := range spec.Faults {
		faultsAt[f.Step] = append(faultsAt[f.Step], f)
	}
	applyFaults := func(step int) {
		for _, f := range faultsAt[step] {
			for _, s := range e.Sites {
				if f.Site != "" && f.Site != s.Spec.Name {
					continue
				}
				if f.Fatal {
					s.Injector.SetOutage(true)
				} else {
					s.Injector.FailNext(f.Count)
				}
			}
		}
	}

	frame := spec.Frame
	m := structural.Diagonal([]float64{frame.Mass})
	k := structural.Diagonal([]float64{frame.TotalK()})
	var c *structural.Matrix
	if frame.DampingRatio > 0 {
		w := frame.NaturalFrequency()
		c = structural.RayleighDamping(m, k, frame.DampingRatio, w, 5*w)
	}

	results := &Results{}
	cfg := coord.Config{
		M: m, C: c, K: k,
		Integrator: spec.Integrator,
		Dt:         frame.Dt,
		Steps:      steps,
		Ground:     ground.At,
		RunID:      spec.Name,
		FastPath:   spec.FastPath,
		Pipeline:   spec.Pipeline,
		Telemetry:  e.Telemetry,
		Tracer:     e.Tracer,
		Checkpoint: spec.Checkpoint,
		Resume:     spec.Resume,
		Interrupt:  spec.Interrupt,
		OnStepCtx: func(ctx context.Context, st structural.State) {
			// Faults scheduled for step N+1 are armed after step N commits.
			applyFaults(st.Step + 1)
			if spec.DAQEvery > 0 && st.Step%spec.DAQEvery == 0 {
				for _, s := range e.Sites {
					// ctx carries the step span, so the DAQ readback's hub
					// publish nests under the step in the merged timeline.
					if _, err := s.DAQ.ScanContext(ctx, st.Step, st.T); err == nil {
						results.DAQScans++
					}
				}
			}
			if e.arch != nil {
				every := spec.Archive.IngestEvery
				if every <= 0 {
					every = 100
				}
				if st.Step > 0 && st.Step%every == 0 {
					if err := e.ingestTick(); err != nil {
						results.ArchiveErr = err
					}
				}
			}
			if spec.OnStep != nil {
				spec.OnStep(st)
			}
		},
	}
	sites := make([]coord.Site, len(e.Sites))
	for i, s := range e.Sites {
		sites[i] = s.coordSite(e.Cred, e.Trust, spec.Retry, e.Telemetry, e.Tracer)
	}
	co, err := coord.New(cfg, sites...)
	if err != nil {
		return nil, err
	}
	applyFaults(0)
	hist, report, runErr := co.Run(ctx)
	results.History = hist
	results.Report = report
	results.Err = runErr
	for _, s := range e.Sites {
		results.InjectedFaults += s.Injector.Injected()
	}
	if err := e.drainArchive(); err != nil && results.ArchiveErr == nil {
		results.ArchiveErr = err
	}
	// Monitoring ends with the run: drain the viewer feeds so every
	// published sample is visible to post-run analysis. The feeds are
	// once-wrapped, so the supervisor's Stop skips them later.
	for _, stop := range e.stopFeeds {
		_ = stop.Stop(context.Background())
	}
	return results, nil
}
