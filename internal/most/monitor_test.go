package most

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"path/filepath"

	"neesgrid/internal/collab"
	"neesgrid/internal/core"
	"neesgrid/internal/daq"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/structural"
)

// A remote observer monitors a running NTCP server "as a whole" through the
// most-recently-changed transaction SDE (paper §2.1) using the long-poll
// notification path, while the experiment runs.
func TestRemoteObserverWatchesTransactions(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 40
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()

	uiuc, _ := exp.Site("uiuc")
	observerCred, err := exp.CA.Issue("/O=NEES/CN=observer", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// The observer must be in the site's gridmap; reuse the coordinator
	// credential for a read-only watch instead.
	_ = observerCred
	og := ogsi.NewClient("http://"+uiuc.Addr, exp.Cred, exp.Trust)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var seen []string
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- og.WatchServiceData(ctx, "ntcp", "last-transaction", 500*time.Millisecond, func(sde ogsi.SDE) {
			var name string
			_ = json.Unmarshal(sde.Value, &name)
			mu.Lock()
			seen = append(seen, name)
			mu.Unlock()
		})
	}()

	res, err := exp.Run(context.Background())
	if err != nil || res.Err != nil {
		t.Fatalf("run: %v / %v", err, res.Err)
	}
	// Allow the final notification to land, then stop the watch.
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-watchDone; err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("observer saw no transactions")
	}
	// Long-polling may coalesce bursts, and each transaction updates the
	// SDE at propose and again at execute — but what is seen must be uiuc
	// step transactions in non-decreasing step order.
	lastStep := -1
	for _, name := range seen {
		if !strings.Contains(name, "/uiuc") || !strings.Contains(name, "step-") {
			t.Fatalf("unexpected transaction name %q", name)
		}
		var step int
		if _, err := fmt.Sscanf(name[strings.Index(name, "step-"):], "step-%d/", &step); err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		if step < lastStep {
			t.Fatalf("out-of-order notification: step %d after %d", step, lastStep)
		}
		lastStep = step
	}
}

// E6 integration: 130 remote participants chat and read live viewer data
// while a distributed experiment is running.
func TestParticipantsObserveLiveRun(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 60
	spec.DAQEvery = 1
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()

	ws := collab.NewWorkspace("most")
	const participants = 130
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, participants)
	for i := 0; i < participants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := ws.Login(fmt.Sprintf("user-%03d", i))
			if err != nil {
				errs <- err
				return
			}
			if _, err := ws.Chat(s.Token, "main", "watching"); err != nil {
				errs <- err
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Poll the viewer like the CHEF data viewer did.
				exp.Viewer.Window("uiuc.disp", 0, 1e18)
				if _, err := ws.ChatSince(s.Token, "main", 0); err != nil {
					errs <- err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}

	res, err := exp.Run(context.Background())
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if err != nil || res.Err != nil {
		t.Fatalf("run under observation failed: %v / %v", err, res.Err)
	}
	if got := len(ws.Presence()); got != participants {
		t.Fatalf("presence = %d", got)
	}
	if len(exp.Viewer.Window("uiuc.disp", 0, 1e18)) != spec.Steps+1 {
		t.Fatalf("viewer samples = %d", len(exp.Viewer.Window("uiuc.disp", 0, 1e18)))
	}
}

// Interlock trip mid-run: a rig emergency stop fails the site's execution
// and the run aborts with the failing step identified — the §4 safety path
// end to end.
func TestInterlockTripAbortsRun(t *testing.T) {
	spec := DryRunSpec(VariantHybrid)
	spec.Steps = 120
	const tripStep = 50
	var exp *Experiment
	spec.OnStep = func(st structural.State) {
		if st.Step == tripStep-1 {
			uiuc, _ := exp.Site("uiuc")
			uiuc.Rig.Interlock().Trip("operator emergency stop")
		}
	}
	var err error
	exp, err = Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("run should abort after the interlock trips")
	}
	if res.Report.FailedStep != tripStep {
		t.Fatalf("failed at step %d, want %d", res.Report.FailedStep, tripStep)
	}
	if !strings.Contains(res.Err.Error(), "interlock") &&
		!strings.Contains(res.Err.Error(), "stop") {
		t.Fatalf("error does not name the interlock: %v", res.Err)
	}
	_ = core.ErrFailed
}

// E9 in the flagship path: the experiment archives incrementally to the
// repository while running, and the complete data set is downloadable by
// logical name after completion (§2.2: "the complete data set can be
// accessed following completion of each time step via the … repository").
func TestIncrementalArchivalDuringRun(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 120
	spec.DAQEvery = 1
	spec.Archive = &ArchiveConfig{
		SpoolDir:    t.TempDir(),
		StoreDir:    t.TempDir(),
		BlockSize:   20,
		IngestEvery: 30,
	}
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()

	midRunIngested := -1
	spec2 := exp.Spec
	spec2.OnStep = func(st structural.State) {
		if st.Step == 100 {
			midRunIngested = exp.IngestedBlocks()
		}
	}
	exp.Spec = spec2

	res, err := exp.Run(context.Background())
	if err != nil || res.Err != nil {
		t.Fatalf("run: %v / %v", err, res.Err)
	}
	if res.ArchiveErr != nil {
		t.Fatalf("archive error: %v", res.ArchiveErr)
	}
	if midRunIngested <= 0 {
		t.Fatalf("no blocks ingested while the run was in progress (got %d)", midRunIngested)
	}
	// 121 scans per site at block size 20 -> 7 blocks per site (6 full +
	// 1 flushed tail), 3 sites.
	if got := exp.IngestedBlocks(); got != 3*7 {
		t.Fatalf("ingested %d blocks, want 21", got)
	}
	r := exp.Repo()
	// Pre-experiment metadata exists.
	if _, err := r.Meta.Get("exp:most"); err != nil {
		t.Fatal(err)
	}
	// Every catalog entry downloads and parses.
	entries := r.Files.List()
	if len(entries) != 21 {
		t.Fatalf("catalog has %d entries", len(entries))
	}
	dst := filepath.Join(t.TempDir(), "block.csv")
	if err := r.Fetch(entries[0].Logical, dst); err != nil {
		t.Fatal(err)
	}
	readings, err := daq.ReadBlock(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) == 0 {
		t.Fatal("downloaded block empty")
	}
}

// The paper ran the full experiment twice on the same apparatus: "once as a
// 'dry run' … and then as the full experiment". Reset returns every
// substructure to its virgin state so back-to-back runs on one topology
// produce identical trajectories.
func TestRunTwiceWithResetMatches(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 80
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()

	first, err := exp.Run(context.Background())
	if err != nil || first.Err != nil {
		t.Fatalf("first run: %v / %v", err, first.Err)
	}
	// Without a reset the bilinear columns remember their yield history.
	for _, s := range exp.Sites {
		if err := s.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	spec2 := exp.Spec
	spec2.Name = "most-second"
	exp.Spec = spec2
	second, err := exp.Run(context.Background())
	if err != nil || second.Err != nil {
		t.Fatalf("second run: %v / %v", err, second.Err)
	}
	for i := range first.History.States {
		if first.History.States[i].D[0] != second.History.States[i].D[0] {
			t.Fatalf("step %d: second run diverged (%g vs %g) — reset incomplete",
				i, second.History.States[i].D[0], first.History.States[i].D[0])
		}
	}
}

// The experiment completes over an emulated wide-area network with latency
// and jitter on every site link (scaled down from the 2003 Illinois-
// Colorado path to keep the test fast).
func TestRunOverWANProfile(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 30
	for i := range spec.Sites {
		spec.Sites[i].WAN = faultnet.Profile{
			Latency: 2 * time.Millisecond,
			Jitter:  time.Millisecond,
			Seed:    int64(i + 1),
		}
	}
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()
	start := time.Now()
	res, err := exp.Run(context.Background())
	if err != nil || res.Err != nil {
		t.Fatalf("run: %v / %v", err, res.Err)
	}
	// 30 steps x 2 phases x >=2ms of injected one-way delay: the wall
	// clock must show the WAN (>120ms), proving traffic actually traversed
	// the injectors.
	if elapsed := time.Since(start); elapsed < 120*time.Millisecond {
		t.Fatalf("run finished in %v — WAN latency not applied", elapsed)
	}
}
