package most

import (
	"context"
	"math"
	"testing"

	"neesgrid/internal/coord"
	"neesgrid/internal/core"
)

// runSpec builds, runs, and tears down an experiment.
func runSpec(t *testing.T, spec Spec) (*Experiment, *Results) {
	t.Helper()
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := exp.Stop(); err != nil {
			t.Errorf("experiment stop: %v", err)
		}
	})
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return exp, res
}

func TestDryRunSimulationVariantCompletes(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 200 // full 1500 covered by the public-run test below
	_, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Report.Completed || res.Report.StepsCompleted != 200 {
		t.Fatalf("report = %+v", res.Report)
	}
	if res.History.PeakDisplacement(0) <= 0 {
		t.Fatal("flat response")
	}
	if res.History.PeakDisplacement(0) > 0.2 {
		t.Fatalf("implausible drift %g m", res.History.PeakDisplacement(0))
	}
}

func TestHybridMatchesSimulation(t *testing.T) {
	// E3: replacing numerical substructures with (noise-free) emulated
	// rigs must leave the trajectory essentially unchanged — the
	// substitution NTCP makes transparent.
	const steps = 150
	simSpec := DryRunSpec(VariantSimulation)
	simSpec.Steps = steps
	_, simRes := runSpec(t, simSpec)
	if simRes.Err != nil {
		t.Fatal(simRes.Err)
	}

	hySpec := DryRunSpec(VariantHybrid)
	hySpec.Steps = steps
	_, hyRes := runSpec(t, hySpec)
	if hyRes.Err != nil {
		t.Fatal(hyRes.Err)
	}

	peak := simRes.History.PeakDisplacement(0)
	if peak == 0 {
		t.Fatal("flat reference response")
	}
	for i := range simRes.History.States {
		d1 := simRes.History.States[i].D[0]
		d2 := hyRes.History.States[i].D[0]
		if math.Abs(d1-d2) > 0.02*peak+1e-6 {
			t.Fatalf("step %d: sim %g vs hybrid %g (peak %g)", i, d1, d2, peak)
		}
	}
}

func TestPublicRunAbortsAtStep1493(t *testing.T) {
	// E2: the full 1,500-step public run with the paper's fault history —
	// several transient failures recovered by NTCP retries, then a hard
	// outage at step 1493 terminates the experiment prematurely.
	if testing.Short() {
		t.Skip("full 1500-step run")
	}
	spec := PublicRunSpec(VariantSimulation)
	exp, res := runSpec(t, spec)
	if res.Err == nil {
		t.Fatal("public run should abort")
	}
	if res.Report.Completed {
		t.Fatal("report claims completion")
	}
	if res.Report.FailedStep != 1493 {
		t.Fatalf("failed at step %d, want 1493", res.Report.FailedStep)
	}
	if res.Report.StepsCompleted != 1492 {
		t.Fatalf("completed %d steps, want 1492", res.Report.StepsCompleted)
	}
	if res.Report.Recovered == 0 {
		t.Fatal("no transient failures recovered — the schedule injects several")
	}
	if res.InjectedFaults < 7 {
		t.Fatalf("injected %d faults", res.InjectedFaults)
	}
	// History retains all committed steps for post-mortem (states 0..1492).
	if res.History.Len() != 1493 {
		t.Fatalf("history has %d states", res.History.Len())
	}
	_ = exp
}

func TestDryRunFull1500Steps(t *testing.T) {
	// E1: the dry run "ran successfully to completion" over all 1,500
	// steps.
	if testing.Short() {
		t.Skip("full 1500-step run")
	}
	spec := DryRunSpec(VariantSimulation)
	_, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Report.Completed || res.Report.StepsCompleted != 1500 {
		t.Fatalf("report = %+v", res.Report)
	}
	// The frame yields under the 0.4 g record: hysteretic energy positive.
	if e := res.History.HystereticEnergy(0); e <= 0 {
		t.Fatalf("hysteretic energy = %g", e)
	}
}

func TestMiniMOSTKinetic(t *testing.T) {
	spec := MiniMOSTSpec(false)
	spec.Steps = 150
	_, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Report.Completed {
		t.Fatalf("report = %+v", res.Report)
	}
}

func TestMiniMOSTHardware(t *testing.T) {
	spec := MiniMOSTSpec(true)
	spec.Steps = 150
	exp, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Report.Completed {
		t.Fatalf("report = %+v", res.Report)
	}
	// The stepper-quantized response tracks the model: peak within a few
	// percent of the kinetic variant is implicitly checked by completion;
	// here assert the beam actually moved.
	bench, _ := exp.Site("bench")
	if bench.LastDisp() == 0 && res.History.PeakDisplacement(0) > 0 {
		t.Fatal("beam never moved")
	}
}

func TestSoilStructureFourSites(t *testing.T) {
	spec := SoilStructureSpec()
	spec.Steps = 200
	exp, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Report.Completed {
		t.Fatalf("report = %+v", res.Report)
	}
	if len(exp.Sites) != 4 {
		t.Fatalf("%d sites", len(exp.Sites))
	}
	// Soft hysteretic soil dissipates energy.
	if e := res.History.HystereticEnergy(0); e <= 0 {
		t.Fatalf("hysteretic energy = %g", e)
	}
}

func TestMonitoringPipeline(t *testing.T) {
	// DAQ scans feed the NSDS hubs which feed the CHEF viewer; the Fig. 8
	// series (time history + hysteresis) come out the other end.
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 100
	spec.DAQEvery = 1
	exp, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.DAQScans != 3*101 {
		t.Fatalf("DAQ scans = %d, want %d", res.DAQScans, 3*101)
	}
	chans := exp.Viewer.Channels()
	if len(chans) != 6 { // 3 sites x (disp, force)
		t.Fatalf("viewer channels = %v", chans)
	}
	disp := exp.Viewer.Window("uiuc.disp", 0, 1e9)
	if len(disp) != 101 {
		t.Fatalf("uiuc.disp has %d samples", len(disp))
	}
	xs, ys := exp.Viewer.XY("uiuc.disp", "uiuc.force")
	if len(xs) != 101 || len(ys) != 101 {
		t.Fatalf("hysteresis series %d/%d", len(xs), len(ys))
	}
	// Camera sees the final deflection.
	uiuc, _ := exp.Site("uiuc")
	frame, err := uiuc.Camera.Capture(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Pixels) == 0 {
		t.Fatal("empty camera frame")
	}
}

func TestTransientFaultsRecoveredInHarness(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 80
	spec.Faults = []Fault{
		{Step: 20, Site: "uiuc", Count: 2},
		{Step: 50, Site: "ncsa", Count: 2},
	}
	_, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Report.Completed {
		t.Fatalf("report = %+v", res.Report)
	}
	if res.Report.Recovered == 0 || res.InjectedFaults < 4 {
		t.Fatalf("recovered %d of %d injected", res.Report.Recovered, res.InjectedFaults)
	}
}

func TestNoRetryDiesOnFirstFault(t *testing.T) {
	spec := MOSTSpec(VariantSimulation, core.NoRetry)
	spec.Steps = 80
	spec.Faults = []Fault{{Step: 30, Site: "cu", Count: 1}}
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("no-retry coordinator should abort")
	}
	if got := coord.StepOf(res.Err); got != 30 {
		t.Fatalf("failed step = %d, want 30", got)
	}
}

func TestPolicyRejectionAtSite(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 100
	// Clamp the UIUC site policy far below the expected drift.
	spec.Sites[0].Policy = mostPolicy("left-column", 1e-7)
	exp, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Stop()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !coord.IsRejection(res.Err) {
		t.Fatalf("err = %v, want policy rejection", res.Err)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestBackendKindString(t *testing.T) {
	kinds := []BackendKind{KindSimulation, KindMpluginSim, KindShoreWestern, KindXPC, KindLabView, KindKinetic, BackendKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("empty name for %d", int(k))
		}
	}
}

func TestSiteAccessors(t *testing.T) {
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = 10
	exp, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, ok := exp.Site("uiuc"); !ok {
		t.Fatal("uiuc missing")
	}
	if _, ok := exp.Site("nowhere"); ok {
		t.Fatal("phantom site")
	}
	// NTCP servers published their stats SDEs.
	uiuc, _ := exp.Site("uiuc")
	if uiuc.Server.Stats().Executed != 11 {
		t.Fatalf("uiuc executed %d transactions, want 11", uiuc.Server.Stats().Executed)
	}
}
