// Package most assembles the complete MOST-class experiment topologies of
// the paper (Figs. 5, 9, 11): per-site OGSI containers hosting NTCP servers
// with the site's control plugin (simulation, Mplugin+poll back end,
// Shore-Western rig, xPC rig, or LabVIEW stepper), per-site DAQ feeding
// NSDS streams and repository ingestion, telepresence cameras, WAN fault
// injection, and the MS-PSDS simulation coordinator driving it all. It is
// the harness behind experiments E1, E2, E3, E7 and E12.
package most

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"neesgrid/internal/control"
	"neesgrid/internal/coord"
	"neesgrid/internal/core"
	"neesgrid/internal/daq"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/gsi"
	"neesgrid/internal/nsds"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/plugin"
	"neesgrid/internal/runtime"
	"neesgrid/internal/structural"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/telepresence"
	"neesgrid/internal/trace"
)

// BackendKind selects how a site's substructure is realized — the axis
// along which NTCP makes "a physical experiment and a computational
// simulation indistinguishable".
type BackendKind int

// The back ends used across MOST and Mini-MOST.
const (
	// KindSimulation plugs a numerical element directly into NTCP.
	KindSimulation BackendKind = iota
	// KindMpluginSim is the NCSA configuration: a buffering Mplugin whose
	// back-end solver polls for requests and notifies results.
	KindMpluginSim
	// KindShoreWestern is the UIUC configuration: an emulated
	// servo-hydraulic rig behind a Shore-Western TCP controller.
	KindShoreWestern
	// KindXPC is the CU configuration: an emulated rig behind an
	// xPC-target real-time loop.
	KindXPC
	// KindLabView is the Mini-MOST configuration: a stepper-motor beam
	// behind a LabVIEW daemon.
	KindLabView
	// KindKinetic is the Mini-MOST hardware-free test configuration: the
	// first-order kinetic beam simulator.
	KindKinetic
)

func (k BackendKind) String() string {
	switch k {
	case KindSimulation:
		return "simulation"
	case KindMpluginSim:
		return "mplugin-sim"
	case KindShoreWestern:
		return "shore-western"
	case KindXPC:
		return "xpc"
	case KindLabView:
		return "labview"
	case KindKinetic:
		return "kinetic"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// SiteSpec describes one experiment site.
type SiteSpec struct {
	Name  string
	Kind  BackendKind
	Point string // control point name; defaults to "drift"
	// Substructure behaviour: elastic stiffness, yield force (0 = linear),
	// hardening ratio.
	K, Fy, Hardening float64
	// DOFs maps the site's single control DOF to global model DOFs;
	// defaults to [0].
	DOFs []int
	// Policy is the site's proposal screen (nil = unrestricted).
	Policy *core.SitePolicy
	// WAN is the network profile between the coordinator and this site.
	WAN faultnet.Profile
	// Noisy enables sensor noise on rig-backed sites.
	Noisy bool
	// Relay interposes a local NSDS relay tier between the site's hub and
	// its viewers (paper §2.2 fan-out at scale): the DAQ publishes to the
	// hub, a relay forwards to a second hub, and viewers subscribe there.
	// Each tier keeps its own best-effort drop accounting.
	Relay bool
}

// Site is a running experiment site.
type Site struct {
	Spec     SiteSpec
	Addr     string
	Server   *core.Server
	Injector *faultnet.Injector
	Hub      *nsds.Hub
	// RelayHub is the viewer-facing hub of the relay tier (nil unless
	// Spec.Relay); viewers subscribe via StreamHub, which picks it up.
	RelayHub *nsds.Hub
	DAQ      *daq.DAQ
	Camera   *telepresence.Camera
	Rig      *control.Rig
	// Telemetry is the site-local registry shared by the site's OGSI
	// container and NTCP server: per-op request counts, fault codes,
	// dispatch latency, transaction outcomes. Remotely readable via the
	// container's /metrics endpoint and the service's "metrics" SDE.
	Telemetry *telemetry.Registry
	// Tracer records the site's server-side spans (container dispatch,
	// NTCP lifecycle, chain verification, NSDS fan-out) into SpanRecorder;
	// remotely readable via the container's /trace endpoint.
	Tracer       *trace.Tracer
	SpanRecorder *trace.Recorder

	container *ogsi.Container
	// gridmap is the container's live identity→account map. Pooled sites
	// (internal/fleet) add a tenant's coordinator identity on lease and
	// revoke it on release, so two tenants' coordinators are never
	// simultaneously authorized at the same slot.
	gridmap *gsi.Gridmap
	// sup supervises the site's components — rig daemons, container, NTCP
	// server, hub — so teardown is ordered (reverse of start), deadline-
	// bounded, and error-reporting instead of an ad-hoc cleanup slice.
	sup    *runtime.Supervisor
	relay  *nsds.LocalRelay
	resets []func() error
	// rec is the recording plugin wrapped around the control backend; a
	// daemon restart builds a fresh NTCP server over the same plugin so the
	// specimen (and its hysteresis) survives while the transaction table
	// does not — exactly what a site-daemon crash does to a real rig.
	rec *recordingPlugin

	mu        sync.Mutex
	lastDisp  float64
	lastForce float64
	failExec  error
	restarts  int
}

// recordingPlugin wraps a site plugin so the harness can observe the last
// applied displacement/force (the quantity the site's DAQ samples).
type recordingPlugin struct {
	inner core.Plugin
	site  *Site
}

func (r *recordingPlugin) Validate(ctx context.Context, actions []core.Action) error {
	return r.inner.Validate(ctx, actions)
}

func (r *recordingPlugin) Execute(ctx context.Context, actions []core.Action) ([]core.Result, error) {
	if err := r.site.takeFailExec(); err != nil {
		return nil, err
	}
	results, err := r.inner.Execute(ctx, actions)
	if err == nil && len(results) > 0 && len(results[0].Displacements) > 0 {
		r.site.mu.Lock()
		r.site.lastDisp = results[0].Displacements[0]
		if len(results[0].Forces) > 0 {
			r.site.lastForce = results[0].Forces[0]
		}
		r.site.mu.Unlock()
	}
	return results, err
}

// LastDisp returns the last displacement applied at the site.
func (s *Site) LastDisp() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastDisp
}

// LastForce returns the last force measured at the site.
func (s *Site) LastForce() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastForce
}

// FailNextExecute arms a one-shot plugin failure: the next execute at this
// site fails with err before the backend runs, driving the transaction to
// StateFailed — the signature of a site daemon dying mid-transaction. The
// specimen is untouched (the action never reached it), which is what makes
// a later replay of the step safe.
func (s *Site) FailNextExecute(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failExec = err
}

// takeFailExec consumes an armed execute failure.
func (s *Site) takeFailExec() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.failExec
	s.failExec = nil
	return err
}

// RestartServer emulates a site-daemon kill/restart: a fresh NTCP server
// (empty transaction table, zero drained state) is swapped into the
// container under the same service name, over the same plugin, policy, and
// telemetry. The old server is abandoned, not drained — a killed daemon
// does not get to say goodbye. Callers coordinate quiescence themselves
// (the chaos engine restarts only between coordinator incarnations).
func (s *Site) RestartServer() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	server := core.NewServer(s.rec, s.Spec.Policy,
		core.ServerOptions{Telemetry: s.Telemetry, Tracer: s.Tracer})
	if _, err := s.container.ReplaceService(server.Service()); err != nil {
		return fmt.Errorf("most: site %s restart: %w", s.Spec.Name, err)
	}
	s.Server = server
	s.restarts++
	s.Telemetry.Counter("most.site.restarts").Inc()
	return nil
}

// Restarts returns how many times the site's NTCP daemon was restarted.
func (s *Site) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// currentServer returns the live NTCP server (it changes across restarts).
func (s *Site) currentServer() *core.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Server
}

// Reset returns the site's substructure to its virgin state — the
// between-runs specimen reset (the paper ran the full experiment twice,
// dry run then public run).
func (s *Site) Reset() error {
	for _, r := range s.resets {
		if err := r(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.lastDisp, s.lastForce = 0, 0
	s.mu.Unlock()
	return nil
}

// Stop tears the site down: components drain in reverse start order
// (hub, then NTCP server drain, then container, then the control
// backend), each under its own deadline. The joined per-component errors
// are returned instead of being swallowed.
func (s *Site) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.sup.StopBudget())
	defer cancel()
	return s.sup.Stop(ctx)
}

// StreamHub returns the hub viewers should subscribe to: the relay-tier
// hub when the site runs a relay, the DAQ hub otherwise.
func (s *Site) StreamHub() *nsds.Hub {
	if s.RelayHub != nil {
		return s.RelayHub
	}
	return s.Hub
}

// DrainStream waits until every sample published so far has traversed the
// relay tier (a no-op without one). Deterministic verdicts — the chaos
// engine's forced-drop accounting — need the asynchronous relay quiesced
// before its counters are read.
func (s *Site) DrainStream(ctx context.Context) error {
	if s.relay == nil {
		return nil
	}
	return s.relay.Drain(ctx)
}

// Authorize maps a Grid identity into the site's live gridmap under the
// given local account — the lease-grant path for pooled sites: a tenant's
// coordinator becomes acceptable to this site's container for the
// duration of its lease.
func (s *Site) Authorize(identity, account string) {
	s.gridmap.Map(identity, account)
}

// Revoke removes a Grid identity from the site's gridmap — the lease
// release. A revoked coordinator's envelopes fail authorization on the
// next call, so a tenant cannot keep driving a slot it returned.
func (s *Site) Revoke(identity string) {
	s.gridmap.Unmap(identity)
}

// Supervisor exposes the site's component tree so an experiment (or an
// e2e test) can nest it under its own supervisor.
func (s *Site) Supervisor() *runtime.Supervisor { return s.sup }

// Healthy aggregates the site's component health.
func (s *Site) Healthy() error { return s.sup.Healthy() }

// buildBackend constructs the plugin (and any rig/daemon) for a spec.
func buildBackend(spec SiteSpec, site *Site) (core.Plugin, error) {
	point := spec.Point
	elastic := spec.K
	switch spec.Kind {
	case KindSimulation:
		var elem structural.Element
		if spec.Fy > 0 {
			elem = structural.NewBilinear(elastic, spec.Fy, spec.Hardening)
		} else {
			elem = structural.NewLinearElastic(elastic)
		}
		var mu sync.Mutex
		site.resets = append(site.resets, func() error {
			mu.Lock()
			defer mu.Unlock()
			elem.Reset()
			return nil
		})
		return &core.SubstructurePlugin{
			Point: point, NDOF: 1,
			Apply: func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return []float64{elem.Restore(d[0])}, nil
			},
		}, nil

	case KindMpluginSim:
		m := plugin.NewMplugin(point, 1, 16)
		var elem structural.Element
		if spec.Fy > 0 {
			elem = structural.NewBilinear(elastic, spec.Fy, spec.Hardening)
		} else {
			elem = structural.NewLinearElastic(elastic)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var mu sync.Mutex
		go func() {
			_ = m.RunBackend(ctx, func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return []float64{elem.Restore(d[0])}, nil
			})
		}()
		site.sup.Adopt("mplugin-backend", runtime.StopFunc(cancel))
		site.resets = append(site.resets, func() error {
			mu.Lock()
			defer mu.Unlock()
			elem.Reset()
			return nil
		})
		return m, nil

	case KindShoreWestern:
		cfg := control.DefaultActuator()
		if !spec.Noisy {
			cfg.PositionNoiseStd = 0
			cfg.ForceNoiseStd = 0
		}
		rig := control.NewColumnRig(spec.Name+"-rig", cfg, elastic, spec.Fy, spec.Hardening)
		site.Rig = rig
		srv := control.NewShoreWesternServer(rig)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		site.sup.Adopt("shore-western-server", runtime.StopErrFunc(srv.Close))
		cl := control.NewShoreWesternClient(addr)
		site.sup.Adopt("shore-western-client", runtime.StopErrFunc(cl.Close))
		site.resets = append(site.resets, rig.Reset)
		return &plugin.ShoreWesternPlugin{Point: point, Client: cl}, nil

	case KindXPC:
		cfg := control.DefaultActuator()
		if !spec.Noisy {
			cfg.PositionNoiseStd = 0
			cfg.ForceNoiseStd = 0
		}
		rig := control.NewColumnRig(spec.Name+"-rig", cfg, elastic, spec.Fy, spec.Hardening)
		site.Rig = rig
		target := control.NewXPCTarget(rig)
		target.Start(time.Millisecond)
		site.sup.Adopt("xpc-target", runtime.StopFunc(target.Stop))
		site.resets = append(site.resets, rig.Reset)
		return &plugin.XPCPlugin{Point: point, Target: target, SettleTimeout: 10 * time.Second}, nil

	case KindLabView:
		stepper := control.NewStepperBeam(spec.Name+"-beam", elastic, 1e-5, 200_000)
		daemon := plugin.NewLabViewDaemon(stepper)
		addr, err := daemon.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		site.sup.Adopt("labview-daemon", runtime.StopErrFunc(daemon.Close))
		p := &plugin.LabViewPlugin{Point: point, Addr: addr}
		site.sup.Adopt("labview-plugin", runtime.StopErrFunc(p.Close))
		site.resets = append(site.resets, stepper.Reset)
		return p, nil

	case KindKinetic:
		sim := control.NewFirstOrderKinetic(spec.Name+"-kinetic", elastic, 0.02, 1.0)
		var mu sync.Mutex
		site.resets = append(site.resets, func() error {
			mu.Lock()
			defer mu.Unlock()
			return sim.Reset()
		})
		return &core.SubstructurePlugin{
			Point: point, NDOF: 1,
			Apply: func(d []float64) ([]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				return sim.Apply(d)
			},
		}, nil

	default:
		return nil, fmt.Errorf("most: unknown backend kind %v", spec.Kind)
	}
}

// StartSharedSite builds and starts one site against a long-lived pool CA
// with an empty gridmap: no coordinator is authorized until a lease maps
// one in with Authorize. This is the constructor behind internal/fleet's
// shared site pool — the site outlives any single experiment and is reused
// across tenants (Reset between leases returns the specimen to its virgin
// state).
func StartSharedSite(ca *gsi.Authority, trust *gsi.TrustStore, spec SiteSpec) (*Site, error) {
	return startSite(ca, trust, "", spec)
}

// startSite builds and starts one site against the experiment CA.
func startSite(ca *gsi.Authority, trust *gsi.TrustStore, coordIdentity string, spec SiteSpec) (*Site, error) {
	if spec.Point == "" {
		spec.Point = "drift"
	}
	if len(spec.DOFs) == 0 {
		spec.DOFs = []int{0}
	}
	site := &Site{
		Spec:         spec,
		Injector:     faultnet.NewInjector(spec.WAN),
		Hub:          nsds.NewHub(),
		Telemetry:    telemetry.NewRegistry(),
		SpanRecorder: trace.NewRecorder(0),
		sup:          runtime.NewSupervisor("site:" + spec.Name),
	}
	site.Tracer = trace.NewTracer(spec.Name, site.SpanRecorder)
	site.Hub.UseTracer(site.Tracer)
	site.Hub.UseTelemetry(site.Telemetry, "hub")
	// Pre-register at zero: a site that never restarted exports the series.
	site.Telemetry.Counter("most.site.restarts")

	backend, err := buildBackend(spec, site)
	if err != nil {
		return nil, fmt.Errorf("most: site %s: %w", spec.Name, err)
	}
	rec := &recordingPlugin{inner: backend, site: site}
	site.rec = rec

	siteCred, err := ca.Issue("/O=NEES/CN="+spec.Name, 24*time.Hour)
	if err != nil {
		return nil, err
	}
	gm := gsi.NewGridmap(nil)
	if coordIdentity != "" {
		gm.Map(coordIdentity, "coord")
	}
	site.gridmap = gm
	cont := ogsi.NewContainer(siteCred, trust, gm)
	cont.UseTelemetry(site.Telemetry)
	cont.UseTracer(site.Tracer)
	server := core.NewServer(rec, spec.Policy, core.ServerOptions{Telemetry: site.Telemetry, Tracer: site.Tracer})
	cont.AddService(server.Service())
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		_ = site.Stop()
		return nil, fmt.Errorf("most: site %s container: %w", spec.Name, err)
	}
	site.container = cont
	// Stop order (reverse of registration): the NTCP server drains first —
	// while the container is still serving, so a mid-step coordinator sees
	// the retryable drain code — then the container shuts down.
	site.sup.Adopt("container", runtime.Funcs{
		StopFunc:    cont.Stop,
		HealthyFunc: cont.Healthy,
	}, runtime.WithDrain(time.Second))
	// Dispatch through currentServer, not the concrete instance: after a
	// chaos restart the supervisor must drain and health-check the live
	// server, not the abandoned pre-crash one.
	site.sup.Adopt("ntcp-server", runtime.Funcs{
		StopFunc:    func(ctx context.Context) error { return site.currentServer().Stop(ctx) },
		HealthyFunc: func() error { return site.currentServer().Healthy() },
	})
	site.Addr = addr
	site.Server = server

	// DAQ channels: displacement and force, fed by the recording plugin.
	site.DAQ = daq.New(spec.Name, 1)
	noise := 0.0
	if spec.Noisy {
		noise = 1e-6
	}
	if err := site.DAQ.AddChannel(daq.Channel{
		Name: spec.Name + ".disp", Kind: daq.LVDT, Units: "m",
		Read: site.LastDisp, NoiseStd: noise,
	}); err != nil {
		_ = site.Stop()
		return nil, err
	}
	if err := site.DAQ.AddChannel(daq.Channel{
		Name: spec.Name + ".force", Kind: daq.LoadCell, Units: "N",
		Read: site.LastForce, NoiseStd: noise * 1e4,
	}); err != nil {
		_ = site.Stop()
		return nil, err
	}
	site.DAQ.AttachHub(site.Hub)
	site.sup.Adopt("hub", runtime.StopFunc(site.Hub.Close))
	if spec.Relay {
		// Relay tier: DAQ hub → LocalRelay → relay hub → viewers. Stop
		// order (reverse of adoption): the relay forwarder stops first,
		// then its hub closes, then the DAQ hub above.
		site.RelayHub = nsds.NewHub()
		site.RelayHub.UseTracer(site.Tracer)
		site.RelayHub.UseTelemetry(site.Telemetry, "relay")
		lr, err := nsds.NewLocalRelay(site.Hub, site.RelayHub, 0)
		if err != nil {
			_ = site.Stop()
			return nil, fmt.Errorf("most: site %s relay: %w", spec.Name, err)
		}
		site.relay = lr
		site.sup.Adopt("relay-hub", runtime.StopFunc(site.RelayHub.Close))
		site.sup.Adopt("relay", runtime.StopFunc(lr.Stop))
	}

	// Telepresence camera watching the specimen.
	site.Camera = telepresence.NewCamera(spec.Name+"-cam1", site.LastDisp)

	// Every component was adopted already-running; Start only flips the
	// supervisor ready so Healthy/Ready report a sane aggregate state.
	if err := site.sup.Start(context.Background()); err != nil {
		_ = site.Stop()
		return nil, err
	}
	return site, nil
}

// coordSite binds a running site into the coordinator topology. reg is the
// coordinator-side registry shared across all sites' NTCP clients (and the
// coordinator itself), so a run reports WAN round-trip latency and recovery
// counts in one place.
func (s *Site) coordSite(cred *gsi.Credential, trust *gsi.TrustStore, retry core.RetryPolicy, reg *telemetry.Registry, tracer *trace.Tracer) coord.Site {
	og := ogsi.NewClient("http://"+s.Addr, cred, trust)
	// A pinned keep-alive transport per site underneath the fault injector:
	// the long-lived multiplexed site connection, so no step after the
	// first pays TCP setup — while injected latency and failures still
	// apply once per signed envelope.
	og.HTTP = &http.Client{Transport: faultnet.NewTransportOver(s.Injector, ogsi.NewPinnedTransport(2))}
	og.Tracer = tracer
	return coord.Site{
		Name:         s.Spec.Name,
		Client:       core.NewClientWithTelemetry(og, retry, reg).LabelSite(s.Spec.Name),
		ControlPoint: s.Spec.Point,
		DOFs:         append([]int(nil), s.Spec.DOFs...),
	}
}
