package most

import (
	"testing"

	"neesgrid/internal/core"
)

// TestRunTelemetryEndToEnd: after a run, the coordinator-side registry holds
// per-step latency and NTCP round-trip histograms, and each site's registry
// holds per-op request counts and transaction outcomes — the observability
// story of the telemetry subsystem, exercised through the full harness.
func TestRunTelemetryEndToEnd(t *testing.T) {
	const steps = 60
	spec := DryRunSpec(VariantSimulation)
	spec.Steps = steps
	spec.Retry = core.DefaultRetry
	spec.Faults = []Fault{{Step: 20, Site: "uiuc", Count: 2}}
	exp, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	// Coordinator-side: one step-latency observation per committed step.
	if res.Report.StepLatency.Count != steps {
		t.Fatalf("StepLatency.Count = %d, want %d", res.Report.StepLatency.Count, steps)
	}
	if res.Report.StepLatency.P95 <= 0 {
		t.Fatalf("StepLatency percentiles missing: %+v", res.Report.StepLatency)
	}

	// The report's embedded snapshot covers the site clients (shared
	// registry): round-trip latency and the recovery from the injected
	// transient fault.
	snap := res.Report.Telemetry
	rtt := snap.Histograms["ntcp.client.rtt.seconds"]
	if rtt.Count == 0 || rtt.P99 <= 0 {
		t.Fatalf("rtt histogram = %+v", rtt)
	}
	if snap.Counters["coord.steps.completed"] != steps {
		t.Fatalf("coord.steps.completed = %d", snap.Counters["coord.steps.completed"])
	}
	if snap.Counters["ntcp.client.recovered"] == 0 {
		t.Fatal("injected transient fault should appear as a recovery")
	}
	if snap.Counters["faultnet.injected"] != 2 {
		t.Fatalf("faultnet.injected = %d, want 2", snap.Counters["faultnet.injected"])
	}
	if res.Report.Recovered == 0 {
		t.Fatal("report.Recovered lost the recovery count")
	}
	// Three sites share the coordinator registry; dedup must keep Recovered
	// equal to the aggregate counter, not triple it.
	if res.Report.Recovered != int(snap.Counters["ntcp.client.recovered"]) {
		t.Fatalf("Recovered = %d, counter = %d",
			res.Report.Recovered, snap.Counters["ntcp.client.recovered"])
	}

	// Site-side: each container/server pair recorded dispatches and
	// transaction outcomes in its own registry.
	for _, site := range exp.Sites {
		s := site.Telemetry.Snapshot()
		if s.Counters["ogsi.ntcp.propose.requests"] == 0 {
			t.Fatalf("site %s: no propose dispatches recorded", site.Spec.Name)
		}
		// steps+1: the integrator's Init performs a step-0 evaluation.
		if s.Counters["ntcp.server.executed"] != steps+1 {
			t.Fatalf("site %s: ntcp.server.executed = %d, want %d",
				site.Spec.Name, s.Counters["ntcp.server.executed"], steps+1)
		}
		h := s.Histograms["ogsi.ntcp.execute.seconds"]
		if h.Count == 0 {
			t.Fatalf("site %s: no execute latency recorded", site.Spec.Name)
		}
	}
}
