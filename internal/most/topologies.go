package most

import (
	"neesgrid/internal/core"
	"neesgrid/internal/structural"
)

// Variant selects how the MOST substructures are realized.
type Variant int

// MOST bring-up phases (§3: "MOST was developed incrementally. First, we
// implemented and tested a distributed simulation-only experiment. Once the
// correctness of the distributed simulation was verified, two of the
// numerical simulations were replaced with physical substructures.")
const (
	// VariantSimulation runs all three substructures as numerical
	// simulations (the first bring-up phase).
	VariantSimulation Variant = iota
	// VariantHybrid is the production MOST configuration of Fig. 9:
	// UIUC rig behind Shore-Western, NCSA Matlab-style Mplugin simulation,
	// CU rig behind an xPC target.
	VariantHybrid
)

// mostPolicy is the per-site proposal screen used in the MOST topologies:
// displacements beyond the actuator stroke are rejected at proposal time.
func mostPolicy(point string, maxDisp float64) *core.SitePolicy {
	return &core.SitePolicy{PointLimits: map[string]core.Limits{
		point: {MaxDisplacement: maxDisp},
	}}
}

// MOSTSpec builds the three-site MOST experiment.
func MOSTSpec(variant Variant, retry core.RetryPolicy) Spec {
	frame := structural.MOSTConfig()
	simKind := KindSimulation
	uiucKind, ncsaKind, cuKind := simKind, KindMpluginSim, simKind
	if variant == VariantHybrid {
		uiucKind, cuKind = KindShoreWestern, KindXPC
	}
	return Spec{
		Name:  "most",
		Frame: frame,
		Retry: retry,
		Sites: []SiteSpec{
			{
				Name: "uiuc", Kind: uiucKind, Point: "left-column",
				K: frame.LeftK, Fy: frame.LeftFy, Hardening: frame.Hardening,
				Policy: mostPolicy("left-column", 0.15),
			},
			{
				Name: "ncsa", Kind: ncsaKind, Point: "middle-frame",
				K:      frame.MidK,
				Policy: mostPolicy("middle-frame", 0.15),
			},
			{
				Name: "cu", Kind: cuKind, Point: "right-column",
				K: frame.RightK, Fy: frame.RightFy, Hardening: frame.Hardening,
				Policy: mostPolicy("right-column", 0.15),
			},
		},
	}
}

// DryRunSpec is E1: the full 1,500-step experiment with a fault-tolerant
// coordinator and no injected faults — it "ran successfully to completion".
func DryRunSpec(variant Variant) Spec {
	return MOSTSpec(variant, core.DefaultRetry)
}

// PublicRunSpec is E2: the public MOST run. Transient network failures are
// injected through the day (the coordinator's NTCP retries recover them),
// and a hard outage begins at step 1493, which no amount of retrying
// survives — the run exits prematurely at 1493 of 1500, as reported in
// §3.4.
func PublicRunSpec(variant Variant) Spec {
	spec := MOSTSpec(variant, core.DefaultRetry)
	spec.Name = "most-public"
	spec.Faults = []Fault{
		{Step: 220, Site: "uiuc", Count: 2},
		{Step: 641, Site: "cu", Count: 2},
		{Step: 905, Site: "ncsa", Count: 1},
		{Step: 1188, Site: "uiuc", Count: 2},
		{Step: 1493, Site: "cu", Fatal: true},
	}
	return spec
}

// MiniMOSTSpec is E7: the tabletop Mini-MOST (Fig. 11) — a stepper-driven
// beam behind a LabVIEW daemon plus the simulated portion of the frame.
// When hardware is false the beam is replaced by the first-order kinetic
// simulator, the §3.5 configuration "for testing when the actual hardware
// is not available".
func MiniMOSTSpec(hardware bool) Spec {
	frame := structural.MiniMOSTConfig()
	beamKind := KindLabView
	if !hardware {
		beamKind = KindKinetic
	}
	return Spec{
		Name:  "minimost",
		Frame: frame,
		Retry: core.DefaultRetry,
		Sites: []SiteSpec{
			{
				Name: "bench", Kind: beamKind, Point: "beam",
				K:      frame.LeftK,
				Policy: mostPolicy("beam", 0.05),
			},
			{
				Name: "hostpc", Kind: KindSimulation, Point: "middle-frame",
				K: frame.MidK,
			},
		},
	}
}

// SoilStructureSpec is E12: the §5 RPI/UIUC/Lehigh soil-structure
// interaction experiment shape — two structural sites, one geotechnical
// site with hysteretic soil behaviour, and a computational node at NCSA,
// all under the same coordinator. Parameters model the idealized
// Collector-Distributor 36 study at reduced scale.
func SoilStructureSpec() Spec {
	const (
		mass  = 50_000.0
		kUIUC = 1.2e6
		kLeh  = 1.2e6
		kRPI  = 0.8e6 // soil: softer, strongly hysteretic
		kNCSA = 1.5e6
	)
	frame := structural.FrameConfig{
		Mass:         mass,
		LeftK:        kUIUC,
		MidK:         kLeh + kRPI,
		RightK:       kNCSA,
		DampingRatio: 0.03,
		Dt:           0.01,
		Steps:        1000,
	}
	return Spec{
		Name:  "soil-structure",
		Frame: frame,
		Retry: core.DefaultRetry,
		Sites: []SiteSpec{
			{Name: "uiuc", Kind: KindSimulation, Point: "pier-a", K: kUIUC, Fy: 40e3, Hardening: 0.05},
			{Name: "lehigh", Kind: KindSimulation, Point: "pier-b", K: kLeh, Fy: 40e3, Hardening: 0.05},
			{Name: "rpi", Kind: KindSimulation, Point: "soil", K: kRPI, Fy: 15e3, Hardening: 0.02},
			{Name: "ncsa", Kind: KindMpluginSim, Point: "deck", K: kNCSA},
		},
	}
}
