package most

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"neesgrid/internal/core"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/structural"
	"neesgrid/internal/trace"
)

// traceSpec is a small two-site all-simulation topology for trace tests:
// fast to run, yet every step crosses the full NTCP propose/execute path
// at both sites.
func traceSpec(steps int) Spec {
	frame := structural.MiniMOSTConfig()
	return Spec{
		Name:  "trace-smoke",
		Frame: frame,
		Steps: steps,
		Retry: core.DefaultRetry,
		Sites: []SiteSpec{
			{Name: "alpha", Kind: KindSimulation, Point: "beam", K: frame.LeftK},
			{Name: "beta", Kind: KindSimulation, Point: "middle-frame", K: frame.MidK},
		},
	}
}

func TestRunProducesMergedCrossSiteTrace(t *testing.T) {
	const steps = 5
	spec := traceSpec(steps)
	spec.DAQEvery = 1
	// Put one site behind a WAN so its delay is attributed on the client
	// span via faultnet annotations.
	spec.Sites[1].WAN = faultnet.Profile{Latency: 2 * time.Millisecond, Seed: 7}

	exp, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	// Group the merged snapshot by trace ID.
	byTrace := make(map[string][]trace.SpanData)
	for _, sd := range exp.SpanSnapshot() {
		byTrace[sd.TraceID] = append(byTrace[sd.TraceID], sd)
	}

	// Every committed step must have a root "coord.step" span whose trace
	// contains, for each site, paired client+server propose and execute
	// spans — that is the end-to-end acceptance shape.
	roots := 0
	for _, spans := range byTrace {
		var root *trace.SpanData
		for i := range spans {
			if spans[i].Name == "coord.step" && spans[i].Parent == "" {
				root = &spans[i]
			}
		}
		if root == nil {
			continue
		}
		roots++
		for _, site := range []string{"alpha", "beta"} {
			for _, op := range []string{"ntcp.propose", "ntcp.execute"} {
				var client, server bool
				for _, sd := range spans {
					if sd.Name != op {
						continue
					}
					switch {
					case sd.Kind == trace.KindClient && sd.Service == "coordinator":
						client = true
					case sd.Kind == trace.KindServer && sd.Service == site:
						server = true
					}
				}
				if !client || !server {
					t.Fatalf("step %s: site %s %s client=%t server=%t",
						root.Attrs["step"], site, op, client, server)
				}
			}
		}
	}
	if roots < steps {
		t.Fatalf("found %d step roots, want >= %d", roots, steps)
	}

	// The DAQ readback must appear as nsds.publish children inside steps.
	var publishes, delays int
	for _, sd := range exp.SpanSnapshot() {
		if sd.Name == "nsds.publish" && sd.Parent != "" {
			publishes++
		}
		if sd.Kind == trace.KindClient {
			for _, ev := range sd.Events {
				if ev.Name == "faultnet.delay" {
					delays++
				}
			}
		}
	}
	if publishes == 0 {
		t.Fatal("no nsds.publish child spans from DAQ readback")
	}
	// The WAN-delayed site's latency must be visible on client spans.
	if delays == 0 {
		t.Fatal("no faultnet.delay annotations on client spans")
	}
}

func TestArchivePersistsSpansJSONL(t *testing.T) {
	spec := traceSpec(4)
	spec.DAQEvery = 1
	store := t.TempDir()
	spec.Archive = &ArchiveConfig{
		SpoolDir:  t.TempDir(),
		StoreDir:  store,
		BlockSize: 2,
	}
	_, res := runSpec(t, spec)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.ArchiveErr != nil {
		t.Fatal(res.ArchiveErr)
	}
	f, err := os.Open(filepath.Join(store, "trace-smoke-spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, steps := 0, 0
	for sc.Scan() {
		var sd trace.SpanData
		if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if sd.TraceID == "" || sd.SpanID == "" {
			t.Fatalf("line %d: missing ids: %+v", lines+1, sd)
		}
		if sd.Name == "coord.step" {
			steps++
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || steps == 0 {
		t.Fatalf("span archive has %d lines, %d step spans", lines, steps)
	}
}
