// Package nfms implements the NEESgrid File Management Service (paper
// §2.3): logical file naming and transport neutrality. "Applications
// negotiate file transfers with NFMS, which resolves a transfer request for
// a logical file to a protocol request for a physical resource. NFMS uses
// GridFTP to provide transport and has a plug-in API that allows other
// transport protocols to be used if desired."
package nfms

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"neesgrid/internal/gridftp"
	"neesgrid/internal/ogsi"
)

// Replica is one physical copy of a logical file.
type Replica struct {
	// Transport names the protocol ("gridftp", "local", ...).
	Transport string `json:"transport"`
	// Addr is the endpoint (host:port for gridftp; empty for local).
	Addr string `json:"addr,omitempty"`
	// Path is the transport-specific path.
	Path string `json:"path"`
}

// Entry is the catalog record of one logical file.
type Entry struct {
	Logical   string    `json:"logical"`
	Size      int64     `json:"size"`
	Replicas  []Replica `json:"replicas"`
	Owner     string    `json:"owner"`
	CreatedAt time.Time `json:"created_at"`
}

// Transport is the plug-in API: a protocol able to move files.
type Transport interface {
	// Fetch downloads the replica into localPath.
	Fetch(r Replica, localPath string) error
	// Store uploads localPath to the replica location.
	Store(localPath string, r Replica) error
}

// GridFTPTransport moves files with the gridftp client.
type GridFTPTransport struct {
	// Streams is the stripe count per transfer (default 2).
	Streams int
}

func (g *GridFTPTransport) streams() int {
	if g.Streams > 0 {
		return g.Streams
	}
	return 2
}

// Fetch downloads via gridftp.
func (g *GridFTPTransport) Fetch(r Replica, localPath string) error {
	cl := &gridftp.Client{Addr: r.Addr}
	return cl.Get(r.Path, localPath, g.streams())
}

// Store uploads via gridftp.
func (g *GridFTPTransport) Store(localPath string, r Replica) error {
	cl := &gridftp.Client{Addr: r.Addr}
	return cl.Put(localPath, r.Path, g.streams())
}

// LocalTransport copies files on the local filesystem (the degenerate
// transport used for co-located repositories and tests).
type LocalTransport struct{}

// Fetch copies the replica path to localPath.
func (LocalTransport) Fetch(r Replica, localPath string) error {
	return copyFile(r.Path, localPath)
}

// Store copies localPath to the replica path.
func (LocalTransport) Store(localPath string, r Replica) error {
	return copyFile(localPath, r.Path)
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		_ = out.Close()
		return err
	}
	return out.Close()
}

// Service is the file management service: a logical-name catalog plus
// registered transports.
type Service struct {
	mu         sync.Mutex
	entries    map[string]*Entry
	transports map[string]Transport
	clock      func() time.Time
}

// New returns a service with the gridftp and local transports registered.
func New() *Service {
	s := &Service{
		entries:    make(map[string]*Entry),
		transports: make(map[string]Transport),
		clock:      time.Now,
	}
	s.RegisterTransport("gridftp", &GridFTPTransport{})
	s.RegisterTransport("local", LocalTransport{})
	return s
}

// RegisterTransport adds (or replaces) a transport plug-in.
func (s *Service) RegisterTransport(name string, t Transport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transports[name] = t
}

// Register catalogs a logical file with its replicas.
func (s *Service) Register(owner, logical string, size int64, replicas ...Replica) (*Entry, error) {
	if logical == "" || len(replicas) == 0 {
		return nil, fmt.Errorf("nfms: logical name and at least one replica required")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[logical]; dup {
		return nil, fmt.Errorf("nfms: logical file %q already registered", logical)
	}
	for _, r := range replicas {
		if _, ok := s.transports[r.Transport]; !ok {
			return nil, fmt.Errorf("nfms: unknown transport %q", r.Transport)
		}
	}
	e := &Entry{Logical: logical, Size: size, Owner: owner,
		Replicas: append([]Replica(nil), replicas...), CreatedAt: s.clock()}
	s.entries[logical] = e
	return cloneEntry(e), nil
}

// AddReplica attaches another replica to an existing entry.
func (s *Service) AddReplica(logical string, r Replica) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[logical]
	if !ok {
		return fmt.Errorf("nfms: no logical file %q", logical)
	}
	if _, ok := s.transports[r.Transport]; !ok {
		return fmt.Errorf("nfms: unknown transport %q", r.Transport)
	}
	e.Replicas = append(e.Replicas, r)
	return nil
}

// Resolve returns the catalog entry for a logical name.
func (s *Service) Resolve(logical string) (*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[logical]
	if !ok {
		return nil, fmt.Errorf("nfms: no logical file %q", logical)
	}
	return cloneEntry(e), nil
}

// List returns all entries sorted by logical name.
func (s *Service) List() []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, cloneEntry(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Logical < out[j].Logical })
	return out
}

// Delete removes an entry; only the owner may delete.
func (s *Service) Delete(identity, logical string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[logical]
	if !ok {
		return fmt.Errorf("nfms: no logical file %q", logical)
	}
	if e.Owner != identity {
		return fmt.Errorf("nfms: %q may not delete %q", identity, logical)
	}
	delete(s.entries, logical)
	return nil
}

// Negotiate picks the replica to use for a transfer, honouring the caller's
// transport preference order (empty = any, catalog order).
func (s *Service) Negotiate(logical string, preferred ...string) (Replica, Transport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[logical]
	if !ok {
		return Replica{}, nil, fmt.Errorf("nfms: no logical file %q", logical)
	}
	if len(preferred) == 0 {
		r := e.Replicas[0]
		return r, s.transports[r.Transport], nil
	}
	for _, want := range preferred {
		for _, r := range e.Replicas {
			if r.Transport == want {
				return r, s.transports[r.Transport], nil
			}
		}
	}
	return Replica{}, nil, fmt.Errorf("nfms: no replica of %q matches transports %v", logical, preferred)
}

// Download resolves a logical file and fetches it into localPath.
func (s *Service) Download(logical, localPath string, preferred ...string) error {
	r, tr, err := s.Negotiate(logical, preferred...)
	if err != nil {
		return err
	}
	if err := tr.Fetch(r, localPath); err != nil {
		return fmt.Errorf("nfms: fetch %q via %s: %w", logical, r.Transport, err)
	}
	return nil
}

// Upload stores localPath at the replica location and registers the
// logical name.
func (s *Service) Upload(owner, logical, localPath string, r Replica) (*Entry, error) {
	s.mu.Lock()
	tr, ok := s.transports[r.Transport]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("nfms: unknown transport %q", r.Transport)
	}
	info, err := os.Stat(localPath)
	if err != nil {
		return nil, fmt.Errorf("nfms: stat %s: %w", localPath, err)
	}
	if err := tr.Store(localPath, r); err != nil {
		return nil, fmt.Errorf("nfms: store %q via %s: %w", logical, r.Transport, err)
	}
	return s.Register(owner, logical, info.Size(), r)
}

func cloneEntry(e *Entry) *Entry {
	c := *e
	c.Replicas = append([]Replica(nil), e.Replicas...)
	return &c
}

// ---------------------------------------------------------------------------
// OGSI service wrapper (catalog operations only; bulk data moves over the
// transport protocols, exactly as in NEESgrid)
// ---------------------------------------------------------------------------

type registerParams struct {
	Logical  string    `json:"logical"`
	Size     int64     `json:"size"`
	Replicas []Replica `json:"replicas"`
}

type logicalParams struct {
	Logical   string   `json:"logical"`
	Preferred []string `json:"preferred,omitempty"`
}

// NewService exposes the catalog as the "nfms" OGSI service.
func NewService(s *Service) *ogsi.Service {
	svc := ogsi.NewService("nfms")
	svc.RegisterOp("register", func(_ context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p registerParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad register params: %v", err)
		}
		e, err := s.Register(caller.Identity, p.Logical, p.Size, p.Replicas...)
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "%v", err)
		}
		return e, nil
	})
	svc.RegisterOp("resolve", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p logicalParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad resolve params: %v", err)
		}
		e, err := s.Resolve(p.Logical)
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeNotFound, "%v", err)
		}
		return e, nil
	})
	svc.RegisterOp("negotiate", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p logicalParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad negotiate params: %v", err)
		}
		r, _, err := s.Negotiate(p.Logical, p.Preferred...)
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeNotFound, "%v", err)
		}
		return r, nil
	})
	svc.RegisterOp("list", func(context.Context, ogsi.Caller, json.RawMessage) (any, error) {
		return s.List(), nil
	})
	svc.RegisterOp("delete", func(_ context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p logicalParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad delete params: %v", err)
		}
		if err := s.Delete(caller.Identity, p.Logical); err != nil {
			return nil, ogsi.Errf(ogsi.CodeDenied, "%v", err)
		}
		return map[string]bool{"deleted": true}, nil
	})
	return svc
}
