package nfms

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"neesgrid/internal/gridftp"
)

const alice = "/O=NEES/CN=alice"

func tempFile(t *testing.T, size int, seed int64) (string, []byte) {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(data)
	p := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p, data
}

func gridftpServer(t *testing.T) (string, string) {
	t.Helper()
	root := t.TempDir()
	srv, err := gridftp.NewServer(root)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, root
}

func TestRegisterResolve(t *testing.T) {
	s := New()
	e, err := s.Register(alice, "most/run1/data.csv", 100,
		Replica{Transport: "local", Path: "/tmp/x"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Owner != alice || e.Size != 100 {
		t.Fatalf("entry = %+v", e)
	}
	got, err := s.Resolve("most/run1/data.csv")
	if err != nil || got.Logical != "most/run1/data.csv" {
		t.Fatalf("resolve = %+v, %v", got, err)
	}
	if _, err := s.Resolve("missing"); err == nil {
		t.Fatal("missing resolve accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := New()
	if _, err := s.Register(alice, "", 0, Replica{Transport: "local", Path: "x"}); err == nil {
		t.Fatal("empty logical accepted")
	}
	if _, err := s.Register(alice, "x", 0); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := s.Register(alice, "x", 0, Replica{Transport: "carrier-pigeon", Path: "x"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	_, _ = s.Register(alice, "dup", 0, Replica{Transport: "local", Path: "x"})
	if _, err := s.Register(alice, "dup", 0, Replica{Transport: "local", Path: "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestNegotiatePreference(t *testing.T) {
	s := New()
	_, _ = s.Register(alice, "f", 10,
		Replica{Transport: "gridftp", Addr: "a:1", Path: "p1"},
		Replica{Transport: "local", Path: "p2"},
	)
	// No preference: catalog order.
	r, tr, err := s.Negotiate("f")
	if err != nil || r.Transport != "gridftp" || tr == nil {
		t.Fatalf("negotiate = %+v, %v", r, err)
	}
	// Prefer local.
	r, _, err = s.Negotiate("f", "local")
	if err != nil || r.Transport != "local" {
		t.Fatalf("negotiate local = %+v, %v", r, err)
	}
	// Preference not satisfiable.
	if _, _, err := s.Negotiate("f", "https"); err == nil {
		t.Fatal("unsatisfiable preference accepted")
	}
	if _, _, err := s.Negotiate("missing"); err == nil {
		t.Fatal("missing logical accepted")
	}
}

func TestUploadDownloadGridFTP(t *testing.T) {
	addr, _ := gridftpServer(t)
	s := New()
	src, data := tempFile(t, 200_000, 1)
	e, err := s.Upload(alice, "most/block1.csv", src,
		Replica{Transport: "gridftp", Addr: addr, Path: "most/block1.csv"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != 200_000 {
		t.Fatalf("size = %d", e.Size)
	}
	dst := filepath.Join(t.TempDir(), "out.bin")
	if err := s.Download("most/block1.csv", dst); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupt")
	}
}

func TestUploadLocalTransport(t *testing.T) {
	s := New()
	src, data := tempFile(t, 1000, 2)
	target := filepath.Join(t.TempDir(), "stored.bin")
	if _, err := s.Upload(alice, "f", src, Replica{Transport: "local", Path: target}); err != nil {
		t.Fatal(err)
	}
	stored, _ := os.ReadFile(target)
	if !bytes.Equal(stored, data) {
		t.Fatal("local store corrupt")
	}
	dst := filepath.Join(t.TempDir(), "back.bin")
	if err := s.Download("f", dst, "local"); err != nil {
		t.Fatal(err)
	}
	back, _ := os.ReadFile(dst)
	if !bytes.Equal(back, data) {
		t.Fatal("local fetch corrupt")
	}
}

func TestUploadErrors(t *testing.T) {
	s := New()
	if _, err := s.Upload(alice, "f", "/does/not/exist", Replica{Transport: "local", Path: "x"}); err == nil {
		t.Fatal("missing source accepted")
	}
	src, _ := tempFile(t, 10, 3)
	if _, err := s.Upload(alice, "f", src, Replica{Transport: "nope", Path: "x"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestAddReplicaAndMultiSource(t *testing.T) {
	addr1, _ := gridftpServer(t)
	addr2, _ := gridftpServer(t)
	s := New()
	src, data := tempFile(t, 50_000, 4)
	if _, err := s.Upload(alice, "f", src, Replica{Transport: "gridftp", Addr: addr1, Path: "f"}); err != nil {
		t.Fatal(err)
	}
	// Mirror to a second server and register the replica.
	cl := &gridftp.Client{Addr: addr2}
	if err := cl.Put(src, "f", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddReplica("f", Replica{Transport: "gridftp", Addr: addr2, Path: "f"}); err != nil {
		t.Fatal(err)
	}
	e, _ := s.Resolve("f")
	if len(e.Replicas) != 2 {
		t.Fatalf("replicas = %d", len(e.Replicas))
	}
	dst := filepath.Join(t.TempDir(), "d.bin")
	if err := s.Download("f", dst); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, data) {
		t.Fatal("multi-replica fetch corrupt")
	}
	if err := s.AddReplica("missing", Replica{Transport: "local", Path: "x"}); err == nil {
		t.Fatal("add replica to missing entry accepted")
	}
}

func TestDeleteAuthorization(t *testing.T) {
	s := New()
	_, _ = s.Register(alice, "f", 0, Replica{Transport: "local", Path: "x"})
	if err := s.Delete("/O=NEES/CN=bob", "f"); err == nil {
		t.Fatal("non-owner delete accepted")
	}
	if err := s.Delete(alice, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve("f"); err == nil {
		t.Fatal("deleted entry still resolvable")
	}
	if err := s.Delete(alice, "f"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestList(t *testing.T) {
	s := New()
	_, _ = s.Register(alice, "b", 0, Replica{Transport: "local", Path: "x"})
	_, _ = s.Register(alice, "a", 0, Replica{Transport: "local", Path: "y"})
	got := s.List()
	if len(got) != 2 || got[0].Logical != "a" {
		t.Fatalf("list = %v", got)
	}
}

func TestCustomTransportPlugin(t *testing.T) {
	s := New()
	calls := 0
	s.RegisterTransport("memory", transportFunc(func() { calls++ }))
	src, _ := tempFile(t, 10, 5)
	if _, err := s.Upload(alice, "f", src, Replica{Transport: "memory", Path: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Download("f", filepath.Join(t.TempDir(), "o")); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("plugin calls = %d", calls)
	}
}

type transportFunc func()

func (f transportFunc) Fetch(Replica, string) error { f(); return nil }
func (f transportFunc) Store(string, Replica) error { f(); return nil }
