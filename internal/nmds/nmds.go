// Package nmds implements the NEESgrid Metadata Service (paper §2.3):
// create/update/manage/validate metadata and metadata schemas, where — the
// property the paper singles out — "metadata schemas are represented by
// first-class objects and can be managed just like any other object". It
// also supports per-object version control and authorization.
package nmds

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"neesgrid/internal/ogsi"
)

// SchemaSchema is the ID of the built-in meta-schema: the schema that
// schema objects themselves conform to.
const SchemaSchema = "neesgrid.schema"

// Object is one metadata object (or schema — a schema is an object whose
// Schema field is SchemaSchema).
type Object struct {
	ID        string          `json:"id"`
	Schema    string          `json:"schema,omitempty"`
	Version   int             `json:"version"`
	Owner     string          `json:"owner"`
	Body      json.RawMessage `json:"body"`
	CreatedAt time.Time       `json:"created_at"`
	UpdatedAt time.Time       `json:"updated_at"`
}

// SchemaBody is the structure of a schema object's body: a field-type map
// plus required field names. Types: "string", "number", "bool", "object",
// "array".
type SchemaBody struct {
	Fields   map[string]string `json:"fields"`
	Required []string          `json:"required,omitempty"`
}

// Store is the metadata store. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	objects map[string][]*Object       // id → version history (1-based, index 0 = v1)
	writers map[string]map[string]bool // id → identities allowed to update
	clock   func() time.Time
	// authorizer, when set, may allow updates beyond owner/writer grants —
	// the hook CAS-based access control plugs into (internal/cas.Registry).
	authorizer func(identity, action, objectID string) bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		objects: make(map[string][]*Object),
		writers: make(map[string]map[string]bool),
		clock:   time.Now,
	}
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(clock func() time.Time) { s.clock = clock }

// SetAuthorizer installs a community authorization hook consulted (after
// owner and writer checks fail) with ("update", objectID). Pass the Allowed
// method of a cas.Registry to enable CAS-based access control.
func (s *Store) SetAuthorizer(authz func(identity, action, objectID string) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.authorizer = authz
}

// validate checks body against the schema object (by ID) if given.
func (s *Store) validateLocked(schemaID string, body json.RawMessage) error {
	if schemaID == "" {
		return nil
	}
	if schemaID == SchemaSchema {
		// Schemas validate against the built-in meta-schema: body must be
		// a well-formed SchemaBody with known types.
		var sb SchemaBody
		if err := json.Unmarshal(body, &sb); err != nil {
			return fmt.Errorf("nmds: malformed schema body: %w", err)
		}
		for f, typ := range sb.Fields {
			switch typ {
			case "string", "number", "bool", "object", "array":
			default:
				return fmt.Errorf("nmds: schema field %q has unknown type %q", f, typ)
			}
		}
		for _, req := range sb.Required {
			if _, ok := sb.Fields[req]; !ok {
				return fmt.Errorf("nmds: schema requires unknown field %q", req)
			}
		}
		return nil
	}
	history, ok := s.objects[schemaID]
	if !ok {
		return fmt.Errorf("nmds: no schema %q", schemaID)
	}
	schema := history[len(history)-1]
	if schema.Schema != SchemaSchema {
		return fmt.Errorf("nmds: object %q is not a schema", schemaID)
	}
	var sb SchemaBody
	if err := json.Unmarshal(schema.Body, &sb); err != nil {
		return fmt.Errorf("nmds: stored schema corrupt: %w", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("nmds: body is not a JSON object: %w", err)
	}
	for _, req := range sb.Required {
		if _, ok := doc[req]; !ok {
			return fmt.Errorf("nmds: missing required field %q", req)
		}
	}
	for name, raw := range doc {
		typ, ok := sb.Fields[name]
		if !ok {
			return fmt.Errorf("nmds: field %q not in schema %q", name, schemaID)
		}
		if err := checkType(name, typ, raw); err != nil {
			return err
		}
	}
	return nil
}

func checkType(name, typ string, raw json.RawMessage) error {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("nmds: field %q: %w", name, err)
	}
	ok := false
	switch typ {
	case "string":
		_, ok = v.(string)
	case "number":
		_, ok = v.(float64)
	case "bool":
		_, ok = v.(bool)
	case "object":
		_, ok = v.(map[string]any)
	case "array":
		_, ok = v.([]any)
	}
	if !ok {
		return fmt.Errorf("nmds: field %q is not a %s", name, typ)
	}
	return nil
}

// Create stores version 1 of a new object. For schema objects pass
// schemaID = SchemaSchema.
func (s *Store) Create(owner, id, schemaID string, body any) (*Object, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("nmds: marshal body: %w", err)
	}
	if id == "" {
		return nil, fmt.Errorf("nmds: object needs an id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.objects[id]; dup {
		return nil, fmt.Errorf("nmds: object %q already exists", id)
	}
	if err := s.validateLocked(schemaID, raw); err != nil {
		return nil, err
	}
	now := s.clock()
	obj := &Object{ID: id, Schema: schemaID, Version: 1, Owner: owner,
		Body: raw, CreatedAt: now, UpdatedAt: now}
	s.objects[id] = []*Object{obj}
	return cloneObj(obj), nil
}

// Update appends a new version; only the owner and granted writers may
// update. The body is re-validated against the object's schema.
func (s *Store) Update(identity, id string, body any) (*Object, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("nmds: marshal body: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	history, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("nmds: no object %q", id)
	}
	cur := history[len(history)-1]
	allowed := cur.Owner == identity || s.writers[id][identity]
	if !allowed && s.authorizer != nil {
		allowed = s.authorizer(identity, "update", id)
	}
	if !allowed {
		return nil, fmt.Errorf("nmds: %q may not update %q", identity, id)
	}
	if err := s.validateLocked(cur.Schema, raw); err != nil {
		return nil, err
	}
	next := &Object{ID: id, Schema: cur.Schema, Version: cur.Version + 1,
		Owner: cur.Owner, Body: raw, CreatedAt: cur.CreatedAt, UpdatedAt: s.clock()}
	s.objects[id] = append(history, next)
	return cloneObj(next), nil
}

// Grant allows another identity to update an object; only the owner may
// grant.
func (s *Store) Grant(owner, id, identity string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	history, ok := s.objects[id]
	if !ok {
		return fmt.Errorf("nmds: no object %q", id)
	}
	if history[len(history)-1].Owner != owner {
		return fmt.Errorf("nmds: only the owner may grant on %q", id)
	}
	if s.writers[id] == nil {
		s.writers[id] = make(map[string]bool)
	}
	s.writers[id][identity] = true
	return nil
}

// Get returns the latest version of an object.
func (s *Store) Get(id string) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("nmds: no object %q", id)
	}
	return cloneObj(history[len(history)-1]), nil
}

// GetVersion returns one historical version (1-based).
func (s *Store) GetVersion(id string, version int) (*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("nmds: no object %q", id)
	}
	if version < 1 || version > len(history) {
		return nil, fmt.Errorf("nmds: object %q has no version %d", id, version)
	}
	return cloneObj(history[version-1]), nil
}

// History returns all versions of an object, oldest first.
func (s *Store) History(id string) ([]*Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history, ok := s.objects[id]
	if !ok {
		return nil, fmt.Errorf("nmds: no object %q", id)
	}
	out := make([]*Object, len(history))
	for i, o := range history {
		out[i] = cloneObj(o)
	}
	return out, nil
}

// List returns the latest version of every object with the given schema
// (all objects when schemaID is empty), sorted by ID.
func (s *Store) List(schemaID string) []*Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Object
	for _, history := range s.objects {
		cur := history[len(history)-1]
		if schemaID == "" || cur.Schema == schemaID {
			out = append(out, cloneObj(cur))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Query returns the latest versions of objects (optionally restricted to a
// schema) whose bodies satisfy every field condition. Conditions compare a
// top-level body field against a value: "=" (JSON equality), "<=", ">="
// (numeric). This is what makes the §3.3 metadata useful to
// non-participants — e.g. finding the sensor blocks that cover a given
// step:
//
//	store.Query(repo.SensorDataSchema,
//	    nmds.Where("first_step", "<=", 700),
//	    nmds.Where("last_step", ">=", 700))
func (s *Store) Query(schemaID string, conds ...Condition) ([]*Object, error) {
	for _, c := range conds {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	var out []*Object
	for _, obj := range s.List(schemaID) {
		var body map[string]json.RawMessage
		if err := json.Unmarshal(obj.Body, &body); err != nil {
			continue // non-object bodies never match field conditions
		}
		ok := true
		for _, c := range conds {
			if !c.matches(body) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, obj)
		}
	}
	return out, nil
}

// Condition is one field predicate for Query.
type Condition struct {
	Field string
	Op    string // "=", "<=", ">="
	Value any
}

// Where builds a query condition.
func Where(field, op string, value any) Condition {
	return Condition{Field: field, Op: op, Value: value}
}

func (c Condition) validate() error {
	if c.Field == "" {
		return fmt.Errorf("nmds: query condition needs a field")
	}
	switch c.Op {
	case "=", "<=", ">=":
		return nil
	default:
		return fmt.Errorf("nmds: unknown query operator %q", c.Op)
	}
}

func (c Condition) matches(body map[string]json.RawMessage) bool {
	raw, ok := body[c.Field]
	if !ok {
		return false
	}
	switch c.Op {
	case "=":
		want, err := json.Marshal(c.Value)
		if err != nil {
			return false
		}
		var a, b any
		if json.Unmarshal(raw, &a) != nil || json.Unmarshal(want, &b) != nil {
			return false
		}
		return fmt.Sprint(a) == fmt.Sprint(b)
	case "<=", ">=":
		var got float64
		if json.Unmarshal(raw, &got) != nil {
			return false
		}
		want, ok := toFloat(c.Value)
		if !ok {
			return false
		}
		if c.Op == "<=" {
			return got <= want
		}
		return got >= want
	}
	return false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}

func cloneObj(o *Object) *Object {
	c := *o
	c.Body = append(json.RawMessage(nil), o.Body...)
	return &c
}

// ---------------------------------------------------------------------------
// OGSI service wrapper
// ---------------------------------------------------------------------------

type createParams struct {
	ID     string          `json:"id"`
	Schema string          `json:"schema,omitempty"`
	Body   json.RawMessage `json:"body"`
}

type updateParams struct {
	ID   string          `json:"id"`
	Body json.RawMessage `json:"body"`
}

type idParams struct {
	ID      string `json:"id"`
	Version int    `json:"version,omitempty"`
}

type grantParams struct {
	ID       string `json:"id"`
	Identity string `json:"identity"`
}

type listParams struct {
	Schema string `json:"schema,omitempty"`
}

// NewService exposes a store as the "nmds" OGSI service. Callers are
// authenticated by the container; the caller identity becomes the object
// owner.
func NewService(store *Store) *ogsi.Service {
	svc := ogsi.NewService("nmds")
	svc.RegisterOp("create", func(_ context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p createParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad create params: %v", err)
		}
		obj, err := store.Create(caller.Identity, p.ID, p.Schema, json.RawMessage(p.Body))
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "%v", err)
		}
		_ = svc.SDEs.Set("objects", store.count())
		return obj, nil
	})
	svc.RegisterOp("update", func(_ context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p updateParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad update params: %v", err)
		}
		obj, err := store.Update(caller.Identity, p.ID, json.RawMessage(p.Body))
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeDenied, "%v", err)
		}
		return obj, nil
	})
	svc.RegisterOp("get", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p idParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad get params: %v", err)
		}
		if p.Version > 0 {
			obj, err := store.GetVersion(p.ID, p.Version)
			if err != nil {
				return nil, ogsi.Errf(ogsi.CodeNotFound, "%v", err)
			}
			return obj, nil
		}
		obj, err := store.Get(p.ID)
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeNotFound, "%v", err)
		}
		return obj, nil
	})
	svc.RegisterOp("history", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p idParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad history params: %v", err)
		}
		hist, err := store.History(p.ID)
		if err != nil {
			return nil, ogsi.Errf(ogsi.CodeNotFound, "%v", err)
		}
		return hist, nil
	})
	svc.RegisterOp("list", func(_ context.Context, _ ogsi.Caller, params json.RawMessage) (any, error) {
		var p listParams
		if len(params) > 0 {
			if err := json.Unmarshal(params, &p); err != nil {
				return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad list params: %v", err)
			}
		}
		return store.List(p.Schema), nil
	})
	svc.RegisterOp("grant", func(_ context.Context, caller ogsi.Caller, params json.RawMessage) (any, error) {
		var p grantParams
		if err := json.Unmarshal(params, &p); err != nil {
			return nil, ogsi.Errf(ogsi.CodeBadRequest, "bad grant params: %v", err)
		}
		if err := store.Grant(caller.Identity, p.ID, p.Identity); err != nil {
			return nil, ogsi.Errf(ogsi.CodeDenied, "%v", err)
		}
		return map[string]bool{"granted": true}, nil
	})
	return svc
}

func (s *Store) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}
