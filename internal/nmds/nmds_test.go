package nmds

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/ogsi"
)

const alice = "/O=NEES/CN=alice"
const bob = "/O=NEES/CN=bob"

func expSchema(t *testing.T, s *Store) {
	t.Helper()
	_, err := s.Create(alice, "exp-schema", SchemaSchema, SchemaBody{
		Fields:   map[string]string{"name": "string", "mass": "number", "sites": "array", "ok": "bool", "cfg": "object"},
		Required: []string{"name"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemaIsFirstClassObject(t *testing.T) {
	s := NewStore()
	expSchema(t, s)
	obj, err := s.Get("exp-schema")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Schema != SchemaSchema || obj.Version != 1 {
		t.Fatalf("schema object = %+v", obj)
	}
	// Schemas are versioned and updatable like any object.
	_, err = s.Update(alice, "exp-schema", SchemaBody{
		Fields:   map[string]string{"name": "string"},
		Required: []string{"name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, _ = s.Get("exp-schema")
	if obj.Version != 2 {
		t.Fatalf("schema version = %d", obj.Version)
	}
}

func TestCreateValidatesAgainstSchema(t *testing.T) {
	s := NewStore()
	expSchema(t, s)
	// Valid.
	if _, err := s.Create(alice, "most", "exp-schema", map[string]any{
		"name": "MOST", "mass": 20000.0, "sites": []string{"uiuc", "cu", "ncsa"},
	}); err != nil {
		t.Fatal(err)
	}
	// Missing required field.
	if _, err := s.Create(alice, "bad1", "exp-schema", map[string]any{"mass": 1.0}); err == nil {
		t.Fatal("missing required field accepted")
	}
	// Wrong type.
	if _, err := s.Create(alice, "bad2", "exp-schema", map[string]any{"name": 7}); err == nil {
		t.Fatal("wrong type accepted")
	}
	// Unknown field.
	if _, err := s.Create(alice, "bad3", "exp-schema", map[string]any{"name": "x", "zzz": 1}); err == nil {
		t.Fatal("unknown field accepted")
	}
	// Unknown schema.
	if _, err := s.Create(alice, "bad4", "nope", map[string]any{}); err == nil {
		t.Fatal("unknown schema accepted")
	}
	// Non-schema object used as schema.
	if _, err := s.Create(alice, "bad5", "most", map[string]any{}); err == nil {
		t.Fatal("non-schema object accepted as schema")
	}
}

func TestSchemalessObjects(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(alice, "free", "", map[string]any{"anything": "goes"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadSchemaBodiesRejected(t *testing.T) {
	s := NewStore()
	if _, err := s.Create(alice, "s1", SchemaSchema, SchemaBody{
		Fields: map[string]string{"x": "quaternion"},
	}); err == nil {
		t.Fatal("unknown field type accepted")
	}
	if _, err := s.Create(alice, "s2", SchemaSchema, SchemaBody{
		Fields: map[string]string{"x": "string"}, Required: []string{"y"},
	}); err == nil {
		t.Fatal("required-but-undeclared field accepted")
	}
}

func TestVersionHistory(t *testing.T) {
	s := NewStore()
	now := time.Unix(100, 0)
	s.SetClock(func() time.Time { return now })
	_, _ = s.Create(alice, "obj", "", map[string]int{"v": 1})
	now = now.Add(time.Minute)
	_, _ = s.Update(alice, "obj", map[string]int{"v": 2})
	now = now.Add(time.Minute)
	_, _ = s.Update(alice, "obj", map[string]int{"v": 3})

	hist, err := s.History("obj")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 3 {
		t.Fatalf("history length %d", len(hist))
	}
	v2, err := s.GetVersion("obj", 2)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]int
	_ = json.Unmarshal(v2.Body, &body)
	if body["v"] != 2 {
		t.Fatalf("v2 body = %v", body)
	}
	if v2.CreatedAt != time.Unix(100, 0) {
		t.Fatal("CreatedAt should be preserved across versions")
	}
	if !v2.UpdatedAt.After(v2.CreatedAt) {
		t.Fatal("UpdatedAt should advance")
	}
	if _, err := s.GetVersion("obj", 9); err == nil {
		t.Fatal("missing version accepted")
	}
}

func TestAuthorization(t *testing.T) {
	s := NewStore()
	_, _ = s.Create(alice, "obj", "", map[string]int{"v": 1})
	if _, err := s.Update(bob, "obj", map[string]int{"v": 2}); err == nil {
		t.Fatal("non-owner update accepted")
	}
	if err := s.Grant(bob, "obj", bob); err == nil {
		t.Fatal("non-owner grant accepted")
	}
	if err := s.Grant(alice, "obj", bob); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(bob, "obj", map[string]int{"v": 2}); err != nil {
		t.Fatalf("granted writer rejected: %v", err)
	}
}

func TestListBySchema(t *testing.T) {
	s := NewStore()
	expSchema(t, s)
	_, _ = s.Create(alice, "most", "exp-schema", map[string]any{"name": "MOST"})
	_, _ = s.Create(alice, "mini", "exp-schema", map[string]any{"name": "Mini-MOST"})
	_, _ = s.Create(alice, "other", "", map[string]any{})
	got := s.List("exp-schema")
	if len(got) != 2 || got[0].ID != "mini" || got[1].ID != "most" {
		t.Fatalf("List = %v", got)
	}
	all := s.List("")
	if len(all) != 4 { // schema + 3 objects
		t.Fatalf("List all = %d", len(all))
	}
}

func TestDuplicateAndMissing(t *testing.T) {
	s := NewStore()
	_, _ = s.Create(alice, "obj", "", map[string]int{})
	if _, err := s.Create(alice, "obj", "", map[string]int{}); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := s.Create(alice, "", "", map[string]int{}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := s.Get("missing"); err == nil {
		t.Fatal("missing get accepted")
	}
	if _, err := s.Update(alice, "missing", map[string]int{}); err == nil {
		t.Fatal("missing update accepted")
	}
	if _, err := s.History("missing"); err == nil {
		t.Fatal("missing history accepted")
	}
	if err := s.Grant(alice, "missing", bob); err == nil {
		t.Fatal("missing grant accepted")
	}
}

// Remote service test over a live container.
func TestNMDSService(t *testing.T) {
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	serverCred, _ := ca.Issue("/O=NEES/CN=repo", time.Hour)
	aliceCred, _ := ca.Issue(alice, time.Hour)
	bobCred, _ := ca.Issue(bob, time.Hour)
	gm := gsi.NewGridmap(map[string]string{alice: "alice", bob: "bob"})
	cont := ogsi.NewContainer(serverCred, trust, gm)
	store := NewStore()
	cont.AddService(NewService(store))
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	}()

	ctx := context.Background()
	aliceCl := ogsi.NewClient("http://"+addr, aliceCred, trust)
	bobCl := ogsi.NewClient("http://"+addr, bobCred, trust)

	// Create via wire; owner is the caller identity.
	var obj Object
	err = aliceCl.Call(ctx, "nmds", "create", createParams{
		ID: "most", Body: json.RawMessage(`{"name":"MOST"}`),
	}, &obj)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Owner != alice {
		t.Fatalf("owner = %q", obj.Owner)
	}
	// Bob cannot update.
	err = bobCl.Call(ctx, "nmds", "update", updateParams{
		ID: "most", Body: json.RawMessage(`{"name":"X"}`),
	}, nil)
	if !ogsi.IsRemoteCode(err, ogsi.CodeDenied) {
		t.Fatalf("bob update err = %v", err)
	}
	// Grant then update.
	if err := aliceCl.Call(ctx, "nmds", "grant", grantParams{ID: "most", Identity: bob}, nil); err != nil {
		t.Fatal(err)
	}
	if err := bobCl.Call(ctx, "nmds", "update", updateParams{
		ID: "most", Body: json.RawMessage(`{"name":"MOST v2"}`),
	}, nil); err != nil {
		t.Fatal(err)
	}
	// History over the wire.
	var hist []Object
	if err := aliceCl.Call(ctx, "nmds", "history", idParams{ID: "most"}, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history = %d versions", len(hist))
	}
	// Get specific version.
	var v1 Object
	if err := aliceCl.Call(ctx, "nmds", "get", idParams{ID: "most", Version: 1}, &v1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v1.Body), "MOST") || v1.Version != 1 {
		t.Fatalf("v1 = %+v", v1)
	}
	// List.
	var all []Object
	if err := aliceCl.Call(ctx, "nmds", "list", listParams{}, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("list = %d", len(all))
	}
	// Unknown object.
	err = aliceCl.Call(ctx, "nmds", "get", idParams{ID: "nope"}, nil)
	if !ogsi.IsRemoteCode(err, ogsi.CodeNotFound) {
		t.Fatalf("get missing err = %v", err)
	}
}

func TestQueryByFields(t *testing.T) {
	s := NewStore()
	mk := func(id string, first, last int, site string) {
		t.Helper()
		if _, err := s.Create(alice, id, "", map[string]any{
			"site": site, "first_step": first, "last_step": last,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("b1", 0, 499, "uiuc")
	mk("b2", 500, 999, "uiuc")
	mk("b3", 1000, 1499, "cu")

	// Which block covers step 700?
	got, err := s.Query("",
		Where("first_step", "<=", 700),
		Where("last_step", ">=", 700))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "b2" {
		t.Fatalf("step-700 query = %v", ids(got))
	}
	// Equality on strings.
	got, _ = s.Query("", Where("site", "=", "uiuc"))
	if len(got) != 2 {
		t.Fatalf("site query = %v", ids(got))
	}
	// Combined: cu blocks past step 1200.
	got, _ = s.Query("", Where("site", "=", "cu"), Where("last_step", ">=", 1200))
	if len(got) != 1 || got[0].ID != "b3" {
		t.Fatalf("combined query = %v", ids(got))
	}
	// No match.
	got, _ = s.Query("", Where("site", "=", "lehigh"))
	if len(got) != 0 {
		t.Fatalf("phantom match: %v", ids(got))
	}
	// Missing field never matches.
	got, _ = s.Query("", Where("nonexistent", "=", 1))
	if len(got) != 0 {
		t.Fatal("missing field matched")
	}
	// Bad operator.
	if _, err := s.Query("", Where("site", "~", "x")); err == nil {
		t.Fatal("bad operator accepted")
	}
	if _, err := s.Query("", Where("", "=", "x")); err == nil {
		t.Fatal("empty field accepted")
	}
}

func ids(objs []*Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.ID
	}
	return out
}

func TestQueryRespectsSchemaFilter(t *testing.T) {
	s := NewStore()
	expSchema(t, s)
	_, _ = s.Create(alice, "in-schema", "exp-schema", map[string]any{"name": "MOST", "mass": 1.0})
	_, _ = s.Create(alice, "schemaless", "", map[string]any{"name": "MOST"})
	got, err := s.Query("exp-schema", Where("name", "=", "MOST"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "in-schema" {
		t.Fatalf("schema-filtered query = %v", ids(got))
	}
}
