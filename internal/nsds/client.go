package nsds

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client consumes a remote NSDS stream: per-sample over C() (JSON
// subscriptions) or per-batch over Batches() (binary subscriptions).
type Client struct {
	conn    net.Conn
	ch      chan Sample   // JSON mode
	batches chan []Sample // binary mode
}

// Dial connects, subscribes to channels (empty = all), and starts decoding
// samples into C(). dial overrides the dialer (fault injection); nil means
// net.Dial.
func Dial(addr string, buffer int, channels []string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	return dialSubscribe(addr, subscribeMsg{Channels: channels, Buffer: buffer}, dial)
}

// DialCatchUp is Dial plus retained-history delivery: the server sends its
// retained samples for the channels first, then the live stream — a viewer
// joining mid-experiment sees history immediately.
func DialCatchUp(addr string, buffer int, channels []string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	return dialSubscribe(addr, subscribeMsg{Channels: channels, Buffer: buffer, CatchUp: true}, dial)
}

// DialBatches subscribes with the binary wire format: whole batch frames
// are decoded into sample slices delivered on Batches(). buffer is in
// batches. This is the relay tier's upstream leg.
func DialBatches(addr string, buffer int, catchUp bool, channels []string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	return dialSubscribe(addr, subscribeMsg{Channels: channels, Buffer: buffer, CatchUp: catchUp, Format: "binary"}, dial)
}

func dialSubscribe(addr string, msg subscribeMsg, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nsds: dial %s: %w", addr, err)
	}
	buffer := msg.Buffer
	enc := json.NewEncoder(conn)
	if err := enc.Encode(msg); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("nsds: subscribe: %w", err)
	}
	c := &Client{conn: conn}
	if msg.Format == "binary" {
		if buffer < 1 {
			buffer = 64
		}
		c.batches = make(chan []Sample, buffer)
		go func() {
			defer close(c.batches)
			dec := newFrameDecoder(conn)
			for {
				samples, err := dec.Next()
				if err != nil {
					return
				}
				c.batches <- samples
			}
		}()
		return c, nil
	}
	c.ch = make(chan Sample, buffer)
	go func() {
		defer close(c.ch)
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			var s Sample
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return
			}
			c.ch <- s
		}
	}()
	return c, nil
}

// C returns the received sample stream (nil for binary subscriptions);
// closed on disconnect.
func (c *Client) C() <-chan Sample { return c.ch }

// Batches returns the received batch stream (nil for JSON subscriptions);
// closed on disconnect.
func (c *Client) Batches() <-chan []Sample { return c.batches }

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }

// CollectFor drains samples for a duration (test/diagnostic helper). It
// works in either mode: batches are flattened into the sample slice.
func (c *Client) CollectFor(d time.Duration) []Sample {
	var out []Sample
	deadline := time.After(d)
	for {
		select {
		case s, ok := <-c.ch:
			if !ok {
				return out
			}
			out = append(out, s)
		case b, ok := <-c.batches:
			if !ok {
				return out
			}
			out = append(out, b...)
		case <-deadline:
			return out
		}
	}
}
