package nsds

import (
	"context"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
)

func TestShardedHubDistributesSubscribers(t *testing.T) {
	h := NewHubShards(4)
	defer h.Close()
	if h.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", h.ShardCount())
	}
	for i := 0; i < 8; i++ {
		if _, err := h.Subscribe(4); err != nil {
			t.Fatal(err)
		}
	}
	if h.Subscribers() != 8 {
		t.Fatalf("Subscribers = %d", h.Subscribers())
	}
	for _, sh := range h.shards {
		sh.mu.Lock()
		n := len(sh.subs)
		sh.mu.Unlock()
		if n != 2 {
			t.Fatalf("shard holds %d subscribers, want 2 (round-robin)", n)
		}
	}
}

func TestBatchSubscriberReceivesSharedBatch(t *testing.T) {
	h := NewHubShards(2)
	defer h.Close()
	s1, err := h.SubscribeBatches(4, false)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.SubscribeBatches(4, false)
	if err != nil {
		t.Fatal(err)
	}
	h.PublishBatch([]Sample{{Channel: "a", T: 1}, {Channel: "b", T: 1}})
	b1 := <-s1.Batches()
	b2 := <-s2.Batches()
	if b1 != b2 {
		t.Fatal("batch subscribers should share one *Batch (encode-once)")
	}
	if len(b1.Samples) != 2 || b1.Samples[0].Seq != 1 || b1.Samples[1].Seq != 2 {
		t.Fatalf("batch = %+v", b1.Samples)
	}
}

// The per-tier pin: a slow batch-mode consumer (a wedged relay or SSE
// viewer) loses whole batches while the publish path completes without
// blocking — TestHubBestEffortDropsForSlowConsumer, batch tier edition.
func TestBatchSubscriberBestEffortDropsForSlowConsumer(t *testing.T) {
	h := NewHubShards(2)
	defer h.Close()
	slow, err := h.SubscribeBatches(1, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			h.PublishBatch([]Sample{{Channel: "a"}, {Channel: "a"}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on a slow batch subscriber")
	}
	if slow.Dropped() != 18 { // 1 batch of 2 buffered, 9×2 dropped
		t.Fatalf("dropped = %d, want 18", slow.Dropped())
	}
	b := <-slow.Batches()
	if b.Samples[0].Seq != 1 {
		t.Fatalf("kept batch starts at seq %d, want 1", b.Samples[0].Seq)
	}
}

func TestBatchSubscriberChannelFilter(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub, err := h.SubscribeBatches(4, false, "keep")
	if err != nil {
		t.Fatal(err)
	}
	h.PublishBatch([]Sample{{Channel: "skip"}, {Channel: "keep"}, {Channel: "skip"}})
	b := <-sub.Batches()
	if len(b.Samples) != 1 || b.Samples[0].Channel != "keep" {
		t.Fatalf("filtered batch = %+v", b.Samples)
	}
	// A batch with no matching channels must not arrive at all.
	h.PublishBatch([]Sample{{Channel: "skip"}})
	select {
	case b := <-sub.Batches():
		t.Fatalf("unexpected batch %+v", b.Samples)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestBatchCatchUpHistoryThenLiveExactlyOnce(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetRetention(16)
	for i := 0; i < 5; i++ {
		h.Publish(Sample{Channel: "a", T: float64(i)})
	}
	sub, err := h.SubscribeBatches(8, true)
	if err != nil {
		t.Fatal(err)
	}
	h.PublishBatch([]Sample{{Channel: "a", T: 5}})
	var seqs []uint64
	for len(seqs) < 6 {
		select {
		case b := <-sub.Batches():
			for _, s := range b.Samples {
				seqs = append(seqs, s.Seq)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out with seqs %v", seqs)
		}
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seqs = %v: want 1..6 exactly once in order", seqs)
		}
	}
}

func TestPublishForwardedPreservesSeqsAndRetains(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetRetention(8)
	sub, err := h.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	h.PublishForwarded([]Sample{{Channel: "a", Seq: 41}, {Channel: "a", Seq: 42}})
	if s := <-sub.C(); s.Seq != 41 {
		t.Fatalf("seq = %d, want upstream 41", s.Seq)
	}
	<-sub.C()
	// The local clock advanced past the forwarded seqs: a locally
	// published sample continues the upstream numbering.
	h.Publish(Sample{Channel: "a"})
	if s := <-sub.C(); s.Seq != 43 {
		t.Fatalf("local publish seq = %d, want 43", s.Seq)
	}
	// A late joiner's catch-up sees the forwarded history.
	late, err := h.SubscribeWithCatchUp(8)
	if err != nil {
		t.Fatal(err)
	}
	if s := <-late.C(); s.Seq != 41 {
		t.Fatalf("catch-up head seq = %d, want 41", s.Seq)
	}
}

func TestHubTierTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHubShards(1)
	defer h.Close()
	h.UseTelemetry(reg, "hub")
	slow, err := h.Subscribe(1)
	if err != nil {
		t.Fatal(err)
	}
	h.DropNext(1)
	h.Publish(Sample{Channel: "a"}) // forced drop
	h.PublishBatch([]Sample{{Channel: "a"}, {Channel: "a"}, {Channel: "a"}})
	snap := reg.Snapshot()
	want := map[string]int64{
		"nsds.tier.published.hub":    3,
		"nsds.tier.delivered.hub":    1,
		"nsds.tier.dropped.hub":      2,
		"nsds.tier.forced_drops.hub": 1,
		"nsds.sub.dropped":           2,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if slow.Dropped() != 2 {
		t.Errorf("sub dropped = %d, want 2", slow.Dropped())
	}
}

func TestPendingForcedDrops(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.DropNext(3)
	if n := h.PendingForcedDrops(); n != 3 {
		t.Fatalf("pending = %d, want 3", n)
	}
	h.Publish(Sample{Channel: "a"})
	if n := h.PendingForcedDrops(); n != 2 {
		t.Fatalf("pending = %d, want 2", n)
	}
}

func TestLocalRelayForwardsAndDrains(t *testing.T) {
	up := NewHub()
	defer up.Close()
	down := NewHub()
	defer down.Close()
	lr, err := NewLocalRelay(up, down, 64)
	if err != nil {
		t.Fatal(err)
	}
	viewer, err := down.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		up.PublishBatch([]Sample{{Channel: "a", T: float64(i)}})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 10; want++ {
		s := <-viewer.C()
		if s.Seq != want {
			t.Fatalf("seq = %d, want %d (order preserved through the relay)", s.Seq, want)
		}
	}
	lr.Stop()
	// The relay tier consumes forced drops scheduled against the
	// downstream hub; drain-then-read is what the chaos verdict relies on.
	if down.ForcedDrops() != 0 {
		t.Fatalf("unexpected forced drops: %d", down.ForcedDrops())
	}
}

func TestLocalRelayConsumesForcedDropsDeterministically(t *testing.T) {
	up := NewHub()
	defer up.Close()
	down := NewHub()
	defer down.Close()
	lr, err := NewLocalRelay(up, down, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Stop()
	down.DropNext(3)
	for i := 0; i < 10; i++ {
		up.PublishBatch([]Sample{{Channel: "a"}})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := lr.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if down.ForcedDrops() != 3 {
		t.Fatalf("relay-tier forced drops = %d, want 3", down.ForcedDrops())
	}
	if down.PendingForcedDrops() != 0 {
		t.Fatalf("pending forced drops = %d after drain", down.PendingForcedDrops())
	}
	if pub, _ := down.Stats(); pub != 7 {
		t.Fatalf("downstream published = %d, want 7", pub)
	}
}
