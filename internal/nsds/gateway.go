package nsds

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Gateway serves a hub to browser-class viewers over HTTP Server-Sent
// Events — the commodity-HTTP observer tier (the paper's Fig. 10 audience,
// scaled). Each connection is one batch-mode subscription with the same
// best-effort contract as every other tier: a viewer that cannot keep up
// loses batches at its own subscription and the cumulative per-connection
// drop count rides along in every event, so a dashboard can say "you have
// missed N samples" honestly.
//
//	GET /stream?channels=a,b&catchup=1&buffer=1024
//
// responds with text/event-stream; each event is
//
//	id: <last sequence in the event>
//	event: samples
//	data: {"samples":[...],"dropped":<cumulative drops>}
//
// and comment keepalives flow while the stream is idle.
type Gateway struct {
	hub *Hub

	// KeepAlive is the idle keepalive interval (default 15s).
	KeepAlive time.Duration
	// MaxBuffer caps the client-requested subscription depth in batches
	// (default 4096).
	MaxBuffer int
	// WriteTimeout bounds each event write; a viewer that cannot take an
	// event within it is disconnected. Zero means DefaultWriteTimeout;
	// negative disables.
	WriteTimeout time.Duration
}

// NewGateway wraps a hub.
func NewGateway(hub *Hub) *Gateway { return &Gateway{hub: hub} }

func (g *Gateway) keepAlive() time.Duration {
	if g.KeepAlive <= 0 {
		return 15 * time.Second
	}
	return g.KeepAlive
}

func (g *Gateway) maxBuffer() int {
	if g.MaxBuffer <= 0 {
		return 4096
	}
	return g.MaxBuffer
}

func (g *Gateway) writeTimeout() time.Duration {
	switch {
	case g.WriteTimeout < 0:
		return 0
	case g.WriteTimeout == 0:
		return DefaultWriteTimeout
	default:
		return g.WriteTimeout
	}
}

// sseEvent is one data payload: a delivered batch plus the connection's
// cumulative drop count.
type sseEvent struct {
	Samples []Sample `json:"samples"`
	Dropped uint64   `json:"dropped"`
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "nsds: GET only", http.StatusMethodNotAllowed)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "nsds: streaming unsupported", http.StatusInternalServerError)
		return
	}
	q := r.URL.Query()
	var channels []string
	for _, c := range strings.Split(q.Get("channels"), ",") {
		if c = strings.TrimSpace(c); c != "" {
			channels = append(channels, c)
		}
	}
	buffer := 1024
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "nsds: bad buffer", http.StatusBadRequest)
			return
		}
		buffer = n
	}
	if buffer > g.maxBuffer() {
		buffer = g.maxBuffer()
	}
	catchUp := q.Get("catchup") == "1" || q.Get("catchup") == "true"

	sub, err := g.hub.SubscribeBatches(buffer, catchUp, channels...)
	if err != nil {
		http.Error(w, "nsds: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer sub.Cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	rc := http.NewResponseController(w)
	wt := g.writeTimeout()
	ka := time.NewTicker(g.keepAlive())
	defer ka.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ka.C:
			if wt > 0 {
				_ = rc.SetWriteDeadline(time.Now().Add(wt))
			}
			if _, err := fmt.Fprintf(w, ": keepalive dropped=%d\n\n", sub.Dropped()); err != nil {
				return
			}
			fl.Flush()
		case b, ok := <-sub.Batches():
			if !ok {
				return
			}
			if wt > 0 {
				_ = rc.SetWriteDeadline(time.Now().Add(wt))
			}
			if err := writeSSE(w, b, sub.Dropped()); err != nil {
				return
			}
		drain:
			for {
				select {
				case nb, ok := <-sub.Batches():
					if !ok {
						fl.Flush()
						return
					}
					if err := writeSSE(w, nb, sub.Dropped()); err != nil {
						return
					}
				default:
					break drain
				}
			}
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, b *Batch, dropped uint64) error {
	payload, err := json.Marshal(sseEvent{Samples: b.Samples, Dropped: dropped})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: samples\ndata: %s\n\n",
		b.Samples[len(b.Samples)-1].Seq, payload)
	return err
}
