package nsds

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// readSSEEvents collects data payloads from an SSE stream until n events
// arrive or the deadline passes.
func readSSEEvents(t *testing.T, body *bufio.Scanner, n int, d time.Duration) []sseEvent {
	t.Helper()
	var events []sseEvent
	deadline := time.Now().Add(d)
	for len(events) < n && time.Now().Before(deadline) {
		if !body.Scan() {
			break
		}
		line := body.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev sseEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

func TestGatewayStreamsSSE(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	hub.SetRetention(16)
	hub.Publish(Sample{Channel: "a", T: 0, Value: 1})

	gw := NewGateway(hub)
	ts := httptest.NewServer(gw)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream?channels=a&catchup=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type = %q", ct)
	}
	waitFor(t, time.Second, func() bool { return hub.Subscribers() == 1 })
	hub.PublishBatch([]Sample{{Channel: "a", T: 1, Value: 2}, {Channel: "b", T: 1, Value: 3}})

	events := readSSEEvents(t, bufio.NewScanner(resp.Body), 2, 5*time.Second)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (catch-up + live)", len(events))
	}
	if len(events[0].Samples) != 1 || events[0].Samples[0].Seq != 1 {
		t.Fatalf("catch-up event = %+v", events[0])
	}
	// The live event is channel-filtered: only "a" samples.
	if len(events[1].Samples) != 1 || events[1].Samples[0].Value != 2 {
		t.Fatalf("live event = %+v", events[1])
	}
}

func TestGatewayDisconnectCancelsSubscription(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	ts := httptest.NewServer(NewGateway(hub))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return hub.Subscribers() == 1 })
	resp.Body.Close()
	waitFor(t, 5*time.Second, func() bool { return hub.Subscribers() == 0 })
}

func TestGatewayRejectsBadRequests(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	ts := httptest.NewServer(NewGateway(hub))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/stream", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stream?buffer=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad buffer status = %d", resp.StatusCode)
	}
}

// Gateway-tier best effort: a browser that stops reading drops batches at
// its own subscription; the publish path never blocks, and the drop count
// is visible in the events that do get through.
func TestGatewayBestEffortDropCounter(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	ts := httptest.NewServer(NewGateway(hub))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream?buffer=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, time.Second, func() bool { return hub.Subscribers() == 1 })

	// Flood: the connection's 1-batch buffer plus HTTP buffering cannot
	// keep up, so later batches drop. Publishing must complete promptly.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			hub.PublishBatch([]Sample{{Channel: "a", T: float64(i)}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow SSE viewer")
	}
	events := readSSEEvents(t, bufio.NewScanner(resp.Body), 3, 5*time.Second)
	if len(events) == 0 {
		t.Fatal("no events arrived")
	}
	var maxDropped uint64
	for _, ev := range events {
		if ev.Dropped > maxDropped {
			maxDropped = ev.Dropped
		}
	}
	if maxDropped == 0 {
		t.Fatal("drop counter never surfaced in events despite flooding")
	}
}
