package nsds

import (
	"context"
	"fmt"
	gort "runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// Subscription is one consumer's view of the stream. It is either
// sample-mode (C() delivers individual samples — the legacy shape every
// in-process consumer uses) or batch-mode (Batches() delivers whole
// published batches as shared immutable *Batch values — the shape the
// binary wire, the relay tier, and the SSE gateway consume).
type Subscription struct {
	id    uint64
	hub   *Hub
	shard *shard

	ch  chan Sample // sample mode; nil in batch mode
	bch chan *Batch // batch mode; nil in sample mode

	// sinceSeq is the hub sequence at registration. Live fan-out skips
	// batches at or below it: those samples either arrived via catch-up
	// history or predate the subscription — either way delivering them
	// live would duplicate or leak the past. This is what keeps
	// history-then-live exactly-once now that publishers fan out after
	// releasing the hub lock.
	sinceSeq uint64

	delivered atomic.Uint64
	dropped   atomic.Uint64
	// filter is the precomputed channel set, built once at subscribe time
	// and never mutated afterwards, so the fan-out hot path reads it without
	// a lock.
	filter map[string]bool
}

// C returns the sample channel of a sample-mode subscription (nil for
// batch mode). It is closed when the subscription is cancelled or the hub
// shuts down.
func (s *Subscription) C() <-chan Sample { return s.ch }

// Batches returns the batch channel of a batch-mode subscription (nil for
// sample mode). Closed on cancel or hub shutdown.
func (s *Subscription) Batches() <-chan *Batch { return s.bch }

// Dropped returns how many samples this subscriber lost to backpressure.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Delivered returns how many samples were enqueued to this subscriber.
// Tracked for batch-mode subscriptions (it is what LocalRelay.Drain polls
// to know the forwarder has caught up) and for catch-up history; the
// sample-mode live path skips the per-sample atomic to keep per-publish
// cost flat.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Cancel detaches the subscription.
func (s *Subscription) Cancel() {
	sh := s.shard
	sh.mu.Lock()
	_, ok := sh.subs[s.id]
	if ok {
		delete(sh.subs, s.id)
		sh.snapshot = nil
	}
	sh.mu.Unlock()
	if !ok {
		return
	}
	s.hub.subCount.Add(-1)
	// Close outside the shard lock but under the shard's fan-out write
	// lock, so no publisher is mid-send to this channel.
	sh.fanMu.Lock()
	s.closeChan()
	sh.fanMu.Unlock()
}

func (s *Subscription) closeChan() {
	if s.ch != nil {
		close(s.ch)
	} else {
		close(s.bch)
	}
}

// wants is lock-free: the filter set is immutable after construction.
func (s *Subscription) wants(channel string) bool {
	if len(s.filter) == 0 {
		return true
	}
	return s.filter[channel]
}

// offerSamples delivers a sequenced run of samples to a sample-mode
// subscriber, best-effort. Successful sends are counted only at the hub
// tier (one atomic for the whole fan-out); per-subscriber accounting on
// this path is drops only, so the ten-viewer per-sample publish stays as
// cheap as the pre-shard hub.
func (s *Subscription) offerSamples(samples []Sample) (delivered, dropped uint64) {
	for i := range samples {
		if samples[i].Seq <= s.sinceSeq || !s.wants(samples[i].Channel) {
			continue
		}
		select {
		case s.ch <- samples[i]:
			delivered++
		default:
			dropped++
		}
	}
	if dropped > 0 {
		s.dropped.Add(dropped)
	}
	return delivered, dropped
}

// offerBatch delivers one shared batch to a batch-mode subscriber. A full
// buffer drops the whole batch (its samples counted individually) — the
// batch-granular form of the same best-effort contract.
func (s *Subscription) offerBatch(b *Batch) (delivered, dropped uint64) {
	if len(b.Samples) == 0 || b.Samples[0].Seq <= s.sinceSeq {
		// Batches are sequenced atomically under the hub lock, so a batch
		// is entirely before or entirely after this subscription.
		return 0, 0
	}
	d := b
	if len(s.filter) > 0 {
		if d = b.filterTo(s.filter); d == nil {
			return 0, 0
		}
	}
	n := uint64(len(d.Samples))
	select {
	case s.bch <- d:
		s.delivered.Add(n)
		return n, 0
	default:
		s.dropped.Add(n)
		return 0, n
	}
}

// shard is one lock domain of a hub's subscriber set. Subscribers hash
// onto shards by id; each shard has its own registration lock, snapshot
// cache, and close-vs-send guard, so registration churn and fan-out in one
// shard never contend with another.
type shard struct {
	mu       sync.Mutex
	subs     map[uint64]*Subscription
	snapshot []*Subscription // cached subscriber list; nil when stale

	// fanMu guards delivery against channel close: publishers acquire the
	// read side while still holding mu — so once a subscriber has been
	// snapshotted, no cancel/Close can close its channel until the fan-out
	// finishes — while cancel/Close take the write side before closing a
	// subscription channel. Lock order is mu → fanMu; cancel/Close never
	// acquire mu while holding fanMu, so the ordering cannot deadlock.
	fanMu sync.RWMutex
}

// subscribers returns the cached subscriber list, rebuilding it only after
// a subscribe/cancel invalidated it. Callers must hold sh.mu. The returned
// slice is never mutated, so it is safe to use after unlocking.
func (sh *shard) subscribers() []*Subscription {
	if sh.snapshot == nil {
		sh.snapshot = make([]*Subscription, 0, len(sh.subs))
		for _, sub := range sh.subs {
			sh.snapshot = append(sh.snapshot, sub)
		}
	}
	return sh.snapshot
}

// tierCounters is the telemetry hookup a hub exports when it represents a
// named fan-out tier.
type tierCounters struct {
	published  *telemetry.Counter
	delivered  *telemetry.Counter
	dropped    *telemetry.Counter
	forced     *telemetry.Counter
	subDropped *telemetry.Counter
}

// Hub fan-outs published samples to subscribers, dropping for slow ones.
// Subscribers are sharded across per-core lock domains; publishers
// sequence under one short-lived lock, then deliver shard by shard.
type Hub struct {
	// mu guards the publish-side state: sequencing, retention, forced
	// drops, and the closed flag.
	mu       sync.Mutex
	nextID   uint64
	seq      uint64
	closed   bool
	retain   int
	retained map[string][]Sample // channel → last `retain` samples
	// forceDrop is the number of upcoming samples to swallow before they are
	// sequenced or delivered — the chaos engine's "drop storm". Counted
	// separately from backpressure drops: backpressure depends on consumer
	// timing, forced drops are scheduled, and only the scheduled kind may
	// appear in a deterministic chaos verdict.
	forceDrop int

	shards []*shard

	subCount    atomic.Int64
	published   atomic.Uint64
	delivered   atomic.Uint64
	dropped     atomic.Uint64
	forcedDrops atomic.Uint64

	// tracer, when set, records an "nsds.publish" child span for batch
	// publishes that arrive with a trace context (PublishBatchContext).
	// Atomic so the fan-out hot path never takes a lock to check it.
	tracer atomic.Pointer[trace.Tracer]
	// tel, when set, mirrors the hub's counters into a telemetry registry
	// under a tier name. Atomic for the same reason as tracer.
	tel atomic.Pointer[tierCounters]
}

// NewHub returns an empty hub with one subscriber shard per CPU.
func NewHub() *Hub { return NewHubShards(0) }

// NewHubShards returns an empty hub with n subscriber shards (n < 1 picks
// one per CPU, capped at 16). One shard reproduces the flat single-lock
// hub — the benchmark baseline.
func NewHubShards(n int) *Hub {
	if n < 1 {
		n = gort.GOMAXPROCS(0)
		if n > 16 {
			n = 16
		}
		if n < 1 {
			n = 1
		}
	}
	h := &Hub{shards: make([]*shard, n)}
	for i := range h.shards {
		h.shards[i] = &shard{subs: make(map[uint64]*Subscription)}
	}
	return h
}

// ShardCount returns how many subscriber shards the hub fans out across.
func (h *Hub) ShardCount() int { return len(h.shards) }

// Subscribers returns the current subscriber count across all shards.
func (h *Hub) Subscribers() int { return int(h.subCount.Load()) }

// SetRetention keeps the last n samples per channel for late joiners:
// SubscribeWithCatchUp delivers them before live samples — how a data
// viewer opened mid-experiment shows history immediately. 0 disables.
func (h *Hub) SetRetention(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.retain = n
	if n <= 0 {
		h.retained = nil
		return
	}
	if h.retained == nil {
		h.retained = make(map[string][]Sample)
	}
}

// Subscribe attaches a sample-mode consumer with the given buffer depth;
// channels filters the stream (empty = everything).
func (h *Hub) Subscribe(buffer int, channels ...string) (*Subscription, error) {
	return h.subscribe(buffer, false, false, channels)
}

// SubscribeWithCatchUp attaches a sample-mode consumer and pre-loads it
// with the retained history of its channels (best effort: history beyond
// the buffer is dropped oldest-first, like any other backpressure).
func (h *Hub) SubscribeWithCatchUp(buffer int, channels ...string) (*Subscription, error) {
	return h.subscribe(buffer, true, false, channels)
}

// SubscribeBatches attaches a batch-mode consumer: whole published batches
// arrive on Batches() as shared immutable values, one channel operation
// per batch. buffer is in batches. With catchUp the retained history of
// the selected channels arrives first, as one batch.
func (h *Hub) SubscribeBatches(buffer int, catchUp bool, channels ...string) (*Subscription, error) {
	return h.subscribe(buffer, catchUp, true, channels)
}

func (h *Hub) subscribe(buffer int, catchUp, batchMode bool, channels []string) (*Subscription, error) {
	if buffer < 1 {
		buffer = 64
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("nsds: hub closed")
	}
	sub := &Subscription{id: h.nextID, hub: h, sinceSeq: h.seq}
	h.nextID++
	if len(channels) > 0 {
		sub.filter = make(map[string]bool, len(channels))
		for _, c := range channels {
			sub.filter[c] = true
		}
	}
	if batchMode {
		sub.bch = make(chan *Batch, buffer)
	} else {
		sub.ch = make(chan Sample, buffer)
	}
	// Deliver history before registering for live samples so ordering is
	// history-then-live; the sinceSeq guard keeps live fan-out from
	// re-delivering anything at or below the registration point.
	if catchUp {
		var history []Sample
		for ch, samples := range h.retained {
			if len(sub.filter) == 0 || sub.filter[ch] {
				history = append(history, samples...)
			}
		}
		sortBySeq(history)
		if batchMode {
			if len(history) > 0 {
				select {
				case sub.bch <- &Batch{Samples: history}:
					sub.delivered.Add(uint64(len(history)))
				default:
					sub.dropped.Add(uint64(len(history)))
					h.noteDropped(uint64(len(history)))
				}
			}
		} else {
			for _, s := range history {
				select {
				case sub.ch <- s:
					sub.delivered.Add(1)
				default:
					sub.dropped.Add(1)
					h.noteDropped(1)
				}
			}
		}
	}
	sh := h.shards[sub.id%uint64(len(h.shards))]
	sub.shard = sh
	sh.mu.Lock()
	sh.subs[sub.id] = sub
	sh.snapshot = nil
	sh.mu.Unlock()
	h.subCount.Add(1)
	return sub, nil
}

// DropNext makes the hub swallow the next n published samples before they
// are sequenced, retained, or delivered — as if the streaming link ate
// them. Use it to emulate NSDS loss on a deterministic schedule; forced
// drops are counted by ForcedDrops, not in the backpressure total.
func (h *Hub) DropNext(n int) {
	if n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.forceDrop += n
}

// ForcedDrops returns how many samples DropNext has swallowed so far.
func (h *Hub) ForcedDrops() uint64 { return h.forcedDrops.Load() }

// PendingForcedDrops returns how many scheduled drops are still armed but
// not yet consumed — the chaos engine drains relays until this settles
// before reading a verdict.
func (h *Hub) PendingForcedDrops() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.forceDrop
}

// UseTracer wires distributed tracing into the hub: batch publishes that
// carry a trace context (PublishBatchContext) record an "nsds.publish"
// child span with batch size, subscriber count, and drops. Nil disables.
func (h *Hub) UseTracer(t *trace.Tracer) { h.tracer.Store(t) }

// UseTelemetry exports the hub's flow counters into reg under a fan-out
// tier name (e.g. "hub", "relay"): nsds.tier.{published,delivered,
// dropped,forced_drops}.<tier>, plus the cross-tier per-subscriber
// aggregate nsds.sub.dropped. A nil registry disables the export.
func (h *Hub) UseTelemetry(reg *telemetry.Registry, tier string) {
	if reg == nil {
		h.tel.Store(nil)
		return
	}
	if tier == "" {
		tier = "hub"
	}
	h.tel.Store(&tierCounters{
		published:  reg.Counter("nsds.tier.published." + tier),
		delivered:  reg.Counter("nsds.tier.delivered." + tier),
		dropped:    reg.Counter("nsds.tier.dropped." + tier),
		forced:     reg.Counter("nsds.tier.forced_drops." + tier),
		subDropped: reg.Counter("nsds.sub.dropped"),
	})
}

func (h *Hub) notePublished(n uint64) {
	h.published.Add(n)
	if t := h.tel.Load(); t != nil {
		t.published.Add(int64(n))
	}
}

func (h *Hub) noteDelivered(n uint64) {
	if n == 0 {
		return
	}
	h.delivered.Add(n)
	if t := h.tel.Load(); t != nil {
		t.delivered.Add(int64(n))
	}
}

func (h *Hub) noteDropped(n uint64) {
	if n == 0 {
		return
	}
	h.dropped.Add(n)
	if t := h.tel.Load(); t != nil {
		t.dropped.Add(int64(n))
		t.subDropped.Add(int64(n))
	}
}

func (h *Hub) noteForced(n uint64) {
	if n == 0 {
		return
	}
	h.forcedDrops.Add(n)
	if t := h.tel.Load(); t != nil {
		t.forced.Add(int64(n))
	}
}

// Publish assigns a sequence number and delivers the sample best-effort.
func (h *Hub) Publish(s Sample) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.forceDrop > 0 {
		h.forceDrop--
		h.mu.Unlock()
		h.noteForced(1)
		return
	}
	h.seq++
	s.Seq = h.seq
	h.notePublished(1)
	if h.retain > 0 {
		h.retainLocked(s)
	}
	h.mu.Unlock()

	var one [1]Sample
	one[0] = s
	h.fanOut(one[:])
}

// PublishBatch assigns consecutive sequence numbers to a burst of samples
// and fans them out with one sequencing-lock acquisition for the whole
// batch — the shape a DAQ scan produces (every channel sampled at one
// instant). The batch is delivered subscriber-major so each consumer sees
// the batch in order; samples mutate in place (their Seq fields are filled
// in) and the slice is released before the call returns — callers may
// reuse it.
func (h *Hub) PublishBatch(samples []Sample) {
	h.PublishBatchContext(context.Background(), samples)
}

// PublishBatchContext is PublishBatch with trace propagation: when the
// hub has a tracer and ctx carries a span (the coordinator's step span,
// via OnStepCtx → daq.ScanContext), the fan-out is recorded as an
// "nsds.publish" child span — the DAQ-readback leg of the paper's step
// breakdown. Without a tracer or without a parent span the path is
// byte-for-byte the old PublishBatch.
func (h *Hub) PublishBatchContext(ctx context.Context, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	var span *trace.Span
	if tr := h.tracer.Load(); tr != nil && trace.SpanContextFromContext(ctx).IsValid() {
		_, span = tr.Start(ctx, "nsds.publish", trace.KindInternal)
		span.SetAttr("samples", strconv.Itoa(len(samples)))
		droppedBefore := h.dropped.Load()
		defer func() {
			span.SetAttr("dropped", strconv.FormatUint(h.dropped.Load()-droppedBefore, 10))
			span.End()
		}()
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.forceDrop > 0 {
		// A drop storm eats the leading samples of the batch before they are
		// sequenced — survivors keep consecutive sequence numbers.
		k := h.forceDrop
		if k > len(samples) {
			k = len(samples)
		}
		h.forceDrop -= k
		h.noteForced(uint64(k))
		samples = samples[k:]
		if len(samples) == 0 {
			h.mu.Unlock()
			return
		}
	}
	for i := range samples {
		h.seq++
		samples[i].Seq = h.seq
		if h.retain > 0 {
			h.retainLocked(samples[i])
		}
	}
	h.notePublished(uint64(len(samples)))
	h.mu.Unlock()

	if span != nil {
		span.SetAttr("subscribers", strconv.FormatInt(h.subCount.Load(), 10))
	}
	h.fanOut(samples)
}

// PublishForwarded ingests samples already sequenced by an upstream hub —
// the relay tier's publish path. Upstream sequence numbers are preserved
// (so viewers across the tree agree on sample identity and ordering) and
// the local sequence clock advances to the highest seen. Forced drops
// (DropNext) apply here exactly as they do to first-hand publishes.
func (h *Hub) PublishForwarded(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.forceDrop > 0 {
		k := h.forceDrop
		if k > len(samples) {
			k = len(samples)
		}
		h.forceDrop -= k
		h.noteForced(uint64(k))
		samples = samples[k:]
		if len(samples) == 0 {
			h.mu.Unlock()
			return
		}
	}
	for i := range samples {
		if samples[i].Seq > h.seq {
			h.seq = samples[i].Seq
		}
		if h.retain > 0 {
			h.retainLocked(samples[i])
		}
	}
	h.notePublished(uint64(len(samples)))
	h.mu.Unlock()

	h.fanOut(samples)
}

// fanOut delivers one sequenced batch to every subscriber, shard by shard,
// best-effort. The shared *Batch for batch-mode subscribers is built
// lazily, so a hub with only sample-mode subscribers never allocates one.
func (h *Hub) fanOut(samples []Sample) {
	var shared *Batch
	var delivered, dropped uint64
	for _, sh := range h.shards {
		sh.mu.Lock()
		subs := sh.subscribers()
		if len(subs) == 0 {
			sh.mu.Unlock()
			continue
		}
		// Take the shard's fan-out read lock before releasing its
		// registration lock: a cancel/Close that sneaks into the gap would
		// otherwise complete its channel close and a send to a snapshotted
		// subscriber would panic.
		sh.fanMu.RLock()
		sh.mu.Unlock()
		for _, sub := range subs {
			var d, dr uint64
			if sub.bch != nil {
				if shared == nil {
					shared = newBatch(samples)
				}
				d, dr = sub.offerBatch(shared)
			} else {
				d, dr = sub.offerSamples(samples)
			}
			delivered += d
			dropped += dr
		}
		sh.fanMu.RUnlock()
	}
	h.noteDelivered(delivered)
	h.noteDropped(dropped)
}

// retainLocked appends a sample to its channel's retention ring. Callers
// must hold h.mu and have checked h.retain > 0.
func (h *Hub) retainLocked(s Sample) {
	kept := append(h.retained[s.Channel], s)
	if len(kept) > h.retain {
		kept = kept[len(kept)-h.retain:]
	}
	h.retained[s.Channel] = kept
}

// Stats returns (published, dropped) totals.
func (h *Hub) Stats() (published, dropped uint64) {
	return h.published.Load(), h.dropped.Load()
}

// Delivered returns the total samples enqueued to subscribers — the
// numerator of the fan-out benchmarks' deliveries/s.
func (h *Hub) Delivered() uint64 { return h.delivered.Load() }

// Close shuts the hub down, closing every subscription channel.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()

	for _, sh := range h.shards {
		sh.mu.Lock()
		closing := make([]*Subscription, 0, len(sh.subs))
		for id, sub := range sh.subs {
			delete(sh.subs, id)
			closing = append(closing, sub)
		}
		sh.snapshot = nil
		sh.mu.Unlock()

		sh.fanMu.Lock()
		for _, sub := range closing {
			sub.closeChan()
		}
		sh.fanMu.Unlock()
		h.subCount.Add(-int64(len(closing)))
	}
}
