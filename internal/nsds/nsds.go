// Package nsds implements the NEESgrid Streaming Data Service (paper §2.2,
// [13]): a best-effort stream of real-time data from the data acquisition
// system to remote observers. Best-effort is the load-bearing property —
// "earthquake engineering experiments often produce more data than can be
// streamed reliably in real-time" — so a slow subscriber loses samples
// rather than stalling the experiment; the complete record lands in the
// repository instead.
//
// The package is a multi-tier fan-out system (DESIGN.md §5g). A Hub shards
// its subscribers across per-core lock domains so publish cost stops
// scaling with the subscriber count on one mutex; a Relay subscribes to an
// upstream hub over a single connection and re-fans out through its own
// local hub, so hubs fan out to hubs in a tree instead of one flat hub
// serving every viewer; the TCP Server speaks either newline-delimited
// JSON (legacy) or a length-prefixed binary frame format that encodes each
// published batch once and writes the same bytes to every connection; and
// the Gateway serves the stream to browser-class viewers over HTTP
// Server-Sent Events. Every tier keeps the same drop semantics: a slow
// consumer loses data, the tier above it never blocks.
package nsds

import (
	"sync"
)

// Sample is one measurement frame.
type Sample struct {
	// Channel is the sensor/channel name (e.g. "uiuc.lvdt1").
	Channel string `json:"channel"`
	// Seq is the monotonically increasing sequence number assigned by the
	// hub at publication.
	Seq uint64 `json:"seq"`
	// T is the experiment time (s).
	T float64 `json:"t"`
	// Value is the reading in channel units.
	Value float64 `json:"value"`
}

// Batch is an immutable group of samples published together (one DAQ scan)
// and delivered to batch-mode subscribers as a single unit: one channel
// operation per subscriber per batch instead of one per sample. Its wire
// frame is encoded lazily and exactly once, then shared by every
// connection that writes it (encode-once/write-many).
type Batch struct {
	// Samples is in publication (sequence) order. Shared between every
	// subscriber of the batch — callers must not mutate it.
	Samples []Sample

	frameOnce sync.Once
	frame     []byte
}

// newBatch copies samples into an immutable batch. The copy is what makes
// sharing safe: PublishBatch callers may reuse their slice after it
// returns.
func newBatch(samples []Sample) *Batch {
	return &Batch{Samples: append(make([]Sample, 0, len(samples)), samples...)}
}

// filterTo derives the sub-batch a channel filter selects, or nil when the
// filter matches nothing. The derived batch has its own wire frame.
func (b *Batch) filterTo(filter map[string]bool) *Batch {
	n := 0
	for i := range b.Samples {
		if filter[b.Samples[i].Channel] {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if n == len(b.Samples) {
		return b
	}
	out := make([]Sample, 0, n)
	for i := range b.Samples {
		if filter[b.Samples[i].Channel] {
			out = append(out, b.Samples[i])
		}
	}
	return &Batch{Samples: out}
}

func sortBySeq(ss []Sample) {
	// Insertion sort: history sets are small (retention × channels).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Seq < ss[j-1].Seq; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
