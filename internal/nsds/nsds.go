// Package nsds implements the NEESgrid Streaming Data Service (paper §2.2,
// [13]): a best-effort stream of real-time data from the data acquisition
// system to remote observers. Best-effort is the load-bearing property —
// "earthquake engineering experiments often produce more data than can be
// streamed reliably in real-time" — so a slow subscriber loses samples
// rather than stalling the experiment; the complete record lands in the
// repository instead.
package nsds

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"neesgrid/internal/trace"
)

// Sample is one measurement frame.
type Sample struct {
	// Channel is the sensor/channel name (e.g. "uiuc.lvdt1").
	Channel string `json:"channel"`
	// Seq is the monotonically increasing sequence number assigned by the
	// hub at publication.
	Seq uint64 `json:"seq"`
	// T is the experiment time (s).
	T float64 `json:"t"`
	// Value is the reading in channel units.
	Value float64 `json:"value"`
}

// Subscription is one consumer's view of the stream.
type Subscription struct {
	id  int
	hub *Hub
	ch  chan Sample

	dropped atomic.Uint64
	// filter is the precomputed channel set, built once at subscribe time
	// and never mutated afterwards, so the fan-out hot path reads it without
	// a lock.
	filter map[string]bool
}

// C returns the sample channel. It is closed when the subscription is
// cancelled or the hub shuts down.
func (s *Subscription) C() <-chan Sample { return s.ch }

// Dropped returns how many samples this subscriber lost to backpressure.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Cancel detaches the subscription.
func (s *Subscription) Cancel() { s.hub.cancel(s.id) }

// wants is lock-free: the filter set is immutable after construction.
func (s *Subscription) wants(channel string) bool {
	if len(s.filter) == 0 {
		return true
	}
	return s.filter[channel]
}

// Hub fan-outs published samples to subscribers, dropping for slow ones.
type Hub struct {
	mu       sync.Mutex
	subs     map[int]*Subscription
	snapshot []*Subscription // cached subscriber list; nil when stale
	nextID   int
	seq      uint64
	closed   bool
	retain   int
	retained map[string][]Sample // channel → last `retain` samples
	// forceDrop is the number of upcoming samples to swallow before they are
	// sequenced or delivered — the chaos engine's "drop storm". Counted
	// separately from backpressure drops: backpressure depends on consumer
	// timing, forced drops are scheduled, and only the scheduled kind may
	// appear in a deterministic chaos verdict.
	forceDrop int

	// fanMu guards delivery against channel close: publishers acquire the
	// read side while still holding mu — so once a subscriber has been
	// snapshotted, no cancel/Close can close its channel until the fan-out
	// finishes — while cancel/Close take the write side before closing a
	// subscription channel. Lock order is mu → fanMu; cancel/Close never
	// acquire mu while holding fanMu, so the ordering cannot deadlock.
	fanMu sync.RWMutex

	published   atomic.Uint64
	dropped     atomic.Uint64
	forcedDrops atomic.Uint64

	// tracer, when set, records an "nsds.publish" child span for batch
	// publishes that arrive with a trace context (PublishBatchContext).
	// Atomic so the fan-out hot path never takes a lock to check it.
	tracer atomic.Pointer[trace.Tracer]
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[int]*Subscription)}
}

// SetRetention keeps the last n samples per channel for late joiners:
// SubscribeWithCatchUp delivers them before live samples — how a data
// viewer opened mid-experiment shows history immediately. 0 disables.
func (h *Hub) SetRetention(n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.retain = n
	if n <= 0 {
		h.retained = nil
		return
	}
	if h.retained == nil {
		h.retained = make(map[string][]Sample)
	}
}

// SubscribeWithCatchUp attaches a consumer and pre-loads it with the
// retained history of its channels (best effort: history beyond the buffer
// is dropped oldest-first, like any other backpressure).
func (h *Hub) SubscribeWithCatchUp(buffer int, channels ...string) (*Subscription, error) {
	if buffer < 1 {
		buffer = 64
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("nsds: hub closed")
	}
	sub := &Subscription{id: h.nextID, hub: h, ch: make(chan Sample, buffer)}
	if len(channels) > 0 {
		sub.filter = make(map[string]bool, len(channels))
		for _, c := range channels {
			sub.filter[c] = true
		}
	}
	// Deliver history before registering for live samples so ordering is
	// history-then-live with no interleaving gap.
	var history []Sample
	for ch, samples := range h.retained {
		if len(sub.filter) == 0 || sub.filter[ch] {
			history = append(history, samples...)
		}
	}
	sortBySeq(history)
	for _, s := range history {
		select {
		case sub.ch <- s:
		default:
			sub.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.subs[h.nextID] = sub
	h.nextID++
	h.snapshot = nil
	return sub, nil
}

func sortBySeq(ss []Sample) {
	// Insertion sort: history sets are small (retention × channels).
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Seq < ss[j-1].Seq; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Subscribe attaches a consumer with the given buffer depth; channels
// filters the stream (empty = everything).
func (h *Hub) Subscribe(buffer int, channels ...string) (*Subscription, error) {
	if buffer < 1 {
		buffer = 64
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("nsds: hub closed")
	}
	sub := &Subscription{id: h.nextID, hub: h, ch: make(chan Sample, buffer)}
	if len(channels) > 0 {
		sub.filter = make(map[string]bool, len(channels))
		for _, c := range channels {
			sub.filter[c] = true
		}
	}
	h.subs[h.nextID] = sub
	h.nextID++
	h.snapshot = nil
	return sub, nil
}

func (h *Hub) cancel(id int) {
	h.mu.Lock()
	sub, ok := h.subs[id]
	if ok {
		delete(h.subs, id)
		h.snapshot = nil
	}
	h.mu.Unlock()
	if !ok {
		return
	}
	// Close outside mu but under the fan-out write lock, so no publisher is
	// mid-send to this channel.
	h.fanMu.Lock()
	close(sub.ch)
	h.fanMu.Unlock()
}

// subscribers returns the cached subscriber list, rebuilding it only after
// a subscribe/cancel invalidated it. Callers must hold h.mu. The returned
// slice is never mutated, so it is safe to use after unlocking.
func (h *Hub) subscribers() []*Subscription {
	if h.snapshot == nil {
		h.snapshot = make([]*Subscription, 0, len(h.subs))
		for _, sub := range h.subs {
			h.snapshot = append(h.snapshot, sub)
		}
	}
	return h.snapshot
}

// deliver offers one sample to one subscriber, dropping on backpressure.
func (h *Hub) deliver(sub *Subscription, s Sample) {
	if !sub.wants(s.Channel) {
		return
	}
	select {
	case sub.ch <- s:
	default:
		sub.dropped.Add(1)
		h.dropped.Add(1)
	}
}

// DropNext makes the hub swallow the next n published samples before they
// are sequenced, retained, or delivered — as if the streaming link ate
// them. Use it to emulate NSDS loss on a deterministic schedule; forced
// drops are counted by ForcedDrops, not in the backpressure total.
func (h *Hub) DropNext(n int) {
	if n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.forceDrop += n
}

// ForcedDrops returns how many samples DropNext has swallowed so far.
func (h *Hub) ForcedDrops() uint64 { return h.forcedDrops.Load() }

// Publish assigns a sequence number and delivers the sample best-effort.
func (h *Hub) Publish(s Sample) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.forceDrop > 0 {
		h.forceDrop--
		h.mu.Unlock()
		h.forcedDrops.Add(1)
		return
	}
	h.seq++
	s.Seq = h.seq
	h.published.Add(1)
	if h.retain > 0 {
		h.retainLocked(s)
	}
	subs := h.subscribers()
	// Take the fan-out read lock before releasing mu: a cancel/Close that
	// sneaks into the gap would otherwise complete its channel close and a
	// send to the snapshotted subscriber would panic.
	h.fanMu.RLock()
	h.mu.Unlock()

	for _, sub := range subs {
		h.deliver(sub, s)
	}
	h.fanMu.RUnlock()
}

// UseTracer wires distributed tracing into the hub: batch publishes that
// carry a trace context (PublishBatchContext) record an "nsds.publish"
// child span with batch size, subscriber count, and drops. Nil disables.
func (h *Hub) UseTracer(t *trace.Tracer) { h.tracer.Store(t) }

// PublishBatch assigns consecutive sequence numbers to a burst of samples
// and fans them out with one lock acquisition for the whole batch — the
// shape a DAQ scan produces (every channel sampled at one instant). The
// batch is delivered subscriber-major so each consumer sees the batch in
// order; samples mutate in place (their Seq fields are filled in).
func (h *Hub) PublishBatch(samples []Sample) {
	h.PublishBatchContext(context.Background(), samples)
}

// PublishBatchContext is PublishBatch with trace propagation: when the
// hub has a tracer and ctx carries a span (the coordinator's step span,
// via OnStepCtx → daq.ScanContext), the fan-out is recorded as an
// "nsds.publish" child span — the DAQ-readback leg of the paper's step
// breakdown. Without a tracer or without a parent span the path is
// byte-for-byte the old PublishBatch.
func (h *Hub) PublishBatchContext(ctx context.Context, samples []Sample) {
	if len(samples) == 0 {
		return
	}
	var span *trace.Span
	if tr := h.tracer.Load(); tr != nil && trace.SpanContextFromContext(ctx).IsValid() {
		_, span = tr.Start(ctx, "nsds.publish", trace.KindInternal)
		span.SetAttr("samples", strconv.Itoa(len(samples)))
		droppedBefore := h.dropped.Load()
		defer func() {
			span.SetAttr("dropped", strconv.FormatUint(h.dropped.Load()-droppedBefore, 10))
			span.End()
		}()
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	if h.forceDrop > 0 {
		// A drop storm eats the leading samples of the batch before they are
		// sequenced — survivors keep consecutive sequence numbers.
		k := h.forceDrop
		if k > len(samples) {
			k = len(samples)
		}
		h.forceDrop -= k
		h.forcedDrops.Add(uint64(k))
		samples = samples[k:]
		if len(samples) == 0 {
			h.mu.Unlock()
			return
		}
	}
	for i := range samples {
		h.seq++
		samples[i].Seq = h.seq
		if h.retain > 0 {
			h.retainLocked(samples[i])
		}
	}
	h.published.Add(uint64(len(samples)))
	subs := h.subscribers()
	if span != nil {
		span.SetAttr("subscribers", strconv.Itoa(len(subs)))
	}
	// As in Publish: hold fanMu before dropping mu so no snapshotted
	// subscriber's channel can be closed mid-batch.
	h.fanMu.RLock()
	h.mu.Unlock()

	for _, sub := range subs {
		for i := range samples {
			h.deliver(sub, samples[i])
		}
	}
	h.fanMu.RUnlock()
}

// retainLocked appends a sample to its channel's retention ring. Callers
// must hold h.mu and have checked h.retain > 0.
func (h *Hub) retainLocked(s Sample) {
	kept := append(h.retained[s.Channel], s)
	if len(kept) > h.retain {
		kept = kept[len(kept)-h.retain:]
	}
	h.retained[s.Channel] = kept
}

// Stats returns (published, dropped) totals.
func (h *Hub) Stats() (published, dropped uint64) {
	return h.published.Load(), h.dropped.Load()
}

// Close shuts the hub down, closing every subscription channel.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.snapshot = nil
	closing := make([]*Subscription, 0, len(h.subs))
	for id, sub := range h.subs {
		delete(h.subs, id)
		closing = append(closing, sub)
	}
	h.mu.Unlock()

	h.fanMu.Lock()
	for _, sub := range closing {
		close(sub.ch)
	}
	h.fanMu.Unlock()
}

// ---------------------------------------------------------------------------
// TCP service
// ---------------------------------------------------------------------------

// subscribeMsg is the first line a TCP client sends.
type subscribeMsg struct {
	Channels []string `json:"channels"`
	Buffer   int      `json:"buffer"`
	CatchUp  bool     `json:"catch_up,omitempty"`
}

// Server exposes a hub over TCP: the client sends one JSON subscribe line,
// then receives newline-delimited JSON samples until it disconnects.
type Server struct {
	hub *Hub

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	stopped bool
	done    sync.WaitGroup // outstanding serve goroutines
}

// NewServer wraps a hub.
func NewServer(hub *Hub) *Server { return &Server{hub: hub, conns: make(map[net.Conn]struct{})} }

// Start listens on addr; returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("nsds: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.stopped = false
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				_ = conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.done.Add(1)
			s.mu.Unlock()
			go s.serve(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and severs every subscriber connection
// immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	s.stopped = true
	err := error(nil)
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	return err
}

// Stop is the graceful form of Close for the runtime supervisor: it stops
// the listener, severs subscribers, and waits (bounded by ctx) for the
// per-connection goroutines to finish flushing.
func (s *Server) Stop(ctx context.Context) error {
	err := s.Close()
	idle := make(chan struct{})
	go func() { s.done.Wait(); close(idle) }()
	select {
	case <-idle:
		return err
	case <-ctx.Done():
		return fmt.Errorf("nsds: subscriber connections still draining: %w", ctx.Err())
	}
}

// Healthy reports nil while the listener is accepting subscribers.
func (s *Server) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return fmt.Errorf("nsds: server not started")
	}
	if s.stopped {
		return fmt.Errorf("nsds: server stopped")
	}
	return nil
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.done.Done()
	}()
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return
	}
	var msg subscribeMsg
	if err := json.Unmarshal(sc.Bytes(), &msg); err != nil {
		return
	}
	var sub *Subscription
	var err error
	if msg.CatchUp {
		sub, err = s.hub.SubscribeWithCatchUp(msg.Buffer, msg.Channels...)
	} else {
		sub, err = s.hub.Subscribe(msg.Buffer, msg.Channels...)
	}
	if err != nil {
		return
	}
	defer sub.Cancel()
	// Buffer writes and flush only when the subscription runs dry: a burst
	// of samples coalesces into one syscall instead of one write per sample,
	// while an idle stream still delivers every sample promptly.
	bw := bufio.NewWriterSize(conn, 32<<10)
	enc := json.NewEncoder(bw)
	for sample := range sub.C() {
		if err := enc.Encode(sample); err != nil {
			return
		}
	drain:
		for {
			select {
			case s, ok := <-sub.C():
				if !ok {
					_ = bw.Flush()
					return
				}
				if err := enc.Encode(s); err != nil {
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
	_ = bw.Flush()
}

// Client consumes a remote NSDS stream.
type Client struct {
	conn net.Conn
	ch   chan Sample
}

// Dial connects, subscribes to channels (empty = all), and starts decoding
// samples into C(). dial overrides the dialer (fault injection); nil means
// net.Dial.
func Dial(addr string, buffer int, channels []string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	return dialSubscribe(addr, subscribeMsg{Channels: channels, Buffer: buffer}, dial)
}

// DialCatchUp is Dial plus retained-history delivery: the server sends its
// retained samples for the channels first, then the live stream — a viewer
// joining mid-experiment sees history immediately.
func DialCatchUp(addr string, buffer int, channels []string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	return dialSubscribe(addr, subscribeMsg{Channels: channels, Buffer: buffer, CatchUp: true}, dial)
}

func dialSubscribe(addr string, msg subscribeMsg, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("nsds: dial %s: %w", addr, err)
	}
	buffer := msg.Buffer
	enc := json.NewEncoder(conn)
	if err := enc.Encode(msg); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("nsds: subscribe: %w", err)
	}
	c := &Client{conn: conn, ch: make(chan Sample, buffer)}
	go func() {
		defer close(c.ch)
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			var s Sample
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				return
			}
			c.ch <- s
		}
	}()
	return c, nil
}

// C returns the received sample stream; closed on disconnect.
func (c *Client) C() <-chan Sample { return c.ch }

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }

// CollectFor drains samples for a duration (test/diagnostic helper).
func (c *Client) CollectFor(d time.Duration) []Sample {
	var out []Sample
	deadline := time.After(d)
	for {
		select {
		case s, ok := <-c.ch:
			if !ok {
				return out
			}
			out = append(out, s)
		case <-deadline:
			return out
		}
	}
}
