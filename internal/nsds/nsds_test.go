package nsds

import (
	"sync"
	"testing"
	"time"
)

func TestHubPublishSubscribe(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub, err := h.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish(Sample{Channel: "a", T: 0.01, Value: 1.5})
	select {
	case s := <-sub.C():
		if s.Channel != "a" || s.Value != 1.5 || s.Seq != 1 {
			t.Fatalf("sample = %+v", s)
		}
	case <-time.After(time.Second):
		t.Fatal("no sample delivered")
	}
}

func TestHubChannelFilter(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub, _ := h.Subscribe(8, "wanted")
	h.Publish(Sample{Channel: "ignored", Value: 1})
	h.Publish(Sample{Channel: "wanted", Value: 2})
	s := <-sub.C()
	if s.Channel != "wanted" {
		t.Fatalf("filter leaked %q", s.Channel)
	}
	select {
	case s := <-sub.C():
		t.Fatalf("unexpected extra sample %+v", s)
	default:
	}
}

func TestHubBestEffortDropsForSlowConsumer(t *testing.T) {
	h := NewHub()
	defer h.Close()
	slow, _ := h.Subscribe(2)
	fast, _ := h.Subscribe(100)
	for i := 0; i < 50; i++ {
		h.Publish(Sample{Channel: "c", Value: float64(i)})
	}
	if slow.Dropped() == 0 {
		t.Fatal("slow consumer should have dropped samples")
	}
	if fast.Dropped() != 0 {
		t.Fatal("fast consumer should not drop")
	}
	// Fast consumer got everything in order.
	for i := 0; i < 50; i++ {
		s := <-fast.C()
		if s.Value != float64(i) {
			t.Fatalf("fast consumer sample %d = %g", i, s.Value)
		}
	}
	pub, dropped := h.Stats()
	if pub != 50 || dropped == 0 {
		t.Fatalf("stats = %d published, %d dropped", pub, dropped)
	}
}

func TestSubscriptionCancel(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub, _ := h.Subscribe(1)
	sub.Cancel()
	if _, ok := <-sub.C(); ok {
		t.Fatal("cancelled subscription channel should be closed")
	}
	h.Publish(Sample{Channel: "c"}) // must not panic
}

func TestHubClose(t *testing.T) {
	h := NewHub()
	sub, _ := h.Subscribe(1)
	h.Close()
	if _, ok := <-sub.C(); ok {
		t.Fatal("close should close subscriptions")
	}
	if _, err := h.Subscribe(1); err == nil {
		t.Fatal("subscribe after close should fail")
	}
	h.Publish(Sample{Channel: "c"}) // no-op, no panic
	h.Close()                       // idempotent
}

func TestServerClientStream(t *testing.T) {
	h := NewHub()
	defer h.Close()
	srv := NewServer(h)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr, 64, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Give the server a moment to register the subscription.
	deadline := time.Now().Add(time.Second)
	for {
		h.Publish(Sample{Channel: "uiuc.lvdt1", T: 0.01, Value: 3.25})
		select {
		case s := <-cl.C():
			if s.Channel != "uiuc.lvdt1" || s.Value != 3.25 {
				t.Fatalf("sample = %+v", s)
			}
			return
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no sample over TCP")
		}
	}
}

func TestServerClientChannelFilter(t *testing.T) {
	h := NewHub()
	defer h.Close()
	srv := NewServer(h)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()

	cl, err := Dial(addr, 64, []string{"only.this"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(20 * time.Millisecond) // let subscription land
	h.Publish(Sample{Channel: "other", Value: 1})
	h.Publish(Sample{Channel: "only.this", Value: 2})
	select {
	case s := <-cl.C():
		if s.Channel != "only.this" {
			t.Fatalf("filter leaked %q", s.Channel)
		}
	case <-time.After(time.Second):
		t.Fatal("no sample")
	}
}

func TestClientCloseEndsStream(t *testing.T) {
	h := NewHub()
	defer h.Close()
	srv := NewServer(h)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	cl, err := Dial(addr, 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = cl.Close()
	select {
	case _, ok := <-cl.C():
		if ok {
			t.Fatal("expected closed stream")
		}
	case <-time.After(time.Second):
		t.Fatal("stream did not close")
	}
}

func TestCollectFor(t *testing.T) {
	h := NewHub()
	defer h.Close()
	srv := NewServer(h)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	cl, err := Dial(addr, 64, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		h.Publish(Sample{Channel: "c", Value: float64(i)})
	}
	got := cl.CollectFor(100 * time.Millisecond)
	if len(got) != 10 {
		t.Fatalf("collected %d samples, want 10", len(got))
	}
}

func TestCatchUpDeliversRetainedHistory(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetRetention(5)
	for i := 0; i < 12; i++ {
		h.Publish(Sample{Channel: "c", T: float64(i), Value: float64(i)})
	}
	// Late joiner with catch-up gets the last 5 samples, oldest first.
	sub, err := h.SubscribeWithCatchUp(16)
	if err != nil {
		t.Fatal(err)
	}
	for want := 7.0; want < 12; want++ {
		s := <-sub.C()
		if s.Value != want {
			t.Fatalf("history sample = %g, want %g", s.Value, want)
		}
	}
	// Live samples continue after history.
	h.Publish(Sample{Channel: "c", T: 12, Value: 12})
	if s := <-sub.C(); s.Value != 12 {
		t.Fatalf("live sample = %g", s.Value)
	}
	// A plain Subscribe sees no history.
	plain, _ := h.Subscribe(16)
	select {
	case s := <-plain.C():
		t.Fatalf("plain subscriber got history %+v", s)
	default:
	}
}

func TestCatchUpRespectsFilterAndOrdersAcrossChannels(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetRetention(4)
	h.Publish(Sample{Channel: "a", Value: 1})
	h.Publish(Sample{Channel: "b", Value: 2})
	h.Publish(Sample{Channel: "a", Value: 3})
	sub, _ := h.SubscribeWithCatchUp(8, "a")
	s1, s2 := <-sub.C(), <-sub.C()
	if s1.Value != 1 || s2.Value != 3 {
		t.Fatalf("filtered history = %g, %g", s1.Value, s2.Value)
	}
	// Unfiltered joiner sees a, b, a in publish (seq) order.
	all, _ := h.SubscribeWithCatchUp(8)
	v1, v2, v3 := <-all.C(), <-all.C(), <-all.C()
	if v1.Value != 1 || v2.Value != 2 || v3.Value != 3 {
		t.Fatalf("ordering = %g %g %g", v1.Value, v2.Value, v3.Value)
	}
}

func TestCatchUpOverTCP(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.SetRetention(10)
	srv := NewServer(h)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	for i := 0; i < 3; i++ {
		h.Publish(Sample{Channel: "c", T: float64(i), Value: float64(i)})
	}
	cl, err := DialCatchUp(addr, 16, []string{"c"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	got := cl.CollectFor(200 * time.Millisecond)
	if len(got) != 3 || got[0].Value != 0 || got[2].Value != 2 {
		t.Fatalf("tcp catch-up = %v", got)
	}
}

func TestRetentionDisabledByDefault(t *testing.T) {
	h := NewHub()
	defer h.Close()
	h.Publish(Sample{Channel: "c", Value: 1})
	sub, _ := h.SubscribeWithCatchUp(4)
	select {
	case s := <-sub.C():
		t.Fatalf("history delivered with retention off: %+v", s)
	default:
	}
}

func TestPublishBatchSequencesAndDelivers(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	all, err := hub.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := hub.Subscribe(64, "a")
	if err != nil {
		t.Fatal(err)
	}

	hub.Publish(Sample{Channel: "a", T: 0, Value: 1})
	batch := []Sample{
		{Channel: "a", T: 1, Value: 2},
		{Channel: "b", T: 1, Value: 3},
		{Channel: "a", T: 2, Value: 4},
	}
	hub.PublishBatch(batch)

	// Sequence numbers continue from Publish and are filled into the caller's
	// slice.
	for i, s := range batch {
		if s.Seq != uint64(2+i) {
			t.Fatalf("batch[%d].Seq = %d, want %d", i, s.Seq, 2+i)
		}
	}
	// Unfiltered subscriber sees all four in order.
	for want := uint64(1); want <= 4; want++ {
		got := <-all.C()
		if got.Seq != want {
			t.Fatalf("seq %d, want %d", got.Seq, want)
		}
	}
	// Filtered subscriber sees only channel a, still in order.
	seqs := []uint64{}
	for i := 0; i < 3; i++ {
		s := <-filtered.C()
		if s.Channel != "a" {
			t.Fatalf("filtered subscriber got channel %q", s.Channel)
		}
		seqs = append(seqs, s.Seq)
	}
	if seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 4 {
		t.Fatalf("filtered seqs %v", seqs)
	}
	published, dropped := hub.Stats()
	if published != 4 || dropped != 0 {
		t.Fatalf("stats %d/%d, want 4/0", published, dropped)
	}
}

func TestPublishBatchDropsForSlowConsumer(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	slow, err := hub.Subscribe(2)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Sample, 10)
	for i := range batch {
		batch[i] = Sample{Channel: "c", T: float64(i)}
	}
	hub.PublishBatch(batch)
	if got := slow.Dropped(); got != 8 {
		t.Fatalf("slow subscriber dropped %d, want 8", got)
	}
	published, dropped := hub.Stats()
	if published != 10 || dropped != 8 {
		t.Fatalf("stats %d/%d, want 10/8", published, dropped)
	}
	// The two buffered samples are the first two, in order.
	if s := <-slow.C(); s.Seq != 1 {
		t.Fatalf("first kept seq %d", s.Seq)
	}
	if s := <-slow.C(); s.Seq != 2 {
		t.Fatalf("second kept seq %d", s.Seq)
	}
}

func TestPublishBatchRetention(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	hub.SetRetention(2)
	hub.PublishBatch([]Sample{
		{Channel: "a", Value: 1},
		{Channel: "a", Value: 2},
		{Channel: "a", Value: 3},
	})
	sub, err := hub.SubscribeWithCatchUp(8, "a")
	if err != nil {
		t.Fatal(err)
	}
	if s := <-sub.C(); s.Value != 2 {
		t.Fatalf("first retained value %v, want 2", s.Value)
	}
	if s := <-sub.C(); s.Value != 3 {
		t.Fatalf("second retained value %v, want 3", s.Value)
	}
}

func TestPublishBatchEmptyAndClosed(t *testing.T) {
	hub := NewHub()
	hub.PublishBatch(nil)
	hub.Close()
	hub.PublishBatch([]Sample{{Channel: "a"}})
	published, _ := hub.Stats()
	if published != 0 {
		t.Fatalf("published %d on empty/closed hub", published)
	}
}

// TestCancelRacingFanOutDoesNotPanic hammers the snapshot→deliver window:
// subscribers cancel immediately after subscribing while publishers fan out
// continuously. Before publishers held fanMu across the mu release, a
// cancel completing in that gap closed a snapshotted channel and the
// subsequent send panicked ("send on closed channel").
func TestCancelRacingFanOutDoesNotPanic(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]Sample, 4)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if p == 0 {
					hub.Publish(Sample{Channel: "a", T: float64(i)})
				} else {
					hub.PublishBatch(batch)
				}
			}
		}(p)
	}
	// Tight subscribe/cancel churn with tiny buffers keeps subscribers inside
	// publisher snapshots at the moment their channels close.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				sub, err := hub.Subscribe(1)
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				sub.Cancel()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestConcurrentPublishSubscribeCancel hammers the hub with publishers,
// batch publishers, and subscribers that cancel mid-stream — meaningful
// under -race, and exercises the close-vs-send guard.
func TestConcurrentPublishSubscribeCancel(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]Sample, 8)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if p%2 == 0 {
					hub.Publish(Sample{Channel: "a", T: float64(i)})
				} else {
					for j := range batch {
						batch[j] = Sample{Channel: "b", T: float64(i + j)}
					}
					hub.PublishBatch(batch)
				}
			}
		}(p)
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub, err := hub.Subscribe(4, []string{"a", "b"}[i%2])
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				// Drain a little, then cancel while publishers are active.
				for j := 0; j < 3; j++ {
					select {
					case <-sub.C():
					default:
					}
				}
				sub.Cancel()
			}
		}(s)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
