package nsds

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"neesgrid/internal/telemetry"
)

// RelayConfig describes one relay tier node.
type RelayConfig struct {
	// Upstream is the address of the NSDS server to subscribe to.
	Upstream string
	// Channels filters the upstream subscription (empty = everything).
	Channels []string
	// Buffer is the upstream receive buffer in batches (default 256).
	Buffer int
	// Retention is the local hub's per-channel retention for late joiners
	// (0 = off). With retention on both tiers, a viewer joining behind the
	// relay sees history even across an upstream reconnect.
	Retention int
	// Shards is the local hub's shard count (0 = one per CPU).
	Shards int
	// Dial overrides the dialer (fault injection); nil means net.Dial.
	Dial func(network, addr string) (net.Conn, error)
	// Backoff and MaxBackoff bound the reconnect delay (defaults 50ms, 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Telemetry, when set, exports the relay hub's tier counters
	// (nsds.tier.*.<TierName>) plus nsds.relay.reconnects.
	Telemetry *telemetry.Registry
	// TierName labels the relay's counters (default "relay").
	TierName string
}

func (c *RelayConfig) buffer() int {
	if c.Buffer < 1 {
		return 256
	}
	return c.Buffer
}

func (c *RelayConfig) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return c.Backoff
}

func (c *RelayConfig) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 2 * time.Second
	}
	return c.MaxBackoff
}

// Relay subscribes to an upstream NSDS server over a single binary
// connection and re-fans the stream out through its own local hub — the
// broker tier that turns one flat hub serving every viewer into a tree of
// hubs. Fan-in is one connection regardless of how many viewers sit
// behind the relay; drop semantics stay best-effort at both tiers (a slow
// viewer drops at the relay hub, a slow relay drops at the upstream hub —
// the experiment never blocks).
//
// On upstream loss the relay reconnects with exponential backoff and a
// catch-up subscription: upstream retained history replays on reconnect,
// already-forwarded samples are deduplicated by sequence number, and only
// the missed window re-fans out — a late joiner behind the relay sees
// each sample exactly once, in order.
type Relay struct {
	cfg RelayConfig
	hub *Hub

	cancel context.CancelFunc
	done   chan struct{}

	connected  atomic.Bool
	everConn   atomic.Bool
	reconnects atomic.Uint64
	forwarded  atomic.Uint64
	duplicates atomic.Uint64
	reconCtr   *telemetry.Counter

	// lastSeq is the highest upstream sequence forwarded; touched only by
	// the run goroutine.
	lastSeq uint64
}

// NewRelay creates a relay and its local hub (not yet connected — Start
// dials).
func NewRelay(cfg RelayConfig) *Relay {
	r := &Relay{cfg: cfg, hub: NewHubShards(cfg.Shards)}
	if cfg.Retention > 0 {
		r.hub.SetRetention(cfg.Retention)
	}
	if cfg.Telemetry != nil {
		tier := cfg.TierName
		if tier == "" {
			tier = "relay"
		}
		r.hub.UseTelemetry(cfg.Telemetry, tier)
		r.reconCtr = cfg.Telemetry.Counter("nsds.relay.reconnects")
	}
	return r
}

// Hub returns the relay's local (downstream-facing) hub. Viewers —
// servers, gateways, in-process subscribers — attach here.
func (r *Relay) Hub() *Hub { return r.hub }

// Reconnects returns how many times the upstream connection was re-dialed
// after a loss.
func (r *Relay) Reconnects() uint64 { return r.reconnects.Load() }

// Forwarded returns the total samples re-published downstream.
func (r *Relay) Forwarded() uint64 { return r.forwarded.Load() }

// Duplicates returns catch-up samples discarded as already forwarded.
func (r *Relay) Duplicates() uint64 { return r.duplicates.Load() }

// Start launches the upstream subscription loop (runtime.Component shape).
func (r *Relay) Start(context.Context) error {
	if r.done != nil {
		return fmt.Errorf("nsds: relay already started")
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go r.run(ctx)
	return nil
}

// Stop severs the upstream connection, waits (bounded by ctx) for the
// forward loop, then closes the local hub.
func (r *Relay) Stop(ctx context.Context) error {
	if r.done == nil {
		r.hub.Close()
		return nil
	}
	r.cancel()
	select {
	case <-r.done:
	case <-ctx.Done():
		return fmt.Errorf("nsds: relay still draining: %w", ctx.Err())
	}
	r.hub.Close()
	return nil
}

// Healthy reports nil while the upstream subscription is live.
func (r *Relay) Healthy() error {
	if !r.connected.Load() {
		return fmt.Errorf("nsds: relay not connected to %s", r.cfg.Upstream)
	}
	return nil
}

func (r *Relay) run(ctx context.Context) {
	defer close(r.done)
	backoff := r.cfg.backoff()
	for ctx.Err() == nil {
		cl, err := DialBatches(r.cfg.Upstream, r.cfg.buffer(), true, r.cfg.Channels, r.cfg.Dial)
		if err != nil {
			if !sleepCtx(ctx, backoff) {
				return
			}
			if backoff *= 2; backoff > r.cfg.maxBackoff() {
				backoff = r.cfg.maxBackoff()
			}
			continue
		}
		if r.everConn.Swap(true) {
			r.reconnects.Add(1)
			if r.reconCtr != nil {
				r.reconCtr.Inc()
			}
		}
		r.connected.Store(true)
		backoff = r.cfg.backoff()
		r.consume(ctx, cl)
		_ = cl.Close()
		r.connected.Store(false)
		if ctx.Err() == nil && !sleepCtx(ctx, backoff) {
			return
		}
	}
}

// consume forwards upstream batches until the connection dies or ctx ends.
// Catch-up replays after a reconnect are deduplicated by sequence number:
// the upstream assigns each sample one sequence for life, so anything at
// or below lastSeq has already been forwarded.
func (r *Relay) consume(ctx context.Context, cl *Client) {
	for {
		select {
		case <-ctx.Done():
			return
		case samples, ok := <-cl.Batches():
			if !ok {
				return
			}
			fresh := samples
			for len(fresh) > 0 && fresh[0].Seq <= r.lastSeq {
				fresh = fresh[1:]
				r.duplicates.Add(1)
			}
			if len(fresh) == 0 {
				continue
			}
			r.hub.PublishForwarded(fresh)
			r.lastSeq = fresh[len(fresh)-1].Seq
			r.forwarded.Add(uint64(len(fresh)))
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// LocalRelay chains a downstream hub onto an in-process upstream hub: the
// single-process form of the relay tier, used by the most harness (per-
// site viewer tier) and the fan-out benchmarks. Same drop semantics: the
// forwarder is one batch-mode subscriber upstream, and a slow viewer
// drops at the downstream hub without ever backpressuring the upstream.
type LocalRelay struct {
	sub  *Subscription
	hub  *Hub
	done chan struct{}

	processed atomic.Uint64 // samples taken off the upstream subscription
}

// NewLocalRelay starts forwarding from upstream into downstream. buffer is
// the forwarder's subscription depth in batches (< 1 picks 4096 — deep
// enough that a chaos-scale run never backpressure-drops on the forwarder
// itself, which keeps relay-tier forced-drop counts deterministic).
func NewLocalRelay(upstream, downstream *Hub, buffer int) (*LocalRelay, error) {
	if buffer < 1 {
		buffer = 4096
	}
	sub, err := upstream.SubscribeBatches(buffer, false)
	if err != nil {
		return nil, err
	}
	lr := &LocalRelay{sub: sub, hub: downstream, done: make(chan struct{})}
	go lr.run()
	return lr, nil
}

func (lr *LocalRelay) run() {
	defer close(lr.done)
	for b := range lr.sub.Batches() {
		lr.hub.PublishForwarded(b.Samples)
		lr.processed.Add(uint64(len(b.Samples)))
	}
}

// Drain waits until every sample the upstream has handed this relay has
// been forwarded downstream. Call it when upstream publishing has stopped
// (end of run) and downstream counters must be settled — the chaos engine
// does, so relay-tier forced drops are consumed before the verdict reads
// them.
func (lr *LocalRelay) Drain(ctx context.Context) error {
	for {
		if lr.processed.Load() == lr.sub.Delivered() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("nsds: relay drain: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// Stop cancels the upstream subscription and waits for the forward loop.
// The downstream hub is left to its owner.
func (lr *LocalRelay) Stop() {
	lr.sub.Cancel()
	<-lr.done
}
