package nsds

import (
	"context"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
)

func startRelay(t *testing.T, cfg RelayConfig) *Relay {
	t.Helper()
	r := NewRelay(cfg)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = r.Stop(ctx)
	})
	return r
}

func TestRelayFansOutUpstreamStream(t *testing.T) {
	up := NewHub()
	defer up.Close()
	srv := NewServer(up)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := telemetry.NewRegistry()
	relay := startRelay(t, RelayConfig{Upstream: addr, Telemetry: reg})
	waitFor(t, 2*time.Second, func() bool { return relay.Healthy() == nil })

	viewer, err := relay.Hub().Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	up.PublishBatch([]Sample{{Channel: "a", T: 1}, {Channel: "b", T: 1}})
	for want := uint64(1); want <= 2; want++ {
		select {
		case s := <-viewer.C():
			if s.Seq != want {
				t.Fatalf("seq = %d, want %d", s.Seq, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("sample did not traverse the relay")
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["nsds.tier.delivered.relay"] != 2 {
		t.Fatalf("relay tier delivered = %d, want 2", snap.Counters["nsds.tier.delivered.relay"])
	}
}

// The satellite pin: a late joiner behind a relay receives the retained
// history exactly once, in order, even after the upstream connection died
// and the relay reconnected through a catch-up subscription (which replays
// upstream history that must be deduplicated).
func TestRelayReconnectCatchUpExactlyOnce(t *testing.T) {
	up := NewHub()
	defer up.Close()
	up.SetRetention(64)
	srv := NewServer(up)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	relay := startRelay(t, RelayConfig{
		Upstream:  addr,
		Retention: 64,
		Backoff:   5 * time.Millisecond,
	})
	waitFor(t, 2*time.Second, func() bool { return relay.Healthy() == nil })

	for i := 0; i < 5; i++ {
		up.Publish(Sample{Channel: "a", T: float64(i)})
	}
	waitFor(t, 2*time.Second, func() bool { return relay.Forwarded() == 5 })

	// Kill the upstream server; the relay loses its subscription.
	_ = srv.Close()
	waitFor(t, 2*time.Second, func() bool { return relay.Healthy() != nil })

	// Publish while the relay is down — retained upstream, invisible to
	// the relay until it reconnects.
	for i := 5; i < 9; i++ {
		up.Publish(Sample{Channel: "a", T: float64(i)})
	}

	// Revive the server on the same address; the relay reconnects with
	// catch-up: the full retained history (seqs 1..9) replays, 1..5 are
	// deduplicated, 6..9 forward.
	srv2 := NewServer(up)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, 5*time.Second, func() bool { return relay.Forwarded() == 9 })
	if relay.Reconnects() == 0 {
		t.Fatal("reconnect not counted")
	}
	if relay.Duplicates() != 5 {
		t.Fatalf("duplicates = %d, want 5 (replayed history)", relay.Duplicates())
	}

	// The late joiner behind the relay: full history exactly once, in
	// order, spanning the outage.
	late, err := relay.Hub().SubscribeWithCatchUp(64)
	if err != nil {
		t.Fatal(err)
	}
	for want := uint64(1); want <= 9; want++ {
		select {
		case s := <-late.C():
			if s.Seq != want {
				t.Fatalf("late joiner saw seq %d, want %d (exactly once, in order)", s.Seq, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("late joiner stalled waiting for seq %d", want)
		}
	}
	select {
	case s := <-late.C():
		t.Fatalf("duplicate delivery: seq %d", s.Seq)
	case <-time.After(100 * time.Millisecond):
	}
}

// Relay-tier best effort: a wedged viewer behind the relay drops at the
// relay hub; the upstream publish path and the relay forwarder never
// block on it.
func TestRelayTierBestEffortDropsForSlowViewer(t *testing.T) {
	up := NewHub()
	defer up.Close()
	srv := NewServer(up)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	relay := startRelay(t, RelayConfig{Upstream: addr})
	waitFor(t, 2*time.Second, func() bool { return relay.Healthy() == nil })
	slow, err := relay.Hub().SubscribeBatches(1, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			up.PublishBatch([]Sample{{Channel: "a"}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("upstream publish blocked behind a slow relay viewer")
	}
	waitFor(t, 5*time.Second, func() bool { return relay.Forwarded() == 50 })
	if got := slow.Delivered() + slow.Dropped(); got != 50 {
		t.Fatalf("delivered+dropped = %d, want 50", got)
	}
	if slow.Dropped() == 0 {
		t.Fatal("slow viewer should have dropped batches")
	}
}
