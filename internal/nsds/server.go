package nsds

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// DefaultWriteTimeout is the per-connection write deadline applied when
// Server.WriteTimeout is zero. A stalled viewer socket (reader gone, TCP
// window closed) trips the deadline and is disconnected instead of wedging
// its writer goroutine on flush forever — the hub itself never blocks on a
// slow viewer either way, but without a deadline the goroutine and its
// subscription leak for the life of the process.
const DefaultWriteTimeout = 30 * time.Second

// subscribeMsg is the first line a TCP client sends.
type subscribeMsg struct {
	Channels []string `json:"channels"`
	Buffer   int      `json:"buffer"`
	CatchUp  bool     `json:"catch_up,omitempty"`
	// Format selects the stream encoding: "" or "json" for the legacy
	// newline-delimited JSON samples, "binary" for length-prefixed batch
	// frames (encode-once/write-many).
	Format string `json:"format,omitempty"`
}

// Server exposes a hub over TCP: the client sends one JSON subscribe line,
// then receives the stream — newline-delimited JSON samples by default, or
// shared binary batch frames when it subscribes with "format":"binary".
type Server struct {
	hub *Hub

	// WriteTimeout is the per-connection write deadline: a connection
	// whose flush cannot complete within it is disconnected. Zero means
	// DefaultWriteTimeout; negative disables deadlines. Set before Start.
	WriteTimeout time.Duration

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	stopped bool
	done    sync.WaitGroup // outstanding serve goroutines
}

// NewServer wraps a hub.
func NewServer(hub *Hub) *Server { return &Server{hub: hub, conns: make(map[net.Conn]struct{})} }

func (s *Server) writeTimeout() time.Duration {
	switch {
	case s.WriteTimeout < 0:
		return 0
	case s.WriteTimeout == 0:
		return DefaultWriteTimeout
	default:
		return s.WriteTimeout
	}
}

// ConnCount returns the number of live subscriber connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Start listens on addr; returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("nsds: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.stopped = false
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.stopped {
				s.mu.Unlock()
				_ = conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.done.Add(1)
			s.mu.Unlock()
			go s.serve(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and severs every subscriber connection
// immediately.
func (s *Server) Close() error {
	s.mu.Lock()
	s.stopped = true
	err := error(nil)
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	return err
}

// Stop is the graceful form of Close for the runtime supervisor: it stops
// the listener, severs subscribers, and waits (bounded by ctx) for the
// per-connection goroutines to finish flushing.
func (s *Server) Stop(ctx context.Context) error {
	err := s.Close()
	idle := make(chan struct{})
	go func() { s.done.Wait(); close(idle) }()
	select {
	case <-idle:
		return err
	case <-ctx.Done():
		return fmt.Errorf("nsds: subscriber connections still draining: %w", ctx.Err())
	}
}

// Healthy reports nil while the listener is accepting subscribers.
func (s *Server) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return fmt.Errorf("nsds: server not started")
	}
	if s.stopped {
		return fmt.Errorf("nsds: server stopped")
	}
	return nil
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.done.Done()
	}()
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		return
	}
	var msg subscribeMsg
	if err := json.Unmarshal(sc.Bytes(), &msg); err != nil {
		return
	}
	if msg.Format == "binary" {
		s.serveBinary(conn, msg)
		return
	}
	s.serveJSON(conn, msg)
}

// serveJSON streams newline-delimited JSON samples — the legacy endpoint.
func (s *Server) serveJSON(conn net.Conn, msg subscribeMsg) {
	var sub *Subscription
	var err error
	if msg.CatchUp {
		sub, err = s.hub.SubscribeWithCatchUp(msg.Buffer, msg.Channels...)
	} else {
		sub, err = s.hub.Subscribe(msg.Buffer, msg.Channels...)
	}
	if err != nil {
		return
	}
	defer sub.Cancel()
	// Buffer writes and flush only when the subscription runs dry: a burst
	// of samples coalesces into one syscall instead of one write per sample,
	// while an idle stream still delivers every sample promptly.
	bw := bufio.NewWriterSize(conn, 32<<10)
	enc := json.NewEncoder(bw)
	wt := s.writeTimeout()
	for sample := range sub.C() {
		// Refresh the write deadline per burst: it covers the encode (which
		// may auto-flush a full buffer) and the final flush. A viewer that
		// cannot take a burst within the deadline is disconnected.
		if wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		if err := enc.Encode(sample); err != nil {
			return
		}
	drain:
		for {
			select {
			case s, ok := <-sub.C():
				if !ok {
					_ = bw.Flush()
					return
				}
				if err := enc.Encode(s); err != nil {
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
	_ = bw.Flush()
}

// serveBinary streams shared batch frames: every connection writes the
// same Frame() bytes its batch produced once, so fanning one batch out to
// N viewers costs one encode plus N buffer copies.
func (s *Server) serveBinary(conn net.Conn, msg subscribeMsg) {
	sub, err := s.hub.SubscribeBatches(msg.Buffer, msg.CatchUp, msg.Channels...)
	if err != nil {
		return
	}
	defer sub.Cancel()
	bw := bufio.NewWriterSize(conn, 64<<10)
	wt := s.writeTimeout()
	for batch := range sub.Batches() {
		if wt > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(wt))
		}
		if _, err := bw.Write(batch.Frame()); err != nil {
			return
		}
	drain:
		for {
			select {
			case b, ok := <-sub.Batches():
				if !ok {
					_ = bw.Flush()
					return
				}
				if _, err := bw.Write(b.Frame()); err != nil {
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
	_ = bw.Flush()
}
