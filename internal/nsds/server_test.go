package nsds

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// Regression: a stalled viewer TCP socket (subscribed, never reads) used
// to wedge its writer goroutine on flush forever — the connection, the
// goroutine, and the subscription leaked for the life of the process. The
// write deadline must disconnect the dead viewer while the publish path
// keeps completing without ever blocking.
func TestServerWriteDeadlineDisconnectsStalledViewer(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	srv := NewServer(hub)
	srv.WriteTimeout = 200 * time.Millisecond
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, `{"channels":[],"buffer":64}`); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has registered the subscription, then stall:
	// this client never reads, so kernel buffers fill and the server's
	// flush blocks until the deadline trips.
	waitFor(t, time.Second, func() bool { return hub.Subscribers() == 1 })

	// Fat samples fill the socket buffers quickly. Publishing must never
	// block regardless of the wedged connection (best-effort contract), so
	// bound each call anyway to turn a hang into a test failure.
	fat := Sample{Channel: strings.Repeat("c", 32<<10)}
	deadline := time.Now().Add(10 * time.Second)
	for hub.Subscribers() > 0 && time.Now().Before(deadline) {
		published := make(chan struct{})
		go func() {
			hub.PublishBatch([]Sample{fat})
			close(published)
		}()
		select {
		case <-published:
		case <-time.After(2 * time.Second):
			t.Fatal("publish blocked on a stalled viewer connection")
		}
		time.Sleep(time.Millisecond)
	}
	if n := hub.Subscribers(); n != 0 {
		t.Fatalf("stalled viewer still subscribed after deadline (%d subscribers)", n)
	}
	waitFor(t, 5*time.Second, func() bool { return srv.ConnCount() == 0 })
}

func TestServerBinaryFormatStreamsBatches(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	hub.SetRetention(8)
	srv := NewServer(hub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hub.Publish(Sample{Channel: "a", T: 0.5, Value: 1})
	cl, err := DialBatches(addr, 16, true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	hub.PublishBatch([]Sample{{Channel: "a", T: 1, Value: 2}, {Channel: "b", T: 1, Value: 3}})

	got := cl.CollectFor(500 * time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("got %d samples %+v, want 3 (catch-up + live batch)", len(got), got)
	}
	for i, s := range got {
		if s.Seq != uint64(i+1) {
			t.Fatalf("seqs out of order: %+v", got)
		}
	}
	if got[2].Channel != "b" || got[2].Value != 3 {
		t.Fatalf("binary decode mismatch: %+v", got[2])
	}
}

func TestServerBinaryChannelFilter(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	srv := NewServer(hub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := DialBatches(addr, 16, false, []string{"keep"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, time.Second, func() bool { return hub.Subscribers() == 1 })
	hub.PublishBatch([]Sample{{Channel: "drop"}, {Channel: "keep"}, {Channel: "drop"}})
	got := cl.CollectFor(500 * time.Millisecond)
	if len(got) != 1 || got[0].Channel != "keep" {
		t.Fatalf("filtered stream = %+v", got)
	}
}

// The subscribe message is still plain JSON, so a legacy client and a
// binary client coexist on one server.
func TestServerMixedFormatClients(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	srv := NewServer(hub)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	jsonCl, err := Dial(addr, 16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jsonCl.Close()
	binCl, err := DialBatches(addr, 16, false, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer binCl.Close()
	waitFor(t, time.Second, func() bool { return hub.Subscribers() == 2 })

	hub.PublishBatch([]Sample{{Channel: "a", Value: 42}})
	j := jsonCl.CollectFor(500 * time.Millisecond)
	b := binCl.CollectFor(500 * time.Millisecond)
	if len(j) != 1 || len(b) != 1 || j[0] != b[0] {
		t.Fatalf("json=%+v binary=%+v, want identical single sample", j, b)
	}
}

func TestSubscribeMsgJSONShape(t *testing.T) {
	// The wire handshake is part of the protocol surface: field names must
	// not drift or old clients break.
	data, _ := json.Marshal(subscribeMsg{Channels: []string{"a"}, Buffer: 4, CatchUp: true, Format: "binary"})
	want := `{"channels":["a"],"buffer":4,"catch_up":true,"format":"binary"}`
	if string(data) != want {
		t.Fatalf("subscribe msg = %s, want %s", data, want)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
