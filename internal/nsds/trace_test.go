package nsds

import (
	"context"
	"testing"

	"neesgrid/internal/trace"
)

func TestPublishBatchContextRecordsChildSpan(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	tr := trace.NewTracer("site", trace.NewRecorder(16))
	hub.UseTracer(tr)

	sub, err := hub.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	parentTracer := trace.NewTracer("coordinator", trace.NewRecorder(16))
	ctx, parent := parentTracer.Start(context.Background(), "coord.step", trace.KindInternal)
	hub.PublishBatchContext(ctx, []Sample{
		{Channel: "a", T: 0.01, Value: 1},
		{Channel: "b", T: 0.01, Value: 2},
	})
	parent.End()

	spans := tr.Recorder().Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	sd := spans[0]
	if sd.Name != "nsds.publish" || sd.Parent != parent.Context().SpanID.String() {
		t.Fatalf("span %+v not a child of the step span", sd)
	}
	if sd.Attrs["samples"] != "2" || sd.Attrs["subscribers"] != "1" || sd.Attrs["dropped"] != "0" {
		t.Fatalf("span attrs %+v", sd.Attrs)
	}
	if got := len(sub.C()); got != 2 {
		t.Fatalf("subscriber got %d samples", got)
	}

	// Without a parent span in ctx no span is recorded (no orphan roots).
	hub.PublishBatchContext(context.Background(), []Sample{{Channel: "a", T: 0.02, Value: 3}})
	if got := len(tr.Recorder().Spans()); got != 1 {
		t.Fatalf("orphan publish recorded a span: %d total", got)
	}
}
