package nsds

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format (little-endian, length-prefixed):
//
//	uint32  payload length (bytes after this field)
//	uint8   frame version (wireVersion)
//	uint32  sample count
//	count × sample:
//	    uint16  channel-name length
//	    bytes   channel name
//	    uint64  seq
//	    uint64  float64 bits of T
//	    uint64  float64 bits of Value
//
// One frame carries one published batch. The hub encodes a batch's frame
// exactly once (Batch.Frame, guarded by sync.Once) and every subscriber
// connection writes the same byte slice — encode-once/write-many. The
// legacy newline-delimited JSON endpoint is untouched; a client opts into
// the binary format in its subscribe message.

const (
	wireVersion = 1
	// maxFramePayload bounds a decoded frame; anything larger is a corrupt
	// stream, not a batch.
	maxFramePayload = 16 << 20
	// sampleFixedWire is the per-sample wire size excluding the channel
	// name: 2 (name length) + 8 (seq) + 8 (T) + 8 (Value).
	sampleFixedWire = 26
	frameHeaderSize = 4 + 1 + 4
)

// frameSize returns the exact encoded size of a frame for samples.
func frameSize(samples []Sample) int {
	n := frameHeaderSize
	for i := range samples {
		n += sampleFixedWire + len(samples[i].Channel)
	}
	return n
}

// appendFrame encodes samples as one wire frame appended to dst.
func appendFrame(dst []byte, samples []Sample) []byte {
	payload := frameSize(samples) - 4
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payload))
	dst = append(dst, wireVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(samples)))
	for i := range samples {
		s := &samples[i]
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.Channel)))
		dst = append(dst, s.Channel...)
		dst = binary.LittleEndian.AppendUint64(dst, s.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.T))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Value))
	}
	return dst
}

// Frame returns the batch's binary wire frame, encoding it on first use
// and returning the same shared bytes to every caller afterwards. Callers
// must treat the slice as immutable.
func (b *Batch) Frame() []byte {
	b.frameOnce.Do(func() {
		b.frame = appendFrame(make([]byte, 0, frameSize(b.Samples)), b.Samples)
	})
	return b.frame
}

// frameDecoder reads wire frames off a connection, reusing its payload
// buffer across frames and interning channel names so a million-sample
// stream allocates a handful of strings, not one per sample.
type frameDecoder struct {
	r     *bufio.Reader
	buf   []byte
	names map[string]string
}

func newFrameDecoder(r io.Reader) *frameDecoder {
	return &frameDecoder{r: bufio.NewReaderSize(r, 64<<10), names: make(map[string]string)}
}

// intern returns the canonical string for a channel-name byte run.
func (d *frameDecoder) intern(b []byte) string {
	if s, ok := d.names[string(b)]; ok { // no-alloc map lookup
		return s
	}
	s := string(b)
	d.names[s] = s
	return s
}

// Next decodes one frame into a freshly allocated sample slice (the caller
// keeps it; the scratch buffer is reused).
func (d *frameDecoder) Next() ([]Sample, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return nil, err
	}
	payload := binary.LittleEndian.Uint32(hdr[:])
	if payload < 5 || payload > maxFramePayload {
		return nil, fmt.Errorf("nsds: frame payload %d out of range", payload)
	}
	if cap(d.buf) < int(payload) {
		d.buf = make([]byte, payload)
	}
	buf := d.buf[:payload]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return nil, fmt.Errorf("nsds: short frame: %w", err)
	}
	if buf[0] != wireVersion {
		return nil, fmt.Errorf("nsds: unknown frame version %d", buf[0])
	}
	count := binary.LittleEndian.Uint32(buf[1:5])
	if int(count) > int(payload)/sampleFixedWire+1 {
		return nil, fmt.Errorf("nsds: frame count %d exceeds payload", count)
	}
	samples := make([]Sample, 0, count)
	p := buf[5:]
	for i := uint32(0); i < count; i++ {
		if len(p) < 2 {
			return nil, fmt.Errorf("nsds: truncated sample header")
		}
		nameLen := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < nameLen+24 {
			return nil, fmt.Errorf("nsds: truncated sample body")
		}
		name := d.intern(p[:nameLen])
		p = p[nameLen:]
		samples = append(samples, Sample{
			Channel: name,
			Seq:     binary.LittleEndian.Uint64(p),
			T:       math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
			Value:   math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
		})
		p = p[24:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("nsds: %d trailing bytes in frame", len(p))
	}
	return samples, nil
}
