package nsds

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"unsafe"
)

func TestWireFrameRoundTrip(t *testing.T) {
	in := []Sample{
		{Channel: "uiuc.disp", Seq: 1, T: 0.01, Value: 1.5e-3},
		{Channel: "uiuc.force", Seq: 2, T: 0.01, Value: -7.7e3},
		{Channel: "", Seq: 3, T: math.Inf(1), Value: math.SmallestNonzeroFloat64},
		{Channel: "uiuc.disp", Seq: 4, T: -0.5, Value: 0},
	}
	frame := appendFrame(nil, in)
	if len(frame) != frameSize(in) {
		t.Fatalf("frame size = %d, frameSize() = %d", len(frame), frameSize(in))
	}
	dec := newFrameDecoder(bytes.NewReader(frame))
	out, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestWireDecoderInternsChannelNames(t *testing.T) {
	in := []Sample{{Channel: "a.disp", Seq: 1}, {Channel: "a.disp", Seq: 2}}
	var buf bytes.Buffer
	buf.Write(appendFrame(nil, in))
	buf.Write(appendFrame(nil, in))
	dec := newFrameDecoder(&buf)
	first, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	second, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Interning means the decoder hands out one canonical string across
	// frames instead of allocating per sample.
	if unsafe.StringData(first[0].Channel) != unsafe.StringData(second[1].Channel) {
		t.Fatal("channel names not interned across frames")
	}
}

func TestWireDecoderRejectsCorruptFrames(t *testing.T) {
	good := appendFrame(nil, []Sample{{Channel: "a", Seq: 1}})
	cases := map[string][]byte{
		"bad version":    append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"oversize len":   {0xff, 0xff, 0xff, 0xff, wireVersion},
		"truncated body": good[:len(good)-3],
	}
	for name, frame := range cases {
		dec := newFrameDecoder(bytes.NewReader(frame))
		if _, err := dec.Next(); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestBatchFrameEncodedOnceAndShared(t *testing.T) {
	b := newBatch([]Sample{{Channel: "a", Seq: 1}, {Channel: "b", Seq: 2}})
	f1 := b.Frame()
	f2 := b.Frame()
	if &f1[0] != &f2[0] {
		t.Fatal("Frame() re-encoded instead of returning the shared buffer")
	}
	dec := newFrameDecoder(bytes.NewReader(f1))
	out, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, b.Samples) {
		t.Fatalf("decoded %+v, want %+v", out, b.Samples)
	}
}

func TestBatchFilterTo(t *testing.T) {
	b := newBatch([]Sample{{Channel: "a", Seq: 1}, {Channel: "b", Seq: 2}, {Channel: "a", Seq: 3}})
	sub := b.filterTo(map[string]bool{"a": true})
	if len(sub.Samples) != 2 || sub.Samples[0].Seq != 1 || sub.Samples[1].Seq != 3 {
		t.Fatalf("filtered batch = %+v", sub.Samples)
	}
	if b.filterTo(map[string]bool{"zzz": true}) != nil {
		t.Fatal("empty filter result should be nil")
	}
	if all := b.filterTo(map[string]bool{"a": true, "b": true}); all != b {
		t.Fatal("full-coverage filter should reuse the original batch (shared frame)")
	}
}
