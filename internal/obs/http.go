package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"neesgrid/internal/telemetry"
)

// Mux builds the aggregator's HTTP surface:
//
//	GET  /fleet    full FleetView JSON (per-site health, merged snapshot,
//	               rates, SLO states) — what `mostctl top` polls
//	GET  /metrics  merged fleet telemetry: JSON telemetry.Snapshot by
//	               default (so `mostctl metrics -url` works unchanged), or
//	               Prometheus text on Accept: text/plain with fleet-wide
//	               series first and per-site series labeled {site="..."}
//	GET  /slo      machine-readable Verdict JSON (exit-code material for
//	               SLO-gated CI runs)
//	GET  /series?metric=<name>  ringed values for one metric (sparklines)
//	POST /push?site=<name>      push-mode ingestion of one site's JSON
//	                            snapshot
func (a *Aggregator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "obs: GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, a.Fleet())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "obs: GET only", http.StatusMethodNotAllowed)
			return
		}
		if strings.Contains(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", telemetry.PrometheusContentType)
			a.writePrometheus(w)
			return
		}
		writeJSON(w, a.Merged())
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "obs: GET only", http.StatusMethodNotAllowed)
			return
		}
		v := a.Verdict()
		if !v.OK {
			// Breached verdicts stay 200: the verdict is the payload, not
			// an endpoint failure. CI inspects .ok.
			w.Header().Set("X-SLO-Breached", "true")
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("metric")
		if name == "" {
			http.Error(w, "obs: ?metric= required", http.StatusBadRequest)
			return
		}
		vs := a.Series(name)
		if vs == nil {
			vs = []float64{}
		}
		writeJSON(w, map[string]any{"metric": name, "values": vs})
	})
	mux.HandleFunc("/push", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "obs: POST only", http.StatusMethodNotAllowed)
			return
		}
		site := r.URL.Query().Get("site")
		if site == "" {
			http.Error(w, "obs: ?site= required", http.StatusBadRequest)
			return
		}
		var snap telemetry.Snapshot
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&snap); err != nil {
			http.Error(w, fmt.Sprintf("obs: decode: %v", err), http.StatusBadRequest)
			return
		}
		a.Push(site, snap)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// writePrometheus emits the fleet exposition: merged series (with TYPE
// declarations) first, then every fresh site's series labeled with its
// name.
func (a *Aggregator) writePrometheus(w http.ResponseWriter) {
	a.mu.Lock()
	view := a.buildFleetLocked()
	type labeled struct {
		name string
		snap telemetry.Snapshot
	}
	var sites []labeled
	for _, name := range a.order {
		st := a.sites[name]
		if !st.lastOK.IsZero() {
			sites = append(sites, labeled{name, st.last})
		}
	}
	a.mu.Unlock()

	_ = telemetry.WritePrometheus(w, view.Merged)
	for _, s := range sites {
		_ = telemetry.WritePrometheusLabeled(w, s.snap, "site", s.name)
	}
	// The aggregator's own health series ride along so a scraper sees the
	// observer too.
	fmt.Fprintf(w, "# TYPE obs_site_up gauge\n")
	for _, h := range view.Sites {
		up := 0
		if h.State == StateOK {
			up = 1
		}
		fmt.Fprintf(w, "obs_site_up{site=%q} %d\n", h.Name, up)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
