// Package obs is the experiment-wide observability plane: an aggregation
// tier that turns every site daemon's island of per-process telemetry into
// one mergeable, queryable view of the whole experiment. The paper's MOST
// run was debugged by humans watching three sites at once (§3.4); at fleet
// scale (ROADMAP item 1) that judgment call has to become a service. An
// Aggregator scrapes (or is pushed) registry snapshots from every site and
// the coordinator, merges them exactly (telemetry.MergeSnapshots — bucket
// vectors add, quantiles recomputed, never averaged), tracks per-site
// health from scrape freshness, keeps bounded time-series rings for rate
// and sparkline computation, and continuously evaluates SLO rules whose
// breaches emit events, capture pprof profiles, and roll up into a
// machine-readable verdict.
//
// The Aggregator satisfies the internal/runtime Component contract
// (Start/Stop/Healthy), so it mounts in cmd/coordinator, under the most
// harness's supervisor, or standalone behind `mostctl top`.
package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"neesgrid/internal/telemetry"
)

// Source is one telemetry producer the aggregator watches: a site daemon's
// /metrics URL, the coordinator's own registry via Fetch, or a purely
// push-fed name (both URL and Fetch nil).
type Source struct {
	// Name identifies the site in the fleet view and labels its series in
	// the Prometheus exposition.
	Name string
	// URL is the producer's /metrics endpoint (JSON telemetry.Snapshot).
	URL string
	// Fetch short-circuits HTTP for in-process producers (the most
	// harness hands the aggregator each site's registry directly).
	Fetch func() telemetry.Snapshot
	// PprofURL is the producer's -pprof debug mux base (http://host:port);
	// when set, an SLO breach captures a goroutine profile from it.
	PprofURL string
}

// Health states a site moves through, derived purely from scrape history.
const (
	StateUnknown  = "unknown"  // never scraped yet
	StateOK       = "ok"       // fresh successful scrape
	StateDegraded = "degraded" // last success older than StaleAfter
	StateDown     = "down"     // most recent scrape attempt failed
)

// SiteHealth is one site's row in the fleet view.
type SiteHealth struct {
	Name       string    `json:"name"`
	State      string    `json:"state"`
	LastScrape time.Time `json:"last_scrape,omitzero"`
	Error      string    `json:"error,omitempty"`
	Scrapes    int64     `json:"scrapes"`
	Failures   int64     `json:"failures"`
	// Process self-metrics lifted from the site's snapshot (satellite:
	// every daemon exports process.* through telemetry.Handler).
	Goroutines    float64 `json:"goroutines,omitempty"`
	HeapBytes     float64 `json:"heap_bytes,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
}

// FleetView is the aggregator's merged, point-in-time picture of the
// experiment: per-site health, the exactly-merged fleet snapshot, counter
// rates over the ring window, and current SLO rule states.
type FleetView struct {
	TS     time.Time          `json:"ts"`
	Sites  []SiteHealth       `json:"sites"`
	Merged telemetry.Snapshot `json:"merged"`
	// Rates are per-second first-derivative estimates for every counter
	// (and histogram count, keyed name+".rate") over the ring window.
	Rates map[string]float64 `json:"rates,omitempty"`
	SLO   []RuleStatus       `json:"slo,omitempty"`
	// MergeError is set when per-site snapshots could not be merged
	// (mismatched histogram bounds) — the merged view then holds only the
	// sites that did merge.
	MergeError string `json:"merge_error,omitempty"`
}

// Config configures an Aggregator.
type Config struct {
	Sources []Source
	// Interval between scrape rounds; default 1s.
	Interval time.Duration
	// StaleAfter marks a site degraded when its last successful scrape is
	// older than this; default 3×Interval.
	StaleAfter time.Duration
	// RingSize bounds the per-metric time-series ring; default 120 points
	// (two minutes at the default interval).
	RingSize int
	// SLOs are evaluated against the merged view every scrape round.
	SLOs []SLO
	// ProfileDir receives pprof captures on SLO breach; empty disables
	// capture.
	ProfileDir string
	// Registry receives the aggregator's own metrics and breach events
	// (obs.scrapes, obs.scrape_failures, obs.slo.breaches); nil means a
	// private registry.
	Registry *telemetry.Registry
	// Client performs scrapes and profile captures; default has a
	// per-request timeout tighter than Interval.
	Client *http.Client
	// Logf receives operational lines; default discards.
	Logf func(format string, args ...any)

	now func() time.Time // test clock
}

// siteState is the aggregator's record of one source.
type siteState struct {
	src      Source
	last     telemetry.Snapshot
	lastOK   time.Time
	lastTry  time.Time
	lastErr  error
	scrapes  int64
	failures int64
	profiled map[string]bool // SLO rule name -> profile already captured
}

// ring is a bounded time series of one metric's merged value.
type ring struct {
	ts   []time.Time
	vs   []float64
	next int
	full bool
}

func (r *ring) push(ts time.Time, v float64) {
	r.ts[r.next], r.vs[r.next] = ts, v
	r.next++
	if r.next == len(r.ts) {
		r.next, r.full = 0, true
	}
}

// points returns the retained (ts, v) pairs oldest-first.
func (r *ring) points() ([]time.Time, []float64) {
	if !r.full {
		return r.ts[:r.next], r.vs[:r.next]
	}
	ts := make([]time.Time, 0, len(r.ts))
	vs := make([]float64, 0, len(r.vs))
	ts = append(ts, r.ts[r.next:]...)
	ts = append(ts, r.ts[:r.next]...)
	vs = append(vs, r.vs[r.next:]...)
	vs = append(vs, r.vs[:r.next]...)
	return ts, vs
}

// rate estimates the per-second slope over the points within window of
// now, by first/last difference. Returns 0 with fewer than two points.
func (r *ring) rate(now time.Time, window time.Duration) float64 {
	ts, vs := r.points()
	start := 0
	if window > 0 {
		for start < len(ts) && now.Sub(ts[start]) > window {
			start++
		}
	}
	ts, vs = ts[start:], vs[start:]
	if len(ts) < 2 {
		return 0
	}
	dt := ts[len(ts)-1].Sub(ts[0]).Seconds()
	if dt <= 0 {
		return 0
	}
	return (vs[len(vs)-1] - vs[0]) / dt
}

// Aggregator scrapes, merges, and serves. Satisfies runtime.Component.
type Aggregator struct {
	cfg    Config
	reg    *telemetry.Registry
	client *http.Client
	logf   func(string, ...any)
	now    func() time.Time

	mu      sync.Mutex
	sites   map[string]*siteState
	order   []string // registration order for stable fleet views
	rings   map[string]*ring
	slo     []*ruleState
	started bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// New builds an Aggregator; Start begins the scrape loop.
func New(cfg Config) *Aggregator {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Interval
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 120
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	a := &Aggregator{
		cfg:    cfg,
		reg:    telemetry.OrNew(cfg.Registry),
		client: cfg.Client,
		logf:   cfg.Logf,
		now:    cfg.now,
		sites:  make(map[string]*siteState),
		rings:  make(map[string]*ring),
	}
	if a.client == nil {
		a.client = &http.Client{Timeout: cfg.Interval}
	}
	if a.logf == nil {
		a.logf = func(string, ...any) {}
	}
	for _, s := range cfg.Sources {
		a.addSourceLocked(s)
	}
	for i := range cfg.SLOs {
		a.slo = append(a.slo, newRuleState(cfg.SLOs[i]))
	}
	return a
}

func (a *Aggregator) addSourceLocked(s Source) {
	if _, ok := a.sites[s.Name]; ok {
		return
	}
	a.sites[s.Name] = &siteState{src: s, profiled: make(map[string]bool)}
	a.order = append(a.order, s.Name)
}

// AddSource registers another producer after construction (a site joining
// a running experiment, or the first push from an unknown name).
func (a *Aggregator) AddSource(s Source) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.addSourceLocked(s)
}

// Start launches the periodic scrape loop.
func (a *Aggregator) Start(ctx context.Context) error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return errors.New("obs: aggregator already started")
	}
	a.started = true
	loopCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	a.cancel = cancel
	a.done = make(chan struct{})
	a.mu.Unlock()

	go func() {
		defer close(a.done)
		tick := time.NewTicker(a.cfg.Interval)
		defer tick.Stop()
		a.ScrapeOnce(loopCtx)
		for {
			select {
			case <-loopCtx.Done():
				return
			case <-tick.C:
				a.ScrapeOnce(loopCtx)
			}
		}
	}()
	return nil
}

// Stop halts the scrape loop, waiting for an in-flight round.
func (a *Aggregator) Stop(ctx context.Context) error {
	a.mu.Lock()
	cancel, done := a.cancel, a.done
	a.mu.Unlock()
	if cancel == nil {
		return nil
	}
	cancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("obs: stop: %w", ctx.Err())
	}
}

// Healthy reports nil while the scrape loop is live. Per-site health is
// data the fleet view reports, not this process's liveness.
func (a *Aggregator) Healthy() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started {
		return errors.New("obs: aggregator not started")
	}
	select {
	case <-a.done:
		return errors.New("obs: scrape loop exited")
	default:
		return nil
	}
}

// ScrapeOnce performs one full round: scrape every pull source, refresh
// rings, evaluate SLOs. Push-fed sources keep their last pushed snapshot.
// Exposed for tests and one-shot CLI use.
func (a *Aggregator) ScrapeOnce(ctx context.Context) {
	a.mu.Lock()
	targets := make([]*siteState, 0, len(a.order))
	for _, name := range a.order {
		targets = append(targets, a.sites[name])
	}
	a.mu.Unlock()

	type result struct {
		st   *siteState
		snap telemetry.Snapshot
		err  error
		ts   time.Time
	}
	results := make([]result, 0, len(targets))
	var (
		wg    sync.WaitGroup
		resMu sync.Mutex
	)
	for _, st := range targets {
		if st.src.URL == "" && st.src.Fetch == nil {
			continue // push-only: freshness judged from pushes
		}
		wg.Add(1)
		go func(st *siteState) {
			defer wg.Done()
			snap, err := a.fetch(ctx, st.src)
			resMu.Lock()
			results = append(results, result{st: st, snap: snap, err: err, ts: a.now()})
			resMu.Unlock()
		}(st)
	}
	wg.Wait()

	a.mu.Lock()
	for _, r := range results {
		r.st.lastTry = r.ts
		r.st.scrapes++
		if r.err != nil {
			r.st.failures++
			r.st.lastErr = r.err
			a.reg.Counter("obs.scrape_failures").Inc()
			a.logf("obs: scrape %s: %v", r.st.src.Name, r.err)
			continue
		}
		r.st.lastErr = nil
		r.st.lastOK = r.ts
		r.st.last = r.snap
		a.reg.Counter("obs.scrapes").Inc()
	}
	view := a.buildFleetLocked()
	a.refreshRingsLocked(view)
	view.Rates = a.ratesLocked(view.TS)
	a.evalSLOLocked(view)
	a.mu.Unlock()
}

// fetch pulls one source's snapshot.
func (a *Aggregator) fetch(ctx context.Context, src Source) (telemetry.Snapshot, error) {
	if src.Fetch != nil {
		return src.Fetch(), nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src.URL, nil)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return telemetry.Snapshot{}, fmt.Errorf("status %s", resp.Status)
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&snap); err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("decode: %w", err)
	}
	return snap, nil
}

// Push ingests a pushed snapshot for the named site, registering it on
// first contact.
func (a *Aggregator) Push(name string, snap telemetry.Snapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.addSourceLocked(Source{Name: name})
	st := a.sites[name]
	st.last = snap
	st.lastOK = a.now()
	st.lastTry = st.lastOK
	st.lastErr = nil
	st.scrapes++
	a.reg.Counter("obs.pushes").Inc()
}

// Fleet returns the current fleet view (health recomputed against the
// clock; rates from the rings as of the last scrape round).
func (a *Aggregator) Fleet() FleetView {
	a.mu.Lock()
	defer a.mu.Unlock()
	view := a.buildFleetLocked()
	view.Rates = a.ratesLocked(view.TS)
	view.SLO = a.sloStatusLocked()
	return view
}

// Merged returns just the exactly-merged fleet snapshot.
func (a *Aggregator) Merged() telemetry.Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.buildFleetLocked().Merged
}

// buildFleetLocked merges the latest per-site snapshots and derives
// health. Caller holds a.mu.
func (a *Aggregator) buildFleetLocked() FleetView {
	now := a.now()
	view := FleetView{TS: now}
	var merged telemetry.Snapshot
	var mergeErrs []error
	first := true
	for _, name := range a.order {
		st := a.sites[name]
		h := SiteHealth{
			Name:     name,
			State:    StateUnknown,
			Scrapes:  st.scrapes,
			Failures: st.failures,
		}
		if !st.lastOK.IsZero() {
			h.LastScrape = st.lastOK
			switch {
			case st.lastErr != nil:
				h.State = StateDown
			case now.Sub(st.lastOK) > a.cfg.StaleAfter:
				h.State = StateDegraded
			default:
				h.State = StateOK
			}
			h.Goroutines = st.last.Gauges["process.goroutines"]
			h.HeapBytes = st.last.Gauges["process.heap_bytes"]
			h.UptimeSeconds = st.last.Gauges["process.uptime.seconds"]
		} else if st.lastErr != nil {
			h.State = StateDown
		}
		if st.lastErr != nil {
			h.Error = st.lastErr.Error()
		}
		view.Sites = append(view.Sites, h)

		if st.lastOK.IsZero() {
			continue
		}
		if first {
			merged, first = st.last, false
			continue
		}
		m, err := telemetry.MergeSnapshots(merged, st.last)
		if err != nil {
			mergeErrs = append(mergeErrs, fmt.Errorf("%s: %w", name, err))
			a.reg.Counter("obs.merge_failures").Inc()
			continue
		}
		merged = m
	}
	view.Merged = merged
	if err := errors.Join(mergeErrs...); err != nil {
		view.MergeError = err.Error()
	}
	return view
}

// refreshRingsLocked appends this round's merged counter values (and
// histogram counts) to their rings. Caller holds a.mu.
func (a *Aggregator) refreshRingsLocked(view FleetView) {
	push := func(name string, v float64) {
		r, ok := a.rings[name]
		if !ok {
			r = &ring{ts: make([]time.Time, a.cfg.RingSize), vs: make([]float64, a.cfg.RingSize)}
			a.rings[name] = r
		}
		r.push(view.TS, v)
	}
	for name, v := range view.Merged.Counters {
		push(name, float64(v))
	}
	for name, h := range view.Merged.Histograms {
		push(name+".count", float64(h.Count))
	}
}

// ratesLocked computes per-second rates for every ringed metric over the
// full ring window. Caller holds a.mu.
func (a *Aggregator) ratesLocked(now time.Time) map[string]float64 {
	if len(a.rings) == 0 {
		return nil
	}
	rates := make(map[string]float64, len(a.rings))
	for name, r := range a.rings {
		rates[name] = r.rate(now, 0)
	}
	return rates
}

// Series returns the ringed values for one metric, oldest first — the
// sparkline feed for `mostctl top`.
func (a *Aggregator) Series(name string) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.rings[name]
	if !ok {
		return nil
	}
	_, vs := r.points()
	return append([]float64(nil), vs...)
}

// Registry exposes the aggregator's own metrics/events registry.
func (a *Aggregator) Registry() *telemetry.Registry { return a.reg }

// SiteNames returns the registered site names in registration order.
func (a *Aggregator) SiteNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// SiteSnapshot returns the latest snapshot scraped or pushed for one
// site.
func (a *Aggregator) SiteSnapshot(name string) (telemetry.Snapshot, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.sites[name]
	if !ok || st.lastOK.IsZero() {
		return telemetry.Snapshot{}, false
	}
	return st.last, true
}
