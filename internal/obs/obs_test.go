package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
)

// testClock is a settable clock for deterministic health/rate tests.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock { return &testClock{t: time.Unix(1000, 0)} }

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// siteRegistry builds a registry with one counter and one RTT histogram.
func siteRegistry(counter int64, rtts ...float64) *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("ntcp.server.executed").Add(counter)
	h := reg.Histogram("ntcp.client.rtt.seconds")
	for _, v := range rtts {
		h.Observe(v)
	}
	return reg
}

func TestAggregatorMergesFetchSources(t *testing.T) {
	ra := siteRegistry(3, 0.001, 0.002)
	rb := siteRegistry(4, 0.004, 0.040)
	clk := newTestClock()
	a := New(Config{
		Sources: []Source{
			{Name: "site-a", Fetch: ra.Snapshot},
			{Name: "site-b", Fetch: rb.Snapshot},
		},
		now: clk.now,
	})
	a.ScrapeOnce(context.Background())

	view := a.Fleet()
	if len(view.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(view.Sites))
	}
	for _, s := range view.Sites {
		if s.State != StateOK {
			t.Fatalf("site %s state = %s, want ok", s.Name, s.State)
		}
	}
	if got := view.Merged.Counters["ntcp.server.executed"]; got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	h := view.Merged.Histograms["ntcp.client.rtt.seconds"]
	if h.Count != 4 || h.Min != 0.001 || h.Max != 0.040 {
		t.Fatalf("merged histogram wrong: %+v", h)
	}

	// Merged quantiles equal a union-fed histogram's — through the
	// aggregator, end to end.
	union := siteRegistry(0, 0.001, 0.002, 0.004, 0.040).Snapshot().Histograms["ntcp.client.rtt.seconds"]
	if h.P99 != union.P99 || h.P50 != union.P50 {
		t.Fatalf("aggregated quantiles diverge from union: %v/%v vs %v/%v", h.P50, h.P99, union.P50, union.P99)
	}
}

func TestAggregatorScrapesHTTPAndTracksHealth(t *testing.T) {
	reg := siteRegistry(5, 0.01)
	healthy := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		telemetry.Handler(reg).ServeHTTP(w, r)
	}))
	defer ts.Close()

	clk := newTestClock()
	a := New(Config{
		Sources:    []Source{{Name: "remote", URL: ts.URL}},
		Interval:   time.Second,
		StaleAfter: 3 * time.Second,
		now:        clk.now,
	})
	a.ScrapeOnce(context.Background())
	view := a.Fleet()
	if view.Sites[0].State != StateOK {
		t.Fatalf("state = %s, want ok (err=%s)", view.Sites[0].State, view.Sites[0].Error)
	}
	if view.Sites[0].Goroutines < 1 {
		t.Fatalf("process self-metrics not lifted into health: %+v", view.Sites[0])
	}

	// A failing scrape flips the site down and keeps the last snapshot.
	healthy = false
	clk.advance(time.Second)
	a.ScrapeOnce(context.Background())
	view = a.Fleet()
	if view.Sites[0].State != StateDown || view.Sites[0].Error == "" {
		t.Fatalf("state = %s err=%q, want down with error", view.Sites[0].State, view.Sites[0].Error)
	}
	if view.Merged.Counters["ntcp.server.executed"] != 5 {
		t.Fatal("merged view should retain the last good snapshot")
	}

	// Recovery, then silence past StaleAfter ⇒ degraded.
	healthy = true
	clk.advance(time.Second)
	a.ScrapeOnce(context.Background())
	if v := a.Fleet(); v.Sites[0].State != StateOK {
		t.Fatalf("state after recovery = %s", v.Sites[0].State)
	}
	clk.advance(10 * time.Second)
	if v := a.Fleet(); v.Sites[0].State != StateDegraded {
		t.Fatalf("state after staleness = %s, want degraded", v.Sites[0].State)
	}
}

func TestAggregatorRatesFromRing(t *testing.T) {
	var steps int64
	reg := telemetry.NewRegistry()
	clk := newTestClock()
	a := New(Config{
		Sources: []Source{{Name: "coord", Fetch: func() telemetry.Snapshot {
			reg.Counter("coord.steps").Add(steps)
			steps = 0
			return reg.Snapshot()
		}}},
		Interval: time.Second,
		now:      clk.now,
	})
	// 10 steps/second for 5 scrape rounds.
	for i := 0; i < 5; i++ {
		steps = 10
		a.ScrapeOnce(context.Background())
		clk.advance(time.Second)
	}
	view := a.Fleet()
	rate := view.Rates["coord.steps"]
	if rate < 9 || rate > 11 {
		t.Fatalf("coord.steps rate = %g, want ~10/s", rate)
	}
	if vs := a.Series("coord.steps"); len(vs) != 5 || vs[4] != 50 {
		t.Fatalf("series = %v, want 5 points ending at 50", vs)
	}
}

func TestAggregatorPush(t *testing.T) {
	clk := newTestClock()
	a := New(Config{now: clk.now})
	snap := siteRegistry(9, 0.002).Snapshot()
	a.Push("pushed-site", snap)

	view := a.Fleet()
	if len(view.Sites) != 1 || view.Sites[0].Name != "pushed-site" || view.Sites[0].State != StateOK {
		t.Fatalf("pushed site not registered healthy: %+v", view.Sites)
	}
	if view.Merged.Counters["ntcp.server.executed"] != 9 {
		t.Fatalf("pushed snapshot not merged: %+v", view.Merged.Counters)
	}
}

func TestMuxEndpoints(t *testing.T) {
	ra := siteRegistry(3, 0.001)
	rb := siteRegistry(4, 0.050)
	clk := newTestClock()
	a := New(Config{
		Sources: []Source{
			{Name: "site-a", Fetch: ra.Snapshot},
			{Name: "site-b", Fetch: rb.Snapshot},
		},
		now: clk.now,
	})
	a.ScrapeOnce(context.Background())
	srv := httptest.NewServer(a.Mux())
	defer srv.Close()

	// /fleet
	var view FleetView
	getJSON(t, srv.URL+"/fleet", &view)
	if len(view.Sites) != 2 || view.Merged.Counters["ntcp.server.executed"] != 7 {
		t.Fatalf("fleet view wrong: %+v", view)
	}

	// /metrics JSON default is the merged snapshot (mostctl metrics -url
	// compatible).
	var snap telemetry.Snapshot
	getJSON(t, srv.URL+"/metrics", &snap)
	if snap.Counters["ntcp.server.executed"] != 7 {
		t.Fatalf("merged /metrics JSON wrong: %+v", snap.Counters)
	}

	// /metrics Prometheus contains fleet-wide and per-site series.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	for _, want := range []string{
		"ntcp_server_executed_total 7",
		`ntcp_server_executed_total{site="site-a"} 3`,
		`ntcp_server_executed_total{site="site-b"} 4`,
		`obs_site_up{site="site-a"} 1`,
		"ntcp_client_rtt_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus exposition missing %q:\n%s", want, out)
		}
	}

	// /series
	var series struct {
		Values []float64 `json:"values"`
	}
	getJSON(t, srv.URL+"/series?metric=ntcp.server.executed", &series)
	if len(series.Values) != 1 || series.Values[0] != 7 {
		t.Fatalf("series wrong: %+v", series)
	}

	// /push registers a third site.
	b, _ := json.Marshal(siteRegistry(5).Snapshot())
	presp, err := http.Post(srv.URL+"/push?site=site-c", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNoContent {
		t.Fatalf("push status = %d", presp.StatusCode)
	}
	if got := a.Merged().Counters["ntcp.server.executed"]; got != 12 {
		t.Fatalf("after push merged counter = %d, want 12", got)
	}
}

func TestAggregatorComponentLifecycle(t *testing.T) {
	reg := siteRegistry(1, 0.001)
	a := New(Config{
		Sources:  []Source{{Name: "s", Fetch: reg.Snapshot}},
		Interval: 10 * time.Millisecond,
	})
	if err := a.Healthy(); err == nil {
		t.Fatal("unstarted aggregator should be unhealthy")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := a.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Healthy(); err != nil {
		t.Fatalf("started aggregator unhealthy: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Merged().Counters["ntcp.server.executed"] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("scrape loop never merged the source")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopCtx, stopCancel := context.WithTimeout(context.Background(), time.Second)
	defer stopCancel()
	if err := a.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	if err := a.Healthy(); err == nil {
		t.Fatal("stopped aggregator should report unhealthy")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
