package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"neesgrid/internal/telemetry"
)

// PushSnapshot POSTs one registry snapshot to a remote aggregator's
// /push?site= endpoint — the client half of push-mode aggregation. An
// experiment fleet uses it to point each run's aggregator at fleetd: the
// run's merged roll-up arrives as one named source, and fleetd's /fleet
// view then serves the whole fleet without scraping into tenant
// topologies. A nil client uses http.DefaultClient.
func PushSnapshot(client *http.Client, base, site string, snap telemetry.Snapshot) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("obs: push encode: %w", err)
	}
	u := base + "/push?site=" + url.QueryEscape(site)
	resp, err := client.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("obs: push %s: %w", site, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("obs: push %s: %s: %s", site, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
