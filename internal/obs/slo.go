package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SLO is one service-level objective evaluated continuously against the
// merged fleet view. Exactly one of Quantile/Rate/Gauge semantics applies,
// chosen by Kind:
//
//   - "quantile": Metric names a histogram; the rule breaches when the
//     merged quantile Q exceeds Max (seconds, for latency histograms).
//   - "rate": Metric names a counter (or histogram with ".count"); the
//     rule breaches when its per-second rate over Window exceeds Max.
//   - "gauge": Metric names a gauge; breaches when the merged (summed)
//     value exceeds Max.
//
// Rules serialize as JSON so `coordinator -slo rules.json` and the CI
// smoke share one format; Window is given in seconds on the wire.
type SLO struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Metric string  `json:"metric"`
	Q      float64 `json:"q,omitempty"`
	Max    float64 `json:"max"`
	// WindowSeconds scopes rate computation; 0 means the whole ring.
	WindowSeconds float64 `json:"window_seconds,omitempty"`
}

// Kinds of SLO rule.
const (
	KindQuantile = "quantile"
	KindRate     = "rate"
	KindGauge    = "gauge"
)

// Validate rejects malformed rules before they are armed.
func (s SLO) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("obs: slo rule missing name")
	}
	if s.Metric == "" {
		return fmt.Errorf("obs: slo %s: missing metric", s.Name)
	}
	switch s.Kind {
	case KindQuantile:
		if s.Q <= 0 || s.Q > 1 {
			return fmt.Errorf("obs: slo %s: quantile q=%g out of (0,1]", s.Name, s.Q)
		}
	case KindRate, KindGauge:
	default:
		return fmt.Errorf("obs: slo %s: unknown kind %q", s.Name, s.Kind)
	}
	return nil
}

// LoadSLOFile parses a JSON array of SLO rules.
func LoadSLOFile(path string) ([]SLO, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rules []SLO
	if err := json.Unmarshal(b, &rules); err != nil {
		return nil, fmt.Errorf("obs: parse %s: %w", path, err)
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}

// RuleStatus is one rule's live evaluation state.
type RuleStatus struct {
	SLO
	// State is "ok", "breach", or "no_data" (metric absent so far).
	State string `json:"state"`
	// Value is the most recent evaluated value (quantile, rate, or gauge).
	Value float64 `json:"value"`
	// Worst is the worst value seen since the aggregator started.
	Worst    float64 `json:"worst"`
	Breaches int64   `json:"breaches"`
	// FirstBreach/LastBreach bound the breach history.
	FirstBreach time.Time `json:"first_breach,omitzero"`
	LastBreach  time.Time `json:"last_breach,omitzero"`
	// ExemplarTrace is the offending histogram's retained exemplar trace
	// ID at breach time — the handle `mostctl trace <id>` resolves.
	ExemplarTrace string `json:"exemplar_trace,omitempty"`
	// Profiles are pprof captures triggered by this rule's first breach,
	// one per source with a -pprof mux.
	Profiles []string `json:"profiles,omitempty"`
}

// Verdict is the machine-readable outcome of a run's SLO evaluation.
type Verdict struct {
	TS    time.Time    `json:"ts"`
	OK    bool         `json:"ok"`
	Rules []RuleStatus `json:"rules"`
}

// ruleState is a rule plus its accumulated evaluation history.
type ruleState struct {
	RuleStatus
	profileStarted bool
}

func newRuleState(s SLO) *ruleState {
	return &ruleState{RuleStatus: RuleStatus{SLO: s, State: "no_data"}}
}

// evalSLOLocked evaluates every rule against the freshly merged view.
// Caller holds a.mu.
func (a *Aggregator) evalSLOLocked(view FleetView) {
	for _, rs := range a.slo {
		v, ok := a.ruleValueLocked(rs.SLO, view)
		if !ok {
			if rs.State == "" || rs.State == "no_data" {
				rs.State = "no_data"
			}
			continue
		}
		rs.Value = v
		if v > rs.Worst {
			rs.Worst = v
		}
		if v <= rs.Max {
			// A past breach is history, not a live state: the dashboard
			// shows recovery while the verdict still reports Breaches > 0.
			rs.State = "ok"
			continue
		}
		rs.Breaches++
		rs.LastBreach = view.TS
		if rs.FirstBreach.IsZero() {
			rs.FirstBreach = view.TS
		}
		rs.State = "breach"
		if h, ok := view.Merged.Histograms[rs.Metric]; ok && h.Exemplar != nil {
			rs.ExemplarTrace = h.Exemplar.TraceID
		}
		a.reg.Counter("obs.slo.breaches").Inc()
		a.reg.Event("obs", "slo-breach", map[string]any{
			"rule":   rs.Name,
			"metric": rs.Metric,
			"value":  v,
			"max":    rs.Max,
			"trace":  rs.ExemplarTrace,
		})
		a.logf("obs: SLO breach %s: %s = %g > %g", rs.Name, rs.Metric, v, rs.Max)
		if !rs.profileStarted && a.cfg.ProfileDir != "" {
			rs.profileStarted = true
			go a.captureProfiles(rs.Name)
		}
	}
}

// ruleValueLocked extracts a rule's current value from the merged view.
// Caller holds a.mu.
func (a *Aggregator) ruleValueLocked(s SLO, view FleetView) (float64, bool) {
	switch s.Kind {
	case KindQuantile:
		h, ok := view.Merged.Histograms[s.Metric]
		if !ok || h.Count == 0 {
			return 0, false
		}
		return h.Quantile(s.Q), true
	case KindRate:
		r, ok := a.rings[s.Metric]
		if !ok {
			return 0, false
		}
		return r.rate(view.TS, time.Duration(s.WindowSeconds*float64(time.Second))), true
	case KindGauge:
		v, ok := view.Merged.Gauges[s.Metric]
		return v, ok
	}
	return 0, false
}

// sloStatusLocked snapshots the rule states. Caller holds a.mu.
func (a *Aggregator) sloStatusLocked() []RuleStatus {
	if len(a.slo) == 0 {
		return nil
	}
	out := make([]RuleStatus, len(a.slo))
	for i, rs := range a.slo {
		out[i] = rs.RuleStatus
		out[i].Profiles = append([]string(nil), rs.Profiles...)
	}
	return out
}

// Verdict reports the run's SLO outcome: OK only when no rule ever
// breached. With no rules configured the verdict is trivially OK.
func (a *Aggregator) Verdict() Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	v := Verdict{TS: a.now(), OK: true, Rules: a.sloStatusLocked()}
	for _, r := range v.Rules {
		if r.Breaches > 0 {
			v.OK = false
		}
	}
	return v
}

// captureProfiles pulls a goroutine profile from every source exposing a
// -pprof mux and records the file paths on the rule. Runs detached from
// the scrape loop: profile capture must never stall merging.
func (a *Aggregator) captureProfiles(rule string) {
	a.mu.Lock()
	type target struct{ name, url string }
	var targets []target
	for _, name := range a.order {
		if u := a.sites[name].src.PprofURL; u != "" {
			targets = append(targets, target{name, u})
		}
	}
	dir := a.cfg.ProfileDir
	a.mu.Unlock()

	var paths []string
	for _, t := range targets {
		url := strings.TrimSuffix(t.url, "/") + "/debug/pprof/goroutine?debug=1"
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		path, err := a.fetchProfile(ctx, url, filepath.Join(dir, fmt.Sprintf("slo-%s-%s.goroutine.txt", sanitize(rule), sanitize(t.name))))
		cancel()
		if err != nil {
			a.logf("obs: profile capture %s from %s: %v", rule, t.name, err)
			continue
		}
		paths = append(paths, path)
	}
	a.mu.Lock()
	for _, rs := range a.slo {
		if rs.Name == rule {
			rs.Profiles = append(rs.Profiles, paths...)
		}
	}
	a.mu.Unlock()
	if len(paths) > 0 {
		a.reg.Event("obs", "slo-profile-captured", map[string]any{"rule": rule, "files": len(paths)})
	}
}

// fetchProfile downloads one pprof endpoint to path.
func (a *Aggregator) fetchProfile(ctx context.Context, url, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if _, err := f.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return path, nil
}

// sanitize maps a name onto a filesystem-safe slug.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}

// MarshalVerdict renders a verdict as indented JSON.
func MarshalVerdict(v Verdict) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf(`{"ok":false,"error":%q}`, err.Error()))
	}
	return append(b, '\n')
}
