package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

func TestSLOValidate(t *testing.T) {
	good := []SLO{
		{Name: "rtt", Kind: KindQuantile, Metric: "ntcp.client.rtt.seconds", Q: 0.99, Max: 0.1},
		{Name: "drops", Kind: KindRate, Metric: "nsds.sub.dropped", Max: 10},
		{Name: "heap", Kind: KindGauge, Metric: "process.heap_bytes", Max: 1e9},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Fatalf("valid rule rejected: %v", err)
		}
	}
	bad := []SLO{
		{Kind: KindRate, Metric: "x", Max: 1},                      // no name
		{Name: "n", Kind: KindQuantile, Metric: "x", Q: 0, Max: 1}, // q out of range
		{Name: "n", Kind: "p99", Metric: "x", Max: 1},              // unknown kind
		{Name: "n", Kind: KindGauge, Max: 1},                       // no metric
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad rule %d accepted: %+v", i, s)
		}
	}
}

func TestLoadSLOFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(path, []byte(`[
		{"name":"step-p99","kind":"quantile","metric":"coord.step.seconds","q":0.99,"max":0.5},
		{"name":"drop-rate","kind":"rate","metric":"nsds.sub.dropped","max":100,"window_seconds":30}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := LoadSLOFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Q != 0.99 || rules[1].WindowSeconds != 30 {
		t.Fatalf("rules parsed wrong: %+v", rules)
	}
	if err := os.WriteFile(path, []byte(`[{"name":"x","kind":"nope","metric":"m","max":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSLOFile(path); err == nil {
		t.Fatal("invalid rule file accepted")
	}
}

func TestSLOQuantileBreachEmitsEventAndExemplar(t *testing.T) {
	reg := telemetry.NewRegistry()
	traceID := trace.NewTraceID().String()
	h := reg.Histogram("ntcp.client.rtt.seconds")
	h.ObserveExemplar(0.001, "fast-trace")
	h.ObserveExemplar(2.5, traceID) // slow outlier carries the exemplar

	clk := newTestClock()
	a := New(Config{
		Sources: []Source{{Name: "site", Fetch: reg.Snapshot}},
		SLOs: []SLO{
			{Name: "rtt-p99", Kind: KindQuantile, Metric: "ntcp.client.rtt.seconds", Q: 0.99, Max: 0.1},
			{Name: "absent", Kind: KindQuantile, Metric: "no.such.metric", Q: 0.5, Max: 1},
		},
		now: clk.now,
	})
	a.ScrapeOnce(context.Background())

	v := a.Verdict()
	if v.OK {
		t.Fatal("verdict should not be OK after a breach")
	}
	var rtt, absent RuleStatus
	for _, r := range v.Rules {
		switch r.Name {
		case "rtt-p99":
			rtt = r
		case "absent":
			absent = r
		}
	}
	if rtt.State != "breach" || rtt.Breaches != 1 {
		t.Fatalf("rtt rule: %+v", rtt)
	}
	if rtt.ExemplarTrace != traceID {
		t.Fatalf("breach exemplar = %q, want the slow observation's trace %q", rtt.ExemplarTrace, traceID)
	}
	if absent.State != "no_data" {
		t.Fatalf("absent metric rule state = %s, want no_data", absent.State)
	}

	// The breach shows up in the aggregator's own registry.
	snap := a.Registry().Snapshot()
	if snap.Counters["obs.slo.breaches"] != 1 {
		t.Fatalf("obs.slo.breaches = %d", snap.Counters["obs.slo.breaches"])
	}
	found := false
	for _, e := range snap.Events {
		if e.Event == "slo-breach" && e.Fields["rule"] == "rtt-p99" {
			found = true
		}
	}
	if !found {
		t.Fatal("slo-breach event not recorded")
	}
}

func TestSLORecoveryKeepsBreachHistory(t *testing.T) {
	reg := telemetry.NewRegistry()
	clk := newTestClock()
	var drops int64 = 1000
	a := New(Config{
		Sources: []Source{{Name: "hub", Fetch: func() telemetry.Snapshot {
			reg.Counter("nsds.sub.dropped").Add(drops)
			drops = 0
			return reg.Snapshot()
		}}},
		Interval: time.Second,
		SLOs:     []SLO{{Name: "drops", Kind: KindRate, Metric: "nsds.sub.dropped", Max: 50}},
		now:      clk.now,
	})
	// Round 1 seeds the ring; round 2 sees 1000 drops over 1s ⇒ breach.
	a.ScrapeOnce(context.Background())
	clk.advance(time.Second)
	drops = 1000
	a.ScrapeOnce(context.Background())
	if v := a.Verdict(); v.OK || v.Rules[0].State != "breach" {
		t.Fatalf("expected live breach, got %+v", v.Rules[0])
	}
	// Rates recover to zero; dashboard shows ok but the verdict still
	// fails the run.
	for i := 0; i < 60; i++ {
		clk.advance(time.Second)
		a.ScrapeOnce(context.Background())
	}
	v := a.Verdict()
	if v.Rules[0].State != "ok" {
		t.Fatalf("state after recovery = %s, want ok", v.Rules[0].State)
	}
	if v.OK || v.Rules[0].Breaches == 0 {
		t.Fatalf("verdict must remember the breach: %+v", v.Rules[0])
	}
}

func TestSLOBreachCapturesProfile(t *testing.T) {
	// A -pprof style debug mux for the "site".
	dbg := httptest.NewServer(trace.DebugMux(nil))
	defer dbg.Close()

	reg := telemetry.NewRegistry()
	reg.Histogram("coord.step.seconds").Observe(10)
	dir := t.TempDir()
	clk := newTestClock()
	a := New(Config{
		Sources:    []Source{{Name: "coord", Fetch: reg.Snapshot, PprofURL: dbg.URL}},
		SLOs:       []SLO{{Name: "step-p99", Kind: KindQuantile, Metric: "coord.step.seconds", Q: 0.99, Max: 1}},
		ProfileDir: dir,
		Client:     &http.Client{Timeout: 5 * time.Second},
		now:        clk.now,
	})
	a.ScrapeOnce(context.Background())

	// Profile capture is async; poll for the rule to record it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := a.Verdict()
		if len(v.Rules) == 1 && len(v.Rules[0].Profiles) > 0 {
			b, err := os.ReadFile(v.Rules[0].Profiles[0])
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(b), "goroutine") {
				t.Fatalf("captured profile does not look like a goroutine dump:\n%.200s", b)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("profile never captured: %+v", a.Verdict().Rules)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
