package ogsi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func TestAppendBatchItemsJSONMatchesMarshal(t *testing.T) {
	cases := [][]BatchOp{
		{{Op: "execute", Params: map[string]string{"name": "run/step-7/uiuc"}}},
		{
			{Op: "execute", Params: map[string]string{"name": `odd "name"`}},
			{Op: "propose", Params: map[string]any{"name": "s", "ttl_seconds": 1.5}},
		},
		{{Op: "get", Params: nil}},
		{{Op: "html <escapes> & entities", Params: []int{1, 2, 3}}},
	}
	for _, ops := range cases {
		raws := make([][]byte, len(ops))
		items := make([]batchItem, len(ops))
		for i := range ops {
			raw, err := json.Marshal(ops[i].Params)
			if err != nil {
				t.Fatal(err)
			}
			raws[i] = raw
			items[i] = batchItem{Op: ops[i].Op, Params: raw}
		}
		want, err := json.Marshal(items)
		if err != nil {
			t.Fatal(err)
		}
		got := appendBatchItemsJSON(nil, ops, raws)
		if !bytes.Equal(got, want) {
			t.Fatalf("append %s != marshal %s", got, want)
		}
	}
}

func TestAppendResponseListJSONMatchesMarshal(t *testing.T) {
	cases := [][]*response{
		{{OK: true}},
		{
			{OK: true, Result: json.RawMessage(`{"f":[1.5]}`)},
			{OK: false, Code: CodeConflict, Error: `cannot "execute"`},
			{OK: true, Trace: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"},
		},
	}
	for _, resps := range cases {
		want, err := json.Marshal(resps)
		if err != nil {
			t.Fatal(err)
		}
		got := appendResponseListJSON(nil, resps)
		if !bytes.Equal(got, want) {
			t.Fatalf("append %s != marshal %s", got, want)
		}
	}
}

func TestCallBatchDispatchesInOrder(t *testing.T) {
	var order []string
	svc := NewService("seq")
	for _, op := range []string{"first", "second"} {
		op := op
		svc.RegisterOp(op, func(_ context.Context, _ Caller, params json.RawMessage) (any, error) {
			order = append(order, op)
			return map[string]string{"op": op}, nil
		})
	}
	f := newFabric(t, func(c *Container) { c.AddService(svc) })

	results, err := f.client.CallBatch(context.Background(), "seq", []BatchOp{
		{Op: "first"}, {Op: "second"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	var out map[string]string
	for i, want := range []string{"first", "second"} {
		if err := results[i].Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out["op"] != want {
			t.Fatalf("result %d = %v", i, out)
		}
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("dispatch order = %v", order)
	}
	// Sub-ops keep their own telemetry, and the batch op is metered too.
	snap := f.container.Telemetry().Snapshot()
	for _, name := range []string{"ogsi.seq.first.requests", "ogsi.seq.second.requests", "ogsi.seq.batch.requests"} {
		if snap.Counters[name] != 1 {
			t.Fatalf("%s = %d, want 1", name, snap.Counters[name])
		}
	}
}

func TestCallBatchPerItemFaultDoesNotFailEnvelope(t *testing.T) {
	svc := NewService("mix")
	svc.RegisterOp("ok", func(context.Context, Caller, json.RawMessage) (any, error) {
		return 7, nil
	})
	svc.RegisterOp("bad", func(context.Context, Caller, json.RawMessage) (any, error) {
		return nil, Errf(CodeConflict, "not now")
	})
	f := newFabric(t, func(c *Container) { c.AddService(svc) })

	results, err := f.client.CallBatch(context.Background(), "mix", []BatchOp{
		{Op: "ok"}, {Op: "bad"}, {Op: "missing"},
	})
	if err != nil {
		t.Fatalf("envelope must survive per-item faults: %v", err)
	}
	var n int
	if err := results[0].Decode(&n); err != nil || n != 7 {
		t.Fatalf("ok item: %v %d", err, n)
	}
	if !IsRemoteCode(results[1].Err(), CodeConflict) {
		t.Fatalf("bad item err = %v", results[1].Err())
	}
	var re *RemoteError
	if !errors.As(results[2].Err(), &re) || re.Code != CodeNotFound {
		t.Fatalf("missing item err = %v", results[2].Err())
	}
}

func TestBatchRejectsAbuse(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	ctx := context.Background()

	// Nested batch: the inner item faults, the envelope survives.
	results, err := f.client.CallBatch(ctx, "echo", []BatchOp{{Op: "batch", Params: []batchItem{}}})
	if err != nil {
		t.Fatal(err)
	}
	if !IsRemoteCode(results[0].Err(), CodeBadRequest) {
		t.Fatalf("nested batch err = %v", results[0].Err())
	}

	// Empty batch is rejected client-side.
	if _, err := f.client.CallBatch(ctx, "echo", nil); err == nil {
		t.Fatal("empty batch must fail")
	}

	// Oversized batch is rejected server-side.
	big := make([]BatchOp, maxBatchOps+1)
	for i := range big {
		big[i] = BatchOp{Op: "echo", Params: map[string]string{"msg": "x"}}
	}
	if _, err := f.client.CallBatch(ctx, "echo", big); !IsRemoteCode(err, CodeBadRequest) {
		t.Fatalf("oversized batch err = %v", err)
	}

	// Malformed params (not a list) fault the batch op itself.
	var out []BatchResult
	err = f.client.Call(ctx, "echo", "batch", map[string]string{"not": "a list"}, &out)
	if !IsRemoteCode(err, CodeBadRequest) {
		t.Fatalf("malformed batch err = %v", err)
	}
}
