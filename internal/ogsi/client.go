package ogsi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/trace"
)

// Client calls operations on a remote container, signing each request with
// its credential and verifying the container's response signature.
type Client struct {
	BaseURL string
	Cred    *gsi.Credential
	Trust   *gsi.TrustStore
	// HTTP is the underlying transport; tests and the fault-injection
	// harness substitute clients whose dialers misbehave. Nil means
	// http.DefaultClient.
	HTTP *http.Client
	// Clock overrides the time source used for envelope verification.
	Clock func() time.Time
	// Tracer, when set, opens a client span around every Call and carries
	// its traceparent inside the signed request payload. Nil disables
	// tracing (the traceparent of any span already in ctx still
	// propagates, so an untraced client does not break the chain).
	Tracer *trace.Tracer
}

// NewClient builds a client for the container at baseURL
// (e.g. "http://127.0.0.1:4455").
func NewClient(baseURL string, cred *gsi.Credential, trust *gsi.TrustStore) *Client {
	return &Client{BaseURL: baseURL, Cred: cred, Trust: trust}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	// The tuned shared transport, not http.DefaultClient: callers that never
	// set HTTP get keep-alive reuse against their container and bounded
	// dials/overall deadline instead of a timeout-less default.
	return DefaultHTTPClient
}

func (c *Client) now() time.Time {
	if c.Clock != nil {
		return c.Clock()
	}
	return time.Now()
}

// RemoteError is a fault returned by the remote service.
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("remote %s: %s", e.Code, e.Message) }

// IsRemoteCode reports whether err is a RemoteError with the given code.
func IsRemoteCode(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}

// Call invokes service.op with params (marshalled to JSON); on success the
// result is unmarshalled into out (which may be nil to discard).
// Transport-level failures come back as ordinary errors (retryable);
// service faults come back as *RemoteError (not retryable unless the code
// says so).
func (c *Client) Call(ctx context.Context, service, op string, params, out any) error {
	rawParams, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("ogsi: marshal params: %w", err)
	}
	return c.callRaw(ctx, service, op, rawParams, out)
}

// callRaw is Call with the params already encoded: one signed envelope out,
// one verified envelope back.
func (c *Client) callRaw(ctx context.Context, service, op string, rawParams []byte, out any) (err error) {
	ctx, span := c.Tracer.Start(ctx, service+"."+op, trace.KindClient)
	if span != nil {
		span.SetAttr("peer.url", c.BaseURL)
		defer func() {
			span.SetError(err)
			span.End()
		}()
	}
	// The traceparent carried in the signed payload: the client span when
	// tracing here, else whatever span the caller's context already holds.
	traceparent := trace.SpanContextFromContext(ctx).Traceparent()

	// Single-pass encoding into pooled buffers: the request wire form is
	// appended directly (no intermediate request struct marshal), signed,
	// and wrapped in an envelope whose chain encoding is memoized on the
	// credential.
	payloadBuf := getBuf()
	defer putBuf(payloadBuf)
	*payloadBuf = appendRequestJSON((*payloadBuf)[:0], service, op, rawParams, c.now(), traceparent)
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	*bodyBuf, err = gsi.AppendSignedEnvelope((*bodyBuf)[:0], c.Cred, *payloadBuf)
	if err != nil {
		return fmt.Errorf("ogsi: sign request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/ogsi", bytes.NewReader(*bodyBuf))
	if err != nil {
		return fmt.Errorf("ogsi: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return fmt.Errorf("ogsi: transport: %w", err)
	}
	defer httpResp.Body.Close()
	respBuf := getBuf()
	defer putBuf(respBuf)
	respBody, err := readAllInto((*respBuf)[:0], io.LimitReader(httpResp.Body, 16<<20))
	*respBuf = respBody
	if err != nil {
		return fmt.Errorf("ogsi: read response: %w", err)
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("ogsi: http %d: %s", httpResp.StatusCode, bytes.TrimSpace(respBody))
	}
	var respEnv gsi.Envelope
	if err := json.Unmarshal(respBody, &respEnv); err != nil {
		return fmt.Errorf("ogsi: bad response envelope: %w", err)
	}
	verifyStart := time.Now()
	payload, _, vinfo, err := c.Trust.OpenInfo(&respEnv, c.now())
	if span != nil {
		c.Tracer.RecordSpan(span.Context(), "gsi.verify", trace.KindInternal,
			verifyStart, time.Now(), map[string]string{
				"side":   "response",
				"cached": strconv.FormatBool(vinfo.CacheHit),
			})
	}
	if err != nil {
		return fmt.Errorf("ogsi: response authentication: %w", err)
	}
	var resp response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return fmt.Errorf("ogsi: bad response: %w", err)
	}
	// The server's span id, echoed in the signed response: lets the
	// timeline renderer pair this client span with its server span even
	// when a recorder ring has since evicted one side.
	if resp.Trace != "" {
		span.SetAttr("peer.span", resp.Trace)
	}
	if !resp.OK {
		return &RemoteError{Code: resp.Code, Message: resp.Error}
	}
	if out != nil && len(resp.Result) > 0 {
		if err := json.Unmarshal(resp.Result, out); err != nil {
			return fmt.Errorf("ogsi: unmarshal result: %w", err)
		}
	}
	return nil
}

// BatchOp is one operation of a CallBatch.
type BatchOp struct {
	Op     string
	Params any
}

// BatchResult is one operation's outcome within a batch. The envelope-level
// error channel (transport, authentication) stays on CallBatch itself;
// per-op service faults land here.
type BatchResult struct {
	OK     bool            `json:"ok"`
	Code   string          `json:"code,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Err returns the operation's service fault as a *RemoteError, or nil when
// the operation succeeded — the same contract a lone Call has.
func (r *BatchResult) Err() error {
	if r.OK {
		return nil
	}
	return &RemoteError{Code: r.Code, Message: r.Error}
}

// Decode unmarshals the operation's result into out (nil discards),
// returning the operation's fault if it had one.
func (r *BatchResult) Decode(out any) error {
	if err := r.Err(); err != nil {
		return err
	}
	if out == nil || len(r.Result) == 0 {
		return nil
	}
	if err := json.Unmarshal(r.Result, out); err != nil {
		return fmt.Errorf("ogsi: unmarshal batch result: %w", err)
	}
	return nil
}

// CallBatch invokes several operations on one service in a single signed
// envelope over a single round trip — the batched frame the pipelined
// coordinator uses to fuse execute(N) with propose(N+1). The container
// dispatches the items in order and replies with one result per item;
// a per-op fault does not fail the envelope. The returned slice always has
// len(ops) entries when err is nil.
func (c *Client) CallBatch(ctx context.Context, service string, ops []BatchOp) ([]BatchResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("ogsi: empty batch")
	}
	raws := make([][]byte, len(ops))
	for i := range ops {
		raw, err := json.Marshal(ops[i].Params)
		if err != nil {
			return nil, fmt.Errorf("ogsi: marshal batch params[%d]: %w", i, err)
		}
		raws[i] = raw
	}
	paramsBuf := getBuf()
	defer putBuf(paramsBuf)
	*paramsBuf = appendBatchItemsJSON((*paramsBuf)[:0], ops, raws)
	var results []BatchResult
	if err := c.callRaw(ctx, service, "batch", *paramsBuf, &results); err != nil {
		return nil, err
	}
	if len(results) != len(ops) {
		return nil, fmt.Errorf("ogsi: batch returned %d results for %d ops", len(results), len(ops))
	}
	return results, nil
}

// FindServiceData fetches SDEs from a remote service (all of them when no
// names are given).
func (c *Client) FindServiceData(ctx context.Context, service string, names ...string) ([]SDE, error) {
	var out []SDE
	err := c.Call(ctx, service, "findServiceData", inspectParams{Names: names}, &out)
	return out, err
}

// LastChanged fetches the most-recently-changed SDE of a remote service.
func (c *Client) LastChanged(ctx context.Context, service string) (SDE, error) {
	var out SDE
	err := c.Call(ctx, service, "lastChanged", nil, &out)
	return out, err
}

// WaitServiceData long-polls a remote SDE until its version exceeds
// sinceVersion or the server-side timeout lapses (CodeUnavailable — re-arm
// with the same cursor). This is the OGSI notification pattern without a
// callback channel: the subscriber holds the connection open.
func (c *Client) WaitServiceData(ctx context.Context, service, name string, sinceVersion int, timeout time.Duration) (SDE, error) {
	var out SDE
	err := c.Call(ctx, service, "waitServiceData", waitParams{
		Name: name, SinceVersion: sinceVersion, TimeoutSeconds: timeout.Seconds(),
	}, &out)
	return out, err
}

// WatchServiceData re-arms WaitServiceData in a loop, delivering each new
// version to deliver until ctx ends. Long-poll timeouts are silent
// re-arms; other errors end the watch and are returned.
func (c *Client) WatchServiceData(ctx context.Context, service, name string, timeout time.Duration, deliver func(SDE)) error {
	version := 0
	for {
		sde, err := c.WaitServiceData(ctx, service, name, version, timeout)
		switch {
		case err == nil:
			version = sde.Version
			deliver(sde)
		case IsRemoteCode(err, CodeUnavailable):
			// Quiet interval; re-arm.
		case ctx.Err() != nil:
			return nil
		default:
			return err
		}
	}
}

// RequestTermination extends the soft-state lifetime of a remote resource.
func (c *Client) RequestTermination(ctx context.Context, service, id string, ttl time.Duration) error {
	return c.Call(ctx, service, "requestTermination",
		terminationParams{ID: id, TTLSeconds: ttl.Seconds()}, nil)
}
