package ogsi

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// DefaultTransport is the shared HTTP transport for OGSI clients that do
// not bring their own. It is tuned for the coordinator's per-site fan-out:
// a handful of long-lived container endpoints each receiving a steady
// stream of small signed POSTs, so keep-alive reuse matters far more than
// connection diversity, and every dial must be bounded so a dead site fails
// fast instead of hanging a step.
var DefaultTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   5 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	ForceAttemptHTTP2:     true,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   32,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: time.Second,
}

// DefaultHTTPClient is the client used when Client.HTTP is nil. The overall
// timeout leaves headroom over the container's 30 s long-poll cap so
// WaitServiceData re-arms cleanly rather than erroring mid-poll.
var DefaultHTTPClient = &http.Client{
	Transport: DefaultTransport,
	Timeout:   60 * time.Second,
}

// NewPinnedTransport returns a dedicated transport for one long-lived site
// connection: up to n keep-alive connections that never idle out, pinned to
// the single host a coordinator-side client talks to, so no step after the
// first ever pays TCP (or TLS) setup or queues behind another host's
// traffic on a shared pool. Reconnect after a drop is the transport's
// ordinary redial on the next request; the NTCP retry policy plus
// server-side dedupe make the replayed call safe.
func NewPinnedTransport(n int) *http.Transport {
	if n <= 0 {
		n = 2
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 15 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          n,
		MaxIdleConnsPerHost:   n,
		MaxConnsPerHost:       n,
		IdleConnTimeout:       0, // pinned: never idle out
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// maxPooledBuf bounds what goes back into the pool so one oversized
// request/response does not pin memory forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// readAllInto reads r to EOF, appending into dst (reusing its capacity —
// the pooled-buffer replacement for io.ReadAll), and returns the filled
// slice.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json's default encoder: short escapes for quote, backslash and
// \b \f \n \r \t, \u00xx for the remaining control bytes, HTML escaping
// of < > & as \u003c \u003e \u0026, \u2028/\u2029 for the JS line
// separators, and the literal \ufffd escape for invalid UTF-8 bytes.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '"', '\\':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if r == 0x2028 || r == 0x2029 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendRequestJSON encodes the request wire form in one pass; params must
// already be JSON (empty means null), and traceparent (empty means absent)
// matches the struct's omitempty semantics.
func appendRequestJSON(dst []byte, service, op string, params []byte, sent time.Time, traceparent string) []byte {
	dst = append(dst, `{"service":`...)
	dst = appendJSONString(dst, service)
	dst = append(dst, `,"op":`...)
	dst = appendJSONString(dst, op)
	dst = append(dst, `,"params":`...)
	if len(params) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, params...)
	}
	dst = append(dst, `,"sent":"`...)
	dst = sent.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, '"')
	if traceparent != "" {
		dst = append(dst, `,"trace":`...)
		dst = appendJSONString(dst, traceparent)
	}
	return append(dst, '}')
}

// appendBatchItemsJSON encodes the params of a "batch" op — the (op,
// params) list — in one pass, byte-identical to json.Marshal of the
// corresponding []batchItem; raws[i] must already be JSON (empty means
// null).
func appendBatchItemsJSON(dst []byte, ops []BatchOp, raws [][]byte) []byte {
	dst = append(dst, '[')
	for i := range ops {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"op":`...)
		dst = appendJSONString(dst, ops[i].Op)
		dst = append(dst, `,"params":`...)
		if len(raws[i]) == 0 {
			dst = append(dst, "null"...)
		} else {
			dst = append(dst, raws[i]...)
		}
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// appendResponseListJSON encodes a batch's per-item responses in one pass,
// byte-identical to json.Marshal of the []*response slice.
func appendResponseListJSON(dst []byte, resps []*response) []byte {
	dst = append(dst, '[')
	for i, r := range resps {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendResponseJSON(dst, r)
	}
	return append(dst, ']')
}

// appendResponseJSON encodes the response wire form in one pass, matching
// the struct's omitempty semantics; Result must already be JSON.
func appendResponseJSON(dst []byte, resp *response) []byte {
	dst = append(dst, `{"ok":`...)
	dst = strconv.AppendBool(dst, resp.OK)
	if resp.Code != "" {
		dst = append(dst, `,"code":`...)
		dst = appendJSONString(dst, resp.Code)
	}
	if resp.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, resp.Error)
	}
	if len(resp.Result) > 0 {
		dst = append(dst, `,"result":`...)
		dst = append(dst, resp.Result...)
	}
	if resp.Trace != "" {
		dst = append(dst, `,"trace":`...)
		dst = appendJSONString(dst, resp.Trace)
	}
	return append(dst, '}')
}
