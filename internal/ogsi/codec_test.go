package ogsi

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"ntcp",
		"propose",
		`with "quotes" and \backslashes\`,
		"control\x00\x1fchars\nand\ttabs\r",
		"backspace\band\fformfeed",
		"unicode — π/2 ≤ θ",
		"html <escapes> & entities",
		"js line separators \u2028 and \u2029",
		"invalid utf-8 \xff\xfe mid\xc3string",
		"\x7fdel passes through",
	}
	for _, s := range cases {
		got := appendJSONString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%q: append %s != marshal %s", s, got, want)
		}
		var back string
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("%q: output does not parse: %v (%s)", s, err, got)
		}
		if !strings.Contains(s, "\xff") && !strings.Contains(s, "\xfe") && !strings.Contains(s, "\xc3s") && back != s {
			t.Fatalf("%q round-tripped to %q", s, back)
		}
	}
}

func TestAppendRequestJSONDecodesToRequest(t *testing.T) {
	params, _ := json.Marshal(map[string]int{"step": 7})
	sent := time.Date(2026, 8, 5, 12, 30, 45, 123456789, time.UTC)
	enc := appendRequestJSON(nil, "ntcp", "propose", params, sent, "")
	var req request
	if err := json.Unmarshal(enc, &req); err != nil {
		t.Fatalf("bad encoding: %v\n%s", err, enc)
	}
	if req.Service != "ntcp" || req.Op != "propose" {
		t.Fatalf("decoded %+v", req)
	}
	if !req.Sent.Equal(sent) {
		t.Fatalf("sent %v != %v", req.Sent, sent)
	}
	var p map[string]int
	if err := json.Unmarshal(req.Params, &p); err != nil || p["step"] != 7 {
		t.Fatalf("params %s: %v", req.Params, err)
	}

	// Nil params must encode as null, like json.Marshal of a nil RawMessage.
	enc = appendRequestJSON(nil, "svc", "op", nil, sent, "")
	if !bytes.Contains(enc, []byte(`"params":null`)) {
		t.Fatalf("nil params: %s", enc)
	}
	if err := json.Unmarshal(enc, &req); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRequestJSONMatchesMarshal(t *testing.T) {
	params, _ := json.Marshal(map[string]int{"step": 7})
	sent := time.Date(2026, 8, 5, 12, 30, 45, 123456789, time.UTC)
	cases := []request{
		{Service: "ntcp", Op: "propose", Params: params, Sent: sent},
		{Service: "ntcp", Op: "propose", Params: params, Sent: sent,
			Trace: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"},
		{Service: "svc", Op: "op", Sent: sent, Trace: `odd "trace" value`},
	}
	for _, rq := range cases {
		want, err := json.Marshal(&rq)
		if err != nil {
			t.Fatal(err)
		}
		got := appendRequestJSON(nil, rq.Service, rq.Op, rq.Params, rq.Sent, rq.Trace)
		if !bytes.Equal(got, want) {
			t.Fatalf("append %s != marshal %s", got, want)
		}
	}
}

func TestAppendResponseJSONMatchesMarshal(t *testing.T) {
	cases := []*response{
		{OK: true},
		{OK: true, Result: json.RawMessage(`{"f":[1.5]}`)},
		{OK: false, Code: CodeDenied, Error: `authentication "failed"`},
		{OK: false, Code: CodeNotFound, Error: "no service", Result: nil},
		{OK: true, Trace: "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"},
		{OK: true, Result: json.RawMessage(`7`), Trace: `needs "escaping"`},
		{OK: false, Code: CodeInternal, Error: "boom", Trace: "00-x-x-01"},
	}
	for _, resp := range cases {
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got := appendResponseJSON(nil, resp)
		if !bytes.Equal(got, want) {
			t.Fatalf("append %s != marshal %s", got, want)
		}
	}
}

func TestReadAllInto(t *testing.T) {
	payload := strings.Repeat("x", 100_000)
	got, err := readAllInto(make([]byte, 0, 8), strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	// Capacity reuse: a large-enough buffer must not grow.
	buf := make([]byte, 0, 256)
	got, err = readAllInto(buf, strings.NewReader("short"))
	if err != nil || string(got) != "short" {
		t.Fatalf("%q %v", got, err)
	}
	if cap(got) != 256 {
		t.Fatalf("buffer reallocated: cap %d", cap(got))
	}
	// Limited reader mid-stream error propagates.
	if _, err := readAllInto(nil, io.LimitReader(iotest{}, 10)); err == nil {
		t.Fatal("expected error")
	}
}

type iotest struct{}

func (iotest) Read(p []byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestDefaultHTTPClientIsTuned(t *testing.T) {
	c := &Client{}
	hc := c.httpClient()
	if hc.Timeout == 0 {
		t.Fatal("default client has no overall timeout")
	}
	if hc.Transport != DefaultTransport {
		t.Fatal("default client does not use the shared tuned transport")
	}
	if DefaultTransport.MaxIdleConnsPerHost < 2 {
		t.Fatal("per-host idle pool not raised above the net/http default")
	}
	// An explicitly configured client still wins.
	own := &Client{HTTP: DefaultHTTPClient}
	if own.httpClient() != DefaultHTTPClient {
		t.Fatal("explicit HTTP client not honoured")
	}
}
